// Shared helpers for the experiment report binaries (bench/).
//
// Each bench regenerates one experiment from EXPERIMENTS.md as a markdown
// table on stdout so runs are diffable. Benches that measure wall time also
// register google-benchmark timings.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "lb/construct.h"
#include "sim/execution.h"
#include "util/permutation.h"
#include "util/prng.h"
#include "util/stats.h"
#include "util/table.h"

namespace melb::benchx {

using sim::enter_order;

// Permutation sample for adversarial sweeps: identity, reverse, plus
// `random_count` seeded random permutations.
inline std::vector<util::Permutation> permutation_sample(int n, int random_count,
                                                         std::uint64_t seed = 2026) {
  std::vector<util::Permutation> pis;
  pis.emplace_back(n);
  if (n > 1) pis.push_back(util::Permutation::reversed(n));
  util::Xoshiro256StarStar rng(seed);
  for (int i = 0; i < random_count; ++i) pis.push_back(util::Permutation::random(n, rng));
  return pis;
}

inline double n_log2_n(int n) {
  if (n <= 1) return 1.0;
  return n * std::log2(static_cast<double>(n));
}

inline void print_header(const std::string& experiment, const std::string& claim) {
  std::printf("== %s ==\n%s\n\n", experiment.c_str(), claim.c_str());
}

}  // namespace melb::benchx
