// Shared helpers for the experiment report binaries (bench/).
//
// Each bench regenerates one experiment from EXPERIMENTS.md as a markdown
// table on stdout so runs are diffable. Benches that measure wall time also
// register google-benchmark timings. Benches whose experiment is a sweep over
// {algorithm} × {scheduler} × {n} run on the exp/ campaign engine, so they
// parallelize across cores for free while staying deterministic (reports are
// a pure function of the campaign seed, not of the worker count).
#pragma once

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "exp/campaign.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "lb/construct.h"
#include "sim/execution.h"
#include "util/permutation.h"
#include "util/prng.h"
#include "util/stats.h"
#include "util/table.h"

namespace melb::benchx {

using sim::enter_order;

// Run a campaign on all hardware threads and report the wall time on stderr
// (stdout stays a clean, diffable report).
inline exp::CampaignReport run_sweep(const exp::CampaignSpec& spec) {
  const auto report = exp::run_campaign(spec, {});
  std::fprintf(stderr, "[sweep: %zu cells on %d workers in %.1f ms]\n",
               report.cells.size(), report.workers_used,
               static_cast<double>(report.wall_micros) / 1000.0);
  return report;
}

// Cell lookup for table building. Throws if the cell is not in the report —
// a bench asking for a cell outside its own campaign is a bug.
inline const exp::CellResult& cell_at(const exp::CampaignReport& report,
                                      const std::string& algorithm,
                                      const std::string& scheduler, int n) {
  for (const auto& cell : report.cells) {
    if (cell.cell.algorithm == algorithm && cell.cell.scheduler == scheduler &&
        cell.cell.n == n) {
      return cell;
    }
  }
  throw std::out_of_range("no sweep cell " + algorithm + "/" + scheduler + "/n=" +
                          std::to_string(n));
}

// Permutation sample for adversarial sweeps: identity, reverse, plus
// `random_count` seeded random permutations.
inline std::vector<util::Permutation> permutation_sample(int n, int random_count,
                                                         std::uint64_t seed = 2026) {
  std::vector<util::Permutation> pis;
  pis.emplace_back(n);
  if (n > 1) pis.push_back(util::Permutation::reversed(n));
  util::Xoshiro256StarStar rng(seed);
  for (int i = 0; i < random_count; ++i) pis.push_back(util::Permutation::random(n, rng));
  return pis;
}

inline double n_log2_n(int n) {
  if (n <= 1) return 1.0;
  return n * std::log2(static_cast<double>(n));
}

inline void print_header(const std::string& experiment, const std::string& claim) {
  std::printf("== %s ==\n%s\n\n", experiment.c_str(), claim.c_str());
}

}  // namespace melb::benchx
