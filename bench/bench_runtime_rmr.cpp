// Experiment E7 (hardware substitute): RMR counts of real atomics locks.
//
// Thread sweep, one critical-section pass per thread (the canonical
// workload), software RMR accounting per rt/rmr.h. Yang–Anderson should
// track n log n, MCS O(n) total (O(1)/pass), ticket/ttas superlinear under
// contention. Wall-clock timings via google-benchmark for the contended
// case.
#include <benchmark/benchmark.h>

#include <thread>

#include "bench/common.h"
#include "rt/harness.h"
#include "rt/locks.h"

using namespace melb;

namespace {

void rmr_report() {
  benchx::print_header(
      "E7: RMR counts, threaded runtime (cache-coherent hardware substitute)",
      "T threads, 1 CS pass each; software RMR accounting (stores, RMWs, spin\n"
      "value-changes). per-pass = total / T.");

  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  std::vector<int> thread_counts;
  for (int t : {1, 2, 4, 8, 16, 32}) {
    if (t <= static_cast<int>(hw) * 4) thread_counts.push_back(t);
  }

  for (const char* lock_name : {"yang-anderson", "mcs", "ticket", "ttas"}) {
    util::Table table({"threads", "total RMR", "RMR/pass", "RMR/(T lg T)", "max thread RMR",
                       "mutex"});
    for (int threads : thread_counts) {
      std::unique_ptr<rt::Lock> lock;
      for (auto& candidate : rt::all_locks(threads)) {
        if (candidate->name() == lock_name) lock = std::move(candidate);
      }
      // Median of 5 runs to damp scheduling noise.
      std::vector<rt::HarnessResult> runs;
      for (int rep = 0; rep < 5; ++rep) {
        runs.push_back(rt::run_lock_harness(*lock, threads, {}));
      }
      std::sort(runs.begin(), runs.end(),
                [](const auto& a, const auto& b) { return a.total_rmr < b.total_rmr; });
      const auto& mid = runs[2];
      const double per_pass = static_cast<double>(mid.total_rmr) / threads;
      table.add_row({std::to_string(threads), std::to_string(mid.total_rmr),
                     util::Table::fmt(per_pass, 1),
                     util::Table::fmt(static_cast<double>(mid.total_rmr) /
                                          benchx::n_log2_n(threads), 2),
                     std::to_string(mid.max_thread_rmr), mid.mutex_ok ? "ok" : "VIOLATED"});
    }
    std::printf("-- lock: %s --\n%s\n", lock_name, table.to_string().c_str());
  }
  std::printf(
      "Reading: mcs RMR/pass is O(1) (flat) — the RMW escape hatch; yang-anderson\n"
      "RMR/pass grows like lg T (register algorithms cannot beat n log n total);\n"
      "ttas/ticket per-pass grows with T (every handoff invalidates all spinners).\n");
}

void bm_lock_throughput(benchmark::State& state, const std::string& name) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::unique_ptr<rt::Lock> lock;
    for (auto& candidate : rt::all_locks(threads)) {
      if (candidate->name() == name) lock = std::move(candidate);
    }
    rt::HarnessOptions options;
    options.iterations_per_thread = 50;
    const auto result = rt::run_lock_harness(*lock, threads, options);
    if (!result.mutex_ok) state.SkipWithError("mutex violated");
    benchmark::DoNotOptimize(result.total_rmr);
  }
}

BENCHMARK_CAPTURE(bm_lock_throughput, yang_anderson, "yang-anderson")
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK_CAPTURE(bm_lock_throughput, mcs, "mcs")
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  rmr_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
