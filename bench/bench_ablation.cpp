// Experiment E8 (ablation): why the construction and encoding are shaped the
// way they are.
//
//  (a) Hiding via insertion: fraction of steps absorbed into existing
//      metasteps (§4's point that naive "append pi's steps at the end" would
//      not admit an O(C)-bit encoding — insertions are what amortize cells).
//  (b) Encoding form: compact binary bits vs ASCII bytes (Fig. 2's table
//      format) per unit of cost.
//  (c) Linearization policy: canonical vs randomized tie-breaking — cost and
//      CS order must be invariant (Lemma 6.1), i.e. the partial order
//      carries all the information.
#include "bench/common.h"
#include "lb/encode.h"
#include "lb/linearize.h"
#include "sim/simulator.h"

using namespace melb;

int main() {
  benchx::print_header("E8: ablations on the construction/encoding design", "");

  std::printf("-- (a) step hiding: insertions vs new metasteps --\n");
  util::Table hiding({"algorithm", "n", "delta evals", "insertions", "creations",
                      "hidden %"});
  for (const char* name : {"yang-anderson", "bakery", "dijkstra", "burns"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    for (int n : {8, 24}) {
      const auto c = lb::construct(algorithm, n, util::Permutation::reversed(n));
      const double hidden =
          100.0 * static_cast<double>(c.insertions) /
          static_cast<double>(c.insertions + c.creations);
      hiding.add_row({name, std::to_string(n), std::to_string(c.delta_evaluations),
                      std::to_string(c.insertions), std::to_string(c.creations),
                      util::Table::fmt(hidden, 1)});
    }
  }
  std::printf("%s\n", hiding.to_string().c_str());

  std::printf("-- (b) encoding form: binary vs ASCII --\n");
  util::Table enc({"algorithm", "n", "SC cost", "binary bits", "bits/C", "ascii bytes",
                   "bytes/C"});
  for (const char* name : {"yang-anderson", "bakery"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    for (int n : {8, 16, 32}) {
      const auto c = lb::construct(algorithm, n, util::Permutation::reversed(n));
      const auto e = lb::encode(c);
      const auto exec = sim::validate_steps(algorithm, n, c.canonical_linearization());
      const double cost = static_cast<double>(exec.sc_cost());
      enc.add_row({name, std::to_string(n), util::Table::fmt(cost, 0),
                   std::to_string(e.binary_bits), util::Table::fmt(e.binary_bits / cost, 2),
                   std::to_string(e.text.size()),
                   util::Table::fmt(static_cast<double>(e.text.size()) / cost, 2)});
    }
  }
  std::printf("%s\n", enc.to_string().c_str());

  std::printf("-- (c) linearization-policy invariance (Lemma 6.1) --\n");
  util::Table inv({"algorithm", "n", "policies tried", "all costs equal",
                   "all CS orders equal"});
  for (const char* name : {"yang-anderson", "bakery", "filter"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    for (int n : {8, 16}) {
      const auto c = lb::construct(algorithm, n, util::Permutation::reversed(n));
      const auto base = sim::validate_steps(algorithm, n, c.canonical_linearization());
      bool cost_equal = true, order_equal = true;
      const int policies = 8;
      for (std::uint64_t seed = 1; seed <= policies; ++seed) {
        lb::LinearizePolicy policy;
        policy.random_seed = seed;
        const auto exec =
            sim::validate_steps(algorithm, n, lb::linearize(c.metasteps, c.order, policy));
        cost_equal &= exec.sc_cost() == base.sc_cost();
        order_equal &= benchx::enter_order(exec) == benchx::enter_order(base);
      }
      inv.add_row({name, std::to_string(n), std::to_string(policies),
                   cost_equal ? "yes" : "NO", order_equal ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", inv.to_string().c_str());
  return 0;
}
