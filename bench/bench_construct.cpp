// Experiment E5 (Theorem 5.5): Construct forces the critical-section order π
// and produces pairwise-distinct executions; plus metastep statistics and
// construction timing.
#include <benchmark/benchmark.h>

#include <set>

#include "bench/common.h"
#include "lb/encode.h"
#include "sim/simulator.h"

using namespace melb;

namespace {

void order_report() {
  benchx::print_header(
      "E5: Construct(pi) forces CS order pi; n! distinct executions (Theorem 5.5)",
      "Exhaustive over S_n for small n: CS order must equal pi for every pi, and\n"
      "all encodings must be distinct (the n! counting step).");

  util::Table table({"algorithm", "n", "pi checked", "order == pi", "distinct encodings"});
  for (const char* name : {"yang-anderson", "bakery", "burns"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    for (int n : {2, 3, 4, 5}) {
      const auto pis = util::Permutation::all(n);
      int order_ok = 0;
      std::set<std::string> encodings;
      for (const auto& pi : pis) {
        const auto construction = lb::construct(algorithm, n, pi);
        const auto exec =
            sim::validate_steps(algorithm, n, construction.canonical_linearization());
        if (benchx::enter_order(exec) == pi.order()) ++order_ok;
        encodings.insert(lb::encode(construction).text);
      }
      table.add_row({name, std::to_string(n), std::to_string(pis.size()),
                     std::to_string(order_ok) + "/" + std::to_string(pis.size()),
                     std::to_string(encodings.size()) + "/" + std::to_string(pis.size())});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

void metastep_report() {
  std::printf("-- metastep statistics (hiding machinery at work) --\n");
  util::Table table({"algorithm", "n", "metasteps", "insertions", "delta evals",
                     "max |own(m)|", "pread edges"});
  for (const char* name : {"yang-anderson", "bakery", "dijkstra"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    for (int n : {8, 16, 32, 64}) {
      const auto construction =
          lb::construct(algorithm, n, util::Permutation::reversed(n));
      std::size_t max_own = 0, preads = 0;
      for (const auto& m : construction.metasteps) {
        max_own = std::max(max_own, static_cast<std::size_t>(m.participant_count()));
        preads += m.pread.size();
      }
      table.add_row({name, std::to_string(n), std::to_string(construction.metasteps.size()),
                     std::to_string(construction.insertions),
                     std::to_string(construction.delta_evaluations), std::to_string(max_own),
                     std::to_string(preads)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

void bm_construct_algorithm(benchmark::State& state, const std::string& name) {
  const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
  const int n = static_cast<int>(state.range(0));
  const auto pi = util::Permutation::reversed(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lb::construct(algorithm, n, pi));
  }
}

BENCHMARK_CAPTURE(bm_construct_algorithm, yang_anderson, "yang-anderson")
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_construct_algorithm, bakery, "bakery")
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  order_report();
  metastep_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
