// Model-checker engine benchmark: flyweight state-space engine vs the
// pre-flyweight BFS.
//
// The "legacy" engine below is a faithful copy of the checker core this repo
// shipped before the flyweight rewrite: every transition copies the register
// file, clone()s the acting automaton, and re-hashes the entire state; the
// visited set is a std::unordered_map. Keeping it here (and only here) makes
// the speedup claim reproducible on any machine forever: the report prints
// states/sec for both engines on the same exhaustive explorations and fails
// (exit 1) if the aggregate n=3 speedup drops below the acceptance floor.
//
// Also reports the n=4 frontier: exhaustive state counts the flyweight
// engine finishes at interactive latency (legacy rate is estimated under a
// state cap so the bench stays fast), the engine's peak table memory per
// row (with a 3x-reduction floor vs the pre-closed-store engine on
// yang-anderson n=4), the delayed-duplicate-detection row (E13: the visited
// set's RAM-mandatory residency must be level-window bounded, and the
// progress pass must stay chunk-bounded instead of materializing the old
// O(states + edges) CSR — both floors enforced at identical exploration
// counts), the pid-symmetry quotient row (E14: storing only orbit
// representatives must cut yang-anderson n=4 by at least 3x at an unchanged
// verdict), the property-engine parity row (E15: the deprecated boolean
// surface and the explicit `--property mutex,progress` list must run the
// same engine at the same speed, within 10%, at byte-identical statistics),
// and the per-level dispatch cost of the persistent exp::TaskPool
// vs spawning threads per dispatch (what every BFS level paid before the
// pool). Wall-clock timings and peak_memory_bytes counters for the perf
// gate are registered with google-benchmark.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "algo/automaton_base.h"
#include "bench/common.h"
#include "check/model_checker.h"
#include "exp/pool.h"
#include "sim/automaton.h"
#include "util/hash.h"

using namespace melb;

namespace legacy {

// ---- pre-flyweight checker core (verbatim semantics, trimmed options) ----

using sim::CritKind;
using sim::Pid;
using sim::Step;
using sim::StepType;
using sim::Value;

struct State {
  std::vector<Value> registers;
  std::vector<std::shared_ptr<const sim::Automaton>> automata;
  int in_cs = 0;
  int done_count = 0;

  std::uint64_t fingerprint() const {
    util::Hasher hasher;
    for (Value v : registers) hasher.add_signed(v);
    for (const auto& automaton : automata) {
      hasher.add(automaton ? automaton->fingerprint() : 0x5eed);
    }
    return hasher.digest();
  }
};

struct Result {
  bool ok = false;
  bool exhausted_limit = false;
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
};

Result check(const sim::Algorithm& algorithm, int n, std::uint64_t max_states) {
  Result result;
  std::vector<State> states;
  std::unordered_map<std::uint64_t, std::uint32_t> index_of;
  std::vector<std::vector<std::uint32_t>> successors;

  State initial;
  const int regs = algorithm.num_registers(n);
  initial.registers.resize(static_cast<std::size_t>(regs));
  for (sim::Reg r = 0; r < regs; ++r) {
    initial.registers[static_cast<std::size_t>(r)] = algorithm.register_init(r, n);
  }
  initial.automata.resize(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) {
    initial.automata[static_cast<std::size_t>(p)] =
        std::shared_ptr<const sim::Automaton>(algorithm.make_process(p, n));
  }
  states.push_back(std::move(initial));
  successors.emplace_back();
  index_of.emplace(states[0].fingerprint(), 0);

  std::deque<std::uint32_t> frontier{0};
  std::vector<std::uint32_t> terminals;

  while (!frontier.empty()) {
    if (states.size() > max_states) {
      result.exhausted_limit = true;
      break;
    }
    const std::uint32_t idx = frontier.front();
    frontier.pop_front();

    if (states[idx].done_count == n) {
      terminals.push_back(idx);
      continue;
    }

    for (Pid pid = 0; pid < n; ++pid) {
      const auto automaton = states[idx].automata[static_cast<std::size_t>(pid)];
      if (!automaton || automaton->done()) continue;

      const Step step = automaton->propose();
      State next;
      next.registers = states[idx].registers;
      next.automata = states[idx].automata;
      next.in_cs = states[idx].in_cs;
      next.done_count = states[idx].done_count;

      Value read_value = 0;
      if (step.type == StepType::kRead) {
        read_value = next.registers[static_cast<std::size_t>(step.reg)];
      } else if (step.type == StepType::kWrite) {
        next.registers[static_cast<std::size_t>(step.reg)] = step.value;
      } else if (step.type == StepType::kRmw) {
        auto& cell = next.registers[static_cast<std::size_t>(step.reg)];
        read_value = cell;
        cell = sim::apply_rmw(step, cell);
      } else {
        if (step.crit == CritKind::kEnter) ++next.in_cs;
        if (step.crit == CritKind::kExit) --next.in_cs;
        if (step.crit == CritKind::kRem) ++next.done_count;
      }
      auto advanced = automaton->clone();
      advanced->advance(read_value);
      next.automata[static_cast<std::size_t>(pid)] = std::move(advanced);

      if (next.in_cs > 1) {
        result.states = states.size();
        return result;  // violation; not exercised by the bench algorithms
      }

      const std::uint64_t fp = next.fingerprint();
      auto [it, inserted] =
          index_of.try_emplace(fp, static_cast<std::uint32_t>(states.size()));
      if (inserted) {
        states.push_back(std::move(next));
        successors.emplace_back();
        frontier.push_back(it->second);
      }
      if (it->second != idx) {
        successors[idx].push_back(it->second);
        ++result.transitions;
      }
    }
  }

  result.states = states.size();

  // The pre-PR checker ran this progress pass by default (CheckOptions
  // check_progress = true); keep it so the baseline reflects what users paid.
  if (!result.exhausted_limit) {
    std::vector<std::vector<std::uint32_t>> predecessors(states.size());
    for (std::uint32_t from = 0; from < states.size(); ++from) {
      for (std::uint32_t to : successors[from]) predecessors[to].push_back(from);
    }
    std::vector<bool> can_finish(states.size(), false);
    std::deque<std::uint32_t> queue;
    for (std::uint32_t t : terminals) {
      can_finish[t] = true;
      queue.push_back(t);
    }
    while (!queue.empty()) {
      const std::uint32_t idx = queue.front();
      queue.pop_front();
      for (std::uint32_t pred : predecessors[idx]) {
        if (!can_finish[pred]) {
          can_finish[pred] = true;
          queue.push_back(pred);
        }
      }
    }
    for (std::uint32_t idx = 0; idx < states.size(); ++idx) {
      if (!can_finish[idx]) return result;  // livelock (not hit by bench algorithms)
    }
  }

  result.ok = true;
  return result;
}

}  // namespace legacy

namespace {

constexpr double kAcceptanceFloor = 5.0;  // aggregate n=3 states/sec ratio

// peak_memory_bytes of an uncapped yang-anderson n=4 check, measured on the
// PR-3 flyweight engine (full per-state records + flat 8-byte edge list;
// commit e176920, Release; stats are build-type independent). The acceptance
// floor requires the frontier/closed-store engine to stay >= 3x below it.
constexpr std::uint64_t kPr3YangAndersonN4PeakBytes = 811'100'000;
constexpr double kMemoryReductionFloor = 3.0;

struct Measurement {
  std::uint64_t states = 0;
  double seconds = 0.0;
  bool capped = false;
  std::uint64_t peak_bytes = 0;  // flyweight runs only (legacy predates the stat)
  double rate() const { return seconds > 0 ? static_cast<double>(states) / seconds : 0.0; }
};

// Best of three runs: exploration is deterministic, so the fastest run is
// the least scheduler-disturbed one — the same noise filter for both engines.
template <class Fn>
Measurement timed(Fn&& fn) {
  Measurement best;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const Measurement m = fn();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (rep == 0 || secs < best.seconds) {
      best = m;
      best.seconds = secs;
    }
  }
  return best;
}

Measurement run_legacy(const sim::Algorithm& algorithm, int n, std::uint64_t cap) {
  return timed([&] {
    const auto r = legacy::check(algorithm, n, cap);
    Measurement m;
    m.states = r.states;
    m.capped = r.exhausted_limit;
    return m;
  });
}

Measurement run_flyweight(const sim::Algorithm& algorithm, int n, std::uint64_t cap) {
  return timed([&] {
    check::CheckOptions options;
    options.max_states = cap;
    const auto r = check::check_algorithm(algorithm, n, options);
    Measurement m;
    m.states = r.states;
    m.capped = r.exhausted_limit;
    m.peak_bytes = r.peak_memory_bytes;
    return m;
  });
}

std::string fmt_states(const Measurement& m) {
  return std::to_string(m.states) + (m.capped ? " (capped)" : "");
}

std::string fmt_mib(std::uint64_t bytes) {
  return util::Table::fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 2);
}

// Returns the aggregate speedup (total flyweight rate / total legacy rate).
double engine_report() {
  benchx::print_header(
      "E10: model-checker engine — flyweight vs pre-flyweight BFS",
      "Exhaustive exploration; same state spaces, same dedup semantics.\n"
      "legacy = copy-registers + clone-automaton + full rehash per transition;\n"
      "flyweight = interned automata/registers, O(1) zobrist fingerprints,\n"
      "flat striped visited set, hot frontier + packed closed store.");

  struct Row {
    const char* algorithm;
    int n;
    std::uint64_t legacy_cap;     // keeps the bench fast where legacy crawls
    std::uint64_t flyweight_cap;
  };
  const std::vector<Row> rows = {
      {"burns", 3, 4'000'000, 4'000'000},
      {"bakery", 3, 4'000'000, 4'000'000},
      {"peterson-tree", 3, 4'000'000, 4'000'000},
      {"yang-anderson", 3, 4'000'000, 4'000'000},
      {"burns", 4, 100'000, 8'000'000},
      {"bakery", 4, 100'000, 8'000'000},
      {"yang-anderson", 4, 100'000, 1'000'000},
  };

  util::Table table({"algorithm", "n", "legacy states", "legacy st/s", "flyweight states",
                     "flyweight st/s", "speedup", "fly peak MiB"});
  double legacy_n3_states = 0, legacy_n3_secs = 0;
  double fly_n3_states = 0, fly_n3_secs = 0;
  for (const auto& row : rows) {
    const auto& info = algo::algorithm_by_name(row.algorithm);
    const auto legacy_m = run_legacy(*info.algorithm, row.n, row.legacy_cap);
    const auto fly_m = run_flyweight(*info.algorithm, row.n, row.flyweight_cap);
    const double speedup = legacy_m.rate() > 0 ? fly_m.rate() / legacy_m.rate() : 0.0;
    table.add_row({row.algorithm, std::to_string(row.n), fmt_states(legacy_m),
                   util::Table::fmt(legacy_m.rate(), 0), fmt_states(fly_m),
                   util::Table::fmt(fly_m.rate(), 0), util::Table::fmt(speedup, 2),
                   fmt_mib(fly_m.peak_bytes)});
    if (row.n == 3) {
      legacy_n3_states += static_cast<double>(legacy_m.states);
      legacy_n3_secs += legacy_m.seconds;
      fly_n3_states += static_cast<double>(fly_m.states);
      fly_n3_secs += fly_m.seconds;
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  const double legacy_rate = legacy_n3_states / legacy_n3_secs;
  const double fly_rate = fly_n3_states / fly_n3_secs;
  const double aggregate = fly_rate / legacy_rate;
  std::printf(
      "aggregate n=3: legacy %.0f states/sec, flyweight %.0f states/sec — %.2fx "
      "(acceptance floor %.1fx)\n",
      legacy_rate, fly_rate, aggregate, kAcceptanceFloor);
  return aggregate;
}

// Memory acceptance: one uncapped yang-anderson n=4 exploration (the
// 5.9M-state space PR-3 measured at ~773 MiB) must fit in a 3x smaller peak
// with the frontier/closed-store split. Returns the reduction ratio and the
// result (E13 reuses it as the hash-table-mode reference).
double memory_report(check::CheckResult& hash_result) {
  benchx::print_header(
      "E11: checker memory — hot frontier + packed closed store",
      "Uncapped yang-anderson n=4; peak_memory_bytes = engine-owned RAM\n"
      "tables at their high-water mark (identical for every worker count).");
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions options;
  options.max_states = 8'000'000;
  const auto result = check::check_algorithm(*info.algorithm, 4, options);
  const double ratio =
      result.peak_memory_bytes > 0
          ? static_cast<double>(kPr3YangAndersonN4PeakBytes) /
                static_cast<double>(result.peak_memory_bytes)
          : 0.0;
  std::printf(
      "yang-anderson n=4: %llu states, peak %s MiB vs PR-3 %s MiB — %.2fx smaller "
      "(acceptance floor %.1fx)\n\n",
      static_cast<unsigned long long>(result.states),
      fmt_mib(result.peak_memory_bytes).c_str(), fmt_mib(kPr3YangAndersonN4PeakBytes).c_str(),
      ratio, kMemoryReductionFloor);
  hash_result = result;
  return ratio;
}

// Delayed-duplicate-detection acceptance (E13). The same uncapped
// yang-anderson n=4 space under --ddd with a 96 MiB budget must (a) explore
// the exact same space — states, transitions, dedup hits — as hash-table
// mode, (b) keep the visited set's RAM-mandatory part (hash table + window
// arrays, NOT the spillable runs) at least kDddVisitedFloor smaller than the
// hash table that grows with total states, and (c) keep the progress pass's
// transient memory at least kProgressFloor below the predecessor CSR it
// replaced (4 B/edge + 4 B/state). Returns false if any check fails.
constexpr double kDddVisitedFloor = 3.0;
constexpr double kProgressFloor = 8.0;

bool ddd_report(const check::CheckResult& hash_result) {
  benchx::print_header(
      "E13: delayed duplicate detection — level-window visited set +\n"
      "external-memory progress pass",
      "Uncapped yang-anderson n=4 under --ddd --memory-limit-mb 96: dedup by\n"
      "sort-merge against spilled fingerprint runs; the visited structure's\n"
      "resident bytes are bounded by the level window, not total states, and\n"
      "the progress pass streams edges in reverse instead of building a CSR.");
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions options;
  options.max_states = 8'000'000;
  options.ddd = true;
  options.memory_limit_mb = 96;
  const auto result = check::check_algorithm(*info.algorithm, 4, options);

  bool ok = true;
  if (result.states != hash_result.states ||
      result.transitions != hash_result.transitions ||
      result.dedup_hits != hash_result.dedup_hits) {
    std::fprintf(stderr,
                 "FAIL: DDD exploration diverged from hash-table mode "
                 "(states %llu vs %llu, transitions %llu vs %llu, dedup %llu vs %llu)\n",
                 static_cast<unsigned long long>(result.states),
                 static_cast<unsigned long long>(hash_result.states),
                 static_cast<unsigned long long>(result.transitions),
                 static_cast<unsigned long long>(hash_result.transitions),
                 static_cast<unsigned long long>(result.dedup_hits),
                 static_cast<unsigned long long>(hash_result.dedup_hits));
    ok = false;
  }
  const double visited_ratio =
      result.peak_visited_bytes > 0
          ? static_cast<double>(hash_result.peak_visited_bytes) /
                static_cast<double>(result.peak_visited_bytes)
          : 0.0;
  // The CSR the progress pass materialized before this PR.
  const std::uint64_t csr_bytes =
      (hash_result.states + 1) * 4 + hash_result.transitions * 4;
  const double progress_ratio =
      result.progress_peak_bytes > 0
          ? static_cast<double>(csr_bytes) /
                static_cast<double>(result.progress_peak_bytes)
          : 0.0;
  std::printf(
      "yang-anderson n=4: %llu states at identical counts to hash mode\n"
      "visited-set resident peak: hash %s MiB (grows with states) vs DDD %s MiB\n"
      "  (level-window bound) — %.2fx smaller (floor %.1fx); %llu sorted runs,\n"
      "  %s MiB spilled, total engine peak %s MiB\n"
      "progress pass: %s MiB transient (1 bit/state + one decoded edge chunk)\n"
      "  vs the retired CSR's %s MiB — %.2fx smaller (floor %.1fx)\n\n",
      static_cast<unsigned long long>(result.states),
      fmt_mib(hash_result.peak_visited_bytes).c_str(),
      fmt_mib(result.peak_visited_bytes).c_str(), visited_ratio, kDddVisitedFloor,
      static_cast<unsigned long long>(result.ddd_runs),
      fmt_mib(result.spilled_bytes).c_str(), fmt_mib(result.peak_memory_bytes).c_str(),
      fmt_mib(result.progress_peak_bytes).c_str(), fmt_mib(csr_bytes).c_str(),
      progress_ratio, kProgressFloor);
  if (visited_ratio < kDddVisitedFloor) {
    std::fprintf(stderr,
                 "FAIL: DDD visited-set residency only %.2fx below hash mode "
                 "(floor %.1fx)\n",
                 visited_ratio, kDddVisitedFloor);
    ok = false;
  }
  if (progress_ratio < kProgressFloor) {
    std::fprintf(stderr,
                 "FAIL: progress pass transient only %.2fx below the CSR "
                 "(floor %.1fx)\n",
                 progress_ratio, kProgressFloor);
    ok = false;
  }
  return ok;
}

// Pid-symmetry acceptance (E14). The same uncapped yang-anderson n=4 space
// under --symmetry must (a) reach the same verdict as plain mode, and (b)
// store at least kSymmetryReductionFloor fewer states — the quotient under
// the 8-element tree-automorphism group (the true orbit count is 7.99x
// smaller). Returns the reduction ratio; main gates on the floor.
constexpr double kSymmetryReductionFloor = 3.0;

double symmetry_report(const check::CheckResult& hash_result) {
  benchx::print_header(
      "E14: pid-symmetry reduction — orbit representatives only",
      "Uncapped yang-anderson n=4 under --symmetry: successors are\n"
      "canonicalized under the root-fixing tree-automorphism group before\n"
      "fingerprinting; one byte of witness per closed state lets trace replay\n"
      "recover concrete executions through the inverse permutation chain.");
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions options;
  options.max_states = 8'000'000;
  options.symmetry = true;
  const auto result = check::check_algorithm(*info.algorithm, 4, options);
  if (!result.ok || result.ok != hash_result.ok) {
    std::fprintf(stderr, "FAIL: symmetry verdict diverged from plain mode (%s)\n",
                 result.violation.c_str());
    return 0.0;
  }
  const double ratio = result.states > 0
                           ? static_cast<double>(hash_result.states) /
                                 static_cast<double>(result.states)
                           : 0.0;
  std::printf(
      "yang-anderson n=4: group of %llu, %llu states / %llu transitions vs plain "
      "%llu / %llu\n"
      "  — %.2fx fewer states (acceptance floor %.1fx), peak %s MiB vs plain %s MiB\n\n",
      static_cast<unsigned long long>(result.symmetry_group),
      static_cast<unsigned long long>(result.states),
      static_cast<unsigned long long>(result.transitions),
      static_cast<unsigned long long>(hash_result.states),
      static_cast<unsigned long long>(hash_result.transitions), ratio,
      kSymmetryReductionFloor, fmt_mib(result.peak_memory_bytes).c_str(),
      fmt_mib(hash_result.peak_memory_bytes).c_str());
  return ratio;
}

// Property-engine acceptance (E15). check_algorithm with the deprecated
// check_mutex/check_progress booleans (the PR-6 calling surface) and with an
// explicit properties = {"mutex", "progress"} list must reach byte-identical
// exploration statistics at the same speed — the property redesign may not
// tax the default invariants by more than kPropertyOverheadCap in either
// direction. Catches a second code path sneaking back in, or per-candidate
// hook overhead that only one surface pays. The full four-property run is
// printed alongside for scale (lockout + rmr-bound legitimately cost more:
// they log edges with self-loops and run end-of-exploration passes).
constexpr double kPropertyOverheadCap = 0.10;

bool properties_report() {
  benchx::print_header(
      "E15: property engine — explicit list vs deprecated boolean shim",
      "Exhaustive n=3 explorations; shim = default CheckOptions booleans,\n"
      "list = properties {mutex, progress}; both build the same Property\n"
      "instances, so throughput must match within the acceptance cap.");

  const std::vector<std::pair<const char*, int>> rows = {
      {"bakery", 3}, {"yang-anderson", 3}};

  util::Table table({"algorithm", "n", "states", "shim st/s", "list st/s",
                     "full-list st/s", "rmr bound"});
  double shim_states = 0, shim_secs = 0, list_states = 0, list_secs = 0;
  bool stats_ok = true;
  for (const auto& [name, n] : rows) {
    const auto& info = algo::algorithm_by_name(name);
    const auto shim = timed([&] {
      check::CheckOptions options;
      options.max_states = 4'000'000;
      const auto r = check::check_algorithm(*info.algorithm, n, options);
      Measurement m;
      m.states = r.states;
      return m;
    });
    check::CheckResult list_result;
    const auto list = timed([&] {
      check::CheckOptions options;
      options.max_states = 4'000'000;
      options.properties = {"mutex", "progress"};
      list_result = check::check_algorithm(*info.algorithm, n, options);
      Measurement m;
      m.states = list_result.states;
      return m;
    });
    check::CheckResult full_result;
    const auto full = timed([&] {
      check::CheckOptions options;
      options.max_states = 4'000'000;
      options.properties = {"mutex", "progress", "lockout",
                            "rmr-bound:state-change"};
      full_result = check::check_algorithm(*info.algorithm, n, options);
      Measurement m;
      m.states = full_result.states;
      return m;
    });
    if (shim.states != list.states || list.states != full.states) {
      std::fprintf(stderr,
                   "FAIL: %s n=%d explorations diverged across property "
                   "surfaces (%llu / %llu / %llu states)\n",
                   name, n, static_cast<unsigned long long>(shim.states),
                   static_cast<unsigned long long>(list.states),
                   static_cast<unsigned long long>(full.states));
      stats_ok = false;
    }
    std::string bound = "-";
    for (const auto& pr : full_result.property_reports) {
      if (pr.has_bound) bound = std::to_string(pr.bound);
    }
    table.add_row({name, std::to_string(n), std::to_string(shim.states),
                   util::Table::fmt(shim.rate(), 0), util::Table::fmt(list.rate(), 0),
                   util::Table::fmt(full.rate(), 0), bound});
    shim_states += static_cast<double>(shim.states);
    shim_secs += shim.seconds;
    list_states += static_cast<double>(list.states);
    list_secs += list.seconds;
  }
  std::printf("%s\n", table.to_string().c_str());

  const double shim_rate = shim_states / shim_secs;
  const double list_rate = list_states / list_secs;
  const double overhead = shim_rate > 0 ? shim_rate / list_rate - 1.0 : 0.0;
  std::printf(
      "aggregate n=3: shim %.0f states/sec, explicit list %.0f states/sec — "
      "%.1f%% apart (acceptance cap %.0f%%)\n\n",
      shim_rate, list_rate, 100.0 * std::abs(overhead),
      100.0 * kPropertyOverheadCap);
  if (std::abs(overhead) > kPropertyOverheadCap) {
    std::fprintf(stderr,
                 "FAIL: explicit property list %.1f%% apart from the boolean "
                 "shim (cap %.0f%%)\n",
                 100.0 * std::abs(overhead), 100.0 * kPropertyOverheadCap);
    return false;
  }
  return stats_ok;
}

// ---------------------------------------------------------------------------
// Per-level dispatch cost: spawn-per-dispatch (what every BFS level paid
// before exp::TaskPool) vs waking a persistent pool. Tiny tasks isolate the
// dispatch overhead itself.
// ---------------------------------------------------------------------------

// The pre-pool dispatch: spawn `workers` threads, round-robin the indices,
// join — a faithful miniature of the old run_indexed_tasks.
void spawn_dispatch(std::size_t count, int workers,
                    const std::function<void(std::size_t, int)>& task) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t i = static_cast<std::size_t>(w); i < count;
           i += static_cast<std::size_t>(workers)) {
        task(i, w);
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

double dispatch_report() {
  benchx::print_header(
      "E12: per-level dispatch — thread spawn vs persistent TaskPool",
      "1024 dispatches of 64 near-empty tasks on 4 workers: the per-BFS-level\n"
      "fan-out cost for a deep, narrow state space.");
  constexpr std::size_t kDispatches = 1024;
  constexpr std::size_t kTasksPer = 64;
  constexpr int kWorkers = 4;
  std::atomic<std::uint64_t> sink{0};
  const std::function<void(std::size_t, int)> task = [&](std::size_t i, int) {
    sink.fetch_add(i, std::memory_order_relaxed);
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t d = 0; d < kDispatches; ++d) spawn_dispatch(kTasksPer, kWorkers, task);
  const auto t1 = std::chrono::steady_clock::now();
  exp::TaskPool pool(kWorkers);
  const auto t2 = std::chrono::steady_clock::now();
  for (std::size_t d = 0; d < kDispatches; ++d) pool.run(kTasksPer, task);
  const auto t3 = std::chrono::steady_clock::now();

  const double spawn_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / kDispatches;
  const double pool_us =
      std::chrono::duration<double, std::micro>(t3 - t2).count() / kDispatches;
  const double ratio = pool_us > 0 ? spawn_us / pool_us : 0.0;
  std::printf(
      "spawn-per-dispatch %.1f us/level, persistent pool %.1f us/level — %.1fx "
      "cheaper (sink %llu)\n\n",
      spawn_us, pool_us, ratio,
      static_cast<unsigned long long>(sink.load(std::memory_order_relaxed)));
  return ratio;
}

// ---------------------------------------------------------------------------
// Deep, narrow state space: few processes with long programs. The frontier
// stays in the hundreds while the exploration runs ~130 levels, so per-level
// dispatch latency — not expansion throughput — dominates a parallel check.
// ---------------------------------------------------------------------------

class DeepNarrowProcess final : public algo::CloneableAutomaton<DeepNarrowProcess> {
 public:
  static constexpr int kSpinWrites = 40;

  explicit DeepNarrowProcess(sim::Pid pid) : pid_(pid) {}

  sim::Step propose() const override {
    if (pc_ == 0) return sim::Step::crit_step(pid_, sim::CritKind::kTry);
    if (pc_ <= kSpinWrites) return sim::Step::write(pid_, pid_, pc_);
    switch (pc_ - kSpinWrites) {
      case 1: return sim::Step::crit_step(pid_, sim::CritKind::kEnter);
      case 2: return sim::Step::crit_step(pid_, sim::CritKind::kExit);
      default: break;
    }
    return sim::Step::crit_step(pid_, sim::CritKind::kRem);
  }

  void advance(sim::Value) override {
    if (pc_ < kSpinWrites + 4) ++pc_;
  }

  bool done() const override { return pc_ == kSpinWrites + 4; }

  void hash_into(util::Hasher& hasher) const { hasher.add_all({pc_, pid_}); }

 private:
  sim::Pid pid_;
  int pc_ = 0;
};

class DeepNarrowAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "deep-narrow-fixture"; }
  int num_registers(int n) const override { return n; }
  std::unique_ptr<sim::Automaton> make_process(sim::Pid pid, int) const override {
    return std::make_unique<DeepNarrowProcess>(pid);
  }
};

void bm_check_flyweight(benchmark::State& state, const std::string& name, int n) {
  const auto& info = algo::algorithm_by_name(name);
  std::uint64_t peak = 0;
  for (auto _ : state) {
    check::CheckOptions options;
    options.max_states = 4'000'000;
    const auto result = check::check_algorithm(*info.algorithm, n, options);
    if (!result.ok) state.SkipWithError("check failed");
    benchmark::DoNotOptimize(result.states);
    peak = result.peak_memory_bytes;
  }
  // Deterministic per run, so the perf gate can track regressions of the
  // engine's table footprint alongside real_time.
  state.counters["peak_memory_bytes"] =
      benchmark::Counter(static_cast<double>(peak));
}

void bm_check_legacy(benchmark::State& state, const std::string& name, int n) {
  const auto& info = algo::algorithm_by_name(name);
  for (auto _ : state) {
    const auto result = legacy::check(*info.algorithm, n, 4'000'000);
    if (!result.ok) state.SkipWithError("check failed");
    benchmark::DoNotOptimize(result.states);
  }
}

// The deep-narrow fixture under 4 workers: ~130 BFS levels whose frontier
// peaks in the low thousands, so per-level pool dispatch latency dominates.
// Mutual exclusion is deliberately not checked (the fixture's processes are
// independent); progress must hold.
void bm_check_deep_narrow(benchmark::State& state) {
  DeepNarrowAlgorithm algorithm;
  std::uint64_t peak = 0;
  for (auto _ : state) {
    check::CheckOptions options;
    options.check_mutex = false;
    options.workers = 4;
    options.max_states = 4'000'000;
    const auto result = check::check_algorithm(algorithm, 3, options);
    if (!result.ok) state.SkipWithError("check failed");
    benchmark::DoNotOptimize(result.states);
    peak = result.peak_memory_bytes;
  }
  state.counters["peak_memory_bytes"] =
      benchmark::Counter(static_cast<double>(peak));
}

// Delayed duplicate detection on yang-anderson n=3 under a 4 MiB budget: the
// perf gate tracks its wall time plus where the bytes live (total peak and
// the level-window-bounded visited residency).
void bm_check_ddd(benchmark::State& state) {
  const auto& info = algo::algorithm_by_name("yang-anderson");
  std::uint64_t peak = 0;
  std::uint64_t visited_peak = 0;
  for (auto _ : state) {
    check::CheckOptions options;
    options.max_states = 4'000'000;
    options.ddd = true;
    options.memory_limit_mb = 4;
    const auto result = check::check_algorithm(*info.algorithm, 3, options);
    if (!result.ok) state.SkipWithError("check failed");
    benchmark::DoNotOptimize(result.states);
    peak = result.peak_memory_bytes;
    visited_peak = result.peak_visited_bytes;
  }
  state.counters["peak_memory_bytes"] =
      benchmark::Counter(static_cast<double>(peak));
  state.counters["peak_visited_bytes"] =
      benchmark::Counter(static_cast<double>(visited_peak));
}

// Symmetry reduction on the wall clock: the canonicalization pays O(|G|) per
// candidate to store a |G|-times-smaller quotient. The perf gate tracks the
// wall time alongside the stored-state count per row.
void bm_check_symmetry(benchmark::State& state, const std::string& name, int n) {
  const auto& info = algo::algorithm_by_name(name);
  std::uint64_t states = 0;
  std::uint64_t peak = 0;
  for (auto _ : state) {
    check::CheckOptions options;
    options.max_states = 4'000'000;
    options.symmetry = true;
    const auto result = check::check_algorithm(*info.algorithm, n, options);
    if (!result.ok) state.SkipWithError("check failed");
    benchmark::DoNotOptimize(result.states);
    states = result.states;
    peak = result.peak_memory_bytes;
  }
  state.counters["states"] = benchmark::Counter(static_cast<double>(states));
  state.counters["peak_memory_bytes"] =
      benchmark::Counter(static_cast<double>(peak));
}

BENCHMARK_CAPTURE(bm_check_flyweight, bakery_n3, "bakery", 3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_check_flyweight, yang_anderson_n3, "yang-anderson", 3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_check_legacy, bakery_n3, "bakery", 3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_check_ddd)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_check_deep_narrow)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_check_symmetry, yang_anderson_n3, "yang-anderson", 3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_check_symmetry, mcs_n3, "mcs-rmw", 3)
    ->Unit(benchmark::kMillisecond);

// The full property list on yang-anderson n=3: mutex vets, progress sweeps
// the edge stream, lockout logs + Tarjans, rmr-bound runs its longest-path
// fixpoint. The certified bound is exported as a counter so the perf gate
// notices if it ever moves.
void bm_check_properties(benchmark::State& state) {
  const auto& info = algo::algorithm_by_name("yang-anderson");
  std::uint64_t peak = 0;
  double bound = 0.0;
  for (auto _ : state) {
    check::CheckOptions options;
    options.max_states = 4'000'000;
    options.properties = {"mutex", "progress", "lockout",
                          "rmr-bound:state-change"};
    const auto result = check::check_algorithm(*info.algorithm, 3, options);
    if (!result.ok) state.SkipWithError("check failed");
    benchmark::DoNotOptimize(result.states);
    peak = result.peak_memory_bytes;
    for (const auto& pr : result.property_reports) {
      if (pr.has_bound) bound = static_cast<double>(pr.bound);
    }
  }
  state.counters["peak_memory_bytes"] =
      benchmark::Counter(static_cast<double>(peak));
  state.counters["rmr_bound"] = benchmark::Counter(bound);
}

BENCHMARK(bm_check_properties)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const double aggregate = engine_report();
  check::CheckResult hash_n4;
  const double memory_ratio = memory_report(hash_n4);
  const bool ddd_ok = ddd_report(hash_n4);
  const double symmetry_ratio = symmetry_report(hash_n4);
  const bool properties_ok = properties_report();
  dispatch_report();  // informational: pool vs spawn dispatch latency
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  int rc = 0;
  if (aggregate < kAcceptanceFloor) {
    std::fprintf(stderr, "FAIL: aggregate n=3 speedup %.2fx below %.1fx floor\n",
                 aggregate, kAcceptanceFloor);
    rc = 1;
  }
  if (memory_ratio < kMemoryReductionFloor) {
    std::fprintf(stderr,
                 "FAIL: yang-anderson n=4 peak memory only %.2fx below the PR-3 "
                 "engine (floor %.1fx)\n",
                 memory_ratio, kMemoryReductionFloor);
    rc = 1;
  }
  if (!ddd_ok) rc = 1;        // diagnostics already printed by ddd_report
  if (!properties_ok) rc = 1;  // likewise properties_report
  if (symmetry_ratio < kSymmetryReductionFloor) {
    std::fprintf(stderr,
                 "FAIL: yang-anderson n=4 symmetry reduction only %.2fx "
                 "(floor %.1fx)\n",
                 symmetry_ratio, kSymmetryReductionFloor);
    rc = 1;
  }
  return rc;
}
