// Experiment E6 (§3.3): the same canonical execution under all four cost
// models. Shows what the SC model discounts (single-register busy-waits) and
// what it charges that CC does not (multi-register spin alternation), and
// the DSM view for the local-spin algorithm. Runs as one faithful-mode
// campaign on the exp/ sweep engine, which records every model's accounting
// per cell.
#include "bench/common.h"

using namespace melb;

int main() {
  benchx::print_header(
      "E6: one execution, four cost models (SC model definition, paper §3.3)",
      "Faithful round-robin canonical run at n=16; busy-wait reads recorded.\n"
      "total = every access; SC = Def 3.1; CC = cache-coherence misses;\n"
      "DSM = accesses outside the process's partition.");

  const int n = 16;
  exp::CampaignSpec spec;
  spec.algorithms = {"yang-anderson", "bakery", "peterson-tree", "filter", "dijkstra",
                     "burns"};
  spec.schedulers = {"round-robin"};
  spec.sizes = {n};
  spec.mode = sim::RunMode::kFaithful;
  spec.lb_pipeline = false;  // E6 is about cost accounting, not the pipeline
  const auto report = benchx::run_sweep(spec);

  util::Table table({"algorithm", "total accesses", "SC cost", "CC cost", "DSM cost",
                     "SC max/process", "CC max/process"});
  for (const auto& name : spec.algorithms) {
    const auto& cell = benchx::cell_at(report, name, "round-robin", n);
    if (!cell.completed) {
      table.add_row({name, "did-not-complete"});
      continue;
    }
    table.add_row({name, std::to_string(cell.total_accesses), std::to_string(cell.sc_cost),
                   std::to_string(cell.cc_cost), std::to_string(cell.dsm_cost),
                   std::to_string(cell.sc_max_process), std::to_string(cell.cc_max_process)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: total >> SC for algorithms with long single-register spins (free in\n"
      "SC); SC > CC where spins alternate registers (every read changes state: the\n"
      "SC model charges Peterson/filter/dijkstra waits that CC caches absorb).\n"
      "DSM is small only for yang-anderson, whose spin registers are local.\n");
  return 0;
}
