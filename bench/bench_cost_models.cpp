// Experiment E6 (§3.3): the same canonical execution under all four cost
// models. Shows what the SC model discounts (single-register busy-waits) and
// what it charges that CC does not (multi-register spin alternation), and
// the DSM view for the local-spin algorithm.
#include "bench/common.h"
#include "cost/cost_model.h"
#include "sim/canonical.h"
#include "sim/scheduler.h"

using namespace melb;

int main() {
  benchx::print_header(
      "E6: one execution, four cost models (SC model definition, paper §3.3)",
      "Faithful round-robin canonical run at n=16; busy-wait reads recorded.\n"
      "total = every access; SC = Def 3.1; CC = cache-coherence misses;\n"
      "DSM = accesses outside the process's partition.");

  const int n = 16;
  util::Table table({"algorithm", "total accesses", "SC cost", "CC cost", "DSM cost",
                     "SC max/process", "CC max/process"});
  for (const char* name :
       {"yang-anderson", "bakery", "peterson-tree", "filter", "dijkstra", "burns"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    sim::RoundRobinScheduler scheduler;
    const auto run = sim::run_canonical(algorithm, n, scheduler, sim::RunMode::kFaithful,
                                        50'000'000);
    if (!run.completed) {
      table.add_row({name, "did-not-complete"});
      continue;
    }
    cost::TotalAccessCost total;
    cost::StateChangeCost sc;
    cost::CacheCoherentCost cc(algorithm.num_registers(n));
    cost::DsmCost dsm(algorithm, n);
    table.add_row({name, std::to_string(total.total_cost(run.exec, n)),
                   std::to_string(sc.total_cost(run.exec, n)),
                   std::to_string(cc.total_cost(run.exec, n)),
                   std::to_string(dsm.total_cost(run.exec, n)),
                   std::to_string(sc.max_process_cost(run.exec, n)),
                   std::to_string(cc.max_process_cost(run.exec, n))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: total >> SC for algorithms with long single-register spins (free in\n"
      "SC); SC > CC where spins alternate registers (every read changes state: the\n"
      "SC model charges Peterson/filter/dijkstra waits that CC caches absorb).\n"
      "DSM is small only for yang-anderson, whose spin registers are local.\n");
  return 0;
}
