// Experiment E2 (Theorem 6.2): |E_pi| = O(C(alpha_pi)).
//
// For each algorithm we sweep n and permutations, recording the SC cost and
// the encoding size (ASCII bytes and compact binary bits), then fit
// size = a·cost + b. Linearity (R² ≈ 1, moderate slope) is the theorem.
#include "bench/common.h"
#include "lb/encode.h"
#include "sim/simulator.h"
#include "util/stats.h"

using namespace melb;

int main() {
  benchx::print_header(
      "E2: encoding length vs execution cost (Theorem 6.2)",
      "Encode(M, pre) emits O(1) amortized bits per unit of SC cost. We fit\n"
      "binary_bits = a*C + b over a sweep of n and pi per algorithm.");

  util::Table table({"algorithm", "samples", "slope bits/C", "intercept", "R^2",
                     "max bits/C", "ascii bytes/C"});
  for (const char* name : {"yang-anderson", "bakery", "peterson-tree", "burns", "dijkstra",
                           "filter", "lamport-fast", "dekker-tree", "kessels-tree"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    std::vector<double> costs, bits;
    double max_ratio = 0, ascii_ratio_sum = 0;
    int samples = 0;
    for (int n : {2, 4, 8, 16, 24, 32}) {
      // filter's construction is Theta(n^2) metasteps with a dense partial
      // order; cap its sweep so the report stays interactive.
      if (std::string(name) == "filter" && n > 16) continue;
      for (const auto& pi : benchx::permutation_sample(n, 4)) {
        const auto construction = lb::construct(algorithm, n, pi);
        const auto encoding = lb::encode(construction);
        const auto exec =
            sim::validate_steps(algorithm, n, construction.canonical_linearization());
        const double cost = static_cast<double>(exec.sc_cost());
        costs.push_back(cost);
        bits.push_back(static_cast<double>(encoding.binary_bits));
        if (cost > 0) {
          max_ratio = std::max(max_ratio, bits.back() / cost);
          ascii_ratio_sum += static_cast<double>(encoding.text.size()) / cost;
        }
        ++samples;
      }
    }
    const auto fit = util::fit_linear(costs, bits);
    table.add_row({name, std::to_string(samples), util::Table::fmt(fit.slope, 2),
                   util::Table::fmt(fit.intercept, 1), util::Table::fmt(fit.r2, 4),
                   util::Table::fmt(max_ratio, 2),
                   util::Table::fmt(ascii_ratio_sum / samples, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: R^2 near 1 with a bounded slope across algorithms = |E| is linear\n"
      "in C; with n! encodings needing Omega(n log n) bits, C = Omega(n log n).\n");
  return 0;
}
