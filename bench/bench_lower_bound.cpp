// Experiment E1 (Theorem 7.5): the Ω(n log n) lower bound.
//
// For every algorithm and every n, Construct(π) yields a canonical execution
// α_π with SC cost C(α_π); the theorem says max over π grows at least like
// n log n. We sweep sampled permutations and report the max and mean cost
// and the ratio C / (n log2 n), which must stay bounded away from zero for
// every livelock-free algorithm (and stays Θ(1) for Yang–Anderson, the tight
// case).
#include <cmath>

#include "bench/common.h"
#include "cost/cost_model.h"
#include "sim/simulator.h"

using namespace melb;

int main() {
  benchx::print_header(
      "E1: lower bound — max_pi C(alpha_pi) vs n log n (Theorem 7.5)",
      "Construct(pi) against each algorithm; SC cost of the resulting canonical\n"
      "execution. Ratio = max cost / (n log2 n); the bound predicts ratio = Omega(1).");

  // The CC column addresses §8's conjecture that the technique extends to
  // the cache-coherent model: the *same* constructed executions also cost
  // Omega(n log n) under CC accounting for the tight algorithm.
  util::Table table({"algorithm", "n", "permutations", "C max", "C mean", "C min",
                     "max/(n log2 n)", "CC max", "CC/(n log2 n)"});
  for (const char* name :
       {"yang-anderson", "bakery", "peterson-tree", "burns", "dekker-tree",
        "kessels-tree", "lamport-fast"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    for (int n : {2, 4, 8, 12, 16, 24, 32, 48, 64}) {
      const auto pis = benchx::permutation_sample(n, 6);
      util::RunningStats stats;
      util::RunningStats cc_stats;
      const cost::CacheCoherentCost cc(algorithm.num_registers(n));
      for (const auto& pi : pis) {
        const auto construction = lb::construct(algorithm, n, pi);
        const auto exec =
            sim::validate_steps(algorithm, n, construction.canonical_linearization());
        stats.add(static_cast<double>(exec.sc_cost()));
        cc_stats.add(static_cast<double>(cc.total_cost(exec, n)));
      }
      table.add_row({name, std::to_string(n), std::to_string(pis.size()),
                     util::Table::fmt(stats.max(), 0), util::Table::fmt(stats.mean(), 1),
                     util::Table::fmt(stats.min(), 0),
                     util::Table::fmt(stats.max() / benchx::n_log2_n(n), 2),
                     util::Table::fmt(cc_stats.max(), 0),
                     util::Table::fmt(cc_stats.max() / benchx::n_log2_n(n), 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "Reading: every algorithm's ratio column stays >= a constant (the bound);\n"
      "yang-anderson's stays Theta(1) (tightness), while bakery/burns grow with n\n"
      "(their cost is Theta(n^2), i.e. ratio ~ n / log n).\n");
  return 0;
}
