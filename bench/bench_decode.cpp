// Experiment E3 (Theorem 7.4): unique decodability, plus decoder timing.
//
// Verifies Decode(Encode(Construct(pi))) reproduces a linearization (right
// CS order, right cost, step-identical projections) across a sweep, then
// registers google-benchmark timings for the three pipeline phases.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "lb/decode.h"
#include "lb/encode.h"
#include "sim/simulator.h"

using namespace melb;

namespace {

void verification_report() {
  benchx::print_header(
      "E3: decode round trip (Theorem 7.4)",
      "Decode sees only E_pi and the transition function; its output must be a\n"
      "linearization of (M, pre) — same CS order, same SC cost.");

  util::Table table({"algorithm", "n", "permutations", "round trips OK", "mean decode iters"});
  for (const char* name : {"yang-anderson", "bakery", "burns", "dijkstra"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    for (int n : {4, 8, 16, 24, 32, 48}) {
      const auto pis = benchx::permutation_sample(n, 4);
      int ok = 0;
      util::RunningStats iters;
      for (const auto& pi : pis) {
        const auto construction = lb::construct(algorithm, n, pi);
        const auto encoding = lb::encode(construction);
        const auto decoded = lb::decode(algorithm, encoding.text);
        const auto reference =
            sim::validate_steps(algorithm, n, construction.canonical_linearization());
        const bool good = benchx::enter_order(decoded.execution) == pi.order() &&
                          decoded.execution.sc_cost() == reference.sc_cost();
        ok += good ? 1 : 0;
        iters.add(static_cast<double>(decoded.iterations));
      }
      table.add_row({name, std::to_string(n),
                     std::to_string(pis.size()),
                     std::to_string(ok) + "/" + std::to_string(pis.size()),
                     util::Table::fmt(iters.mean(), 1)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

void bm_construct(benchmark::State& state) {
  const auto& algorithm = *algo::algorithm_by_name("yang-anderson").algorithm;
  const int n = static_cast<int>(state.range(0));
  const auto pi = util::Permutation::reversed(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lb::construct(algorithm, n, pi));
  }
}

void bm_encode(benchmark::State& state) {
  const auto& algorithm = *algo::algorithm_by_name("yang-anderson").algorithm;
  const int n = static_cast<int>(state.range(0));
  const auto construction = lb::construct(algorithm, n, util::Permutation::reversed(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lb::encode(construction));
  }
}

void bm_decode(benchmark::State& state) {
  const auto& algorithm = *algo::algorithm_by_name("yang-anderson").algorithm;
  const int n = static_cast<int>(state.range(0));
  const auto encoding = lb::encode(lb::construct(algorithm, n, util::Permutation::reversed(n)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lb::decode(algorithm, encoding.text));
  }
}

BENCHMARK(bm_construct)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_encode)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_decode)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  verification_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
