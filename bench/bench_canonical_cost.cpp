// Experiment E4 (tightness): canonical SC cost of the algorithm library.
//
// Yang–Anderson must track n log n (cost / (n log2 n) flat in n) while the
// classical baselines grow quadratically, under several schedulers. The whole
// grid runs as one campaign on the exp/ sweep engine: every (algorithm,
// scheduler, n) cell is an independent task, so the report parallelizes
// across cores while the numbers stay a pure function of the campaign seed.
#include "bench/common.h"
#include "util/chart.h"

using namespace melb;

int main() {
  benchx::print_header(
      "E4: canonical-execution SC cost per algorithm (tightness of the bound)",
      "Each cell: SC cost of one canonical execution (n processes, one CS each).\n"
      "Normalized column = cost / (n log2 n).");

  const std::vector<std::string> algorithms = {
      "yang-anderson", "dekker-tree", "kessels-tree", "bakery", "peterson-tree",
      "filter",        "dijkstra",    "burns",        "lamport-fast", "static-rr"};
  const std::vector<int> sizes = {4, 8, 16, 32, 64, 128};

  exp::CampaignSpec spec;
  spec.algorithms = algorithms;
  spec.schedulers = {"sequential", "round-robin", "random", "convoy"};
  spec.sizes = sizes;
  spec.seed = 424242;
  spec.max_steps = 200'000'000;
  spec.lb_pipeline = false;  // E4 measures canonical runs only
  const auto report = benchx::run_sweep(spec);

  for (const auto& sched_name : spec.schedulers) {
    std::printf("-- scheduler: %s --\n", sched_name.c_str());
    util::Table table({"algorithm", "n=4", "n=8", "n=16", "n=32", "n=64", "n=128",
                       "cost/(n lg n) @128"});
    for (const auto& name : algorithms) {
      std::vector<std::string> row{name};
      double last_cost = 0;
      for (int n : sizes) {
        const auto& cell = benchx::cell_at(report, name, sched_name, n);
        if (!cell.completed) {
          row.push_back(cell.livelocked ? "livelock" : "cap");
          last_cost = 0;
          continue;
        }
        last_cost = static_cast<double>(cell.sc_cost);
        row.push_back(std::to_string(cell.sc_cost));
      }
      row.push_back(last_cost > 0 ? util::Table::fmt(last_cost / benchx::n_log2_n(128), 2)
                                  : "-");
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // Growth chart (sequential scheduler): slopes on log-log axes make the
  // complexity classes visible — Theta(n log n) just above slope 1,
  // Theta(n^2) at slope 2. Separate small campaign with a higher step cap so
  // runs the table reports as "cap" can still contribute chart points.
  exp::CampaignSpec chart_spec;
  chart_spec.algorithms = {"yang-anderson", "bakery", "filter", "dekker-tree"};
  chart_spec.schedulers = {"sequential"};
  chart_spec.sizes = sizes;
  chart_spec.seed = spec.seed;
  chart_spec.max_steps = 500'000'000;
  chart_spec.lb_pipeline = false;
  const auto chart_report = benchx::run_sweep(chart_spec);

  std::vector<util::ChartSeries> series;
  const char markers[] = {'y', 'b', 'f', 'd'};
  for (std::size_t a = 0; a < chart_spec.algorithms.size(); ++a) {
    util::ChartSeries s;
    s.label = chart_spec.algorithms[a] + " (SC cost vs n, sequential)";
    s.marker = markers[a];
    for (int n : sizes) {
      const auto& cell = benchx::cell_at(chart_report, chart_spec.algorithms[a],
                                         "sequential", n);
      if (!cell.completed) continue;
      s.xs.push_back(n);
      s.ys.push_back(static_cast<double>(cell.sc_cost));
    }
    series.push_back(std::move(s));
  }
  std::printf("%s\n", util::render_chart(series).c_str());

  std::printf(
      "Reading: yang-anderson's normalized column is Theta(1) in every schedule —\n"
      "the O(n log n) upper bound. Quadratic baselines grow ~n/log n. static-rr\n"
      "beats the bound only because it is not livelock-free (see E5/tests).\n");
  return 0;
}
