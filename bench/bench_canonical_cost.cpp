// Experiment E4 (tightness): canonical SC cost of the algorithm library.
//
// Yang–Anderson must track n log n (cost / (n log2 n) flat in n) while the
// classical baselines grow quadratically, under several schedulers.
#include "bench/common.h"
#include "sim/canonical.h"
#include "sim/scheduler.h"
#include "util/chart.h"

using namespace melb;

namespace {

std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name, int n) {
  if (name == "sequential") return std::make_unique<sim::SequentialScheduler>();
  if (name == "round-robin") return std::make_unique<sim::RoundRobinScheduler>();
  if (name == "convoy-rev")
    return std::make_unique<sim::ConvoyScheduler>(util::Permutation::reversed(n));
  return std::make_unique<sim::RandomScheduler>(424242);
}

}  // namespace

int main() {
  benchx::print_header(
      "E4: canonical-execution SC cost per algorithm (tightness of the bound)",
      "Each cell: SC cost of one canonical execution (n processes, one CS each).\n"
      "Normalized column = cost / (n log2 n).");

  for (const std::string sched_name : {"sequential", "round-robin", "random", "convoy-rev"}) {
    std::printf("-- scheduler: %s --\n", sched_name.c_str());
    util::Table table({"algorithm", "n=4", "n=8", "n=16", "n=32", "n=64", "n=128",
                       "cost/(n lg n) @128"});
    for (const char* name :
         {"yang-anderson", "dekker-tree", "kessels-tree", "bakery", "peterson-tree", "filter",
          "dijkstra", "burns", "lamport-fast", "static-rr"}) {
      const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
      std::vector<std::string> row{name};
      double last_cost = 0;
      for (int n : {4, 8, 16, 32, 64, 128}) {
        auto scheduler = make_scheduler(sched_name, n);
        const auto run = sim::run_canonical(algorithm, n, *scheduler,
                                            sim::RunMode::kProductiveOnly, 200'000'000);
        if (!run.completed) {
          row.push_back(run.livelocked ? "livelock" : "cap");
          last_cost = 0;
          continue;
        }
        last_cost = static_cast<double>(run.sc_cost);
        row.push_back(std::to_string(run.sc_cost));
      }
      row.push_back(last_cost > 0 ? util::Table::fmt(last_cost / benchx::n_log2_n(128), 2)
                                  : "-");
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  // Growth chart (sequential scheduler): slopes on log-log axes make the
  // complexity classes visible — Theta(n log n) just above slope 1,
  // Theta(n^2) at slope 2.
  std::vector<util::ChartSeries> series;
  const char markers[] = {'y', 'b', 'f', 'd'};
  const char* chart_algos[] = {"yang-anderson", "bakery", "filter", "dekker-tree"};
  for (int a = 0; a < 4; ++a) {
    util::ChartSeries s;
    s.label = std::string(chart_algos[a]) + " (SC cost vs n, sequential)";
    s.marker = markers[a];
    for (int n : {4, 8, 16, 32, 64, 128}) {
      sim::SequentialScheduler sched;
      const auto run = sim::run_canonical(*algo::algorithm_by_name(chart_algos[a]).algorithm,
                                          n, sched, sim::RunMode::kProductiveOnly,
                                          500'000'000);
      if (!run.completed) continue;
      s.xs.push_back(n);
      s.ys.push_back(static_cast<double>(run.sc_cost));
    }
    series.push_back(std::move(s));
  }
  std::printf("%s\n", util::render_chart(series).c_str());

  std::printf(
      "Reading: yang-anderson's normalized column is Theta(1) in every schedule —\n"
      "the O(n log n) upper bound. Quadratic baselines grow ~n/log n. static-rr\n"
      "beats the bound only because it is not livelock-free (see E5/tests).\n");
  return 0;
}
