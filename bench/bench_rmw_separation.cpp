// Experiment E9 (§1 extension): registers vs comparison primitives.
//
// The Ω(n log n) bound quantifies over *register* algorithms. With RMW
// primitives (CAS/swap/FAA) canonical executions cost Θ(n) in the SC model —
// a real asymptotic separation, measured here side by side, plus the
// construction's explicit rejection of RMW algorithms.
#include "bench/common.h"
#include "sim/canonical.h"
#include "sim/scheduler.h"

using namespace melb;

int main() {
  benchx::print_header(
      "E9: register vs RMW separation in the SC model (paper §1 extension)",
      "Canonical SC cost under round-robin. Register algorithms obey the\n"
      "Omega(n log n) bound; CAS/FAA/swap algorithms sit at Theta(n).");

  util::Table table({"algorithm", "class", "n=8", "n=32", "n=128", "n=512",
                     "cost/n @512", "cost/(n lg n) @512"});
  struct Row {
    const char* name;
    const char* klass;
  };
  for (const Row row : {Row{"yang-anderson", "registers"}, Row{"peterson-tree", "registers"},
                        Row{"bakery", "registers"}, Row{"ttas-rmw", "RMW"},
                        Row{"ticket-rmw", "RMW"}, Row{"mcs-rmw", "RMW"}}) {
    const auto& algorithm = *algo::algorithm_by_name(row.name).algorithm;
    std::vector<std::string> cells{row.name, row.klass};
    double last = 0;
    for (int n : {8, 32, 128, 512}) {
      sim::RoundRobinScheduler sched;
      const auto run = sim::run_canonical(algorithm, n, sched,
                                          sim::RunMode::kProductiveOnly, 500'000'000);
      if (!run.completed) {
        cells.push_back("cap");
        continue;
      }
      last = static_cast<double>(run.sc_cost);
      cells.push_back(std::to_string(run.sc_cost));
    }
    cells.push_back(util::Table::fmt(last / 512.0, 2));
    cells.push_back(util::Table::fmt(last / benchx::n_log2_n(512), 2));
    table.add_row(std::move(cells));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: ticket/mcs sit at Theta(n) — below the register bound, the real\n"
      "separation. ttas shows RMW alone is not enough: its handoff storms cost\n"
      "Theta(n^2) even with CAS. Register algorithms obey Omega(n log n).\n\n");

  std::printf(
      "The lower-bound construction refuses RMW algorithms (hiding a write under\n"
      "a later write is unsound when rivals can CAS):\n");
  for (const char* name : {"ttas-rmw", "ticket-rmw", "mcs-rmw"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    try {
      lb::construct(algorithm, 4, util::Permutation(4));
      std::printf("  %s: UNEXPECTEDLY ACCEPTED\n", name);
    } catch (const std::exception& e) {
      std::printf("  %s: rejected (%s)\n", name, e.what());
    }
  }
  return 0;
}
