#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs and fail on perf regressions.

CI's perf gate: the PR build's benchmark output (BENCH_pr.json) is compared
against the checked-in baseline (BENCH_baseline.json). Benchmarks are matched
by name; when a file carries several repetitions of one benchmark the median
is used. The gate fails (exit 1) when any matched benchmark's median metric
regresses by more than --threshold (default 0.25 = 25%).

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.25]
                     [--metric real_time]

Benchmarks present in only one file are reported but never fail the gate, so
adding or retiring a benchmark does not require touching the baseline in the
same commit. Exit codes: 0 ok, 1 regression, 2 bad input.
"""

import argparse
import json
import statistics
import sys


def fail_input(message):
    """Bad-input exit (code 2): distinguishable from a perf regression (1)."""
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_medians(path, metric):
    """Map benchmark name -> median metric value over its repetitions."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail_input(f"cannot read {path}: {err}")
    samples = {}
    for bench in data.get("benchmarks", []):
        # Skip google-benchmark's own aggregate rows (mean/median/stddev);
        # we aggregate raw iterations ourselves.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name is None or metric not in bench:
            continue
        samples.setdefault(name, []).append(float(bench[metric]))
    return {name: statistics.median(values) for name, values in samples.items()}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline google-benchmark JSON")
    parser.add_argument("current", help="current google-benchmark JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--metric", default="real_time",
                        help="benchmark field to compare (default real_time)")
    args = parser.parse_args()
    if args.threshold < 0:
        fail_input("--threshold must be >= 0")

    base = load_medians(args.baseline, args.metric)
    cur = load_medians(args.current, args.metric)
    if not base:
        fail_input(f"no usable benchmarks in {args.baseline}")
    if not cur:
        fail_input(f"no usable benchmarks in {args.current}")

    shared = sorted(set(base) & set(cur))
    regressions = []
    width = max((len(name) for name in shared), default=10)
    print(f"{'benchmark'.ljust(width)}  {'baseline':>12}  {'current':>12}  ratio")
    for name in shared:
        ratio = cur[name] / base[name] if base[name] > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.threshold:
            regressions.append((name, ratio))
            flag = "  << REGRESSION"
        print(f"{name.ljust(width)}  {base[name]:12.3f}  {cur[name]:12.3f}  "
              f"{ratio:5.2f}x{flag}")

    for name in sorted(set(base) - set(cur)):
        print(f"note: baseline-only benchmark (not gated): {name}")
    for name in sorted(set(cur) - set(base)):
        print(f"note: new benchmark (no baseline yet): {name}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%} on median {args.metric}:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline")
        return 1
    print(f"\nOK: {len(shared)} benchmark(s) within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
