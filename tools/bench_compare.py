#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs and fail on perf regressions.

CI's perf gate: the PR build's benchmark output (BENCH_pr.json) is compared
against the checked-in baseline (BENCH_baseline.json). Benchmarks are matched
by name; when a file carries several repetitions of one benchmark the median
is used. The gate fails (exit 1) when any matched benchmark's median metric
regresses by more than --threshold (default 0.25 = 25%).

Two metrics are gated by default: real_time and the peak_memory_bytes
counter the checker benches attach (a memory regression is as real a
regression as a slowdown for a state-space engine). --metric can be repeated
to override the set. A benchmark that lacks a metric on either side is
simply not gated on that metric, so timing-only benchmarks coexist with
counter-carrying ones.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.25]
                     [--metric real_time --metric peak_memory_bytes]
    bench_compare.py --self-test

Benchmarks present in only one file are reported but never fail the gate, so
adding or retiring a benchmark does not require touching the baseline in the
same commit — current-only benchmarks are noted as "new", baseline-only ones
as "not gated". Exit codes: 0 ok, 1 regression, 2 bad input.

--self-test exercises those contracts against synthetic inputs (CI runs it so
a refactor of this gate cannot silently change what fails a PR).
"""

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile


def fail_input(message):
    """Bad-input exit (code 2): distinguishable from a perf regression (1)."""
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_medians(path, metric):
    """Map benchmark name -> median metric value over its repetitions."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail_input(f"cannot read {path}: {err}")
    samples = {}
    for bench in data.get("benchmarks", []):
        # Skip google-benchmark's own aggregate rows (mean/median/stddev);
        # we aggregate raw iterations ourselves.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name is None or metric not in bench:
            continue
        try:
            value = float(bench[metric])
        except (TypeError, ValueError):
            # A malformed gated counter (null, a string, an object) is bad
            # input, not a crash: name the row so the fix is obvious.
            fail_input(f"{path}: benchmark {name!r} has malformed "
                       f"{metric}: {bench[metric]!r}")
        samples.setdefault(name, []).append(value)
    return {name: statistics.median(values) for name, values in samples.items()}


def bench_json(entries):
    """Synthetic google-benchmark output: [(name, real_time), ...] or
    [(name, real_time, peak_memory_bytes), ...]."""
    benches = []
    for entry in entries:
        bench = {"name": entry[0], "run_type": "iteration", "real_time": entry[1]}
        if len(entry) > 2:
            bench["peak_memory_bytes"] = entry[2]
        benches.append(bench)
    return {"benchmarks": benches}


def self_test():
    """Run this script against synthetic inputs and assert its exit codes."""
    cases = [
        # (baseline entries, current entries, expected exit, description)
        ([("a", 100.0)], [("a", 110.0)], 0, "within threshold"),
        ([("a", 100.0)], [("a", 200.0)], 1, "regression fails"),
        ([("a", 100.0)], [("a", 101.0), ("brand_new", 5.0)], 0,
         "new benchmark without baseline is reported, not gated"),
        ([("a", 100.0), ("retired", 9.0)], [("a", 101.0)], 0,
         "baseline-only benchmark is reported, not gated"),
        ([("a", 100.0)], [("brand_new", 5.0)], 0,
         "disjoint sets: nothing to gate"),
        ([("a", 100.0, 1000.0)], [("a", 101.0, 1050.0)], 0,
         "peak memory within threshold"),
        ([("a", 100.0, 1000.0)], [("a", 101.0, 2000.0)], 1,
         "peak memory regression fails even when real_time holds"),
        ([("a", 100.0)], [("a", 101.0, 2000.0)], 0,
         "metric present on one side only is not gated"),
        ([("a", 100.0, 1000.0), ("b", 50.0)], [("a", 101.0, 990.0), ("b", 51.0)], 0,
         "counter-carrying and timing-only benchmarks coexist"),
        ([("a", None)], [("a", 101.0)], 2,
         "malformed gated counter in the baseline is bad input, not a crash"),
        ([("a", 100.0, 1000.0)], [("a", 101.0, "oops")], 2,
         "non-numeric counter in the current run is bad input, not a crash"),
    ]
    failures = 0
    with tempfile.TemporaryDirectory(prefix="bench_compare_selftest_") as tmpdir:
        for i, (base_entries, cur_entries, expected, description) in enumerate(cases):
            base_path = os.path.join(tmpdir, f"base_{i}.json")
            cur_path = os.path.join(tmpdir, f"cur_{i}.json")
            with open(base_path, "w", encoding="utf-8") as base_f:
                json.dump(bench_json(base_entries), base_f)
            with open(cur_path, "w", encoding="utf-8") as cur_f:
                json.dump(bench_json(cur_entries), cur_f)
            proc = subprocess.run(
                [sys.executable, __file__, base_path, cur_path, "--threshold", "0.25"],
                capture_output=True, text=True)
            passed = proc.returncode == expected and "Traceback" not in proc.stderr
            status = "ok" if passed else "FAIL"
            if not passed:
                failures += 1
                print(proc.stdout)
                print(proc.stderr, file=sys.stderr)
            print(f"self-test [{status}] {description}: exit {proc.returncode} "
                  f"(expected {expected})")
        # Malformed input must exit 2, not crash.
        bad_path = os.path.join(tmpdir, "bad.json")
        with open(bad_path, "w", encoding="utf-8") as bad_f:
            bad_f.write("not json")
        proc = subprocess.run([sys.executable, __file__, bad_path, bad_path],
                              capture_output=True, text=True)
        status = "ok" if proc.returncode == 2 else "FAIL"
        if proc.returncode != 2:
            failures += 1
        print(f"self-test [{status}] malformed input: exit {proc.returncode} "
              f"(expected 2)")
    if failures:
        print(f"self-test: {failures} case(s) FAILED")
        return 1
    print("self-test: all cases passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="baseline google-benchmark JSON")
    parser.add_argument("current", nargs="?", help="current google-benchmark JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--metric", action="append", default=None,
                        help="benchmark field to compare; repeatable "
                             "(default: real_time and peak_memory_bytes)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify this gate's contracts on synthetic inputs")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        fail_input("BASELINE and CURRENT are required (or use --self-test)")
    if args.threshold < 0:
        fail_input("--threshold must be >= 0")
    metrics = args.metric or ["real_time", "peak_memory_bytes"]

    regressions = []
    gated = 0
    any_base = any_cur = False
    for metric in metrics:
        base = load_medians(args.baseline, metric)
        cur = load_medians(args.current, metric)
        any_base = any_base or bool(base)
        any_cur = any_cur or bool(cur)
        shared = sorted(set(base) & set(cur))
        if not shared and metric != metrics[0]:
            continue  # optional counter nobody carries yet
        gated += len(shared)
        width = max((len(name) for name in shared), default=10)
        print(f"metric: {metric}")
        print(f"{'benchmark'.ljust(width)}  {'baseline':>14}  {'current':>14}  ratio")
        for name in shared:
            ratio = cur[name] / base[name] if base[name] > 0 else float("inf")
            flag = ""
            if ratio > 1.0 + args.threshold:
                regressions.append((metric, name, ratio))
                flag = "  << REGRESSION"
            print(f"{name.ljust(width)}  {base[name]:14.3f}  {cur[name]:14.3f}  "
                  f"{ratio:5.2f}x{flag}")
        for name in sorted(set(base) - set(cur)):
            print(f"note: baseline-only benchmark (not gated): {name}")
        for name in sorted(set(cur) - set(base)):
            print(f"note: new benchmark (no baseline yet): {name}")
        print()

    if not any_base:
        fail_input(f"no usable benchmarks in {args.baseline}")
    if not any_cur:
        fail_input(f"no usable benchmarks in {args.current}")

    if regressions:
        print(f"FAIL: {len(regressions)} benchmark metric(s) regressed beyond "
              f"{args.threshold:.0%} of baseline median:")
        for metric, name, ratio in regressions:
            print(f"  {name} [{metric}]: {ratio:.2f}x baseline")
        return 1
    print(f"OK: {gated} benchmark metric(s) within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
