// melb_cli — command-line front end to the library.
//
//   melb_cli list
//   melb_cli run <algorithm> <n> [--sched NAME] [--seed S] [--faithful]
//                [--trace FILE] [--schedule-out FILE] [--schedule-in FILE]
//   melb_cli adversary <algorithm> <n> [--cost MODEL] [--schedule-out FILE]
//                [--max-states K] [--workers W] [--memory-limit-mb M]
//   melb_cli construct <algorithm> <n> [--pi identity|reverse|random] [--seed S]
//                [--encode FILE] [--dump]
//   melb_cli decode <algorithm> <E-file>
//   melb_cli check <algorithm> <n> [--property NAME[,NAME...]] [--subsets]
//                  [--max-states K] [--workers W] [--memory-limit-mb M]
//                  [--ddd] [--ddd-window L] [--symmetry] [--check-determinism]
//                  [--no-mutex] [--no-progress]
//   melb_cli check --list-properties
//   melb_cli cost <algorithm> <n>
//   melb_cli sweep [--algs SEL] [--scheds LIST] [--n RANGE] [--seed S]
//                  [--workers W] [--faithful] [--no-lb] [--max-steps K]
//                  [--json FILE] [--csv FILE] [--check-determinism] [--progress]
//                  [--state DIR] [--shard I/K] [--journal-batch B]
//                  [--max-retries R]
//   melb_cli merge <state-dir>... [--json FILE] [--csv FILE]
//
// Every subcommand exits nonzero on a property violation, so the tool can be
// scripted as a validity oracle. `sweep --state` makes the sweep crash-safe
// and resumable (docs/campaign-service.md); `merge` joins shard journals
// into the byte-identical unsharded report.
#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <system_error>
#include <vector>

#include "adv/adversary.h"
#include "algo/registry.h"
#include "check/model_checker.h"
#include "cost/cost_model.h"
#include "exp/campaign.h"
#include "exp/journal.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "exp/service.h"
#include "lb/construct.h"
#include "lb/decode.h"
#include "lb/encode.h"
#include "lb/verify.h"
#include "sim/canonical.h"
#include "sim/schedule.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "util/fileio.h"
#include "util/table.h"

using namespace melb;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;  // --key value or --key (empty)

  bool has(const std::string& key) const { return flags.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

// A malformed command line. Carries a ready-to-print message; main turns it
// into the usage text and exit code 2 (same as a missing argument), instead
// of the uncaught std::stoi exception the numeric flags used to abort with.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Checked numeric parsing: every user-supplied number goes through here, so
// garbage ("abc"), trailing junk ("3x"), negatives, and overflow all produce
// a per-flag message naming the offending value and its accepted range.
std::uint64_t parse_uint(const std::string& text, const std::string& what,
                         std::uint64_t min_value,
                         std::uint64_t max_value = std::numeric_limits<std::uint64_t>::max()) {
  std::uint64_t value = 0;
  const char* begin = text.c_str();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (text.empty() || ec == std::errc::invalid_argument || ptr != end) {
    throw UsageError("error: " + what + " expects an unsigned integer, got '" + text + "'");
  }
  if (ec == std::errc::result_out_of_range || value < min_value || value > max_value) {
    std::string range = ">= " + std::to_string(min_value);
    if (max_value != std::numeric_limits<std::uint64_t>::max()) {
      range = "in [" + std::to_string(min_value) + ", " + std::to_string(max_value) + "]";
    }
    throw UsageError("error: " + what + " must be " + range + ", got '" + text + "'");
  }
  return value;
}

int parse_int(const std::string& text, const std::string& what, int min_value,
              int max_value) {
  return static_cast<int>(parse_uint(text, what, static_cast<std::uint64_t>(min_value),
                                     static_cast<std::uint64_t>(max_value)));
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.flags[key] = argv[++i];
      } else {
        args.flags[key] = "";
      }
    } else {
      args.positional.push_back(std::move(token));
    }
  }
  return args;
}

util::Permutation make_pi(const std::string& kind, int n, std::uint64_t seed) {
  if (kind == "reverse") return util::Permutation::reversed(n);
  if (kind == "random") {
    util::Xoshiro256StarStar rng(seed);
    return util::Permutation::random(n, rng);
  }
  return util::Permutation(n);
}

// Every file the CLI emits (reports, traces, encodings) goes through the
// atomic writer: a crash mid-write must never leave a truncated file under
// the final name for downstream tooling to parse as garbage.
bool write_file(const std::string& path, const std::string& contents) {
  const std::string err = util::write_file_atomic(path, contents, "report.write");
  if (!err.empty()) {
    std::fprintf(stderr, "error: cannot write %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

int cmd_list() {
  util::Table table({"name", "livelock-free", "mutex", "primitives", "cost profile"});
  for (const auto& info : algo::all_algorithms()) {
    table.add_row({info.algorithm->name(), info.livelock_free ? "yes" : "NO",
                   info.mutex_correct ? "yes" : "NO", info.uses_rmw ? "RMW" : "registers",
                   info.cost_note});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

// Shared tail of cmd_run / run_replay: validators, stats line, --trace file.
// Returns the exit code contribution of the validators (0 = both hold).
int report_run_execution(const Args& args, const algo::AlgorithmInfo& info, int n,
                         const sim::Execution& exec, const std::string& sched_name) {
  const auto wf = sim::check_well_formed(exec, n);
  const auto me = sim::check_mutual_exclusion(exec, n);
  const auto stats = trace::compute_stats(exec, n, info.algorithm->num_registers(n));
  std::printf("%s n=%d under %s: %s\n", info.algorithm->name().c_str(), n,
              sched_name.c_str(), trace::stats_to_string(stats).c_str());
  std::printf("well-formed: %s; mutual exclusion: %s\n", wf.empty() ? "ok" : wf.c_str(),
              me.empty() ? "ok" : me.c_str());
  if (args.has("trace")) {
    if (!write_file(args.get("trace", ""), trace::to_text({info.algorithm->name(), n}, exec))) {
      return 1;
    }
    std::printf("trace written to %s\n", args.get("trace", "").c_str());
  }
  return (wf.empty() && me.empty()) ? 0 : 1;
}

// run --schedule-in: re-execute a recorded schedule byte-identically. The
// run is capped at exactly the schedule length, so a partial schedule (an
// adversary witness ending at its victim's CS entry) replays cleanly; a
// schedule for the wrong algorithm/n/mode fails with a diverged step index.
int run_replay(const Args& args, const algo::AlgorithmInfo& info, int n) {
  const std::string path = args.get("schedule-in", "");
  std::ifstream in(path);
  if (!in) throw UsageError("error: --schedule-in: cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  sim::Schedule schedule;
  try {
    schedule = sim::parse_schedule(buffer.str());
  } catch (const sim::ScheduleParseError& e) {
    throw UsageError("error: --schedule-in " + path + ": " + e.what());
  }
  if (schedule.algorithm != info.algorithm->name()) {
    throw UsageError("error: --schedule-in " + path + " is for algorithm '" +
                     schedule.algorithm + "', not '" + info.algorithm->name() + "'");
  }
  if (schedule.n != n) {
    throw UsageError("error: --schedule-in " + path + " is for n=" +
                     std::to_string(schedule.n) + ", not n=" + std::to_string(n));
  }
  sim::ReplayScheduler scheduler(schedule.pids);
  sim::CanonicalRun run;
  try {
    run = sim::run_canonical(*info.algorithm, n, scheduler, schedule.mode,
                             schedule.pids.size());
  } catch (const sim::ScheduleDivergedError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (run.steps != schedule.pids.size()) {
    std::fprintf(stderr,
                 "error: replay stalled after %llu of %zu scheduled steps (%s)\n",
                 static_cast<unsigned long long>(run.steps), schedule.pids.size(),
                 run.livelocked ? "no process eligible" : "run finished early");
    return 1;
  }
  // The step cap equals the schedule length, so the runner never reaches its
  // completion re-check; read completion off the recorded critical steps.
  std::vector<char> cycled(static_cast<std::size_t>(n), 0);
  for (const auto& rs : run.exec.steps()) {
    if (rs.step.type == sim::StepType::kCrit && rs.step.crit == sim::CritKind::kRem) {
      cycled[static_cast<std::size_t>(rs.step.pid)] = 1;
    }
  }
  const bool complete =
      std::all_of(cycled.begin(), cycled.end(), [](char c) { return c != 0; });
  std::printf("replay: %zu/%zu scheduled steps executed (%s)\n", schedule.pids.size(),
              schedule.pids.size(), complete ? "run complete" : "partial prefix");
  if (!schedule.source.empty()) {
    std::printf("schedule source: %s\n", schedule.source.c_str());
  }
  const auto sc = cost::StateChangeCost().per_process_cost(run.exec, n);
  std::printf("max per-process state-change cost = %llu\n",
              static_cast<unsigned long long>(
                  *std::max_element(sc.begin(), sc.end())));
  return report_run_execution(args, info, n, run.exec, "replay");
}

int cmd_run(const Args& args) {
  const auto& info = algo::algorithm_by_name(args.positional.at(0));
  const int n = parse_int(args.positional.at(1), "n", 1, 64);
  const std::string sched_name = args.get("sched", "round-robin");
  if (args.has("schedule-in")) {
    // Contradictory combinations are rejected up front: a schedule file
    // already fixes the seed, the mode, and (obviously) the schedule.
    if (args.has("seed")) {
      throw UsageError(
          "error: --schedule-in contradicts --seed (the schedule fixes every choice)");
    }
    if (args.has("faithful")) {
      throw UsageError(
          "error: --schedule-in contradicts --faithful (the schedule file records its "
          "mode)");
    }
    if (args.has("schedule-out")) {
      throw UsageError("error: --schedule-in contradicts --schedule-out");
    }
    if (args.has("sched") && sched_name != "replay") {
      throw UsageError("error: --schedule-in requires --sched replay (or no --sched), "
                       "got '" + sched_name + "'");
    }
    if (args.get("schedule-in", "").empty()) {
      throw UsageError("error: --schedule-in expects a file path");
    }
    return run_replay(args, info, n);
  }
  if (sched_name == "replay") {
    throw UsageError("error: --sched replay requires --schedule-in FILE");
  }
  if (args.has("schedule-out") && args.get("schedule-out", "").empty()) {
    throw UsageError("error: --schedule-out expects a file path");
  }
  const auto seed = parse_uint(args.get("seed", "42"), "--seed", 0);
  std::unique_ptr<sim::Scheduler> scheduler;
  try {
    scheduler = sim::make_scheduler(sched_name, n, seed);
  } catch (const std::invalid_argument& e) {
    throw UsageError("error: --sched: " + std::string(e.what()));
  }
  const std::string display_name = scheduler->name();
  if (args.has("schedule-out") &&
      dynamic_cast<sim::RecordingScheduler*>(scheduler.get()) == nullptr) {
    scheduler = std::make_unique<sim::RecordingScheduler>(std::move(scheduler));
  }
  const auto mode = args.has("faithful") ? sim::RunMode::kFaithful
                                         : sim::RunMode::kProductiveOnly;
  const auto run = sim::run_canonical(*info.algorithm, n, *scheduler, mode);
  if (args.has("schedule-out")) {
    // Written even for failed runs — a livelocked or capped run's schedule
    // is exactly the repro one wants to commit.
    sim::Schedule schedule;
    schedule.algorithm = info.algorithm->name();
    schedule.n = n;
    schedule.mode = mode;
    schedule.source = "record " + display_name + " seed=" + std::to_string(seed);
    schedule.pids = dynamic_cast<sim::RecordingScheduler&>(*scheduler).picks();
    if (!write_file(args.get("schedule-out", ""), sim::schedule_to_text(schedule))) {
      return 1;
    }
    std::printf("schedule written to %s (%zu steps)\n",
                args.get("schedule-out", "").c_str(), schedule.pids.size());
  }
  if (!run.completed) {
    std::printf("FAILED: %s\n", run.livelocked ? "livelock detected" : "step cap hit");
    return 1;
  }
  return report_run_execution(args, info, n, run.exec, display_name);
}

int cmd_adversary(const Args& args) {
  // Algorithm and n may come positionally (like run/check) or as --alg/--n.
  const std::string alg_name =
      args.get("alg", args.positional.size() > 0 ? args.positional[0] : "");
  const std::string n_text =
      args.get("n", args.positional.size() > 1 ? args.positional[1] : "");
  if (alg_name.empty() || n_text.empty()) {
    throw UsageError("error: adversary needs an algorithm and n "
                     "(positional or --alg NAME --n N)");
  }
  const auto& info = algo::algorithm_by_name(alg_name);
  const int n = parse_int(n_text, "n", 1, 64);
  const std::string model = args.get("cost", "state-change");
  if (args.has("schedule-out") && args.get("schedule-out", "").empty()) {
    throw UsageError("error: --schedule-out expects a file path");
  }
  adv::AdversaryOptions options;
  options.max_states =
      parse_uint(args.get("max-states", "20000000"), "--max-states", 1);
  options.workers = parse_int(args.get("workers", "1"), "--workers", 1, 1024);
  options.memory_limit_mb =
      parse_uint(args.get("memory-limit-mb", "0"), "--memory-limit-mb", 0);

  adv::AdversaryResult result;
  try {
    result = adv::find_worst_schedule(*info.algorithm, n, model, options);
  } catch (const std::invalid_argument& e) {
    // Unknown or history-dependent cost model: a usage error, caught before
    // any exploration starts.
    throw UsageError("error: " + std::string(e.what()));
  }
  std::printf("adversary(%s, n=%d, %s): explored %llu states, %llu transitions\n",
              info.algorithm->name().c_str(), n, model.c_str(),
              static_cast<unsigned long long>(result.states),
              static_cast<unsigned long long>(result.transitions));
  if (!result.evaluated || result.unbounded) {
    std::printf("%s\n", result.detail.c_str());
    return 1;
  }
  std::printf("certified worst-case %s cost to enter the CS = %llu "
              "(victim pid %d, %zu-step schedule, %llu fixpoint sweeps)\n",
              model.c_str(), static_cast<unsigned long long>(result.bound),
              result.victim, result.schedule.pids.size(),
              static_cast<unsigned long long>(result.sweeps));
  std::printf("witness re-simulated: measured %s cost for pid %d = %llu — %s\n",
              model.c_str(), result.victim,
              static_cast<unsigned long long>(result.measured_cost),
              result.confirmed ? "matches the certified bound"
                               : "MISMATCH with the certified bound");
  if (args.has("schedule-out")) {
    const std::string path = args.get("schedule-out", "");
    if (!write_file(path, sim::schedule_to_text(result.schedule))) return 1;
    std::printf("schedule written to %s (%zu steps)\n", path.c_str(),
                result.schedule.pids.size());
  }
  return result.confirmed ? 0 : 1;
}

int cmd_construct(const Args& args) {
  const auto& info = algo::algorithm_by_name(args.positional.at(0));
  const int n = parse_int(args.positional.at(1), "n", 1, 64);
  const auto seed = parse_uint(args.get("seed", "42"), "--seed", 0);
  const auto pi = make_pi(args.get("pi", "reverse"), n, seed);
  const auto c = lb::construct(*info.algorithm, n, pi);
  const auto steps = c.canonical_linearization();
  const auto exec = sim::validate_steps(*info.algorithm, n, steps);
  const auto encoding = lb::encode(c);
  std::printf("construct(%s, n=%d): %zu metasteps (%llu hidden insertions), C(alpha_pi)=%llu\n",
              info.algorithm->name().c_str(), n, c.metasteps.size(),
              static_cast<unsigned long long>(c.insertions),
              static_cast<unsigned long long>(exec.sc_cost()));
  std::printf("|E_pi| = %zu ASCII bytes, %llu binary bits (%.2f bits per unit cost)\n",
              encoding.text.size(), static_cast<unsigned long long>(encoding.binary_bits),
              exec.sc_cost() ? static_cast<double>(encoding.binary_bits) /
                                   static_cast<double>(exec.sc_cost())
                             : 0.0);
  const auto structural = lb::verify_linearization(c, steps);
  std::printf("structural check: %s\n", structural.empty() ? "ok" : structural.c_str());
  if (args.has("encode")) {
    if (!write_file(args.get("encode", ""), encoding.text)) return 1;
    std::printf("E_pi written to %s\n", args.get("encode", "").c_str());
  }
  if (args.has("dump")) {
    for (const auto& rs : exec.steps()) {
      std::printf("  %s\n", to_string(rs.step).c_str());
    }
  }
  return structural.empty() ? 0 : 1;
}

int cmd_decode(const Args& args) {
  const auto& info = algo::algorithm_by_name(args.positional.at(0));
  std::ifstream in(args.positional.at(1));
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", args.positional.at(1).c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto decoded = lb::decode(*info.algorithm, buffer.str());
  const int n = static_cast<int>(lb::parse_encoding(buffer.str()).size());
  const auto me = sim::check_mutual_exclusion(decoded.execution, n);
  std::printf("decoded %zu steps in %llu iterations; SC cost %llu; mutex %s\n",
              decoded.execution.size(),
              static_cast<unsigned long long>(decoded.iterations),
              static_cast<unsigned long long>(decoded.execution.sc_cost()),
              me.empty() ? "ok" : me.c_str());
  return me.empty() ? 0 : 1;
}

// Everything worker-count-independent in a CheckResult, serialized for the
// --check-determinism byte compare (wall time is excluded by design).
std::string check_signature(const check::CheckResult& result) {
  std::string s;
  s += "ok=" + std::to_string(result.ok);
  s += ";exhausted=" + std::to_string(result.exhausted_limit);
  s += ";violation=" + result.violation;
  s += ";states=" + std::to_string(result.states);
  s += ";transitions=" + std::to_string(result.transitions);
  s += ";dedup=" + std::to_string(result.dedup_hits);
  s += ";automata=" + std::to_string(result.interned_automata);
  s += ";regfiles=" + std::to_string(result.interned_regfiles);
  s += ";peak_memory=" + std::to_string(result.peak_memory_bytes);
  s += ";visited_peak=" + std::to_string(result.peak_visited_bytes);
  s += ";progress_peak=" + std::to_string(result.progress_peak_bytes);
  s += ";spilled=" + std::to_string(result.spilled_bytes);
  s += ";ddd_runs=" + std::to_string(result.ddd_runs);
  s += ";symmetry_group=" + std::to_string(result.symmetry_group);
  s += ";properties=";
  for (const auto& pr : result.property_reports) {
    s += pr.property + ":" + std::to_string(pr.holds) + ":" +
         std::to_string(pr.evaluated) + ":" +
         (pr.has_bound ? std::to_string(pr.bound) : "-") + ":" + pr.detail + "|";
  }
  s += ";trace=";
  if (result.counterexample) {
    for (const auto& step : *result.counterexample) s += to_string(step) + "|";
  }
  return s;
}

void print_check_result(const std::string& name, int n, const check::CheckResult& result) {
  std::printf("%s n=%d: %s (%llu states%s)\n", name.c_str(), n,
              result.ok ? "OK" : result.violation.c_str(),
              static_cast<unsigned long long>(result.states),
              result.exhausted_limit ? ", limit hit" : "");
  const double secs = static_cast<double>(result.wall_micros) / 1e6;
  std::printf("stats: %llu states, %llu transitions, %.0f states/sec, "
              "%llu dedup hits, %llu automata + %llu register files interned, "
              "%.2f MiB peak, %.2f MiB visited peak, %.2f MiB spilled, "
              "%llu ddd runs\n",
              static_cast<unsigned long long>(result.states),
              static_cast<unsigned long long>(result.transitions),
              secs > 0 ? static_cast<double>(result.states) / secs : 0.0,
              static_cast<unsigned long long>(result.dedup_hits),
              static_cast<unsigned long long>(result.interned_automata),
              static_cast<unsigned long long>(result.interned_regfiles),
              static_cast<double>(result.peak_memory_bytes) / (1024.0 * 1024.0),
              static_cast<double>(result.peak_visited_bytes) / (1024.0 * 1024.0),
              static_cast<double>(result.spilled_bytes) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(result.ddd_runs));
  if (result.symmetry_group != 0) {
    std::printf("symmetry: canonicalized under a %llu-element pid group\n",
                static_cast<unsigned long long>(result.symmetry_group));
  }
  if (!result.io_error.empty()) {
    std::printf("io error: %s (results were computed fully in RAM, but the "
                "--memory-limit-mb budget could not be honored)\n",
                result.io_error.c_str());
  }
  for (const auto& pr : result.property_reports) {
    const char* verdict = !pr.evaluated
                              ? "not evaluated (exploration truncated or aborted)"
                          : pr.holds ? "ok"
                                     : "VIOLATED";
    std::printf("property %s: %s%s%s\n", pr.property.c_str(), verdict,
                pr.detail.empty() ? "" : " -- ", pr.detail.c_str());
  }
  if (!result.ok && result.counterexample) {
    std::printf("counterexample (%zu steps):\n", result.counterexample->size());
    for (const auto& step : *result.counterexample) {
      std::printf("  %s\n", to_string(step).c_str());
    }
  }
}

int cmd_check(const Args& args) {
  if (args.has("list-properties")) {
    std::printf(
        "properties (melb_cli check --property NAME[,NAME...]):\n"
        "  mutex              no two processes in the critical section\n"
        "  progress           every reachable state can reach termination\n"
        "  lockout            no fair cycle starves a participant short of its CS\n"
        "                     (does not compose with --symmetry)\n"
        "  rmr-bound[:MODEL]  certified worst-case cost to enter the CS\n"
        "rmr-bound cost models:");
    for (const auto& model : cost::cost_model_names()) {
      if (model == "cache-coherent") continue;  // history-dependent: rejected
      std::printf(" %s", model.c_str());
    }
    std::printf(" (default state-change)\n");
    return 0;
  }
  const auto& info = algo::algorithm_by_name(args.positional.at(0));
  const int n = parse_int(args.positional.at(1), "n", 1, 64);
  check::CheckOptions options;
  // Deprecated boolean shims, still honored for pre-property-engine scripts.
  options.check_mutex = !args.has("no-mutex");
  options.check_progress = !args.has("no-progress");
  options.max_states = parse_uint(args.get("max-states", "2000000"), "--max-states", 1);
  options.workers = parse_int(args.get("workers", "1"), "--workers", 1, 1024);
  options.memory_limit_mb =
      parse_uint(args.get("memory-limit-mb", "0"), "--memory-limit-mb", 0);
  options.ddd = args.has("ddd");
  options.ddd_window = parse_int(args.get("ddd-window", "2"), "--ddd-window", 1, 1024);
  options.symmetry = args.has("symmetry");
  if (options.symmetry && !info.pid_symmetric) {
    // Canonicalizing under pid permutations is only sound for algorithms
    // whose code is symmetric in the pids; the registry marks the exceptions.
    throw UsageError("error: --symmetry is unsound for '" + info.algorithm->name() +
                     "' (the algorithm distinguishes concrete pids)");
  }
  if (options.symmetry && n > 8) {
    throw UsageError("error: --symmetry supports at most n = 8");
  }
  if (args.has("property")) {
    const std::string list = args.get("property", "");
    std::vector<std::string> specs;
    std::size_t begin = 0;
    while (begin <= list.size()) {
      const std::size_t comma = list.find(',', begin);
      const std::string spec =
          list.substr(begin, comma == std::string::npos ? std::string::npos
                                                        : comma - begin);
      if (!spec.empty()) specs.push_back(spec);
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
    if (specs.empty()) {
      throw UsageError("error: --property expects a comma-separated list of names");
    }
    for (const std::string& spec : specs) {
      // The deprecated opt-out flags only make sense against the implicit
      // default list; combined with an explicit request they contradict it.
      if (spec == "mutex" && args.has("no-mutex")) {
        throw UsageError("error: --property mutex contradicts --no-mutex");
      }
      if (spec == "progress" && args.has("no-progress")) {
        throw UsageError("error: --property progress contradicts --no-progress");
      }
      try {
        // Validate the spec (and its symmetry compatibility) up front so a
        // typo is a usage error, not a mid-run exception.
        const auto property = check::make_property(spec, *info.algorithm, n);
        if (options.symmetry && !property->supports_symmetry()) {
          throw UsageError("error: --property " + spec +
                           " does not compose with --symmetry");
        }
      } catch (const std::invalid_argument& e) {
        throw UsageError("error: " + std::string(e.what()));
      }
    }
    options.properties = std::move(specs);
  }

  const auto run_check = [&](const check::CheckOptions& opts) {
    return args.has("subsets") ? check::check_all_subsets(*info.algorithm, n, opts)
                               : check::check_algorithm(*info.algorithm, n, opts);
  };

  check::CheckResult result;
  bool determinism_failed = false;
  if (args.has("check-determinism")) {
    // Acceptance gate: an N-worker exploration must produce byte-identical
    // results and traces to the serial one. Report the speedup alongside.
    check::CheckOptions serial_options = options;
    serial_options.workers = 1;
    const auto serial = run_check(serial_options);
    result = run_check(options);
    determinism_failed = check_signature(serial) != check_signature(result);
    const double speedup = result.wall_micros > 0
                               ? static_cast<double>(serial.wall_micros) /
                                     static_cast<double>(result.wall_micros)
                               : 0.0;
    std::printf("determinism: 1-worker vs %d-worker check %s\n", options.workers,
                determinism_failed ? "MISMATCH" : "byte-identical");
    std::printf("speedup: %.2fx (%.1f ms serial, %.1f ms on %d workers)\n", speedup,
                static_cast<double>(serial.wall_micros) / 1000.0,
                static_cast<double>(result.wall_micros) / 1000.0, options.workers);
  } else {
    result = run_check(options);
  }

  print_check_result(info.algorithm->name(), n, result);
  return (result.ok && !determinism_failed && result.io_error.empty()) ? 0 : 1;
}

int cmd_cost(const Args& args) {
  const auto& info = algo::algorithm_by_name(args.positional.at(0));
  const int n = parse_int(args.positional.at(1), "n", 1, 64);
  sim::RoundRobinScheduler scheduler;
  const auto run =
      sim::run_canonical(*info.algorithm, n, scheduler, sim::RunMode::kFaithful, 50'000'000);
  if (!run.completed) {
    std::printf("run did not complete\n");
    return 1;
  }
  util::Table table({"model", "total", "max process"});
  for (const auto& model : cost::standard_models(*info.algorithm, n)) {
    table.add_row({model->name(), std::to_string(model->total_cost(run.exec, n)),
                   std::to_string(model->max_process_cost(run.exec, n))});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

// Summarize a finished campaign; returns the number of not-ok cells.
std::size_t print_sweep_summary(const exp::CampaignReport& report) {
  std::size_t ok = 0, violations = 0, errors = 0, cancelled = 0;
  std::uint64_t sc_total = 0, lb_roundtrips = 0;
  for (const auto& cell : report.cells) {
    if (cell.status == "ok") {
      ++ok;
    } else if (cell.status == "violation") {
      ++violations;
    } else if (cell.status == "cancelled") {
      ++cancelled;
    } else {
      ++errors;
    }
    sc_total += cell.sc_cost;
    if (cell.lb.attempted && cell.lb.roundtrip_ok) ++lb_roundtrips;
    if (cell.status != "ok" && cell.status != "cancelled") {
      // Surface the most specific diagnostic the cell carries.
      std::string why;
      if (!cell.well_formed.empty()) why = cell.well_formed;
      else if (!cell.mutex.empty()) why = cell.mutex;
      else if (!cell.lb.error.empty()) why = "lb: " + cell.lb.error;
      else if (!cell.completed) why = cell.livelocked ? "livelocked" : "step cap hit";
      std::printf("  NOT OK [%zu] %s/%s n=%d: %s%s%s\n", cell.cell.index,
                  cell.cell.algorithm.c_str(), cell.cell.scheduler.c_str(), cell.cell.n,
                  cell.status.c_str(), why.empty() ? "" : "; ", why.c_str());
    }
  }
  std::printf(
      "sweep: %zu cells (%zu ok, %zu violations, %zu errors, %zu cancelled), "
      "%llu total SC cost, %llu lb round-trips, %d workers, %.1f ms\n",
      report.cells.size(), ok, violations, errors, cancelled,
      static_cast<unsigned long long>(sc_total),
      static_cast<unsigned long long>(lb_roundtrips), report.workers_used,
      static_cast<double>(report.wall_micros) / 1000.0);
  return violations + errors + cancelled;
}

int cmd_sweep(const Args& args) {
  exp::CampaignSpec spec;
  spec.algorithms = exp::resolve_algorithms(args.get("algs", "all"));
  const std::string scheds = args.get("scheds", "");
  spec.schedulers = scheds.empty() ? sim::scheduler_names() : exp::split_list(scheds);
  for (const auto& sched : spec.schedulers) {
    // Up-front validation so a typo'd or unparameterized scheduler (or
    // "replay", which needs a schedule file) is a usage error before any
    // cell runs. expand() would also throw, but mid-setup instead of here.
    try {
      (void)sim::make_scheduler(sched, 2, 0);
    } catch (const std::invalid_argument& e) {
      throw UsageError("error: --scheds: " + std::string(e.what()));
    }
  }
  spec.sizes = exp::parse_sizes(args.get("n", "2..8"));
  spec.seed = parse_uint(args.get("seed", "2026"), "--seed", 0);
  if (args.has("faithful")) spec.mode = sim::RunMode::kFaithful;
  if (args.has("no-lb")) spec.lb_pipeline = false;
  spec.max_steps = parse_uint(args.get("max-steps", "50000000"), "--max-steps", 1);

  exp::ServiceOptions options;
  options.run.workers = parse_int(args.get("workers", "0"), "--workers", 0, 1024);
  options.run.max_retries = parse_int(args.get("max-retries", "3"), "--max-retries", 0, 100);
  options.journal_batch = parse_uint(args.get("journal-batch", "32"), "--journal-batch", 1);
  const std::string state_dir = args.get("state", "");
  if (args.has("state") && state_dir.empty()) {
    throw UsageError("error: --state expects a directory path");
  }
  if (args.has("shard")) {
    const std::string shard = args.get("shard", "");
    const std::size_t slash = shard.find('/');
    if (slash == std::string::npos) {
      throw UsageError("error: --shard expects I/K (e.g. --shard 1/4), got '" + shard + "'");
    }
    options.shard_count = parse_int(shard.substr(slash + 1), "--shard count", 1, 1000000);
    options.shard_index =
        parse_int(shard.substr(0, slash), "--shard index", 1, options.shard_count);
  }
  if (args.has("progress")) {
    options.run.on_cell = [](const exp::CellResult& cell) {
      std::fprintf(stderr, "[%zu] %s/%s n=%d: %s (%.1f ms)\n", cell.cell.index,
                   cell.cell.algorithm.c_str(), cell.cell.scheduler.c_str(), cell.cell.n,
                   cell.status.c_str(), static_cast<double>(cell.wall_micros) / 1000.0);
    };
  }

  exp::ServiceReport service;
  bool determinism_failed = false;
  if (args.has("check-determinism")) {
    // The acceptance check: a 1-worker run and an N-worker run of the same
    // campaign must serialize to the same bytes; report the parallel speedup.
    // The baseline deliberately runs WITHOUT the state directory, so with
    // --state this also proves journal-served bytes == freshly-computed bytes.
    exp::ServiceOptions serial = options;
    serial.run.workers = 1;
    const auto baseline = exp::run_campaign_service(spec, "", serial);
    service = exp::run_campaign_service(spec, state_dir, options);
    const std::string json_serial = exp::to_json(baseline.report);
    const std::string json_parallel = exp::to_json(service.report);
    const double speedup =
        service.report.wall_micros > 0
            ? static_cast<double>(baseline.report.wall_micros) /
                  static_cast<double>(service.report.wall_micros)
            : 0.0;
    std::printf("determinism: 1-worker vs %d-worker report %s (hash %s)\n",
                service.report.workers_used,
                json_serial == json_parallel ? "byte-identical" : "MISMATCH",
                exp::report_hash(service.report).c_str());
    std::printf("speedup: %.2fx (%.1f ms serial, %.1f ms on %d workers)\n", speedup,
                static_cast<double>(baseline.report.wall_micros) / 1000.0,
                static_cast<double>(service.report.wall_micros) / 1000.0,
                service.report.workers_used);
    determinism_failed = json_serial != json_parallel;
  } else {
    service = exp::run_campaign_service(spec, state_dir, options);
  }
  const exp::CampaignReport& report = service.report;

  // Always emit the summary and the requested report files — on a
  // determinism mismatch they are exactly the diagnostics CI must upload.
  const std::size_t not_ok = print_sweep_summary(report);
  if (options.shard_count > 1) {
    std::printf("shard %d/%d: %zu of the campaign's cells\n", options.shard_index,
                options.shard_count, report.cells.size());
  }
  if (!state_dir.empty()) {
    std::printf("journal %s: %zu cached, %zu executed, %llu retried "
                "(recovered %zu records from %zu segments%s%s)\n",
                state_dir.c_str(), service.cached, service.executed,
                static_cast<unsigned long long>(service.retries), service.journal.records,
                service.journal.segments,
                service.journal.torn_segments ? ", torn tail truncated" : "",
                service.journal.orphan_tmp ? ", orphan tmp removed" : "");
  }
  std::printf("report hash: %s\n", exp::report_hash(report).c_str());
  if (args.has("json") && !write_file(args.get("json", ""), exp::to_json(report))) return 1;
  if (args.has("csv") && !write_file(args.get("csv", ""), exp::to_csv(report))) return 1;
  return (not_ok == 0 && !determinism_failed) ? 0 : 1;
}

// Join shard state directories into the full campaign report. The spec is
// reconstructed from the shard metas, so merge needs no sweep flags.
int cmd_merge(const Args& args) {
  if (args.positional.empty()) {
    throw UsageError("error: merge expects one state directory per shard");
  }
  const exp::CampaignReport report = exp::merge_shards(args.positional);
  const std::size_t not_ok = print_sweep_summary(report);
  std::printf("merged %zu shards: %zu cells\n", args.positional.size(), report.cells.size());
  std::printf("report hash: %s\n", exp::report_hash(report).c_str());
  if (args.has("json") && !write_file(args.get("json", ""), exp::to_json(report))) return 1;
  if (args.has("csv") && !write_file(args.get("csv", ""), exp::to_csv(report))) return 1;
  return not_ok == 0 ? 0 : 1;
}

void usage() {
  std::printf(
      "usage: melb_cli <command> ...\n"
      "  list                                  algorithm registry\n"
      "  run <alg> <n> [--sched S] [--seed K] [--faithful] [--trace FILE]\n"
      "      [--schedule-out FILE]             record the schedule for replay\n"
      "      [--schedule-in FILE]              replay a recorded schedule\n"
      "  adversary <alg> <n> [--cost MODEL] [--schedule-out FILE]\n"
      "            [--max-states K] [--workers W] [--memory-limit-mb M]\n"
      "  construct <alg> <n> [--pi identity|reverse|random] [--seed K]\n"
      "            [--encode FILE] [--dump]\n"
      "  decode <alg> <E-file>\n"
      "  check <alg> <n> [--property NAME[,NAME...]] [--subsets]\n"
      "        [--max-states K] [--workers W] [--memory-limit-mb M]\n"
      "        [--ddd] [--ddd-window L] [--symmetry] [--check-determinism]\n"
      "        [--no-mutex] [--no-progress]  (deprecated boolean shims)\n"
      "  check --list-properties\n"
      "  cost <alg> <n>\n"
      "  sweep [--algs all|correct|registers|a,b] [--scheds s1,s2] [--n 2..8]\n"
      "        [--seed K] [--workers W] [--faithful] [--no-lb] [--max-steps K]\n"
      "        [--json FILE] [--csv FILE] [--check-determinism] [--progress]\n"
      "        [--state DIR] [--shard I/K] [--journal-batch B] [--max-retries R]\n"
      "  merge <state-dir>... [--json FILE] [--csv FILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv);
  try {
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(args);
    if (command == "adversary") return cmd_adversary(args);
    if (command == "construct") return cmd_construct(args);
    if (command == "decode") return cmd_decode(args);
    if (command == "check") return cmd_check(args);
    if (command == "cost") return cmd_cost(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "merge") return cmd_merge(args);
    usage();
    return 2;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage();
    return 2;
  } catch (const std::out_of_range& e) {
    std::fprintf(stderr, "error: missing or unknown argument (%s)\n", e.what());
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
