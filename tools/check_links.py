#!/usr/bin/env python3
"""Markdown link checker for intra-repo links (stdlib only).

Usage:
    check_links.py [--root DIR] PATH [PATH ...]
    check_links.py --self-test

Each PATH is a markdown file or a directory scanned recursively for *.md.
The checker validates every inline link `[text](target)` and reference
definition `[label]: target`:

  * `http(s)://`, `mailto:` and other scheme-qualified targets are skipped —
    this tool gates *intra-repo* links only, so docs cannot rot silently when
    files move, while staying hermetic (no network).
  * Relative paths must exist on disk, resolved against the linking file's
    directory (or against --root when the target starts with `/`).
  * `#anchor` fragments — bare or after a markdown path — must match a
    heading of the target file, using GitHub's slugification (lowercase,
    punctuation stripped, spaces to hyphens, `-N` suffixes for duplicates).

Fenced code blocks and inline code spans are ignored, so `grep -q "[ok](x)"`
in a shell example is not treated as a link. Exits nonzero listing every dead
link as file:line.
"""

import argparse
import os
import re
import sys
import tempfile

INLINE_LINK = re.compile(r"\[[^\]\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+(\S+)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
FENCE = re.compile(r"^\s*(```|~~~)")
CODE_SPAN = re.compile(r"`[^`]*`")


def github_slug(title, seen):
    """GitHub's anchor slug for a heading title (with duplicate -N suffixes)."""
    slug = re.sub(r"[^\w\- ]", "", title.lower().strip()).replace(" ", "-")
    if slug not in seen:
        seen[slug] = 0
        return slug
    seen[slug] += 1
    return f"{slug}-{seen[slug]}"


def iter_markdown_lines(text):
    """Yields (line_number, line) outside fenced code blocks, code spans cut."""
    in_fence = False
    for number, line in enumerate(text.splitlines(), start=1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield number, CODE_SPAN.sub("", line)


def heading_slugs(path):
    seen = {}
    slugs = set()
    with open(path, encoding="utf-8") as handle:
        for _, line in iter_markdown_lines(handle.read()):
            match = HEADING.match(line)
            if match:
                slugs.add(github_slug(match.group(2), seen))
    return slugs


def extract_links(text):
    """Yields (line_number, target) for every link-shaped construct."""
    for number, line in iter_markdown_lines(text):
        for match in INLINE_LINK.finditer(line):
            yield number, match.group(1)
        match = REFERENCE_DEF.match(line)
        if match:
            yield number, match.group(1)


def check_file(path, root):
    errors = []
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for line, target in extract_links(text):
        if SCHEME.match(target):
            continue  # external: out of scope
        base, _, fragment = target.partition("#")
        if base:
            resolved = (
                os.path.join(root, base.lstrip("/"))
                if base.startswith("/")
                else os.path.join(os.path.dirname(path), base)
            )
            resolved = os.path.normpath(resolved)
            if not os.path.exists(resolved):
                errors.append(f"{path}:{line}: dead link `{target}` "
                              f"({resolved} does not exist)")
                continue
        else:
            resolved = path  # pure-anchor link into this file
        if fragment:
            if not (os.path.isfile(resolved) and resolved.endswith(".md")):
                continue  # anchors into non-markdown targets: not checkable
            if fragment.lower() not in heading_slugs(resolved):
                errors.append(f"{path}:{line}: dead anchor `{target}` "
                              f"(no heading #{fragment} in {resolved})")
    return errors


def collect_files(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for directory, _, names in sorted(os.walk(path)):
                files.extend(os.path.join(directory, name)
                             for name in sorted(names) if name.endswith(".md"))
        else:
            files.append(path)
    return files


def run(paths, root):
    errors = []
    files = collect_files(paths)
    for path in files:
        if not os.path.isfile(path):
            errors.append(f"{path}: no such file")
            continue
        errors.extend(check_file(path, root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"check_links: {len(files)} file(s), {len(errors)} dead link(s)")
    return 1 if errors else 0


def self_test():
    """Pins the contract: dead paths/anchors fail, valid and external pass."""
    failures = []

    def expect(name, condition):
        if not condition:
            failures.append(name)

    with tempfile.TemporaryDirectory() as tmp:
        docs = os.path.join(tmp, "docs")
        os.mkdir(docs)
        with open(os.path.join(tmp, "target.md"), "w", encoding="utf-8") as f:
            f.write("# Real Heading\n\n## Dots. And (Parens)!\n\n## Dup\n\n## Dup\n")
        with open(os.path.join(docs, "good.md"), "w", encoding="utf-8") as f:
            f.write(
                "[up](../target.md) and [anchor](../target.md#real-heading)\n"
                "[punct](../target.md#dots-and-parens) [dup2](../target.md#dup-1)\n"
                "[self](#local) [ext](https://example.com/nope) <!-- skipped -->\n"
                "[root](/target.md)\n"
                "```sh\ngrep -q \"[not](a-link.md)\" log  # fenced: ignored\n```\n"
                "and `[not](inline-code.md)` either\n"
                "\n# Local\n"
            )
        expect("valid links pass", run([docs], tmp) == 0)
        expect("file arg works", run([os.path.join(docs, "good.md")], tmp) == 0)

        with open(os.path.join(docs, "bad.md"), "w", encoding="utf-8") as f:
            f.write("[gone](missing.md)\n[bad anchor](../target.md#nope)\n"
                    "[ref]: also-missing.md\n")
        expect("dead path/anchor/reference fail", run([docs], tmp) == 1)
        os.remove(os.path.join(docs, "bad.md"))

        expect("missing input fails", run([os.path.join(tmp, "nope.md")], tmp) == 1)

    if failures:
        print("SELF-TEST FAILED: " + ", ".join(failures), file=sys.stderr)
        return 1
    print("self-test ok")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", help="markdown files or directories")
    parser.add_argument("--root", default=".",
                        help="repo root for absolute (`/…`) link targets")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in contract tests and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.paths:
        parser.error("no paths given (or use --self-test)")
    return run(args.paths, os.path.abspath(args.root))


if __name__ == "__main__":
    sys.exit(main())
