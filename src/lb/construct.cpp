#include "lb/construct.h"

#include <stdexcept>

#include "sim/simulator.h"

namespace melb::lb {

namespace {

using sim::CritKind;
using sim::Pid;
using sim::Reg;
using sim::Step;
using sim::StepType;

class Builder {
 public:
  Builder(const sim::Algorithm& algorithm, int n, const util::Permutation& pi,
          const ConstructOptions& options)
      : algorithm_(algorithm), options_(options) {
    result_.n = n;
    result_.pi = pi;
    result_.process_chain.resize(static_cast<std::size_t>(n));
    const int regs = algorithm.num_registers(n);
    result_.writes_by_reg.resize(static_cast<std::size_t>(regs));
    result_.reads_by_reg.resize(static_cast<std::size_t>(regs));
  }

  Construction run() {
    for (int stage = 0; stage < result_.n; ++stage) {
      generate(result_.pi.at(stage));
      if (options_.keep_stage_snapshots) {
        Construction snapshot;
        snapshot.n = result_.n;
        snapshot.pi = result_.pi;
        snapshot.metasteps = result_.metasteps;
        snapshot.order = result_.order;
        snapshot.process_chain = result_.process_chain;
        snapshot.writes_by_reg = result_.writes_by_reg;
        snapshot.reads_by_reg = result_.reads_by_reg;
        result_.stages.push_back(std::move(snapshot));
      }
    }
    return std::move(result_);
  }

 private:
  MetastepId new_metastep(MetastepType type, Reg reg) {
    const MetastepId id = result_.order.add_node();
    Metastep m;
    m.id = id;
    m.type = type;
    m.reg = reg;
    result_.metasteps.push_back(std::move(m));
    ++result_.creations;
    return id;
  }

  Metastep& meta(MetastepId id) { return result_.metasteps[static_cast<std::size_t>(id)]; }

  // min over the register's write chain (chain order = ≼ order, Lemma 5.3)
  // of metasteps not ≼ bound, optionally filtered by `accept`.
  template <typename Accept>
  MetastepId min_write_not_leq(Reg reg, MetastepId bound, Accept accept) {
    for (MetastepId id : result_.writes_by_reg[static_cast<std::size_t>(reg)]) {
      if (result_.order.leq(id, bound)) continue;
      if (!accept(id)) continue;
      return id;
    }
    return -1;
  }

  // max≼ of read metasteps on reg not ≼ bound (the Mr of Fig. 1 line 21).
  std::vector<MetastepId> maximal_reads_not_leq(Reg reg, MetastepId bound) {
    std::vector<MetastepId> candidates;
    for (MetastepId id : result_.reads_by_reg[static_cast<std::size_t>(reg)]) {
      if (!result_.order.leq(id, bound)) candidates.push_back(id);
    }
    std::vector<MetastepId> maximal;
    for (MetastepId a : candidates) {
      bool is_max = true;
      for (MetastepId b : candidates) {
        if (a != b && result_.order.leq(a, b)) {
          is_max = false;
          break;
        }
      }
      if (is_max) maximal.push_back(a);
    }
    return maximal;
  }

  // The value register `reg` holds after Plin(M, ≼, bound): the last write
  // metastep on the register's (totally ordered, Lemma 5.3) chain that is
  // ≼ bound determines it; with none, the initial value. This replaces the
  // quadratic "linearize and scan" evaluation.
  sim::Value register_value_at(Reg reg, MetastepId bound) const {
    const auto& chain = result_.writes_by_reg[static_cast<std::size_t>(reg)];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (result_.order.leq(*it, bound)) {
        return result_.metasteps[static_cast<std::size_t>(*it)].value();
      }
    }
    return algorithm_.register_init(reg, result_.n);
  }

  // Fig. 1 evaluates δ(α, j) by re-linearizing after every insertion; since
  // process j's observations are fully determined by the metastep its step
  // lands in (reads observe val(msw); solo reads observe the chain value at
  // m'), we instead keep j's automaton live and advance it as steps are
  // placed. paranoid_replay_check cross-checks against the literal Fig. 1
  // computation.
  void check_against_replay(Pid j, MetastepId mprime, const sim::Automaton& automaton) {
    const auto alpha = partial_linearize(result_.metasteps, result_.order, mprime);
    const auto replayed = sim::replay_process(algorithm_, result_.n, alpha, j);
    if (replayed->fingerprint() != automaton.fingerprint() ||
        replayed->done() != automaton.done()) {
      throw std::logic_error(
          "construct: incremental automaton diverged from Plin+replay (fast-path bug)");
    }
  }

  // One stage of Construct: run process j to completion, hiding it from all
  // lower-π processes.
  void generate(Pid j) {
    // Fig. 1 line 8: the try metastep.
    MetastepId mprime = new_metastep(MetastepType::kCrit, -1);
    meta(mprime).crit = Step::crit_step(j, CritKind::kTry);
    result_.process_chain[static_cast<std::size_t>(j)].push_back(mprime);

    auto automaton = algorithm_.make_process(j, result_.n);
    {
      const Step try_step = automaton->propose();
      if (try_step.type != StepType::kCrit || try_step.crit != CritKind::kTry) {
        throw std::runtime_error("construct: process does not start with try");
      }
      automaton->advance(0);
    }

    std::uint64_t iterations = 0;
    while (true) {
      if (++iterations > options_.max_steps_per_process) {
        throw std::runtime_error("construct: process " + std::to_string(j) +
                                 " exceeded max steps (algorithm not livelock-free?)");
      }
      ++result_.delta_evaluations;
      if (options_.paranoid_replay_check) check_against_replay(j, mprime, *automaton);
      if (automaton->done()) break;  // performed rem_j: stage complete
      const Step e = automaton->propose();

      switch (e.type) {
        case StepType::kWrite: {
          const MetastepId mw = min_write_not_leq(e.reg, mprime, [](MetastepId) { return true; });
          if (mw != -1) {
            // Hide e: it is overwritten by mw's winning write.
            meta(mw).writes.push_back(e);
            result_.order.add_edge(mprime, mw);
            ++result_.insertions;
            mprime = mw;
          } else {
            const MetastepId m = new_metastep(MetastepType::kWrite, e.reg);
            meta(m).win = e;
            // Order after every maximal read on the register so those reads
            // keep their observed values (they become prereads of m).
            const auto mr = maximal_reads_not_leq(e.reg, mprime);
            meta(m).pread = mr;
            for (MetastepId r : mr) result_.order.add_edge(r, m);
            result_.order.add_edge(mprime, m);
            result_.writes_by_reg[static_cast<std::size_t>(e.reg)].push_back(m);
            mprime = m;
          }
          automaton->advance(0);
          break;
        }
        case StepType::kRead: {
          const MetastepId msw = min_write_not_leq(e.reg, mprime, [&](MetastepId id) {
            return sim::read_changes_state(*automaton, meta(id).value());
          });
          if (msw != -1) {
            // j's (possibly spinning) read resolves inside msw and observes
            // the metastep's value.
            meta(msw).reads.push_back(e);
            result_.order.add_edge(mprime, msw);
            ++result_.insertions;
            mprime = msw;
            automaton->advance(meta(msw).value());
          } else {
            // Reading the current value must change j's state, else the
            // system could never progress (livelock-freedom, §5.1).
            const sim::Value current = register_value_at(e.reg, mprime);
            if (!sim::read_changes_state(*automaton, current)) {
              throw std::runtime_error(
                  "construct: process would spin forever on the current value "
                  "(livelock-freedom violated by the algorithm)");
            }
            const MetastepId m = new_metastep(MetastepType::kRead, e.reg);
            meta(m).reads.push_back(e);
            result_.order.add_edge(mprime, m);
            result_.reads_by_reg[static_cast<std::size_t>(e.reg)].push_back(m);
            mprime = m;
            automaton->advance(current);
          }
          break;
        }
        case StepType::kCrit: {
          const MetastepId m = new_metastep(MetastepType::kCrit, -1);
          meta(m).crit = e;
          result_.order.add_edge(mprime, m);
          mprime = m;
          automaton->advance(0);
          break;
        }
        case StepType::kRmw:
          // The Fig. 1 construction's hiding argument (a write is silently
          // overwritten by the metastep winner) is register-specific: an RMW
          // would observe the hidden value. The paper's comparison-primitive
          // extension needs a different construction (§1); we reject rather
          // than build an unsound adversary.
          throw std::runtime_error(
              "construct: algorithm uses read-modify-write primitives; the "
              "register-only lower-bound construction does not apply");
      }
      result_.process_chain[static_cast<std::size_t>(j)].push_back(mprime);
    }
  }

  const sim::Algorithm& algorithm_;
  ConstructOptions options_;
  Construction result_;
};

}  // namespace

std::vector<sim::Step> Construction::canonical_linearization() const {
  return linearize(metasteps, order);
}

Construction construct(const sim::Algorithm& algorithm, int n, const util::Permutation& pi,
                       const ConstructOptions& options) {
  if (pi.size() != n) throw std::invalid_argument("construct: |pi| != n");
  Builder builder(algorithm, n, pi, options);
  return builder.run();
}

}  // namespace melb::lb
