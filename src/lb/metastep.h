// Metasteps (paper Def. 5.1).
//
// A metastep bundles steps by different processes on one register so that a
// linearization hides every participant except (possibly) the winner: the
// non-winning writes are immediately overwritten by the winning write, and
// the reads all observe the winning write's value. Critical steps get
// singleton metasteps; solo reads (reads that change the reader's state on
// the current register value) get singleton read metasteps.
#pragma once

#include <optional>
#include <vector>

#include "sim/types.h"

namespace melb::lb {

using MetastepId = int;

enum class MetastepType : std::uint8_t { kRead, kWrite, kCrit };

struct Metastep {
  MetastepId id = -1;
  MetastepType type = MetastepType::kCrit;
  sim::Reg reg = -1;                   // for read/write metasteps
  std::vector<sim::Step> reads;        // read(m)
  std::vector<sim::Step> writes;       // write(m): non-winning writes
  std::optional<sim::Step> win;        // win(m): the winning write
  std::optional<sim::Step> crit;       // crit(m)
  std::vector<MetastepId> pread;       // pread(m): read metasteps ordered before m

  // val(m): the value the metastep leaves in the register (and the value all
  // reads in the metastep observe). Write metasteps only.
  sim::Value value() const { return win->value; }

  // own(m): pids taking a step in the metastep.
  std::vector<sim::Pid> owners() const;

  bool contains(sim::Pid pid) const;

  // step(m, i); pid must be contained in m.
  const sim::Step& step_of(sim::Pid pid) const;

  // Number of processes contained (the k of Theorem 6.2's O(k)-bit argument).
  int participant_count() const;

  // Seq(m) (Fig. 1): non-winning writes, winning write, then reads. The
  // paper leaves the order within the write/read groups arbitrary; callers
  // pass a permutation policy via the linearizer, the default is pid order.
  std::vector<sim::Step> sequence() const;
};

}  // namespace melb::lb
