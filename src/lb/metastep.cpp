#include "lb/metastep.h"

#include <stdexcept>

namespace melb::lb {

std::vector<sim::Pid> Metastep::owners() const {
  std::vector<sim::Pid> pids;
  for (const auto& s : writes) pids.push_back(s.pid);
  if (win) pids.push_back(win->pid);
  for (const auto& s : reads) pids.push_back(s.pid);
  if (crit) pids.push_back(crit->pid);
  return pids;
}

bool Metastep::contains(sim::Pid pid) const {
  for (const auto& s : writes) {
    if (s.pid == pid) return true;
  }
  if (win && win->pid == pid) return true;
  for (const auto& s : reads) {
    if (s.pid == pid) return true;
  }
  return crit && crit->pid == pid;
}

const sim::Step& Metastep::step_of(sim::Pid pid) const {
  for (const auto& s : writes) {
    if (s.pid == pid) return s;
  }
  if (win && win->pid == pid) return *win;
  for (const auto& s : reads) {
    if (s.pid == pid) return s;
  }
  if (crit && crit->pid == pid) return *crit;
  throw std::out_of_range("Metastep::step_of: process not contained in metastep");
}

int Metastep::participant_count() const {
  return static_cast<int>(writes.size() + reads.size()) + (win ? 1 : 0) + (crit ? 1 : 0);
}

std::vector<sim::Step> Metastep::sequence() const {
  std::vector<sim::Step> steps;
  steps.reserve(static_cast<std::size_t>(participant_count()));
  for (const auto& s : writes) steps.push_back(s);
  if (win) steps.push_back(*win);
  for (const auto& s : reads) steps.push_back(s);
  if (crit) steps.push_back(*crit);
  return steps;
}

}  // namespace melb::lb
