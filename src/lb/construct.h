// The construction step (paper §5, Fig. 1).
//
// Construct(π) processes the permutation π stage by stage. Stage i runs
// Generate for process p = π(i): starting from p's try step, it repeatedly
// evaluates δ on a partial linearization to get p's next step e and then
//  * e a write: insert e into the ≼-minimum write metastep on e's register
//    not ≼ m' (p's write is hidden, overwritten by the winning write), or
//    create a new write metastep won by e, ordered after the maximal read
//    metasteps on the register (which become its prereads);
//  * e a read: insert e into the ≼-minimum write metastep on the register
//    not ≼ m' whose value changes p's state (p's spin resolves inside that
//    metastep), or create a singleton read metastep;
//  * e critical: a singleton critical metastep.
// The result (M, ≼) linearizes to executions in which processes enter their
// critical sections exactly in π order (Theorem 5.5) while lower-π processes
// never observe higher-π ones.
#pragma once

#include <cstdint>
#include <vector>

#include "lb/linearize.h"
#include "lb/metastep.h"
#include "lb/partial_order.h"
#include "sim/automaton.h"
#include "util/permutation.h"

namespace melb::lb {

struct Construction {
  int n = 0;
  util::Permutation pi;
  std::vector<Metastep> metasteps;            // indexed by MetastepId
  PartialOrder order;
  // Process p's metasteps in its chain order (the total order of Lemma 5.4's
  // machinery; drives the encoder's Pc(p, m) numbering).
  std::vector<std::vector<MetastepId>> process_chain;
  // Write / read metasteps per register in chain creation order (write
  // metasteps on one register are totally ordered — Lemma 5.3).
  std::vector<std::vector<MetastepId>> writes_by_reg;
  std::vector<std::vector<MetastepId>> reads_by_reg;

  // Instrumentation.
  std::uint64_t delta_evaluations = 0;   // how many times δ was applied
  std::uint64_t insertions = 0;          // steps hidden inside existing metasteps
  std::uint64_t creations = 0;           // new metasteps

  // (M_i, ≼_i) after each stage, if ConstructOptions::keep_stage_snapshots
  // was set — stage i holds the structure after processes π(0..i) ran.
  // Used to check Lemma 5.4 (earlier processes cannot distinguish stages).
  std::vector<Construction> stages;

  // The canonical linearization α_π as raw steps.
  std::vector<sim::Step> canonical_linearization() const;
};

struct ConstructOptions {
  // Safety valve: maximum δ evaluations per process before declaring the
  // algorithm stuck (not livelock-free for this construction order).
  std::uint64_t max_steps_per_process = 1'000'000;

  // Record a deep copy of the construction after every stage (costly;
  // intended for tests and small n).
  bool keep_stage_snapshots = false;

  // Cross-check the incrementally maintained automaton state against a full
  // Plin + replay evaluation of δ(α, j) at every iteration (the literal
  // Fig. 1 computation). Quadratic; used by tests to certify the fast path.
  bool paranoid_replay_check = false;
};

// Runs the full n-stage construction of (M_n, ≼_n) for the given algorithm
// and permutation. Throws std::runtime_error if the algorithm stalls (which
// a livelock-free mutex algorithm cannot, per §5.2).
Construction construct(const sim::Algorithm& algorithm, int n, const util::Permutation& pi,
                       const ConstructOptions& options = {});

}  // namespace melb::lb
