#include "lb/linearize.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/prng.h"

namespace melb::lb {

namespace {

std::vector<sim::Step> expand(const Metastep& metastep, util::Xoshiro256StarStar* rng) {
  std::vector<sim::Step> writes = metastep.writes;
  std::vector<sim::Step> reads = metastep.reads;
  auto by_pid = [](const sim::Step& a, const sim::Step& b) { return a.pid < b.pid; };
  std::sort(writes.begin(), writes.end(), by_pid);
  std::sort(reads.begin(), reads.end(), by_pid);
  if (rng != nullptr) {
    for (std::size_t k = writes.size(); k > 1; --k) {
      std::swap(writes[k - 1], writes[rng->below(k)]);
    }
    for (std::size_t k = reads.size(); k > 1; --k) {
      std::swap(reads[k - 1], reads[rng->below(k)]);
    }
  }
  std::vector<sim::Step> steps;
  steps.insert(steps.end(), writes.begin(), writes.end());
  if (metastep.win) steps.push_back(*metastep.win);
  steps.insert(steps.end(), reads.begin(), reads.end());
  if (metastep.crit) steps.push_back(*metastep.crit);
  return steps;
}

}  // namespace

std::vector<MetastepId> topo_order(const std::vector<Metastep>& metasteps,
                                   const PartialOrder& order,
                                   const std::vector<MetastepId>& include,
                                   const LinearizePolicy& policy) {
  std::vector<bool> in_set(metasteps.size(), include.empty());
  if (!include.empty()) {
    for (MetastepId id : include) in_set[static_cast<std::size_t>(id)] = true;
  }

  std::vector<int> pending(metasteps.size(), 0);
  std::vector<MetastepId> ready;
  std::size_t selected_total = 0;
  for (std::size_t id = 0; id < metasteps.size(); ++id) {
    if (!in_set[id]) continue;
    ++selected_total;
    int deps = 0;
    for (int pred : order.in_edges()[id]) {
      if (in_set[static_cast<std::size_t>(pred)]) ++deps;
    }
    pending[id] = deps;
    if (deps == 0) ready.push_back(static_cast<MetastepId>(id));
  }

  std::optional<util::Xoshiro256StarStar> rng;
  if (policy.random_seed) rng.emplace(*policy.random_seed);

  // Min-heap on id for the canonical order; random extraction otherwise.
  std::priority_queue<MetastepId, std::vector<MetastepId>, std::greater<>> heap(
      ready.begin(), ready.end());

  std::vector<MetastepId> result;
  result.reserve(selected_total);
  std::vector<MetastepId> pool = ready;  // used in random mode

  while (true) {
    MetastepId next;
    if (rng) {
      if (pool.empty()) break;
      const std::size_t pick = static_cast<std::size_t>(rng->below(pool.size()));
      next = pool[pick];
      pool[pick] = pool.back();
      pool.pop_back();
    } else {
      if (heap.empty()) break;
      next = heap.top();
      heap.pop();
    }
    result.push_back(next);
    for (int succ : order.out_edges()[static_cast<std::size_t>(next)]) {
      if (!in_set[static_cast<std::size_t>(succ)]) continue;
      if (--pending[static_cast<std::size_t>(succ)] == 0) {
        if (rng) {
          pool.push_back(succ);
        } else {
          heap.push(succ);
        }
      }
    }
  }

  if (result.size() != selected_total) {
    throw std::logic_error("topo_order: cycle detected in metastep order");
  }
  return result;
}

std::vector<sim::Step> linearize(const std::vector<Metastep>& metasteps,
                                 const PartialOrder& order, const LinearizePolicy& policy) {
  const auto ids = topo_order(metasteps, order, {}, policy);
  std::optional<util::Xoshiro256StarStar> rng;
  if (policy.random_seed) rng.emplace(*policy.random_seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<sim::Step> steps;
  for (MetastepId id : ids) {
    const auto seq = expand(metasteps[static_cast<std::size_t>(id)], rng ? &*rng : nullptr);
    steps.insert(steps.end(), seq.begin(), seq.end());
  }
  return steps;
}

std::vector<sim::Step> partial_linearize(const std::vector<Metastep>& metasteps,
                                         const PartialOrder& order, MetastepId m,
                                         const LinearizePolicy& policy) {
  const auto include = order.ancestors_of(m);
  const auto ids = topo_order(metasteps, order, include, policy);
  std::optional<util::Xoshiro256StarStar> rng;
  if (policy.random_seed) rng.emplace(*policy.random_seed ^ 0x6a09e667f3bcc909ULL);
  std::vector<sim::Step> steps;
  for (MetastepId id : ids) {
    const auto seq = expand(metasteps[static_cast<std::size_t>(id)], rng ? &*rng : nullptr);
    steps.insert(steps.end(), seq.begin(), seq.end());
  }
  return steps;
}

}  // namespace melb::lb
