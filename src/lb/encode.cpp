#include "lb/encode.h"

#include <stdexcept>

#include "util/varint.h"

namespace melb::lb {

namespace {

// Bits for one cell in the compact binary form: a 3-bit tag, plus varint
// counts for signature cells. This is the object Theorem 6.2 measures.
std::uint64_t cell_bits(const std::string& cell) {
  Signature sig;
  if (parse_signature_cell(cell, sig)) {
    return 3 + 8 * (util::varint_size(static_cast<std::uint64_t>(sig.prereads)) +
                    util::varint_size(static_cast<std::uint64_t>(sig.readers)) +
                    util::varint_size(static_cast<std::uint64_t>(sig.writers)));
  }
  return 3;
}

}  // namespace

bool parse_signature_cell(const std::string& cell, Signature& out) {
  // Format: W,PR<x>R<y>W<z>
  if (cell.rfind("W,PR", 0) != 0) return false;
  std::size_t pos = 4;
  auto read_int = [&](char terminator) -> int {
    int value = 0;
    bool any = false;
    while (pos < cell.size() && cell[pos] >= '0' && cell[pos] <= '9') {
      value = value * 10 + (cell[pos] - '0');
      ++pos;
      any = true;
    }
    if (!any) throw std::invalid_argument("bad signature cell: " + cell);
    if (terminator != '\0') {
      if (pos >= cell.size() || cell[pos] != terminator) {
        throw std::invalid_argument("bad signature cell: " + cell);
      }
      ++pos;
    }
    return value;
  };
  out.prereads = read_int('R');
  out.readers = read_int('W');
  out.writers = read_int('\0');
  if (pos != cell.size()) throw std::invalid_argument("bad signature cell: " + cell);
  return true;
}

Encoding encode(const Construction& construction) {
  Encoding result;
  result.cells.resize(static_cast<std::size_t>(construction.n));

  // Which read metasteps appear in some preread set.
  std::vector<bool> is_preread(construction.metasteps.size(), false);
  for (const auto& m : construction.metasteps) {
    for (MetastepId r : m.pread) is_preread[static_cast<std::size_t>(r)] = true;
  }

  // Fill columns in chain order — this is exactly the row order Pc(p, m)
  // assigns, since process chains are totally ordered.
  const auto cell_text = [](const Metastep& m, sim::Pid p, bool preread) -> std::string {
    switch (m.type) {
      case MetastepType::kWrite:
        if (m.win && m.win->pid == p) {
          return "W,PR" + std::to_string(m.pread.size()) + "R" +
                 std::to_string(m.reads.size()) + "W" + std::to_string(m.writes.size() + 1);
        }
        return m.step_of(p).type == sim::StepType::kRead ? "R" : "W";
      case MetastepType::kRead:
        return preread ? "PR" : "SR";
      case MetastepType::kCrit:
        break;
    }
    return "C";
  };
  for (sim::Pid p = 0; p < construction.n; ++p) {
    for (MetastepId id : construction.process_chain[static_cast<std::size_t>(p)]) {
      const Metastep& m = construction.metasteps[static_cast<std::size_t>(id)];
      result.cells[static_cast<std::size_t>(p)].push_back(
          cell_text(m, p, is_preread[static_cast<std::size_t>(id)]));
    }
  }

  for (const auto& column : result.cells) {
    for (const auto& cell : column) {
      result.text += cell;
      result.text += '#';
      result.binary_bits += cell_bits(cell);
    }
    result.text += '$';
    result.binary_bits += 3;  // column terminator tag
  }
  return result;
}

std::vector<std::vector<std::string>> parse_encoding(const std::string& text) {
  std::vector<std::vector<std::string>> columns;
  std::vector<std::string> column;
  std::string cell;
  for (char c : text) {
    if (c == '#') {
      if (cell.empty()) throw std::invalid_argument("parse_encoding: empty cell");
      column.push_back(std::move(cell));
      cell.clear();
    } else if (c == '$') {
      if (!cell.empty()) throw std::invalid_argument("parse_encoding: unterminated cell");
      columns.push_back(std::move(column));
      column.clear();
    } else {
      cell += c;
    }
  }
  if (!cell.empty() || !column.empty()) {
    throw std::invalid_argument("parse_encoding: trailing data");
  }
  return columns;
}

}  // namespace melb::lb
