// The partial order ≼ on metasteps, with incremental transitive closure.
//
// Construct (Fig. 1) interleaves edge insertions with many "µ ⋠ m'" queries
// and min/max selections, so we maintain for every node the full bitset of
// its ≼-predecessors and ≼-successors (reflexive). Edge insertion unions
// closure bitsets along the affected cone; queries are O(1).
#pragma once

#include <vector>

#include "util/bitset.h"

namespace melb::lb {

class PartialOrder {
 public:
  // Adds a new node (initially incomparable to everything); returns its id.
  int add_node();

  // Records from ≺ to and closes transitively. No cycle may be created:
  // inserting an edge with to ≼ from already is a logic error (throws).
  void add_edge(int from, int to);

  // Reflexive: leq(a, a) is true.
  bool leq(int a, int b) const;

  int size() const { return static_cast<int>(preds_.size()); }

  // All µ with µ ≼ m, as ids in ascending id order.
  std::vector<int> ancestors_of(int m) const;

  // Direct (uncosed) edges, as inserted; used by the linearizer's Kahn scan.
  const std::vector<std::vector<int>>& out_edges() const { return out_edges_; }
  const std::vector<std::vector<int>>& in_edges() const { return in_edges_; }

  const util::DynamicBitset& preds(int m) const { return preds_[static_cast<std::size_t>(m)]; }

 private:
  void ensure_capacity(std::size_t bits);

  std::size_t capacity_ = 0;
  std::vector<util::DynamicBitset> preds_;  // preds_[m] ∋ µ  <=>  µ ≼ m
  std::vector<util::DynamicBitset> succs_;  // succs_[m] ∋ µ  <=>  m ≼ µ
  std::vector<std::vector<int>> out_edges_;
  std::vector<std::vector<int>> in_edges_;
};

}  // namespace melb::lb
