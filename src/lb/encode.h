// The encoding step (paper §6, Fig. 2).
//
// Encode(M, ≼) fills a table T with one column per process and one row per
// metastep of that process (in chain order). Cell contents:
//   "R" / "W"            — the process's step type in a write metastep it
//                          does not win;
//   "W,PRxRyWz"          — the winner's cell: step type plus the metastep's
//                          signature (|pread|, |read|, |write|+1);
//   "PR"                 — a singleton read metastep that is a preread of
//                          some write metastep;
//   "SR"                 — a singleton read metastep that is not;
//   "C"                  — a critical metastep.
// E_π is the concatenation of the nonempty cells column by column, cells
// separated by '#', columns by '$'.
//
// Theorem 6.2: |E_π| = O(C(α_π)). Besides the ASCII string we report a
// bit-exact binary size (3-bit tags + varint signature counts) since the
// ASCII form inflates the constant factor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lb/construct.h"

namespace melb::lb {

struct Encoding {
  // cells[i] = process i's column, in chain order.
  std::vector<std::vector<std::string>> cells;

  // The flat E_π string (cells joined with '#', columns terminated by '$').
  std::string text;

  // Size in bits of the compact binary form (for the O(C) accounting).
  std::uint64_t binary_bits = 0;

  int n() const { return static_cast<int>(cells.size()); }
};

Encoding encode(const Construction& construction);

// Re-parse an E_π string into per-process cell columns (the decoder's view;
// also exercised by round-trip tests). Throws std::invalid_argument on
// malformed input.
std::vector<std::vector<std::string>> parse_encoding(const std::string& text);

// Signature helper shared with the decoder: unpacks "W,PRxRyWz".
struct Signature {
  int prereads = 0;
  int readers = 0;
  int writers = 0;  // including the winning write
};
bool parse_signature_cell(const std::string& cell, Signature& out);

}  // namespace melb::lb
