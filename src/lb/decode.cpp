#include "lb/decode.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "lb/encode.h"
#include "sim/simulator.h"

namespace melb::lb {

namespace {

using sim::Pid;
using sim::Reg;
using sim::Step;
using sim::StepType;

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("decode: " + message);
}

struct RegisterState {
  std::set<Pid> writers;            // parked pending writers (W and winner cells)
  std::set<Pid> readers;            // parked pending readers (R cells)
  int prereads_done = 0;            // PR cells executed since the last write metastep
  bool has_signature = false;
  Pid winner = -1;
  Signature signature;
};

}  // namespace

DecodeResult decode(const sim::Algorithm& algorithm, const std::string& encoding) {
  const auto columns = parse_encoding(encoding);
  const int n = static_cast<int>(columns.size());
  DecodeResult result;
  if (n == 0) return result;

  sim::Simulator sim(algorithm, n);
  std::vector<std::size_t> next_cell(static_cast<std::size_t>(n), 0);
  std::vector<bool> waiting(static_cast<std::size_t>(n), false);
  std::vector<bool> done(static_cast<std::size_t>(n), false);
  std::map<Reg, RegisterState> regs;

  int done_count = 0;
  while (done_count < n) {
    ++result.iterations;
    bool progress = false;

    // Phase 1 (Fig. 3 lines 6-37): discover pending steps.
    for (Pid i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (done[idx] || waiting[idx]) continue;
      if (next_cell[idx] == columns[idx].size()) {
        if (!sim.process_done(i)) fail("cells exhausted but process not finished");
        done[idx] = true;
        ++done_count;
        progress = true;
        continue;
      }
      const std::string& cell = columns[idx][next_cell[idx]++];
      const Step pending = sim.peek(i);
      waiting[idx] = true;

      Signature sig;
      if (cell == "C") {
        if (pending.type != StepType::kCrit) fail("C cell but pending step is not critical");
        sim.step(i);
        waiting[idx] = false;
        progress = true;
      } else if (cell == "SR") {
        if (pending.type != StepType::kRead) fail("SR cell but pending step is not a read");
        sim.step(i);
        waiting[idx] = false;
        progress = true;
      } else if (cell == "PR") {
        if (pending.type != StepType::kRead) fail("PR cell but pending step is not a read");
        ++regs[pending.reg].prereads_done;
        sim.step(i);
        waiting[idx] = false;
        progress = true;
      } else if (cell == "R") {
        if (pending.type != StepType::kRead) fail("R cell but pending step is not a read");
        regs[pending.reg].readers.insert(i);
        progress = true;
      } else if (cell == "W") {
        if (pending.type != StepType::kWrite) fail("W cell but pending step is not a write");
        regs[pending.reg].writers.insert(i);
        progress = true;
      } else if (parse_signature_cell(cell, sig)) {
        if (pending.type != StepType::kWrite) {
          fail("signature cell but pending step is not a write");
        }
        auto& rs = regs[pending.reg];
        if (rs.has_signature) fail("two simultaneous signatures on one register");
        rs.writers.insert(i);
        rs.has_signature = true;
        rs.winner = i;
        rs.signature = sig;
        progress = true;
      } else {
        fail("unknown cell '" + cell + "'");
      }
    }

    // Phase 2 (Fig. 3 lines 38-45): execute write metasteps whose signature
    // is fully matched.
    for (auto& [reg, rs] : regs) {
      if (!rs.has_signature) continue;
      if (static_cast<int>(rs.writers.size()) != rs.signature.writers) continue;
      if (rs.prereads_done != rs.signature.prereads) continue;

      // Readers whose state would change on the winning value belong to this
      // metastep (Lemma 5.9); the rest are parked for a later metastep.
      const sim::Value value = sim.peek(rs.winner).value;
      std::vector<Pid> consumed_readers;
      for (Pid r : rs.readers) {
        if (sim::read_changes_state(sim.automaton(r), value)) consumed_readers.push_back(r);
      }
      if (static_cast<int>(consumed_readers.size()) != rs.signature.readers) continue;

      for (Pid w : rs.writers) {
        if (w != rs.winner) {
          sim.step(w);
          waiting[static_cast<std::size_t>(w)] = false;
        }
      }
      sim.step(rs.winner);
      waiting[static_cast<std::size_t>(rs.winner)] = false;
      for (Pid r : consumed_readers) {
        sim.step(r);
        waiting[static_cast<std::size_t>(r)] = false;
        rs.readers.erase(r);
      }
      rs.writers.clear();
      rs.prereads_done = 0;
      rs.has_signature = false;
      rs.winner = -1;
      progress = true;
    }

    if (!progress) fail("stalled: no executable metastep (inconsistent encoding?)");
  }

  result.execution = sim.execution();
  return result;
}

}  // namespace melb::lb
