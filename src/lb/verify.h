// Independent verification that a step sequence is a linearization of a
// construction's (M, ≼) — the structural half of Theorem 7.4.
//
// The decoder's output is already validated against the algorithm's
// transition function (every step matches δ); this checker validates it
// against the *metastep structure* instead, with no reference to the
// algorithm: the sequence must partition into contiguous blocks, each block
// a Seq-expansion of one metastep (writes, then the winning write, then
// reads), and the block order must be a linear extension of ≼.
#pragma once

#include <string>
#include <vector>

#include "lb/construct.h"

namespace melb::lb {

// Returns "" if `steps` is a linearization of construction's (M, ≼);
// otherwise a description of the first structural violation.
std::string verify_linearization(const Construction& construction,
                                 const std::vector<sim::Step>& steps);

}  // namespace melb::lb
