// Lin / Plin / Seq (paper Fig. 1): turning (M, ≼) into executions.
//
// A linearization totally orders the metasteps consistently with ≼ and
// expands each via Seq (writes, winning write, reads). Lin and Seq are
// nondeterministic in the paper; we expose a deterministic canonical policy
// (smallest-id-first Kahn + pid-ordered groups) and a seeded random policy so
// tests can confirm Lemma 6.1 (every linearization has the same SC cost) and
// Theorem 5.5 (every linearization enters critical sections in π order).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lb/metastep.h"
#include "lb/partial_order.h"
#include "sim/types.h"

namespace melb::lb {

struct LinearizePolicy {
  // If set, topological ties and within-group step orders are randomized
  // with this seed; otherwise the canonical deterministic order is used.
  std::optional<std::uint64_t> random_seed;
};

// Totally orders the metasteps whose ids are in `include` (all if empty)
// consistently with ≼. Returns metastep ids.
std::vector<MetastepId> topo_order(const std::vector<Metastep>& metasteps,
                                   const PartialOrder& order,
                                   const std::vector<MetastepId>& include,
                                   const LinearizePolicy& policy = {});

// Lin(M, ≼): expand a full topological order into a step sequence.
std::vector<sim::Step> linearize(const std::vector<Metastep>& metasteps,
                                 const PartialOrder& order,
                                 const LinearizePolicy& policy = {});

// Plin(M, ≼, m): linearization of {µ | µ ≼ m}.
std::vector<sim::Step> partial_linearize(const std::vector<Metastep>& metasteps,
                                         const PartialOrder& order, MetastepId m,
                                         const LinearizePolicy& policy = {});

}  // namespace melb::lb
