#include "lb/partial_order.h"

#include <stdexcept>

namespace melb::lb {

void PartialOrder::ensure_capacity(std::size_t bits) {
  if (bits <= capacity_) return;
  std::size_t next = capacity_ == 0 ? 256 : capacity_;
  while (next < bits) next *= 2;
  capacity_ = next;
  for (auto& b : preds_) b.resize(capacity_);
  for (auto& b : succs_) b.resize(capacity_);
}

int PartialOrder::add_node() {
  const int id = static_cast<int>(preds_.size());
  ensure_capacity(static_cast<std::size_t>(id) + 1);
  preds_.emplace_back(capacity_);
  succs_.emplace_back(capacity_);
  preds_.back().set(static_cast<std::size_t>(id));
  succs_.back().set(static_cast<std::size_t>(id));
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return id;
}

void PartialOrder::add_edge(int from, int to) {
  if (from == to) return;
  if (leq(to, from)) {
    throw std::logic_error("PartialOrder::add_edge would create a cycle");
  }
  if (leq(from, to)) return;  // already ordered; keep edge list minimal
  out_edges_[static_cast<std::size_t>(from)].push_back(to);
  in_edges_[static_cast<std::size_t>(to)].push_back(from);

  // Every node above `to` (including `to`) gains every predecessor of
  // `from`; every node below `from` (including `from`) gains every successor
  // of `to`.
  const auto& up = succs_[static_cast<std::size_t>(to)];
  const auto& down = preds_[static_cast<std::size_t>(from)];
  for (std::size_t x = 0; x < preds_.size(); ++x) {
    if (up.test(x)) preds_[x].or_with(down);
    if (down.test(x)) succs_[x].or_with(up);
  }
}

bool PartialOrder::leq(int a, int b) const {
  return preds_[static_cast<std::size_t>(b)].test(static_cast<std::size_t>(a));
}

std::vector<int> PartialOrder::ancestors_of(int m) const {
  std::vector<int> result;
  const auto& bits = preds_[static_cast<std::size_t>(m)];
  for (std::size_t i = 0; i < preds_.size(); ++i) {
    if (bits.test(i)) result.push_back(static_cast<int>(i));
  }
  return result;
}

}  // namespace melb::lb
