#include "lb/verify.h"

#include <algorithm>
#include <map>

namespace melb::lb {

std::string verify_linearization(const Construction& construction,
                                 const std::vector<sim::Step>& steps) {
  const auto& metasteps = construction.metasteps;
  const auto& order = construction.order;

  // Map each (pid, occurrence-index) to the metastep that owns that step;
  // process chains give each process's steps in order.
  std::vector<std::size_t> next_of_process(static_cast<std::size_t>(construction.n), 0);

  std::vector<bool> executed(metasteps.size(), false);
  // Remaining step counts per metastep, split by phase.
  struct Progress {
    int writes_left = 0;
    bool win_done = false;
    int reads_left = 0;
    bool needs_win = false;
    bool started = false;
  };
  std::vector<Progress> progress(metasteps.size());
  for (std::size_t id = 0; id < metasteps.size(); ++id) {
    progress[id].writes_left = static_cast<int>(metasteps[id].writes.size());
    progress[id].reads_left = static_cast<int>(metasteps[id].reads.size());
    progress[id].needs_win = metasteps[id].win.has_value();
  }

  MetastepId open = -1;  // metastep currently being expanded, -1 if none

  auto complete = [&](MetastepId id) {
    executed[static_cast<std::size_t>(id)] = true;
  };

  for (std::size_t i = 0; i < steps.size(); ++i) {
    const sim::Step& step = steps[i];
    const auto pid = static_cast<std::size_t>(step.pid);
    if (step.pid < 0 || step.pid >= construction.n) {
      return "step " + std::to_string(i) + ": pid out of range";
    }
    const auto& chain = construction.process_chain[pid];
    if (next_of_process[pid] >= chain.size()) {
      return "step " + std::to_string(i) + ": process has more steps than its chain";
    }
    const MetastepId id = chain[next_of_process[pid]];
    const Metastep& m = metasteps[static_cast<std::size_t>(id)];

    // The step must match the step recorded for this process in the metastep.
    if (!(m.step_of(step.pid) == step)) {
      return "step " + std::to_string(i) + " (" + to_string(step) +
             "): does not match the process's step in metastep m" + std::to_string(id);
    }

    // Block discipline: starting a new metastep requires the previous block
    // to be complete and all ≼-predecessors executed.
    auto& pr = progress[static_cast<std::size_t>(id)];
    if (!pr.started) {
      if (open != -1) {
        return "step " + std::to_string(i) + ": metastep m" + std::to_string(id) +
               " started while m" + std::to_string(open) + " is incomplete";
      }
      for (std::size_t pred = 0; pred < metasteps.size(); ++pred) {
        if (pred != static_cast<std::size_t>(id) &&
            order.leq(static_cast<int>(pred), id) && !executed[pred]) {
          return "step " + std::to_string(i) + ": metastep m" + std::to_string(id) +
                 " started before its predecessor m" + std::to_string(pred);
        }
      }
      pr.started = true;
      open = id;
    }

    // Phase discipline within the block: writes, then win, then reads.
    const bool is_win = m.win && m.win->pid == step.pid;
    if (step.type == sim::StepType::kWrite && !is_win) {
      if (pr.win_done) {
        return "step " + std::to_string(i) + ": non-winning write after the winning write";
      }
      --pr.writes_left;
    } else if (is_win) {
      if (pr.writes_left != 0) {
        return "step " + std::to_string(i) + ": winning write before all hidden writes";
      }
      pr.win_done = true;
    } else if (step.type == sim::StepType::kRead && m.type == MetastepType::kWrite) {
      if (pr.needs_win && !pr.win_done) {
        return "step " + std::to_string(i) + ": read before the winning write";
      }
      --pr.reads_left;
    } else {
      // Singleton read / critical metasteps have exactly one step.
      --pr.reads_left;
      pr.reads_left = std::max(pr.reads_left, 0);
    }

    ++next_of_process[pid];

    const bool block_done =
        pr.writes_left == 0 && (!pr.needs_win || pr.win_done) && pr.reads_left <= 0;
    if (block_done) {
      complete(id);
      open = -1;
    }
  }

  if (open != -1) return "sequence ended inside metastep m" + std::to_string(open);
  for (std::size_t id = 0; id < metasteps.size(); ++id) {
    if (!executed[id]) return "metastep m" + std::to_string(id) + " never executed";
  }
  for (int p = 0; p < construction.n; ++p) {
    if (next_of_process[static_cast<std::size_t>(p)] !=
        construction.process_chain[static_cast<std::size_t>(p)].size()) {
      return "process " + std::to_string(p) + " did not complete its chain";
    }
  }
  return {};
}

}  // namespace melb::lb
