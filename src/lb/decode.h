// The decoding step (paper §7, Fig. 3).
//
// Decode(E) rebuilds a linearization of (M, ≼) from the encoding string and
// the algorithm's transition function alone — it never sees (M, ≼) or π.
// It maintains one live automaton per process; a process's pending step is
// δ applied to the execution built so far. Cells are consumed one at a time
// per process:
//   C / SR  — singleton metasteps: execute immediately;
//   PR      — singleton read metastep that some write metastep lists as a
//             preread: execute immediately and count it toward the register's
//             preread quota;
//   R / W   — membership in a write metastep: park the process on its
//             register until the metastep's signature is satisfied;
//   W,PR..R..W.. — the winner's cell: publishes the signature.
// When a register's parked writers, state-change-tested readers, and preread
// count exactly match the published signature, the metastep is executed:
// non-winning writes, winning write, reads (matching Seq of Fig. 1).
//
// Documented deviations from the printed Fig. 3 (see DESIGN.md §4): we do
// not pre-seed α with try steps (try metasteps decode as ordinary C cells),
// and the reader-vs-signature test runs at signature-matching time rather
// than at discovery time (the printed order can miss readers discovered
// before the winner).
//
// Theorem 7.4: the result is a linearization of (M, ≼); with Theorem 5.5
// this makes E_π ↦ α_π injective, which is the counting heart of the bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/automaton.h"
#include "sim/execution.h"

namespace melb::lb {

struct DecodeResult {
  sim::Execution execution;        // validated, SC-annotated linearization
  std::uint64_t iterations = 0;    // outer decode-loop iterations
};

// Throws std::runtime_error if the string is not decodable against the
// algorithm (stall, cell/step type mismatch, malformed cells).
DecodeResult decode(const sim::Algorithm& algorithm, const std::string& encoding);

}  // namespace melb::lb
