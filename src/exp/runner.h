// The campaign runner: a work-stealing thread pool over sweep cells.
//
// Every cell is an independent experiment — run_cell is a pure function of
// (spec knobs, cell coordinates) and builds all of its mutable state
// (simulator, scheduler, cost models, lower-bound pipeline) locally, so cells
// can execute on any worker in any order. The pool distributes cells
// round-robin across per-worker deques; an idle worker first drains its own
// deque from the back, then steals from the front of the others, which keeps
// all cores busy even when cell costs are wildly skewed (n=2 round-robin vs
// n=8 lower-bound pipeline). Results land in a pre-sized vector slot keyed by
// cell index, so the assembled report is identical for every worker count —
// the byte-identical-report property CI's determinism gate enforces.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>

#include "exp/pool.h"
#include "exp/report.h"

namespace melb::exp {

// One-shot convenience over exp::TaskPool (exp/pool.h), kept for callers that
// fan out once and do not amortize pool construction: execute tasks
// 0..count-1 across `workers` threads with per-worker deques and work
// stealing. `task(index, worker)` may run on any worker in any order, so it
// must write only to index-owned (or worker-owned) slots; `worker` is in
// [0, workers) for scratch-buffer addressing. workers <= 1 (or count <= 1)
// runs inline on the calling thread with worker == 0. Blocks until every
// task has run — the pool barrier gives the caller a happens-before edge
// over all task effects. If `cancel` becomes true, tasks not yet started are
// skipped.
//
// Repeated dispatchers (the model checker's per-BFS-level expansion, subset
// sweeps) should construct a TaskPool once and call run() on it instead:
// this wrapper spawns and joins fresh threads every call.
void run_indexed_tasks(std::size_t count, int workers,
                       const std::function<void(std::size_t index, int worker)>& task,
                       std::atomic<bool>* cancel = nullptr);

struct RunOptions {
  // 0 → std::thread::hardware_concurrency(); always clamped to [1, #cells].
  int workers = 0;
  // Checked before each cell starts; set to true (from any thread, including
  // an on_cell callback) to cancel the remainder of the sweep. Cells already
  // running finish; unstarted cells report status "cancelled".
  std::atomic<bool>* cancel = nullptr;
  // Invoked after each cell completes, serialized under an internal mutex.
  std::function<void(const CellResult&)> on_cell;
  // Transient-error retry budget per cell (run_cell_with_retry). Retries use
  // bounded exponential backoff and are counted in CellResult::retries.
  int max_retries = 3;
};

// Run one cell in isolation (exposed for tests and debugging; the pool calls
// exactly this). Never throws: failures are captured in CellResult::status.
// The keyed fault point ("cell.run", cell.index) can inject a transient
// failure or a crash for the crash-safety harness.
CellResult run_cell(const CampaignSpec& spec, const Cell& cell);

// True for statuses the retry loop treats as transient (and the campaign
// service refuses to journal — a resume must retry them, not cache them).
bool is_transient_error(const std::string& status);

// run_cell, retried up to max_retries times while the status is transient,
// sleeping min(2^attempt, 32) ms between attempts. The returned result is
// the last attempt's, with CellResult::retries = attempts - 1. Keying the
// injected faults by cell index (not hit order) keeps the retry counts — and
// therefore the report bytes — identical across worker counts.
CellResult run_cell_with_retry(const CampaignSpec& spec, const Cell& cell, int max_retries);

// Expand the spec and run every cell on the pool. Throws only for spec
// errors (propagated from expand()).
CampaignReport run_campaign(const CampaignSpec& spec, const RunOptions& options = {});

}  // namespace melb::exp
