#include "exp/campaign.h"

#include <algorithm>
#include <stdexcept>

#include "algo/registry.h"
#include "sim/scheduler.h"
#include "util/hash.h"
#include "util/prng.h"

namespace melb::exp {

std::uint64_t stable_string_hash(const std::string& text) {
  util::Hasher hasher;
  for (const char c : text) hasher.add(static_cast<unsigned char>(c));
  hasher.add(text.size());
  return hasher.digest();
}

std::vector<Cell> expand(const CampaignSpec& spec) {
  if (spec.algorithms.empty() || spec.schedulers.empty() || spec.sizes.empty()) {
    throw std::invalid_argument("campaign has an empty dimension");
  }
  for (const auto& sched : spec.schedulers) {
    // Try-construct instead of matching scheduler_names(): parameterized
    // schedulers ("rr-quantum:5", "priority:1+3+2") are valid sweep
    // dimension values without being enrolled in the canonical list.
    // Throws std::invalid_argument on unknown names or bad parameters.
    (void)sim::make_scheduler(sched, 2, 0);
  }
  for (const auto& name : spec.algorithms) {
    (void)algo::algorithm_by_name(name);  // throws std::out_of_range if unknown
  }
  for (const int n : spec.sizes) {
    if (n < 1) throw std::invalid_argument("campaign size n must be >= 1");
  }

  std::vector<Cell> cells;
  cells.reserve(spec.algorithms.size() * spec.schedulers.size() * spec.sizes.size());
  for (const auto& algorithm : spec.algorithms) {
    for (const auto& scheduler : spec.schedulers) {
      for (const int n : spec.sizes) {
        Cell cell;
        cell.index = cells.size();
        cell.algorithm = algorithm;
        cell.scheduler = scheduler;
        cell.n = n;
        cell.seed = util::derive_seed(spec.seed, stable_string_hash(algorithm),
                                      stable_string_hash(scheduler),
                                      static_cast<std::uint64_t>(n));
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    std::string token =
        text.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (token.empty()) throw std::invalid_argument("empty token in list: " + text);
    tokens.push_back(std::move(token));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return tokens;
}

std::vector<std::string> resolve_algorithms(const std::string& selector) {
  std::vector<std::string> names;
  if (selector == "all") {
    for (const auto& info : algo::all_algorithms()) names.push_back(info.algorithm->name());
    return names;
  }
  if (selector == "correct") {
    for (const auto& info : algo::correct_algorithms())
      names.push_back(info.algorithm->name());
    return names;
  }
  if (selector == "registers") {
    for (const auto& info : algo::register_algorithms())
      names.push_back(info.algorithm->name());
    return names;
  }
  names = split_list(selector);
  for (const auto& name : names) {
    (void)algo::algorithm_by_name(name);  // throws std::out_of_range if unknown
  }
  return names;
}

namespace {

int parse_int(const std::string& text) {
  std::size_t used = 0;
  const int value = std::stoi(text, &used);
  if (used != text.size()) throw std::invalid_argument("bad size token: " + text);
  return value;
}

}  // namespace

std::vector<int> parse_sizes(const std::string& text) {
  std::vector<int> sizes;
  for (const auto& token : split_list(text)) {
    const std::size_t dots = token.find("..");
    if (dots == std::string::npos) {
      sizes.push_back(parse_int(token));
    } else {
      const int lo = parse_int(token.substr(0, dots));
      const int hi = parse_int(token.substr(dots + 2));
      if (lo > hi) throw std::invalid_argument("bad size range: " + token);
      for (int n = lo; n <= hi; ++n) sizes.push_back(n);
    }
  }
  return sizes;
}

}  // namespace melb::exp
