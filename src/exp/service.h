// The campaign service: crash-safe, resumable, shardable sweeps.
//
// run_campaign_service is run_campaign with a durability plane bolted on:
// cells already durable in the state directory's journal are served from it
// (zero recompute), the rest run on the work-stealing pool and are appended
// to the journal in committed batches. Because a cached cell's record stores
// exactly the fields the report serializes — and the report is a pure
// function of (spec, results) — a resumed, sharded, or fully-cached run
// produces bytes identical to a from-scratch run at any worker count.
//
// Sharding: shard i of k owns the cells with index ≡ i-1 (mod k)
// (exp/journal.h shard_owns). Each shard produces an independent journal;
// merge_shards joins k of them back into the full report.
//
// Transient failures: cells whose status marks a transient error (injected
// via the cell.run fault point, or any future genuinely-transient failure
// mode) are retried with bounded exponential backoff (RunOptions::
// max_retries) and — if still failing — reported but never journaled, so a
// later resume retries them instead of caching the failure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "exp/journal.h"
#include "exp/runner.h"

namespace melb::exp {

struct ServiceOptions {
  RunOptions run;
  int shard_index = 1;  // 1-based, in [1, shard_count]
  int shard_count = 1;
  // Cells per journal commit. Small batches bound the recompute window after
  // a crash; large batches amortize the fsync+rename. 1 = commit every cell.
  std::size_t journal_batch = 32;
};

struct ServiceReport {
  // This shard's cells only (all of them when unsharded), in expansion
  // order, each carrying its global cell index.
  CampaignReport report;
  std::size_t cached = 0;     // cells served from the journal
  std::size_t executed = 0;   // cells actually run by this invocation
  std::uint64_t retries = 0;  // total transient-error retries this invocation
  JournalStats journal;       // recovery statistics from opening the journal
};

// Runs (or resumes) one shard of the campaign. An empty state_dir runs
// without a journal — pure compute, still shard-filtered — which is what
// the determinism check compares a journal-backed run against. Throws
// std::invalid_argument/std::out_of_range for spec errors (expand's
// contract) and std::runtime_error when the state directory is unusable or
// a journal commit fails (the report would not be resumable — fail loudly).
ServiceReport run_campaign_service(const CampaignSpec& spec, const std::string& state_dir,
                                   const ServiceOptions& options = {});

}  // namespace melb::exp
