#include "exp/runner.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "algo/registry.h"
#include "cost/cost_model.h"
#include "lb/construct.h"
#include "lb/decode.h"
#include "lb/encode.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "util/faultpoint.h"
#include "util/prng.h"

namespace melb::exp {

namespace {

// Stream tag separating the lower-bound permutation from the scheduler's
// random stream within one cell seed.
constexpr std::uint64_t kPiStream = 0x70690000ULL;  // "pi"

// Did decode rebuild the construction's canonical linearization? Same
// per-process-view criterion as the conformance matrix: identical
// projections (steps and read values), identical SC cost, entries in π order.
bool roundtrip_matches(const sim::Execution& decoded, const sim::Execution& canonical,
                       const util::Permutation& pi, int n) {
  if (decoded.sc_cost() != canonical.sc_cost()) return false;
  if (sim::enter_order(decoded) != pi.order()) return false;
  for (sim::Pid p = 0; p < n; ++p) {
    const auto ours = decoded.projection(p);
    const auto theirs = canonical.projection(p);
    if (ours.size() != theirs.size()) return false;
    for (std::size_t k = 0; k < ours.size(); ++k) {
      if (!(ours[k].step == theirs[k].step)) return false;
      if (ours[k].read_value != theirs[k].read_value) return false;
    }
  }
  return true;
}

void run_lb_pipeline(const sim::Algorithm& algorithm, const Cell& cell, LbStats& lb) {
  lb.attempted = true;
  try {
    util::Xoshiro256StarStar rng(util::derive_seed(cell.seed, kPiStream));
    const auto pi = util::Permutation::random(cell.n, rng);
    const auto construction = lb::construct(algorithm, cell.n, pi);
    lb.metasteps = construction.metasteps.size();
    lb.insertions = construction.insertions;
    const auto steps = construction.canonical_linearization();
    const auto canonical = sim::validate_steps(algorithm, cell.n, steps);
    const auto encoding = lb::encode(construction);
    lb.encoding_bytes = encoding.text.size();
    lb.binary_bits = encoding.binary_bits;
    const auto decoded = lb::decode(algorithm, encoding.text);
    lb.decode_iterations = decoded.iterations;
    lb.roundtrip_ok = roundtrip_matches(decoded.execution, canonical, pi, cell.n);
    if (!lb.roundtrip_ok) lb.error = "decoded execution does not match construction";
  } catch (const std::exception& e) {
    lb.error = e.what();
  }
}

}  // namespace

CellResult run_cell(const CampaignSpec& spec, const Cell& cell) {
  CellResult result;
  result.cell = cell;
  const auto start = std::chrono::steady_clock::now();
  // Keyed by cell index so an injected fault follows the cell, not the
  // scheduling: cell 5 flakes (or crashes) no matter which worker draws it.
  const util::FaultAction injected = util::fault_key("cell.run", cell.index);
  if (injected == util::FaultAction::kCrash) util::fault_crash("cell.run");
  if (injected != util::FaultAction::kNone) {
    result.status = "error: transient injected fault";
    return result;
  }
  try {
    const auto& info = algo::algorithm_by_name(cell.algorithm);
    const auto& algorithm = *info.algorithm;
    const int n = cell.n;
    const auto scheduler = sim::make_scheduler(cell.scheduler, n, cell.seed);
    const auto run = sim::run_canonical(algorithm, n, *scheduler, spec.mode, spec.max_steps);

    result.completed = run.completed;
    result.livelocked = run.livelocked;
    result.steps = run.steps;
    result.exec_size = run.exec.size();
    result.sc_cost = run.sc_cost;
    result.total_accesses = run.exec.total_accesses();

    const auto stats = trace::compute_stats(run.exec, n, algorithm.num_registers(n));
    result.reads = stats.reads;
    result.writes = stats.writes;
    result.rmws = stats.rmws;
    result.crits = stats.crits;
    result.free_reads = stats.free_reads;

    result.well_formed = sim::check_well_formed(run.exec, n);
    result.mutex = sim::check_mutual_exclusion(run.exec, n);

    const auto sc = cost::make_cost_model("state-change", algorithm, n);
    const auto cc = cost::make_cost_model("cache-coherent", algorithm, n);
    const auto dsm = cost::make_cost_model("dsm", algorithm, n);
    result.cc_cost = cc->total_cost(run.exec, n);
    result.dsm_cost = dsm->total_cost(run.exec, n);
    result.sc_max_process = sc->max_process_cost(run.exec, n);
    result.cc_max_process = cc->max_process_cost(run.exec, n);

    if (run.completed) {
      result.all_in_remainder = true;
      for (const auto section : run.exec.sections(n)) {
        if (section != sim::Section::kRemainder) result.all_in_remainder = false;
      }
    }

    if (spec.lb_pipeline && info.livelock_free && info.mutex_correct && !info.uses_rmw) {
      run_lb_pipeline(algorithm, cell, result.lb);
    }

    // A cell is "ok" when it satisfied everything the registry promises for
    // its algorithm: termination (livelock-free ⇒ completed; otherwise a
    // diagnosed livelock also counts), well-formedness, mutual exclusion
    // where claimed, and a clean lower-bound round trip where attempted.
    const bool terminated =
        info.livelock_free ? run.completed : (run.completed || run.livelocked);
    const bool mutex_ok = result.mutex.empty() || !info.mutex_correct;
    const bool lb_ok = !result.lb.attempted || result.lb.roundtrip_ok;
    const bool remainder_ok = !run.completed || result.all_in_remainder;
    result.status = (terminated && result.well_formed.empty() && mutex_ok && lb_ok &&
                     remainder_ok)
                        ? "ok"
                        : "violation";
  } catch (const std::exception& e) {
    result.status = std::string("error: ") + e.what();
  }
  result.wall_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            start)
          .count());
  return result;
}

bool is_transient_error(const std::string& status) {
  return status.rfind("error: transient", 0) == 0;
}

CellResult run_cell_with_retry(const CampaignSpec& spec, const Cell& cell, int max_retries) {
  CellResult result = run_cell(spec, cell);
  for (int attempt = 1; attempt <= max_retries && is_transient_error(result.status);
       ++attempt) {
    // Bounded backoff. The sleep never reaches the report (wall_micros is
    // excluded from serialization), so retried reports stay byte-identical.
    const int backoff_ms = attempt < 6 ? (1 << (attempt - 1)) : 32;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    result = run_cell(spec, cell);
    result.retries = static_cast<std::uint64_t>(attempt);
  }
  return result;
}

void run_indexed_tasks(std::size_t count, int workers,
                       const std::function<void(std::size_t index, int worker)>& task,
                       std::atomic<bool>* cancel) {
  if (count == 0) return;
  if (workers < 1) workers = 1;
  if (static_cast<std::size_t>(workers) > count) workers = static_cast<int>(count);
  TaskPool pool(workers);
  pool.run(count, task, cancel);
}

CampaignReport run_campaign(const CampaignSpec& spec, const RunOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<Cell> cells = expand(spec);

  CampaignReport report;
  report.spec = spec;
  report.cells.resize(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) report.cells[i].cell = cells[i];

  int workers = options.workers;
  if (workers <= 0) workers = static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  if (static_cast<std::size_t>(workers) > cells.size() && !cells.empty()) {
    workers = static_cast<int>(cells.size());
  }
  report.workers_used = workers;

  TaskPool pool(workers);
  std::mutex on_cell_mutex;
  pool.run(
      cells.size(),
      [&](std::size_t idx, int) {
        report.cells[idx] = run_cell_with_retry(spec, cells[idx], options.max_retries);
        if (options.on_cell) {
          const std::lock_guard<std::mutex> lock(on_cell_mutex);
          options.on_cell(report.cells[idx]);
        }
      },
      options.cancel);

  for (const auto& cell : report.cells) {
    if (cell.status == "cancelled") report.cancelled = true;
  }
  report.wall_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            start)
          .count());
  return report;
}

}  // namespace melb::exp
