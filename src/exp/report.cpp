#include "exp/report.h"

#include <cstdio>
#include <sstream>

namespace melb::exp {

namespace {

// Minimal JSON string escape: the report only carries registry names, status
// strings, and validator messages, but validator messages may quote steps.
std::string escaped(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_string_array(std::ostringstream& out, const std::vector<std::string>& values) {
  out << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    out << (i ? "," : "") << '"' << escaped(values[i]) << '"';
  }
  out << ']';
}

const char* mode_name(sim::RunMode mode) {
  return mode == sim::RunMode::kFaithful ? "faithful" : "productive";
}

}  // namespace

std::string to_json(const CampaignReport& report) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"melb-sweep-report-v2\",\n  \"spec\": {\n";
  out << "    \"seed\": " << report.spec.seed << ",\n";
  out << "    \"mode\": \"" << mode_name(report.spec.mode) << "\",\n";
  out << "    \"max_steps\": " << report.spec.max_steps << ",\n";
  out << "    \"lb_pipeline\": " << (report.spec.lb_pipeline ? "true" : "false") << ",\n";
  out << "    \"algorithms\": ";
  append_string_array(out, report.spec.algorithms);
  out << ",\n    \"schedulers\": ";
  append_string_array(out, report.spec.schedulers);
  out << ",\n    \"sizes\": [";
  for (std::size_t i = 0; i < report.spec.sizes.size(); ++i) {
    out << (i ? "," : "") << report.spec.sizes[i];
  }
  out << "]\n  },\n";
  out << "  \"cancelled\": " << (report.cancelled ? "true" : "false") << ",\n";
  out << "  \"cells\": [";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const CellResult& r = report.cells[i];
    out << (i ? ",\n    " : "\n    ");
    out << "{\"index\": " << r.cell.index << ", \"algorithm\": \""
        << escaped(r.cell.algorithm) << "\", \"scheduler\": \"" << escaped(r.cell.scheduler)
        << "\", \"n\": " << r.cell.n << ", \"seed\": " << r.cell.seed
        << ", \"status\": \"" << escaped(r.status) << "\""
        << ", \"completed\": " << (r.completed ? "true" : "false")
        << ", \"livelocked\": " << (r.livelocked ? "true" : "false")
        << ", \"steps\": " << r.steps << ", \"exec_size\": " << r.exec_size
        << ", \"sc_cost\": " << r.sc_cost << ", \"total_accesses\": " << r.total_accesses
        << ", \"reads\": " << r.reads << ", \"writes\": " << r.writes
        << ", \"rmws\": " << r.rmws << ", \"crits\": " << r.crits
        << ", \"free_reads\": " << r.free_reads << ", \"cc_cost\": " << r.cc_cost
        << ", \"dsm_cost\": " << r.dsm_cost << ", \"sc_max_process\": " << r.sc_max_process
        << ", \"cc_max_process\": " << r.cc_max_process << ", \"well_formed\": \""
        << escaped(r.well_formed) << "\", \"mutex\": \"" << escaped(r.mutex) << "\""
        << ", \"all_in_remainder\": " << (r.all_in_remainder ? "true" : "false")
        << ", \"retries\": " << r.retries;
    if (r.lb.attempted) {
      out << ", \"lb\": {\"roundtrip_ok\": " << (r.lb.roundtrip_ok ? "true" : "false")
          << ", \"metasteps\": " << r.lb.metasteps << ", \"insertions\": " << r.lb.insertions
          << ", \"encoding_bytes\": " << r.lb.encoding_bytes
          << ", \"binary_bits\": " << r.lb.binary_bits
          << ", \"decode_iterations\": " << r.lb.decode_iterations << ", \"error\": \""
          << escaped(r.lb.error) << "\"}";
    }
    out << '}';
  }
  out << (report.cells.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return out.str();
}

namespace {

// RFC 4180 quoting for the free-text columns. Plain names (every enrolled
// scheduler uses '+' as its parameter separator, never ',') pass through
// byte-identical; a comma, quote, or newline triggers quoting so e.g. an
// API-built sweep over "rr-weighted:1,2" still yields parseable CSV.
std::string csv_field(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string quoted = "\"";
  for (const char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::string to_csv(const CampaignReport& report) {
  std::ostringstream out;
  out << "index,algorithm,scheduler,n,seed,status,completed,livelocked,steps,exec_size,"
         "sc_cost,total_accesses,reads,writes,rmws,crits,free_reads,cc_cost,dsm_cost,"
         "sc_max_process,cc_max_process,well_formed_ok,mutex_ok,all_in_remainder,retries,"
         "lb_attempted,lb_roundtrip_ok,lb_metasteps,lb_insertions,lb_encoding_bytes,"
         "lb_binary_bits,lb_decode_iterations\n";
  for (const CellResult& r : report.cells) {
    out << r.cell.index << ',' << csv_field(r.cell.algorithm) << ','
        << csv_field(r.cell.scheduler) << ','
        << r.cell.n << ',' << r.cell.seed << ',' << r.status.substr(0, r.status.find(':'))
        << ',' << (r.completed ? 1 : 0) << ',' << (r.livelocked ? 1 : 0) << ',' << r.steps
        << ',' << r.exec_size << ',' << r.sc_cost << ',' << r.total_accesses << ','
        << r.reads << ',' << r.writes << ',' << r.rmws << ',' << r.crits << ','
        << r.free_reads << ',' << r.cc_cost << ',' << r.dsm_cost << ',' << r.sc_max_process
        << ',' << r.cc_max_process << ',' << (r.well_formed.empty() ? 1 : 0) << ','
        << (r.mutex.empty() ? 1 : 0) << ',' << (r.all_in_remainder ? 1 : 0) << ','
        << r.retries << ',' << (r.lb.attempted ? 1 : 0) << ',' << (r.lb.roundtrip_ok ? 1 : 0) << ','
        << r.lb.metasteps << ',' << r.lb.insertions << ',' << r.lb.encoding_bytes << ','
        << r.lb.binary_bits << ',' << r.lb.decode_iterations << '\n';
  }
  return out.str();
}

std::string report_hash(const CampaignReport& report) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(stable_string_hash(to_json(report))));
  return buf;
}

}  // namespace melb::exp
