#include "exp/service.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "exp/pool.h"

namespace melb::exp {

ServiceReport run_campaign_service(const CampaignSpec& spec, const std::string& state_dir,
                                   const ServiceOptions& options) {
  if (options.shard_count < 1 || options.shard_index < 1 ||
      options.shard_index > options.shard_count) {
    throw std::runtime_error("shard index must be in [1, shard count], got " +
                             std::to_string(options.shard_index) + "/" +
                             std::to_string(options.shard_count));
  }
  const auto start = std::chrono::steady_clock::now();
  const std::vector<Cell> all_cells = expand(spec);
  std::vector<Cell> cells;
  cells.reserve(all_cells.size() / static_cast<std::size_t>(options.shard_count) + 1);
  for (const Cell& cell : all_cells) {
    if (shard_owns(cell.index, options.shard_index, options.shard_count)) {
      cells.push_back(cell);
    }
  }

  ServiceReport out;
  out.report.spec = spec;
  out.report.cells.resize(cells.size());

  std::unique_ptr<Journal> journal;
  if (!state_dir.empty()) {
    journal = std::make_unique<Journal>(state_dir, spec, options.shard_index,
                                        options.shard_count);
    out.journal = journal->stats();
  }

  // Resolve what the journal already knows; everything else runs.
  std::vector<std::size_t> todo;  // positions in `cells`
  for (std::size_t pos = 0; pos < cells.size(); ++pos) {
    if (journal != nullptr && journal->lookup(cells[pos], &out.report.cells[pos])) {
      ++out.cached;
    } else {
      out.report.cells[pos].cell = cells[pos];
      todo.push_back(pos);
    }
  }

  int workers = options.run.workers;
  if (workers <= 0) workers = static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  if (static_cast<std::size_t>(workers) > todo.size() && !todo.empty()) {
    workers = static_cast<int>(todo.size());
  }
  out.report.workers_used = workers;

  if (!todo.empty()) {
    const std::size_t batch = options.journal_batch < 1 ? 1 : options.journal_batch;
    std::mutex mu;  // serializes journal access, counters, and on_cell
    std::string journal_error;
    std::atomic<bool> own_cancel{false};
    std::atomic<bool>* cancel =
        options.run.cancel != nullptr ? options.run.cancel : &own_cancel;
    TaskPool pool(workers);
    pool.run(
        todo.size(),
        [&](std::size_t i, int) {
          const std::size_t pos = todo[i];
          const CellResult result =
              run_cell_with_retry(spec, cells[pos], options.run.max_retries);
          out.report.cells[pos] = result;
          const std::lock_guard<std::mutex> lock(mu);
          ++out.executed;
          out.retries += result.retries;
          if (journal != nullptr && result.status != "cancelled" &&
              !is_transient_error(result.status)) {
            try {
              journal->append(result);
              if (journal->pending() >= batch) journal->commit();
            } catch (const std::exception& e) {
              // The journal is unusable (e.g. the disk filled up). Stop
              // starting new cells; the service fails loudly below rather
              // than returning a report that silently is not resumable.
              if (journal_error.empty()) journal_error = e.what();
              cancel->store(true);
            }
          }
          if (options.run.on_cell) options.run.on_cell(result);
        },
        cancel);
    if (journal != nullptr && journal_error.empty()) {
      try {
        journal->commit();
      } catch (const std::exception& e) {
        journal_error = e.what();
      }
    }
    if (!journal_error.empty()) throw std::runtime_error(journal_error);
  }

  for (const CellResult& cell : out.report.cells) {
    if (cell.status == "cancelled") out.report.cancelled = true;
  }
  out.report.wall_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            start)
          .count());
  return out;
}

}  // namespace melb::exp
