// Deterministic campaign reports: per-cell measurements serialized to JSON
// and CSV with stable field order and integer-only values.
//
// Reports are the sweep engine's contract with CI: the serialized form is a
// pure function of (spec, cell results), cells appear in expansion order, and
// wall-clock timing / worker-count fields are deliberately excluded — so a
// 1-worker run and an N-worker run of the same campaign produce byte-identical
// bytes, which is how the determinism gate catches scheduling-dependent state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/campaign.h"

namespace melb::exp {

// Lower-bound pipeline measurements for one cell (register algorithms only).
struct LbStats {
  bool attempted = false;
  bool roundtrip_ok = false;      // decode rebuilt the canonical linearization
  std::uint64_t metasteps = 0;
  std::uint64_t insertions = 0;   // steps hidden inside existing metasteps
  std::uint64_t encoding_bytes = 0;
  std::uint64_t binary_bits = 0;
  std::uint64_t decode_iterations = 0;
  std::string error;              // construct/encode/decode failure, if any
};

struct CellResult {
  Cell cell;
  // "ok"         — ran and satisfied every property the registry promises;
  // "violation"  — ran but broke a promised property (or failed to terminate);
  // "error: ..." — threw before producing a run;
  // "cancelled"  — never started (campaign cancelled mid-sweep).
  std::string status = "cancelled";
  bool completed = false;
  bool livelocked = false;
  std::uint64_t steps = 0;          // steps executed (incl. free reads)
  std::uint64_t exec_size = 0;      // recorded execution length
  std::uint64_t sc_cost = 0;        // Def. 3.1 state-change cost
  std::uint64_t total_accesses = 0;
  std::uint64_t reads = 0, writes = 0, rmws = 0, crits = 0, free_reads = 0;
  // RMR-model accounting of the same execution (the remote-memory-reference
  // counts the related-work models charge): cache-coherent and DSM totals.
  std::uint64_t cc_cost = 0;
  std::uint64_t dsm_cost = 0;
  std::uint64_t sc_max_process = 0;  // Anderson–Kim non-amortized measure
  std::uint64_t cc_max_process = 0;
  std::string well_formed;  // validator message, empty = ok
  std::string mutex;        // validator message, empty = ok
  bool all_in_remainder = false;  // every process finished its cycle
  // Transient-error retries this cell needed (see RunOptions::max_retries).
  // Deterministic: injected transient faults are keyed by cell index, so the
  // count is a function of the cell, not of worker scheduling.
  std::uint64_t retries = 0;
  LbStats lb;
  // Timing: excluded from to_json/to_csv (see file comment).
  std::uint64_t wall_micros = 0;
};

struct CampaignReport {
  CampaignSpec spec;
  std::vector<CellResult> cells;  // expansion order
  bool cancelled = false;         // some cells carry status "cancelled"
  // Excluded from serialization:
  int workers_used = 1;
  std::uint64_t wall_micros = 0;
};

std::string to_json(const CampaignReport& report);
std::string to_csv(const CampaignReport& report);

// 16-hex-digit digest of to_json(report); the determinism checks compare this.
std::string report_hash(const CampaignReport& report);

}  // namespace melb::exp
