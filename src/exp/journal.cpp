#include "exp/journal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/faultpoint.h"
#include "util/fileio.h"
#include "util/hash.h"

namespace melb::exp {

namespace {

namespace fs = std::filesystem;

constexpr char kMetaSchema[] = "melb-campaign-meta-v1";
constexpr char kMetaName[] = "campaign.meta";
constexpr char kSegmentPrefix[] = "seg-";
constexpr char kSegmentSuffix[] = ".melbj";
// Frame header: magic, body length, content-address key, body checksum.
constexpr std::uint32_t kRecordMagic = 0x6a6c626d;  // "mblj", little-endian
constexpr std::size_t kFrameBytes = 4 + 4 + 8 + 8;

std::uint64_t hash_bytes(const char* data, std::size_t size) {
  // Same construction as exp::stable_string_hash, over a raw range.
  util::Hasher hasher;
  for (std::size_t i = 0; i < size; ++i) {
    hasher.add(static_cast<unsigned char>(data[i]));
  }
  hasher.add(size);
  return hasher.digest();
}

// --- little-endian binary record body ------------------------------------

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u8(std::string& out, bool v) { out.push_back(v ? '\1' : '\0'); }

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

struct Reader {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;
  bool ok = true;

  std::uint64_t u64() {
    if (pos + 8 > size) return fail();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos + i])) << (8 * i);
    }
    pos += 8;
    return v;
  }

  std::uint32_t u32() {
    if (pos + 4 > size) return static_cast<std::uint32_t>(fail());
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos + i])) << (8 * i);
    }
    pos += 4;
    return v;
  }

  bool u8() {
    if (pos + 1 > size) return fail() != 0;
    return data[pos++] != '\0';
  }

  std::string str() {
    const std::uint32_t len = u32();
    if (!ok || pos + len > size) {
      fail();
      return {};
    }
    std::string s(data + pos, len);
    pos += len;
    return s;
  }

  std::uint64_t fail() {
    ok = false;
    pos = size;
    return 0;
  }
};

// Every field to_json/to_csv serializes, in a fixed order. wall_micros is
// excluded on purpose: it is excluded from reports too, and a cached cell
// must reproduce the report bytes, not the weather of the original run.
std::string serialize_cell(const CellResult& r) {
  std::string body;
  body.reserve(160 + r.status.size());
  put_u64(body, r.cell.index);
  put_str(body, r.cell.algorithm);
  put_str(body, r.cell.scheduler);
  put_u64(body, static_cast<std::uint64_t>(r.cell.n));
  put_u64(body, r.cell.seed);
  put_str(body, r.status);
  put_u8(body, r.completed);
  put_u8(body, r.livelocked);
  put_u64(body, r.steps);
  put_u64(body, r.exec_size);
  put_u64(body, r.sc_cost);
  put_u64(body, r.total_accesses);
  put_u64(body, r.reads);
  put_u64(body, r.writes);
  put_u64(body, r.rmws);
  put_u64(body, r.crits);
  put_u64(body, r.free_reads);
  put_u64(body, r.cc_cost);
  put_u64(body, r.dsm_cost);
  put_u64(body, r.sc_max_process);
  put_u64(body, r.cc_max_process);
  put_str(body, r.well_formed);
  put_str(body, r.mutex);
  put_u8(body, r.all_in_remainder);
  put_u64(body, r.retries);
  put_u8(body, r.lb.attempted);
  put_u8(body, r.lb.roundtrip_ok);
  put_u64(body, r.lb.metasteps);
  put_u64(body, r.lb.insertions);
  put_u64(body, r.lb.encoding_bytes);
  put_u64(body, r.lb.binary_bits);
  put_u64(body, r.lb.decode_iterations);
  put_str(body, r.lb.error);
  return body;
}

bool deserialize_cell(const char* data, std::size_t size, CellResult* out) {
  Reader in{data, size};
  CellResult r;
  r.cell.index = in.u64();
  r.cell.algorithm = in.str();
  r.cell.scheduler = in.str();
  r.cell.n = static_cast<int>(in.u64());
  r.cell.seed = in.u64();
  r.status = in.str();
  r.completed = in.u8();
  r.livelocked = in.u8();
  r.steps = in.u64();
  r.exec_size = in.u64();
  r.sc_cost = in.u64();
  r.total_accesses = in.u64();
  r.reads = in.u64();
  r.writes = in.u64();
  r.rmws = in.u64();
  r.crits = in.u64();
  r.free_reads = in.u64();
  r.cc_cost = in.u64();
  r.dsm_cost = in.u64();
  r.sc_max_process = in.u64();
  r.cc_max_process = in.u64();
  r.well_formed = in.str();
  r.mutex = in.str();
  r.all_in_remainder = in.u8();
  r.retries = in.u64();
  r.lb.attempted = in.u8();
  r.lb.roundtrip_ok = in.u8();
  r.lb.metasteps = in.u64();
  r.lb.insertions = in.u64();
  r.lb.encoding_bytes = in.u64();
  r.lb.binary_bits = in.u64();
  r.lb.decode_iterations = in.u64();
  r.lb.error = in.str();
  if (!in.ok || in.pos != size) return false;
  *out = std::move(r);
  return true;
}

// --- campaign.meta --------------------------------------------------------

const char* mode_name(sim::RunMode mode) {
  return mode == sim::RunMode::kFaithful ? "faithful" : "productive";
}

std::string join_list(const std::vector<std::string>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    out += values[i];
  }
  return out;
}

std::string meta_text(const CampaignSpec& spec, std::uint64_t fingerprint, int shard_index,
                      int shard_count) {
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016llx", static_cast<unsigned long long>(fingerprint));
  std::ostringstream out;
  out << "schema=" << kMetaSchema << '\n';
  out << "version=" << kJournalCodeVersion << '\n';
  out << "fingerprint=" << fp << '\n';
  out << "shard=" << shard_index << '/' << shard_count << '\n';
  out << "seed=" << spec.seed << '\n';
  out << "mode=" << mode_name(spec.mode) << '\n';
  out << "max_steps=" << spec.max_steps << '\n';
  out << "lb_pipeline=" << (spec.lb_pipeline ? 1 : 0) << '\n';
  out << "algorithms=" << join_list(spec.algorithms) << '\n';
  out << "schedulers=" << join_list(spec.schedulers) << '\n';
  out << "sizes=";
  for (std::size_t i = 0; i < spec.sizes.size(); ++i) {
    out << (i ? "," : "") << spec.sizes[i];
  }
  out << '\n';
  return out.str();
}

struct Meta {
  CampaignSpec spec;
  std::string version;
  std::uint64_t fingerprint = 0;
  int shard_index = 1;
  int shard_count = 1;
};

std::uint64_t parse_meta_u64(const std::string& value, const std::string& key,
                             const std::string& path) {
  if (value.empty()) throw std::runtime_error(path + ": empty value for " + key);
  std::uint64_t out = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') {
      throw std::runtime_error(path + ": bad value for " + key + ": '" + value + "'");
    }
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return out;
}

Meta parse_meta(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::map<std::string, std::string> kv;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) throw std::runtime_error(path + ": malformed line: " + line);
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  const auto need = [&](const char* key) -> const std::string& {
    const auto it = kv.find(key);
    if (it == kv.end()) {
      throw std::runtime_error(path + ": missing key '" + std::string(key) + "'");
    }
    return it->second;
  };
  if (need("schema") != kMetaSchema) {
    throw std::runtime_error(path + ": unknown meta schema '" + need("schema") + "'");
  }
  Meta meta;
  meta.version = need("version");
  const std::string& fp = need("fingerprint");
  if (fp.size() != 16) throw std::runtime_error(path + ": malformed fingerprint");
  meta.fingerprint = 0;
  for (const char c : fp) {
    const int digit = c >= '0' && c <= '9'   ? c - '0'
                      : c >= 'a' && c <= 'f' ? c - 'a' + 10
                                             : -1;
    if (digit < 0) throw std::runtime_error(path + ": malformed fingerprint");
    meta.fingerprint = (meta.fingerprint << 4) | static_cast<std::uint64_t>(digit);
  }
  const std::string& shard = need("shard");
  const std::size_t slash = shard.find('/');
  if (slash == std::string::npos) throw std::runtime_error(path + ": malformed shard");
  meta.shard_index =
      static_cast<int>(parse_meta_u64(shard.substr(0, slash), "shard", path));
  meta.shard_count =
      static_cast<int>(parse_meta_u64(shard.substr(slash + 1), "shard", path));
  if (meta.shard_count < 1 || meta.shard_index < 1 || meta.shard_index > meta.shard_count) {
    throw std::runtime_error(path + ": shard " + shard + " out of range");
  }
  meta.spec.seed = parse_meta_u64(need("seed"), "seed", path);
  const std::string& mode = need("mode");
  if (mode == "faithful") {
    meta.spec.mode = sim::RunMode::kFaithful;
  } else if (mode == "productive") {
    meta.spec.mode = sim::RunMode::kProductiveOnly;
  } else {
    throw std::runtime_error(path + ": unknown mode '" + mode + "'");
  }
  meta.spec.max_steps = parse_meta_u64(need("max_steps"), "max_steps", path);
  meta.spec.lb_pipeline = parse_meta_u64(need("lb_pipeline"), "lb_pipeline", path) != 0;
  meta.spec.algorithms = split_list(need("algorithms"));
  meta.spec.schedulers = split_list(need("schedulers"));
  for (const std::string& token : split_list(need("sizes"))) {
    meta.spec.sizes.push_back(static_cast<int>(parse_meta_u64(token, "sizes", path)));
  }
  return meta;
}

// --- segment files --------------------------------------------------------

std::string segment_name(std::size_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08zu%s", kSegmentPrefix, number, kSegmentSuffix);
  return buf;
}

bool parse_segment_number(const std::string& name, std::size_t* number) {
  const std::string prefix = kSegmentPrefix;
  const std::string suffix = kSegmentSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) return false;
  std::size_t value = 0;
  for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<std::size_t>(name[i] - '0');
  }
  *number = value;
  return true;
}

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Scans one segment's bytes into `records`. Returns the length of the valid
// prefix; anything past it is a torn tail (bad magic, impossible length, or
// checksum mismatch — a record interrupted by a crash).
std::size_t scan_segment(const std::string& bytes,
                         std::map<std::uint64_t, CellResult>& records) {
  std::size_t pos = 0;
  while (pos + kFrameBytes <= bytes.size()) {
    Reader header{bytes.data() + pos, kFrameBytes};
    const std::uint32_t magic = header.u32();
    const std::uint32_t body_len = header.u32();
    const std::uint64_t key = header.u64();
    const std::uint64_t checksum = header.u64();
    if (magic != kRecordMagic) break;
    if (pos + kFrameBytes + body_len > bytes.size()) break;
    const char* body = bytes.data() + pos + kFrameBytes;
    if (hash_bytes(body, body_len) != checksum) break;
    CellResult result;
    if (!deserialize_cell(body, body_len, &result)) break;
    records[key] = std::move(result);
    pos += kFrameBytes + body_len;
  }
  return pos;
}

std::uint64_t spec_key_salt(const CampaignSpec& spec) {
  return util::Hasher()
      .add(stable_string_hash(kJournalCodeVersion))
      .add(spec.mode == sim::RunMode::kFaithful ? 1 : 0)
      .add(spec.max_steps)
      .add(spec.lb_pipeline ? 1 : 0)
      .digest();
}

// Shared by Journal recovery and load_shard: scan every segment in numeric
// order. `truncate` enables tail truncation on disk (owning open only).
void scan_directory(const std::string& dir, std::map<std::uint64_t, CellResult>& records,
                    JournalStats* stats, std::size_t* next_segment, bool truncate) {
  std::vector<std::pair<std::size_t, fs::path>> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // An interrupted commit: the temp file was never renamed, so nothing
      // in it was ever promised durable.
      if (truncate) {
        fs::remove(entry.path());
        if (stats != nullptr) ++stats->orphan_tmp;
      }
      continue;
    }
    std::size_t number = 0;
    if (parse_segment_number(name, &number)) segments.emplace_back(number, entry.path());
  }
  std::sort(segments.begin(), segments.end());
  for (const auto& [number, path] : segments) {
    const std::string bytes = read_whole_file(path.string());
    const std::size_t valid = scan_segment(bytes, records);
    if (stats != nullptr) ++stats->segments;
    if (valid < bytes.size()) {
      std::fprintf(stderr,
                   "melb: journal %s: torn tail at byte %zu of %zu%s\n",
                   path.string().c_str(), valid, bytes.size(),
                   truncate ? " — truncating to the valid prefix" : " (ignored)");
      if (truncate) fs::resize_file(path, valid);
      if (stats != nullptr) ++stats->torn_segments;
    }
    if (next_segment != nullptr) *next_segment = std::max(*next_segment, number + 1);
  }
}

}  // namespace

std::uint64_t cell_key(const CampaignSpec& spec, const Cell& cell) {
  return util::Hasher()
      .add(spec_key_salt(spec))
      .add(stable_string_hash(cell.algorithm))
      .add(stable_string_hash(cell.scheduler))
      .add(static_cast<std::uint64_t>(cell.n))
      .add(cell.seed)
      .digest();
}

std::uint64_t campaign_fingerprint(const CampaignSpec& spec) {
  util::Hasher hasher;
  hasher.add(spec.seed);
  hasher.add(spec.mode == sim::RunMode::kFaithful ? 1 : 0);
  hasher.add(spec.max_steps);
  hasher.add(spec.lb_pipeline ? 1 : 0);
  hasher.add(spec.algorithms.size());
  for (const auto& name : spec.algorithms) hasher.add(stable_string_hash(name));
  hasher.add(spec.schedulers.size());
  for (const auto& name : spec.schedulers) hasher.add(stable_string_hash(name));
  hasher.add(spec.sizes.size());
  for (const int n : spec.sizes) hasher.add(static_cast<std::uint64_t>(n));
  return hasher.digest();
}

bool shard_owns(std::size_t index, int shard_index, int shard_count) {
  return index % static_cast<std::size_t>(shard_count) ==
         static_cast<std::size_t>(shard_index - 1);
}

Journal::Journal(std::string dir, const CampaignSpec& spec, int shard_index, int shard_count)
    : dir_(std::move(dir)), spec_(spec), shard_index_(shard_index), shard_count_(shard_count) {
  if (shard_count_ < 1 || shard_index_ < 1 || shard_index_ > shard_count_) {
    throw std::runtime_error("journal: shard index must be in [1, shard count]");
  }
  fingerprint_ = campaign_fingerprint(spec_);
  key_salt_ = spec_key_salt(spec_);
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw std::runtime_error("cannot create state dir " + dir_ + ": " + ec.message());
  load_or_init_meta(spec_);
  recover_segments();
  stats_.records = records_.size();
}

void Journal::load_or_init_meta(const CampaignSpec& spec) {
  const std::string path = dir_ + "/" + kMetaName;
  if (fs::exists(path)) {
    const Meta meta = parse_meta(path);
    if (meta.fingerprint != fingerprint_) {
      throw std::runtime_error(
          "state dir " + dir_ + " belongs to a different campaign than this spec "
          "(campaign fingerprint mismatch) — use a fresh --state directory or rerun "
          "with the original sweep parameters");
    }
    if (meta.shard_index != shard_index_ || meta.shard_count != shard_count_) {
      throw std::runtime_error("state dir " + dir_ + " holds shard " +
                               std::to_string(meta.shard_index) + "/" +
                               std::to_string(meta.shard_count) + ", not shard " +
                               std::to_string(shard_index_) + "/" +
                               std::to_string(shard_count_) +
                               " — one state directory per shard");
    }
    if (meta.version != kJournalCodeVersion) {
      // A different code version may compute different results for the same
      // coordinates; everything cached here is untrustworthy. Discard and
      // start over rather than mixing generations in one directory.
      std::fprintf(stderr,
                   "melb: state dir %s was written by %s (current %s) — discarding stale "
                   "journal, all cells will be recomputed\n",
                   dir_.c_str(), meta.version.c_str(), kJournalCodeVersion);
      stats_.version_stale = true;
      for (const auto& entry : fs::directory_iterator(dir_)) {
        std::size_t number = 0;
        if (parse_segment_number(entry.path().filename().string(), &number)) {
          fs::remove(entry.path());
        }
      }
    } else {
      return;  // meta is current; nothing to rewrite
    }
  }
  const std::string err = util::write_file_atomic(
      path, meta_text(spec, fingerprint_, shard_index_, shard_count_), "journal.meta");
  if (!err.empty()) throw std::runtime_error("cannot write campaign meta: " + err);
}

void Journal::recover_segments() {
  scan_directory(dir_, records_, &stats_, &next_segment_, /*truncate=*/true);
}

bool Journal::lookup(const Cell& cell, CellResult* out) const {
  const auto it = records_.find(cell_key(spec_, cell));
  if (it == records_.end()) return false;
  const CellResult& r = it->second;
  // The key is a 64-bit content address; on the astronomically unlikely
  // collision (or a corrupted-but-checksummed record), the stored
  // coordinates disagree and the cell is simply recomputed.
  if (r.cell.index != cell.index || r.cell.algorithm != cell.algorithm ||
      r.cell.scheduler != cell.scheduler || r.cell.n != cell.n || r.cell.seed != cell.seed) {
    return false;
  }
  *out = r;
  return true;
}

void Journal::append(const CellResult& result) {
  if (util::fault_hit("journal.append") == util::FaultAction::kCrash) {
    util::fault_crash("journal.append");
  }
  pending_.push_back(result);
}

void Journal::commit() {
  if (pending_.empty()) return;
  std::string batch;
  for (const CellResult& result : pending_) {
    const std::string body = serialize_cell(result);
    put_u32(batch, kRecordMagic);
    put_u32(batch, static_cast<std::uint32_t>(body.size()));
    put_u64(batch, cell_key(spec_, result.cell));
    put_u64(batch, hash_bytes(body.data(), body.size()));
    batch.append(body);
  }
  const std::string path = dir_ + "/" + segment_name(next_segment_);
  const std::string err = util::write_file_atomic(path, batch, "journal.write");
  if (!err.empty()) {
    throw std::runtime_error("journal commit failed (" + std::to_string(pending_.size()) +
                             " cells not durable): " + err);
  }
  ++next_segment_;
  for (CellResult& result : pending_) {
    records_[cell_key(spec_, result.cell)] = std::move(result);
  }
  pending_.clear();
}

Journal::ShardData Journal::load_shard(const std::string& dir) {
  if (!fs::is_directory(dir)) {
    throw std::runtime_error("shard state dir " + dir + " does not exist");
  }
  const Meta meta = parse_meta(dir + "/" + kMetaName);
  ShardData shard;
  shard.spec = meta.spec;
  shard.version = meta.version;
  shard.fingerprint = meta.fingerprint;
  shard.shard_index = meta.shard_index;
  shard.shard_count = meta.shard_count;
  scan_directory(dir, shard.records, nullptr, nullptr, /*truncate=*/false);
  return shard;
}

CampaignReport merge_shards(const std::vector<std::string>& dirs) {
  if (dirs.empty()) throw std::runtime_error("merge: no shard directories given");
  std::vector<Journal::ShardData> shards;
  shards.reserve(dirs.size());
  for (const std::string& dir : dirs) shards.push_back(Journal::load_shard(dir));

  const Journal::ShardData& first = shards.front();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const Journal::ShardData& shard = shards[i];
    if (shard.version != kJournalCodeVersion) {
      throw std::runtime_error("merge: shard " + dirs[i] + " was written by code version '" +
                               shard.version + "' (current '" + kJournalCodeVersion +
                               "') — recompute that shard before merging");
    }
    if (shard.fingerprint != first.fingerprint) {
      throw std::runtime_error("merge: shard " + dirs[i] + " belongs to a different campaign "
                               "than " + dirs[0] + " (fingerprint mismatch)");
    }
    if (shard.shard_count != first.shard_count) {
      throw std::runtime_error(
          "merge: shard " + dirs[i] + " is 1 of " + std::to_string(shard.shard_count) +
          " but " + dirs[0] + " is 1 of " + std::to_string(first.shard_count) +
          " — all shards must come from the same --shard i/k partition");
    }
  }
  const int k = first.shard_count;
  if (static_cast<int>(shards.size()) != k) {
    throw std::runtime_error("merge: campaign was sharded " + std::to_string(k) +
                             " ways but " + std::to_string(shards.size()) +
                             " shard directories were given");
  }
  std::map<int, std::size_t> by_index;  // shard index -> position in `shards`
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (!by_index.emplace(shards[i].shard_index, i).second) {
      throw std::runtime_error("merge: duplicate shard " +
                               std::to_string(shards[i].shard_index) + "/" +
                               std::to_string(k) + " (" + dirs[i] + " and " +
                               dirs[by_index[shards[i].shard_index]] + ")");
    }
  }

  const std::vector<Cell> cells = expand(first.spec);
  // Overlap detection: a journal holding a cell it does not own means two
  // shard runs disagreed about the partition (e.g. a directory was copied
  // and relabeled) — refuse rather than pick a winner.
  for (std::size_t i = 0; i < shards.size(); ++i) {
    for (const auto& [key, record] : shards[i].records) {
      (void)key;
      if (record.cell.index >= cells.size() ||
          !shard_owns(record.cell.index, shards[i].shard_index, k)) {
        throw std::runtime_error(
            "merge: overlapping shards — " + dirs[i] + " (shard " +
            std::to_string(shards[i].shard_index) + "/" + std::to_string(k) +
            ") holds cell " + std::to_string(record.cell.index) + ", which it does not own");
      }
    }
  }

  CampaignReport report;
  report.spec = first.spec;
  report.cells.resize(cells.size());
  std::vector<std::string> missing;
  for (const Cell& cell : cells) {
    int owner = 1;
    while (!shard_owns(cell.index, owner, k)) ++owner;
    const Journal::ShardData& shard = shards[by_index.at(owner)];
    const auto it = shard.records.find(cell_key(first.spec, cell));
    if (it == shard.records.end()) {
      missing.push_back(std::to_string(cell.index) + " (" + cell.algorithm + "/" +
                        cell.scheduler + " n=" + std::to_string(cell.n) + ")");
      continue;
    }
    report.cells[cell.index] = it->second;
  }
  if (!missing.empty()) {
    std::string list;
    for (std::size_t i = 0; i < missing.size() && i < 5; ++i) {
      list += (i ? ", " : "") + missing[i];
    }
    if (missing.size() > 5) list += ", …";
    throw std::runtime_error("merge: " + std::to_string(missing.size()) +
                             " cells missing from their shard journals (" + list +
                             ") — finish or resume the shard sweeps first");
  }
  return report;
}

}  // namespace melb::exp
