#include "exp/pool.h"

namespace melb::exp {

TaskPool::TaskPool(int workers)
    : workers_(workers < 1 ? 1 : workers), deques_(static_cast<std::size_t>(workers_)) {
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back(&TaskPool::worker_main, this, w);
  }
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void TaskPool::run(std::size_t count, const std::function<void(std::size_t, int)>& task,
                   std::atomic<bool>* cancel) {
  if (count == 0) return;
  if (workers_ == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      if (cancel && cancel->load(std::memory_order_relaxed)) return;
      task(i, 0);
    }
    return;
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    // A worker from the previous epoch may still be inside drain() (about to
    // find its deques empty); wait it out so the task pointer and deques are
    // exclusively ours to reconfigure.
    idle_cv_.wait(lock, [&] { return active_ == 0; });
    for (std::size_t i = 0; i < count; ++i) {
      deques_[i % static_cast<std::size_t>(workers_)].tasks.push_back(i);
    }
    task_ = &task;
    cancel_ = cancel;
    remaining_.store(count, std::memory_order_relaxed);
    active_ = workers_ - 1;
    ++epoch_;
  }
  start_cv_.notify_all();

  drain(0);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return remaining_.load(std::memory_order_acquire) == 0; });
}

void TaskPool::worker_main(int me) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    drain(me);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) idle_cv_.notify_one();
    }
  }
}

void TaskPool::drain(int me) {
  std::size_t idx = 0;
  for (;;) {
    bool found = false;
    {
      Deque& mine = deques_[static_cast<std::size_t>(me)];
      const std::lock_guard<std::mutex> lock(mine.mutex);
      if (!mine.tasks.empty()) {
        idx = mine.tasks.back();
        mine.tasks.pop_back();
        found = true;
      }
    }
    for (int victim = 1; !found && victim < workers_; ++victim) {
      Deque& theirs = deques_[static_cast<std::size_t>((me + victim) % workers_)];
      const std::lock_guard<std::mutex> lock(theirs.mutex);
      if (!theirs.tasks.empty()) {
        idx = theirs.tasks.front();
        theirs.tasks.pop_front();
        found = true;
      }
    }
    if (!found) return;
    if (!(cancel_ && cancel_->load(std::memory_order_relaxed))) (*task_)(idx, me);
    // Cancelled tasks still count down: the barrier must release even when
    // the epoch is abandoned mid-flight.
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

}  // namespace melb::exp
