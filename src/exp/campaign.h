// Campaign specifications for the parallel experiment-sweep engine.
//
// A campaign is the cross product {algorithm} × {scheduler} × {n}: every cell
// runs one canonical execution (plus, for register algorithms, the lower-bound
// construct → encode → decode pipeline) and contributes one row to the report.
// Expansion is deterministic: cells are enumerated in spec order and each cell
// gets a seed derived from (campaign seed, algorithm name, scheduler name, n)
// via util::derive_seed — a pure function of the cell's coordinates, never of
// enumeration position or worker assignment, so adding a dimension or changing
// the worker count cannot perturb any other cell's results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/canonical.h"

namespace melb::exp {

struct CampaignSpec {
  std::vector<std::string> algorithms;  // algo/registry names
  std::vector<std::string> schedulers;  // sim::scheduler_names() entries
  std::vector<int> sizes;               // n values, each ≥ 1
  std::uint64_t seed = 2026;
  sim::RunMode mode = sim::RunMode::kProductiveOnly;
  std::uint64_t max_steps = 50'000'000;
  // Run construct → encode → decode on cells whose algorithm is register-only
  // and correct (the class Theorem 7.5 quantifies over).
  bool lb_pipeline = true;
};

// One point of the sweep. `index` is the cell's position in expansion order
// (the stable row id of the report); `seed` is the cell's private random
// stream, shared by its scheduler and its lower-bound permutation.
struct Cell {
  std::size_t index = 0;
  std::string algorithm;
  std::string scheduler;
  int n = 0;
  std::uint64_t seed = 0;
};

// Stable 64-bit string hash (util::Hasher over the bytes) used to fold cell
// coordinates into seeds; identical across platforms and library versions
// that keep util::Hasher stable.
std::uint64_t stable_string_hash(const std::string& text);

// Enumerate the campaign's cells: algorithms outermost, then schedulers, then
// sizes, all in spec order. Throws std::invalid_argument on an unknown
// scheduler, empty dimension, or n < 1, and std::out_of_range on an unknown
// algorithm (the registry's lookup contract).
std::vector<Cell> expand(const CampaignSpec& spec);

// Selector helpers shared by the CLI and benches.
//  * split_list: comma-separated tokens; rejects empty tokens.
//  * resolve_algorithms: "all", "correct", "registers", or a comma-separated
//    list of registry names (validated).
//  * parse_sizes: "LO..HI" inclusive ranges or comma-separated values
//    ("2..8", "2,4,8", "2..4,8"). Throws std::invalid_argument on nonsense.
std::vector<std::string> split_list(const std::string& text);
std::vector<std::string> resolve_algorithms(const std::string& selector);
std::vector<int> parse_sizes(const std::string& text);

}  // namespace melb::exp
