// Durable append-only cell journal: the campaign service's crash-safety
// primitive.
//
// A state directory holds one shard of one campaign:
//
//   DIR/campaign.meta   text key=value: meta schema, code-version salt,
//                       campaign fingerprint, shard i/k, and the full
//                       CampaignSpec (so `melb_cli merge` can rebuild the
//                       report without re-specifying the sweep)
//   DIR/seg-NNNNNNNN.melbj
//                       one segment per committed batch: framed, checksummed
//                       CellResult records
//
// Each record is keyed by a *content address* — util::Hasher over the
// code-version salt, the result-affecting spec knobs (mode, max_steps,
// lb_pipeline), and the cell coordinates (algorithm, scheduler, n, seed) —
// so a lookup hit means "this exact experiment, computed by this version of
// the code". Bumping kJournalCodeVersion changes every key, which is how a
// semantics change turns a journal full of stale results into cache misses
// instead of silent wrong answers.
//
// Durability protocol: commit() serializes the pending batch and hands it to
// util::write_file_atomic — temp file, fsync, atomic rename, directory
// fsync — so a kill -9 at ANY instant leaves the directory as a set of fully
// valid segments plus at most one garbage .tmp. Recovery (the constructor)
// deletes orphan temp files, scans segments in order, and truncates a
// detectably-torn tail (bad magic, bad length, bad checksum) with a warning.
// Anything recovered is a valid prefix of what was committed; everything
// else is recomputed. The fault sites journal.append / journal.write /
// journal.write.rename / journal.meta let tests kill the process at every
// one of these boundaries.
//
// Thread-safety: none — the service serializes journal calls under its
// on_cell mutex.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/report.h"

namespace melb::exp {

// Bump whenever run_cell's observable results or the record serialization
// change: the salt is folded into every record key, so records written by
// any other version simply never match (and a mismatched meta makes merge
// refuse the shard outright).
inline constexpr char kJournalCodeVersion[] = "melb-journal-v1";

// The record's content address (see file comment). Pure function of
// (version salt, spec knobs, cell coordinates).
std::uint64_t cell_key(const CampaignSpec& spec, const Cell& cell);

// Digest of the *campaign identity* — every spec field, including the
// dimension lists — used to refuse resuming a directory that belongs to a
// different sweep. Deliberately excludes the code version: a version bump
// recomputes cells in place rather than rejecting the directory.
std::uint64_t campaign_fingerprint(const CampaignSpec& spec);

// The deterministic shard partition: shard i (1-based) of k owns cell
// `index` iff index ≡ i-1 (mod k). A pure function of the expansion index,
// so k hosts can each expand the spec locally and agree on the split.
bool shard_owns(std::size_t index, int shard_index, int shard_count);

struct JournalStats {
  std::size_t records = 0;        // valid records recovered on open
  std::size_t segments = 0;       // segment files scanned
  std::size_t torn_segments = 0;  // segments truncated at a torn tail
  std::size_t orphan_tmp = 0;     // abandoned .tmp files removed
  bool version_stale = false;     // directory was written by another version
};

class Journal {
 public:
  // Opens (creating if needed) the state directory for this campaign shard,
  // running recovery as described above. A directory written by a stale
  // code version is discarded (warning on stderr) and re-initialized.
  // Throws std::runtime_error when the directory belongs to a different
  // campaign or a different shard, or on unrecoverable I/O failure.
  Journal(std::string dir, const CampaignSpec& spec, int shard_index, int shard_count);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Serves a cell's cached result; returns false on miss (unknown, stale, or
  // a key collision whose stored coordinates disagree — treated as a miss).
  bool lookup(const Cell& cell, CellResult* out) const;

  // Queues one completed cell; durable after the next commit(). Fault site
  // "journal.append" (crash).
  void append(const CellResult& result);

  // Writes the pending batch as one new segment (fault sites "journal.write"
  // and "journal.write.rename"). Throws std::runtime_error on I/O failure —
  // e.g. a full disk — leaving the directory valid (the batch is simply not
  // durable). No-op when nothing is pending.
  void commit();

  std::size_t pending() const { return pending_.size(); }
  const JournalStats& stats() const { return stats_; }
  int shard_index() const { return shard_index_; }
  int shard_count() const { return shard_count_; }

  // Parsed meta + recovered records of an existing shard directory, without
  // taking ownership (no meta rewrite, no segment deletion; torn tails are
  // ignored rather than truncated). What `merge_shards` reads. Throws
  // std::runtime_error on a missing or malformed directory.
  struct ShardData {
    CampaignSpec spec;
    std::string version;
    std::uint64_t fingerprint = 0;
    int shard_index = 1;
    int shard_count = 1;
    std::map<std::uint64_t, CellResult> records;
  };
  static ShardData load_shard(const std::string& dir);

 private:
  void load_or_init_meta(const CampaignSpec& spec);
  void recover_segments();

  std::string dir_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t key_salt_ = 0;  // spec-knob half of cell_key, precomputed
  CampaignSpec spec_;
  int shard_index_ = 1;
  int shard_count_ = 1;
  std::size_t next_segment_ = 0;
  std::map<std::uint64_t, CellResult> records_;
  std::vector<CellResult> pending_;
  JournalStats stats_;
};

// Joins k shard directories of the same campaign into the full report,
// byte-identical to an unsharded run. Throws std::runtime_error with a
// specific message when the shard set is wrong: version or campaign
// mismatch, duplicate or missing shard indices, disagreeing shard counts,
// overlapping shards (a journal holding cells it does not own), or cells
// missing from their owning shard.
CampaignReport merge_shards(const std::vector<std::string>& dirs);

}  // namespace melb::exp
