// TaskPool: a persistent, barrier-synchronized work-stealing thread pool.
//
// The pool's threads are spawned once, in the constructor, and reused for
// every run() — unlike the spawn-per-call fan-out it replaces, which paid a
// thread create + join per invocation. That cost was invisible for sweep
// campaigns (one fan-out per campaign) but dominated deep, narrow state
// spaces in the model checker, which dispatches the pool twice per BFS level:
// a persistent pool turns each level's dispatch into a condition-variable
// wake instead of N thread spawns (bench_model_checker measures both).
//
// Execution semantics are identical to run_indexed_tasks (exp/runner.h):
// tasks 0..count-1 are distributed round-robin across per-worker deques; an
// idle worker drains its own deque from the back (LIFO keeps its cache warm),
// then steals from the front of the others (FIFO steals the oldest,
// typically largest-granularity, work). `task(index, worker)` may run on any
// worker in any order, so it must write only to index-owned or worker-owned
// slots. The calling thread participates as worker 0, so a pool of W workers
// spawns W-1 threads. run() blocks until every task has finished — the
// barrier gives the caller a happens-before edge over all task effects, which
// is what lets the checker's serial sequencing phase read worker-written
// candidate buffers without extra synchronization.
//
// run() is not reentrant: calling run() from inside a task deadlocks (the
// pool waits for its own workers to go idle). Subsystems that need nested
// parallelism (check_all_subsets running whole checks per task) run the
// inner work serially instead.
//
// Thread-safety and determinism contract: run() must only be called from
// one thread at a time (the checker and the campaign runner each own their
// pool; nothing shares one). The pool guarantees every task executes
// exactly once and the barrier orders all task effects before run()
// returns, but it guarantees NOTHING about which worker runs which task or
// in what order — callers that promise worker-count-invariant output (the
// sweep engine's byte-identical reports, the checker's determinism
// contract, see docs/checker-architecture.md) must therefore write only to
// index-owned slots and do any order-sensitive reduction serially after the
// barrier. A pool constructed with workers <= 1 degrades run() to a plain
// inline loop on the caller (no threads are ever spawned), which is what
// lets serial and parallel call sites share one code path with identical
// side effects.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace melb::exp {

class TaskPool {
 public:
  // Spawns workers-1 threads (the caller is worker 0). workers < 1 is
  // clamped to 1, which makes run() a plain inline loop.
  explicit TaskPool(int workers);

  // Joins the worker threads. All run() calls must have returned.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int workers() const { return workers_; }

  // Executes tasks 0..count-1 across the pool and blocks until all have run.
  // If `cancel` becomes true, tasks not yet started are skipped (the barrier
  // still waits for started tasks to finish).
  void run(std::size_t count, const std::function<void(std::size_t, int)>& task,
           std::atomic<bool>* cancel = nullptr);

 private:
  // Per-worker task queue; a mutex per deque is ample at the granularities
  // the pool serves (sweep cells and frontier chunks run for micro- to
  // milliseconds, not nanoseconds).
  struct Deque {
    std::mutex mutex;
    std::deque<std::size_t> tasks;
  };

  void worker_main(int me);
  // Drains tasks (own deque, then stealing) until none are left.
  void drain(int me);

  const int workers_;
  std::vector<Deque> deques_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable start_cv_;  // workers wait here between epochs
  std::condition_variable done_cv_;   // run() waits here for the barrier
  std::condition_variable idle_cv_;   // run() waits here for stragglers
  std::uint64_t epoch_ = 0;           // bumped per run(); guarded by mutex_
  int active_ = 0;                    // workers still inside the current epoch
  bool stop_ = false;

  // Written in run() before the epoch bump, read by workers after observing
  // the bump (mutex_ provides the edge).
  const std::function<void(std::size_t, int)>* task_ = nullptr;
  std::atomic<bool>* cancel_ = nullptr;
  std::atomic<std::size_t> remaining_{0};  // unfinished tasks this epoch
};

}  // namespace melb::exp
