// RMR (remote memory reference) accounting for the threaded runtime.
//
// The paper's motivation is cache-coherent hardware, which we do not control
// cycle-accurately; instead we count coherence-relevant events in software
// (the substitution documented in DESIGN.md §5):
//   * every store and every RMW counts 1 (it invalidates other caches);
//   * a one-shot load counts 1 (potential miss);
//   * a spin loop counts 1 for the initial load and 1 per *observed value
//     change* — re-reads of an unchanged value hit the local cache for free,
//     exactly the accounting of the CC model (and the SC model's free
//     busy-waits).
// Counters are per-thread and cache-line padded so the instrumentation does
// not itself create coherence traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace melb::rt {

struct alignas(64) PaddedCounter {
  std::uint64_t value = 0;
};

class RmrCounters {
 public:
  explicit RmrCounters(int threads) : counters_(static_cast<std::size_t>(threads)) {}

  void add(int tid, std::uint64_t amount = 1) {
    counters_[static_cast<std::size_t>(tid)].value += amount;
  }

  std::uint64_t of(int tid) const { return counters_[static_cast<std::size_t>(tid)].value; }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& c : counters_) sum += c.value;
    return sum;
  }

  std::uint64_t max() const {
    std::uint64_t best = 0;
    for (const auto& c : counters_) best = best > c.value ? best : c.value;
    return best;
  }

  void reset() {
    for (auto& c : counters_) c.value = 0;
  }

  int threads() const { return static_cast<int>(counters_.size()); }

 private:
  std::vector<PaddedCounter> counters_;
};

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Spin until pred(value) holds on `var`, charging `counters` per the RMR
// accounting above. Returns the satisfying value.
template <typename T, typename Pred>
T spin_until(const std::atomic<T>& var, Pred pred, RmrCounters& counters, int tid) {
  T last = var.load(std::memory_order_acquire);
  counters.add(tid);
  while (!pred(last)) {
    cpu_relax();
    const T current = var.load(std::memory_order_acquire);
    if (current != last) {
      counters.add(tid);
      last = current;
    }
  }
  return last;
}

}  // namespace melb::rt
