#include "rt/locks.h"

namespace melb::rt {

// ---------------------------------------------------------------- TtasLock

void TtasLock::lock(int tid) {
  for (;;) {
    spin_until(flag_, [](int v) { return v == 0; }, counters_, tid);
    counters_.add(tid);  // the CAS attempt
    int expected = 0;
    if (flag_.compare_exchange_strong(expected, 1, std::memory_order_acquire)) return;
  }
}

void TtasLock::unlock(int tid) {
  counters_.add(tid);
  flag_.store(0, std::memory_order_release);
}

// -------------------------------------------------------------- TicketLock

void TicketLock::lock(int tid) {
  counters_.add(tid);  // fetch_add
  const std::uint64_t my = next_.fetch_add(1, std::memory_order_acq_rel);
  spin_until(serving_, [my](std::uint64_t v) { return v == my; }, counters_, tid);
}

void TicketLock::unlock(int tid) {
  counters_.add(tid);
  serving_.fetch_add(1, std::memory_order_acq_rel);
}

// ----------------------------------------------------------------- McsLock

McsLock::McsLock(int threads)
    : Lock(threads), nodes_(std::make_unique<Node[]>(static_cast<std::size_t>(threads))) {}

void McsLock::lock(int tid) {
  Node& me = nodes_[static_cast<std::size_t>(tid)];
  me.next.store(nullptr, std::memory_order_relaxed);
  me.locked.store(1, std::memory_order_relaxed);
  counters_.add(tid);  // the swap
  Node* prev = tail_.exchange(&me, std::memory_order_acq_rel);
  if (prev != nullptr) {
    counters_.add(tid);  // enqueue behind predecessor
    prev->next.store(&me, std::memory_order_release);
    spin_until(me.locked, [](int v) { return v == 0; }, counters_, tid);
  }
}

void McsLock::unlock(int tid) {
  Node& me = nodes_[static_cast<std::size_t>(tid)];
  Node* successor = me.next.load(std::memory_order_acquire);
  counters_.add(tid);
  if (successor == nullptr) {
    Node* expected = &me;
    counters_.add(tid);  // the CAS
    if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel)) return;
    successor = spin_until(
        me.next, [](Node* v) { return v != nullptr; }, counters_, tid);
  }
  counters_.add(tid);
  successor->locked.store(0, std::memory_order_release);
}

// -------------------------------------------------------- YangAndersonLock

YangAndersonLock::YangAndersonLock(int threads)
    : Lock(threads), threads_(threads), leaf_span_(2), levels_(1) {
  while (leaf_span_ < threads_) {
    leaf_span_ *= 2;
    ++levels_;
  }
  nodes_ = std::make_unique<NodeVars[]>(static_cast<std::size_t>(leaf_span_));  // 0 unused
  spins_ = std::make_unique<SpinVar[]>(static_cast<std::size_t>(levels_ * threads_));
}

void YangAndersonLock::node_lock(int tid, int level, int node, int side) {
  auto& v = nodes_[static_cast<std::size_t>(node)];
  auto& my_spin = spin(level, tid);
  const std::int64_t me = tid + 1;

  counters_.add(tid);
  v.c[side].store(me, std::memory_order_seq_cst);
  counters_.add(tid);
  v.t.store(me, std::memory_order_seq_cst);
  counters_.add(tid);
  my_spin.store(0, std::memory_order_seq_cst);

  counters_.add(tid);
  const std::int64_t rival = v.c[1 - side].load(std::memory_order_seq_cst);
  if (rival == 0) return;
  counters_.add(tid);
  if (v.t.load(std::memory_order_seq_cst) != me) return;

  auto& rival_spin = spin(level, static_cast<int>(rival) - 1);
  counters_.add(tid);
  if (rival_spin.load(std::memory_order_seq_cst) == 0) {
    counters_.add(tid);
    rival_spin.store(1, std::memory_order_seq_cst);
  }
  spin_until(my_spin, [](std::int64_t p) { return p >= 1; }, counters_, tid);
  counters_.add(tid);
  if (v.t.load(std::memory_order_seq_cst) != me) return;
  spin_until(my_spin, [](std::int64_t p) { return p == 2; }, counters_, tid);
}

void YangAndersonLock::node_unlock(int tid, int level, int node, int side) {
  auto& v = nodes_[static_cast<std::size_t>(node)];
  const std::int64_t me = tid + 1;
  (void)side;
  counters_.add(tid);
  v.c[side].store(0, std::memory_order_seq_cst);
  counters_.add(tid);
  const std::int64_t rival = v.t.load(std::memory_order_seq_cst);
  if (rival != 0 && rival != me) {
    counters_.add(tid);
    spin(level, static_cast<int>(rival) - 1).store(2, std::memory_order_seq_cst);
  }
}

void YangAndersonLock::lock(int tid) {
  int node = leaf_span_ + tid;
  int level = 0;
  while (node > 1) {
    node_lock(tid, level, node / 2, node & 1);
    node /= 2;
    ++level;
  }
}

void YangAndersonLock::unlock(int tid) {
  // Release root-to-leaf: the reverse of the acquisition path.
  int path[64];
  int depth = 0;
  int node = leaf_span_ + tid;
  while (node > 1) {
    path[depth++] = node;
    node /= 2;
  }
  for (int i = depth - 1; i >= 0; --i) {
    node_unlock(tid, i, path[i] / 2, path[i] & 1);
  }
}

std::vector<std::unique_ptr<Lock>> all_locks(int threads) {
  std::vector<std::unique_ptr<Lock>> locks;
  locks.push_back(std::make_unique<YangAndersonLock>(threads));
  locks.push_back(std::make_unique<McsLock>(threads));
  locks.push_back(std::make_unique<TicketLock>(threads));
  locks.push_back(std::make_unique<TtasLock>(threads));
  return locks;
}

}  // namespace melb::rt
