// Thread harness: runs T threads through K critical-section passes on a
// lock, verifies mutual exclusion dynamically (an occupancy word checked
// inside the critical section), and reports RMR counts and wall time.
#pragma once

#include <cstdint>
#include <string>

#include "rt/locks.h"

namespace melb::rt {

struct HarnessResult {
  bool mutex_ok = true;            // no overlapping critical sections observed
  std::uint64_t total_rmr = 0;     // summed over threads
  std::uint64_t max_thread_rmr = 0;
  double seconds = 0.0;
  std::uint64_t cs_passes = 0;     // threads × iterations actually completed
};

struct HarnessOptions {
  int iterations_per_thread = 1;   // canonical executions use 1
  int cs_work = 0;                 // dummy spins inside the critical section
};

HarnessResult run_lock_harness(Lock& lock, int threads, const HarnessOptions& options = {});

}  // namespace melb::rt
