// Threaded lock implementations with RMR instrumentation.
//
// Register-only algorithms (Yang–Anderson) mirror their simulator automata;
// RMW-based locks (TTAS, ticket, MCS) exercise the paper's §1 remark that
// the technique extends to comparison-based primitives — MCS is the
// O(1)-RMR point the register lower bound proves unattainable without RMW.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rt/rmr.h"

namespace melb::rt {

class Lock {
 public:
  explicit Lock(int threads) : counters_(threads) {}
  virtual ~Lock() = default;

  virtual std::string name() const = 0;
  virtual void lock(int tid) = 0;
  virtual void unlock(int tid) = 0;

  RmrCounters& counters() { return counters_; }
  const RmrCounters& counters() const { return counters_; }

 protected:
  RmrCounters counters_;
};

// Test-and-test-and-set: the contention strawman; Θ(n) coherence traffic per
// handoff under load.
class TtasLock final : public Lock {
 public:
  explicit TtasLock(int threads) : Lock(threads) {}
  std::string name() const override { return "ttas"; }
  void lock(int tid) override;
  void unlock(int tid) override;

 private:
  std::atomic<int> flag_{0};
};

// Ticket lock: FIFO, but all waiters spin on one word — Θ(n) invalidations
// per handoff.
class TicketLock final : public Lock {
 public:
  explicit TicketLock(int threads) : Lock(threads) {}
  std::string name() const override { return "ticket"; }
  void lock(int tid) override;
  void unlock(int tid) override;

 private:
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> serving_{0};
};

// MCS queue lock: O(1) RMR per acquisition via RMW (swap/CAS) — the
// comparison-primitive escape hatch from the register lower bound.
class McsLock final : public Lock {
 public:
  explicit McsLock(int threads);
  std::string name() const override { return "mcs"; }
  void lock(int tid) override;
  void unlock(int tid) override;

 private:
  struct alignas(64) Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<int> locked{0};
  };
  std::atomic<Node*> tail_{nullptr};
  std::unique_ptr<Node[]> nodes_;
};

// Yang–Anderson arbitration tree over plain atomic loads/stores (no RMW):
// the O(log n)-RMR register algorithm the paper cites as the tight upper
// bound. Mirrors algo::YangAndersonAlgorithm.
class YangAndersonLock final : public Lock {
 public:
  explicit YangAndersonLock(int threads);
  std::string name() const override { return "yang-anderson"; }
  void lock(int tid) override;
  void unlock(int tid) override;

 private:
  struct alignas(64) NodeVars {
    std::atomic<std::int64_t> c[2]{0, 0};
    std::atomic<std::int64_t> t{0};
  };
  struct alignas(64) SpinVar {
    std::atomic<std::int64_t> p{0};
  };

  void node_lock(int tid, int level, int node, int side);
  void node_unlock(int tid, int level, int node, int side);

  // Spin flags are per (thread, tree level) — a stale delayed signal from a
  // lower node must not wake the thread's wait at a higher node (mirrors
  // algo::YangAndersonAlgorithm; see that header for the failure trace).
  std::atomic<std::int64_t>& spin(int level, int tid) {
    return spins_[static_cast<std::size_t>(level * threads_ + tid)].p;
  }

  int threads_;
  int leaf_span_;
  int levels_;
  std::unique_ptr<NodeVars[]> nodes_;  // heap-indexed, [1, leaf_span_)
  std::unique_ptr<SpinVar[]> spins_;
};

// All instrumented locks for a given thread count.
std::vector<std::unique_ptr<Lock>> all_locks(int threads);

}  // namespace melb::rt
