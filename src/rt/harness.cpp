#include "rt/harness.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace melb::rt {

HarnessResult run_lock_harness(Lock& lock, int threads, const HarnessOptions& options) {
  HarnessResult result;
  std::atomic<int> occupancy{0};
  std::atomic<bool> violation{false};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> passes{0};

  lock.counters().reset();

  auto body = [&](int tid) {
    ready.fetch_add(1, std::memory_order_acq_rel);
    while (!go.load(std::memory_order_acquire)) cpu_relax();
    for (int it = 0; it < options.iterations_per_thread; ++it) {
      lock.lock(tid);
      if (occupancy.fetch_add(1, std::memory_order_acq_rel) != 0) {
        violation.store(true, std::memory_order_release);
      }
      for (int w = 0; w < options.cs_work; ++w) {
        volatile int sink = w;  // defeat loop elision without deprecated
        (void)sink;             // volatile compound/chained assignment
      }
      occupancy.fetch_sub(1, std::memory_order_acq_rel);
      lock.unlock(tid);
      passes.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int tid = 0; tid < threads; ++tid) workers.emplace_back(body, tid);

  while (ready.load(std::memory_order_acquire) != threads) cpu_relax();
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  const auto stop = std::chrono::steady_clock::now();

  result.mutex_ok = !violation.load(std::memory_order_acquire);
  result.total_rmr = lock.counters().total();
  result.max_thread_rmr = lock.counters().max();
  result.seconds = std::chrono::duration<double>(stop - start).count();
  result.cs_passes = passes.load(std::memory_order_acquire);
  return result;
}

}  // namespace melb::rt
