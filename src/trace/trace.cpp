#include "trace/trace.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace melb::trace {

namespace {

using sim::CritKind;
using sim::RecordedStep;
using sim::RmwKind;
using sim::Step;
using sim::StepType;

const char* crit_name(CritKind kind) {
  switch (kind) {
    case CritKind::kTry:
      return "try";
    case CritKind::kEnter:
      return "enter";
    case CritKind::kExit:
      return "exit";
    case CritKind::kRem:
      return "rem";
  }
  return "?";
}

std::optional<CritKind> crit_from_name(const std::string& name) {
  if (name == "try") return CritKind::kTry;
  if (name == "enter") return CritKind::kEnter;
  if (name == "exit") return CritKind::kExit;
  if (name == "rem") return CritKind::kRem;
  return std::nullopt;
}

[[noreturn]] void bad_line(std::size_t line_no, const std::string& line) {
  throw std::invalid_argument("trace: malformed line " + std::to_string(line_no) + ": " +
                              line);
}

}  // namespace

std::string to_text(const TraceHeader& header, const sim::Execution& exec) {
  std::ostringstream out;
  out << "# melb-trace v1\n";
  out << "# algorithm: " << header.algorithm << "\n";
  out << "# n: " << header.n << "\n";
  for (const auto& rs : exec.steps()) {
    const Step& s = rs.step;
    switch (s.type) {
      case StepType::kRead:
        out << "R " << s.pid << ' ' << s.reg << " = " << rs.read_value << ' '
            << (rs.state_changed ? "sc" : "free");
        break;
      case StepType::kWrite:
        out << "W " << s.pid << ' ' << s.reg << ' ' << s.value << ' '
            << (rs.state_changed ? "sc" : "free");
        break;
      case StepType::kRmw:
        switch (s.rmw) {
          case RmwKind::kCas:
            out << "CAS " << s.pid << ' ' << s.reg << ' ' << s.expected << ' ' << s.value;
            break;
          case RmwKind::kSwap:
            out << "SWP " << s.pid << ' ' << s.reg << ' ' << s.value;
            break;
          case RmwKind::kFaa:
            out << "FAA " << s.pid << ' ' << s.reg << ' ' << s.value;
            break;
        }
        out << " = " << rs.read_value << ' ' << (rs.state_changed ? "sc" : "free");
        break;
      case StepType::kCrit:
        out << "C " << s.pid << ' ' << crit_name(s.crit);
        break;
    }
    out << '\n';
  }
  return out.str();
}

std::vector<Step> ParsedTrace::raw_steps() const {
  std::vector<Step> steps;
  steps.reserve(exec.size());
  for (const auto& rs : exec.steps()) steps.push_back(rs.step);
  return steps;
}

ParsedTrace from_text(const std::string& text) {
  ParsedTrace result;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_magic = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# melb-trace", 0) == 0) saw_magic = true;
      const auto algo_pos = line.find("algorithm: ");
      if (algo_pos != std::string::npos) result.header.algorithm = line.substr(algo_pos + 11);
      const auto n_pos = line.find("n: ");
      if (n_pos != std::string::npos && line.find("algorithm") == std::string::npos) {
        result.header.n = std::stoi(line.substr(n_pos + 3));
      }
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    RecordedStep rs;
    auto read_annotations = [&]() {
      std::string eq, mark;
      long long observed = 0;
      if (!(fields >> eq >> observed >> mark) || eq != "=") bad_line(line_no, line);
      rs.read_value = observed;
      rs.state_changed = (mark == "sc");
      if (mark != "sc" && mark != "free") bad_line(line_no, line);
    };
    if (tag == "R") {
      int pid = 0, reg = 0;
      if (!(fields >> pid >> reg)) bad_line(line_no, line);
      rs.step = Step::read(pid, reg);
      read_annotations();
    } else if (tag == "W") {
      int pid = 0, reg = 0;
      long long value = 0;
      std::string mark;
      if (!(fields >> pid >> reg >> value >> mark)) bad_line(line_no, line);
      rs.step = Step::write(pid, reg, value);
      rs.state_changed = (mark == "sc");
      if (mark != "sc" && mark != "free") bad_line(line_no, line);
    } else if (tag == "CAS") {
      int pid = 0, reg = 0;
      long long expected = 0, desired = 0;
      if (!(fields >> pid >> reg >> expected >> desired)) bad_line(line_no, line);
      rs.step = Step::cas(pid, reg, expected, desired);
      read_annotations();
    } else if (tag == "SWP") {
      int pid = 0, reg = 0;
      long long value = 0;
      if (!(fields >> pid >> reg >> value)) bad_line(line_no, line);
      rs.step = Step::swap(pid, reg, value);
      read_annotations();
    } else if (tag == "FAA") {
      int pid = 0, reg = 0;
      long long addend = 0;
      if (!(fields >> pid >> reg >> addend)) bad_line(line_no, line);
      rs.step = Step::faa(pid, reg, addend);
      read_annotations();
    } else if (tag == "C") {
      int pid = 0;
      std::string kind;
      if (!(fields >> pid >> kind)) bad_line(line_no, line);
      const auto crit = crit_from_name(kind);
      if (!crit) bad_line(line_no, line);
      rs.step = Step::crit_step(pid, *crit);
      rs.state_changed = true;
    } else {
      bad_line(line_no, line);
    }
    result.exec.append(rs);
  }
  if (!saw_magic) throw std::invalid_argument("trace: missing '# melb-trace' header");
  return result;
}

std::optional<std::size_t> first_divergence(const sim::Execution& a, const sim::Execution& b,
                                            std::string* detail) {
  const std::size_t limit = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& ra = a.at(i);
    const auto& rb = b.at(i);
    if (!(ra.step == rb.step) || ra.read_value != rb.read_value ||
        ra.state_changed != rb.state_changed) {
      if (detail != nullptr) {
        *detail = "step " + std::to_string(i) + ": " + to_string(ra.step) + " vs " +
                  to_string(rb.step);
      }
      return i;
    }
  }
  if (a.size() != b.size()) {
    if (detail != nullptr) {
      *detail = "length mismatch: " + std::to_string(a.size()) + " vs " +
                std::to_string(b.size());
    }
    return limit;
  }
  return std::nullopt;
}

TraceStats compute_stats(const sim::Execution& exec, int n, int num_registers) {
  TraceStats stats;
  stats.per_process_cost.assign(static_cast<std::size_t>(n), 0);
  stats.per_register_accesses.assign(static_cast<std::size_t>(num_registers), 0);
  for (const auto& rs : exec.steps()) {
    ++stats.steps;
    switch (rs.step.type) {
      case StepType::kRead:
        ++stats.reads;
        if (!rs.state_changed) ++stats.free_reads;
        break;
      case StepType::kWrite:
        ++stats.writes;
        break;
      case StepType::kRmw:
        ++stats.rmws;
        break;
      case StepType::kCrit:
        ++stats.crits;
        break;
    }
    if (rs.step.is_memory_access()) {
      ++stats.memory_accesses;
      ++stats.per_register_accesses[static_cast<std::size_t>(rs.step.reg)];
      if (rs.state_changed) {
        ++stats.sc_cost;
        ++stats.per_process_cost[static_cast<std::size_t>(rs.step.pid)];
      }
    }
  }
  if (!stats.per_register_accesses.empty()) {
    stats.hottest_register = static_cast<int>(
        std::max_element(stats.per_register_accesses.begin(),
                         stats.per_register_accesses.end()) -
        stats.per_register_accesses.begin());
  }
  return stats;
}

std::string stats_to_string(const TraceStats& stats) {
  std::ostringstream out;
  out << "steps " << stats.steps << ", memory " << stats.memory_accesses << " (R "
      << stats.reads << " / W " << stats.writes << " / RMW " << stats.rmws << " / C "
      << stats.crits << "), SC cost " << stats.sc_cost << ", free reads "
      << stats.free_reads;
  if (stats.hottest_register >= 0) {
    out << ", hottest register r" << stats.hottest_register << " ("
        << stats.per_register_accesses[static_cast<std::size_t>(stats.hottest_register)]
        << " accesses)";
  }
  return out.str();
}

}  // namespace melb::trace
