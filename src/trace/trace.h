// Execution trace serialization, parsing, diffing and statistics.
//
// Traces are line-based text so they can be diffed, archived, and replayed:
//
//   # melb-trace v1
//   # algorithm: bakery
//   # n: 4
//   W 0 3 17          (write by pid 0 to register 3, value 17)
//   R 1 3 = 17 sc     (read by pid 1 of register 3, observed 17, charged)
//   R 1 4 = 0 free    (uncharged busy-wait read)
//   CAS 2 0 0 1 = 0 sc / SWP 2 0 5 = 1 sc / FAA 2 0 1 = 7 sc
//   C 0 try           (critical step)
//
// Parsing recomputes nothing: a parsed trace can be re-validated against the
// algorithm with sim::validate_steps (the annotations must then match).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/execution.h"

namespace melb::trace {

struct TraceHeader {
  std::string algorithm;
  int n = 0;
};

// Serialize with annotations (read values, SC marks).
std::string to_text(const TraceHeader& header, const sim::Execution& exec);

struct ParsedTrace {
  TraceHeader header;
  sim::Execution exec;

  std::vector<sim::Step> raw_steps() const;
};

// Throws std::invalid_argument on malformed input.
ParsedTrace from_text(const std::string& text);

// First index at which the two executions differ (step, read value, or SC
// mark), or nullopt if identical. `detail` receives a description.
std::optional<std::size_t> first_divergence(const sim::Execution& a, const sim::Execution& b,
                                            std::string* detail = nullptr);

// Aggregate statistics for reports.
struct TraceStats {
  std::uint64_t steps = 0;
  std::uint64_t memory_accesses = 0;
  std::uint64_t sc_cost = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t rmws = 0;
  std::uint64_t crits = 0;
  std::uint64_t free_reads = 0;                   // uncharged busy-wait reads
  std::vector<std::uint64_t> per_process_cost;    // SC cost by pid
  std::vector<std::uint64_t> per_register_accesses;
  int hottest_register = -1;                      // most-accessed register
};

TraceStats compute_stats(const sim::Execution& exec, int n, int num_registers);

std::string stats_to_string(const TraceStats& stats);

}  // namespace melb::trace
