#include "util/chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace melb::util {

namespace {

double transform(double v, bool log_scale) {
  if (!log_scale) return v;
  return std::log2(std::max(v, 1e-12));
}

}  // namespace

std::string render_chart(const std::vector<ChartSeries>& series, const ChartOptions& options) {
  double min_x = std::numeric_limits<double>::infinity(), max_x = -min_x;
  double min_y = std::numeric_limits<double>::infinity(), max_y = -min_y;
  bool any = false;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < std::min(s.xs.size(), s.ys.size()); ++i) {
      const double x = transform(s.xs[i], options.log_x);
      const double y = transform(s.ys[i], options.log_y);
      min_x = std::min(min_x, x);
      max_x = std::max(max_x, x);
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
      any = true;
    }
  }
  if (!any) return "(empty chart)\n";
  if (max_x - min_x < 1e-9) max_x = min_x + 1;
  if (max_y - min_y < 1e-9) max_y = min_y + 1;

  const int w = std::max(8, options.width);
  const int h = std::max(4, options.height);
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  for (const auto& s : series) {
    for (std::size_t i = 0; i < std::min(s.xs.size(), s.ys.size()); ++i) {
      const double x = transform(s.xs[i], options.log_x);
      const double y = transform(s.ys[i], options.log_y);
      const int col = static_cast<int>(std::lround((x - min_x) / (max_x - min_x) * (w - 1)));
      const int row = static_cast<int>(std::lround((y - min_y) / (max_y - min_y) * (h - 1)));
      auto& cell = grid[static_cast<std::size_t>(h - 1 - row)][static_cast<std::size_t>(col)];
      cell = (cell == ' ' || cell == s.marker) ? s.marker : '+';  // '+' = overlap
    }
  }

  std::ostringstream out;
  char buf[64];
  const double top = options.log_y ? std::exp2(max_y) : max_y;
  const double bottom = options.log_y ? std::exp2(min_y) : min_y;
  std::snprintf(buf, sizeof(buf), "%.3g", top);
  out << "  y max " << buf << (options.log_y ? " (log2 scale)" : "") << '\n';
  for (const auto& row : grid) out << "  |" << row << '\n';
  out << "  +" << std::string(static_cast<std::size_t>(w), '-') << '\n';
  std::snprintf(buf, sizeof(buf), "%.3g", bottom);
  out << "  y min " << buf << "; x ";
  std::snprintf(buf, sizeof(buf), "%.3g", options.log_x ? std::exp2(min_x) : min_x);
  out << buf << " .. ";
  std::snprintf(buf, sizeof(buf), "%.3g", options.log_x ? std::exp2(max_x) : max_x);
  out << buf << (options.log_x ? " (log2 scale)" : "") << '\n';
  for (const auto& s : series) out << "  " << s.marker << " = " << s.label << '\n';
  return out.str();
}

}  // namespace melb::util
