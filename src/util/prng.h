// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library (schedulers, permutation sampling, property
// tests) flows through Xoshiro256StarStar so a (seed, parameters) pair fully
// determines every run. We do not use std::mt19937 because its state is large
// and its distributions are not portable across standard library vendors.
//
// Concurrency: there is deliberately no shared or global generator anywhere
// in the library. Code that needs randomness owns a generator seeded through
// derive_seed(), which splits one campaign-level seed into statistically
// independent per-task streams. Because a task's seed is a pure function of
// (base seed, task coordinates) — never of scheduling order or thread id —
// results are identical no matter how many workers execute the tasks.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace melb::util {

// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
// Passes through every 64-bit value exactly once over its period.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Splittable seed derivation. Folds one 64-bit stream coordinate into a base
// seed through two SplitMix64 rounds; the variadic overload folds a whole
// coordinate path, so derive_seed(base, i, j, k) names task (i, j, k) of a
// three-dimensional sweep. Nearby inputs (base, base+1; stream, stream+1)
// land on unrelated seeds, and the derivation is associative with respect to
// partial application: derive_seed(base, i, j) == derive_seed(derive_seed(base, i), j).
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) noexcept {
  SplitMix64 first(base);
  SplitMix64 second(first.next() ^ (stream + 0x9e3779b97f4a7c15ULL));
  return second.next();
}

template <typename... Streams>
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream,
                                    Streams... rest) noexcept {
  return derive_seed(derive_seed(base, stream), static_cast<std::uint64_t>(rest)...);
}

// Xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
// Satisfies UniformRandomBitGenerator so it can be used with <algorithm>.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double unit() noexcept { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace melb::util
