#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace melb::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' || c == '+' ||
          c == 'e' || c == 'E' || c == 'x' || c == '%')) {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells, bool align_numeric) {
    out << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : headers_[c];
      const std::size_t pad = widths[c] - cell.size();
      out << ' ';
      if (align_numeric && looks_numeric(cell)) {
        out << std::string(pad, ' ') << cell;
      } else {
        out << cell << std::string(pad, ' ');
      }
      out << " |";
    }
    out << '\n';
  };

  emit_row(headers_, false);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row, true);
  return out.str();
}

}  // namespace melb::util
