// ASCII growth charts for the experiment reports.
//
// Renders one or more (x, y) series on log₂-log₂ axes so asymptotic slopes
// read directly off the picture: a Θ(n) series has slope 1, Θ(n log n)
// slightly above 1, Θ(n²) slope 2. Benches append these below their tables
// to make "who wins and how the gap grows" visible in plain terminals.
#pragma once

#include <string>
#include <vector>

namespace melb::util {

struct ChartSeries {
  std::string label;
  char marker = '*';
  std::vector<double> xs;
  std::vector<double> ys;
};

struct ChartOptions {
  int width = 72;    // plot columns
  int height = 20;   // plot rows
  bool log_x = true;
  bool log_y = true;
};

// Renders the series to a multi-line string (legend included).
std::string render_chart(const std::vector<ChartSeries>& series,
                         const ChartOptions& options = {});

}  // namespace melb::util
