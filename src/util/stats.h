// Small online statistics helpers for the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace melb::util {

// Welford's online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Ordinary least squares y ≈ slope*x + intercept, with R².
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

inline LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace melb::util
