#include "util/fileio.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/faultpoint.h"

namespace melb::util {

namespace {

std::string errno_text() {
  return errno != 0 ? std::strerror(errno) : "unknown I/O error";
}

// fsync the directory holding `path` so the rename that just landed survives
// a power cut. Best effort: a directory that cannot be opened (or a platform
// without directory fds) degrades to rename-only atomicity.
void sync_parent_dir(const std::string& path) {
#if !defined(_WIN32)
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

bool flush_and_sync(std::FILE* file) {
  if (std::fflush(file) != 0) return false;
#if !defined(_WIN32)
  if (::fsync(fileno(file)) != 0) return false;
#endif
  return true;
}

}  // namespace

std::string write_file_atomic(const std::string& path, const void* data, std::size_t size,
                              const std::string& fault_site) {
  const std::string tmp = path + ".tmp";
  const FaultAction fault = fault_hit(fault_site);
  if (fault == FaultAction::kCrash) fault_crash(fault_site);

  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return "cannot open " + tmp + ": " + errno_text();

  if (fault == FaultAction::kTornWrite) {
    // kill -9 mid-write: half the payload reaches the temp file, nothing is
    // renamed. Recovery must treat the leftover .tmp as garbage.
    std::fwrite(data, 1, size / 2, file);
    std::fflush(file);
    fault_crash(fault_site);
  }

  std::size_t wrote = 0;
  if (fault == FaultAction::kEnospc) {
    wrote = std::fwrite(data, 1, size / 2, file);  // the disk "filled up" here
    errno = 0;
  } else if (size > 0) {
    wrote = std::fwrite(data, 1, size, file);
  }
  const bool write_ok = wrote == size && fault != FaultAction::kEnospc;
  if (!write_ok || !flush_and_sync(file)) {
    const std::string why =
        fault == FaultAction::kEnospc ? "no space left on device (injected)" : errno_text();
    std::fclose(file);
    std::remove(tmp.c_str());
    return "short write to " + tmp + ": " + why;
  }
  if (std::fclose(file) != 0) {
    const std::string why = errno_text();
    std::remove(tmp.c_str());
    return "cannot close " + tmp + ": " + why;
  }

  if (fault_hit(fault_site + ".rename") == FaultAction::kCrash) {
    // The temp file is durable but the rename never happens: the old file
    // (if any) must still be what readers see.
    fault_crash(fault_site + ".rename");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = errno_text();
    std::remove(tmp.c_str());
    return "cannot rename " + tmp + " to " + path + ": " + why;
  }
  sync_parent_dir(path);
  return {};
}

std::string write_file_atomic(const std::string& path, const std::string& contents,
                              const std::string& fault_site) {
  return write_file_atomic(path, contents.data(), contents.size(), fault_site);
}

}  // namespace melb::util
