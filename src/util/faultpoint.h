// Deterministic fault injection for crash-safety tests.
//
// Durability code is only trustworthy if it has been killed at every one of
// its commit boundaries — so the journal, the atomic file writer, and the
// spill path each name their boundaries as *fault points* and consult this
// registry before crossing them. A test (or the MELB_FAULT environment
// variable) arms a site with an action, and the harness can then kill the
// process at exactly that boundary, simulate a full disk, or leave a torn
// half-written temp file, all deterministically and without platform tricks
// like SIGKILL timers.
//
// Spec grammar (comma-separated entries):
//
//   <site>.<index>:<action>[*<count>]
//
//   journal.append.3:crash      crash on the 4th hit of site "journal.append"
//                               (indices are 0-based hit counts)
//   journal.write.0:enospc      the first segment write fails as if the disk
//                               were full
//   journal.write.0:torn-write  half the payload reaches the temp file, then
//                               the process dies (kill -9 mid-write)
//   cell.run.5:flake*2          keyed site: the cell whose key is 5 fails
//                               with a transient error twice, then recovers
//
// Counted sites (fault_hit) interpret <index> as a per-site hit counter:
// the action fires on exactly the <index>-th call, <count> times in a row
// (default once). Keyed sites (fault_key) interpret <index> as an
// identity — the action fires whenever that key is presented, <count> times
// total — which is what makes injected per-cell faults independent of worker
// scheduling: cell 5 flakes no matter which worker runs it or when.
//
// When no spec is armed the fast path is one relaxed atomic load, so fault
// points stay compiled into release builds (CI's crash loop drives the real
// binary, not a test build).
//
// Thread-safety: all functions are thread-safe; registry mutation takes a
// mutex, which only matters while a spec is armed.
#pragma once

#include <cstdint>
#include <string>

namespace melb::util {

enum class FaultAction {
  kNone,
  kCrash,      // die at this boundary as if kill -9 (no flushing, no unwind)
  kEnospc,     // the I/O at this boundary fails as if the disk were full
  kTornWrite,  // write a partial payload, then die (durable-write sites only)
  kFlake,      // fail with a transient, retryable error
};

// Counted site: returns the action armed for this site's current hit index
// (0-based, incremented on every call), or kNone.
FaultAction fault_hit(const std::string& site);

// Keyed site: returns the action armed for (site, key), or kNone. Each match
// consumes one unit of the entry's count.
FaultAction fault_key(const std::string& site, std::uint64_t key);

// Simulates kill -9 at a fault point: writes one line to stderr and calls
// std::_Exit(137) — no stdio flush, no static destructors, no atexit — so
// whatever the process had not made durable is genuinely lost.
[[noreturn]] void fault_crash(const std::string& site);

// Arms `spec` (see grammar above), replacing any previous spec and resetting
// all hit counters; the empty string disarms everything. Throws
// std::invalid_argument on a malformed spec. Tests use this; processes use
// MELB_FAULT, which is parsed on first use (malformed entries there warn on
// stderr and are ignored — a typo must not turn the injection harness into
// the failure).
void set_fault_spec(const std::string& spec);

}  // namespace melb::util
