// Hashing helpers used for automaton state fingerprints and model-checker
// state deduplication. FNV-1a over 64-bit lanes with a final mix; not
// cryptographic, but stable across platforms and good enough for the
// fingerprint-equality checks the SC cost model needs (exact-state compares
// are also available via Automaton::clone for the paranoid paths).
//
// Two hashing styles live here:
//  * Hasher — sequential (order-sensitive) digests for whole-object
//    fingerprints, e.g. Automaton::fingerprint.
//  * zobrist — position-keyed value hashes that compose by XOR, so a
//    system-state digest can be updated in O(1) when one slot changes
//    (XOR out the old slot hash, XOR in the new one). The model checker's
//    incremental state fingerprints are built from these.
#pragma once

#include <cstdint>
#include <initializer_list>

namespace melb::util {

// MurmurHash3/SplitMix64 finalizer: a cheap bijective mixer whose output
// bits each depend on every input bit.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 33)) * 0xff51afd7ed558ccdULL;
  z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53ULL;
  return z ^ (z >> 33);
}

// Zobrist-style slot hash: a pseudo-random 64-bit key for "slot holds value".
// XOR-ing zobrist(slot, v) over all slots of a state yields a digest that is
// order-independent across slots and incrementally updatable — changing slot
// s from a to b maps digest d to d ^ zobrist(s, a) ^ zobrist(s, b).
constexpr std::uint64_t zobrist(std::uint64_t slot, std::uint64_t value) noexcept {
  return mix64(mix64(value + 0x9e3779b97f4a7c15ULL) +
               (slot + 1) * 0xd1b54a32d192ed03ULL);
}

constexpr std::uint64_t zobrist_signed(std::uint64_t slot, std::int64_t value) noexcept {
  return zobrist(slot, static_cast<std::uint64_t>(value));
}

class Hasher {
 public:
  Hasher& add(std::uint64_t value) noexcept {
    state_ ^= mix64(value + 0x9e3779b97f4a7c15ULL + (state_ << 6) + (state_ >> 2));
    return *this;
  }

  Hasher& add_signed(std::int64_t value) noexcept {
    return add(static_cast<std::uint64_t>(value));
  }

  Hasher& add_all(std::initializer_list<std::int64_t> values) noexcept {
    for (auto v : values) add_signed(v);
    return *this;
  }

  std::uint64_t digest() const noexcept { return mix64(state_); }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

}  // namespace melb::util
