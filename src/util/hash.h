// Hashing helpers used for automaton state fingerprints and model-checker
// state deduplication. FNV-1a over 64-bit lanes with a final mix; not
// cryptographic, but stable across platforms and good enough for the
// fingerprint-equality checks the SC cost model needs (exact-state compares
// are also available via Automaton::clone for the paranoid paths).
#pragma once

#include <cstdint>
#include <initializer_list>

namespace melb::util {

class Hasher {
 public:
  Hasher& add(std::uint64_t value) noexcept {
    state_ ^= mix(value + 0x9e3779b97f4a7c15ULL + (state_ << 6) + (state_ >> 2));
    return *this;
  }

  Hasher& add_signed(std::int64_t value) noexcept {
    return add(static_cast<std::uint64_t>(value));
  }

  Hasher& add_all(std::initializer_list<std::int64_t> values) noexcept {
    for (auto v : values) add_signed(v);
    return *this;
  }

  std::uint64_t digest() const noexcept { return mix(state_); }

 private:
  static std::uint64_t mix(std::uint64_t z) noexcept {
    z = (z ^ (z >> 33)) * 0xff51afd7ed558ccdULL;
    z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53ULL;
    return z ^ (z >> 33);
  }

  std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

}  // namespace melb::util
