// Atomic durable file writes.
//
// Report files are parsed by downstream tooling (CI byte-compares, the perf
// gate, the merge subcommand), so a crash mid-write must never leave a
// truncated file under the final name. write_file_atomic writes to
// `<path>.tmp` in the same directory, flushes and fsyncs it, renames it over
// `path` (atomic on POSIX), and fsyncs the parent directory so the rename
// itself is durable. A reader therefore sees either the old bytes or the new
// bytes, never a prefix.
//
// Every call crosses the named fault site (util/faultpoint.h) twice:
// `<site>` before the temp write (actions: crash, enospc, torn-write) and
// `<site>.rename` before the rename (action: crash) — which is how the crash
// harness proves "old or new, never torn" for every report the CLI emits.
#pragma once

#include <cstddef>
#include <string>

namespace melb::util {

// Returns the empty string on success, a ready-to-print diagnostic on
// failure (the temp file is removed; `path` is untouched).
std::string write_file_atomic(const std::string& path, const void* data, std::size_t size,
                              const std::string& fault_site = "file.write");
std::string write_file_atomic(const std::string& path, const std::string& contents,
                              const std::string& fault_site = "file.write");

}  // namespace melb::util
