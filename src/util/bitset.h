// Dynamic bitset used for incremental transitive closure over metastep DAGs.
//
// The lower-bound Construct procedure (paper Fig. 1) issues many reachability
// queries of the form "µ ⋠ m'". We keep, for every metastep, the bitset of
// its ≼-predecessors; edge insertion unions bitsets. This file provides the
// minimal bitset with the operations that workload needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace melb::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const { return bits_; }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_.resize((bits + 63) / 64, 0);
    trim();
  }

  void set(std::size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  bool test(std::size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1ULL; }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  // this |= other. The two bitsets must have the same size.
  void or_with(const DynamicBitset& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

  std::size_t count() const {
    std::size_t total = 0;
    for (auto w : words_) total += static_cast<std::size_t>(__builtin_popcountll(w));
    return total;
  }

  bool any() const {
    for (auto w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  // Index of the lowest set bit, or size() if none.
  std::size_t find_first() const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] != 0) {
        return (w << 6) + static_cast<std::size_t>(__builtin_ctzll(words_[w]));
      }
    }
    return bits_;
  }

  bool operator==(const DynamicBitset& other) const = default;

 private:
  void trim() {
    const std::size_t tail = bits_ & 63;
    if (tail != 0 && !words_.empty()) words_.back() &= (1ULL << tail) - 1;
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace melb::util
