// Permutations of [0, n) and the ≤π order the paper builds executions around.
//
// The paper writes π = (π1, ..., πn) ∈ Sn and says process p_{πi} is "ordered
// lower" than p_{πj} when i < j. We store a permutation as the sequence
// order[k] = id of the process in position k, and keep the inverse array so
// rank queries (π⁻¹) are O(1).
#pragma once

#include <cstddef>
#include <vector>

#include "util/prng.h"

namespace melb::util {

class Permutation {
 public:
  Permutation() = default;

  // Identity permutation on [0, n).
  explicit Permutation(int n);

  // From an explicit ordering: order[k] is the element in position k.
  // Precondition (checked): order is a permutation of 0..n-1.
  explicit Permutation(std::vector<int> order);

  int size() const { return static_cast<int>(order_.size()); }

  // Element in position k (the paper's π_{k+1}).
  int at(int k) const { return order_[static_cast<std::size_t>(k)]; }

  // Position of element v (the paper's π⁻¹(v), 0-based).
  int rank(int v) const { return rank_[static_cast<std::size_t>(v)]; }

  // The paper's i ≤π j: i equals j or i comes before j in π.
  bool leq(int i, int j) const { return rank(i) <= rank(j); }

  const std::vector<int>& order() const { return order_; }

  bool operator==(const Permutation& other) const = default;

  // Inverse permutation: inverted().at(v) == rank(v).
  Permutation inverted() const;

  // Composition: compose(a, b).at(k) == a.at(b.at(k)) (apply b, then a).
  static Permutation compose(const Permutation& a, const Permutation& b);

  // Uniformly random permutation (Fisher–Yates driven by the given PRNG).
  static Permutation random(int n, Xoshiro256StarStar& rng);

  // Reverse of identity: (n-1, n-2, ..., 0).
  static Permutation reversed(int n);

  // All n! permutations in lexicographic order. Intended for n ≤ 8.
  static std::vector<Permutation> all(int n);

 private:
  void rebuild_rank();

  std::vector<int> order_;
  std::vector<int> rank_;
};

}  // namespace melb::util
