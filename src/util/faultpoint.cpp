#include "util/faultpoint.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace melb::util {

namespace {

struct Rule {
  std::string site;
  std::uint64_t index = 0;  // hit index (counted sites) or key (keyed sites)
  FaultAction action = FaultAction::kNone;
  std::uint64_t remaining = 1;  // matches left before the rule goes inert
};

struct Registry {
  std::mutex mu;
  std::vector<Rule> rules;
  std::map<std::string, std::uint64_t> hits;  // per-site call counters
  bool env_checked = false;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during static teardown
  return *r;
}

// One relaxed load decides the common (disarmed) case; everything else is
// behind the registry mutex.
std::atomic<bool> g_armed{false};

std::uint64_t parse_number(const std::string& text, const std::string& spec) {
  if (text.empty()) throw std::invalid_argument("fault spec '" + spec + "': empty number");
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("fault spec '" + spec + "': bad number '" + text + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

FaultAction parse_action(const std::string& name, const std::string& spec) {
  if (name == "crash") return FaultAction::kCrash;
  if (name == "enospc") return FaultAction::kEnospc;
  if (name == "torn-write") return FaultAction::kTornWrite;
  if (name == "flake") return FaultAction::kFlake;
  throw std::invalid_argument("fault spec '" + spec + "': unknown action '" + name +
                              "' (want crash|enospc|torn-write|flake)");
}

// One entry: <site>.<index>:<action>[*<count>].
Rule parse_entry(const std::string& entry) {
  const std::size_t colon = entry.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    throw std::invalid_argument("fault spec '" + entry + "': expected <site>.<index>:<action>");
  }
  Rule rule;
  std::string action = entry.substr(colon + 1);
  const std::size_t star = action.rfind('*');
  if (star != std::string::npos) {
    rule.remaining = parse_number(action.substr(star + 1), entry);
    if (rule.remaining == 0) {
      throw std::invalid_argument("fault spec '" + entry + "': count must be >= 1");
    }
    action = action.substr(0, star);
  }
  rule.action = parse_action(action, entry);
  const std::string target = entry.substr(0, colon);
  const std::size_t dot = target.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == target.size()) {
    throw std::invalid_argument("fault spec '" + entry + "': expected <site>.<index>:<action>");
  }
  rule.site = target.substr(0, dot);
  rule.index = parse_number(target.substr(dot + 1), entry);
  return rule;
}

std::vector<Rule> parse_spec(const std::string& spec) {
  std::vector<Rule> rules;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = spec.find(',', begin);
    const std::string entry = spec.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    if (!entry.empty()) rules.push_back(parse_entry(entry));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return rules;
}

// Lazily consume MELB_FAULT the first time any fault point is consulted (or
// a spec is set). Called with the registry mutex held.
void check_env_locked(Registry& reg) {
  if (reg.env_checked) return;
  reg.env_checked = true;
  const char* env = std::getenv("MELB_FAULT");
  if (env == nullptr || *env == '\0') return;
  const std::string spec(env);
  try {
    reg.rules = parse_spec(spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "melb: ignoring malformed MELB_FAULT: %s\n", e.what());
    reg.rules.clear();
    return;
  }
  if (!reg.rules.empty()) g_armed.store(true, std::memory_order_relaxed);
}

}  // namespace

FaultAction fault_hit(const std::string& site) {
  if (!g_armed.load(std::memory_order_relaxed)) {
    // Disarmed fast path — but MELB_FAULT may not have been read yet.
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    check_env_locked(reg);
    if (reg.rules.empty()) return FaultAction::kNone;
  }
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  const std::uint64_t hit = reg.hits[site]++;
  for (Rule& rule : reg.rules) {
    if (rule.remaining > 0 && rule.index == hit && rule.site == site) {
      --rule.remaining;
      return rule.action;
    }
  }
  return FaultAction::kNone;
}

FaultAction fault_key(const std::string& site, std::uint64_t key) {
  if (!g_armed.load(std::memory_order_relaxed)) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    check_env_locked(reg);
    if (reg.rules.empty()) return FaultAction::kNone;
  }
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (Rule& rule : reg.rules) {
    if (rule.remaining > 0 && rule.index == key && rule.site == site) {
      --rule.remaining;
      return rule.action;
    }
  }
  return FaultAction::kNone;
}

void fault_crash(const std::string& site) {
  std::fprintf(stderr, "melb: fault point '%s' armed with crash — simulating kill -9\n",
               site.c_str());
  std::_Exit(137);  // what a SIGKILLed process reports; nothing is flushed
}

void set_fault_spec(const std::string& spec) {
  std::vector<Rule> rules = parse_spec(spec);  // throws before mutating
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  reg.env_checked = true;  // an explicit spec overrides MELB_FAULT
  reg.rules = std::move(rules);
  reg.hits.clear();
  g_armed.store(!reg.rules.empty(), std::memory_order_relaxed);
}

}  // namespace melb::util
