// ASCII table printer for the benchmark report binaries.
//
// Each bench prints the rows/series the corresponding EXPERIMENTS.md entry
// records; this formatter keeps those reports aligned and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace melb::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Render with column alignment; numeric-looking cells are right-aligned.
  std::string to_string() const;

  static std::string fmt(double value, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace melb::util
