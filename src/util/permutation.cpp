#include "util/permutation.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace melb::util {

Permutation::Permutation(int n) : order_(static_cast<std::size_t>(n)) {
  std::iota(order_.begin(), order_.end(), 0);
  rebuild_rank();
}

Permutation::Permutation(std::vector<int> order) : order_(std::move(order)) {
  const int n = static_cast<int>(order_.size());
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (int v : order_) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) {
      throw std::invalid_argument("Permutation: order is not a permutation of [0,n)");
    }
    seen[static_cast<std::size_t>(v)] = true;
  }
  rebuild_rank();
}

void Permutation::rebuild_rank() {
  rank_.assign(order_.size(), 0);
  for (std::size_t k = 0; k < order_.size(); ++k) {
    rank_[static_cast<std::size_t>(order_[k])] = static_cast<int>(k);
  }
}

Permutation Permutation::inverted() const {
  return Permutation(rank_);
}

Permutation Permutation::compose(const Permutation& a, const Permutation& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("Permutation::compose: size mismatch");
  }
  std::vector<int> order(static_cast<std::size_t>(a.size()));
  for (int k = 0; k < a.size(); ++k) {
    order[static_cast<std::size_t>(k)] = a.at(b.at(k));
  }
  return Permutation(std::move(order));
}

Permutation Permutation::random(int n, Xoshiro256StarStar& rng) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (int k = n - 1; k > 0; --k) {
    const auto j = static_cast<int>(rng.below(static_cast<std::uint64_t>(k) + 1));
    std::swap(order[static_cast<std::size_t>(k)], order[static_cast<std::size_t>(j)]);
  }
  return Permutation(std::move(order));
}

Permutation Permutation::reversed(int n) {
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) order[static_cast<std::size_t>(k)] = n - 1 - k;
  return Permutation(std::move(order));
}

std::vector<Permutation> Permutation::all(int n) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<Permutation> result;
  do {
    result.emplace_back(order);
  } while (std::next_permutation(order.begin(), order.end()));
  return result;
}

}  // namespace melb::util
