// LEB128 variable-length integers.
//
// The paper's encoding-length theorem (Thm 6.2) charges O(log k) bits for a
// metastep signature with k participants. The ASCII table format of Fig. 2 is
// convenient for debugging but inflates constants, so the encoder also emits a
// binary form whose signature counts are varints; the benches report both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace melb::util {

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

// Reads a varint at `pos`, advancing it. Returns nullopt on truncated input.
inline std::optional<std::uint64_t> get_varint(const std::vector<std::uint8_t>& in,
                                               std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (pos < in.size() && shift < 64) {
    const std::uint8_t byte = in[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return std::nullopt;
}

inline std::size_t varint_size(std::uint64_t value) {
  std::size_t bytes = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++bytes;
  }
  return bytes;
}

}  // namespace melb::util
