#include "check/state_set.h"

#include <algorithm>
#include <cassert>

namespace melb::check {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 64;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

FlatStateSet::FlatStateSet(std::size_t min_capacity) {
  const std::size_t cap = round_up_pow2(min_capacity);
  fps_.assign(cap, 0);
  idxs_.assign(cap, kEmpty);
  mask_ = cap - 1;
}

void FlatStateSet::commit(std::uint64_t fp, std::uint32_t idx) {
  std::size_t slot = slot_of(fp);
  while (idxs_[slot] != kEmpty) {
    if (fps_[slot] == fp) {
      idxs_[slot] = idx;
      return;
    }
    slot = (slot + 1) & mask_;
  }
  assert(false && "commit of a fingerprint that was never reserved");
}

void FlatStateSet::clear() {
  // Slot emptiness is defined by idxs_ == kEmpty alone (fps_ is only read
  // for occupied slots), so the 8-byte array keeps its stale contents — the
  // wipe runs per stripe at every DDD level boundary.
  std::fill(idxs_.begin(), idxs_.end(), kEmpty);
  size_ = 0;
  ++generation_;
}

void FlatStateSet::grow() {
  ++generation_;
  std::vector<std::uint64_t> old_fps = std::move(fps_);
  std::vector<std::uint32_t> old_idxs = std::move(idxs_);
  const std::size_t cap = old_fps.size() * 2;
  fps_.assign(cap, 0);
  idxs_.assign(cap, kEmpty);
  mask_ = cap - 1;
  for (std::size_t i = 0; i < old_fps.size(); ++i) {
    if (old_idxs[i] == kEmpty) continue;
    std::size_t slot = slot_of(old_fps[i]);
    while (idxs_[slot] != kEmpty) slot = (slot + 1) & mask_;
    fps_[slot] = old_fps[i];
    idxs_[slot] = old_idxs[i];
  }
}

StripedStateSet::StripedStateSet() : stripes_(kStripes) {}

void StripedStateSet::clear() {
  for (auto& s : stripes_) s.clear();
}

std::size_t StripedStateSet::size() const {
  std::size_t total = 0;
  for (const auto& s : stripes_) total += s.size();
  return total;
}

std::size_t StripedStateSet::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& s : stripes_) total += s.memory_bytes();
  return total;
}

}  // namespace melb::check
