#include "check/intern.h"

#include <utility>

#include "util/hash.h"

namespace melb::check {

std::uint32_t AutomatonPool::intern_initial(std::unique_ptr<sim::Automaton> automaton) {
  const MaybeLock lock(mutex());
  return intern_locked(std::move(automaton));
}

std::pair<std::uint32_t, std::uint64_t> AutomatonPool::intern_external(
    std::unique_ptr<sim::Automaton> automaton) {
  const MaybeLock lock(mutex());
  const std::uint32_t id = intern_locked(std::move(automaton));
  return {id, records_[id].zkey};
}

std::uint32_t AutomatonPool::intern_locked(std::unique_ptr<sim::Automaton> automaton) {
  const std::uint64_t fp = automaton->fingerprint();
  const auto it = by_fp_.find(fp);
  if (it != by_fp_.end()) return it->second;  // flyweight hit: drop the clone

  Record record;
  record.zkey = util::zobrist(zobrist_slot_, fp);
  record.done = automaton->done();
  if (!record.done) record.step = automaton->propose();
  record.automaton = std::move(automaton);
  const auto id = static_cast<std::uint32_t>(records_.size());
  records_.push_back(std::move(record));
  by_fp_.emplace(fp, id);
  return id;
}

std::uint32_t AutomatonPool::advance_miss(std::uint32_t id, sim::Value read_value) {
  auto advanced = records_[id].automaton->clone();
  advanced->advance(read_value);
  const std::uint32_t next = intern_locked(std::move(advanced));
  Record& record = records_[id];  // stable storage: still valid after intern
  if (record.inline_count < record.inline_next.size()) {
    record.inline_next[record.inline_count++] = {read_value, next};
  } else {
    record.spill_next.emplace_back(read_value, next);
  }
  return next;
}

std::size_t AutomatonPool::size() const {
  const MaybeLock lock(mutex());
  return records_.size();
}

std::size_t AutomatonPool::memory_bytes() const {
  const MaybeLock lock(mutex());
  // The automaton objects' own footprints are opaque; count the pool's
  // bookkeeping.
  std::size_t bytes = records_.memory_bytes() +
                      by_fp_.size() * (sizeof(std::uint64_t) + sizeof(std::uint32_t) +
                                       2 * sizeof(void*));
  for (std::size_t i = 0; i < records_.size(); ++i) {
    bytes += records_[i].spill_next.capacity() * sizeof(std::pair<sim::Value, std::uint32_t>);
  }
  return bytes;
}

std::size_t RegisterFilePool::size() const {
  const MaybeLock lock(mutex());
  return fps_.size();
}

std::size_t RegisterFilePool::memory_bytes() const {
  const MaybeLock lock(mutex());
  return values_.capacity() * sizeof(sim::Value) + fps_.capacity() * sizeof(std::uint64_t) +
         collision_next_.capacity() * sizeof(std::uint32_t) + by_fp_.memory_bytes();
}

}  // namespace melb::check
