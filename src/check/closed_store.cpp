#include "check/closed_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "util/faultpoint.h"

namespace melb::check {

namespace {

// 64-bit-offset seek/tell: a spill file legitimately exceeds 2 GiB (the
// regime this feature exists for), which overflows the long-based
// std::fseek/std::ftell on LLP64 and 32-bit platforms.
#if defined(_WIN32)
int seek64(std::FILE* file, std::int64_t offset, int whence) {
  return _fseeki64(file, offset, whence);
}
std::int64_t tell64(std::FILE* file) { return _ftelli64(file); }
#else
int seek64(std::FILE* file, std::int64_t offset, int whence) {
  return fseeko(file, static_cast<off_t>(offset), whence);
}
std::int64_t tell64(std::FILE* file) { return static_cast<std::int64_t>(ftello(file)); }
#endif

}  // namespace

// ---------------------------------------------------------------------------
// SpillFile.
// ---------------------------------------------------------------------------

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
}

std::int64_t SpillFile::append(const void* data, std::size_t bytes) {
  if (!error_.empty()) return -1;  // the spill target already failed once
  if (file_ == nullptr) {
    if (open_failed_) return -1;
    file_ = std::tmpfile();
    if (file_ == nullptr) {
      open_failed_ = true;  // no temp storage: stay in RAM, never abort
      return -1;
    }
  }
  if (seek64(file_, 0, SEEK_END) != 0) return -1;
  const std::int64_t offset = tell64(file_);
  if (offset < 0) return -1;
  const util::FaultAction injected = util::fault_hit("spill.append");
  if (injected == util::FaultAction::kCrash) util::fault_crash("spill.append");
  if (injected == util::FaultAction::kEnospc) {
    // Simulate the disk filling up mid-chunk: some bytes landed, the rest
    // did not — exactly what a real short fwrite leaves behind.
    std::fwrite(data, 1, bytes / 2, file_);
    record_write_failure("no space left on device (injected)", offset);
    return -1;
  }
  errno = 0;
  if (std::fwrite(data, 1, bytes, file_) != bytes) {
    record_write_failure(errno != 0 ? std::strerror(errno) : "short write", offset);
    return -1;
  }
  bytes_written_ += bytes;
  return offset;
}

void SpillFile::record_write_failure(const std::string& why, std::int64_t offset) {
  error_ = "spill write failed: " + why;
  std::fprintf(stderr,
               "melb::check::SpillFile: %s — keeping chunks in RAM (results stay "
               "correct, but the memory budget cannot be honored)\n",
               error_.c_str());
  // Drop the partially-written tail so the file holds exactly the chunks
  // whose offsets were handed out; a torn chunk must never alias a future
  // offset. If the truncate itself fails it is harmless: appends are now
  // refused, so no offset at or past `offset` will ever be read.
#if !defined(_WIN32)
  std::fflush(file_);
  if (::ftruncate(fileno(file_), static_cast<off_t>(offset)) != 0) {
    // See above: reads only target offsets returned by successful appends.
  }
#else
  (void)offset;
#endif
}

void SpillFile::read(std::int64_t offset, void* out, std::size_t bytes) const {
  // Offsets only come from successful append()s, so file_ is open here. A
  // failed read-back would silently corrupt a counterexample trace or the
  // progress verdict — for a verification oracle that is strictly worse
  // than dying loudly, so this aborts in every build type.
  if (seek64(file_, offset, SEEK_SET) != 0 || std::fread(out, 1, bytes, file_) != bytes) {
    std::fprintf(stderr,
                 "melb::check::SpillFile: failed to read %zu spilled bytes at "
                 "offset %lld — cannot continue without corrupting results\n",
                 bytes, static_cast<long long>(offset));
    std::abort();
  }
}

// ---------------------------------------------------------------------------
// ClosedStore.
// ---------------------------------------------------------------------------

void ClosedStore::append(std::uint32_t parent, std::uint8_t pid, std::uint8_t witness) {
  const std::size_t offset = (size_ & (kChunkEntries - 1)) * entry_bytes_;
  if (offset == 0) {
    chunks_.emplace_back();
    chunks_.back().data = std::make_unique<std::uint8_t[]>(kChunkEntries * entry_bytes_);
  }
  std::uint8_t* slot = chunks_.back().data.get() + offset;
  std::memcpy(slot, &parent, sizeof(parent));
  slot[4] = pid;
  if (entry_bytes_ > kEntryBytes) slot[5] = witness;
  ++size_;
}

ClosedStore::Entry ClosedStore::entry(std::uint64_t idx) const {
  const std::size_t chunk = static_cast<std::size_t>(idx >> kChunkBits);
  const std::size_t offset = static_cast<std::size_t>(idx & (kChunkEntries - 1)) * entry_bytes_;
  std::uint8_t raw[kEntryBytes + 1];
  if (chunks_[chunk].data != nullptr) {
    std::memcpy(raw, chunks_[chunk].data.get() + offset, entry_bytes_);
  } else {
    spill_file_->read(chunks_[chunk].spill_offset + static_cast<std::int64_t>(offset), raw,
                      entry_bytes_);
  }
  Entry e;
  std::memcpy(&e.parent, raw, sizeof(e.parent));
  e.pid = raw[4];
  if (entry_bytes_ > kEntryBytes) e.witness = raw[5];
  return e;
}

bool ClosedStore::has_spillable_chunk() const {
  // Only full chunks spill; the tail chunk is still being appended to.
  return !chunks_.empty() && next_spill_ + 1 < chunks_.size();
}

std::uint64_t ClosedStore::spill_oldest(SpillFile& file, std::size_t max_chunks) {
  std::uint64_t freed = 0;
  while (max_chunks-- > 0 && has_spillable_chunk()) {
    Chunk& chunk = chunks_[next_spill_];
    const std::int64_t offset = file.append(chunk.data.get(), kChunkEntries * entry_bytes_);
    if (offset < 0) return freed;  // spill target unavailable: keep in RAM
    chunk.spill_offset = offset;
    chunk.data.reset();
    spill_file_ = &file;
    ++next_spill_;
    freed += kChunkEntries * entry_bytes_;
  }
  return freed;
}

std::uint64_t ClosedStore::memory_bytes() const {
  const std::size_t resident = chunks_.size() - next_spill_;
  return resident * kChunkEntries * entry_bytes_ + chunks_.capacity() * sizeof(Chunk);
}

// ---------------------------------------------------------------------------
// EdgeStore.
// ---------------------------------------------------------------------------

std::uint8_t* EdgeStore::reserve(std::size_t bytes) {
  if (chunks_.empty() || chunks_.back().used + bytes > kChunkBytes ||
      chunks_.back().data == nullptr) {
    chunks_.emplace_back();
    Chunk& chunk = chunks_.back();
    chunk.data = std::make_unique<std::uint8_t[]>(kChunkBytes);
    // Decode state at the chunk's first byte: the caller has not yet updated
    // last_from_/next_new_ for the edge it is about to write.
    chunk.start_from = last_from_;
    chunk.start_new = next_new_;
  }
  return chunks_.back().data.get() + chunks_.back().used;
}

void EdgeStore::append(std::uint32_t from, std::uint32_t to, bool to_is_new) {
  // Worst case: two 5-byte varints.
  std::uint8_t buf[10];
  std::size_t len = 0;
  const std::uint64_t head =
      (static_cast<std::uint64_t>(from - last_from_) << 1) | (to_is_new ? 0 : 1);
  std::uint64_t v = head;
  while (v >= 0x80) {
    buf[len++] = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  buf[len++] = static_cast<std::uint8_t>(v);
  if (!to_is_new) {
    const auto delta =
        static_cast<std::int64_t>(to) - static_cast<std::int64_t>(from);
    v = (static_cast<std::uint64_t>(delta) << 1) ^
        static_cast<std::uint64_t>(delta >> 63);
    while (v >= 0x80) {
      buf[len++] = static_cast<std::uint8_t>(v) | 0x80;
      v >>= 7;
    }
    buf[len++] = static_cast<std::uint8_t>(v);
  }
  std::uint8_t* out = reserve(len);
  std::memcpy(out, buf, len);
  chunks_.back().used += static_cast<std::uint32_t>(len);
  ++chunks_.back().edges;
  last_from_ = from;
  if (to_is_new) next_new_ = to + 1;  // targets of new edges are consecutive
  ++count_;
}

bool EdgeStore::has_spillable_chunk() const {
  return !chunks_.empty() && next_spill_ + 1 < chunks_.size();
}

std::uint64_t EdgeStore::spill_oldest(SpillFile& file, std::size_t max_chunks) {
  std::uint64_t freed = 0;
  while (max_chunks-- > 0 && has_spillable_chunk()) {
    Chunk& chunk = chunks_[next_spill_];
    const std::int64_t offset = file.append(chunk.data.get(), chunk.used);
    if (offset < 0) return freed;
    chunk.spill_offset = offset;
    chunk.data.reset();
    file_ = &file;
    ++next_spill_;
    freed += kChunkBytes;
  }
  return freed;
}

std::uint64_t EdgeStore::memory_bytes() const {
  const std::size_t resident = chunks_.size() - next_spill_;
  return resident * kChunkBytes + chunks_.capacity() * sizeof(Chunk);
}

// ---------------------------------------------------------------------------
// FingerprintRuns.
// ---------------------------------------------------------------------------

void FingerprintRuns::append_run(const std::uint64_t* fps, const std::uint32_t* idxs,
                                 std::size_t count) {
  runs_.emplace_back();
  Run& run = runs_.back();
  run.chunks.reserve((count + kChunkRecords - 1) / kChunkRecords);
  for (std::size_t begin = 0; begin < count; begin += kChunkRecords) {
    const std::size_t records = std::min(kChunkRecords, count - begin);
    run.chunks.emplace_back();
    Chunk& chunk = run.chunks.back();
    chunk.records = static_cast<std::uint32_t>(records);
    chunk.first_fp = fps[begin];
    chunk.last_fp = fps[begin + records - 1];
    chunk.data = std::make_unique<std::uint8_t[]>(records * kRecordBytes);
    for (std::size_t r = 0; r < records; ++r) {
      std::memcpy(chunk.data.get() + r * kRecordBytes, fps + begin + r,
                  sizeof(std::uint64_t));
      std::memcpy(chunk.data.get() + r * kRecordBytes + sizeof(std::uint64_t),
                  idxs + begin + r, sizeof(std::uint32_t));
    }
  }
  total_ += count;
  resident_data_bytes_ += count * kRecordBytes;
  chunk_struct_bytes_ += run.chunks.capacity() * sizeof(Chunk);
}

bool FingerprintRuns::has_spillable_chunk() const {
  for (std::size_t r = spill_run_; r < runs_.size(); ++r) {
    const std::size_t first = r == spill_run_ ? spill_chunk_ : 0;
    if (first < runs_[r].chunks.size()) return true;
  }
  return false;
}

std::uint64_t FingerprintRuns::spill_oldest(SpillFile& file, std::size_t max_chunks) {
  std::uint64_t freed = 0;
  while (max_chunks > 0 && spill_run_ < runs_.size()) {
    Run& run = runs_[spill_run_];
    if (spill_chunk_ >= run.chunks.size()) {
      ++spill_run_;
      spill_chunk_ = 0;
      continue;
    }
    Chunk& chunk = run.chunks[spill_chunk_];
    const std::size_t bytes = chunk.records * kRecordBytes;
    const std::int64_t offset = file.append(chunk.data.get(), bytes);
    if (offset < 0) return freed;  // spill target unavailable: keep in RAM
    chunk.spill_offset = offset;
    chunk.data.reset();
    file_ = &file;
    resident_data_bytes_ -= bytes;
    ++spill_chunk_;
    --max_chunks;
    freed += bytes;
  }
  return freed;
}

std::uint64_t FingerprintRuns::memory_bytes() const {
  return runs_.capacity() * sizeof(Run) + chunk_struct_bytes_ + resident_data_bytes_;
}

}  // namespace melb::check
