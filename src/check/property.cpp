#include "check/property.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "check/closed_store.h"
#include "cost/cost_model.h"

namespace melb::check {

namespace {

using sim::CritKind;
using sim::Pid;

// ---------------------------------------------------------------------------
// mutex — candidate vetting, byte-identical to the pre-property-engine check.

class MutexProperty final : public Property {
 public:
  std::string name() const override { return "mutex"; }
  bool vets_candidates() const override { return true; }

  const char* vet(const TransitionView& t) override {
    if (t.in_cs > 1) {
      violated_ = true;
      return "mutual exclusion violated: two processes in the critical section";
    }
    return nullptr;
  }

  PropertyReport report() const override {
    PropertyReport r;
    r.property = name();
    r.holds = !violated_;
    r.evaluated = true;  // vetting runs over the whole explored fragment
    if (violated_) r.detail = "two processes in the critical section";
    return r;
  }

 private:
  bool violated_ = false;
};

// ---------------------------------------------------------------------------
// progress — the external-memory reverse-BFS pass, unchanged semantics: from
// every reachable state some terminal state (all participants done) must be
// reachable; the first unmarked state (lowest index) is the livelock witness.

class ProgressProperty final : public Property {
 public:
  std::string name() const override { return "progress"; }
  bool needs_edges() const override { return true; }

  std::optional<PropertyViolation> finish(EngineView& view) override {
    evaluated_ = true;
    const std::uint64_t total = view.num_states();
    // One bit per state plus chunk-sized streaming buffers — no predecessor
    // CSR. Each sweep streams the compressed edge list in REVERSE append
    // order: `from` is non-increasing within a sweep and almost all edges
    // point forward (from < to), so a marking propagates down an entire
    // forward chain in a single sweep; extra sweeps are only forced by back
    // edges. Runs until a sweep changes nothing or everything is marked.
    const std::size_t words = static_cast<std::size_t>((total + 63) / 64);
    std::vector<std::uint64_t> can_finish(words, 0);
    const auto is_marked = [&](std::uint32_t idx) {
      return ((can_finish[idx >> 6] >> (idx & 63)) & 1u) != 0;
    };
    std::uint64_t marked = 0;
    for (const std::uint32_t t : view.terminals()) {
      can_finish[t >> 6] |= std::uint64_t{1} << (t & 63);
      ++marked;
    }
    // Typed store: the per-edge callback inlines into the chunk decode loop
    // (this sweep touches every edge once per iteration — the hottest loop
    // after exploration itself).
    const EdgeStore& edges = *view.edge_store();
    std::uint64_t scratch_peak = 0;
    bool changed = marked > 0;
    while (changed && marked < total) {
      changed = false;
      const std::uint64_t scratch =
          edges.for_each_reverse([&](std::uint32_t from, std::uint32_t to) {
            if (is_marked(to) && !is_marked(from)) {
              can_finish[from >> 6] |= std::uint64_t{1} << (from & 63);
              ++marked;
              changed = true;
            }
          });
      scratch_peak = std::max(scratch_peak, scratch);
    }
    view.note_pass_bytes(words * sizeof(std::uint64_t) + scratch_peak);
    if (marked == total) return std::nullopt;
    for (std::uint32_t idx = 0; idx < total; ++idx) {
      if (!is_marked(idx)) {
        violated_ = true;
        PropertyViolation v;
        v.message = "progress violated: state with no path to termination (livelock)";
        v.state = idx;
        return v;
      }
    }
    return std::nullopt;
  }

  PropertyReport report() const override {
    PropertyReport r;
    r.property = name();
    r.holds = !violated_;
    r.evaluated = evaluated_;
    if (violated_) r.detail = "livelocked state reachable";
    return r;
  }

 private:
  bool evaluated_ = false;
  bool violated_ = false;
};

// ---------------------------------------------------------------------------
// Shared per-state bitmask payload: one bit per (state, pid), appended in
// state-index order (is_new transitions arrive exactly once per state, in
// index order). stride = ceil(n/8) bytes per state.

class PidBitTable {
 public:
  void init(int n) {
    stride_ = static_cast<std::size_t>((n + 7) / 8);
    bits_.assign(stride_, 0);  // root state: all clear
  }
  void append_from(std::uint32_t parent, Pid set_bit /* -1 = none */) {
    const std::size_t base = bits_.size();
    bits_.resize(base + stride_);
    std::memcpy(bits_.data() + base,
                bits_.data() + static_cast<std::size_t>(parent) * stride_, stride_);
    if (set_bit >= 0) {
      bits_[base + static_cast<std::size_t>(set_bit >> 3)] |=
          static_cast<std::uint8_t>(1u << (set_bit & 7));
    }
  }
  bool test(std::uint32_t state, Pid pid) const {
    return (bits_[static_cast<std::size_t>(state) * stride_ +
                  static_cast<std::size_t>(pid >> 3)] >>
            (pid & 7)) &
           1;
  }
  std::uint64_t memory_bytes() const { return bits_.capacity(); }

 private:
  std::size_t stride_ = 1;
  std::vector<std::uint8_t> bits_;
};

// ---------------------------------------------------------------------------
// lockout — per-pid starvation freedom. A participating process p is locked
// out iff some reachable fair cycle keeps p forever short of its CS: an SCC
// of the subgraph of states where p has not yet entered, containing at least
// one internal edge, on which every participating not-yet-done process takes
// a step (zero-progress spins count — they are steps). Self-loop transitions
// are therefore part of the property's own edge log even though the engine's
// edge store elides them.

class LockoutProperty final : public Property {
 public:
  explicit LockoutProperty(int n) : n_(n) {}

  std::string name() const override { return "lockout"; }
  bool wants_transitions() const override { return true; }
  bool wants_self_loops() const override { return true; }
  bool supports_symmetry() const override { return false; }

  void on_begin(const EngineView& view) override {
    (void)view;
    entered_.init(n_);
    done_.init(n_);
  }

  void on_transition(const TransitionView& t) override {
    if (t.is_new) {
      const bool enter = t.is_crit && t.crit == CritKind::kEnter;
      const bool rem = t.is_crit && t.crit == CritKind::kRem;
      entered_.append_from(t.parent, enter ? t.pid : -1);
      done_.append_from(t.parent, rem ? t.pid : -1);
    }
    edge_from_.push_back(t.parent);
    edge_to_.push_back(t.self_loop ? t.parent : t.target);
    edge_pid_.push_back(static_cast<std::uint8_t>(t.pid));
  }

  std::optional<PropertyViolation> finish(EngineView& view) override;

  PropertyReport report() const override {
    PropertyReport r;
    r.property = name();
    r.holds = !violated_;
    r.evaluated = evaluated_;
    r.detail = detail_;
    return r;
  }

  std::uint64_t memory_bytes() const override {
    return entered_.memory_bytes() + done_.memory_bytes() +
           edge_from_.capacity() * sizeof(std::uint32_t) +
           edge_to_.capacity() * sizeof(std::uint32_t) + edge_pid_.capacity();
  }

 private:
  const int n_;
  PidBitTable entered_;  // bit (s, p): p has performed enter on every path to s
  PidBitTable done_;     // bit (s, p): p has performed rem
  std::vector<std::uint32_t> edge_from_, edge_to_;
  std::vector<std::uint8_t> edge_pid_;
  bool evaluated_ = false;
  bool violated_ = false;
  std::string detail_;
};

std::optional<PropertyViolation> LockoutProperty::finish(EngineView& view) {
  evaluated_ = true;
  const auto states = static_cast<std::uint32_t>(view.num_states());
  const std::size_t edges = edge_from_.size();

  // CSR over the property's own edge log (self-loops included), built once
  // and filtered per pid below.
  std::vector<std::uint32_t> offset(static_cast<std::size_t>(states) + 1, 0);
  for (std::size_t e = 0; e < edges; ++e) ++offset[edge_from_[e] + 1];
  for (std::uint32_t s = 0; s < states; ++s) offset[s + 1] += offset[s];
  std::vector<std::uint32_t> slot(offset.begin(), offset.end() - 1);
  std::vector<std::uint32_t> csr_to(edges);
  std::vector<std::uint8_t> csr_pid(edges);
  for (std::size_t e = 0; e < edges; ++e) {
    const std::uint32_t at = slot[edge_from_[e]]++;
    csr_to[at] = edge_to_[e];
    csr_pid[at] = edge_pid_[e];
  }

  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> index(states), lowlink(states), comp(states);
  std::vector<std::uint8_t> on_stack(states);
  std::vector<std::uint32_t> stack;
  struct Frame {
    std::uint32_t v;
    std::uint32_t edge;  // cursor into [offset[v], offset[v+1])
  };
  std::vector<Frame> dfs;
  // Per-SCC fairness bookkeeping, indexed by component id.
  std::vector<std::uint64_t> comp_present;  // pids with an internal edge
  std::vector<std::uint32_t> comp_min, comp_edges;

  std::optional<PropertyViolation> best;
  for (Pid p = 0; p < n_; ++p) {
    if (!view.participates(p)) continue;
    // Subgraph for p: states where p has not yet entered.
    const auto in_sub = [&](std::uint32_t s) { return !entered_.test(s, p); };
    std::fill(index.begin(), index.end(), kUnvisited);
    std::uint32_t next_index = 0, next_comp = 0;
    stack.clear();
    std::fill(on_stack.begin(), on_stack.end(), 0);

    for (std::uint32_t root = 0; root < states; ++root) {
      if (!in_sub(root) || index[root] != kUnvisited) continue;
      dfs.push_back({root, offset[root]});
      index[root] = lowlink[root] = next_index++;
      stack.push_back(root);
      on_stack[root] = 1;
      while (!dfs.empty()) {
        Frame& f = dfs.back();
        if (f.edge < offset[f.v + 1]) {
          const std::uint32_t w = csr_to[f.edge++];
          if (!in_sub(w)) continue;
          if (index[w] == kUnvisited) {
            index[w] = lowlink[w] = next_index++;
            stack.push_back(w);
            on_stack[w] = 1;
            dfs.push_back({w, offset[w]});
          } else if (on_stack[w]) {
            lowlink[f.v] = std::min(lowlink[f.v], index[w]);
          }
        } else {
          const std::uint32_t v = f.v;
          dfs.pop_back();
          if (!dfs.empty()) {
            lowlink[dfs.back().v] = std::min(lowlink[dfs.back().v], lowlink[v]);
          }
          if (lowlink[v] == index[v]) {  // v is an SCC root
            for (;;) {
              const std::uint32_t w = stack.back();
              stack.pop_back();
              on_stack[w] = 0;
              comp[w] = next_comp;
              if (w == v) break;
            }
            ++next_comp;
          }
        }
      }
    }

    comp_present.assign(next_comp, 0);
    comp_min.assign(next_comp, kUnvisited);
    comp_edges.assign(next_comp, 0);
    for (std::uint32_t s = 0; s < states; ++s) {
      if (!in_sub(s) || index[s] == kUnvisited) continue;
      comp_min[comp[s]] = std::min(comp_min[comp[s]], s);
      for (std::uint32_t e = offset[s]; e < offset[s + 1]; ++e) {
        const std::uint32_t t = csr_to[e];
        if (in_sub(t) && comp[t] == comp[s]) {
          ++comp_edges[comp[s]];
          comp_present[comp[s]] |= std::uint64_t{1} << csr_pid[e];
        }
      }
    }

    for (std::uint32_t c = 0; c < next_comp; ++c) {
      if (comp_edges[c] == 0) continue;  // no cycle through this SCC
      // Fair iff every participating process not yet done at the SCC (done
      // status is constant across an SCC: done-ness is monotone and SCC
      // states are mutually reachable) steps on it. p itself is never done
      // pre-enter, so fairness already requires p to keep stepping.
      const std::uint32_t rep = comp_min[c];
      bool fair = true;
      for (Pid q = 0; q < n_ && fair; ++q) {
        if (!view.participates(q) || done_.test(rep, q)) continue;
        if ((comp_present[c] & (std::uint64_t{1} << q)) == 0) fair = false;
      }
      if (!fair) continue;
      if (!best || rep < best->state) {
        PropertyViolation v;
        v.message = "lockout violated: process " + std::to_string(p) +
                    " starves on a fair cycle without ever entering the "
                    "critical section";
        v.state = rep;
        v.append_step_of = p;
        best = std::move(v);
      }
      break;  // lowest-index witness for this pid found; try remaining pids
    }
  }

  view.note_pass_bytes(
      offset.capacity() * sizeof(std::uint32_t) + slot.capacity() * sizeof(std::uint32_t) +
      csr_to.capacity() * sizeof(std::uint32_t) + csr_pid.capacity() +
      (index.capacity() + lowlink.capacity() + comp.capacity()) * sizeof(std::uint32_t) +
      on_stack.capacity() + stack.capacity() * sizeof(std::uint32_t) +
      dfs.capacity() * sizeof(Frame));
  if (best) {
    violated_ = true;
    detail_ = best->message;
  }
  return best;
}

// ---------------------------------------------------------------------------
// rmr-bound — certified worst-case cost to enter the CS over all reachable
// paths, per history-independent cost model (state-change / total-accesses /
// dsm). Longest-path fixpoint over the engine's recorded edge stream with
// one accumulator per (state, pid); D[t][sigma_w(q)] >= D[s][q] + c_q(step)
// for every edge, where w is the symmetry witness (identity without
// --symmetry). A simple path costs at most states-1, so any accumulator
// reaching num_states proves a positive-cost cycle: the bound is infinite
// ("unbounded") — as is any positive-cost self-loop at a state where the
// spinning process has not yet entered (a busy-wait the model charges, the
// Alur–Taubenfeld regime for total-accesses; a remote spin under dsm).

class RmrBoundProperty final : public Property {
 public:
  RmrBoundProperty(std::string model_name, std::unique_ptr<cost::CostModel> model,
                   int n)
      : model_name_(std::move(model_name)), model_(std::move(model)), n_(n) {}

  std::string name() const override { return "rmr-bound:" + model_name_; }
  bool needs_edges() const override { return true; }
  bool wants_transitions() const override { return true; }
  bool wants_self_loops() const override { return true; }

  void on_begin(const EngineView& view) override {
    (void)view;
    entered_.init(n_);
  }

  void on_transition(const TransitionView& t) override {
    const std::uint8_t cost =
        t.memory_access
            ? static_cast<std::uint8_t>(model_->step_cost(t.pid, t.reg, t.local_change) != 0)
            : 0;
    const bool enter = t.is_crit && t.crit == CritKind::kEnter;
    if (t.self_loop) {
      // Not part of the engine's edge stream. A true self-loop with positive
      // cost is an immediately unbounded spin (if the spinner is still short
      // of its CS); a pseudo self-loop (witness != 0: the successor is a
      // different concrete state in the parent's orbit) joins the fixpoint
      // as an explicit witness self-edge instead.
      if (t.witness != 0) {
        orbit_edges_.push_back({t.parent, static_cast<std::uint8_t>(t.pid),
                                t.witness, cost});
      } else if (cost != 0 && !entered_.test(t.parent, t.pid)) {
        spin_unbounded_ = true;
      }
      return;
    }
    if (t.is_new) entered_.append_from(t.parent, enter ? t.pid : -1);
    // Side bytes zip 1:1 with the engine's edge stream (same append order):
    // bits 0-5 pid, bit 6 unit cost, bit 7 enter step.
    side_.push_back(static_cast<std::uint8_t>(t.pid) |
                    static_cast<std::uint8_t>(cost << 6) |
                    static_cast<std::uint8_t>(enter ? 0x80 : 0));
    if (!witness_.empty() || t.witness != 0) {
      if (witness_.empty()) witness_.assign(side_.size() - 1, 0);
      witness_.push_back(t.witness);
    }
  }

  std::optional<PropertyViolation> finish(EngineView& view) override;

  PropertyReport report() const override {
    PropertyReport r;
    r.property = name();
    r.holds = true;  // a measurement, not an invariant: never a violation
    r.evaluated = evaluated_;
    r.detail = detail_;
    r.bound = bound_;
    r.has_bound = evaluated_ && !unbounded_;
    return r;
  }

  std::uint64_t memory_bytes() const override {
    return entered_.memory_bytes() + side_.capacity() + witness_.capacity() +
           orbit_edges_.capacity() * sizeof(OrbitEdge) +
           accum_bytes_;
  }

 private:
  struct OrbitEdge {
    std::uint32_t state;
    std::uint8_t pid;
    std::uint8_t witness;
    std::uint8_t cost;
  };

  const std::string model_name_;
  const std::unique_ptr<cost::CostModel> model_;
  const int n_;
  PidBitTable entered_;
  std::vector<std::uint8_t> side_;     // per engine edge: pid | cost | enter
  std::vector<std::uint8_t> witness_;  // per engine edge; empty = all identity
  std::vector<OrbitEdge> orbit_edges_;
  std::uint64_t accum_bytes_ = 0;  // fixpoint table, while finish() runs
  bool spin_unbounded_ = false;
  bool evaluated_ = false;
  bool unbounded_ = false;
  std::uint64_t bound_ = 0;
  std::uint64_t sweeps_ = 0;
  std::string detail_;
};

std::optional<PropertyViolation> RmrBoundProperty::finish(EngineView& view) {
  evaluated_ = true;
  const std::uint64_t states = view.num_states();
  const auto width = static_cast<std::size_t>(n_);
  if (spin_unbounded_) {
    unbounded_ = true;
    detail_ = "unbounded under " + model_name_ +
              ": a process can busy-wait at positive cost before entering";
    return std::nullopt;
  }

  // D[s * n + q]: max cost accumulated by pid q over all paths to state s.
  std::vector<std::uint32_t> accum(static_cast<std::size_t>(states) * width, 0);
  accum_bytes_ = accum.capacity() * sizeof(std::uint32_t);
  const auto limit = static_cast<std::uint32_t>(states);
  // Typed store for the sweeps: one inlined pass over every recorded edge
  // per iteration, exactly like the progress pass.
  const EdgeStore& edges = *view.edge_store();
  bool overflow = false;
  bool changed = true;
  while (changed && !overflow) {
    changed = false;
    ++sweeps_;
    std::size_t ei = 0;
    edges.for_each([&](std::uint32_t from, std::uint32_t to) {
      const std::uint8_t b = side_[ei];
      const std::uint8_t w = witness_.empty() ? 0 : witness_[ei];
      ++ei;
      const Pid pid = b & 63;
      const std::uint32_t cost = (b >> 6) & 1;
      const std::uint32_t* src = accum.data() + static_cast<std::size_t>(from) * width;
      std::uint32_t* dst = accum.data() + static_cast<std::size_t>(to) * width;
      for (std::size_t q = 0; q < width; ++q) {
        const std::uint32_t v = src[q] + (static_cast<Pid>(q) == pid ? cost : 0);
        const auto qi = static_cast<std::size_t>(
            view.witness_map(w, static_cast<Pid>(q)));
        if (v > dst[qi]) {
          dst[qi] = v;
          changed = true;
          if (v >= limit) overflow = true;
        }
      }
    });
    for (const OrbitEdge& oe : orbit_edges_) {
      std::uint32_t* row = accum.data() + static_cast<std::size_t>(oe.state) * width;
      for (std::size_t q = 0; q < width; ++q) {
        const std::uint32_t v =
            row[q] + (static_cast<Pid>(q) == oe.pid ? oe.cost : 0);
        const auto qi = static_cast<std::size_t>(
            view.witness_map(oe.witness, static_cast<Pid>(q)));
        if (v > row[qi]) {
          row[qi] = v;
          changed = true;
          if (v >= limit) overflow = true;
        }
      }
    }
  }

  if (overflow) {
    unbounded_ = true;
    detail_ = "unbounded under " + model_name_ +
              ": a reachable cycle accumulates positive cost before the CS";
  } else {
    // The certified bound: max accumulator of the acting pid at the source
    // of every enter edge (crit steps themselves cost 0 in every model).
    std::uint64_t bound = 0;
    std::size_t ei = 0;
    edges.for_each([&](std::uint32_t from, std::uint32_t to) {
      (void)to;
      const std::uint8_t b = side_[ei++];
      if (b & 0x80) {
        bound = std::max<std::uint64_t>(
            bound, accum[static_cast<std::size_t>(from) * width + (b & 63)]);
      }
    });
    bound_ = bound;
    detail_ = "max " + model_name_ + " cost to enter the CS = " +
              std::to_string(bound_) + " (" + std::to_string(sweeps_) +
              " fixpoint sweeps)";
  }
  view.note_pass_bytes(accum_bytes_);
  accum_bytes_ = 0;
  return std::nullopt;
}

}  // namespace

std::unique_ptr<Property> make_property(const std::string& spec,
                                        const sim::Algorithm& algorithm, int n) {
  if (spec == "mutex") return std::make_unique<MutexProperty>();
  if (spec == "progress") return std::make_unique<ProgressProperty>();
  if (spec == "lockout") return std::make_unique<LockoutProperty>(n);
  if (spec == "rmr-bound" || spec.rfind("rmr-bound:", 0) == 0) {
    const std::string model_name =
        spec == "rmr-bound" ? "state-change" : spec.substr(std::strlen("rmr-bound:"));
    auto model = cost::make_cost_model(model_name, algorithm, n);  // throws on typos
    if (!model->supports_step_cost()) {
      throw std::invalid_argument(
          "rmr-bound does not support cost model '" + model_name +
          "' (its per-access cost depends on execution history, not on the "
          "reached state)");
    }
    return std::make_unique<RmrBoundProperty>(model_name, std::move(model), n);
  }
  std::string known;
  for (const auto& name : property_names()) {
    if (!known.empty()) known += ", ";
    known += name;
  }
  throw std::invalid_argument("unknown property '" + spec + "' (expected one of: " +
                              known + "; rmr-bound also accepts rmr-bound:MODEL)");
}

const std::vector<std::string>& property_names() {
  static const std::vector<std::string> names = {"mutex", "progress", "lockout",
                                                 "rmr-bound"};
  return names;
}

}  // namespace melb::check
