// Cold storage for the model checker's closed (fully expanded) states.
//
// The flyweight engine used to keep a full 24-byte record plus a stride-n
// automaton row for every state it ever discovered, even though everything
// past the current BFS frontier is only ever read again for two purposes:
// reconstructing a counterexample trace (walk the parent chain, then replay
// the acting pids forward from the root) and the progress check's reverse
// reachability (which needs edges, not states). So the engine now splits its
// storage: the hot frontier keeps full expansion records for the current and
// next level only, and everything closed drops to the two structures here —
// in the spirit of SPIN's collapse compression and disk-based BFS checkers,
// which cross the RAM-bound regime by keeping only fingerprints/frontiers
// hot and spilling or compressing closed levels.
//
//  * ClosedStore: per state, a packed 5-byte (parent index, acting pid)
//    record in fixed-size chunks — enough to rebuild any trace by replaying
//    the parent chain through the interning pools' memoized δ.
//  * EdgeStore: the transition list, delta-compressed to ~1-4 bytes per edge
//    (vs 8 flat). Appends arrive in the serial sequencing order, so `from` is
//    non-decreasing (varint delta) and a "new state" edge's target is
//    implicit — targets are assigned consecutively, so a one-bit flag
//    replaces the 4-byte index. Dedup edges store zigzag(to - from).
//
// Both stores spill their oldest chunks to an anonymous temp file when the
// engine's tracked memory crosses CheckOptions::memory_limit_mb: chunks are
// written once, freed from RAM, and read back on demand (ClosedStore::entry
// seeks per record; EdgeStore::for_each streams chunk-at-a-time). Spilling
// is a pure function of the append sequence and the limit — never of the
// worker count — so spill points, peak_memory_bytes, and spilled_bytes stay
// byte-identical across --workers values.
//
// Thread-safety: none. All mutation and all reads happen in the engine's
// serial phases (sequencing, trace reconstruction, the progress pass).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace melb::check {

// Shared spill target: an unlinked temp file (std::tmpfile) that chunks are
// appended to and read back from by offset. Lazily opened on first spill; if
// the platform refuses a temp file, spilling is disabled and the stores
// simply stay in RAM (degrade to the old behavior, never abort).
class SpillFile {
 public:
  SpillFile() = default;
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  // Appends `bytes` bytes and returns their file offset, or -1 on failure.
  std::int64_t append(const void* data, std::size_t bytes);
  // Reads `bytes` bytes at `offset` (previously returned by append).
  void read(std::int64_t offset, void* out, std::size_t bytes) const;

  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::FILE* file_ = nullptr;
  bool open_failed_ = false;
  std::uint64_t bytes_written_ = 0;
};

// idx -> (parent idx, acting pid), append-only, chunked, oldest chunks
// spillable. The root must be appended too (parent 0, pid 0xff) so indices
// line up.
class ClosedStore {
 public:
  static constexpr std::size_t kChunkBits = 16;  // 65536 entries = 320 KiB
  static constexpr std::size_t kChunkEntries = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kEntryBytes = 5;

  struct Entry {
    std::uint32_t parent = 0;
    std::uint8_t pid = 0;
  };

  void append(std::uint32_t parent, std::uint8_t pid);
  Entry entry(std::uint64_t idx) const;  // reads the spill file if chunk spilled
  std::uint64_t size() const { return size_; }

  // Spills (at most) the oldest `max_chunks` still-resident full chunks.
  // Returns the number of bytes moved out of RAM.
  std::uint64_t spill_oldest(SpillFile& file, std::size_t max_chunks);
  bool has_spillable_chunk() const;

  std::uint64_t memory_bytes() const;  // RAM-resident chunks only

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;  // null once spilled
    std::int64_t spill_offset = -1;
  };

  std::vector<Chunk> chunks_;
  std::uint64_t size_ = 0;
  std::size_t next_spill_ = 0;  // first chunk not yet spilled
  const SpillFile* spill_file_ = nullptr;
};

// Append-only delta-compressed transition list. Edges must be appended in
// the engine's serial sequencing order (non-decreasing `from`; every new
// state's creating edge appended exactly when its index is assigned).
class EdgeStore {
 public:
  static constexpr std::size_t kChunkBytes = std::size_t{1} << 18;  // 256 KiB

  // `to_is_new` marks the edge that created state `to` (targets of such
  // edges are consecutive, starting at 1, and are not stored).
  void append(std::uint32_t from, std::uint32_t to, bool to_is_new);

  // Streams every edge, in append order, to fn(from, to). Reads spilled
  // chunks back from the file sequentially (one chunk-sized buffer).
  template <class Fn>
  void for_each(Fn&& fn) const {
    std::vector<std::uint8_t> scratch;
    std::uint32_t from = 0;
    std::uint32_t next_new = 1;
    for (const auto& chunk : chunks_) {
      const std::uint8_t* bytes = chunk.data.get();
      if (bytes == nullptr) {
        scratch.resize(chunk.used);
        file_->read(chunk.spill_offset, scratch.data(), chunk.used);
        bytes = scratch.data();
      }
      decode_chunk(bytes, chunk.used, from, next_new, fn);
    }
  }

  std::uint64_t size() const { return count_; }

  std::uint64_t spill_oldest(SpillFile& file, std::size_t max_chunks);
  bool has_spillable_chunk() const;

  std::uint64_t memory_bytes() const;  // RAM-resident chunks only

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;  // null once spilled
    std::uint32_t used = 0;
    std::int64_t spill_offset = -1;
  };

  template <class Fn>
  static void decode_chunk(const std::uint8_t* bytes, std::size_t used,
                           std::uint32_t& from, std::uint32_t& next_new, Fn&& fn) {
    std::size_t pos = 0;
    while (pos < used) {
      const std::uint64_t head = get_varint(bytes, pos);
      from += static_cast<std::uint32_t>(head >> 1);
      std::uint32_t to;
      if (head & 1) {
        const std::uint64_t zz = get_varint(bytes, pos);
        const auto delta = static_cast<std::int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
        to = static_cast<std::uint32_t>(static_cast<std::int64_t>(from) + delta);
      } else {
        to = next_new++;
      }
      fn(from, to);
    }
  }

  static std::uint64_t get_varint(const std::uint8_t* bytes, std::size_t& pos) {
    std::uint64_t value = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t b = bytes[pos++];
      value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return value;
      shift += 7;
    }
  }

  std::uint8_t* reserve(std::size_t bytes);  // chunk tail with >= bytes free

  std::vector<Chunk> chunks_;
  std::uint64_t count_ = 0;
  std::uint32_t last_from_ = 0;
  std::size_t next_spill_ = 0;
  const SpillFile* file_ = nullptr;
};

}  // namespace melb::check
