// Cold storage for the model checker's closed (fully expanded) states.
//
// The flyweight engine used to keep a full 24-byte record plus a stride-n
// automaton row for every state it ever discovered, even though everything
// past the current BFS frontier is only ever read again for two purposes:
// reconstructing a counterexample trace (walk the parent chain, then replay
// the acting pids forward from the root) and the progress check's reverse
// reachability (which needs edges, not states). So the engine now splits its
// storage: the hot frontier keeps full expansion records for the current and
// next level only, and everything closed drops to the structures here —
// in the spirit of SPIN's collapse compression and disk-based BFS checkers,
// which cross the RAM-bound regime by keeping only fingerprints/frontiers
// hot and spilling or compressing closed levels.
//
//  * ClosedStore: per state, a packed 5-byte (parent index, acting pid)
//    record in fixed-size chunks — enough to rebuild any trace by replaying
//    the parent chain through the interning pools' memoized δ.
//  * EdgeStore: the transition list, delta-compressed to ~1-4 bytes per edge
//    (vs 8 flat). Appends arrive in the serial sequencing order, so `from` is
//    non-decreasing (varint delta) and a "new state" edge's target is
//    implicit — targets are assigned consecutively, so a one-bit flag
//    replaces the 4-byte index. Dedup edges store zigzag(to - from). Each
//    chunk records its starting decode state (from, next implicit target),
//    so the stream can also be walked chunk-by-chunk in REVERSE — which is
//    what the progress pass's external-memory reverse BFS streams instead of
//    materializing a predecessor CSR (see for_each_reverse).
//  * FingerprintRuns: sorted runs of (fingerprint, state index) records —
//    the cold half of delayed duplicate detection (CheckOptions::ddd). Each
//    BFS level that slides out of the engine's hot window is flushed here as
//    one ascending-fingerprint run; a level's candidate fingerprints are then
//    deduplicated by a sort-merge of the (sorted) unknown candidates against
//    every run. Runs are immutable once appended, so all of their chunks are
//    spillable, which is what removes the visited table's ~12 B/state RAM
//    floor.
//
// All three stores spill their oldest chunks to an anonymous temp file when
// the engine's tracked memory crosses CheckOptions::memory_limit_mb: chunks
// are written once, freed from RAM, and read back on demand
// (ClosedStore::entry seeks per record; EdgeStore::for_each* and
// FingerprintRuns::merge stream chunk-at-a-time). Spilling is a pure
// function of the append sequence and the limit — never of the worker
// count — so spill points, peak_memory_bytes, and spilled_bytes stay
// byte-identical across --workers values.
//
// Thread-safety: none. All mutation and all reads happen in the engine's
// serial phases (sequencing, the sort-merge dedup, trace reconstruction, the
// progress pass).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace melb::check {

// Shared spill target: an unlinked temp file (std::tmpfile) that chunks are
// appended to and read back from by offset. Lazily opened on first spill; if
// the platform refuses a temp file, spilling is disabled and the stores
// simply stay in RAM (degrade to the old behavior, never abort).
//
// Write failures (a short write or ENOSPC, real or injected via the
// "spill.append" fault point) can never corrupt results: the file is
// truncated back to the last fully-written chunk, the failed chunk stays in
// RAM, and further appends are refused. They also do not pass silently: the
// first failure prints one diagnostic and is recorded in error(), which the
// checker surfaces as CheckResult::io_error so the CLI can exit nonzero —
// the requested memory budget was not honored.
class SpillFile {
 public:
  SpillFile() = default;
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  // Appends `bytes` bytes and returns their file offset, or -1 on failure.
  std::int64_t append(const void* data, std::size_t bytes);
  // Reads `bytes` bytes at `offset` (previously returned by append).
  void read(std::int64_t offset, void* out, std::size_t bytes) const;

  std::uint64_t bytes_written() const { return bytes_written_; }
  // First write failure's diagnostic; empty while healthy.
  const std::string& error() const { return error_; }

 private:
  void record_write_failure(const std::string& why, std::int64_t offset);

  std::FILE* file_ = nullptr;
  bool open_failed_ = false;
  std::uint64_t bytes_written_ = 0;
  std::string error_;
};

// idx -> (parent idx, acting pid), append-only, chunked, oldest chunks
// spillable. The root must be appended too (parent 0, pid 0xff) so indices
// line up. Under symmetry reduction (set_witness_mode) every entry carries a
// sixth byte: the index of the group element whose inverse maps the stored
// orbit representative back to the concrete successor the parent produced —
// what trace replay composes along the parent chain to recover concrete pids.
class ClosedStore {
 public:
  static constexpr std::size_t kChunkBits = 16;  // 65536 entries = 320 KiB
  static constexpr std::size_t kChunkEntries = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kEntryBytes = 5;  // default (parent, pid) mode

  struct Entry {
    std::uint32_t parent = 0;
    std::uint8_t pid = 0;
    std::uint8_t witness = 0;  // group-element index; 0 = identity
  };

  // Switches to 6-byte (parent, pid, witness) entries. Must be called before
  // the first append.
  void set_witness_mode() { entry_bytes_ = kEntryBytes + 1; }
  std::size_t entry_bytes() const { return entry_bytes_; }

  void append(std::uint32_t parent, std::uint8_t pid, std::uint8_t witness = 0);
  Entry entry(std::uint64_t idx) const;  // reads the spill file if chunk spilled
  std::uint64_t size() const { return size_; }

  // Spills (at most) the oldest `max_chunks` still-resident full chunks.
  // Returns the number of bytes moved out of RAM.
  std::uint64_t spill_oldest(SpillFile& file, std::size_t max_chunks);
  bool has_spillable_chunk() const;

  std::uint64_t memory_bytes() const;  // RAM-resident chunks only

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;  // null once spilled
    std::int64_t spill_offset = -1;
  };

  std::vector<Chunk> chunks_;
  std::uint64_t size_ = 0;
  std::size_t entry_bytes_ = kEntryBytes;
  std::size_t next_spill_ = 0;  // first chunk not yet spilled
  const SpillFile* spill_file_ = nullptr;
};

// Append-only delta-compressed transition list. Edges must be appended in
// the engine's serial sequencing order (non-decreasing `from`; every new
// state's creating edge appended exactly when its index is assigned).
class EdgeStore {
 public:
  static constexpr std::size_t kChunkBytes = std::size_t{1} << 18;  // 256 KiB

  // `to_is_new` marks the edge that created state `to` (targets of such
  // edges are consecutive, starting at 1, and are not stored).
  void append(std::uint32_t from, std::uint32_t to, bool to_is_new);

  // Streams every edge, in append order, to fn(from, to). Reads spilled
  // chunks back from the file sequentially (one chunk-sized buffer).
  template <class Fn>
  void for_each(Fn&& fn) const {
    std::vector<std::uint8_t> scratch;
    std::uint32_t from = 0;
    std::uint32_t next_new = 1;
    for (const auto& chunk : chunks_) {
      const std::uint8_t* bytes = chunk.data.get();
      if (bytes == nullptr) {
        scratch.resize(chunk.used);
        file_->read(chunk.spill_offset, scratch.data(), chunk.used);
        bytes = scratch.data();
      }
      decode_chunk(bytes, chunk.used, from, next_new, fn);
    }
  }

  // Streams every edge in REVERSE append order, to fn(from, to). Chunks are
  // visited last-to-first; each is decoded forward from its recorded start
  // state into a per-chunk buffer that is replayed backwards, so the whole
  // walk needs one chunk of compressed bytes plus one chunk's decoded edges
  // in RAM — never the full edge list. Returns the peak scratch bytes used
  // (decode buffer + spill read-back buffer) so callers can account for the
  // pass's transient memory.
  template <class Fn>
  std::uint64_t for_each_reverse(Fn&& fn) const {
    std::vector<std::uint8_t> scratch;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> buffer;
    for (std::size_t c = chunks_.size(); c-- > 0;) {
      const Chunk& chunk = chunks_[c];
      const std::uint8_t* bytes = chunk.data.get();
      if (bytes == nullptr) {
        scratch.resize(chunk.used);
        file_->read(chunk.spill_offset, scratch.data(), chunk.used);
        bytes = scratch.data();
      }
      buffer.clear();
      buffer.reserve(chunk.edges);  // exact: no doubling overshoot
      std::uint32_t from = chunk.start_from;
      std::uint32_t next_new = chunk.start_new;
      decode_chunk(bytes, chunk.used, from, next_new,
                   [&](std::uint32_t f, std::uint32_t t) { buffer.emplace_back(f, t); });
      for (std::size_t i = buffer.size(); i-- > 0;) {
        fn(buffer[i].first, buffer[i].second);
      }
    }
    return buffer.capacity() * sizeof(std::pair<std::uint32_t, std::uint32_t>) +
           scratch.capacity();
  }

  std::uint64_t size() const { return count_; }

  std::uint64_t spill_oldest(SpillFile& file, std::size_t max_chunks);
  bool has_spillable_chunk() const;

  std::uint64_t memory_bytes() const;  // RAM-resident chunks only

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;  // null once spilled
    std::uint32_t used = 0;
    std::int64_t spill_offset = -1;
    // Decode state at the first byte of this chunk (running `from` value and
    // next implicit new-state target) — what lets a chunk decode standalone,
    // which reverse streaming needs — plus the chunk's edge count so the
    // reverse walk can size its decode buffer exactly.
    std::uint32_t start_from = 0;
    std::uint32_t start_new = 1;
    std::uint32_t edges = 0;
  };

  template <class Fn>
  static void decode_chunk(const std::uint8_t* bytes, std::size_t used,
                           std::uint32_t& from, std::uint32_t& next_new, Fn&& fn) {
    std::size_t pos = 0;
    while (pos < used) {
      const std::uint64_t head = get_varint(bytes, pos);
      from += static_cast<std::uint32_t>(head >> 1);
      std::uint32_t to;
      if (head & 1) {
        const std::uint64_t zz = get_varint(bytes, pos);
        const auto delta = static_cast<std::int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
        to = static_cast<std::uint32_t>(static_cast<std::int64_t>(from) + delta);
      } else {
        to = next_new++;
      }
      fn(from, to);
    }
  }

  static std::uint64_t get_varint(const std::uint8_t* bytes, std::size_t& pos) {
    std::uint64_t value = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t b = bytes[pos++];
      value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return value;
      shift += 7;
    }
  }

  std::uint8_t* reserve(std::size_t bytes);  // chunk tail with >= bytes free

  std::vector<Chunk> chunks_;
  std::uint64_t count_ = 0;
  std::uint32_t last_from_ = 0;
  std::uint32_t next_new_ = 1;  // next implicit new-state target
  std::size_t next_spill_ = 0;
  const SpillFile* file_ = nullptr;
};

// Sorted fingerprint runs for delayed duplicate detection: each run is an
// immutable array of (fingerprint, state index) records, strictly ascending
// by fingerprint — one run per BFS level evicted from the engine's hot
// window. Distinct runs may not overlap in content (a state is interned into
// exactly one level), but their fingerprint RANGES interleave arbitrarily,
// so a lookup must consult every run.
//
// merge() is the delayed-duplicate-detection primitive: given the batch's
// unknown candidate fingerprints, sorted ascending, it performs one
// two-pointer sort-merge per run — skipping chunks whose [first_fp, last_fp]
// range misses every remaining query — and reports each query found together
// with its stored state index (which the engine needs to emit the dedup
// edge). Spilled chunks are read back one at a time into a scratch buffer,
// so a merge over N spilled states needs O(chunk) RAM.
//
// Thread-safety: none (serial engine phases only).
class FingerprintRuns {
 public:
  static constexpr std::size_t kRecordBytes = 12;  // fp (8 LE) + idx (4 LE)
  // ~64 KiB chunks: big enough to amortize spill I/O, small enough that the
  // merge's read-back scratch stays negligible.
  static constexpr std::size_t kChunkRecords = 5461;

  // Appends one run of `count` records with strictly ascending fingerprints.
  // count == 0 records an empty run (a BFS level can close with no new
  // states); merge() skips it but run_count() still reports it.
  void append_run(const std::uint64_t* fps, const std::uint32_t* idxs,
                  std::size_t count);

  std::size_t run_count() const { return runs_.size(); }
  std::uint64_t size() const { return total_; }  // records across all runs

  // Sort-merge lookup. `queries` must be sorted ascending by fingerprint and
  // duplicate-free; `on_hit(payload, idx)` fires for every query whose
  // fingerprint is present in some run, where `payload` is the query's
  // second field (the engine passes candidate positions through it).
  template <class Fn>
  void merge(const std::pair<std::uint64_t, std::uint32_t>* queries,
             std::size_t count, Fn&& on_hit) const {
    if (count == 0 || total_ == 0) return;
    std::vector<std::uint8_t> scratch;
    for (const Run& run : runs_) {
      std::size_t q = 0;  // per run: a fingerprint lives in at most one run
      for (const Chunk& chunk : run.chunks) {
        if (q >= count) break;
        if (chunk.last_fp < queries[q].first) continue;  // chunk below queries
        while (q < count && queries[q].first < chunk.first_fp) ++q;
        if (q >= count) break;
        const std::uint8_t* bytes = chunk.data.get();
        if (bytes == nullptr) {
          scratch.resize(chunk.records * kRecordBytes);
          file_->read(chunk.spill_offset, scratch.data(),
                      chunk.records * kRecordBytes);
          bytes = scratch.data();
        }
        std::size_t r = 0;
        while (r < chunk.records && q < count) {
          std::uint64_t fp;
          std::memcpy(&fp, bytes + r * kRecordBytes, sizeof(fp));
          if (fp < queries[q].first) {
            ++r;
          } else if (fp > queries[q].first) {
            ++q;
          } else {
            std::uint32_t idx;
            std::memcpy(&idx, bytes + r * kRecordBytes + sizeof(fp), sizeof(idx));
            on_hit(queries[q].second, idx);
            ++r;
            ++q;
          }
        }
      }
    }
  }

  // Spills (at most) `max_chunks` still-resident chunks, oldest run first.
  // Unlike the other stores, every chunk is spillable immediately: runs are
  // immutable once appended. Returns the bytes moved out of RAM.
  std::uint64_t spill_oldest(SpillFile& file, std::size_t max_chunks);
  bool has_spillable_chunk() const;

  std::uint64_t memory_bytes() const;  // RAM-resident chunks only

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;  // null once spilled
    std::uint32_t records = 0;
    std::uint64_t first_fp = 0;  // range for merge-time chunk skipping
    std::uint64_t last_fp = 0;
    std::int64_t spill_offset = -1;
  };
  struct Run {
    std::vector<Chunk> chunks;
  };

  std::vector<Run> runs_;
  std::uint64_t total_ = 0;
  // Accounting kept incrementally (append adds, spill subtracts): tracked_
  // bytes polls memory_bytes() on the spill hot path, so it must not walk
  // every chunk of every run.
  std::uint64_t resident_data_bytes_ = 0;
  std::uint64_t chunk_struct_bytes_ = 0;
  std::size_t spill_run_ = 0;    // spill cursor: next run …
  std::size_t spill_chunk_ = 0;  // … and next chunk within it
  const SpillFile* file_ = nullptr;
};

}  // namespace melb::check
