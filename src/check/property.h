// Pluggable on-the-fly properties for the model checker.
//
// The checker used to hardwire its two invariants (mutual exclusion and
// progress) as CheckOptions booleans. This header turns them into the first
// two instances of a general interface: a check::Property observes the
// exploration — every transition, in the engine's deterministic sequencing
// order — and may veto a candidate successor (aborting with a counterexample
// trace) or run an end-of-exploration pass over the recorded state graph.
// check::check(algorithm, n, properties, options) is the one entry point;
// the legacy booleans survive as thin shims that populate the property list
// (see model_checker.h).
//
// Shipped properties (make_property):
//  * "mutex"     — no reachable state has two processes between enter and
//    exit. Vets candidates before they are stored; verdicts, traces, and
//    statistics are byte-identical to the pre-property-engine checker.
//  * "progress"  — from every reachable state some terminal state is
//    reachable (deadlock/livelock freedom for the explored fragment). The
//    external-memory reverse-BFS pass, unchanged, behind finish().
//  * "lockout"   — per-pid starvation freedom: no reachable *fair* cycle
//    along which some participating process stays forever short of its
//    critical section. A cycle is fair when every participating not-yet-done
//    process takes at least one step on it (a zero-progress spin counts as a
//    step), so a process that merely *could* be overtaken forever on an
//    unfair schedule does not raise a violation, but a process that spins
//    while every peer also keeps stepping — static-rr restricted to
//    participants {1}, whose lone process waits for a turn that can never
//    arrive — does. Detection is per-pid: Tarjan SCCs over the subgraph of
//    states where the pid has not yet entered, then a fairness check per
//    nontrivial SCC. Needs O(states + edges) property memory; intended for
//    the small-n fairness regime. Does not compose with symmetry reduction
//    (per-pid payloads are not quotient-invariant); check() rejects the
//    combination.
//  * "rmr-bound[:MODEL]" — the paper-specific one: the worst-case cost for
//    any process to reach its critical-section entry, maximized over every
//    reachable path, under a cost model from src/cost/ (default
//    "state-change", the paper's SC measure; also "total-accesses" and
//    "dsm"; "cache-coherent" is rejected because its per-access cost depends
//    on unbounded execution history, not on the reached state). Computed as
//    a longest-path fixpoint over the recorded edge stream with per-pid
//    accumulators; a reachable positive-cost cycle or spin makes the bound
//    infinite and is reported as "unbounded" (which is the *expected*
//    verdict for total-accesses on any busy-waiting algorithm — Alur &
//    Taubenfeld's theorem — and would flag a remote busy-wait under dsm).
//    The certified bound lands in CheckResult::property_reports, so a single
//    run certifies "max SC cost to enter <= B for yang-anderson at n=4".
//    Composes with --workers/--ddd/--symmetry/--memory-limit-mb: the bound
//    is a pure function of (algorithm, n, options minus workers).
//
// Determinism contract: every hook runs in the engine's serial phases
// (sequencing, end-of-run), in an order that is a pure function of
// (algorithm, n, options minus workers). A property must be deterministic
// given that order — no randomness, no wall-clock, no address-dependent
// iteration — so that CheckResult::property_reports joins the byte-identical
// cross-worker signature. Property RAM reported via memory_bytes() takes
// part in peak accounting and spill decisions; properties with no payload
// return 0 and leave every legacy statistic untouched.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/automaton.h"
#include "sim/types.h"

namespace melb::check {

class EdgeStore;  // closed_store.h — typed edge stream for hot finish passes

// One sequenced transition, as a property sees it. All state indices are the
// engine's global BFS indices (root = 0); under symmetry reduction they name
// orbit representatives and `witness` is the group element that mapped the
// concrete successor onto `target` (0 = identity; EngineView::witness_map
// applies it to a pid).
struct TransitionView {
  static constexpr std::uint32_t kNoState = 0xffffffffu;

  std::uint32_t parent = 0;
  // Stored successor index. kNoState during vet() — the candidate is not yet
  // (and, if the vet fails, never will be) part of the state space. Equal to
  // `parent` for a self-loop.
  std::uint32_t target = kNoState;
  sim::Pid pid = 0;            // acting pid, in parent-state coordinates
  std::uint8_t witness = 0;    // symmetry group element canonicalizing target
  bool is_new = false;         // this transition created `target`
  bool self_loop = false;      // zero-progress spin; only delivered on opt-in
  bool local_change = false;   // the acting pid's local automaton state changed
  bool memory_access = false;  // read / write / rmw (false for crit steps)
  bool is_crit = false;
  sim::CritKind crit = sim::CritKind::kTry;  // valid iff is_crit
  sim::Reg reg = -1;           // accessed register; -1 for crit steps
  std::int8_t in_cs = 0;       // processes inside the CS at the successor
  std::uint8_t done_count = 0; // participants finished at the successor
};

// Engine services available to Property::on_begin/finish. Edge streams exist
// only when some requested property returned needs_edges().
class EngineView {
 public:
  virtual ~EngineView() = default;

  virtual int n() const = 0;
  virtual int num_participants() const = 0;
  virtual bool participates(sim::Pid pid) const = 0;
  virtual std::uint64_t num_states() const = 0;
  virtual std::uint64_t num_edges() const = 0;  // recorded non-self-loop edges
  virtual const std::vector<std::uint32_t>& terminals() const = 0;
  // Image of `pid` under symmetry group element `witness` (identity when the
  // run is not canonicalizing).
  virtual sim::Pid witness_map(std::uint8_t witness, sim::Pid pid) const = 0;
  // Streams the recorded edge list to fn(from, to), in append order /
  // reverse append order. Reverse returns the pass's peak scratch bytes
  // (chunk decode buffers), forward streams with O(chunk) scratch.
  virtual void for_each_edge(
      const std::function<void(std::uint32_t, std::uint32_t)>& fn) const = 0;
  virtual std::uint64_t for_each_edge_reverse(
      const std::function<void(std::uint32_t, std::uint32_t)>& fn) const = 0;
  // The recorded edge stream itself (null unless some property returned
  // needs_edges()). Fixpoint passes that sweep millions of edges several
  // times should stream it directly — EdgeStore::for_each/for_each_reverse
  // are templates, so the per-edge callback inlines instead of paying a
  // std::function indirection per edge like the wrappers above.
  virtual const EdgeStore* edge_store() const = 0;
  // Records transient RAM of a finish() pass (marking bitmaps, accumulator
  // tables); the maximum over all passes lands in
  // CheckResult::progress_peak_bytes.
  virtual void note_pass_bytes(std::uint64_t bytes) = 0;
};

// A finish()-time violation. The engine reconstructs the counterexample
// trace to `state`; with append_step_of it additionally appends the step the
// named pid would take there (how lockout shows the starving process's
// forever-spin concretely).
struct PropertyViolation {
  std::string message;
  std::uint32_t state = 0;
  std::optional<sim::Pid> append_step_of;
};

// Per-property verdict reported in CheckResult::property_reports (list
// order). `evaluated` distinguishes a real verdict from a property that
// never got to run (exploration aborted early or hit max_states).
struct PropertyReport {
  std::string property;   // spec name, e.g. "rmr-bound:state-change"
  bool holds = true;
  bool evaluated = false;
  std::string detail;     // violation message or certificate text
  std::uint64_t bound = 0;  // certified bound (rmr-bound only)
  bool has_bound = false;
};

class Property {
 public:
  virtual ~Property() = default;

  virtual std::string name() const = 0;

  // Capabilities, queried once before exploration starts.
  virtual bool needs_edges() const { return false; }       // record EdgeStore
  virtual bool wants_transitions() const { return false; } // deliver on_transition
  virtual bool wants_self_loops() const { return false; }  // also deliver spins
  virtual bool vets_candidates() const { return false; }   // call vet()
  virtual bool supports_symmetry() const { return true; }

  virtual void on_begin(const EngineView& view) { (void)view; }

  // Pre-append check of a candidate successor, in sequencing order. A
  // non-null return aborts exploration with that message; the engine builds
  // the trace (replay to parent + the violating step). This runs once per
  // candidate on the hot path, which is why it returns a static string
  // rather than a std::string — the pass verdict must cost nothing beyond
  // the virtual call. The pointed-to message must outlive the check (use a
  // string literal or property-owned storage).
  virtual const char* vet(const TransitionView& t) {
    (void)t;
    return nullptr;
  }

  // Every sequenced transition, in order (self-loops only on opt-in).
  virtual void on_transition(const TransitionView& t) { (void)t; }

  // End-of-exploration pass; skipped when max_states was hit or a vet
  // aborted the run. First violation in property-list order wins.
  virtual std::optional<PropertyViolation> finish(EngineView& view) {
    (void)view;
    return std::nullopt;
  }

  virtual PropertyReport report() const = 0;

  // Property-owned RAM right now; joins the engine's tracked-memory peak and
  // spill-budget decisions, so it must be worker-count invariant.
  virtual std::uint64_t memory_bytes() const { return 0; }
};

using PropertyList = std::vector<std::unique_ptr<Property>>;

// Factory for the shipped properties. Specs: "mutex", "progress", "lockout",
// "rmr-bound" (= "rmr-bound:state-change") or "rmr-bound:MODEL" with MODEL
// from cost::cost_model_names() minus "cache-coherent". Throws
// std::invalid_argument on anything else, naming the accepted specs.
std::unique_ptr<Property> make_property(const std::string& spec,
                                        const sim::Algorithm& algorithm, int n);

// Base names make_property accepts, in canonical (reporting) order.
const std::vector<std::string>& property_names();

}  // namespace melb::check
