// Flat open-addressing visited set for the model checker's state space.
//
// Maps 64-bit state fingerprints to 32-bit state indices in two parallel
// arrays (12 bytes per slot, power-of-two capacity, linear probing) — no
// node allocations, no per-entry pointers, and probes touch one cache line
// in the common case, unlike the std::unordered_map it replaces. The probe
// loop is header-inline: it sits on the hottest path of the engine (once per
// successor candidate).
//
// The set supports a two-phase insert protocol so the checker's parallel
// frontier expansion can dedupe candidates before state indices exist:
//  * find_or_reserve(fp) either finds an entry (committed index, or kPending
//    when another candidate of the same BFS level already reserved it) or
//    reserves a slot for fp with a kPending marker.
//  * commit(fp, idx) / commit_slot(slot, idx) later fill in the real index.
// Reservations that are never committed are harmless: the checker abandons
// the whole set when it aborts (violation found or state cap hit).
//
// StripedStateSet shards fingerprints across a fixed number of FlatStateSets
// by the high bits of the mixed fingerprint (the flat sets probe with the low
// bits, so the streams are independent). The stripe count is constant — NOT a
// function of the worker count — so table growth, memory accounting, and
// dedup statistics are byte-identical for every --workers value; parallelism
// comes from expanding different stripes on different workers with no locks.
//
// Two occupancy regimes:
//  * Hash-table mode (the default engine): the set holds every fingerprint
//    ever visited — O(states) RAM, ~12 B/state at load 3/4.
//  * DDD mode (CheckOptions::ddd): the set is only the LEVEL-LOCAL dedup
//    table — it is clear()ed at every BFS level boundary and holds just the
//    current level's candidate fingerprints, while older levels live in
//    sorted window arrays and spillable FingerprintRuns (closed_store.h).
//    clear() keeps the allocated capacity, so resident bytes are bounded by
//    the widest level seen, never by total states.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/hash.h"

namespace melb::check {

class FlatStateSet {
 public:
  // Index marker for "reserved this level, index not yet assigned".
  static constexpr std::uint32_t kPending = 0xfffffffeu;

  explicit FlatStateSet(std::size_t min_capacity = 64);

  struct Probe {
    bool found;          // fp already present (idx may be kPending)
    std::uint32_t idx;   // valid when found
    std::uint32_t slot;  // entry slot; valid until the next growth
  };

  // Looks up fp; reserves a kPending slot for it when absent. The returned
  // slot stays valid while generation() is unchanged (growth rehashes).
  // Max load factor 3/4: zobrist fingerprints probe near-uniformly, so the
  // slightly longer probe chains cost far less than the extra half-size
  // table a 2/3 limit would force — this table is RAM-mandatory in both
  // regimes (all states in hash-table mode, the widest level under DDD), so
  // density is worth a few extra probes.
  Probe find_or_reserve(std::uint64_t fp) {
    if (size_ * 4 >= fps_.size() * 3) grow();
    std::size_t slot = slot_of(fp);
    while (idxs_[slot] != kEmpty) {
      if (fps_[slot] == fp) return {true, idxs_[slot], static_cast<std::uint32_t>(slot)};
      slot = (slot + 1) & mask_;
    }
    fps_[slot] = fp;
    idxs_[slot] = kPending;
    ++size_;
    return {false, kPending, static_cast<std::uint32_t>(slot)};
  }

  // Fills in the index of a previously reserved fp (re-probes; always valid).
  void commit(std::uint64_t fp, std::uint32_t idx);

  // Index of a present fp (committed or pending). Precondition: present
  // (returns kEmpty otherwise).
  std::uint32_t lookup(std::uint64_t fp) const {
    std::size_t slot = slot_of(fp);
    while (idxs_[slot] != kEmpty) {
      if (fps_[slot] == fp) return idxs_[slot];
      slot = (slot + 1) & mask_;
    }
    return kEmpty;
  }

  // Slot-addressed variants (no re-probe): only valid when generation() still
  // matches the value observed when the Probe was taken.
  void commit_slot(std::uint32_t slot, std::uint32_t idx) { idxs_[slot] = idx; }
  std::uint32_t idx_at(std::uint32_t slot) const { return idxs_[slot]; }

  // Bumped on every growth/rehash; callers compare it to decide whether a
  // recorded Probe::slot is still addressable.
  std::uint32_t generation() const { return generation_; }

  // Empties the set but keeps its capacity (an O(capacity) wipe, no
  // deallocation) and bumps the generation: previously recorded slots are
  // invalid afterwards. DDD mode calls this at every BFS level boundary.
  void clear();

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return fps_.size(); }
  std::size_t memory_bytes() const {
    return fps_.capacity() * sizeof(std::uint64_t) + idxs_.capacity() * sizeof(std::uint32_t);
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  std::size_t slot_of(std::uint64_t fp) const {
    // Fingerprints are XORs of zobrist (splitmix-mixed) keys: every bit is
    // already uniform, so the low bits index directly — no re-hash — and
    // stay independent of the high bits StripedStateSet consumed.
    return static_cast<std::size_t>(fp) & mask_;
  }
  void grow();

  std::vector<std::uint64_t> fps_;
  std::vector<std::uint32_t> idxs_;  // kEmpty = free slot
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  std::uint32_t generation_ = 0;
};

class StripedStateSet {
 public:
  // 64 stripes ≈ enough lanes for any worker count we will see, small enough
  // that the minimum footprint (64 × 64 slots × 12 B) is negligible.
  static constexpr std::size_t kStripes = 64;

  StripedStateSet();

  std::size_t stripe_of(std::uint64_t fp) const {
    static_assert((kStripes & (kStripes - 1)) == 0, "stripe count must be a power of two");
    // Top bits: disjoint from the low bits the flat sets probe with.
    return static_cast<std::size_t>(fp >> 58) & (kStripes - 1);
  }
  FlatStateSet& stripe(std::size_t s) { return stripes_[s]; }
  const FlatStateSet& stripe(std::size_t s) const { return stripes_[s]; }

  // Single-caller convenience (initial state, abort drain, tests): routes to
  // the stripe.
  FlatStateSet::Probe find_or_reserve(std::uint64_t fp) {
    return stripes_[stripe_of(fp)].find_or_reserve(fp);
  }
  void commit(std::uint64_t fp, std::uint32_t idx) {
    stripes_[stripe_of(fp)].commit(fp, idx);
  }
  std::uint32_t lookup(std::uint64_t fp) const {
    return stripes_[stripe_of(fp)].lookup(fp);
  }

  // Empties every stripe, keeping capacities (see FlatStateSet::clear).
  void clear();

  std::size_t size() const;
  std::size_t memory_bytes() const;

 private:
  std::vector<FlatStateSet> stripes_;
};

}  // namespace melb::check
