// Flyweight interning pools for the model checker.
//
// The old engine stored a shared_ptr<Automaton> per process per state and
// clone()d an automaton on every transition. But a process automaton is a
// pure function of its local state, and at model-checking scale the same
// local states recur millions of times — so the engine interns each distinct
// local state once (keyed by Automaton::fingerprint) and states store 32-bit
// intern ids. The transition function δ(id, read_value) is memoized inline
// in each record (local states observe very few distinct values, so a linear
// scan of a tiny inline array beats any hash map): after the first sight of
// (local state, observed value), advancing a process is an array scan with
// no clone, no virtual call, and no allocation. Hot accessors are
// header-inline; records live in chunked stable storage (StablePool) so the
// Step pointers handed out are never invalidated.
//
// RegisterFilePool plays the same trick for the shared register file: most
// transitions (crit steps, reads, spinning writes of the current value)
// leave the registers untouched, so states store a 32-bit register-file id
// into a structure-of-arrays value table instead of an owned vector<Value>.
// Register files are keyed by zobrist fingerprint through a flat probe table
// but verified by exact value comparison — a fingerprint collision here
// would silently corrupt successor states, unlike the (accepted,
// astronomically unlikely) state-set collision, so colliding ids chain.
//
// Thread-safety: pools constructed with threaded=true take an internal mutex
// on every operation, so parallel frontier-expansion workers can share them;
// threaded=false (the serial engine) skips the locks entirely. The ids
// handed out are stable for the pool's lifetime but their numeric order
// depends on discovery order — nothing the checker reports derives from id
// order, which is what keeps N-worker runs byte-identical to serial ones.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/state_set.h"
#include "sim/automaton.h"
#include "sim/types.h"

namespace melb::check {

// Scoped lock that is a no-op for single-threaded pools.
class MaybeLock {
 public:
  explicit MaybeLock(std::mutex* mutex) : mutex_(mutex) {
    if (mutex_) mutex_->lock();
  }
  ~MaybeLock() {
    if (mutex_) mutex_->unlock();
  }
  MaybeLock(const MaybeLock&) = delete;
  MaybeLock& operator=(const MaybeLock&) = delete;

 private:
  std::mutex* mutex_;
};

// Append-only storage with stable element addresses: fixed-size chunks,
// shift+mask indexing. push_back never moves existing elements (unlike
// vector) and indexing is two dependent loads (unlike deque's small blocks —
// libstdc++ deques use 512-byte blocks, a block-map chase every few records).
template <class T>
class StablePool {
 public:
  static constexpr std::size_t kChunkBits = 8;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;

  T& operator[](std::size_t i) { return chunks_[i >> kChunkBits][i & (kChunkSize - 1)]; }
  const T& operator[](std::size_t i) const {
    return chunks_[i >> kChunkBits][i & (kChunkSize - 1)];
  }
  std::size_t size() const { return size_; }

  T& push_back(T&& value) {
    if ((size_ & (kChunkSize - 1)) == 0) {
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    }
    T& slot = chunks_[size_ >> kChunkBits][size_ & (kChunkSize - 1)];
    slot = std::move(value);
    ++size_;
    return slot;
  }

  std::size_t memory_bytes() const {
    return chunks_.size() * kChunkSize * sizeof(T) + chunks_.capacity() * sizeof(void*);
  }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::size_t size_ = 0;
};

class AutomatonPool {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;  // non-participant slot

  // `zobrist_slot` is the state-fingerprint slot this process occupies; the
  // pool precomputes zobrist(slot, fingerprint) per interned local state so
  // the engine's O(1) hash update is two XORs of cached keys.
  AutomatonPool(bool threaded, std::uint64_t zobrist_slot)
      : threaded_(threaded), zobrist_slot_(zobrist_slot) {}

  struct ProposeInfo {
    // Memoized propose() (valid when !done). Points into the pool's stable
    // chunk storage: never invalidated, and safe to read after the lock is
    // dropped (records are written once, under the lock, before their id is
    // ever handed out).
    const sim::Step* step = nullptr;
    bool done = false;
    std::uint64_t zkey = 0;  // zobrist(slot, fingerprint) of this local state
  };

  // One-call expansion: the memoized step plus the memoized δ-successor its
  // observation leads to, reading the observed value from `regs` directly
  // (kRead/kRmw observe regs[step.reg]; writes and crit steps observe 0).
  // Fuses propose() + advance() into a single record access and lock scope.
  struct Expanded {
    const sim::Step* step = nullptr;  // nullptr when the automaton is done
    sim::Value read_value = 0;
    std::uint32_t next_id = 0;
    std::uint64_t zkey_delta = 0;  // old zkey ^ new zkey (XOR into aut_hash)
  };

  Expanded expand(std::uint32_t id, const sim::Value* regs) {
    const MaybeLock lock(mutex());
    const Record& record = records_[id];
    if (record.done) return {};
    Expanded out;
    out.step = &record.step;
    if (record.step.type == sim::StepType::kRead ||
        record.step.type == sim::StepType::kRmw) {
      out.read_value = regs[record.step.reg];
    }
    std::uint32_t next = kNone;
    for (std::uint8_t k = 0; k < record.inline_count; ++k) {
      if (record.inline_next[k].first == out.read_value) {
        next = record.inline_next[k].second;
        break;
      }
    }
    if (next == kNone) {
      for (const auto& [value, id2] : record.spill_next) {
        if (value == out.read_value) {
          next = id2;
          break;
        }
      }
    }
    if (next == kNone) next = advance_miss(id, out.read_value);
    out.next_id = next;
    out.zkey_delta = records_[id].zkey ^ records_[next].zkey;
    return out;
  }

  // Interns the process's initial automaton (takes ownership); returns id.
  std::uint32_t intern_initial(std::unique_ptr<sim::Automaton> automaton);

  // Interns an automaton produced outside this pool (a relabeled local state
  // from another pid's pool, for symmetry reduction); returns (id, zkey).
  // Idempotent per distinct local state, so interned counts stay
  // worker-invariant no matter which thread relabels first.
  std::pair<std::uint32_t, std::uint64_t> intern_external(
      std::unique_ptr<sim::Automaton> automaton);

  // The interned automaton object itself (for relabeling). The pointer is
  // stable for the pool's lifetime; records are written once before their id
  // is handed out, so the read is safe after the lock drops.
  const sim::Automaton* automaton(std::uint32_t id) const {
    const MaybeLock lock(mutex());
    return records_[id].automaton.get();
  }

  // The memoized step/done/fingerprint key of an interned local state.
  ProposeInfo propose(std::uint32_t id) const {
    const MaybeLock lock(mutex());
    const Record& record = records_[id];
    return {&record.step, record.done, record.zkey};
  }

  std::size_t size() const;
  std::size_t memory_bytes() const;

 private:
  struct Record {
    std::unique_ptr<const sim::Automaton> automaton;
    sim::Step step;
    std::uint64_t zkey = 0;
    bool done = false;
    // Memoized δ edges out of this local state: (observed value, next id).
    // Writes/crits observe nothing (one entry); read states observe the few
    // values the algorithm actually writes — so the first four live inline,
    // no pointer chase, and the rest spill to a vector.
    std::uint8_t inline_count = 0;
    std::array<std::pair<sim::Value, std::uint32_t>, 4> inline_next{};
    std::vector<std::pair<sim::Value, std::uint32_t>> spill_next;
  };

  // Cold path of expand(): clone, advance, intern, memoize; returns the
  // successor id. The caller already holds the lock (threaded mode).
  std::uint32_t advance_miss(std::uint32_t id, sim::Value read_value);

  // Caller must hold the lock (threaded mode). Takes ownership; dedupes by
  // fingerprint — an automaton fingerprint collision would alias two local
  // states, with the same (negligible) probability bound as the state set.
  std::uint32_t intern_locked(std::unique_ptr<sim::Automaton> automaton);

  std::mutex* mutex() const { return threaded_ ? &mutex_ : nullptr; }

  const bool threaded_;
  const std::uint64_t zobrist_slot_;
  mutable std::mutex mutex_;
  StablePool<Record> records_;
  std::unordered_map<std::uint64_t, std::uint32_t> by_fp_;  // cold path only
};

class RegisterFilePool {
 public:
  RegisterFilePool(int num_registers, bool threaded)
      : regs_(num_registers), threaded_(threaded) {}

  // Interns a register file (num_registers values at `regs`) whose zobrist
  // fingerprint is `fp`; returns its id. Exact-compares on fingerprint hits.
  std::uint32_t intern(const sim::Value* regs, std::uint64_t fp) {
    const MaybeLock lock(mutex());
    const std::size_t bytes = static_cast<std::size_t>(regs_) * sizeof(sim::Value);
    const auto probe = by_fp_.find_or_reserve(fp);
    if (probe.found) {
      // Walk the (almost always length-1) chain of ids sharing this
      // fingerprint, exact-comparing contents.
      std::uint32_t id = probe.idx;
      for (;;) {
        if (bytes == 0 ||
            std::memcmp(values_.data() + static_cast<std::size_t>(id) * regs_, regs,
                        bytes) == 0) {
          return id;
        }
        if (collision_next_[id] == kNoNext) break;
        id = collision_next_[id];
      }
    }
    const auto id = static_cast<std::uint32_t>(fps_.size());
    values_.insert(values_.end(), regs, regs + regs_);
    fps_.push_back(fp);
    // New id becomes the probe entry; a genuine collision chains to the old
    // id. The slot is still valid: nothing touched by_fp_ since the probe.
    collision_next_.push_back(probe.found ? probe.idx : kNoNext);
    by_fp_.commit_slot(probe.slot, id);
    return id;
  }

  // Copies register file `id` into `out` (sized num_registers); returns the
  // file's fingerprint.
  std::uint64_t copy_to(std::uint32_t id, sim::Value* out) const {
    const MaybeLock lock(mutex());
    std::memcpy(out, values_.data() + static_cast<std::size_t>(id) * regs_,
                static_cast<std::size_t>(regs_) * sizeof(sim::Value));
    return fps_[id];
  }

  int num_registers() const { return regs_; }
  std::size_t size() const;
  std::size_t memory_bytes() const;

 private:
  static constexpr std::uint32_t kNoNext = 0xffffffffu;

  std::mutex* mutex() const { return threaded_ ? &mutex_ : nullptr; }

  const int regs_;
  const bool threaded_;
  mutable std::mutex mutex_;
  std::vector<sim::Value> values_;   // SoA: id → values_[id * regs_ .. +regs_)
  std::vector<std::uint64_t> fps_;
  FlatStateSet by_fp_;               // fp → first id with that fp
  std::vector<std::uint32_t> collision_next_;  // per-id chain (kNoNext = end)
};

}  // namespace melb::check
