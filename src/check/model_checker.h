// Explicit-state model checker for mutex algorithms at small n.
//
// Explores every interleaving of one canonical pass (each participating
// process runs try → enter → exit → rem once) and evaluates a list of
// pluggable check::Property instances over the exploration (check/property.h
// — the primary entry point is check(algorithm, n, properties, options)).
// The stock properties, via make_property:
//  * "mutex" — no reachable state has two processes between their enter and
//    exit steps. Counterexample trace reported on violation.
//  * "progress" (deadlock/livelock freedom for the explored fragment) — from
//    every reachable state, some terminal state (all participants done) is
//    reachable. A state with no path to termination means every fair
//    continuation spins forever: a livelock witness.
//  * "lockout" — per-pid starvation freedom under fair schedules.
//  * "rmr-bound[:MODEL]" — certified worst-case cost to enter the CS under a
//    src/cost/ model, reported in CheckResult::property_reports.
//
// Participation subsets matter: the paper's livelock-freedom must hold when
// only some processes ever leave their remainder sections (a process that
// never takes a critical step is exempt from fairness). `check_all_subsets`
// runs the checker once per nonempty subset; the static round-robin
// "algorithm" passes with all n participants but fails on {1}, which is
// exactly why its Θ(n) canonical cost does not contradict Theorem 7.5.
//
// States are deduplicated by 64-bit fingerprint of (registers, automaton
// states); a collision would silently merge two distinct states. The
// birthday bound ~states²·2⁻⁶⁵ is negligible through the 10⁷-state regime
// (~5·10⁻⁶) but grows to the low percents at the 10⁹-state scale DDD
// unlocks — certification runs up there should treat a pass as
// high-confidence, not proof (a wider fingerprint is the known remedy and
// would double the run records; see docs/checker-architecture.md).
//
// The full engine design — interning, fingerprints, the frontier/closed
// temperature split, edge-stream compression, the spill protocol, delayed
// duplicate detection, the external-memory progress pass, and the
// worker-determinism contract, with per-structure bytes/state — is written
// down in docs/checker-architecture.md. In brief:
//
//  * Flyweight core: distinct process local states are interned once per pid
//    (check/intern.h) with memoized δ, state fingerprints are zobrist hashes
//    updated in O(1) from the parent (util/hash.h), and within-level dedup
//    uses a striped flat open-addressing table (check/state_set.h).
//  * Temperature split (check/closed_store.h): full expansion records exist
//    only for the current and next BFS level; every closed state drops to a
//    packed 5-byte (parent, acting pid) record, transitions live in a
//    delta-compressed edge stream (~1-4 B/edge), and counterexample traces
//    are reconstructed on demand by replaying the parent chain through the
//    memoized δ. Under CheckOptions::memory_limit_mb, cold chunks spill to a
//    temp file instead of aborting.
//  * Delayed duplicate detection (CheckOptions::ddd): the visited table no
//    longer holds every fingerprint forever. It is cleared per BFS level;
//    the most recent `ddd_window` levels stay as sorted in-RAM (fp, idx)
//    arrays, and older levels are flushed as sorted runs
//    (check/closed_store.h FingerprintRuns) that each level's unknown
//    candidates are deduplicated against by one sort-merge pass — runs are
//    spillable, so no RAM structure grows with total states.
//  * Progress pass: external-memory reverse BFS. Instead of materializing a
//    predecessor CSR (4 B/edge + 4 B/state), the pass keeps one bit per
//    state and streams the compressed edge list in reverse (chunk-at-a-time,
//    including spilled chunks) until the can-finish marking reaches a
//    fixpoint.
//
// Exploration is level-synchronous BFS on a persistent exp::TaskPool (one
// pool for the whole check, woken per phase — no per-level thread spawns):
// candidates are generated in parallel batches, deduplicated per stripe,
// then sequenced in (parent index, pid) order — exactly the serial engine's
// order. Determinism contract: every CheckResult field except wall_micros is
// a pure function of (algorithm, n, options minus workers); violations,
// traces (lowest-index parent wins), statistics, and spill points are
// byte-identical for every worker count. DDD mode additionally produces the
// same states/transitions/dedup_hits/interned_* counts as hash-table mode —
// only the memory statistics differ.
//
// Thread-safety: check_algorithm keeps its entire frontier/state table in
// locals and touches the Algorithm only through const methods, so concurrent
// checks of the same Algorithm instance (e.g. from parallel sweep cells) are
// safe. Cloned automata inside one check are never shared across checks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/property.h"
#include "sim/automaton.h"
#include "sim/types.h"

namespace melb::check {

struct CheckOptions {
  std::uint64_t max_states = 2'000'000;
  // DEPRECATED shims: when `properties` below is empty, these two booleans
  // are translated into the equivalent property list ("mutex" and/or
  // "progress", in that order) so pre-property-engine callers keep their
  // exact behavior. Ignored whenever `properties` is non-empty. New code
  // should set `properties` (or call check() with explicit instances).
  bool check_mutex = true;
  bool check_progress = true;
  // Property specs for make_property ("mutex", "progress", "lockout",
  // "rmr-bound[:MODEL]"). Empty = fall back to the two legacy booleans
  // above. check_algorithm instantiates these fresh per run (and per subset
  // in check_all_subsets — properties are stateful, never shared).
  std::vector<std::string> properties;
  // Frontier-expansion workers; <=1 explores on the calling thread. Results
  // are byte-identical for every value (see determinism contract above). In
  // check_all_subsets, workers > 1 instead runs whole subset checks in
  // parallel (each subset explored serially) on one shared pool.
  int workers = 1;
  // Soft ceiling on the engine's tracked table memory, in MiB; 0 = no limit.
  // When tracked memory crosses the ceiling the engine spills closed-state,
  // edge, and (in DDD mode) fingerprint-run chunks to an anonymous temp file
  // (best effort — it degrades to in-RAM operation if no temp storage
  // exists, and hot structures that cannot spill may still exceed the
  // ceiling; the check never aborts on memory grounds). Spill points depend
  // only on the options, never on the worker count, so all statistics stay
  // byte-identical across workers.
  std::uint64_t memory_limit_mb = 0;
  // Delayed duplicate detection: dedupe each BFS level against sorted
  // fingerprint runs (sort-merge) instead of one ever-growing hash table.
  // Same results and exploration statistics as hash-table mode; the visited
  // structure's RAM becomes bounded by the level window instead of by total
  // states, and its cold part (the runs) spills under memory_limit_mb.
  // Slower per state (every level pays a merge over all closed
  // fingerprints), so worth it exactly when the visited table is what no
  // longer fits in RAM.
  bool ddd = false;
  // DDD only: how many completed recent levels stay hot as sorted in-RAM
  // arrays (candidates hitting them skip the run merge). Clamped to >= 1.
  // Purely a performance knob — any value yields identical results.
  int ddd_window = 2;
  // Cap on successor candidates materialized per expansion batch; 0 = the
  // engine default (1M). A testing/tuning knob: smaller caps force levels to
  // split into many batches (each DDD batch pays its own run merge). Any
  // value yields identical results for a fixed option set, but the cap is
  // part of the batching schedule, so compare runs only at equal caps.
  std::uint64_t batch_candidates = 0;
  // Pid-symmetry reduction: canonicalize every successor under the
  // algorithm's pid-permutation group (sim/symmetry.h) before fingerprinting
  // and store only orbit representatives — an up-to-n! state-count cut.
  // Each closed record grows by one byte: the index of the group element
  // that mapped the concrete successor to its stored representative, which
  // trace replay inverts (composing along the parent chain) to reconstruct
  // concrete executions. The canonical choice (minimum image fingerprint,
  // ties to the smallest group index) is a pure function of the state, so
  // all results and statistics remain worker-invariant, and the mode
  // composes with workers/memory_limit_mb/ddd. Verdicts match plain mode;
  // states/transitions/dedup_hits and the memory statistics legitimately
  // shrink. Requires n <= 8 (the group is enumerated); algorithms without a
  // declared symmetry action run under the identity group (no reduction,
  // same verdicts). If an algorithm's group exceeds 255 elements (the
  // witness byte), only the first 255 in enumeration order are used — still
  // sound, just less reduction.
  bool symmetry = false;
  // Which pids take part; empty = all n. Non-participants take no steps.
  // Under symmetry, group elements must fix non-participants pointwise.
  std::vector<sim::Pid> participants;
};

struct CheckResult {
  bool ok = false;
  bool exhausted_limit = false;   // hit max_states before full exploration
  std::string violation;          // empty if ok
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  // For mutex violations: a step sequence from the initial state to the bad
  // state. For progress violations: a path to a livelocked state. For
  // lockout: a path to the fair starvation cycle plus the starving process's
  // next (forever-spinning) step.
  std::optional<std::vector<sim::Step>> counterexample;
  // One report per requested property, in property-list order: verdict,
  // human-readable detail, and (rmr-bound) the certified bound. Part of the
  // worker-invariant determinism contract like every other non-wall-clock
  // field.
  std::vector<PropertyReport> property_reports;

  // Engine statistics. Everything except wall_micros is a pure function of
  // (algorithm, n, options minus workers) — worker-count independent, so the
  // CLI's determinism check can compare them byte-for-byte.
  std::uint64_t dedup_hits = 0;         // successor candidates already visited
  std::uint64_t interned_automata = 0;  // distinct process local states seen
  std::uint64_t interned_regfiles = 0;  // distinct register-file contents seen
  std::uint64_t peak_memory_bytes = 0;  // engine-owned RAM tables at their peak
  std::uint64_t spilled_bytes = 0;      // written to the spill file (0 = no spill)
  // High-water mark of the dedup structure's RAM-mandatory part: the visited
  // hash table, plus (DDD) the window arrays — but not the spillable runs.
  // Hash-table mode: grows with total states. DDD mode: bounded by the
  // widest level in the window — the number the DDD bench row tracks.
  std::uint64_t peak_visited_bytes = 0;
  // Transient RAM of the progress pass: the 1-bit-per-state marking plus the
  // reverse edge-stream scratch (one chunk decoded at a time). Replaces the
  // old 4 B/edge + 4 B/state predecessor CSR. 0 when the pass did not run.
  std::uint64_t progress_peak_bytes = 0;
  std::uint64_t ddd_runs = 0;           // sorted fingerprint runs formed (DDD only)
  // Size of the pid-permutation group the run canonicalized under (includes
  // the identity); 0 when CheckOptions::symmetry was off. 1 means the
  // algorithm admits no nontrivial symmetry at this n: exploration then
  // matches plain mode state-for-state.
  std::uint64_t symmetry_group = 0;
  std::uint64_t wall_micros = 0;        // exploration wall time (run-dependent)
  // Spill-path I/O failure diagnostic (SpillFile::error), empty = healthy.
  // Results are still correct when set (the failed chunks stayed in RAM),
  // but the memory budget was not honored — the CLI reports it and exits
  // nonzero. Environment-dependent, so excluded from the determinism
  // signature, like wall_micros.
  std::string io_error;
};

// The primary entry point: explores the algorithm's full state space for
// `n` processes and evaluates `properties` over it (hot-path vetting during
// exploration, end-of-run passes afterwards; first violation in list order
// wins). Takes ownership of the property instances — they are stateful and
// single-use. Throws std::invalid_argument for n > 64: the engine packs
// per-state rows into fixed 64-wide buffers, and exhaustive exploration is
// unreachable long before that anyway (restrict `options.participants`
// instead — the limit is on n, participating or not). With options.symmetry,
// additionally throws for n > 8 (the permutation group is enumerated at
// startup) and for any property whose supports_symmetry() is false.
// `options.check_mutex/check_progress/properties` are ignored here — the
// explicit list is the property selection.
CheckResult check(const sim::Algorithm& algorithm, int n,
                  PropertyList properties, const CheckOptions& options = {});

// Spec-list equivalent of the options: options.properties if non-empty,
// otherwise the legacy booleans translated ("mutex", "progress"). What
// check_algorithm instantiates, exposed so CLI/tests can report it.
std::vector<std::string> effective_property_specs(const CheckOptions& options);

// Convenience wrapper: builds effective_property_specs(options) through
// make_property and calls check(). Pre-property-engine callers (the two
// booleans, default options) get byte-identical verdicts, traces, and
// statistics to the old hardcoded engine.
CheckResult check_algorithm(const sim::Algorithm& algorithm, int n,
                            const CheckOptions& options = {});

// Runs check_algorithm for every nonempty subset of [0, n). Returns the
// first failing result (with the subset recorded in `violation`), or the
// all-participants result if every subset passes.
CheckResult check_all_subsets(const sim::Algorithm& algorithm, int n,
                              const CheckOptions& options = {});

}  // namespace melb::check
