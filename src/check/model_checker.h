// Explicit-state model checker for mutex algorithms at small n.
//
// Explores every interleaving of one canonical pass (each participating
// process runs try → enter → exit → rem once) and checks:
//  * Mutual exclusion — no reachable state has two processes between their
//    enter and exit steps. Counterexample trace reported on violation.
//  * Progress (deadlock/livelock freedom for the explored fragment) — from
//    every reachable state, some terminal state (all participants done) is
//    reachable. A state with no path to termination means every fair
//    continuation spins forever: a livelock witness.
//
// Participation subsets matter: the paper's livelock-freedom must hold when
// only some processes ever leave their remainder sections (a process that
// never takes a critical step is exempt from fairness). `check_all_subsets`
// runs the checker once per nonempty subset; the static round-robin
// "algorithm" passes with all n participants but fails on {1}, which is
// exactly why its Θ(n) canonical cost does not contradict Theorem 7.5.
//
// States are deduplicated by 64-bit fingerprint of (registers, automaton
// states); a collision would merge two distinct states, with probability
// ~(states²)·2⁻⁶⁴ — negligible at the ≤10⁷ states this checker is meant for.
//
// Engine (the flyweight core): states are packed 24-byte records — a 32-bit
// register-file intern id, a 32-bit automaton intern id per process, parent
// back-pointer, and an XOR-composable automaton hash. Distinct process local
// states are interned once per pid (check/intern.h) with memoized δ, state
// fingerprints are zobrist hashes updated in O(1) from the parent
// (util/hash.h), and the visited set is a striped flat open-addressing table
// (check/state_set.h). Exploration is level-synchronous BFS: candidates are
// generated in parallel (CheckOptions::workers, on the exp/ work-stealing
// pool), deduplicated per stripe, then sequenced in (parent index, pid)
// order — exactly the serial engine's order — so violations, traces
// (lowest-index parent wins), and every CheckResult statistic are
// byte-identical for any worker count.
//
// Thread-safety: check_algorithm keeps its entire frontier/state table in
// locals and touches the Algorithm only through const methods, so concurrent
// checks of the same Algorithm instance (e.g. from parallel sweep cells) are
// safe. Cloned automata inside one check are never shared across checks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/automaton.h"
#include "sim/types.h"

namespace melb::check {

struct CheckOptions {
  std::uint64_t max_states = 2'000'000;
  bool check_mutex = true;
  bool check_progress = true;
  // Frontier-expansion workers; <=1 explores on the calling thread. Results
  // are byte-identical for every value (see engine comment above).
  int workers = 1;
  // Which pids take part; empty = all n. Non-participants take no steps.
  std::vector<sim::Pid> participants;
};

struct CheckResult {
  bool ok = false;
  bool exhausted_limit = false;   // hit max_states before full exploration
  std::string violation;          // empty if ok
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  // For mutex violations: a step sequence from the initial state to the bad
  // state. For progress violations: a path to a livelocked state.
  std::optional<std::vector<sim::Step>> counterexample;

  // Engine statistics. Everything except wall_micros is a pure function of
  // (algorithm, n, options minus workers) — worker-count independent, so the
  // CLI's determinism check can compare them byte-for-byte.
  std::uint64_t dedup_hits = 0;         // successor candidates already visited
  std::uint64_t interned_automata = 0;  // distinct process local states seen
  std::uint64_t interned_regfiles = 0;  // distinct register-file contents seen
  std::uint64_t peak_memory_bytes = 0;  // engine-owned tables at their peak
  std::uint64_t wall_micros = 0;        // exploration wall time (run-dependent)
};

// Explores the algorithm's full state space for `n` processes. Throws
// std::invalid_argument for n > 64: the engine packs per-state rows into
// fixed 64-wide buffers, and exhaustive exploration is unreachable long
// before that anyway (restrict `options.participants` instead — the limit is
// on n, participating or not).
CheckResult check_algorithm(const sim::Algorithm& algorithm, int n,
                            const CheckOptions& options = {});

// Runs check_algorithm for every nonempty subset of [0, n). Returns the
// first failing result (with the subset recorded in `violation`), or the
// all-participants result if every subset passes.
CheckResult check_all_subsets(const sim::Algorithm& algorithm, int n,
                              const CheckOptions& options = {});

}  // namespace melb::check
