// Explicit-state model checker for mutex algorithms at small n.
//
// Explores every interleaving of one canonical pass (each participating
// process runs try → enter → exit → rem once) and checks:
//  * Mutual exclusion — no reachable state has two processes between their
//    enter and exit steps. Counterexample trace reported on violation.
//  * Progress (deadlock/livelock freedom for the explored fragment) — from
//    every reachable state, some terminal state (all participants done) is
//    reachable. A state with no path to termination means every fair
//    continuation spins forever: a livelock witness.
//
// Participation subsets matter: the paper's livelock-freedom must hold when
// only some processes ever leave their remainder sections (a process that
// never takes a critical step is exempt from fairness). `check_all_subsets`
// runs the checker once per nonempty subset; the static round-robin
// "algorithm" passes with all n participants but fails on {1}, which is
// exactly why its Θ(n) canonical cost does not contradict Theorem 7.5.
//
// States are deduplicated by 64-bit fingerprint of (registers, automaton
// states); a collision would merge two distinct states, with probability
// ~(states²)·2⁻⁶⁴ — negligible at the ≤10⁷ states this checker is meant for.
//
// Engine (the flyweight core): distinct process local states are interned
// once per pid (check/intern.h) with memoized δ, state fingerprints are
// zobrist hashes updated in O(1) from the parent (util/hash.h), and the
// visited set is a striped flat open-addressing table (check/state_set.h).
// State storage is split by temperature (check/closed_store.h): the hot
// frontier keeps full expansion records (automaton hash, register-file id,
// stride-n automaton intern ids, section counters) for the current and next
// BFS level only, while every closed state drops to a packed 5-byte
// (parent, acting pid) record; counterexample traces are reconstructed on
// demand by replaying the parent chain through the memoized δ. Transitions
// live in a delta-compressed edge stream (~1-4 bytes per edge). Under
// CheckOptions::memory_limit_mb the engine spills closed and edge chunks to
// a temp file instead of aborting, which is what pushes exhaustive checks
// past the RAM-bound regime (yang-anderson n=5, ~10^8 states).
// Exploration is level-synchronous BFS on a persistent exp::TaskPool (one
// pool for the whole check, woken twice per level — no per-level thread
// spawns): candidates are generated in parallel batches, deduplicated per
// stripe, then sequenced in (parent index, pid) order — exactly the serial
// engine's order — so violations, traces (lowest-index parent wins), and
// every CheckResult statistic are byte-identical for any worker count.
//
// Thread-safety: check_algorithm keeps its entire frontier/state table in
// locals and touches the Algorithm only through const methods, so concurrent
// checks of the same Algorithm instance (e.g. from parallel sweep cells) are
// safe. Cloned automata inside one check are never shared across checks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/automaton.h"
#include "sim/types.h"

namespace melb::check {

struct CheckOptions {
  std::uint64_t max_states = 2'000'000;
  bool check_mutex = true;
  bool check_progress = true;
  // Frontier-expansion workers; <=1 explores on the calling thread. Results
  // are byte-identical for every value (see engine comment above). In
  // check_all_subsets, workers > 1 instead runs whole subset checks in
  // parallel (each subset explored serially) on one shared pool.
  int workers = 1;
  // Soft ceiling on the engine's tracked table memory, in MiB; 0 = no limit.
  // When tracked memory crosses the ceiling the engine spills closed-state
  // and edge chunks to an anonymous temp file (best effort — it degrades to
  // in-RAM operation if no temp storage exists, and hot structures that
  // cannot spill may still exceed the ceiling; the check never aborts on
  // memory grounds). Spill points depend only on the options, never on the
  // worker count, so all statistics stay byte-identical across workers.
  std::uint64_t memory_limit_mb = 0;
  // Which pids take part; empty = all n. Non-participants take no steps.
  std::vector<sim::Pid> participants;
};

struct CheckResult {
  bool ok = false;
  bool exhausted_limit = false;   // hit max_states before full exploration
  std::string violation;          // empty if ok
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  // For mutex violations: a step sequence from the initial state to the bad
  // state. For progress violations: a path to a livelocked state.
  std::optional<std::vector<sim::Step>> counterexample;

  // Engine statistics. Everything except wall_micros is a pure function of
  // (algorithm, n, options minus workers) — worker-count independent, so the
  // CLI's determinism check can compare them byte-for-byte.
  std::uint64_t dedup_hits = 0;         // successor candidates already visited
  std::uint64_t interned_automata = 0;  // distinct process local states seen
  std::uint64_t interned_regfiles = 0;  // distinct register-file contents seen
  std::uint64_t peak_memory_bytes = 0;  // engine-owned RAM tables at their peak
  std::uint64_t spilled_bytes = 0;      // written to the spill file (0 = no spill)
  std::uint64_t wall_micros = 0;        // exploration wall time (run-dependent)
};

// Explores the algorithm's full state space for `n` processes. Throws
// std::invalid_argument for n > 64: the engine packs per-state rows into
// fixed 64-wide buffers, and exhaustive exploration is unreachable long
// before that anyway (restrict `options.participants` instead — the limit is
// on n, participating or not).
CheckResult check_algorithm(const sim::Algorithm& algorithm, int n,
                            const CheckOptions& options = {});

// Runs check_algorithm for every nonempty subset of [0, n). Returns the
// first failing result (with the subset recorded in `violation`), or the
// all-participants result if every subset passes.
CheckResult check_all_subsets(const sim::Algorithm& algorithm, int n,
                              const CheckOptions& options = {});

}  // namespace melb::check
