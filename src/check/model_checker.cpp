#include "check/model_checker.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "check/intern.h"
#include "check/state_set.h"
#include "exp/runner.h"
#include "util/hash.h"

namespace melb::check {

namespace {

using sim::CritKind;
using sim::Pid;
using sim::Step;
using sim::StepType;
using sim::Value;

// Fingerprint contribution of a non-participating (null) process slot.
constexpr std::uint64_t kNullAutomatonFp = 0x5eed;

// Below this many frontier states a level is expanded inline even when
// workers > 1: thread fan-out costs more than the work it would split.
constexpr std::size_t kMinParallelLevel = 256;

// Packed per-state record; the automaton intern ids live in a parallel flat
// array with stride n (SoA), register values in the RegisterFilePool.
struct StateRecord {
  std::uint64_t aut_hash = 0;    // XOR_p zobrist(regs + p, automaton fp_p)
  std::uint32_t regfile = 0;     // RegisterFilePool id
  std::uint32_t parent = 0;
  std::uint8_t acting_pid = 0xff;  // step taken from parent; 0xff at the root
  std::int8_t in_cs = 0;           // processes between enter and exit
  std::uint8_t done_count = 0;     // participants that performed rem
  std::uint8_t pad = 0;
};

// A successor proposal produced by phase 1, before deduplication.
struct Candidate {
  std::uint64_t fp = 0;        // regfile zobrist fp ^ aut_hash
  std::uint64_t aut_hash = 0;
  std::uint32_t regfile = 0;
  std::uint32_t next_aut = 0;  // acting pid's automaton after the step
  std::uint8_t pid = 0;
  std::int8_t in_cs = 0;
  std::uint8_t done_count = 0;
  std::uint8_t valid = 0;
  std::uint8_t stripe = 0;     // visited-set stripe (filled in bucketing)
};

// Phase-2a probe outcomes stored per candidate (real indices otherwise).
constexpr std::uint32_t kReservedNew = 0xffffffffu;
constexpr std::uint32_t kPendingDup = 0xfffffffeu;

class Engine {
 public:
  Engine(const sim::Algorithm& algorithm, int n, const CheckOptions& options)
      : algorithm_(algorithm),
        n_(n),
        options_(options),
        regs_(algorithm.num_registers(n)),
        workers_(std::max(1, options.workers)),
        // States are indexed by uint32 and the top values are probe sentinels.
        max_states_(std::min<std::uint64_t>(options.max_states, 0xfff00000u)),
        regpool_(regs_, workers_ > 1) {}

  CheckResult run();

 private:
  enum class LevelOutcome { kContinue, kViolation, kExhausted };

  std::uint64_t automaton_slot(Pid pid) const {
    return static_cast<std::uint64_t>(regs_) + static_cast<std::uint64_t>(pid);
  }

  void init_root();
  void expand_state(std::uint32_t idx, Candidate* out, Value* scratch);
  std::uint32_t append_state(const Candidate& cand, std::uint32_t parent);
  void record_mutex_violation(std::uint32_t parent, Pid pid);
  LevelOutcome serial_level(std::vector<std::uint32_t>& next_level);
  LevelOutcome sequence_level(std::vector<std::uint32_t>& next_level);
  std::vector<Step> trace_to(std::uint32_t idx) const;
  Step step_into(std::uint32_t idx) const;
  void check_progress();
  void finalize_stats();

  const sim::Algorithm& algorithm_;
  const int n_;
  const CheckOptions& options_;
  const int regs_;
  const int workers_;
  const std::uint64_t max_states_;
  int num_participants_ = 0;

  std::vector<std::unique_ptr<AutomatonPool>> pools_;  // one per pid (null = out)
  RegisterFilePool regpool_;
  StripedStateSet visited_;

  std::vector<StateRecord> records_;
  std::vector<std::uint32_t> automata_;  // stride n_: state → per-pid intern ids
  // Transition edges as a flat (from, to) list — one amortized 8-byte append
  // per edge instead of a heap-allocated adjacency vector per state; the
  // progress check builds its predecessor CSR from this in one pass.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
  std::vector<std::uint32_t> terminals_;

  // Per-level working storage (reused across levels).
  std::vector<std::uint32_t> expand_;
  std::vector<Candidate> cands_;
  std::vector<std::uint32_t> probe_;
  std::vector<std::uint32_t> slots_;  // probe slots (valid while slot_ok_)
  std::vector<std::vector<std::uint32_t>> buckets_{StripedStateSet::kStripes};
  // Per stripe: did the table stay growth-free during this level's phase 2a?
  // If so, phase 2b may use the recorded slots directly (no re-probe).
  std::vector<std::uint8_t> slot_ok_ =
      std::vector<std::uint8_t>(StripedStateSet::kStripes, 0);
  std::vector<std::vector<Value>> scratch_;

  CheckResult result_;
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

void Engine::init_root() {
  std::vector<bool> participates(static_cast<std::size_t>(n_),
                                 options_.participants.empty());
  num_participants_ = options_.participants.empty() ? n_ : 0;
  for (Pid pid : options_.participants) {
    if (!participates[static_cast<std::size_t>(pid)]) {
      participates[static_cast<std::size_t>(pid)] = true;
      ++num_participants_;
    }
  }

  std::vector<Value> init_regs(static_cast<std::size_t>(std::max(regs_, 1)), 0);
  std::uint64_t regfp = 0;
  for (sim::Reg r = 0; r < regs_; ++r) {
    const Value v = algorithm_.register_init(r, n_);
    init_regs[static_cast<std::size_t>(r)] = v;
    regfp ^= util::zobrist_signed(static_cast<std::uint64_t>(r), v);
  }
  const std::uint32_t regfile = regpool_.intern(init_regs.data(), regfp);

  pools_.resize(static_cast<std::size_t>(n_));
  automata_.resize(static_cast<std::size_t>(n_), AutomatonPool::kNone);
  std::uint64_t aut_hash = 0;
  for (Pid p = 0; p < n_; ++p) {
    if (participates[static_cast<std::size_t>(p)]) {
      pools_[static_cast<std::size_t>(p)] =
          std::make_unique<AutomatonPool>(workers_ > 1, automaton_slot(p));
      const std::uint32_t id = pools_[static_cast<std::size_t>(p)]->intern_initial(
          algorithm_.make_process(p, n_));
      automata_[static_cast<std::size_t>(p)] = id;
      aut_hash ^= pools_[static_cast<std::size_t>(p)]->propose(id).zkey;
    } else {
      aut_hash ^= util::zobrist(automaton_slot(p), kNullAutomatonFp);
    }
  }

  StateRecord root;
  root.aut_hash = aut_hash;
  root.regfile = regfile;
  records_.push_back(root);
  visited_.find_or_reserve(regfp ^ aut_hash);
  visited_.commit(regfp ^ aut_hash, 0);

  scratch_.assign(static_cast<std::size_t>(workers_),
                  std::vector<Value>(static_cast<std::size_t>(std::max(regs_, 1))));
}

// Compute all successor candidates of state `idx` into out[0..n). Touches
// only the caller-owned candidate row plus the (internally locked when
// threaded) interning pools, so parallel chunks can run on any worker.
void Engine::expand_state(std::uint32_t idx, Candidate* out, Value* scratch) {
  const StateRecord rec = records_[idx];
  const std::uint64_t parent_regfp = regpool_.copy_to(rec.regfile, scratch);

  for (Pid pid = 0; pid < n_; ++pid) {
    Candidate& cand = out[pid];
    cand.valid = 0;
    const std::uint32_t aid =
        automata_[static_cast<std::size_t>(idx) * n_ + static_cast<std::size_t>(pid)];
    if (aid == AutomatonPool::kNone) continue;
    AutomatonPool& pool = *pools_[static_cast<std::size_t>(pid)];
    const auto expanded = pool.expand(aid, scratch);
    if (expanded.step == nullptr) continue;  // automaton done
    const Step& step = *expanded.step;

    std::uint64_t regfp = parent_regfp;
    std::uint32_t regfile = rec.regfile;
    std::int8_t in_cs = rec.in_cs;
    std::uint8_t done_count = rec.done_count;

    if (step.type == StepType::kWrite || step.type == StepType::kRmw) {
      const auto reg = static_cast<std::size_t>(step.reg);
      const Value old_value = scratch[reg];
      const Value new_value =
          step.type == StepType::kWrite ? step.value : sim::apply_rmw(step, old_value);
      if (new_value != old_value) {
        regfp ^= util::zobrist_signed(static_cast<std::uint64_t>(step.reg), old_value) ^
                 util::zobrist_signed(static_cast<std::uint64_t>(step.reg), new_value);
        scratch[reg] = new_value;
        regfile = regpool_.intern(scratch, regfp);
        scratch[reg] = old_value;  // keep the parent file intact for other pids
      }
    } else if (step.type == StepType::kCrit) {
      if (step.crit == CritKind::kEnter) ++in_cs;
      if (step.crit == CritKind::kExit) --in_cs;
      if (step.crit == CritKind::kRem) ++done_count;
    }

    const std::uint64_t aut_hash = rec.aut_hash ^ expanded.zkey_delta;
    cand.fp = regfp ^ aut_hash;
    cand.aut_hash = aut_hash;
    cand.regfile = regfile;
    cand.next_aut = expanded.next_id;
    cand.pid = static_cast<std::uint8_t>(pid);
    cand.in_cs = in_cs;
    cand.done_count = done_count;
    cand.valid = 1;
  }
}

// Appends the candidate as a fresh state record (the caller has already
// decided it is new) and returns its index.
std::uint32_t Engine::append_state(const Candidate& cand, std::uint32_t parent) {
  const std::size_t stride = static_cast<std::size_t>(n_);
  const auto target = static_cast<std::uint32_t>(records_.size());
  StateRecord rec;
  rec.aut_hash = cand.aut_hash;
  rec.regfile = cand.regfile;
  rec.parent = parent;
  rec.acting_pid = cand.pid;
  rec.in_cs = cand.in_cs;
  rec.done_count = cand.done_count;
  records_.push_back(rec);
  // Stage the new automaton row in a local buffer before appending: inserting
  // a range that aliases the destination vector is undefined when the insert
  // reallocates — exactly the dangling-reference class the old engine's BFS
  // loop suffered from (automaton reference held across states.push_back).
  std::uint32_t row[64];  // n_ <= 64 enforced in run()
  const std::uint32_t* parent_row = automata_.data() + static_cast<std::size_t>(parent) * stride;
  for (std::size_t k = 0; k < stride; ++k) row[k] = parent_row[k];
  row[cand.pid] = cand.next_aut;
  automata_.insert(automata_.end(), row, row + stride);
  return target;
}

void Engine::record_mutex_violation(std::uint32_t parent, Pid pid) {
  result_.violation = "mutual exclusion violated: two processes in the critical section";
  auto steps = trace_to(parent);
  steps.push_back(*pools_[static_cast<std::size_t>(pid)]
                       ->propose(automata_[static_cast<std::size_t>(parent) *
                                               static_cast<std::size_t>(n_) +
                                           static_cast<std::size_t>(pid)])
                       .step);
  result_.counterexample = std::move(steps);
}

// Serial fast path: generate and sequence each state's candidates in one
// pass — probe and commit back-to-back (the slot is always valid), no
// candidate buffers, no bucketing. Visits candidates in exactly the same
// (parent index, pid) order as the phased path, so every output — indices,
// traces, dedup counts, table growth — is identical.
Engine::LevelOutcome Engine::serial_level(std::vector<std::uint32_t>& next_level) {
  Candidate row[64];  // n_ <= 64 enforced in run()
  Value* scratch = scratch_[0].data();
  const bool check_mutex = options_.check_mutex;
  LevelOutcome outcome = LevelOutcome::kContinue;
  for (std::size_t ei = 0; ei < expand_.size(); ++ei) {
    const std::uint32_t parent = expand_[ei];
    expand_state(parent, row, scratch);
    for (Pid pid = 0; pid < n_; ++pid) {
      const Candidate& cand = row[pid];
      if (!cand.valid) continue;
      // After an abort we keep expanding and reserving (but stop sequencing)
      // the rest of the level: the phased path runs phase 1 and its 2a
      // probes for the whole level before the sequencer aborts, so the
      // interning pools and visited set — and therefore the interned_* and
      // peak-memory statistics — must match side effect for side effect.
      if (outcome != LevelOutcome::kContinue) {
        visited_.find_or_reserve(cand.fp);
        continue;
      }
      if (check_mutex && cand.in_cs > 1) {
        record_mutex_violation(parent, pid);
        outcome = LevelOutcome::kViolation;
        visited_.find_or_reserve(cand.fp);  // 2a reserved it before 2b aborted
        continue;
      }
      std::uint32_t target;
      FlatStateSet& stripe = visited_.stripe(visited_.stripe_of(cand.fp));
      const auto probe = stripe.find_or_reserve(cand.fp);
      if (!probe.found) {
        target = append_state(cand, parent);
        stripe.commit_slot(probe.slot, target);  // valid: no growth since probe
        next_level.push_back(target);
      } else {
        target = probe.idx;
        ++result_.dedup_hits;
      }
      if (target != parent) {  // ignore free-spin self-loops
        edges_.emplace_back(parent, target);
        ++result_.transitions;
      }
      if (records_.size() > max_states_) outcome = LevelOutcome::kExhausted;
    }
  }
  return outcome;
}

// Phase 2b: walk candidates in (parent index, pid) order — the serial BFS
// order — assigning state indices, recording edges, and checking mutual
// exclusion. Serial and deterministic by construction.
Engine::LevelOutcome Engine::sequence_level(std::vector<std::uint32_t>& next_level) {
  const std::size_t stride = static_cast<std::size_t>(n_);
  for (std::size_t ei = 0; ei < expand_.size(); ++ei) {
    const std::uint32_t parent = expand_[ei];
    for (Pid pid = 0; pid < n_; ++pid) {
      const std::size_t ci = ei * stride + static_cast<std::size_t>(pid);
      const Candidate& cand = cands_[ci];
      if (!cand.valid) continue;

      if (options_.check_mutex && cand.in_cs > 1) {
        record_mutex_violation(parent, pid);
        return LevelOutcome::kViolation;
      }

      std::uint32_t target;
      FlatStateSet& stripe = visited_.stripe(cand.stripe);
      if (probe_[ci] == kReservedNew) {
        if (slot_ok_[cand.stripe]) {
          target = append_state(cand, parent);
          stripe.commit_slot(slots_[ci], target);
        } else {
          target = append_state(cand, parent);
          stripe.commit(cand.fp, target);
        }
        next_level.push_back(target);
      } else if (probe_[ci] == kPendingDup) {
        target = slot_ok_[cand.stripe] ? stripe.idx_at(slots_[ci]) : stripe.lookup(cand.fp);
        ++result_.dedup_hits;
      } else {
        target = probe_[ci];
        ++result_.dedup_hits;
      }

      if (target != parent) {  // ignore free-spin self-loops
        edges_.emplace_back(parent, target);
        ++result_.transitions;
      }
      if (records_.size() > max_states_) return LevelOutcome::kExhausted;
    }
  }
  return LevelOutcome::kContinue;
}

// The step taken from records_[idx].parent to reach idx: the memoized
// propose() of the parent's interned automaton for the acting pid.
Step Engine::step_into(std::uint32_t idx) const {
  const StateRecord& rec = records_[idx];
  if (rec.acting_pid == 0xff) return Step{};
  const std::uint32_t aid =
      automata_[static_cast<std::size_t>(rec.parent) * static_cast<std::size_t>(n_) +
                rec.acting_pid];
  return *pools_[rec.acting_pid]->propose(aid).step;
}

std::vector<Step> Engine::trace_to(std::uint32_t idx) const {
  std::vector<Step> steps;
  while (idx != 0) {
    steps.push_back(step_into(idx));
    idx = records_[idx].parent;
  }
  std::reverse(steps.begin(), steps.end());
  return steps;
}

void Engine::check_progress() {
  // Reverse reachability from terminal states; anything unreached is a state
  // from which termination is impossible. The predecessor adjacency is built
  // from the flat edge list as a CSR (counting sort by target).
  std::vector<std::uint32_t> offsets(records_.size() + 1, 0);
  for (const auto& [from, to] : edges_) ++offsets[to + 1];
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
  std::vector<std::uint32_t> preds(edges_.size());
  {
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto& [from, to] : edges_) preds[cursor[to]++] = from;
  }
  std::vector<bool> can_finish(records_.size(), false);
  std::deque<std::uint32_t> queue;
  for (std::uint32_t t : terminals_) {
    can_finish[t] = true;
    queue.push_back(t);
  }
  while (!queue.empty()) {
    const std::uint32_t idx = queue.front();
    queue.pop_front();
    for (std::uint32_t k = offsets[idx]; k < offsets[idx + 1]; ++k) {
      const std::uint32_t pred = preds[k];
      if (!can_finish[pred]) {
        can_finish[pred] = true;
        queue.push_back(pred);
      }
    }
  }
  for (std::uint32_t idx = 0; idx < records_.size(); ++idx) {
    if (!can_finish[idx]) {
      result_.violation =
          "progress violated: state with no path to termination (livelock)";
      result_.counterexample = trace_to(idx);
      return;
    }
  }
}

void Engine::finalize_stats() {
  result_.states = records_.size();
  result_.interned_regfiles = regpool_.size();
  for (const auto& pool : pools_) {
    if (pool) result_.interned_automata += pool->size();
  }

  // Engine-owned tables only; deliberately excludes per-worker scratch so the
  // figure is identical for every worker count.
  std::uint64_t bytes = records_.capacity() * sizeof(StateRecord) +
                        automata_.capacity() * sizeof(std::uint32_t) +
                        visited_.memory_bytes() + regpool_.memory_bytes();
  for (const auto& pool : pools_) {
    if (pool) bytes += pool->memory_bytes();
  }
  bytes += edges_.capacity() * sizeof(std::pair<std::uint32_t, std::uint32_t>);
  result_.peak_memory_bytes = bytes;

  result_.wall_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

CheckResult Engine::run() {
  // Fixed-size per-state row buffers (and uint8 pid/done fields) cap n; the
  // state space is astronomically out of reach long before this anyway.
  if (n_ > 64) throw std::invalid_argument("model checker supports at most n = 64");
  init_root();

  std::vector<std::uint32_t> level{0};
  std::vector<std::uint32_t> next_level;
  bool done = false;

  while (!level.empty() && !done) {
    expand_.clear();
    for (const std::uint32_t idx : level) {
      if (records_[idx].done_count == num_participants_) {
        terminals_.push_back(idx);
      } else {
        expand_.push_back(idx);
      }
    }
    if (expand_.empty()) break;

    next_level.clear();
    LevelOutcome outcome;
    if (workers_ == 1) {
      outcome = serial_level(next_level);
    } else {
      // Phase 1: generate candidates in parallel chunks.
      const std::size_t count = expand_.size();
      cands_.resize(count * static_cast<std::size_t>(n_));
      probe_.resize(cands_.size());
      slots_.resize(cands_.size());
      const bool parallel = workers_ > 1 && count >= kMinParallelLevel;
      const std::size_t chunks =
          parallel ? std::min(count, static_cast<std::size_t>(workers_) * 4) : 1;
      exp::run_indexed_tasks(
          chunks, parallel ? workers_ : 1, [&](std::size_t chunk, int worker) {
            const std::size_t begin = chunk * count / chunks;
            const std::size_t end = (chunk + 1) * count / chunks;
            Value* scratch = scratch_[static_cast<std::size_t>(worker)].data();
            for (std::size_t ei = begin; ei < end; ++ei) {
              expand_state(expand_[ei],
                           cands_.data() + ei * static_cast<std::size_t>(n_), scratch);
            }
          });

      // Phase 2a: bucket candidates by visited-set stripe (in rank order),
      // then probe/reserve each stripe independently — no locks, no races.
      for (auto& bucket : buckets_) bucket.clear();
      for (std::size_t ci = 0; ci < cands_.size(); ++ci) {
        if (cands_[ci].valid) {
          const std::size_t stripe = visited_.stripe_of(cands_[ci].fp);
          cands_[ci].stripe = static_cast<std::uint8_t>(stripe);
          buckets_[stripe].push_back(static_cast<std::uint32_t>(ci));
        }
      }
      exp::run_indexed_tasks(
          StripedStateSet::kStripes, parallel ? workers_ : 1, [&](std::size_t s, int) {
            FlatStateSet& stripe = visited_.stripe(s);
            const std::uint32_t gen = stripe.generation();
            for (const std::uint32_t ci : buckets_[s]) {
              const auto probe = stripe.find_or_reserve(cands_[ci].fp);
              probe_[ci] = !probe.found ? kReservedNew
                           : probe.idx == FlatStateSet::kPending ? kPendingDup
                                                                 : probe.idx;
              slots_[ci] = probe.slot;
            }
            slot_ok_[s] = stripe.generation() == gen ? std::uint8_t{1} : std::uint8_t{0};
          });

      // Phase 2b: deterministic sequencing.
      outcome = sequence_level(next_level);
    }
    switch (outcome) {
      case LevelOutcome::kViolation:
        finalize_stats();
        return result_;
      case LevelOutcome::kExhausted:
        result_.exhausted_limit = true;
        done = true;
        break;
      case LevelOutcome::kContinue:
        break;
    }
    level.swap(next_level);
  }

  if (options_.check_progress && !result_.exhausted_limit) {
    check_progress();
    if (!result_.violation.empty()) {
      finalize_stats();
      return result_;
    }
  }

  result_.ok = result_.violation.empty();
  finalize_stats();
  return result_;
}

}  // namespace

CheckResult check_algorithm(const sim::Algorithm& algorithm, int n,
                            const CheckOptions& options) {
  Engine engine(algorithm, n, options);
  return engine.run();
}

CheckResult check_all_subsets(const sim::Algorithm& algorithm, int n,
                              const CheckOptions& options) {
  CheckResult last;
  for (unsigned mask = 1; mask < (1u << n); ++mask) {
    CheckOptions subset_options = options;
    subset_options.participants.clear();
    std::string subset_desc;
    for (Pid pid = 0; pid < n; ++pid) {
      if (mask & (1u << pid)) {
        subset_options.participants.push_back(pid);
        if (!subset_desc.empty()) subset_desc += ',';
        subset_desc += std::to_string(pid);
      }
    }
    CheckResult result = check_algorithm(algorithm, n, subset_options);
    if (!result.ok) {
      result.violation += " [participants {" + subset_desc + "}]";
      return result;
    }
    last = std::move(result);
  }
  return last;
}

}  // namespace melb::check
