#include "check/model_checker.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "check/closed_store.h"
#include "check/intern.h"
#include "check/state_set.h"
#include "exp/pool.h"
#include "exp/runner.h"
#include "sim/symmetry.h"
#include "util/hash.h"
#include "util/permutation.h"

namespace melb::check {

namespace {

using sim::CritKind;
using sim::Pid;
using sim::Step;
using sim::StepType;
using sim::Value;

// Fingerprint contribution of a non-participating (null) process slot.
constexpr std::uint64_t kNullAutomatonFp = 0x5eed;

// Below this many frontier states a level is expanded inline even when
// workers > 1: pool dispatch costs more than the work it would split.
constexpr std::size_t kMinParallelLevel = 256;

// Cap on candidates materialized per parallel batch (~32 MiB of Candidate
// rows). Huge levels are expanded and sequenced batch by batch, in order, so
// the per-level candidate scratch stays bounded no matter how wide the
// frontier gets; visit order — and therefore every statistic — is unchanged.
constexpr std::size_t kMaxBatchCandidates = std::size_t{1} << 20;

// Hot frontier: full expansion records for the states of one BFS level.
// Entry k is global state first + k — new states are sequenced into
// consecutive indices, so the frontier never stores them explicitly.
struct FrontierLevel {
  std::uint32_t first = 0;
  std::vector<std::uint64_t> aut_hash;   // XOR_p zobrist(regs + p, automaton fp_p)
  std::vector<std::uint32_t> regfile;    // RegisterFilePool ids
  std::vector<std::int8_t> in_cs;        // processes between enter and exit
  std::vector<std::uint8_t> done_count;  // participants that performed rem
  std::vector<std::uint32_t> automata;   // stride n: per-pid intern ids

  std::size_t size() const { return regfile.size(); }

  void reset(std::uint32_t first_index) {
    first = first_index;
    aut_hash.clear();
    regfile.clear();
    in_cs.clear();
    done_count.clear();
    automata.clear();
  }

  std::uint64_t memory_bytes() const {
    return aut_hash.capacity() * sizeof(std::uint64_t) +
           regfile.capacity() * sizeof(std::uint32_t) + in_cs.capacity() +
           done_count.capacity() + automata.capacity() * sizeof(std::uint32_t);
  }
};

// A successor proposal produced by phase 1, before deduplication.
struct Candidate {
  std::uint64_t fp = 0;        // regfile zobrist fp ^ aut_hash
  std::uint64_t aut_hash = 0;
  std::uint32_t regfile = 0;
  std::uint32_t next_aut = 0;  // acting pid's automaton after the step
  std::int16_t reg = -1;       // accessed register; -1 for crit steps
  std::uint8_t pid = 0;
  std::int8_t in_cs = 0;
  std::uint8_t done_count = 0;
  std::uint8_t valid = 0;
  std::uint8_t stripe = 0;     // visited-set stripe (filled in bucketing)
  // Symmetry only: index of the group element that maps the concrete
  // successor to this (canonicalized) candidate; 0 = already canonical.
  std::uint8_t witness = 0;
  // Step shape for property delivery: bit 0 = the acting pid's local
  // automaton changed, bit 1 = memory access (read/write/rmw), bits 2-4 =
  // crit kind + 1 (0 = not a crit step).
  std::uint8_t step_flags = 0;
};

constexpr std::uint8_t kStepLocalChange = 1;
constexpr std::uint8_t kStepMemoryAccess = 2;

// Phase-2a probe outcomes stored per candidate (real indices otherwise).
constexpr std::uint32_t kReservedNew = 0xffffffffu;
constexpr std::uint32_t kPendingDup = 0xfffffffeu;

class Engine {
 public:
  Engine(const sim::Algorithm& algorithm, int n, const CheckOptions& options,
         PropertyList& properties)
      : algorithm_(algorithm),
        n_(n),
        options_(options),
        props_(properties),
        regs_(algorithm.num_registers(n)),
        workers_(std::max(1, options.workers)),
        // States are indexed by uint32 and the top values are probe sentinels.
        max_states_(std::min<std::uint64_t>(options.max_states, 0xfff00000u)),
        budget_bytes_(options.memory_limit_mb << 20),
        ddd_(options.ddd),
        ddd_window_(static_cast<std::size_t>(std::max(1, options.ddd_window))),
        sym_(options.symmetry),
        batch_cap_(options.batch_candidates != 0
                       ? static_cast<std::size_t>(options.batch_candidates)
                       : kMaxBatchCandidates),
        regpool_(regs_, workers_ > 1) {
    for (const auto& p : props_) {
      if (p->vets_candidates()) vetters_.push_back(p.get());
      if (p->wants_transitions() || p->wants_self_loops()) {
        observers_.push_back(p.get());
      }
      if (p->needs_edges()) record_edges_ = true;
    }
  }

  CheckResult run();

 private:
  enum class LevelOutcome { kContinue, kViolation, kExhausted };

  std::uint64_t automaton_slot(Pid pid) const {
    return static_cast<std::uint64_t>(regs_) + static_cast<std::uint64_t>(pid);
  }

  void init_root();
  void expand_state(std::size_t pos, Candidate* out, Value* scratch, int worker);
  std::uint32_t append_state(const Candidate& cand, std::size_t parent_pos);
  void record_vet_violation(std::size_t parent_pos, Pid pid, std::string message);
  TransitionView transition_view(const Candidate& cand, std::uint32_t parent) const;
  // Runs every vetting property over the candidate; on a veto records the
  // violation (trace included) and returns false.
  bool vet_candidate(const Candidate& cand, std::size_t parent_pos);
  void deliver_transition(const Candidate& cand, std::uint32_t parent,
                          std::uint32_t target, bool is_new);

  // Pid-symmetry reduction (sym_ only).
  struct RelEntry {
    std::uint32_t id = AutomatonPool::kNone;  // kNone = not yet relabeled
    std::uint64_t zkey = 0;
  };
  void build_symmetry_group(const std::vector<bool>& participates);
  RelEntry relabel(int worker, std::size_t g, Pid p, std::uint32_t aid);
  std::uint64_t perm_reg_zobrist(std::size_t g, sim::Reg r, Value v) const;
  void symmetry_parent_hashes(const std::uint32_t* row, const Value* scratch,
                              int worker);
  LevelOutcome serial_level();
  LevelOutcome phased_level();
  LevelOutcome sequence_batch(std::size_t batch_begin, std::size_t batch_count);
  void ddd_resolve();  // phase 2a.5: window binary search + run sort-merge
  void commit_old_index(std::size_t ci, std::uint32_t idx);
  void fold_level_into_window();
  void evict_oldest_level();  // oldest window array becomes a sorted run
  // Forward replay of the closed chain to `idx`: the concrete steps plus the
  // final concrete register/automaton snapshot and the accumulated pid
  // relabeling (stored representative pids → concrete pids; identity unless
  // symmetry is on).
  struct Replay {
    std::vector<Step> steps;
    std::vector<Value> regs;
    std::vector<std::uint32_t> automata;
    util::Permutation relabel;
  };
  Replay replay_to(std::uint32_t idx) const;
  std::uint64_t tracked_bytes() const;
  std::uint64_t visited_resident_bytes() const;
  void note_peak();
  void close_level();  // peak accounting + window rotation + spilling
  void relieve_memory_pressure();
  void finalize_stats();
  exp::TaskPool& task_pool();

  // Engine services handed to Property::on_begin/finish. The edge streams
  // come straight off the (possibly spilled) EdgeStore.
  class ViewImpl final : public EngineView {
   public:
    explicit ViewImpl(Engine& engine) : e_(engine) {}
    int n() const override { return e_.n_; }
    int num_participants() const override { return e_.num_participants_; }
    bool participates(Pid pid) const override {
      return e_.participates_[static_cast<std::size_t>(pid)];
    }
    std::uint64_t num_states() const override { return e_.total_states_; }
    std::uint64_t num_edges() const override { return e_.edges_.size(); }
    const std::vector<std::uint32_t>& terminals() const override {
      return e_.terminals_;
    }
    Pid witness_map(std::uint8_t witness, Pid pid) const override {
      return e_.sym_ && witness != 0 ? e_.group_[witness].at(pid) : pid;
    }
    void for_each_edge(
        const std::function<void(std::uint32_t, std::uint32_t)>& fn) const override {
      e_.edges_.for_each(fn);
    }
    std::uint64_t for_each_edge_reverse(
        const std::function<void(std::uint32_t, std::uint32_t)>& fn) const override {
      return e_.edges_.for_each_reverse(fn);
    }
    const EdgeStore* edge_store() const override {
      return e_.record_edges_ ? &e_.edges_ : nullptr;
    }
    void note_pass_bytes(std::uint64_t bytes) override {
      e_.result_.progress_peak_bytes =
          std::max(e_.result_.progress_peak_bytes, bytes);
    }

   private:
    Engine& e_;
  };

  const sim::Algorithm& algorithm_;
  const int n_;
  const CheckOptions& options_;
  PropertyList& props_;
  std::vector<Property*> vetters_;    // vets_candidates(), in list order
  std::vector<Property*> observers_;  // wants_transitions/self_loops
  bool record_edges_ = false;         // some property needs_edges()
  const int regs_;
  const int workers_;
  const std::uint64_t max_states_;
  const std::uint64_t budget_bytes_;  // 0 = unlimited
  const bool ddd_;
  const std::size_t ddd_window_;
  const bool sym_;
  const std::size_t batch_cap_;  // candidates per expansion batch
  int num_participants_ = 0;
  std::vector<bool> participates_;  // [pid]; filled by init_root
  std::unique_ptr<ViewImpl> view_;

  std::vector<std::unique_ptr<AutomatonPool>> pools_;  // one per pid (null = out)
  RegisterFilePool regpool_;
  StripedStateSet visited_;

  // Temperature-split state storage (see header comment).
  FrontierLevel cur_;
  FrontierLevel next_;
  ClosedStore closed_;
  EdgeStore edges_;
  SpillFile spill_;
  std::uint64_t total_states_ = 0;
  std::vector<std::uint32_t> terminals_;

  // Delayed duplicate detection (ddd_ only). The visited_ table above holds
  // just the in-flight level; each completed level becomes a sorted (fp,
  // idx) array in window_, and arrays evicted from the window become
  // immutable sorted runs_ that batch queries sort-merge against.
  struct WindowLevel {
    std::vector<std::uint64_t> fps;   // sorted ascending, unique
    std::vector<std::uint32_t> idxs;  // parallel to fps
    std::uint64_t memory_bytes() const {
      return fps.capacity() * sizeof(std::uint64_t) +
             idxs.capacity() * sizeof(std::uint32_t);
    }
  };
  std::deque<WindowLevel> window_;
  FingerprintRuns runs_;
  std::vector<std::uint64_t> level_fps_;   // creation order, current level
  std::vector<std::uint32_t> level_idxs_;

  // The root snapshot trace replay starts from.
  std::vector<Value> root_regs_;
  std::vector<std::uint32_t> root_automata_;

  // Pid-symmetry reduction (sym_ only): the group of valid, root-fixing pid
  // permutations (identity at index 0), each element's register relocation
  // map, and the per-slot value kinds (group-independent). The per-worker
  // caches below are scratch like scratch_: excluded from peak accounting,
  // and harmless to divergence because relabel interning is idempotent.
  const sim::PidSymmetry* action_ = nullptr;
  std::vector<util::Permutation> group_;
  std::vector<std::vector<sim::Reg>> group_regmap_;  // [g][r] = image slot
  std::vector<sim::SlotValueKind> reg_kind_;         // [r]
  // [worker][g * n + p][aid] → relabeled intern id + zobrist key.
  std::vector<std::vector<std::vector<RelEntry>>> relcache_;
  std::vector<std::vector<std::uint64_t>> sym_regfp_;  // [worker][g] parent image
  std::vector<std::vector<std::uint64_t>> sym_auth_;   // [worker][g] parent image
  std::vector<std::vector<Value>> sym_scratch_;        // [worker] permuted file

  // Persistent work-stealing pool, created on the first parallel level and
  // woken (not re-spawned) for every dispatch after that.
  std::unique_ptr<exp::TaskPool> pool_;

  // Per-level working storage (reused across levels; excluded from the peak
  // accounting like per-worker scratch — the serial path never allocates it,
  // and peak_memory_bytes must be identical for every worker count).
  std::vector<std::uint32_t> expand_;  // positions in cur_ to expand
  std::vector<Candidate> cands_;
  std::vector<std::uint32_t> probe_;
  std::vector<std::uint32_t> slots_;  // probe slots (valid while slot_ok_)
  std::vector<std::vector<std::uint32_t>> buckets_{StripedStateSet::kStripes};
  // Per stripe: did the table stay growth-free during this batch's phase 2a?
  // If so, phase 2b may use the recorded slots directly (no re-probe).
  std::vector<std::uint8_t> slot_ok_ =
      std::vector<std::uint8_t>(StripedStateSet::kStripes, 0);
  std::vector<std::vector<Value>> scratch_;
  // DDD scratch: run-merge queries (fp, candidate position) and the
  // level-fold sort buffer share this storage.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> queries_;

  std::uint64_t peak_bytes_ = 0;
  std::uint64_t peak_visited_bytes_ = 0;
  CheckResult result_;
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

exp::TaskPool& Engine::task_pool() {
  if (!pool_) pool_ = std::make_unique<exp::TaskPool>(workers_);
  return *pool_;
}

void Engine::init_root() {
  participates_.assign(static_cast<std::size_t>(n_), options_.participants.empty());
  const std::vector<bool>& participates = participates_;
  num_participants_ = options_.participants.empty() ? n_ : 0;
  for (Pid pid : options_.participants) {
    if (!participates_[static_cast<std::size_t>(pid)]) {
      participates_[static_cast<std::size_t>(pid)] = true;
      ++num_participants_;
    }
  }

  root_regs_.assign(static_cast<std::size_t>(std::max(regs_, 1)), 0);
  std::uint64_t regfp = 0;
  for (sim::Reg r = 0; r < regs_; ++r) {
    const Value v = algorithm_.register_init(r, n_);
    root_regs_[static_cast<std::size_t>(r)] = v;
    regfp ^= util::zobrist_signed(static_cast<std::uint64_t>(r), v);
  }
  const std::uint32_t regfile = regpool_.intern(root_regs_.data(), regfp);

  pools_.resize(static_cast<std::size_t>(n_));
  root_automata_.assign(static_cast<std::size_t>(n_), AutomatonPool::kNone);
  std::uint64_t aut_hash = 0;
  for (Pid p = 0; p < n_; ++p) {
    if (participates[static_cast<std::size_t>(p)]) {
      pools_[static_cast<std::size_t>(p)] =
          std::make_unique<AutomatonPool>(workers_ > 1, automaton_slot(p));
      const std::uint32_t id = pools_[static_cast<std::size_t>(p)]->intern_initial(
          algorithm_.make_process(p, n_));
      root_automata_[static_cast<std::size_t>(p)] = id;
      aut_hash ^= pools_[static_cast<std::size_t>(p)]->propose(id).zkey;
    } else {
      aut_hash ^= util::zobrist(automaton_slot(p), kNullAutomatonFp);
    }
  }

  if (sym_) {
    build_symmetry_group(participates);
    closed_.set_witness_mode();  // before the first append: records grow to 6 B
  }

  cur_.reset(0);
  cur_.aut_hash.push_back(aut_hash);
  cur_.regfile.push_back(regfile);
  cur_.in_cs.push_back(0);
  cur_.done_count.push_back(0);
  cur_.automata.insert(cur_.automata.end(), root_automata_.begin(), root_automata_.end());
  closed_.append(0, 0xff);
  total_states_ = 1;
  if (ddd_) {
    // The root is "level 0 completed": it enters the window as a one-entry
    // sorted array, and the hash table stays reserved for in-flight levels.
    window_.emplace_back();
    window_.back().fps.push_back(regfp ^ aut_hash);
    window_.back().idxs.push_back(0);
  } else {
    visited_.find_or_reserve(regfp ^ aut_hash);
    visited_.commit(regfp ^ aut_hash, 0);
  }

  scratch_.assign(static_cast<std::size_t>(workers_),
                  std::vector<Value>(static_cast<std::size_t>(std::max(regs_, 1))));
}

// Enumerates the pid-permutation group the run canonicalizes under: every
// sigma the algorithm's action declares valid that also fixes the
// non-participants pointwise, acts on the registers as a bijection fixing the
// initial file, and maps each participant's initial local state to its
// image pid's initial local state. The identity passes all four tests, so it
// always lands at index 0 (Permutation::all is lexicographic). Rejected
// candidates intern nothing — the root check compares fingerprints only.
void Engine::build_symmetry_group(const std::vector<bool>& participates) {
  action_ = &algorithm_.pid_symmetry();
  const auto regs = static_cast<std::size_t>(std::max(regs_, 1));
  for (const util::Permutation& sigma : util::Permutation::all(n_)) {
    if (!action_->valid(sigma, n_)) continue;
    bool ok = true;
    for (Pid p = 0; p < n_ && ok; ++p) {
      if (!participates[static_cast<std::size_t>(p)] && sigma.at(p) != p) ok = false;
    }
    if (!ok) continue;
    std::vector<sim::Reg> rmap(regs, 0);
    std::vector<char> hit(regs, 0);
    for (sim::Reg r = 0; r < regs_ && ok; ++r) {
      const sim::Reg m = action_->map_register(sigma, r, n_);
      if (m < 0 || m >= regs_ || hit[static_cast<std::size_t>(m)] != 0) {
        ok = false;
        break;
      }
      hit[static_cast<std::size_t>(m)] = 1;
      rmap[static_cast<std::size_t>(r)] = m;
      const Value mapped = sim::map_value(sigma, action_->value_kind(r, n_),
                                          root_regs_[static_cast<std::size_t>(r)], n_);
      if (root_regs_[static_cast<std::size_t>(m)] != mapped) ok = false;
    }
    for (Pid p = 0; p < n_ && ok; ++p) {
      if (!participates[static_cast<std::size_t>(p)]) continue;
      const std::uint32_t own = root_automata_[static_cast<std::size_t>(p)];
      const std::uint32_t img =
          root_automata_[static_cast<std::size_t>(sigma.at(p))];
      const auto rel =
          pools_[static_cast<std::size_t>(p)]->automaton(own)->relabeled(sigma, n_);
      if (!rel ||
          rel->fingerprint() !=
              pools_[static_cast<std::size_t>(sigma.at(p))]->automaton(img)->fingerprint()) {
        ok = false;
      }
    }
    if (!ok) continue;
    group_.push_back(sigma);
    group_regmap_.push_back(std::move(rmap));
    // Witnesses are one byte; a larger group (full S_n from n = 6 up) is
    // truncated — an identity-containing subset of automorphisms still gives
    // a sound, just coarser, reduction.
    if (group_.size() == 255) break;
  }
  reg_kind_.resize(regs);
  for (sim::Reg r = 0; r < regs_; ++r) {
    reg_kind_[static_cast<std::size_t>(r)] = action_->value_kind(r, n_);
  }

  const std::size_t workers = static_cast<std::size_t>(workers_);
  relcache_.assign(workers, std::vector<std::vector<RelEntry>>(
                                group_.size() * static_cast<std::size_t>(n_)));
  sym_regfp_.assign(workers, std::vector<std::uint64_t>(group_.size(), 0));
  sym_auth_.assign(workers, std::vector<std::uint64_t>(group_.size(), 0));
  sym_scratch_.assign(workers, std::vector<Value>(regs));
}

// Fingerprint contribution of register slot r's image under group element g
// when the slot holds `v`: the zobrist key of (relocated slot, mapped value).
std::uint64_t Engine::perm_reg_zobrist(std::size_t g, sim::Reg r, Value v) const {
  const auto slot =
      static_cast<std::uint64_t>(group_regmap_[g][static_cast<std::size_t>(r)]);
  return util::zobrist_signed(
      slot, sim::map_value(group_[g], reg_kind_[static_cast<std::size_t>(r)], v, n_));
}

// Interned id + zobrist key of group element g applied to pid p's local
// state `aid` (lands in pid sigma(p)'s pool). Cached per worker; the miss
// path relabels once, verifies the relabeled automaton proposes exactly the
// sigma-image of the original's step — the commute check that keeps the
// reduction sound — and interns idempotently, so which worker relabels a
// state first never changes the interned_* statistics.
Engine::RelEntry Engine::relabel(int worker, std::size_t g, Pid p, std::uint32_t aid) {
  auto& cache =
      relcache_[static_cast<std::size_t>(worker)]
               [g * static_cast<std::size_t>(n_) + static_cast<std::size_t>(p)];
  if (aid >= cache.size()) cache.resize(static_cast<std::size_t>(aid) + 1);
  RelEntry& entry = cache[aid];
  if (entry.id != AutomatonPool::kNone) return entry;

  const util::Permutation& sigma = group_[g];
  AutomatonPool& source = *pools_[static_cast<std::size_t>(p)];
  auto rel = source.automaton(aid)->relabeled(sigma, n_);
  if (!rel) {
    throw std::logic_error("pid symmetry: automaton refused a valid group element");
  }
  const auto info = source.propose(aid);
  if (rel->done() != info.done ||
      (!info.done && !(rel->propose() == sim::map_step(*action_, sigma, *info.step, n_)))) {
    throw std::logic_error(
        "pid symmetry: relabeled local state disagrees with the mapped step");
  }
  const auto [id, zkey] =
      pools_[static_cast<std::size_t>(sigma.at(p))]->intern_external(std::move(rel));
  entry = {id, zkey};
  return entry;
}

// Per-parent canonicalization precompute: the register-file fingerprint and
// automaton hash of this parent's image under every non-identity group
// element, into the worker's sym_regfp_/sym_auth_ rows. Each candidate then
// derives its own images with O(1) incremental XOR updates per element.
void Engine::symmetry_parent_hashes(const std::uint32_t* row, const Value* scratch,
                                    int worker) {
  auto& regfp_g = sym_regfp_[static_cast<std::size_t>(worker)];
  auto& auth_g = sym_auth_[static_cast<std::size_t>(worker)];
  for (std::size_t g = 1; g < group_.size(); ++g) {
    std::uint64_t regfp = 0;
    for (sim::Reg r = 0; r < regs_; ++r) {
      regfp ^= perm_reg_zobrist(g, r, scratch[static_cast<std::size_t>(r)]);
    }
    std::uint64_t auth = 0;
    for (Pid p = 0; p < n_; ++p) {
      const std::uint32_t aid = row[static_cast<std::size_t>(p)];
      if (aid == AutomatonPool::kNone) {
        // Group elements fix non-participants, so a null slot contributes
        // exactly its identity-position key.
        auth ^= util::zobrist(automaton_slot(p), kNullAutomatonFp);
      } else {
        auth ^= relabel(worker, g, p, aid).zkey;
      }
    }
    regfp_g[g] = regfp;
    auth_g[g] = auth;
  }
}

// Compute all successor candidates of the frontier state at `pos` into
// out[0..n). Touches only the caller-owned candidate row, per-worker
// scratch/caches, and the (internally locked when threaded) interning pools,
// so parallel chunks can run on any worker. Under symmetry every candidate
// is canonicalized here: its fingerprint/regfile/aut_hash describe the orbit
// representative (minimum image fingerprint over the group, ties to the
// smallest element index — a pure function of the successor state, so the
// choice is identical for every worker count) and `witness` records the
// group element that got there.
void Engine::expand_state(std::size_t pos, Candidate* out, Value* scratch,
                          int worker) {
  const std::uint64_t parent_aut_hash = cur_.aut_hash[pos];
  const std::uint32_t parent_regfile = cur_.regfile[pos];
  const std::int8_t parent_in_cs = cur_.in_cs[pos];
  const std::uint8_t parent_done = cur_.done_count[pos];
  const std::uint64_t parent_regfp = regpool_.copy_to(parent_regfile, scratch);
  const std::uint32_t* row = cur_.automata.data() + pos * static_cast<std::size_t>(n_);
  const bool canon = sym_ && group_.size() > 1;
  if (canon) symmetry_parent_hashes(row, scratch, worker);

  for (Pid pid = 0; pid < n_; ++pid) {
    Candidate& cand = out[pid];
    cand.valid = 0;
    const std::uint32_t aid = row[pid];
    if (aid == AutomatonPool::kNone) continue;
    AutomatonPool& pool = *pools_[static_cast<std::size_t>(pid)];
    const auto expanded = pool.expand(aid, scratch);
    if (expanded.step == nullptr) continue;  // automaton done
    const Step& step = *expanded.step;

    std::uint64_t regfp = parent_regfp;
    std::uint32_t regfile = parent_regfile;
    std::int8_t in_cs = parent_in_cs;
    std::uint8_t done_count = parent_done;
    sim::Reg written_reg = -1;  // >= 0: scratch[written_reg] holds the new value
    Value written_old = 0;

    if (step.type == StepType::kWrite || step.type == StepType::kRmw) {
      const auto reg = static_cast<std::size_t>(step.reg);
      const Value old_value = scratch[reg];
      const Value new_value =
          step.type == StepType::kWrite ? step.value : sim::apply_rmw(step, old_value);
      if (new_value != old_value) {
        regfp ^= util::zobrist_signed(static_cast<std::uint64_t>(step.reg), old_value) ^
                 util::zobrist_signed(static_cast<std::uint64_t>(step.reg), new_value);
        scratch[reg] = new_value;
        regfile = regpool_.intern(scratch, regfp);
        written_reg = step.reg;
        written_old = old_value;
      }
    } else if (step.type == StepType::kCrit) {
      if (step.crit == CritKind::kEnter) ++in_cs;
      if (step.crit == CritKind::kExit) --in_cs;
      if (step.crit == CritKind::kRem) ++done_count;
    }

    std::uint64_t aut_hash = parent_aut_hash ^ expanded.zkey_delta;
    std::uint64_t fp = regfp ^ aut_hash;
    std::uint8_t witness = 0;

    if (canon) {
      std::uint64_t best_fp = fp;
      std::uint64_t best_regfp = regfp;
      std::uint64_t best_auth = aut_hash;
      std::size_t best_g = 0;
      const auto& regfp_g = sym_regfp_[static_cast<std::size_t>(worker)];
      const auto& auth_g = sym_auth_[static_cast<std::size_t>(worker)];
      for (std::size_t g = 1; g < group_.size(); ++g) {
        std::uint64_t rf = regfp_g[g];
        if (written_reg >= 0) {
          rf ^= perm_reg_zobrist(g, written_reg, written_old) ^
                perm_reg_zobrist(g, written_reg,
                                 scratch[static_cast<std::size_t>(written_reg)]);
        }
        const std::uint64_t ah = auth_g[g] ^ relabel(worker, g, pid, aid).zkey ^
                                 relabel(worker, g, pid, expanded.next_id).zkey;
        const std::uint64_t f = rf ^ ah;
        if (f < best_fp) {
          best_fp = f;
          best_regfp = rf;
          best_auth = ah;
          best_g = g;
        }
      }
      if (best_g != 0) {
        // Materialize the representative's register file: the winning
        // element applied to the successor's values.
        Value* permuted = sym_scratch_[static_cast<std::size_t>(worker)].data();
        const auto& rmap = group_regmap_[best_g];
        const util::Permutation& sigma = group_[best_g];
        for (sim::Reg r = 0; r < regs_; ++r) {
          permuted[static_cast<std::size_t>(rmap[static_cast<std::size_t>(r)])] =
              sim::map_value(sigma, reg_kind_[static_cast<std::size_t>(r)],
                             scratch[static_cast<std::size_t>(r)], n_);
        }
        regfile = regpool_.intern(permuted, best_regfp);
        fp = best_fp;
        aut_hash = best_auth;
        witness = static_cast<std::uint8_t>(best_g);
      }
    }
    if (written_reg >= 0) {
      // Keep the parent file intact for the remaining pids.
      scratch[static_cast<std::size_t>(written_reg)] = written_old;
    }

    cand.fp = fp;
    cand.aut_hash = aut_hash;
    cand.regfile = regfile;
    cand.next_aut = expanded.next_id;
    cand.pid = static_cast<std::uint8_t>(pid);
    cand.in_cs = in_cs;
    cand.done_count = done_count;
    cand.valid = 1;
    cand.witness = witness;
    if (step.type == StepType::kCrit) {
      cand.reg = -1;
      cand.step_flags = static_cast<std::uint8_t>((static_cast<int>(step.crit) + 1) << 2);
    } else {
      cand.reg = static_cast<std::int16_t>(step.reg);
      cand.step_flags = kStepMemoryAccess;
    }
    if (expanded.next_id != aid) cand.step_flags |= kStepLocalChange;
  }
}

// Appends the candidate as a fresh state (the caller has already decided it
// is new): a packed closed record (5 bytes, 6 with a symmetry witness) plus
// a full record in the next frontier. Returns its global index.
std::uint32_t Engine::append_state(const Candidate& cand, std::size_t parent_pos) {
  const std::size_t stride = static_cast<std::size_t>(n_);
  const auto target = static_cast<std::uint32_t>(total_states_);
  ++total_states_;
  closed_.append(cur_.first + static_cast<std::uint32_t>(parent_pos), cand.pid,
                 cand.witness);
  next_.aut_hash.push_back(cand.aut_hash);
  next_.regfile.push_back(cand.regfile);
  next_.in_cs.push_back(cand.in_cs);
  next_.done_count.push_back(cand.done_count);
  // Parent row lives in cur_, the destination in next_ — no self-aliasing
  // insert (the hazard class the pre-flyweight engine suffered from).
  const std::uint32_t* parent_row = cur_.automata.data() + parent_pos * stride;
  if (cand.witness == 0) {
    next_.automata.insert(next_.automata.end(), parent_row, parent_row + stride);
    next_.automata[next_.automata.size() - stride + cand.pid] = cand.next_aut;
  } else {
    // The stored state is the witness element's image of the successor, so
    // its row holds each pid's relabeled local state at the relocated slot.
    // This runs in the serial sequencing phase; the relabels were already
    // computed for the candidate's hash, so cache 0 either hits or re-interns
    // idempotently.
    const util::Permutation& sigma = group_[cand.witness];
    const std::size_t base = next_.automata.size();
    next_.automata.resize(base + stride, AutomatonPool::kNone);
    for (Pid p = 0; p < n_; ++p) {
      const std::uint32_t aid = static_cast<std::uint8_t>(p) == cand.pid
                                    ? cand.next_aut
                                    : parent_row[static_cast<std::size_t>(p)];
      if (aid == AutomatonPool::kNone) continue;  // sigma fixes non-participants
      next_.automata[base + static_cast<std::size_t>(sigma.at(p))] =
          relabel(0, cand.witness, p, aid).id;
    }
  }
  if (ddd_) {
    level_fps_.push_back(cand.fp);
    level_idxs_.push_back(target);
  }
  return target;
}

void Engine::record_vet_violation(std::size_t parent_pos, Pid pid,
                                  std::string message) {
  result_.violation = std::move(message);
  // Under symmetry the stored parent is an orbit representative; the replay
  // reconstructs the corresponding concrete state and the relabeling that
  // reaches it, so the violating step comes from the renamed process — the
  // trace stays a valid concrete execution. With symmetry off the relabeling
  // is the identity and the replayed row equals the stored one.
  Replay replay = replay_to(cur_.first + static_cast<std::uint32_t>(parent_pos));
  const auto q = static_cast<std::size_t>(sym_ ? replay.relabel.at(pid) : pid);
  replay.steps.push_back(*pools_[q]->propose(replay.automata[q]).step);
  result_.counterexample = std::move(replay.steps);
}

TransitionView Engine::transition_view(const Candidate& cand,
                                       std::uint32_t parent) const {
  TransitionView t;
  t.parent = parent;
  t.pid = cand.pid;
  t.witness = cand.witness;
  t.local_change = (cand.step_flags & kStepLocalChange) != 0;
  t.memory_access = (cand.step_flags & kStepMemoryAccess) != 0;
  const int crit = cand.step_flags >> 2;
  t.is_crit = crit != 0;
  if (t.is_crit) t.crit = static_cast<CritKind>(crit - 1);
  t.reg = cand.reg;
  t.in_cs = cand.in_cs;
  t.done_count = cand.done_count;
  return t;
}

bool Engine::vet_candidate(const Candidate& cand, std::size_t parent_pos) {
  TransitionView t =
      transition_view(cand, cur_.first + static_cast<std::uint32_t>(parent_pos));
  for (Property* p : vetters_) {
    if (const char* message = p->vet(t)) {
      record_vet_violation(parent_pos, cand.pid, message);
      return false;
    }
  }
  return true;
}

// Sequencing-time property delivery, after the candidate's target index and
// novelty are resolved. Self-loops (free spins, never stored as edges) only
// reach properties that opted in.
void Engine::deliver_transition(const Candidate& cand, std::uint32_t parent,
                                std::uint32_t target, bool is_new) {
  TransitionView t = transition_view(cand, parent);
  t.target = target;
  t.is_new = is_new;
  t.self_loop = target == parent;
  for (Property* p : observers_) {
    if (t.self_loop ? p->wants_self_loops() : p->wants_transitions()) {
      p->on_transition(t);
    }
  }
}

// Serial fast path: generate and sequence each state's candidates in one
// pass — probe and commit back-to-back (the slot is always valid), no
// candidate buffers, no bucketing. Visits candidates in exactly the same
// (parent index, pid) order as the phased path, so every output — indices,
// traces, dedup counts, table growth — is identical.
Engine::LevelOutcome Engine::serial_level() {
  Candidate row[64];  // n_ <= 64 enforced in run()
  Value* scratch = scratch_[0].data();
  const bool vetting = !vetters_.empty();
  const bool observing = !observers_.empty();
  LevelOutcome outcome = LevelOutcome::kContinue;
  for (std::size_t ei = 0; ei < expand_.size(); ++ei) {
    const std::size_t parent_pos = expand_[ei];
    const std::uint32_t parent = cur_.first + static_cast<std::uint32_t>(parent_pos);
    expand_state(parent_pos, row, scratch, 0);
    for (Pid pid = 0; pid < n_; ++pid) {
      const Candidate& cand = row[pid];
      if (!cand.valid) continue;
      // After an abort we keep expanding and reserving (but stop sequencing)
      // the rest of the level: the phased path runs phase 1 and its 2a
      // probes for the whole level before the sequencer aborts, so the
      // interning pools and visited set — and therefore the interned_* and
      // peak-memory statistics — must match side effect for side effect.
      if (outcome != LevelOutcome::kContinue) {
        visited_.find_or_reserve(cand.fp);
        continue;
      }
      if (vetting && !vet_candidate(cand, parent_pos)) {
        outcome = LevelOutcome::kViolation;
        visited_.find_or_reserve(cand.fp);  // 2a reserved it before 2b aborted
        continue;
      }
      std::uint32_t target;
      bool is_new = false;
      FlatStateSet& stripe = visited_.stripe(visited_.stripe_of(cand.fp));
      const auto probe = stripe.find_or_reserve(cand.fp);
      if (!probe.found) {
        target = append_state(cand, parent_pos);
        stripe.commit_slot(probe.slot, target);  // valid: no growth since probe
        is_new = true;
      } else {
        target = probe.idx;
        ++result_.dedup_hits;
      }
      if (target != parent) {  // ignore free-spin self-loops
        if (record_edges_) edges_.append(parent, target, is_new);
        ++result_.transitions;
      }
      if (observing) deliver_transition(cand, parent, target, is_new);
      if (total_states_ > max_states_) outcome = LevelOutcome::kExhausted;
    }
  }
  return outcome;
}

// Phase 2b for one batch: walk its candidates in (parent index, pid) order —
// the serial BFS order — assigning state indices, recording edges, and
// checking mutual exclusion. Serial and deterministic by construction.
Engine::LevelOutcome Engine::sequence_batch(std::size_t batch_begin,
                                            std::size_t batch_count) {
  const std::size_t stride = static_cast<std::size_t>(n_);
  for (std::size_t bi = 0; bi < batch_count; ++bi) {
    const std::size_t parent_pos = expand_[batch_begin + bi];
    const std::uint32_t parent = cur_.first + static_cast<std::uint32_t>(parent_pos);
    for (Pid pid = 0; pid < n_; ++pid) {
      const std::size_t ci = bi * stride + static_cast<std::size_t>(pid);
      const Candidate& cand = cands_[ci];
      if (!cand.valid) continue;

      if (!vetters_.empty() && !vet_candidate(cand, parent_pos)) {
        return LevelOutcome::kViolation;
      }

      std::uint32_t target;
      bool is_new = false;
      FlatStateSet& stripe = visited_.stripe(cand.stripe);
      if (probe_[ci] == kReservedNew) {
        target = append_state(cand, parent_pos);
        if (slot_ok_[cand.stripe]) {
          stripe.commit_slot(slots_[ci], target);
        } else {
          stripe.commit(cand.fp, target);
        }
        is_new = true;
      } else if (probe_[ci] == kPendingDup) {
        target = slot_ok_[cand.stripe] ? stripe.idx_at(slots_[ci]) : stripe.lookup(cand.fp);
        ++result_.dedup_hits;
      } else {
        target = probe_[ci];
        ++result_.dedup_hits;
      }

      if (target != parent) {  // ignore free-spin self-loops
        if (record_edges_) edges_.append(parent, target, is_new);
        ++result_.transitions;
      }
      if (!observers_.empty()) deliver_transition(cand, parent, target, is_new);
      if (total_states_ > max_states_) return LevelOutcome::kExhausted;
    }
  }
  return LevelOutcome::kContinue;
}

// Batched path: candidates are generated on the pool (phase 1),
// probed/reserved per stripe without locks (phase 2a), in DDD mode resolved
// against the window arrays and the sorted runs (phase 2a.5), then sequenced
// serially (phase 2b). After an abort the remaining batches still run
// phases 1 and 2a — reservation side effects must match the serial drain.
// Hash-table mode reaches this path only with workers > 1; DDD mode always
// runs it (delayed dedup needs the batch buffers even serially, and a
// 1-worker TaskPool dispatch is an inline loop).
Engine::LevelOutcome Engine::phased_level() {
  const std::size_t stride = static_cast<std::size_t>(n_);
  const std::size_t per_batch = std::max<std::size_t>(1, batch_cap_ / stride);
  LevelOutcome outcome = LevelOutcome::kContinue;

  for (std::size_t begin = 0; begin < expand_.size(); begin += per_batch) {
    const std::size_t count = std::min(per_batch, expand_.size() - begin);
    cands_.resize(count * stride);
    probe_.resize(cands_.size());
    slots_.resize(cands_.size());
    const bool parallel = workers_ > 1 && count >= kMinParallelLevel;
    const std::size_t chunks =
        parallel ? std::min(count, static_cast<std::size_t>(workers_) * 4) : 1;

    // Phase 1: generate candidates in parallel chunks.
    task_pool().run(chunks, [&](std::size_t chunk, int worker) {
      const std::size_t cbegin = chunk * count / chunks;
      const std::size_t cend = (chunk + 1) * count / chunks;
      Value* scratch = scratch_[static_cast<std::size_t>(worker)].data();
      for (std::size_t bi = cbegin; bi < cend; ++bi) {
        expand_state(expand_[begin + bi], cands_.data() + bi * stride, scratch,
                     worker);
      }
    });

    // Phase 2a: bucket candidates by visited-set stripe (in rank order),
    // then probe/reserve each stripe independently — no locks, no races.
    for (auto& bucket : buckets_) bucket.clear();
    for (std::size_t ci = 0; ci < cands_.size(); ++ci) {
      if (cands_[ci].valid) {
        const std::size_t stripe = visited_.stripe_of(cands_[ci].fp);
        cands_[ci].stripe = static_cast<std::uint8_t>(stripe);
        buckets_[stripe].push_back(static_cast<std::uint32_t>(ci));
      }
    }
    task_pool().run(StripedStateSet::kStripes, [&](std::size_t s, int) {
      FlatStateSet& stripe = visited_.stripe(s);
      const std::uint32_t gen = stripe.generation();
      for (const std::uint32_t ci : buckets_[s]) {
        const auto probe = stripe.find_or_reserve(cands_[ci].fp);
        probe_[ci] = !probe.found ? kReservedNew
                     : probe.idx == FlatStateSet::kPending ? kPendingDup
                                                           : probe.idx;
        slots_[ci] = probe.slot;
      }
      slot_ok_[s] = stripe.generation() == gen ? std::uint8_t{1} : std::uint8_t{0};
    });

    // Phase 2a.5 + 2b: resolve delayed duplicates, then sequence
    // deterministically (both skipped after an abort — the reservations
    // above are exactly the serial drain's side effects).
    if (outcome == LevelOutcome::kContinue) {
      if (ddd_) ddd_resolve();
      outcome = sequence_batch(begin, count);
    }
    // DDD batches are deterministic checkpoints in every mode (the serial
    // engine runs them too), so budget pressure can be relieved mid-level —
    // a giant level must not pin every window array and run chunk in RAM.
    // Skipped once aborted: the result is decided, so per-batch relief would
    // only add spill I/O (close_level still does its end-of-level pass).
    if (ddd_ && budget_bytes_ != 0 && outcome == LevelOutcome::kContinue) {
      note_peak();
      relieve_memory_pressure();
    }
  }
  return outcome;
}

// Phase 2a.5 (DDD only): every candidate that reserved a brand-new slot in
// phase 2a is either a duplicate of a state outside the hash table — in a
// window array or a sorted run — or genuinely new. Window arrays are binary
// searched (newest level first); the rest of the queries are sorted and
// sort-merged against the runs in one pass. Hits are committed into the hot
// slot so the batch's pending twins and all later batches of the level
// resolve to the same index, exactly as they would against the full hash
// table.
void Engine::ddd_resolve() {
  queries_.clear();
  for (std::size_t ci = 0; ci < cands_.size(); ++ci) {
    if (!cands_[ci].valid || probe_[ci] != kReservedNew) continue;
    const std::uint64_t fp = cands_[ci].fp;
    std::uint32_t found = kReservedNew;
    for (auto level = window_.rbegin(); level != window_.rend(); ++level) {
      const auto& fps = level->fps;
      const auto pos = std::lower_bound(fps.begin(), fps.end(), fp);
      if (pos != fps.end() && *pos == fp) {
        found = level->idxs[static_cast<std::size_t>(pos - fps.begin())];
        break;
      }
    }
    if (found != kReservedNew) {
      probe_[ci] = found;
      commit_old_index(ci, found);
    } else {
      queries_.emplace_back(fp, static_cast<std::uint32_t>(ci));
    }
  }
  if (queries_.empty()) return;
  std::sort(queries_.begin(), queries_.end());
  runs_.merge(queries_.data(), queries_.size(),
              [&](std::uint32_t ci, std::uint32_t idx) {
                probe_[ci] = idx;
                commit_old_index(ci, idx);
              });
}

// Fills a phase-2a reservation with the index of an already-closed state.
void Engine::commit_old_index(std::size_t ci, std::uint32_t idx) {
  FlatStateSet& stripe = visited_.stripe(cands_[ci].stripe);
  if (slot_ok_[cands_[ci].stripe]) {
    stripe.commit_slot(slots_[ci], idx);
  } else {
    stripe.commit(cands_[ci].fp, idx);
  }
}

// Sorts the completed level's (fp, idx) records into a window array and
// resets the per-level dedup state.
void Engine::fold_level_into_window() {
  queries_.resize(level_fps_.size());
  for (std::size_t i = 0; i < level_fps_.size(); ++i) {
    queries_[i] = {level_fps_[i], level_idxs_[i]};
  }
  std::sort(queries_.begin(), queries_.end());
  window_.emplace_back();
  WindowLevel& level = window_.back();
  level.fps.reserve(queries_.size());
  level.idxs.reserve(queries_.size());
  for (const auto& [fp, idx] : queries_) {
    level.fps.push_back(fp);
    level.idxs.push_back(idx);
  }
  level_fps_.clear();
  level_idxs_.clear();
}

void Engine::evict_oldest_level() {
  WindowLevel& level = window_.front();
  runs_.append_run(level.fps.data(), level.idxs.data(), level.fps.size());
  window_.pop_front();
}

// Reconstructs a concrete execution from the root to state `idx` by walking
// the closed store's parent chain (reading spilled chunks back if needed),
// then replaying forward from the root snapshot through the pools' memoized
// δ — each Step is recomputed instead of stored. Under symmetry every stored
// state is an orbit representative and its record carries the witness w that
// mapped the concrete successor to it; the replay therefore tracks the
// accumulated relabeling h (concrete state = h-image of the stored state):
// the recorded pid π acts concretely as h(π), and h then absorbs w⁻¹, since
// h ∘ w⁻¹ maps the next stored representative to the next concrete state.
// With symmetry off every witness is 0 and h stays the identity.
Engine::Replay Engine::replay_to(std::uint32_t idx) const {
  struct Link {
    std::uint8_t pid;
    std::uint8_t witness;
  };
  std::vector<Link> chain;
  while (idx != 0) {
    const ClosedStore::Entry e = closed_.entry(idx);
    chain.push_back({e.pid, e.witness});
    idx = e.parent;
  }
  std::reverse(chain.begin(), chain.end());

  Replay out;
  out.regs = root_regs_;
  out.automata = root_automata_;
  out.relabel = util::Permutation(n_);
  out.steps.reserve(chain.size());
  for (const Link& link : chain) {
    const auto pid =
        static_cast<std::size_t>(sym_ ? out.relabel.at(link.pid) : link.pid);
    const auto expanded = pools_[pid]->expand(out.automata[pid], out.regs.data());
    const Step& step = *expanded.step;
    out.steps.push_back(step);
    if (step.type == StepType::kWrite) {
      out.regs[static_cast<std::size_t>(step.reg)] = step.value;
    } else if (step.type == StepType::kRmw) {
      Value& cell = out.regs[static_cast<std::size_t>(step.reg)];
      cell = sim::apply_rmw(step, cell);
    }
    out.automata[pid] = expanded.next_id;
    if (sym_ && link.witness != 0) {
      out.relabel =
          util::Permutation::compose(out.relabel, group_[link.witness].inverted());
    }
  }
  return out;
}

// Engine-owned tables currently resident in RAM. Deliberately excludes
// per-worker scratch and the parallel path's candidate buffers (the serial
// path has neither) so the figure is identical for every worker count.
std::uint64_t Engine::tracked_bytes() const {
  std::uint64_t bytes = closed_.memory_bytes() + edges_.memory_bytes() +
                        visited_.memory_bytes() + regpool_.memory_bytes() +
                        cur_.memory_bytes() + next_.memory_bytes() +
                        terminals_.capacity() * sizeof(std::uint32_t) +
                        expand_.capacity() * sizeof(std::uint32_t);
  for (const auto& pool : pools_) {
    if (pool) bytes += pool->memory_bytes();
  }
  // Property payloads (edge side logs, per-state bitmasks) join the budget:
  // their growth is a pure function of the deterministic transition
  // sequence, so spill decisions stay worker-invariant. The stock
  // mutex/progress properties own no payload and leave every legacy
  // statistic untouched.
  for (const auto& p : props_) bytes += p->memory_bytes();
  if (ddd_) {
    bytes += runs_.memory_bytes() +
             level_fps_.capacity() * sizeof(std::uint64_t) +
             level_idxs_.capacity() * sizeof(std::uint32_t);
    for (const auto& level : window_) bytes += level.memory_bytes();
  }
  return bytes;
}

// The dedup structure's RAM-mandatory part: the hash table plus (DDD) the
// window and in-flight level arrays — everything except the spillable runs.
// This is the figure that is O(states) in hash-table mode but bounded by the
// level window under DDD.
std::uint64_t Engine::visited_resident_bytes() const {
  std::uint64_t bytes = visited_.memory_bytes();
  if (ddd_) {
    bytes += level_fps_.capacity() * sizeof(std::uint64_t) +
             level_idxs_.capacity() * sizeof(std::uint32_t);
    for (const auto& level : window_) bytes += level.memory_bytes();
  }
  return bytes;
}

void Engine::note_peak() {
  peak_bytes_ = std::max(peak_bytes_, tracked_bytes());
  peak_visited_bytes_ = std::max(peak_visited_bytes_, visited_resident_bytes());
}

// End-of-level bookkeeping: record the in-RAM high-water mark, rotate the
// completed level into the DDD window (evicting beyond-window levels as
// sorted runs), then relieve budget pressure. Every decision is a pure
// function of deterministic byte counts, so it is identical for every
// worker count.
void Engine::close_level() {
  note_peak();
  if (ddd_) {
    fold_level_into_window();
    visited_.clear();  // the hash table only ever holds one in-flight level
    while (window_.size() > ddd_window_) evict_oldest_level();
  }
  relieve_memory_pressure();
}

// Spills chunks until the tracked footprint fits the budget. Priority
// follows re-read frequency: edge chunks first (streamed once more, by the
// progress pass), then closed chunks (random-read only for traces), then
// fingerprint-run chunks (re-read by every level's merge); as a last resort
// DDD evicts hot window arrays into runs so their bytes become spillable
// too. Shared by close_level and the DDD path's batch checkpoints.
void Engine::relieve_memory_pressure() {
  if (budget_bytes_ == 0) return;
  while (tracked_bytes() > budget_bytes_) {
    if (edges_.has_spillable_chunk()) {
      if (edges_.spill_oldest(spill_, 8) == 0) break;  // no temp storage
    } else if (closed_.has_spillable_chunk()) {
      if (closed_.spill_oldest(spill_, 8) == 0) break;
    } else if (runs_.has_spillable_chunk()) {
      if (runs_.spill_oldest(spill_, 8) == 0) break;
    } else if (ddd_ && !window_.empty()) {
      evict_oldest_level();  // makes those bytes spillable next iteration
    } else {
      break;  // nothing left to spill
    }
  }
}

void Engine::finalize_stats() {
  // Peak accounting only — no budget enforcement: the run is over, so
  // spilling here would be dead I/O that inflates spilled_bytes.
  note_peak();
  result_.states = total_states_;
  result_.interned_regfiles = regpool_.size();
  for (const auto& pool : pools_) {
    if (pool) result_.interned_automata += pool->size();
  }
  result_.peak_memory_bytes = peak_bytes_;
  result_.peak_visited_bytes = peak_visited_bytes_;
  result_.spilled_bytes = spill_.bytes_written();
  result_.io_error = spill_.error();
  result_.ddd_runs = runs_.run_count();
  if (sym_) result_.symmetry_group = group_.size();
  result_.property_reports.clear();
  for (const auto& p : props_) result_.property_reports.push_back(p->report());
  result_.wall_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

CheckResult Engine::run() {
  // Fixed-size per-state row buffers (and uint8 pid/done fields) cap n; the
  // state space is astronomically out of reach long before that anyway.
  if (n_ > 64) throw std::invalid_argument("model checker supports at most n = 64");
  // Symmetry enumerates all n! pid permutations at startup to build the
  // group; beyond n = 8 that is both slow and pointless (exhaustive
  // exploration is out of reach anyway).
  if (sym_ && n_ > 8) {
    throw std::invalid_argument("symmetry reduction supports at most n = 8");
  }
  init_root();
  view_ = std::make_unique<ViewImpl>(*this);
  for (const auto& p : props_) p->on_begin(*view_);

  bool done = false;
  while (cur_.size() != 0 && !done) {
    expand_.clear();
    for (std::size_t pos = 0; pos < cur_.size(); ++pos) {
      if (cur_.done_count[pos] == num_participants_) {
        terminals_.push_back(cur_.first + static_cast<std::uint32_t>(pos));
      } else {
        expand_.push_back(static_cast<std::uint32_t>(pos));
      }
    }
    if (expand_.empty()) break;

    next_.reset(static_cast<std::uint32_t>(total_states_));
    const bool phased =
        ddd_ || (workers_ > 1 && expand_.size() >= kMinParallelLevel);
    const LevelOutcome outcome = phased ? phased_level() : serial_level();
    switch (outcome) {
      case LevelOutcome::kViolation:
        finalize_stats();
        return result_;
      case LevelOutcome::kExhausted:
        result_.exhausted_limit = true;
        done = true;
        break;
      case LevelOutcome::kContinue:
        break;
    }
    close_level();
    std::swap(cur_, next_);
  }

  // End-of-exploration passes, in property-list order; the first violation
  // wins. Skipped when max_states was hit: a pass over a truncated state
  // space proves nothing (the reports then say evaluated = false).
  if (!result_.exhausted_limit) {
    for (const auto& p : props_) {
      const std::optional<PropertyViolation> v = p->finish(*view_);
      if (!v.has_value()) continue;
      result_.violation = v->message;
      Replay replay = replay_to(v->state);
      if (v->append_step_of.has_value()) {
        // Show the named pid's next step at the witness state (the spin a
        // starving process is stuck in), concretely relabeled under symmetry
        // like every other trace step.
        const auto q = static_cast<std::size_t>(
            sym_ ? replay.relabel.at(*v->append_step_of) : *v->append_step_of);
        const auto info = pools_[q]->propose(replay.automata[q]);
        if (info.step != nullptr) replay.steps.push_back(*info.step);
      }
      result_.counterexample = std::move(replay.steps);
      finalize_stats();
      return result_;
    }
  }

  result_.ok = result_.violation.empty();
  finalize_stats();
  return result_;
}

}  // namespace

CheckResult check(const sim::Algorithm& algorithm, int n,
                  PropertyList properties, const CheckOptions& options) {
  if (options.symmetry) {
    for (const auto& p : properties) {
      if (!p->supports_symmetry()) {
        throw std::invalid_argument("property '" + p->name() +
                                    "' does not compose with symmetry reduction");
      }
    }
  }
  Engine engine(algorithm, n, options, properties);
  return engine.run();
}

std::vector<std::string> effective_property_specs(const CheckOptions& options) {
  if (!options.properties.empty()) return options.properties;
  std::vector<std::string> specs;
  if (options.check_mutex) specs.push_back("mutex");
  if (options.check_progress) specs.push_back("progress");
  return specs;
}

CheckResult check_algorithm(const sim::Algorithm& algorithm, int n,
                            const CheckOptions& options) {
  // Fresh instances per run: properties are stateful and single-use, so the
  // subset sweep below gets its own set for every participant mask.
  PropertyList properties;
  for (const std::string& spec : effective_property_specs(options)) {
    properties.push_back(make_property(spec, algorithm, n));
  }
  return check(algorithm, n, std::move(properties), options);
}

namespace {

CheckOptions subset_options(const CheckOptions& options, unsigned long long mask,
                            int n, std::string* subset_desc) {
  CheckOptions sub = options;
  sub.participants.clear();
  for (Pid pid = 0; pid < n; ++pid) {
    if (mask & (1ull << pid)) {
      sub.participants.push_back(pid);
      if (subset_desc != nullptr) {
        if (!subset_desc->empty()) *subset_desc += ',';
        *subset_desc += std::to_string(pid);
      }
    }
  }
  return sub;
}

void annotate_subset(CheckResult& result, const CheckOptions& options,
                     unsigned long long mask, int n) {
  std::string subset_desc;
  subset_options(options, mask, n, &subset_desc);
  result.violation += " [participants {" + subset_desc + "}]";
}

}  // namespace

CheckResult check_all_subsets(const sim::Algorithm& algorithm, int n,
                              const CheckOptions& options) {
  // 2^n - 1 subset checks are unreachable long before the shift overflows;
  // fail fast instead of invoking undefined behavior.
  if (n > 62) throw std::invalid_argument("check_all_subsets supports at most n = 62");
  const unsigned long long total_masks = (1ull << n) - 1;  // masks 1..total
  const int workers =
      static_cast<int>(std::min<unsigned long long>(
          static_cast<unsigned long long>(std::max(1, options.workers)), total_masks));

  if (workers <= 1) {
    CheckResult last;
    for (unsigned long long mask = 1; mask <= total_masks; ++mask) {
      CheckResult result = check_algorithm(algorithm, n, subset_options(options, mask, n, nullptr));
      if (!result.ok) {
        annotate_subset(result, options, mask, n);
        return result;
      }
      last = std::move(result);
    }
    return last;
  }

  // The 2^n - 1 subset checks are independent, so they run as tasks on one
  // shared pool (run_indexed_tasks spawns it once for the whole sweep); each
  // check itself explores serially (a nested dispatch on the same pool would
  // deadlock, and whole subsets are the better parallel grain here anyway).
  // Worker-count determinism of check_algorithm makes every result
  // byte-identical to its serial counterpart, and the merge below is ordered
  // by mask, so the returned result — lowest failing subset, or the
  // all-participants result — matches the serial loop exactly.
  std::vector<CheckResult> results(static_cast<std::size_t>(total_masks));
  std::vector<std::uint8_t> ran(static_cast<std::size_t>(total_masks), 0);
  std::atomic<unsigned long long> first_fail{~0ull};
  exp::run_indexed_tasks(static_cast<std::size_t>(total_masks), workers, [&](std::size_t t, int) {
    const unsigned long long mask = t + 1;
    // A failure at a lower mask already decides the outcome; skip the rest.
    if (mask > first_fail.load(std::memory_order_relaxed)) return;
    CheckOptions sub = subset_options(options, mask, n, nullptr);
    sub.workers = 1;
    results[t] = check_algorithm(algorithm, n, sub);
    ran[t] = 1;
    if (!results[t].ok) {
      unsigned long long seen = first_fail.load(std::memory_order_relaxed);
      while (mask < seen &&
             !first_fail.compare_exchange_weak(seen, mask, std::memory_order_relaxed)) {
      }
    }
  });
  for (std::size_t t = 0; t < results.size(); ++t) {
    if (ran[t] && !results[t].ok) {
      annotate_subset(results[t], options, t + 1, n);
      return std::move(results[t]);
    }
  }
  return std::move(results.back());
}

}  // namespace melb::check
