#include "check/model_checker.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>

#include "util/hash.h"

namespace melb::check {

namespace {

using sim::Automaton;
using sim::CritKind;
using sim::Pid;
using sim::Step;
using sim::StepType;
using sim::Value;

struct State {
  std::vector<Value> registers;
  std::vector<std::shared_ptr<const Automaton>> automata;  // shared across states
  int in_cs = 0;          // processes between enter and exit
  int done_count = 0;     // participants that performed rem
  std::uint32_t parent = 0;
  Step parent_step;       // step taken from parent to reach this state

  std::uint64_t fingerprint() const {
    util::Hasher hasher;
    for (Value v : registers) hasher.add_signed(v);
    for (const auto& automaton : automata) {
      hasher.add(automaton ? automaton->fingerprint() : 0x5eed);
    }
    return hasher.digest();
  }
};

std::vector<Step> trace_to(const std::vector<State>& states, std::uint32_t idx) {
  std::vector<Step> steps;
  while (idx != 0) {
    steps.push_back(states[idx].parent_step);
    idx = states[idx].parent;
  }
  std::reverse(steps.begin(), steps.end());
  return steps;
}

}  // namespace

CheckResult check_algorithm(const sim::Algorithm& algorithm, int n,
                            const CheckOptions& options) {
  CheckResult result;

  std::vector<bool> participates(static_cast<std::size_t>(n), options.participants.empty());
  int num_participants = options.participants.empty() ? n : 0;
  for (Pid pid : options.participants) {
    if (!participates[static_cast<std::size_t>(pid)]) {
      participates[static_cast<std::size_t>(pid)] = true;
      ++num_participants;
    }
  }

  std::vector<State> states;
  std::unordered_map<std::uint64_t, std::uint32_t> index_of;
  std::vector<std::vector<std::uint32_t>> successors;

  State initial;
  const int regs = algorithm.num_registers(n);
  initial.registers.resize(static_cast<std::size_t>(regs));
  for (sim::Reg r = 0; r < regs; ++r) {
    initial.registers[static_cast<std::size_t>(r)] = algorithm.register_init(r, n);
  }
  initial.automata.resize(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) {
    if (participates[static_cast<std::size_t>(p)]) {
      initial.automata[static_cast<std::size_t>(p)] =
          std::shared_ptr<const Automaton>(algorithm.make_process(p, n));
    }
  }

  states.push_back(std::move(initial));
  successors.emplace_back();
  index_of.emplace(states[0].fingerprint(), 0);

  std::deque<std::uint32_t> frontier{0};
  std::vector<std::uint32_t> terminals;

  while (!frontier.empty()) {
    if (states.size() > options.max_states) {
      result.exhausted_limit = true;
      break;
    }
    const std::uint32_t idx = frontier.front();
    frontier.pop_front();

    if (states[idx].done_count == num_participants) {
      terminals.push_back(idx);
      continue;
    }

    for (Pid pid = 0; pid < n; ++pid) {
      // Note: states[idx] must be re-indexed inside the loop; pushing new
      // states may reallocate the vector.
      const auto& automaton = states[idx].automata[static_cast<std::size_t>(pid)];
      if (!automaton || automaton->done()) continue;

      const Step step = automaton->propose();
      State next;
      next.registers = states[idx].registers;
      next.automata = states[idx].automata;
      next.in_cs = states[idx].in_cs;
      next.done_count = states[idx].done_count;
      next.parent = idx;
      next.parent_step = step;

      Value read_value = 0;
      if (step.type == StepType::kRead) {
        read_value = next.registers[static_cast<std::size_t>(step.reg)];
      } else if (step.type == StepType::kWrite) {
        next.registers[static_cast<std::size_t>(step.reg)] = step.value;
      } else if (step.type == StepType::kRmw) {
        auto& cell = next.registers[static_cast<std::size_t>(step.reg)];
        read_value = cell;
        cell = sim::apply_rmw(step, cell);
      } else {
        if (step.crit == CritKind::kEnter) ++next.in_cs;
        if (step.crit == CritKind::kExit) --next.in_cs;
        if (step.crit == CritKind::kRem) ++next.done_count;
      }
      auto advanced = automaton->clone();
      advanced->advance(read_value);
      next.automata[static_cast<std::size_t>(pid)] = std::move(advanced);

      if (options.check_mutex && next.in_cs > 1) {
        result.violation = "mutual exclusion violated: two processes in the critical section";
        auto steps = trace_to(states, idx);
        steps.push_back(step);
        result.counterexample = std::move(steps);
        result.states = states.size();
        return result;
      }

      const std::uint64_t fp = next.fingerprint();
      auto [it, inserted] = index_of.try_emplace(fp, static_cast<std::uint32_t>(states.size()));
      if (inserted) {
        states.push_back(std::move(next));
        successors.emplace_back();
        frontier.push_back(it->second);
      }
      if (it->second != idx) {  // ignore free-spin self-loops
        successors[idx].push_back(it->second);
        ++result.transitions;
      }
    }
  }

  result.states = states.size();

  if (options.check_progress && !result.exhausted_limit) {
    // Reverse reachability from terminal states; anything unreached is a
    // state from which termination is impossible.
    std::vector<std::vector<std::uint32_t>> predecessors(states.size());
    for (std::uint32_t from = 0; from < states.size(); ++from) {
      for (std::uint32_t to : successors[from]) predecessors[to].push_back(from);
    }
    std::vector<bool> can_finish(states.size(), false);
    std::deque<std::uint32_t> queue;
    for (std::uint32_t t : terminals) {
      can_finish[t] = true;
      queue.push_back(t);
    }
    while (!queue.empty()) {
      const std::uint32_t idx = queue.front();
      queue.pop_front();
      for (std::uint32_t pred : predecessors[idx]) {
        if (!can_finish[pred]) {
          can_finish[pred] = true;
          queue.push_back(pred);
        }
      }
    }
    for (std::uint32_t idx = 0; idx < states.size(); ++idx) {
      if (!can_finish[idx]) {
        result.violation = "progress violated: state with no path to termination (livelock)";
        result.counterexample = trace_to(states, idx);
        return result;
      }
    }
  }

  result.ok = result.violation.empty();
  return result;
}

CheckResult check_all_subsets(const sim::Algorithm& algorithm, int n,
                              const CheckOptions& options) {
  CheckResult last;
  for (unsigned mask = 1; mask < (1u << n); ++mask) {
    CheckOptions subset_options = options;
    subset_options.participants.clear();
    std::string subset_desc;
    for (Pid pid = 0; pid < n; ++pid) {
      if (mask & (1u << pid)) {
        subset_options.participants.push_back(pid);
        if (!subset_desc.empty()) subset_desc += ',';
        subset_desc += std::to_string(pid);
      }
    }
    CheckResult result = check_algorithm(algorithm, n, subset_options);
    if (!result.ok) {
      result.violation += " [participants {" + subset_desc + "}]";
      return result;
    }
    last = std::move(result);
  }
  return last;
}

}  // namespace melb::check
