// Cost models for shared-memory executions (paper §3.3 and related work §2).
//
// The paper's results are stated in the state change (SC) model; the related
// work it positions against uses the distributed shared memory (DSM) and
// cache coherent (CC) remote-memory-reference models. All four are
// implemented here over recorded executions so experiments can compare the
// same run under every measure:
//
//  * TotalAccessCost  — every shared-memory access costs 1 (Alur–Taubenfeld
//    [1] proved this is unbounded for any mutex algorithm: busy-waiting).
//  * StateChangeCost  — Def. 3.1: an access costs 1 iff the acting process
//    changed local state. Single-register busy-waits are charged once.
//  * CacheCoherentCost — write-invalidate cache simulation: a read misses if
//    the line was invalidated since the process last held it; a write misses
//    unless the process has the line exclusively.
//  * DsmCost          — each register lives in one process's partition
//    (Algorithm::register_owner); accesses to another partition cost 1.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/automaton.h"
#include "sim/execution.h"

namespace melb::cost {

class CostModel {
 public:
  virtual ~CostModel() = default;

  virtual std::string name() const = 0;

  // Cost attributed to each process (index = pid).
  virtual std::vector<std::uint64_t> per_process_cost(const sim::Execution& exec,
                                                      int n) const = 0;

  std::uint64_t total_cost(const sim::Execution& exec, int n) const;

  // The maximum over processes — the non-amortized measure of Anderson & Kim [2].
  std::uint64_t max_process_cost(const sim::Execution& exec, int n) const;

  // On-the-fly per-access costing, used by the model checker's rmr-bound
  // property: the cost of one shared-memory access by `pid` on `reg`, where
  // `local_change` says whether the access changed the acting process's
  // local state. Defined exactly for the models whose per-access cost is a
  // function of (pid, reg, local_change) alone — total-accesses,
  // state-change, dsm. Cache-coherent costs depend on the access history
  // (who last invalidated the line), so it keeps the default false /
  // throwing pair. Summing step_cost over an execution's memory accesses
  // equals per_process_cost for the supporting models.
  virtual bool supports_step_cost() const { return false; }
  virtual std::uint64_t step_cost(sim::Pid pid, sim::Reg reg, bool local_change) const;
};

class TotalAccessCost final : public CostModel {
 public:
  std::string name() const override { return "total-accesses"; }
  std::vector<std::uint64_t> per_process_cost(const sim::Execution& exec, int n) const override;
  bool supports_step_cost() const override { return true; }
  std::uint64_t step_cost(sim::Pid, sim::Reg, bool) const override { return 1; }
};

class StateChangeCost final : public CostModel {
 public:
  std::string name() const override { return "state-change"; }
  std::vector<std::uint64_t> per_process_cost(const sim::Execution& exec, int n) const override;
  bool supports_step_cost() const override { return true; }
  std::uint64_t step_cost(sim::Pid, sim::Reg, bool local_change) const override {
    return local_change ? 1 : 0;
  }
};

class CacheCoherentCost final : public CostModel {
 public:
  explicit CacheCoherentCost(int num_registers) : num_registers_(num_registers) {}
  std::string name() const override { return "cache-coherent"; }
  std::vector<std::uint64_t> per_process_cost(const sim::Execution& exec, int n) const override;

 private:
  int num_registers_;
};

class DsmCost final : public CostModel {
 public:
  // Keeps a reference: the algorithm must outlive the model.
  DsmCost(const sim::Algorithm& algorithm, int n);
  std::string name() const override { return "dsm"; }
  std::vector<std::uint64_t> per_process_cost(const sim::Execution& exec, int n) const override;
  bool supports_step_cost() const override { return true; }
  std::uint64_t step_cost(sim::Pid pid, sim::Reg reg, bool) const override {
    return owner_[static_cast<std::size_t>(reg)] != pid ? 1 : 0;
  }

 private:
  std::vector<sim::Pid> owner_;  // register -> owning pid or -1
};

// Name-based factory, mirroring sim::make_scheduler: instantiates the model
// named by cost_model_names() for one (algorithm, n), throwing
// std::invalid_argument on an unknown name (listing the valid ones).
std::unique_ptr<CostModel> make_cost_model(const std::string& name,
                                           const sim::Algorithm& algorithm, int n);

// The canonical model names, in reporting order (total-accesses,
// state-change, cache-coherent, dsm).
const std::vector<std::string>& cost_model_names();

// All four models instantiated for one algorithm instance, in
// cost_model_names() order.
std::vector<std::unique_ptr<CostModel>> standard_models(const sim::Algorithm& algorithm, int n);

}  // namespace melb::cost
