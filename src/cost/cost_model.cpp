#include "cost/cost_model.h"

#include <algorithm>
#include <stdexcept>

namespace melb::cost {

using sim::Execution;
using sim::Pid;
using sim::StepType;

std::uint64_t CostModel::step_cost(Pid, sim::Reg, bool) const {
  throw std::logic_error("cost model '" + name() +
                         "' has no per-access cost (supports_step_cost() is false)");
}

std::uint64_t CostModel::total_cost(const Execution& exec, int n) const {
  std::uint64_t total = 0;
  for (auto c : per_process_cost(exec, n)) total += c;
  return total;
}

std::uint64_t CostModel::max_process_cost(const Execution& exec, int n) const {
  const auto costs = per_process_cost(exec, n);
  return costs.empty() ? 0 : *std::max_element(costs.begin(), costs.end());
}

std::vector<std::uint64_t> TotalAccessCost::per_process_cost(const Execution& exec,
                                                             int n) const {
  std::vector<std::uint64_t> costs(static_cast<std::size_t>(n), 0);
  for (const auto& rs : exec.steps()) {
    if (rs.step.is_memory_access()) ++costs[static_cast<std::size_t>(rs.step.pid)];
  }
  return costs;
}

std::vector<std::uint64_t> StateChangeCost::per_process_cost(const Execution& exec,
                                                             int n) const {
  std::vector<std::uint64_t> costs(static_cast<std::size_t>(n), 0);
  for (const auto& rs : exec.steps()) {
    if (rs.step.is_memory_access() && rs.state_changed) {
      ++costs[static_cast<std::size_t>(rs.step.pid)];
    }
  }
  return costs;
}

std::vector<std::uint64_t> CacheCoherentCost::per_process_cost(const Execution& exec,
                                                               int n) const {
  std::vector<std::uint64_t> costs(static_cast<std::size_t>(n), 0);
  // line_state[r]: which processes hold register r in cache, and whether some
  // process holds it exclusively (the last writer).
  struct Line {
    std::vector<bool> sharers;
    Pid exclusive = -1;  // holder with write permission, or -1
  };
  std::vector<Line> lines(static_cast<std::size_t>(num_registers_));
  for (auto& line : lines) line.sharers.assign(static_cast<std::size_t>(n), false);

  for (const auto& rs : exec.steps()) {
    if (!rs.step.is_memory_access()) continue;
    auto& line = lines[static_cast<std::size_t>(rs.step.reg)];
    const auto pid = static_cast<std::size_t>(rs.step.pid);
    if (rs.step.type == StepType::kRead) {
      if (!line.sharers[pid]) {
        ++costs[pid];  // coherence miss: fetch the line
        line.sharers[pid] = true;
      }
      if (line.exclusive == rs.step.pid) line.exclusive = -1;  // demote to shared
    } else {  // write
      const bool already_exclusive =
          line.exclusive == rs.step.pid && line.sharers[pid] &&
          std::count(line.sharers.begin(), line.sharers.end(), true) == 1;
      if (!already_exclusive) {
        ++costs[pid];  // invalidation round
        line.sharers.assign(static_cast<std::size_t>(n), false);
        line.sharers[pid] = true;
      }
      line.exclusive = rs.step.pid;
    }
  }
  return costs;
}

DsmCost::DsmCost(const sim::Algorithm& algorithm, int n) {
  const int regs = algorithm.num_registers(n);
  owner_.resize(static_cast<std::size_t>(regs));
  for (sim::Reg r = 0; r < regs; ++r) owner_[static_cast<std::size_t>(r)] = algorithm.register_owner(r, n);
}

std::vector<std::uint64_t> DsmCost::per_process_cost(const Execution& exec, int n) const {
  std::vector<std::uint64_t> costs(static_cast<std::size_t>(n), 0);
  for (const auto& rs : exec.steps()) {
    if (!rs.step.is_memory_access()) continue;
    if (owner_[static_cast<std::size_t>(rs.step.reg)] != rs.step.pid) {
      ++costs[static_cast<std::size_t>(rs.step.pid)];
    }
  }
  return costs;
}

std::unique_ptr<CostModel> make_cost_model(const std::string& name,
                                           const sim::Algorithm& algorithm, int n) {
  if (name == "total-accesses") return std::make_unique<TotalAccessCost>();
  if (name == "state-change") return std::make_unique<StateChangeCost>();
  if (name == "cache-coherent") {
    return std::make_unique<CacheCoherentCost>(algorithm.num_registers(n));
  }
  if (name == "dsm") return std::make_unique<DsmCost>(algorithm, n);
  std::string known;
  for (const auto& m : cost_model_names()) {
    if (!known.empty()) known += ", ";
    known += m;
  }
  throw std::invalid_argument("unknown cost model: " + name +
                              " (expected one of: " + known + ")");
}

const std::vector<std::string>& cost_model_names() {
  static const std::vector<std::string> names = {"total-accesses", "state-change",
                                                 "cache-coherent", "dsm"};
  return names;
}

std::vector<std::unique_ptr<CostModel>> standard_models(const sim::Algorithm& algorithm,
                                                        int n) {
  std::vector<std::unique_ptr<CostModel>> models;
  for (const auto& name : cost_model_names()) {
    models.push_back(make_cost_model(name, algorithm, n));
  }
  return models;
}

}  // namespace melb::cost
