// Greedy RMR-maximizing adversary: extract the worst reachable schedule.
//
// The paper's lower bound is an adversary argument — the cost of mutual
// exclusion is *witnessed* by a schedule. PR 7's rmr-bound property certifies
// the worst-case cost to enter the critical section as a number; this module
// closes the loop by producing the schedule that achieves it. It reruns the
// rmr-bound longest-path fixpoint over the checker's recorded state graph
// (check::check's EngineView/EdgeStore plumbing, cost::make_cost_model
// per-step costing) while additionally threading predecessor pointers
// through every relaxation, then:
//
//   1. picks the enter edge whose source maximizes the acting pid's
//      accumulator — that pid is the victim, the accumulator the bound;
//   2. backtracks the predecessor chain while the victim's accumulator is
//      positive, re-verifying D[t][q] == D[pred][q] + contribution at every
//      hop (a defensive check against zero-cost-cycle pathologies: the chain
//      is also length-capped, and a cap hit raises instead of looping);
//   3. prepends the engine's BFS first-discovery chain from the root to the
//      zero-cost plateau (sound because D[u][victim] == 0 means *every* path
//      to u costs the victim nothing);
//   4. re-simulates the assembled pid sequence on a fresh Simulator and
//      re-measures the victim's cost with the cost model's
//      per_process_cost — the measured value must equal the certified bound
//      (AdversaryResult::confirmed).
//
// The schedule is emitted in sim/schedule.h's replay format (productive
// mode: checker edges change the acting process's local state, so each step
// is eligible under the canonical runner's productive-only filter), making
// the certified bound an executable, committable artifact — e.g.
// tests/fixtures/ya4-adversary-state-change.sched witnesses the pinned
// rmr-bound of 20 for yang-anderson at n=4.
//
// Determinism: exploration order, edge stream, fixpoint, and tie-breaks
// (first enter edge in stream order wins) are all worker-invariant, so the
// emitted schedule is byte-identical for every worker count.
//
// Cost models: exactly the rmr-bound set — any cost::make_cost_model name
// with supports_step_cost() (state-change, total-accesses, dsm);
// cache-coherent is rejected with std::invalid_argument. "Unbounded"
// verdicts (positive-cost reachable cycle or pre-CS spin — the expected
// outcome for total-accesses on any busy-waiting algorithm) carry no
// schedule: no finite witness exists.
#pragma once

#include <cstdint>
#include <string>

#include "sim/automaton.h"
#include "sim/schedule.h"
#include "sim/types.h"

namespace melb::adv {

struct AdversaryOptions {
  // State-space cap forwarded to the checker. Exceeding it aborts the
  // analysis (evaluated = false) — a truncated graph certifies nothing.
  std::uint64_t max_states = 20'000'000;
  int workers = 1;            // exploration workers; results worker-invariant
  std::uint64_t memory_limit_mb = 0;  // checker spill ceiling, 0 = none
};

struct AdversaryResult {
  bool evaluated = false;   // full exploration + fixpoint ran
  bool unbounded = false;   // positive-cost cycle or pre-CS spin: no witness
  std::uint64_t bound = 0;  // certified worst cost to enter the CS
  sim::Pid victim = -1;     // the process achieving the bound
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  std::uint64_t sweeps = 0;  // fixpoint sweeps until convergence
  std::string detail;        // human-readable verdict / diagnostic
  // The witness (empty pids when unbounded or not evaluated). The final pid
  // is the victim taking its enter step.
  sim::Schedule schedule;
  // Re-simulation of `schedule` on a fresh Simulator, measured with the cost
  // model's per_process_cost. confirmed <=> measured_cost == bound.
  std::uint64_t measured_cost = 0;
  bool confirmed = false;
};

// Runs the analysis for one (algorithm, n, cost model). Throws
// std::invalid_argument for unknown or history-dependent cost models
// (cache-coherent), std::runtime_error if witness extraction or
// re-simulation contradicts the certified fixpoint (a bug, not an input
// error — the cross-check is the point).
AdversaryResult find_worst_schedule(const sim::Algorithm& algorithm, int n,
                                    const std::string& cost_model,
                                    const AdversaryOptions& options = {});

}  // namespace melb::adv
