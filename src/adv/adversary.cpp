#include "adv/adversary.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "check/closed_store.h"
#include "check/model_checker.h"
#include "check/property.h"
#include "cost/cost_model.h"
#include "sim/execution.h"
#include "sim/simulator.h"

namespace melb::adv {

namespace {

using sim::CritKind;
using sim::Pid;

constexpr std::uint32_t kNone = 0xffffffffu;

// What the property hands back to find_worst_schedule. check() owns the
// property instances and may destroy them before the caller reads results,
// so everything lands in this caller-owned struct instead.
struct Extraction {
  bool evaluated = false;
  bool unbounded = false;
  std::uint64_t bound = 0;
  std::uint64_t sweeps = 0;
  Pid victim = -1;
  std::vector<Pid> pids;
  std::string detail;
};

// rmr-bound's longest-path fixpoint (check/property.cpp) extended with
// predecessor pointers and the engine's BFS first-discovery chain, so the
// maximizing path can be read back out. Plain exploration only: per-state
// pid payloads are not quotient-invariant under symmetry reduction.
class AdversaryProperty final : public check::Property {
 public:
  AdversaryProperty(const cost::CostModel* model, int n, Extraction* out)
      : model_(model), n_(n), out_(out) {}

  std::string name() const override { return "adversary:" + model_->name(); }
  bool needs_edges() const override { return true; }
  bool wants_transitions() const override { return true; }
  bool wants_self_loops() const override { return true; }
  bool supports_symmetry() const override { return false; }

  void on_begin(const check::EngineView& view) override {
    (void)view;
    entered_.push_back(0);  // root: nobody has entered
    parents_.push_back(kNone);
    parent_pids_.push_back(0);
  }

  void on_transition(const check::TransitionView& t) override {
    const std::uint8_t cost =
        t.memory_access
            ? static_cast<std::uint8_t>(model_->step_cost(t.pid, t.reg, t.local_change) != 0)
            : 0;
    const bool enter = t.is_crit && t.crit == CritKind::kEnter;
    if (t.self_loop) {
      // Zero-progress spins are not edges. A positive-cost spin before the
      // spinner's CS entry makes the bound infinite (rmr-bound's rule).
      if (cost != 0 && ((entered_[t.parent] >> t.pid) & 1) == 0) {
        spin_unbounded_ = true;
      }
      return;
    }
    if (t.is_new) {
      // New states are sequenced in index order; the first-discovery edge is
      // the engine's own BFS parent chain, reused as the zero-cost prefix.
      if (entered_.size() != t.target) {
        throw std::logic_error("adversary: transition sequencing out of order");
      }
      entered_.push_back(entered_[t.parent] |
                         (enter ? (std::uint64_t{1} << t.pid) : 0));
      parents_.push_back(t.parent);
      parent_pids_.push_back(static_cast<std::uint8_t>(t.pid));
    }
    // Side bytes zip 1:1 with the engine's edge stream, rmr-bound's layout:
    // bits 0-5 pid, bit 6 unit cost, bit 7 enter step.
    side_.push_back(static_cast<std::uint8_t>(t.pid) |
                    static_cast<std::uint8_t>(cost << 6) |
                    static_cast<std::uint8_t>(enter ? 0x80 : 0));
  }

  std::optional<check::PropertyViolation> finish(check::EngineView& view) override;

  check::PropertyReport report() const override {
    check::PropertyReport r;
    r.property = name();
    r.holds = true;  // a measurement, never a violation
    r.evaluated = out_->evaluated;
    r.detail = out_->detail;
    r.bound = out_->bound;
    r.has_bound = out_->evaluated && !out_->unbounded;
    return r;
  }

  std::uint64_t memory_bytes() const override {
    return side_.capacity() + entered_.capacity() * sizeof(std::uint64_t) +
           parents_.capacity() * sizeof(std::uint32_t) + parent_pids_.capacity() +
           pass_bytes_;
  }

 private:
  const cost::CostModel* model_;
  const int n_;
  Extraction* out_;
  std::vector<std::uint8_t> side_;          // per engine edge: pid | cost | enter
  std::vector<std::uint64_t> entered_;      // per state: bitmask of pids past enter
  std::vector<std::uint32_t> parents_;      // per state: BFS first-discovery parent
  std::vector<std::uint8_t> parent_pids_;   // per state: acting pid of that edge
  std::uint64_t pass_bytes_ = 0;
  bool spin_unbounded_ = false;
};

std::optional<check::PropertyViolation> AdversaryProperty::finish(
    check::EngineView& view) {
  out_->evaluated = true;
  const std::uint64_t states = view.num_states();
  const auto width = static_cast<std::size_t>(n_);
  if (spin_unbounded_) {
    out_->unbounded = true;
    out_->detail = "unbounded under " + model_->name() +
                   ": a process can busy-wait at positive cost before entering";
    return std::nullopt;
  }

  // D[s * n + q]: max cost accumulated by pid q over all paths to state s.
  // pred_from/pred_step remember the edge of each accumulator's last
  // improvement; at convergence D[t][q] == D[pred][q] + contribution (any
  // later source increase would have re-relaxed the edge), so following the
  // pointers while D > 0 reads the maximizing path backwards.
  std::vector<std::uint32_t> accum(static_cast<std::size_t>(states) * width, 0);
  std::vector<std::uint32_t> pred_from(accum.size(), kNone);
  std::vector<std::uint8_t> pred_step(accum.size(), 0);  // pid | cost << 7
  pass_bytes_ = accum.capacity() * sizeof(std::uint32_t) +
                pred_from.capacity() * sizeof(std::uint32_t) + pred_step.capacity();
  const auto limit = static_cast<std::uint32_t>(states);
  const check::EdgeStore& edges = *view.edge_store();
  bool overflow = false;
  bool changed = true;
  while (changed && !overflow) {
    changed = false;
    ++out_->sweeps;
    std::size_t ei = 0;
    edges.for_each([&](std::uint32_t from, std::uint32_t to) {
      const std::uint8_t b = side_[ei++];
      const Pid pid = b & 63;
      const std::uint32_t cost = (b >> 6) & 1;
      const std::uint32_t* src = accum.data() + static_cast<std::size_t>(from) * width;
      std::uint32_t* dst = accum.data() + static_cast<std::size_t>(to) * width;
      for (std::size_t q = 0; q < width; ++q) {
        const std::uint32_t v = src[q] + (static_cast<Pid>(q) == pid ? cost : 0);
        if (v > dst[q]) {
          dst[q] = v;
          const std::size_t slot = static_cast<std::size_t>(to) * width + q;
          pred_from[slot] = from;
          pred_step[slot] =
              static_cast<std::uint8_t>(pid) | static_cast<std::uint8_t>(cost << 7);
          changed = true;
          if (v >= limit) overflow = true;
        }
      }
    });
  }

  if (overflow) {
    out_->unbounded = true;
    out_->detail = "unbounded under " + model_->name() +
                   ": a reachable cycle accumulates positive cost before the CS";
    view.note_pass_bytes(pass_bytes_);
    pass_bytes_ = 0;
    return std::nullopt;
  }

  // The certified bound: max accumulator of the acting pid at the source of
  // every enter edge. First edge in stream order wins ties — the stream
  // order is worker-invariant, so the witness is too.
  std::uint64_t bound = 0;
  std::uint32_t best_from = kNone;
  Pid victim = -1;
  std::size_t ei = 0;
  edges.for_each([&](std::uint32_t from, std::uint32_t to) {
    (void)to;
    const std::uint8_t b = side_[ei++];
    if ((b & 0x80) == 0) return;
    const Pid pid = b & 63;
    const std::uint64_t d = accum[static_cast<std::size_t>(from) * width +
                                  static_cast<std::size_t>(pid)];
    if (best_from == kNone || d > bound) {
      bound = d;
      best_from = from;
      victim = pid;
    }
  });
  if (best_from == kNone) {
    throw std::runtime_error("adversary: no enter step in the explored graph");
  }
  out_->bound = bound;
  out_->victim = victim;

  // Walk the predecessor chain from the chosen enter edge's source back to
  // the zero-cost plateau, re-verifying each hop, then prepend the BFS
  // first-discovery chain to the root (every path to a D == 0 state costs
  // the victim nothing, so the prefix choice cannot change the measure).
  std::vector<Pid> suffix;  // reversed: enter-edge source back to plateau
  std::uint32_t cur = best_from;
  std::uint64_t guard = 0;
  while (accum[static_cast<std::size_t>(cur) * width + static_cast<std::size_t>(victim)] >
         0) {
    const std::size_t slot =
        static_cast<std::size_t>(cur) * width + static_cast<std::size_t>(victim);
    const std::uint32_t from = pred_from[slot];
    if (from == kNone) {
      throw std::runtime_error("adversary: positive accumulator without predecessor");
    }
    const Pid p = pred_step[slot] & 63;
    const std::uint32_t c = (pred_step[slot] >> 7) & 1;
    const std::uint32_t expected =
        accum[static_cast<std::size_t>(from) * width + static_cast<std::size_t>(victim)] +
        (p == victim ? c : 0);
    if (expected != accum[slot]) {
      throw std::runtime_error(
          "adversary: predecessor chain contradicts the converged fixpoint");
    }
    suffix.push_back(p);
    cur = from;
    if (++guard > states + 1) {
      throw std::runtime_error(
          "adversary: witness chain longer than the state count (zero-cost cycle)");
    }
  }
  std::vector<Pid> prefix;  // reversed: plateau state back to the root
  while (parents_[cur] != kNone) {
    prefix.push_back(static_cast<Pid>(parent_pids_[cur]));
    cur = parents_[cur];
    if (++guard > 2 * states + 2) {
      throw std::runtime_error("adversary: BFS parent chain does not reach the root");
    }
  }

  out_->pids.assign(prefix.rbegin(), prefix.rend());
  out_->pids.insert(out_->pids.end(), suffix.rbegin(), suffix.rend());
  out_->pids.push_back(victim);  // the enter step itself
  out_->detail = "max " + model_->name() + " cost to enter the CS = " +
                 std::to_string(bound) + " (victim pid " + std::to_string(victim) +
                 ", " + std::to_string(out_->pids.size()) + "-step witness, " +
                 std::to_string(out_->sweeps) + " fixpoint sweeps)";
  view.note_pass_bytes(pass_bytes_);
  pass_bytes_ = 0;
  return std::nullopt;
}

}  // namespace

AdversaryResult find_worst_schedule(const sim::Algorithm& algorithm, int n,
                                    const std::string& cost_model,
                                    const AdversaryOptions& options) {
  const auto model = cost::make_cost_model(cost_model, algorithm, n);
  if (!model->supports_step_cost()) {
    throw std::invalid_argument(
        "adversary does not support cost model '" + cost_model +
        "' (its per-access cost depends on execution history, not on the reached "
        "state)");
  }

  Extraction ex;
  check::PropertyList properties;
  properties.push_back(std::make_unique<AdversaryProperty>(model.get(), n, &ex));
  check::CheckOptions copts;
  copts.max_states = options.max_states;
  copts.workers = options.workers;
  copts.memory_limit_mb = options.memory_limit_mb;
  const check::CheckResult cr = check::check(algorithm, n, std::move(properties), copts);

  AdversaryResult result;
  result.states = cr.states;
  result.transitions = cr.transitions;
  if (cr.exhausted_limit || !ex.evaluated) {
    result.detail = "state space exceeds max-states=" + std::to_string(options.max_states) +
                    " — the truncated graph certifies nothing; raise the cap";
    return result;
  }
  result.evaluated = true;
  result.unbounded = ex.unbounded;
  result.bound = ex.bound;
  result.victim = ex.victim;
  result.sweeps = ex.sweeps;
  result.detail = ex.detail;
  if (ex.unbounded) return result;

  result.schedule.algorithm = algorithm.name();
  result.schedule.n = n;
  result.schedule.mode = sim::RunMode::kProductiveOnly;
  result.schedule.source = "adversary cost=" + cost_model + " bound=" +
                           std::to_string(ex.bound) + " victim=" +
                           std::to_string(ex.victim);
  result.schedule.pids = std::move(ex.pids);

  // Confirm the witness by construction-independent re-simulation: run the
  // pid sequence on a fresh Simulator and re-measure with the offline cost
  // model. Any mismatch is a checker/adversary bug and must be loud.
  sim::Simulator simulator(algorithm, n);
  for (std::size_t i = 0; i < result.schedule.pids.size(); ++i) {
    const Pid pid = result.schedule.pids[i];
    if (pid < 0 || pid >= n || simulator.process_done(pid)) {
      throw std::runtime_error("adversary: witness step " + std::to_string(i) +
                               " schedules pid " + std::to_string(pid) +
                               ", which cannot move");
    }
    simulator.step(pid);
  }
  const sim::Execution& exec = simulator.execution();
  const std::string wf = sim::check_well_formed(exec, n);
  if (!wf.empty()) throw std::runtime_error("adversary: witness not well-formed: " + wf);
  const std::string mx = sim::check_mutual_exclusion(exec, n);
  if (!mx.empty()) throw std::runtime_error("adversary: witness violates mutex: " + mx);
  const auto costs = model->per_process_cost(exec, n);
  result.measured_cost = costs[static_cast<std::size_t>(result.victim)];
  result.confirmed = result.measured_cost == result.bound;
  if (!result.confirmed) {
    result.detail += "; RE-SIMULATION MISMATCH: measured " +
                     std::to_string(result.measured_cost);
  }
  return result;
}

}  // namespace melb::adv
