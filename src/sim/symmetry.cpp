#include "sim/symmetry.h"

namespace melb::sim {

namespace {

class IdentityPidSymmetry final : public PidSymmetry {
 public:
  bool valid(const util::Permutation& sigma, int n) const override {
    return sigma == util::Permutation(n);
  }
  Reg map_register(const util::Permutation&, Reg r, int) const override {
    return r;
  }
  SlotValueKind value_kind(Reg, int) const override {
    return SlotValueKind::kPlain;
  }
};

class SharedRegisterSymmetry final : public PidSymmetry {
 public:
  bool valid(const util::Permutation&, int) const override { return true; }
  Reg map_register(const util::Permutation&, Reg r, int) const override {
    return r;
  }
  SlotValueKind value_kind(Reg, int) const override {
    return SlotValueKind::kPlain;
  }
};

}  // namespace

Value map_value(const util::Permutation& sigma, SlotValueKind kind, Value v,
                int n) {
  if (kind == SlotValueKind::kPidPlusOne && v >= 1 && v <= n) {
    return sigma.at(static_cast<int>(v) - 1) + 1;
  }
  return v;
}

Step map_step(const PidSymmetry& action, const util::Permutation& sigma,
              const Step& step, int n) {
  Step mapped = step;
  if (step.pid >= 0 && step.pid < n) mapped.pid = sigma.at(step.pid);
  if (step.type == StepType::kCrit) return mapped;
  mapped.reg = action.map_register(sigma, step.reg, n);
  const SlotValueKind kind = action.value_kind(step.reg, n);
  mapped.value = map_value(sigma, kind, step.value, n);
  if (step.type == StepType::kRmw && step.rmw == RmwKind::kCas) {
    mapped.expected = map_value(sigma, kind, step.expected, n);
  }
  return mapped;
}

const PidSymmetry& identity_pid_symmetry() {
  static const IdentityPidSymmetry instance;
  return instance;
}

const PidSymmetry& shared_register_symmetry() {
  static const SharedRegisterSymmetry instance;
  return instance;
}

}  // namespace melb::sim
