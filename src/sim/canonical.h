// Canonical executions: every process completes one critical-section cycle.
//
// The paper's cost statements quantify over canonical executions — n
// processes, each entering the critical section exactly once. This runner
// produces them under a pluggable scheduler.
//
// Scheduling modes:
//  * kProductiveOnly (default): only processes whose next step changes their
//    local state are eligible. Under the SC cost model a non-changing read is
//    free and leaves the whole system state unchanged, so skipping it yields
//    an equivalent execution while making the run length O(cost) instead of
//    O(cost × spin time). If no process can take a productive step and some
//    are unfinished, the system is livelocked (no future step can unblock a
//    spinner) and the run reports it.
//  * kFaithful: every enabled process is eligible, free busy-wait reads are
//    recorded. Step count is capped; use for demonstrations and validation.
#pragma once

#include <cstdint>

#include "sim/execution.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace melb::sim {

enum class RunMode { kProductiveOnly, kFaithful };

struct CanonicalRun {
  Execution exec;
  bool completed = false;      // all n processes reached their rem step
  bool livelocked = false;     // productive mode proved no progress is possible
  std::uint64_t steps = 0;     // steps actually executed (incl. free reads)
  std::uint64_t sc_cost = 0;   // Def. 3.1 cost of exec
};

// Runs the algorithm with n processes until all complete one cycle, the step
// cap is hit, or livelock is detected. The scheduler sees only eligible pids.
CanonicalRun run_canonical(const Algorithm& algorithm, int n, Scheduler& scheduler,
                           RunMode mode = RunMode::kProductiveOnly,
                           std::uint64_t max_steps = 50'000'000);

}  // namespace melb::sim
