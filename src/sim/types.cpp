#include "sim/types.h"

#include <sstream>

namespace melb::sim {

std::string to_string(StepType type) {
  switch (type) {
    case StepType::kRead:
      return "R";
    case StepType::kWrite:
      return "W";
    case StepType::kRmw:
      return "RMW";
    case StepType::kCrit:
      return "C";
  }
  return "?";
}

std::string to_string(CritKind kind) {
  switch (kind) {
    case CritKind::kTry:
      return "try";
    case CritKind::kEnter:
      return "enter";
    case CritKind::kExit:
      return "exit";
    case CritKind::kRem:
      return "rem";
  }
  return "?";
}

Value apply_rmw(const Step& step, Value old_value) {
  switch (step.rmw) {
    case RmwKind::kCas:
      return old_value == step.expected ? step.value : old_value;
    case RmwKind::kSwap:
      return step.value;
    case RmwKind::kFaa:
      return old_value + step.value;
  }
  return old_value;
}

std::string to_string(const Step& step) {
  std::ostringstream out;
  switch (step.type) {
    case StepType::kRead:
      out << "read_" << step.pid << "(r" << step.reg << ")";
      break;
    case StepType::kWrite:
      out << "write_" << step.pid << "(r" << step.reg << ", " << step.value << ")";
      break;
    case StepType::kRmw:
      switch (step.rmw) {
        case RmwKind::kCas:
          out << "cas_" << step.pid << "(r" << step.reg << ", " << step.expected << "->"
              << step.value << ")";
          break;
        case RmwKind::kSwap:
          out << "swap_" << step.pid << "(r" << step.reg << ", " << step.value << ")";
          break;
        case RmwKind::kFaa:
          out << "faa_" << step.pid << "(r" << step.reg << ", " << step.value << ")";
          break;
      }
      break;
    case StepType::kCrit:
      out << to_string(step.crit) << "_" << step.pid;
      break;
  }
  return out.str();
}

std::string to_string(Section section) {
  switch (section) {
    case Section::kRemainder:
      return "remainder";
    case Section::kTrying:
      return "trying";
    case Section::kCritical:
      return "critical";
    case Section::kExit:
      return "exit";
  }
  return "?";
}

}  // namespace melb::sim
