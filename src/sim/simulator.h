// The live simulated system: n automata plus the shared register file.
//
// Three modes of use:
//  * interactive: callers pick which process moves next (schedulers do this);
//  * forced replay: execute a prescribed step sequence, validating each step
//    against the acting automaton's δ (the lower-bound pipeline checks its
//    linearizations are real executions this way);
//  * prefix replay: recompute a process's automaton state after an execution
//    prefix — the δ(α, j) evaluations of Fig. 1 and Fig. 3.
//
// Thread-safety: a Simulator owns all of its mutable state (registers,
// automata, recorded execution); the Algorithm it borrows is only read
// through const methods and make_process(), which must be const and
// stateless (see sim/automaton.h). Distinct Simulator instances — one per
// sweep cell — may therefore run concurrently against the same Algorithm
// object with no synchronization. One instance is not safe to share.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/automaton.h"
#include "sim/execution.h"

namespace melb::sim {

// Thrown when a forced step does not match what the acting automaton's
// transition function proposes — i.e. the step sequence is not an execution.
class InvalidStepError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Simulator {
 public:
  Simulator(const Algorithm& algorithm, int n);

  int n() const { return n_; }

  // Execute process pid's next step. Returns the recorded step.
  // Precondition: !process_done(pid).
  RecordedStep step(Pid pid);

  // Execute `forced`, which must equal the acting automaton's proposed step
  // (value compared for writes, kind for critical steps). Throws
  // InvalidStepError otherwise.
  RecordedStep force_step(const Step& forced);

  // The step process pid would take next (δ applied to its current state).
  Step peek(Pid pid) const;

  // Would process pid's pending read change its state if it observed the
  // current register contents? (Writes and critical steps always change
  // state for well-formed automata; this returns true for them.)
  bool next_step_productive(Pid pid) const;

  bool process_done(Pid pid) const;
  bool all_done() const;

  Value register_value(Reg reg) const { return registers_[static_cast<std::size_t>(reg)]; }
  const Automaton& automaton(Pid pid) const { return *automata_[static_cast<std::size_t>(pid)]; }

  const Execution& execution() const { return execution_; }
  std::uint64_t sc_cost() const { return execution_.sc_cost(); }

 private:
  RecordedStep execute(Pid pid, const Step& step);

  const Algorithm& algorithm_;
  int n_;
  std::vector<Value> registers_;
  std::vector<std::unique_ptr<Automaton>> automata_;
  Execution execution_;
};

// Run the bare step sequence through a fresh system, validating every step.
// Returns the fully annotated execution (read values, SC marks).
Execution validate_steps(const Algorithm& algorithm, int n, const std::vector<Step>& steps);

// Recompute process pid's automaton state after the prefix `steps` (which
// need not include annotations; register contents are tracked internally).
// Faster than validate_steps when only one process's state is needed: only
// pid's automaton is replayed, but all writes are applied to the registers.
//
// Returns the automaton (done() possible) — the paper's st(α, i).
std::unique_ptr<Automaton> replay_process(const Algorithm& algorithm, int n,
                                          const std::vector<Step>& steps, Pid pid);

}  // namespace melb::sim
