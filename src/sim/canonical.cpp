#include "sim/canonical.h"

namespace melb::sim {

CanonicalRun run_canonical(const Algorithm& algorithm, int n, Scheduler& scheduler,
                           RunMode mode, std::uint64_t max_steps) {
  Simulator sim(algorithm, n);
  CanonicalRun result;

  // Event-driven productivity tracking: a spinning process only needs to be
  // re-examined when someone writes the register it watches. This keeps the
  // per-step work O(contenders-on-one-register) instead of O(n).
  std::vector<bool> productive(static_cast<std::size_t>(n), false);
  std::vector<Reg> watching(static_cast<std::size_t>(n), -1);  // spun-on register or -1
  int done_count = 0;

  auto refresh = [&](Pid pid) {
    if (sim.process_done(pid)) {
      productive[static_cast<std::size_t>(pid)] = false;
      watching[static_cast<std::size_t>(pid)] = -1;
      return;
    }
    const Step step = sim.peek(pid);
    const bool is_productive = sim.next_step_productive(pid);
    productive[static_cast<std::size_t>(pid)] = is_productive;
    // Unproductive steps are reads or failing RMWs: wake them when their
    // register is written.
    watching[static_cast<std::size_t>(pid)] = is_productive ? -1 : step.reg;
  };
  for (Pid pid = 0; pid < n; ++pid) refresh(pid);

  std::vector<Pid> eligible;
  eligible.reserve(static_cast<std::size_t>(n));

  while (result.steps < max_steps) {
    if (done_count == n) {
      result.completed = true;
      break;
    }
    eligible.clear();
    for (Pid pid = 0; pid < n; ++pid) {
      if (sim.process_done(pid)) continue;
      if (mode == RunMode::kProductiveOnly && !productive[static_cast<std::size_t>(pid)]) {
        continue;
      }
      eligible.push_back(pid);
    }
    if (eligible.empty()) {
      // Every unfinished process is spinning on a register no one will ever
      // change (there are no other steps left in the system): livelock.
      result.livelocked = true;
      break;
    }
    const Pid pid = scheduler.pick(eligible);
    const RecordedStep rs = sim.step(pid);
    ++result.steps;
    if (sim.process_done(pid)) ++done_count;
    refresh(pid);
    const bool wrote =
        rs.step.type == StepType::kWrite ||
        (rs.step.type == StepType::kRmw &&
         apply_rmw(rs.step, rs.read_value) != rs.read_value);
    if (wrote) {
      for (Pid other = 0; other < n; ++other) {
        if (other != pid && watching[static_cast<std::size_t>(other)] == rs.step.reg) {
          refresh(other);
        }
      }
    }
  }

  result.exec = sim.execution();
  result.sc_cost = result.exec.sc_cost();
  return result;
}

}  // namespace melb::sim
