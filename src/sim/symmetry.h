// Pid-symmetry actions: how renaming processes acts on an algorithm's
// shared state.
//
// A mutex algorithm is pid-symmetric when relabeling the processes by a
// permutation sigma of [0, n) maps executions to executions. The checker
// exploits this by exploring only one representative per orbit of the
// pid-permutation group; to canonicalize a *state* it needs to know how
// sigma acts on the shared registers:
//
//  * which register slot r maps to (map_register) — e.g. per-pid spin
//    registers relocate with their owner, a shared tail pointer stays put;
//  * how the *value* stored in a slot transforms (value_kind) — a slot
//    holding "0 or pid+1" must have its payload renamed, a slot holding a
//    ticket counter or a boolean flag must not;
//  * which permutations are valid automorphisms at all (valid) — e.g. the
//    tournament-tree algorithms only admit permutations realizable as tree
//    automorphisms.
//
// The per-process local state transforms via Automaton::relabeled(). The
// identity action (only sigma == id valid) is always sound and is the
// default for every algorithm, so symmetry reduction degrades to plain
// exploration unless an algorithm opts in with a real action.
#pragma once

#include "sim/types.h"
#include "util/permutation.h"

namespace melb::sim {

// How a register slot's payload transforms under a pid permutation.
enum class SlotValueKind : std::uint8_t {
  kPlain,       // value is pid-independent (flags, counters, levels)
  kPidPlusOne,  // value is 0 (empty) or pid+1 — rename the pid part
};

// The action of the pid-permutation group on an algorithm's shared state.
// Implementations must satisfy, for every valid sigma:
//  * map_register(sigma, ., n) is a bijection on [0, num_registers(n));
//  * the initial register file is fixed (slots map to slots with equal
//    initial values);
//  * relabeling a process automaton (Automaton::relabeled) and remapping
//    every step it proposes commute — the checker verifies this per
//    interned local state and aborts on a mismatch.
class PidSymmetry {
 public:
  virtual ~PidSymmetry() = default;

  // Is sigma an automorphism of this algorithm's state graph?
  virtual bool valid(const util::Permutation& sigma, int n) const = 0;

  // Image of register slot r under sigma (precondition: valid(sigma, n)).
  virtual Reg map_register(const util::Permutation& sigma, Reg r, int n) const = 0;

  // How values stored in slot r transform.
  virtual SlotValueKind value_kind(Reg r, int n) const = 0;
};

// Value transform for a slot of the given kind: kPidPlusOne renames
// v in [1, n] to sigma(v-1)+1 and fixes everything else.
Value map_value(const util::Permutation& sigma, SlotValueKind kind, Value v,
                int n);

// Image of a proposed step under sigma: pid renamed, register remapped,
// value/expected transformed per the *target* slot's kind. Critical steps
// only rename the pid.
Step map_step(const PidSymmetry& action, const util::Permutation& sigma,
              const Step& step, int n);

// The always-sound default: only the identity permutation is valid.
const PidSymmetry& identity_pid_symmetry();

// Full S_n on a state whose registers are all shared and pid-independent
// (every sigma valid, registers fixed pointwise, kPlain payloads).
const PidSymmetry& shared_register_symmetry();

}  // namespace melb::sim
