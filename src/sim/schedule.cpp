#include "sim/schedule.h"

#include <charconv>
#include <cstdint>
#include <sstream>

namespace melb::sim {

namespace {

constexpr int kMaxN = 64;  // engine-wide pid-width limit (see model_checker.h)

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ScheduleParseError("schedule line " + std::to_string(line) + ": " + what);
}

// Full-token unsigned parse; rejects signs, spaces, trailing junk.
bool parse_u64(const std::string& token, std::uint64_t& out) {
  if (token.empty()) return false;
  const char* first = token.data();
  const char* last = first + token.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

// Reads lines without requiring a trailing newline on the last one; returns
// false at end of input. CR is not stripped: the format is LF-only and a
// stray '\r' shows up as a malformed token, which is the strictness we want.
bool next_line(const std::string& text, std::size_t& pos, std::string& line) {
  if (pos >= text.size()) return false;
  const std::size_t nl = text.find('\n', pos);
  if (nl == std::string::npos) {
    line.assign(text, pos, text.size() - pos);
    pos = text.size();
  } else {
    line.assign(text, pos, nl - pos);
    pos = nl + 1;
  }
  return true;
}

// Splits "key value..." at the first space; the header keys take the rest of
// the line verbatim as the value (algorithm names and source strings may not
// contain '\n' but may contain spaces).
bool split_keyword(const std::string& line, const std::string& key, std::string& value) {
  if (line.compare(0, key.size(), key) != 0) return false;
  if (line.size() == key.size()) {
    value.clear();
    return true;
  }
  if (line[key.size()] != ' ') return false;
  value.assign(line, key.size() + 1, line.size() - key.size() - 1);
  return true;
}

}  // namespace

std::string schedule_to_text(const Schedule& schedule) {
  if (schedule.source.find('\n') != std::string::npos) {
    throw std::invalid_argument("schedule source must be a single line");
  }
  std::ostringstream out;
  out << "melb-schedule v1\n";
  out << "algorithm " << schedule.algorithm << "\n";
  out << "n " << schedule.n << "\n";
  out << "mode " << (schedule.mode == RunMode::kFaithful ? "faithful" : "productive")
      << "\n";
  out << "source " << schedule.source << "\n";
  out << "steps " << schedule.pids.size() << "\n";
  // 20 pids per line keeps long schedules diffable without bloating short ones.
  for (std::size_t i = 0; i < schedule.pids.size(); ++i) {
    out << schedule.pids[i];
    out << ((i + 1 == schedule.pids.size() || (i + 1) % 20 == 0) ? '\n' : ' ');
  }
  out << "end melb-schedule\n";
  return out.str();
}

Schedule parse_schedule(const std::string& text) {
  Schedule schedule;
  std::size_t pos = 0;
  std::size_t lineno = 0;
  std::string line;
  std::string value;

  auto require_line = [&](const char* expected) {
    if (!next_line(text, pos, line)) {
      fail(lineno + 1, std::string("unexpected end of file (expected ") + expected + ")");
    }
    ++lineno;
  };

  require_line("'melb-schedule v1'");
  if (line != "melb-schedule v1") fail(lineno, "bad magic (expected 'melb-schedule v1')");

  require_line("'algorithm NAME'");
  if (!split_keyword(line, "algorithm", value) || value.empty()) {
    fail(lineno, "expected 'algorithm NAME'");
  }
  schedule.algorithm = value;

  require_line("'n COUNT'");
  std::uint64_t n = 0;
  if (!split_keyword(line, "n", value) || !parse_u64(value, n) || n < 1 || n > kMaxN) {
    fail(lineno, "expected 'n COUNT' with COUNT in 1..64");
  }
  schedule.n = static_cast<int>(n);

  require_line("'mode productive|faithful'");
  if (!split_keyword(line, "mode", value) ||
      (value != "productive" && value != "faithful")) {
    fail(lineno, "expected 'mode productive' or 'mode faithful'");
  }
  schedule.mode = value == "faithful" ? RunMode::kFaithful : RunMode::kProductiveOnly;

  require_line("'source TEXT'");
  if (!split_keyword(line, "source", value)) fail(lineno, "expected 'source TEXT'");
  schedule.source = value;

  require_line("'steps COUNT'");
  std::uint64_t steps = 0;
  if (!split_keyword(line, "steps", value) || !parse_u64(value, steps)) {
    fail(lineno, "expected 'steps COUNT'");
  }
  if (steps > (std::uint64_t{1} << 32)) fail(lineno, "step count implausibly large");
  schedule.pids.reserve(static_cast<std::size_t>(steps));

  // Pid list: whitespace-separated tokens across however many lines it takes.
  while (schedule.pids.size() < steps) {
    require_line("more pids");
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && line[i] == ' ') ++i;
      if (i >= line.size()) break;
      const std::size_t start = i;
      while (i < line.size() && line[i] != ' ') ++i;
      const std::string token = line.substr(start, i - start);
      if (schedule.pids.size() >= steps) {
        fail(lineno, "more pids than the declared step count");
      }
      std::uint64_t pid = 0;
      if (!parse_u64(token, pid) || pid >= static_cast<std::uint64_t>(schedule.n)) {
        fail(lineno, "bad pid '" + token + "' (expected 0.." +
                         std::to_string(schedule.n - 1) + ")");
      }
      schedule.pids.push_back(static_cast<Pid>(pid));
    }
  }

  require_line("'end melb-schedule'");
  if (line != "end melb-schedule") {
    fail(lineno, "expected trailer 'end melb-schedule' (truncated or overlong pid list?)");
  }
  // Nothing but whitespace-only lines may follow the trailer.
  while (next_line(text, pos, line)) {
    ++lineno;
    if (!line.empty() && line.find_first_not_of(' ') != std::string::npos) {
      fail(lineno, "trailing content after 'end melb-schedule'");
    }
  }
  return schedule;
}

}  // namespace melb::sim
