// Executions: recorded step sequences with observations and SC-cost marks.
//
// An Execution is the paper's α. Each recorded step carries the value a read
// observed and whether the actor's local state changed (the sc(α, i, j)
// indicator of Def. 3.1). Executions can be built live by the Simulator, or
// validated/reconstructed from a bare step sequence (used by the lower-bound
// pipeline, whose linearizations are step sequences that must be checked
// against the algorithm's transition function).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace melb::sim {

struct RecordedStep {
  Step step;
  Value read_value = 0;       // for reads: the value observed
  bool state_changed = false; // did the actor's local state change?
};

class Execution {
 public:
  void append(RecordedStep rs) { steps_.push_back(rs); }

  std::size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }
  const RecordedStep& at(std::size_t i) const { return steps_[i]; }
  const std::vector<RecordedStep>& steps() const { return steps_; }

  // SC cost (Def. 3.1): number of shared-memory steps after which the acting
  // process changed local state, summed over all processes.
  std::uint64_t sc_cost() const;

  // Total number of shared-memory accesses (the pre-[1] "count everything"
  // measure; unbounded for busy-waiting algorithms).
  std::uint64_t total_accesses() const;

  // The paper's α|i: the subsequence of process pid's steps.
  std::vector<RecordedStep> projection(Pid pid) const;

  // The section each of the n processes is in after the execution.
  std::vector<Section> sections(int n) const;

  std::string to_string() const;

 private:
  std::vector<RecordedStep> steps_;
};

// The order in which processes enter their critical sections — the π an
// execution realizes (Theorem 5.5 ties constructions to this order). Shared
// by tests and benches; keep the definition of "entry" in one place.
std::vector<Pid> enter_order(const Execution& exec);

// Validators. Each returns an empty string when the property holds, otherwise
// a human-readable description of the first violation.

// Well-formedness (§3.2): every process's critical steps form a prefix of
// (try enter exit rem)*.
std::string check_well_formed(const Execution& exec, int n);

// Mutual exclusion (§3.2): no two processes are simultaneously in their
// critical sections at any point of the execution.
std::string check_mutual_exclusion(const Execution& exec, int n);

}  // namespace melb::sim
