#include "sim/simulator.h"

#include <sstream>

namespace melb::sim {

namespace {

std::string mismatch_message(const Step& forced, const Step& proposed) {
  std::ostringstream out;
  out << "forced step " << to_string(forced) << " does not match proposed step "
      << to_string(proposed);
  return out.str();
}

}  // namespace

Simulator::Simulator(const Algorithm& algorithm, int n) : algorithm_(algorithm), n_(n) {
  const int regs = algorithm.num_registers(n);
  registers_.resize(static_cast<std::size_t>(regs));
  for (Reg r = 0; r < regs; ++r) {
    registers_[static_cast<std::size_t>(r)] = algorithm.register_init(r, n);
  }
  automata_.reserve(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) automata_.push_back(algorithm.make_process(p, n));
}

RecordedStep Simulator::execute(Pid pid, const Step& step) {
  auto& automaton = *automata_[static_cast<std::size_t>(pid)];
  RecordedStep rs;
  rs.step = step;
  const std::uint64_t before = automaton.fingerprint();
  Value read_value = 0;
  switch (step.type) {
    case StepType::kRead:
      read_value = registers_[static_cast<std::size_t>(step.reg)];
      rs.read_value = read_value;
      break;
    case StepType::kWrite:
      registers_[static_cast<std::size_t>(step.reg)] = step.value;
      break;
    case StepType::kRmw: {
      auto& cell = registers_[static_cast<std::size_t>(step.reg)];
      read_value = cell;  // the RMW observes the old value
      rs.read_value = read_value;
      cell = apply_rmw(step, cell);
      break;
    }
    case StepType::kCrit:
      break;
  }
  automaton.advance(read_value);
  rs.state_changed = automaton.fingerprint() != before;
  execution_.append(rs);
  return rs;
}

RecordedStep Simulator::step(Pid pid) {
  auto& automaton = *automata_[static_cast<std::size_t>(pid)];
  return execute(pid, automaton.propose());
}

RecordedStep Simulator::force_step(const Step& forced) {
  const Pid pid = forced.pid;
  if (pid < 0 || pid >= n_) throw InvalidStepError("forced step has invalid pid");
  auto& automaton = *automata_[static_cast<std::size_t>(pid)];
  if (automaton.done()) throw InvalidStepError("forced step for a process that is done");
  const Step proposed = automaton.propose();
  if (proposed != forced) throw InvalidStepError(mismatch_message(forced, proposed));
  return execute(pid, proposed);
}

Step Simulator::peek(Pid pid) const {
  return automata_[static_cast<std::size_t>(pid)]->propose();
}

bool Simulator::next_step_productive(Pid pid) const {
  const auto& automaton = *automata_[static_cast<std::size_t>(pid)];
  const Step step = automaton.propose();
  if (step.type == StepType::kRead) {
    return read_changes_state(automaton, registers_[static_cast<std::size_t>(step.reg)]);
  }
  if (step.type == StepType::kRmw) {
    // A spinning RMW (e.g. a failing CAS) is unproductive only if it changes
    // neither the register nor the process's local state.
    const Value old_value = registers_[static_cast<std::size_t>(step.reg)];
    if (apply_rmw(step, old_value) != old_value) return true;
    return read_changes_state(automaton, old_value);
  }
  return true;
}

bool Simulator::process_done(Pid pid) const {
  return automata_[static_cast<std::size_t>(pid)]->done();
}

bool Simulator::all_done() const {
  for (const auto& automaton : automata_) {
    if (!automaton->done()) return false;
  }
  return true;
}

Execution validate_steps(const Algorithm& algorithm, int n, const std::vector<Step>& steps) {
  Simulator sim(algorithm, n);
  for (const Step& step : steps) sim.force_step(step);
  return sim.execution();
}

std::unique_ptr<Automaton> replay_process(const Algorithm& algorithm, int n,
                                          const std::vector<Step>& steps, Pid pid) {
  const int regs = algorithm.num_registers(n);
  std::vector<Value> registers(static_cast<std::size_t>(regs));
  for (Reg r = 0; r < regs; ++r) {
    registers[static_cast<std::size_t>(r)] = algorithm.register_init(r, n);
  }
  auto automaton = algorithm.make_process(pid, n);
  for (const Step& step : steps) {
    Value read_value = 0;
    if (step.type == StepType::kRead) {
      read_value = registers[static_cast<std::size_t>(step.reg)];
    } else if (step.type == StepType::kWrite) {
      registers[static_cast<std::size_t>(step.reg)] = step.value;
    } else if (step.type == StepType::kRmw) {
      auto& cell = registers[static_cast<std::size_t>(step.reg)];
      read_value = cell;
      cell = apply_rmw(step, cell);
    }
    if (step.pid == pid) {
      if (automaton->done()) {
        throw InvalidStepError("replay_process: step after process finished");
      }
      const Step proposed = automaton->propose();
      if (proposed != step) throw InvalidStepError(mismatch_message(step, proposed));
      automaton->advance(read_value);
    }
  }
  return automaton;
}

}  // namespace melb::sim
