// Core vocabulary of the shared-memory model (paper §3.1–§3.2).
//
// A system is n deterministic process automata plus a collection of
// multi-reader multi-writer registers. Processes take read, write, and
// critical steps; executions are alternating sequences of system states and
// steps, which we represent as step sequences (the paper notes the two
// representations are equivalent for deterministic systems).
#pragma once

#include <cstdint>
#include <string>

namespace melb::sim {

using Pid = int;                 // process id, 0-based ([n] in the paper)
using Reg = int;                 // register index into the algorithm's register file
using Value = std::int64_t;      // register contents (the paper's arbitrary set V)

enum class StepType : std::uint8_t {
  kRead,   // read_i(l)
  kWrite,  // write_i(l, v)
  kRmw,    // atomic read-modify-write on l (the paper's §1 comparison-
           // primitive extension; not allowed in the register-only
           // lower-bound construction)
  kCrit,   // try_i / enter_i / exit_i / rem_i
};

enum class CritKind : std::uint8_t { kTry, kEnter, kExit, kRem };

enum class RmwKind : std::uint8_t {
  kCas,   // if *l == expected then *l := value; observes old value
  kSwap,  // *l := value; observes old value
  kFaa,   // *l := *l + value; observes old value
};

// A process step. For kRead, `reg` is the register read; for kWrite, `reg`
// and `value` are the target and payload; for kRmw, `rmw`/`value`/`expected`
// describe the primitive; for kCrit, `crit` is the kind.
struct Step {
  StepType type = StepType::kCrit;
  Pid pid = -1;
  Reg reg = -1;
  Value value = 0;
  CritKind crit = CritKind::kTry;
  RmwKind rmw = RmwKind::kCas;
  Value expected = 0;  // kCas only

  static Step read(Pid pid, Reg reg) {
    return Step{StepType::kRead, pid, reg, 0, CritKind::kTry, RmwKind::kCas, 0};
  }
  static Step write(Pid pid, Reg reg, Value value) {
    return Step{StepType::kWrite, pid, reg, value, CritKind::kTry, RmwKind::kCas, 0};
  }
  static Step crit_step(Pid pid, CritKind kind) {
    return Step{StepType::kCrit, pid, -1, 0, kind, RmwKind::kCas, 0};
  }
  static Step cas(Pid pid, Reg reg, Value expected, Value desired) {
    return Step{StepType::kRmw, pid, reg, desired, CritKind::kTry, RmwKind::kCas, expected};
  }
  static Step swap(Pid pid, Reg reg, Value value) {
    return Step{StepType::kRmw, pid, reg, value, CritKind::kTry, RmwKind::kSwap, 0};
  }
  static Step faa(Pid pid, Reg reg, Value addend) {
    return Step{StepType::kRmw, pid, reg, addend, CritKind::kTry, RmwKind::kFaa, 0};
  }

  bool is_memory_access() const { return type != StepType::kCrit; }

  bool operator==(const Step& other) const = default;
};

// The register value after applying an RMW step to `old_value`.
Value apply_rmw(const Step& step, Value old_value);

std::string to_string(StepType type);
std::string to_string(CritKind kind);
std::string to_string(const Step& step);

// Which protocol section a process is in, derived from its last critical step
// (paper §3.2). A process with no critical steps is in its remainder section.
enum class Section : std::uint8_t { kRemainder, kTrying, kCritical, kExit };

std::string to_string(Section section);

}  // namespace melb::sim
