// Schedule files: committable, replayable records of scheduler decisions.
//
// A canonical run is fully determined by (algorithm, n, mode, pid sequence):
// the simulator is deterministic, so replaying the recorded pid choices
// reproduces the execution byte-for-byte — reads observe the same values,
// the same SC marks are set, traces and reports are identical. That turns
// any sweep or fuzz finding into a repro fixture (tests/fixtures/*.sched)
// and lets the adversary (src/adv/) emit its worst-case schedule as an
// artifact a later run can re-execute and re-measure.
//
// Text format (versioned, line-oriented, LF-separated):
//
//   melb-schedule v1
//   algorithm <registry name>
//   n <processes>
//   mode <productive|faithful>
//   source <free-form provenance, single line>
//   steps <count>
//   <count pids, whitespace-separated, any line breaking>
//   end melb-schedule
//
// The trailer line guards against truncation: a file that ends early —
// mid-header, mid-pid-list, or missing the trailer — is rejected, as is any
// content after the trailer, any pid outside [0, n), and any malformed
// number (std::from_chars, full-token match). parse_schedule throws
// ScheduleParseError with a line-numbered diagnostic on every malformed
// input and never exhibits UB on arbitrary bytes (fuzzed in
// tests/test_schedule_replay.cpp with the test_decode_fuzz idiom).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/canonical.h"
#include "sim/types.h"

namespace melb::sim {

class ScheduleParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Schedule {
  std::string algorithm;
  int n = 0;
  RunMode mode = RunMode::kProductiveOnly;
  std::string source;  // provenance, e.g. "record:random-replay seed=7"
  std::vector<Pid> pids;
};

// Serialize to the text format above. The source string must be a single
// line (no '\n'); throws std::invalid_argument otherwise.
std::string schedule_to_text(const Schedule& schedule);

// Strict parse of the text format; throws ScheduleParseError (with the
// offending line number) on any deviation.
Schedule parse_schedule(const std::string& text);

}  // namespace melb::sim
