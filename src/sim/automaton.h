// Deterministic process automata and algorithm factories (paper §3.1).
//
// Each process is a deterministic automaton with a transition function δ: the
// next step is a pure function of local state (`propose`), and `advance`
// applies the local transition after the step executes (reads observe the
// register value). Automata are clonable and fingerprintable so the
// simulator can implement the state-change cost model (Def. 3.1) and the
// lower-bound pipeline can evaluate δ(α, j) by replaying prefixes.
#pragma once

#include <memory>
#include <string>

#include "sim/types.h"

namespace melb::util {
class Permutation;
}  // namespace melb::util

namespace melb::sim {

class PidSymmetry;

class Automaton {
 public:
  virtual ~Automaton() = default;

  // The automaton's next step. Precondition: !done().
  // Deterministic: repeated calls without an intervening advance() return the
  // same step (this is the paper's δ(s, i)).
  virtual Step propose() const = 0;

  // Apply the local transition for the step returned by propose().
  // For reads, `read_value` is the value observed; it is ignored otherwise.
  virtual void advance(Value read_value) = 0;

  // True once the automaton has performed its rem step (one full
  // try/critical/exit/remainder cycle; canonical executions need one cycle).
  virtual bool done() const = 0;

  // Hash of the complete local state. Two automata for the same process with
  // equal local state must agree; states differing in any variable the
  // transition function consults must (w.h.p.) differ. The model checker's
  // flyweight engine interns local states by this value alone (check/intern.h)
  // — a collision would alias two local states, so implementations must hash
  // every consulted variable (CloneableAutomaton::hash_into enforces the
  // idiom; tests cross-check against exact compares for small runs).
  virtual std::uint64_t fingerprint() const = 0;

  virtual std::unique_ptr<Automaton> clone() const = 0;

  // The same local state relabeled for process sigma(pid): the automaton
  // this process would be if every pid baked into its local state (its own
  // id, remembered rivals, queue links) were renamed by sigma. Used by the
  // checker's pid-symmetry reduction (sim/symmetry.h). The default returns
  // clone() when sigma is the identity and nullptr otherwise; algorithms
  // that declare a non-trivial PidSymmetry must override it.
  virtual std::unique_ptr<Automaton> relabeled(const util::Permutation& sigma,
                                               int n) const;
};

// Would this automaton change local state if its proposed step — which must
// be a read — observed `value`? This is the paper's SC(α, m, i) predicate
// (Fig. 1) evaluated on a replayed automaton.
bool read_changes_state(const Automaton& automaton, Value value);

// An Algorithm manufactures the n process automata and describes the shared
// register file (count and initial values). Implementations must be
// deterministic: every automaton for (pid, n) behaves identically.
class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual std::string name() const = 0;

  // Number of shared registers the n-process instance uses.
  virtual int num_registers(int n) const = 0;

  // Initial value of register `reg` (default 0).
  virtual Value register_init(Reg reg, int n) const;

  // For the DSM cost model: the process in whose memory partition `reg`
  // lives, or -1 if the register is remote to everyone (default). Local-spin
  // algorithms (Yang–Anderson) override this for their spin registers.
  virtual Pid register_owner(Reg reg, int n) const;

  virtual std::unique_ptr<Automaton> make_process(Pid pid, int n) const = 0;

  // How pid permutations act on this algorithm's shared state, for the
  // checker's symmetry reduction. The default is the identity action (only
  // sigma == id valid) — always sound; symmetric algorithms override this
  // together with Automaton::relabeled on their process automata.
  virtual const PidSymmetry& pid_symmetry() const;
};

}  // namespace melb::sim
