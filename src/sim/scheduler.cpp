#include "sim/scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace melb::sim {

Pid RoundRobinScheduler::pick(const std::vector<Pid>& enabled) {
  // First enabled pid strictly greater than last_, else wrap to the smallest.
  for (Pid pid : enabled) {
    if (pid > last_) {
      last_ = pid;
      return pid;
    }
  }
  last_ = enabled.front();
  return last_;
}

Pid RandomScheduler::pick(const std::vector<Pid>& enabled) {
  return enabled[static_cast<std::size_t>(rng_.below(enabled.size()))];
}

Pid SequentialScheduler::pick(const std::vector<Pid>& enabled) { return enabled.front(); }

Pid ConvoyScheduler::pick(const std::vector<Pid>& enabled) {
  return *std::min_element(enabled.begin(), enabled.end(), [this](Pid a, Pid b) {
    return order_.rank(a) < order_.rank(b);
  });
}

const std::vector<std::string>& scheduler_names() {
  static const std::vector<std::string> names = {"round-robin", "sequential", "random",
                                                 "convoy"};
  return names;
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name, int n,
                                          std::uint64_t seed) {
  if (name == "round-robin") return std::make_unique<RoundRobinScheduler>();
  if (name == "sequential") return std::make_unique<SequentialScheduler>();
  if (name == "random") return std::make_unique<RandomScheduler>(seed);
  if (name == "convoy")
    return std::make_unique<ConvoyScheduler>(util::Permutation::reversed(n));
  throw std::invalid_argument("unknown scheduler: " + name);
}

}  // namespace melb::sim
