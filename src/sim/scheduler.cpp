#include "sim/scheduler.h"

#include <algorithm>

namespace melb::sim {

Pid RoundRobinScheduler::pick(const std::vector<Pid>& enabled) {
  // First enabled pid strictly greater than last_, else wrap to the smallest.
  for (Pid pid : enabled) {
    if (pid > last_) {
      last_ = pid;
      return pid;
    }
  }
  last_ = enabled.front();
  return last_;
}

Pid RandomScheduler::pick(const std::vector<Pid>& enabled) {
  return enabled[static_cast<std::size_t>(rng_.below(enabled.size()))];
}

Pid SequentialScheduler::pick(const std::vector<Pid>& enabled) { return enabled.front(); }

Pid ConvoyScheduler::pick(const std::vector<Pid>& enabled) {
  return *std::min_element(enabled.begin(), enabled.end(), [this](Pid a, Pid b) {
    return order_.rank(a) < order_.rank(b);
  });
}

}  // namespace melb::sim
