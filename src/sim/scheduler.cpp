#include "sim/scheduler.h"

#include <algorithm>
#include <charconv>
#include <limits>
#include <stdexcept>

namespace melb::sim {

namespace {

constexpr std::uint32_t kMaxParam = 1'000'000;  // quantum / weight / rank ceiling
constexpr std::size_t kMaxParamList = 64;       // one value per pid is plenty

// Full-token parse of one scheduler parameter in 1..kMaxParam. Shared error
// shape for every parameterized family, so "rr-quantum:0" and
// "rr-weighted:2+0" fail with the same vocabulary.
std::uint32_t parse_param(const std::string& family, const std::string& token) {
  std::uint64_t value = 0;
  const char* first = token.data();
  const char* last = first + token.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (token.empty() || ec != std::errc() || ptr != last || value < 1 ||
      value > kMaxParam) {
    throw std::invalid_argument("scheduler '" + family + "' parameter '" + token +
                                "' must be an integer in 1.." +
                                std::to_string(kMaxParam));
  }
  return static_cast<std::uint32_t>(value);
}

// Parameter lists use '+' canonically ("rr-weighted:2+1") so scheduler names
// survive comma-separated --scheds lists and unquoted CSV cells; ',' is
// accepted as a courtesy in single-name contexts.
std::vector<std::uint32_t> parse_param_list(const std::string& family,
                                            const std::string& spec) {
  std::vector<std::uint32_t> values;
  std::size_t start = 0;
  while (true) {
    const std::size_t sep = spec.find_first_of("+,", start);
    const std::string token =
        sep == std::string::npos ? spec.substr(start) : spec.substr(start, sep - start);
    values.push_back(parse_param(family, token));
    if (sep == std::string::npos) break;
    start = sep + 1;
  }
  if (values.size() > kMaxParamList) {
    throw std::invalid_argument("scheduler '" + family + "' takes at most " +
                                std::to_string(kMaxParamList) + " parameters");
  }
  return values;
}

std::string join_params(const std::vector<std::uint32_t>& values) {
  std::string out;
  for (std::uint32_t v : values) {
    if (!out.empty()) out += '+';
    out += std::to_string(v);
  }
  return out;
}

}  // namespace

Pid RoundRobinScheduler::pick(const std::vector<Pid>& enabled) {
  // First enabled pid strictly greater than last_, else wrap to the smallest.
  for (Pid pid : enabled) {
    if (pid > last_) {
      last_ = pid;
      return pid;
    }
  }
  last_ = enabled.front();
  return last_;
}

Pid RandomScheduler::pick(const std::vector<Pid>& enabled) {
  return enabled[static_cast<std::size_t>(rng_.below(enabled.size()))];
}

Pid SequentialScheduler::pick(const std::vector<Pid>& enabled) { return enabled.front(); }

Pid ConvoyScheduler::pick(const std::vector<Pid>& enabled) {
  return *std::min_element(enabled.begin(), enabled.end(), [this](Pid a, Pid b) {
    return order_.rank(a) < order_.rank(b);
  });
}

QuantumRoundRobinScheduler::QuantumRoundRobinScheduler(std::uint32_t quantum)
    : quantum_(quantum) {
  if (quantum < 1 || quantum > kMaxParam) {
    throw std::invalid_argument("rr-quantum: quantum must be in 1.." +
                                std::to_string(kMaxParam));
  }
}

std::string QuantumRoundRobinScheduler::name() const {
  return "rr-quantum:" + std::to_string(quantum_);
}

Pid QuantumRoundRobinScheduler::pick(const std::vector<Pid>& enabled) {
  if (used_ < quantum_ &&
      std::binary_search(enabled.begin(), enabled.end(), current_)) {
    ++used_;
    return current_;
  }
  // Quantum spent or holder blocked/done: round-robin advance past current_.
  for (Pid pid : enabled) {
    if (pid > current_) {
      current_ = pid;
      used_ = 1;
      return pid;
    }
  }
  current_ = enabled.front();
  used_ = 1;
  return current_;
}

WeightedRoundRobinScheduler::WeightedRoundRobinScheduler(std::vector<std::uint32_t> weights)
    : weights_(std::move(weights)) {
  if (weights_.empty()) throw std::invalid_argument("rr-weighted: empty weight list");
  for (std::uint32_t w : weights_) {
    if (w < 1 || w > kMaxParam) {
      throw std::invalid_argument("rr-weighted: weights must be in 1.." +
                                  std::to_string(kMaxParam));
    }
  }
}

std::string WeightedRoundRobinScheduler::name() const {
  return "rr-weighted:" + join_params(weights_);
}

Pid WeightedRoundRobinScheduler::pick(const std::vector<Pid>& enabled) {
  const auto budget = [this](Pid pid) {
    return weights_[static_cast<std::size_t>(pid) % weights_.size()];
  };
  if (current_ >= 0 && used_ < budget(current_) &&
      std::binary_search(enabled.begin(), enabled.end(), current_)) {
    ++used_;
    return current_;
  }
  for (Pid pid : enabled) {
    if (pid > current_) {
      current_ = pid;
      used_ = 1;
      return pid;
    }
  }
  current_ = enabled.front();
  used_ = 1;
  return current_;
}

PriorityScheduler::PriorityScheduler() = default;

PriorityScheduler::PriorityScheduler(std::vector<std::uint32_t> ranks)
    : ranks_(std::move(ranks)) {
  if (ranks_.empty()) throw std::invalid_argument("priority: empty rank list");
}

std::string PriorityScheduler::name() const {
  return ranks_.empty() ? "priority" : "priority:" + join_params(ranks_);
}

Pid PriorityScheduler::pick(const std::vector<Pid>& enabled) {
  if (ranks_.empty()) return enabled.back();  // highest pid first (default)
  Pid best = enabled.front();
  std::uint32_t best_rank = std::numeric_limits<std::uint32_t>::max();
  for (Pid pid : enabled) {
    const std::uint32_t rank = ranks_[static_cast<std::size_t>(pid) % ranks_.size()];
    if (rank < best_rank) {  // strict: ties keep the earlier (lower) pid
      best = pid;
      best_rank = rank;
    }
  }
  return best;
}

RecordingScheduler::RecordingScheduler(std::unique_ptr<Scheduler> inner,
                                       std::string display_name)
    : inner_(std::move(inner)), display_name_(std::move(display_name)) {
  if (!inner_) throw std::invalid_argument("RecordingScheduler: null inner scheduler");
}

std::string RecordingScheduler::name() const {
  return display_name_.empty() ? inner_->name() : display_name_;
}

Pid RecordingScheduler::pick(const std::vector<Pid>& enabled) {
  const Pid pid = inner_->pick(enabled);
  picks_.push_back(pid);
  return pid;
}

Pid ReplayScheduler::pick(const std::vector<Pid>& enabled) {
  if (cursor_ >= pids_.size()) {
    throw ScheduleDivergedError(
        "replay: schedule exhausted after " + std::to_string(pids_.size()) +
        " steps but the run wants more (was max_steps set to the schedule length?)");
  }
  const Pid pid = pids_[cursor_];
  if (!std::binary_search(enabled.begin(), enabled.end(), pid)) {
    throw ScheduleDivergedError(
        "replay: step " + std::to_string(cursor_) + " schedules pid " +
        std::to_string(pid) +
        ", which is not eligible here (wrong algorithm, n, or mode for this "
        "schedule?)");
  }
  ++cursor_;
  return pid;
}

const std::vector<std::string>& scheduler_names() {
  static const std::vector<std::string> names = {
      "round-robin", "sequential",      "random",   "convoy",
      "rr-quantum:2", "rr-weighted:2+1", "priority", "random-replay"};
  return names;
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name, int n,
                                          std::uint64_t seed) {
  if (name == "round-robin") return std::make_unique<RoundRobinScheduler>();
  if (name == "sequential") return std::make_unique<SequentialScheduler>();
  if (name == "random") return std::make_unique<RandomScheduler>(seed);
  if (name == "convoy")
    return std::make_unique<ConvoyScheduler>(util::Permutation::reversed(n));
  if (name == "priority") return std::make_unique<PriorityScheduler>();
  if (name == "random-replay") {
    // Same pick sequence as "random" at the same seed, but every choice is
    // recorded so the run can be exported as a schedule file.
    return std::make_unique<RecordingScheduler>(std::make_unique<RandomScheduler>(seed),
                                                "random-replay");
  }
  constexpr const char* kQuantumPrefix = "rr-quantum:";
  if (name.rfind(kQuantumPrefix, 0) == 0) {
    return std::make_unique<QuantumRoundRobinScheduler>(
        parse_param("rr-quantum", name.substr(std::string(kQuantumPrefix).size())));
  }
  constexpr const char* kWeightedPrefix = "rr-weighted:";
  if (name.rfind(kWeightedPrefix, 0) == 0) {
    return std::make_unique<WeightedRoundRobinScheduler>(
        parse_param_list("rr-weighted", name.substr(std::string(kWeightedPrefix).size())));
  }
  constexpr const char* kPriorityPrefix = "priority:";
  if (name.rfind(kPriorityPrefix, 0) == 0) {
    return std::make_unique<PriorityScheduler>(
        parse_param_list("priority", name.substr(std::string(kPriorityPrefix).size())));
  }
  if (name == "rr-quantum" || name == "rr-weighted") {
    throw std::invalid_argument("scheduler '" + name + "' needs parameters, e.g. '" +
                                name + (name == "rr-quantum" ? ":2'" : ":2+1'"));
  }
  if (name == "replay") {
    throw std::invalid_argument(
        "scheduler 'replay' needs a schedule file: use `run ... --schedule-in FILE`");
  }
  throw std::invalid_argument("unknown scheduler: " + name);
}

}  // namespace melb::sim
