// Schedulers: adversaries that pick which enabled process moves next.
//
// Canonical executions (each process completes one critical-section cycle)
// are produced by running an algorithm under a scheduler. Different
// schedulers stress different cost behaviour: round-robin is the fair
// baseline, the random scheduler samples the execution space, sequential
// admits no contention, and the convoy scheduler releases processes in a
// prescribed permutation order to approximate the adversarial arrival
// patterns the lower-bound construction formalizes.
//
// The zoo (docs/scheduler-zoo.md has the full table):
//  * parameterized quantum/weighted round-robin — "rr-quantum:Q" keeps the
//    current process running for up to Q consecutive picks, "rr-weighted:LIST"
//    gives pid p a per-turn budget of LIST[p mod |LIST|] (weights joined with
//    '+' so names survive comma-separated scheduler lists and CSV cells);
//  * "priority[:LIST]" — strict static priorities, starvation-prone by
//    design: the highest-ranked enabled process always wins, so low-ranked
//    processes only move when everyone above them is blocked or done (the
//    live analogue of the checker's lockout counterexamples);
//  * "random-replay" — the random scheduler wrapped in a recorder, so every
//    run can be exported as a schedule file (sim/schedule.h) and replayed;
//  * "replay" — re-executes a recorded pid sequence byte-identically. Not
//    constructible by name alone (it needs a schedule), hence absent from
//    scheduler_names(); the CLI builds it from --schedule-in.
//
// Thread-safety: schedulers are stateful (round-robin cursor, PRNG state) and
// therefore NOT shareable across concurrent runs. Every run — and every cell
// of a parallel sweep — must own its own instance; make_scheduler() is the
// one-stop factory the CLI, benches, and the exp/ campaign runner all use.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/types.h"
#include "util/permutation.h"
#include "util/prng.h"

namespace melb::sim {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  // Choose one of `enabled` (nonempty, ascending pids) to move next.
  virtual Pid pick(const std::vector<Pid>& enabled) = 0;
};

// Cycles through processes in pid order, skipping disabled ones.
class RoundRobinScheduler final : public Scheduler {
 public:
  std::string name() const override { return "round-robin"; }
  Pid pick(const std::vector<Pid>& enabled) override;

 private:
  Pid last_ = -1;
};

// Uniformly random among enabled processes; deterministic given the seed.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "random"; }
  Pid pick(const std::vector<Pid>& enabled) override;

 private:
  util::Xoshiro256StarStar rng_;
};

// Runs the lowest enabled pid until it blocks or finishes: contention-free
// when the algorithm lets a solo process through.
class SequentialScheduler final : public Scheduler {
 public:
  std::string name() const override { return "sequential"; }
  Pid pick(const std::vector<Pid>& enabled) override;
};

// Prefers processes by their position in a permutation: the adversary admits
// pi(0) first, then pi(1), etc. — the arrival order of the paper's
// construction, approximated for live runs.
class ConvoyScheduler final : public Scheduler {
 public:
  explicit ConvoyScheduler(util::Permutation order) : order_(std::move(order)) {}
  std::string name() const override { return "convoy"; }
  Pid pick(const std::vector<Pid>& enabled) override;

 private:
  util::Permutation order_;
};

// Round-robin with a quantum: the process picked last keeps running for up
// to `quantum` consecutive picks while it stays enabled, then the cursor
// advances. rr-quantum:1 reproduces round-robin exactly.
class QuantumRoundRobinScheduler final : public Scheduler {
 public:
  explicit QuantumRoundRobinScheduler(std::uint32_t quantum);
  std::string name() const override;
  Pid pick(const std::vector<Pid>& enabled) override;

 private:
  std::uint32_t quantum_;
  Pid current_ = -1;
  std::uint32_t used_ = 0;
};

// Weighted round-robin: pid p's per-turn budget is weights[p mod |weights|],
// so a 2-element weight list alternates favoritism across the pid range at
// any n. A single weight w reproduces rr-quantum:w.
class WeightedRoundRobinScheduler final : public Scheduler {
 public:
  explicit WeightedRoundRobinScheduler(std::vector<std::uint32_t> weights);
  std::string name() const override;
  Pid pick(const std::vector<Pid>& enabled) override;

 private:
  std::vector<std::uint32_t> weights_;
  Pid current_ = -1;
  std::uint32_t used_ = 0;
};

// Strict static priorities: the enabled pid with the best (lowest) rank
// always moves; ties break toward the lower pid. Starvation-prone by
// construction — a low-priority process runs only when everything above it
// is blocked or done, so it is always served last under contention (the live
// counterpart of the checker's lockout counterexamples; see
// docs/scheduler-zoo.md). The default ranking prefers the highest pid.
// rank(p) = ranks[p mod |ranks|].
class PriorityScheduler final : public Scheduler {
 public:
  PriorityScheduler();  // highest pid first ("priority")
  explicit PriorityScheduler(std::vector<std::uint32_t> ranks);
  std::string name() const override;
  Pid pick(const std::vector<Pid>& enabled) override;

 private:
  std::vector<std::uint32_t> ranks_;  // empty = highest pid first
};

// Decorator that records every pick. random-replay is
// RecordingScheduler(RandomScheduler); the CLI wraps any scheduler in one
// for --schedule-out. `display_name` overrides the inner scheduler's name
// (empty = transparent).
class RecordingScheduler final : public Scheduler {
 public:
  explicit RecordingScheduler(std::unique_ptr<Scheduler> inner,
                              std::string display_name = "");
  std::string name() const override;
  Pid pick(const std::vector<Pid>& enabled) override;
  const std::vector<Pid>& picks() const { return picks_; }

 private:
  std::unique_ptr<Scheduler> inner_;
  std::string display_name_;
  std::vector<Pid> picks_;
};

// Thrown by ReplayScheduler when the scripted pid is not enabled at its step
// (the schedule does not describe a legal run of this algorithm/n/mode).
class ScheduleDivergedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Replays a recorded pid sequence. The run must be capped at exactly
// pids.size() steps (run_canonical's max_steps); picking past the end or a
// scripted pid that is not currently enabled throws ScheduleDivergedError
// with the step index.
class ReplayScheduler final : public Scheduler {
 public:
  explicit ReplayScheduler(std::vector<Pid> pids) : pids_(std::move(pids)) {}
  std::string name() const override { return "replay"; }
  Pid pick(const std::vector<Pid>& enabled) override;
  std::size_t cursor() const { return cursor_; }

 private:
  std::vector<Pid> pids_;
  std::size_t cursor_ = 0;
};

// The names make_scheduler accepts, in canonical (reporting) order. The
// parameterized families appear once each with canonical parameters
// ("rr-quantum:2", "rr-weighted:2+1", "priority") — this is the enrollment
// list the conformance matrix and the CLI's default sweep iterate, so a new
// family lands in both by being added here.
const std::vector<std::string>& scheduler_names();

// Fresh scheduler instance by name. `seed` feeds the random and
// random-replay schedulers; the convoy scheduler releases processes in
// reverse pid order (the adversarial arrival pattern used throughout the
// harness). Parameterized forms: "rr-quantum:Q" (Q in 1..1000000),
// "rr-weighted:W1+W2+..." and "priority:R1+R2+..." (1..64 values, each in
// 1..1000000; ',' is accepted in place of '+' in contexts that do not split
// on commas). Throws std::invalid_argument for unknown names or bad
// parameters — callers must not silently fall back. "replay" is rejected
// here: it cannot be built without a schedule (see sim/schedule.h).
std::unique_ptr<Scheduler> make_scheduler(const std::string& name, int n, std::uint64_t seed);

}  // namespace melb::sim
