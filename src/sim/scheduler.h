// Schedulers: adversaries that pick which enabled process moves next.
//
// Canonical executions (each process completes one critical-section cycle)
// are produced by running an algorithm under a scheduler. Different
// schedulers stress different cost behaviour: round-robin is the fair
// baseline, the random scheduler samples the execution space, sequential
// admits no contention, and the convoy scheduler releases processes in a
// prescribed permutation order to approximate the adversarial arrival
// patterns the lower-bound construction formalizes.
//
// Thread-safety: schedulers are stateful (round-robin cursor, PRNG state) and
// therefore NOT shareable across concurrent runs. Every run — and every cell
// of a parallel sweep — must own its own instance; make_scheduler() is the
// one-stop factory the CLI, benches, and the exp/ campaign runner all use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/types.h"
#include "util/permutation.h"
#include "util/prng.h"

namespace melb::sim {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  // Choose one of `enabled` (nonempty, ascending pids) to move next.
  virtual Pid pick(const std::vector<Pid>& enabled) = 0;
};

// Cycles through processes in pid order, skipping disabled ones.
class RoundRobinScheduler final : public Scheduler {
 public:
  std::string name() const override { return "round-robin"; }
  Pid pick(const std::vector<Pid>& enabled) override;

 private:
  Pid last_ = -1;
};

// Uniformly random among enabled processes; deterministic given the seed.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "random"; }
  Pid pick(const std::vector<Pid>& enabled) override;

 private:
  util::Xoshiro256StarStar rng_;
};

// Runs the lowest enabled pid until it blocks or finishes: contention-free
// when the algorithm lets a solo process through.
class SequentialScheduler final : public Scheduler {
 public:
  std::string name() const override { return "sequential"; }
  Pid pick(const std::vector<Pid>& enabled) override;
};

// Prefers processes by their position in a permutation: the adversary admits
// pi(0) first, then pi(1), etc. — the arrival order of the paper's
// construction, approximated for live runs.
class ConvoyScheduler final : public Scheduler {
 public:
  explicit ConvoyScheduler(util::Permutation order) : order_(std::move(order)) {}
  std::string name() const override { return "convoy"; }
  Pid pick(const std::vector<Pid>& enabled) override;

 private:
  util::Permutation order_;
};

// The names make_scheduler accepts, in canonical (reporting) order.
const std::vector<std::string>& scheduler_names();

// Fresh scheduler instance by name. `seed` feeds the random scheduler; the
// convoy scheduler releases processes in reverse pid order (the adversarial
// arrival pattern used throughout the harness). Throws std::invalid_argument
// for unknown names — callers must not silently fall back.
std::unique_ptr<Scheduler> make_scheduler(const std::string& name, int n, std::uint64_t seed);

}  // namespace melb::sim
