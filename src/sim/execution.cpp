#include "sim/execution.h"

#include <sstream>

namespace melb::sim {

std::uint64_t Execution::sc_cost() const {
  std::uint64_t cost = 0;
  for (const auto& rs : steps_) {
    if (rs.step.is_memory_access() && rs.state_changed) ++cost;
  }
  return cost;
}

std::uint64_t Execution::total_accesses() const {
  std::uint64_t count = 0;
  for (const auto& rs : steps_) {
    if (rs.step.is_memory_access()) ++count;
  }
  return count;
}

std::vector<RecordedStep> Execution::projection(Pid pid) const {
  std::vector<RecordedStep> result;
  for (const auto& rs : steps_) {
    if (rs.step.pid == pid) result.push_back(rs);
  }
  return result;
}

std::vector<Section> Execution::sections(int n) const {
  std::vector<Section> sections(static_cast<std::size_t>(n), Section::kRemainder);
  for (const auto& rs : steps_) {
    if (rs.step.type != StepType::kCrit) continue;
    auto& section = sections[static_cast<std::size_t>(rs.step.pid)];
    switch (rs.step.crit) {
      case CritKind::kTry:
        section = Section::kTrying;
        break;
      case CritKind::kEnter:
        section = Section::kCritical;
        break;
      case CritKind::kExit:
        section = Section::kExit;
        break;
      case CritKind::kRem:
        section = Section::kRemainder;
        break;
    }
  }
  return sections;
}

std::string Execution::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const auto& rs = steps_[i];
    out << i << ": " << sim::to_string(rs.step);
    if (rs.step.type == StepType::kRead) out << " -> " << rs.read_value;
    if (rs.step.is_memory_access()) out << (rs.state_changed ? "  [sc]" : "  [free]");
    out << '\n';
  }
  return out.str();
}

std::vector<Pid> enter_order(const Execution& exec) {
  std::vector<Pid> order;
  for (const auto& rs : exec.steps()) {
    if (rs.step.type == StepType::kCrit && rs.step.crit == CritKind::kEnter) {
      order.push_back(rs.step.pid);
    }
  }
  return order;
}

std::string check_well_formed(const Execution& exec, int n) {
  // Expected next critical step per process, cycling try -> enter -> exit -> rem.
  std::vector<CritKind> expected(static_cast<std::size_t>(n), CritKind::kTry);
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const Step& step = exec.at(i).step;
    if (step.type != StepType::kCrit) continue;
    if (step.pid < 0 || step.pid >= n) {
      return "step " + std::to_string(i) + ": pid out of range";
    }
    auto& want = expected[static_cast<std::size_t>(step.pid)];
    if (step.crit != want) {
      return "step " + std::to_string(i) + " (" + to_string(step) +
             "): expected critical step " + to_string(want);
    }
    switch (want) {
      case CritKind::kTry:
        want = CritKind::kEnter;
        break;
      case CritKind::kEnter:
        want = CritKind::kExit;
        break;
      case CritKind::kExit:
        want = CritKind::kRem;
        break;
      case CritKind::kRem:
        want = CritKind::kTry;
        break;
    }
  }
  return {};
}

std::string check_mutual_exclusion(const Execution& exec, int n) {
  std::vector<bool> in_cs(static_cast<std::size_t>(n), false);
  int occupants = 0;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const Step& step = exec.at(i).step;
    if (step.type != StepType::kCrit) continue;
    auto idx = static_cast<std::size_t>(step.pid);
    if (step.crit == CritKind::kEnter) {
      if (!in_cs[idx]) {
        in_cs[idx] = true;
        ++occupants;
        if (occupants > 1) {
          return "step " + std::to_string(i) + " (" + to_string(step) +
                 "): two processes in the critical section";
        }
      }
    } else if (step.crit == CritKind::kExit) {
      if (in_cs[idx]) {
        in_cs[idx] = false;
        --occupants;
      }
    }
  }
  return {};
}

}  // namespace melb::sim
