#include "sim/automaton.h"

namespace melb::sim {

bool read_changes_state(const Automaton& automaton, Value value) {
  const auto before = automaton.fingerprint();
  auto copy = automaton.clone();
  copy->advance(value);
  return copy->fingerprint() != before;
}

Value Algorithm::register_init(Reg, int) const { return 0; }

Pid Algorithm::register_owner(Reg, int) const { return -1; }

}  // namespace melb::sim
