#include "sim/automaton.h"

#include "sim/symmetry.h"
#include "util/permutation.h"

namespace melb::sim {

bool read_changes_state(const Automaton& automaton, Value value) {
  const auto before = automaton.fingerprint();
  auto copy = automaton.clone();
  copy->advance(value);
  return copy->fingerprint() != before;
}

std::unique_ptr<Automaton> Automaton::relabeled(const util::Permutation& sigma,
                                                int n) const {
  if (sigma == util::Permutation(n)) return clone();
  return nullptr;
}

Value Algorithm::register_init(Reg, int) const { return 0; }

Pid Algorithm::register_owner(Reg, int) const { return -1; }

const PidSymmetry& Algorithm::pid_symmetry() const {
  return identity_pid_symmetry();
}

}  // namespace melb::sim
