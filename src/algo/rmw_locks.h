// Mutex algorithms over read-modify-write primitives (CAS / swap / FAA).
//
// These exercise the paper's §1 remark that the Ω(n log n) bound is specific
// to registers: with comparison primitives, canonical executions cost Θ(n)
// in the SC model (O(1) state changes per process). They are rejected by the
// register-only lower-bound construction (lb::construct throws) — exactly
// the separation the bound draws. Experiment E9 measures it.
//
// TtasLockAlgorithm — read-spin (free) + CAS acquire. Unfair; Θ(1)/process.
// TicketLockAlgorithm — FAA ticket + single-register spin on now-serving.
//   FIFO-fair; Θ(1)/process.
// McsLockAlgorithm — queue lock: swap on tail, CAS on release, per-process
//   spin cells. FIFO-fair, local spins; Θ(1)/process.
#pragma once

#include "sim/automaton.h"

namespace melb::algo {

class TtasLockAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "ttas-rmw"; }
  int num_registers(int) const override { return 1; }
  std::unique_ptr<sim::Automaton> make_process(sim::Pid pid, int n) const override;
  // Full S_n: the lock word is a shared 0/1 flag.
  const sim::PidSymmetry& pid_symmetry() const override;
};

class TicketLockAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "ticket-rmw"; }
  int num_registers(int) const override { return 2; }  // next, serving
  std::unique_ptr<sim::Automaton> make_process(sim::Pid pid, int n) const override;
  // Full S_n: both registers are pid-independent counters.
  const sim::PidSymmetry& pid_symmetry() const override;
};

class McsLockAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "mcs-rmw"; }
  // tail at 0; next[p] at 1+p (0 = none, else pid+1); locked[p] at 1+n+p.
  int num_registers(int n) const override { return 1 + 2 * n; }
  // The spin cell locked[p] is local to p (local-spin queue lock).
  sim::Pid register_owner(sim::Reg reg, int n) const override {
    return reg >= 1 + n ? reg - (1 + n) : -1;
  }
  std::unique_ptr<sim::Automaton> make_process(sim::Pid pid, int n) const override;
  // Full S_n: tail/next cells rename their pid+1 payloads, per-process
  // cells relocate with their owner.
  const sim::PidSymmetry& pid_symmetry() const override;
};

}  // namespace melb::algo
