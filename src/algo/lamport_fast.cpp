#include "algo/lamport_fast.h"

#include "algo/automaton_base.h"

namespace melb::algo {

namespace {

using sim::CritKind;
using sim::Pid;
using sim::Reg;
using sim::Step;
using sim::Value;

class LamportFastProcess final : public CloneableAutomaton<LamportFastProcess> {
 public:
  LamportFastProcess(Pid pid, int n) : pid_(pid), n_(n) {}

  Step propose() const override {
    switch (pc_) {
      case Pc::kTry:
        return Step::crit_step(pid_, CritKind::kTry);
      case Pc::kSetB:
        return Step::write(pid_, b_reg(pid_), 1);
      case Pc::kSetX:
        return Step::write(pid_, x_reg(), me());
      case Pc::kCheckY:
      case Pc::kAwaitYFree:
      case Pc::kRecheckY:
      case Pc::kAwaitYFree2:
        return Step::read(pid_, y_reg());
      case Pc::kClearB1:
      case Pc::kClearB2:
        return Step::write(pid_, b_reg(pid_), 0);
      case Pc::kSetY:
        return Step::write(pid_, y_reg(), me());
      case Pc::kCheckX:
        return Step::read(pid_, x_reg());
      case Pc::kScanB:
        return Step::read(pid_, b_reg(j_));
      case Pc::kEnter:
        return Step::crit_step(pid_, CritKind::kEnter);
      case Pc::kExit:
        return Step::crit_step(pid_, CritKind::kExit);
      case Pc::kClearY:
        return Step::write(pid_, y_reg(), 0);
      case Pc::kClearBExit:
        return Step::write(pid_, b_reg(pid_), 0);
      case Pc::kRem:
      case Pc::kDone:
        break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value read_value) override {
    switch (pc_) {
      case Pc::kTry:
        pc_ = Pc::kSetB;
        break;
      case Pc::kSetB:
        pc_ = Pc::kSetX;
        break;
      case Pc::kSetX:
        pc_ = Pc::kCheckY;
        break;
      case Pc::kCheckY:
        pc_ = (read_value == 0) ? Pc::kSetY : Pc::kClearB1;
        break;
      case Pc::kClearB1:
        pc_ = Pc::kAwaitYFree;
        break;
      case Pc::kAwaitYFree:
        // Single-register spin: free until y returns to ⊥.
        if (read_value == 0) pc_ = Pc::kSetB;  // restart
        break;
      case Pc::kSetY:
        pc_ = Pc::kCheckX;
        break;
      case Pc::kCheckX:
        if (read_value == me()) {
          pc_ = Pc::kEnter;  // fast path: no contention observed
        } else {
          pc_ = Pc::kClearB2;
        }
        break;
      case Pc::kClearB2:
        j_ = 0;
        pc_ = Pc::kScanB;
        break;
      case Pc::kScanB:
        // Await !b[j], one register at a time (free spins), then advance.
        if (read_value == 0) {
          ++j_;
          if (j_ == n_) pc_ = Pc::kRecheckY;
        }
        break;
      case Pc::kRecheckY:
        if (read_value == me()) {
          pc_ = Pc::kEnter;  // slow-path winner
        } else {
          pc_ = Pc::kAwaitYFree2;
        }
        break;
      case Pc::kAwaitYFree2:
        if (read_value == 0) pc_ = Pc::kSetB;  // restart
        break;
      case Pc::kEnter:
        pc_ = Pc::kExit;
        break;
      case Pc::kExit:
        pc_ = Pc::kClearY;
        break;
      case Pc::kClearY:
        pc_ = Pc::kClearBExit;
        break;
      case Pc::kClearBExit:
        pc_ = Pc::kRem;
        break;
      case Pc::kRem:
        pc_ = Pc::kDone;
        break;
      case Pc::kDone:
        break;
    }
  }

  bool done() const override { return pc_ == Pc::kDone; }

  void hash_into(util::Hasher& hasher) const {
    hasher.add_all({static_cast<std::int64_t>(pc_), pid_, j_});
  }

 private:
  enum class Pc : std::uint8_t {
    kTry,
    kSetB,
    kSetX,
    kCheckY,
    kClearB1,
    kAwaitYFree,
    kSetY,
    kCheckX,
    kClearB2,
    kScanB,
    kRecheckY,
    kAwaitYFree2,
    kEnter,
    kExit,
    kClearY,
    kClearBExit,
    kRem,
    kDone,
  };

  Value me() const { return pid_ + 1; }
  Reg x_reg() const { return 0; }
  Reg y_reg() const { return 1; }
  Reg b_reg(int j) const { return 2 + j; }

  Pid pid_;
  int n_;
  Pc pc_ = Pc::kTry;
  int j_ = 0;
};

}  // namespace

std::unique_ptr<sim::Automaton> LamportFastAlgorithm::make_process(sim::Pid pid, int n) const {
  return std::make_unique<LamportFastProcess>(pid, n);
}

}  // namespace melb::algo
