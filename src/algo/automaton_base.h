// CRTP helper for algorithm automata.
//
// Every algorithm automaton is a copyable value type (program counter plus
// local variables); CloneableAutomaton supplies clone() from the copy
// constructor. Derived classes implement propose()/advance()/done() and a
// hash_into() describing *all* local state the transition function consults —
// the SC cost model (Def. 3.1) detects state changes by fingerprint, so a
// missing field would silently under-count cost (tests guard this by
// cross-checking against exact state compares for small runs).
#pragma once

#include <memory>

#include "sim/automaton.h"
#include "util/hash.h"

namespace melb::algo {

template <class Derived>
class CloneableAutomaton : public sim::Automaton {
 public:
  std::uint64_t fingerprint() const final {
    util::Hasher hasher;
    static_cast<const Derived&>(*this).hash_into(hasher);
    return hasher.digest();
  }

  std::unique_ptr<sim::Automaton> clone() const final {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

}  // namespace melb::algo
