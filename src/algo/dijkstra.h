// Dijkstra's mutual exclusion algorithm (1965), the original n-process
// register solution. Deadlock-free (some trying process always gets in) but
// admits starvation of individuals; livelock freedom in the paper's sense
// holds. Its trying protocol repeatedly scans `turn` and other processes'
// flags, so waiting changes local state on almost every read — canonical SC
// cost is Θ(n²) and grows quickly with contention.
//
// Registers: flag[j] in {0,1,2} at index j; turn at index n (holds a pid).
#pragma once

#include "sim/automaton.h"

namespace melb::algo {

class DijkstraAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "dijkstra"; }
  int num_registers(int n) const override { return n + 1; }
  std::unique_ptr<sim::Automaton> make_process(sim::Pid pid, int n) const override;
};

}  // namespace melb::algo
