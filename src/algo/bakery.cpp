#include "algo/bakery.h"

#include <algorithm>

#include "algo/automaton_base.h"

namespace melb::algo {

namespace {

using sim::CritKind;
using sim::Pid;
using sim::Reg;
using sim::Step;
using sim::Value;

class BakeryProcess final : public CloneableAutomaton<BakeryProcess> {
 public:
  BakeryProcess(Pid pid, int n) : pid_(pid), n_(n) {}

  Step propose() const override {
    switch (pc_) {
      case Pc::kTry:
        return Step::crit_step(pid_, CritKind::kTry);
      case Pc::kSetChoosing:
        return Step::write(pid_, choosing_reg(pid_), 1);
      case Pc::kScanNumbers:
        return Step::read(pid_, number_reg(j_));
      case Pc::kWriteNumber:
        return Step::write(pid_, number_reg(pid_), max_seen_ + 1);
      case Pc::kClearChoosing:
        return Step::write(pid_, choosing_reg(pid_), 0);
      case Pc::kWaitChoosing:
        return Step::read(pid_, choosing_reg(j_));
      case Pc::kWaitNumber:
        return Step::read(pid_, number_reg(j_));
      case Pc::kEnter:
        return Step::crit_step(pid_, CritKind::kEnter);
      case Pc::kExit:
        return Step::crit_step(pid_, CritKind::kExit);
      case Pc::kClearNumber:
        return Step::write(pid_, number_reg(pid_), 0);
      case Pc::kRem:
        return Step::crit_step(pid_, CritKind::kRem);
      case Pc::kDone:
        break;
    }
    return Step::crit_step(pid_, CritKind::kRem);  // unreachable
  }

  void advance(Value read_value) override {
    switch (pc_) {
      case Pc::kTry:
        pc_ = Pc::kSetChoosing;
        break;
      case Pc::kSetChoosing:
        pc_ = Pc::kScanNumbers;
        j_ = 0;
        max_seen_ = 0;
        break;
      case Pc::kScanNumbers:
        max_seen_ = std::max(max_seen_, read_value);
        ++j_;
        if (j_ == n_) {
          pc_ = Pc::kWriteNumber;
        }
        break;
      case Pc::kWriteNumber:
        my_number_ = max_seen_ + 1;
        pc_ = Pc::kClearChoosing;
        break;
      case Pc::kClearChoosing:
        j_ = 0;
        skip_self();
        pc_ = (j_ == n_) ? Pc::kEnter : Pc::kWaitChoosing;
        break;
      case Pc::kWaitChoosing:
        // Spin while choosing[j] != 0; same state on re-read (free busywait).
        if (read_value == 0) pc_ = Pc::kWaitNumber;
        break;
      case Pc::kWaitNumber:
        // Proceed past j when number[j]==0 or (my_number_, pid_) has priority.
        if (read_value == 0 || std::pair(my_number_, static_cast<Value>(pid_)) <
                                   std::pair(read_value, static_cast<Value>(j_))) {
          ++j_;
          skip_self();
          pc_ = (j_ == n_) ? Pc::kEnter : Pc::kWaitChoosing;
        }
        break;
      case Pc::kEnter:
        pc_ = Pc::kExit;
        break;
      case Pc::kExit:
        pc_ = Pc::kClearNumber;
        break;
      case Pc::kClearNumber:
        pc_ = Pc::kRem;
        break;
      case Pc::kRem:
        pc_ = Pc::kDone;
        break;
      case Pc::kDone:
        break;
    }
  }

  bool done() const override { return pc_ == Pc::kDone; }

  void hash_into(util::Hasher& hasher) const {
    hasher.add_all({static_cast<std::int64_t>(pc_), pid_, j_, max_seen_, my_number_});
  }

 private:
  enum class Pc : std::uint8_t {
    kTry,
    kSetChoosing,
    kScanNumbers,
    kWriteNumber,
    kClearChoosing,
    kWaitChoosing,
    kWaitNumber,
    kEnter,
    kExit,
    kClearNumber,
    kRem,
    kDone,
  };

  Reg choosing_reg(int j) const { return j; }
  Reg number_reg(int j) const { return n_ + j; }

  void skip_self() {
    if (j_ == pid_) ++j_;
  }

  Pid pid_;
  int n_;
  Pc pc_ = Pc::kTry;
  int j_ = 0;
  Value max_seen_ = 0;
  Value my_number_ = 0;
};

}  // namespace

std::unique_ptr<sim::Automaton> BakeryAlgorithm::make_process(sim::Pid pid, int n) const {
  return std::make_unique<BakeryProcess>(pid, n);
}

}  // namespace melb::algo
