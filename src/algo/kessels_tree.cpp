#include "algo/kessels_tree.h"

#include "algo/automaton_base.h"
#include "algo/tree.h"

namespace melb::algo {

namespace {

using sim::CritKind;
using sim::Pid;
using sim::Reg;
using sim::Step;
using sim::Value;

// Per node, side s (asymmetric):
//   entry: B[s] := 1
//          t := read T[1-s]
//          T[s] := (s == 0) ? t : 1 - t
//     L:   if B[1-s] = 0: acquired
//          v := read T[1-s]
//          side 0 waits while v == T[0]; side 1 waits while v != T[1]
//          (condition true -> goto L)
//   exit:  B[s] := 0
class KesselsProcess final : public CloneableAutomaton<KesselsProcess> {
 public:
  KesselsProcess(Pid pid, int n) : pid_(pid), path_(tree_path(pid, n)) {}

  Step propose() const override {
    switch (pc_) {
      case Pc::kTry:
        return Step::crit_step(pid_, CritKind::kTry);
      case Pc::kSetB:
        return Step::write(pid_, b_reg(hop(), side()), 1);
      case Pc::kReadRivalT:
        return Step::read(pid_, t_reg(hop(), 1 - side()));
      case Pc::kWriteMyT:
        return Step::write(pid_, t_reg(hop(), side()), my_t_);
      case Pc::kReadRivalB:
        return Step::read(pid_, b_reg(hop(), 1 - side()));
      case Pc::kPollRivalT:
        return Step::read(pid_, t_reg(hop(), 1 - side()));
      case Pc::kEnter:
        return Step::crit_step(pid_, CritKind::kEnter);
      case Pc::kExit:
        return Step::crit_step(pid_, CritKind::kExit);
      case Pc::kExitB:
        return Step::write(pid_, b_reg(hop(), side()), 0);
      case Pc::kRem:
      case Pc::kDone:
        break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value read_value) override {
    switch (pc_) {
      case Pc::kTry:
        hop_ = 0;
        pc_ = Pc::kSetB;
        break;
      case Pc::kSetB:
        pc_ = Pc::kReadRivalT;
        break;
      case Pc::kReadRivalT:
        my_t_ = side() == 0 ? read_value : 1 - read_value;
        pc_ = Pc::kWriteMyT;
        break;
      case Pc::kWriteMyT:
        pc_ = Pc::kReadRivalB;
        break;
      case Pc::kReadRivalB:
        if (read_value == 0) {
          node_acquired();
        } else {
          pc_ = Pc::kPollRivalT;
        }
        break;
      case Pc::kPollRivalT: {
        // side 0 waits while rival's bit equals mine; side 1 while it differs.
        const bool waiting = side() == 0 ? read_value == my_t_ : read_value != my_t_;
        if (waiting) {
          pc_ = Pc::kReadRivalB;  // charged alternation, like Peterson
        } else {
          node_acquired();
        }
        break;
      }
      case Pc::kEnter:
        pc_ = Pc::kExit;
        break;
      case Pc::kExit:
        hop_ = static_cast<int>(path_.size()) - 1;
        pc_ = Pc::kExitB;
        break;
      case Pc::kExitB:
        --hop_;
        pc_ = (hop_ < 0) ? Pc::kRem : Pc::kExitB;
        break;
      case Pc::kRem:
        pc_ = Pc::kDone;
        break;
      case Pc::kDone:
        break;
    }
  }

  bool done() const override { return pc_ == Pc::kDone; }

  void hash_into(util::Hasher& hasher) const {
    hasher.add_all({static_cast<std::int64_t>(pc_), pid_, hop_, my_t_});
  }

 private:
  enum class Pc : std::uint8_t {
    kTry,
    kSetB,
    kReadRivalT,
    kWriteMyT,
    kReadRivalB,
    kPollRivalT,
    kEnter,
    kExit,
    kExitB,
    kRem,
    kDone,
  };

  int hop() const { return path_[static_cast<std::size_t>(hop_)].node; }
  int side() const { return path_[static_cast<std::size_t>(hop_)].side; }

  Reg b_reg(int node, int s) const { return 4 * (node - 1) + s; }
  Reg t_reg(int node, int s) const { return 4 * (node - 1) + 2 + s; }

  void node_acquired() {
    ++hop_;
    pc_ = (hop_ == static_cast<int>(path_.size())) ? Pc::kEnter : Pc::kSetB;
  }

  Pid pid_;
  std::vector<TreeHop> path_;
  Pc pc_ = Pc::kTry;
  int hop_ = 0;
  Value my_t_ = 0;
};

}  // namespace

int KesselsTreeAlgorithm::num_registers(int n) const { return 4 * tree_internal_nodes(n); }

std::unique_ptr<sim::Automaton> KesselsTreeAlgorithm::make_process(sim::Pid pid, int n) const {
  return std::make_unique<KesselsProcess>(pid, n);
}

}  // namespace melb::algo
