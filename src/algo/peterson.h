// Peterson's algorithm as a tournament tree (for n = 2 this is exactly
// Peterson's classic 2-process algorithm).
//
// Contrast case for the state-change cost model: Peterson's wait condition
// `flag[other] = 1 and turn = me` spans *two* registers, so a waiting process
// must alternate reads and changes local state on every read — the SC model
// charges every spin iteration. Yang–Anderson's single-register spins are
// what the model rewards; this algorithm is the control group (experiment E6).
//
// Register layout per internal node v: flag[v][side] at 3(v-1)+side,
// turn[v] at 3(v-1)+2 (turn = s means side s waits).
#pragma once

#include "sim/automaton.h"

namespace melb::algo {

class PetersonTreeAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "peterson-tree"; }
  int num_registers(int n) const override;
  std::unique_ptr<sim::Automaton> make_process(sim::Pid pid, int n) const override;
};

}  // namespace melb::algo
