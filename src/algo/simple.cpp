#include "algo/simple.h"

#include "algo/automaton_base.h"
#include "sim/symmetry.h"
#include "util/permutation.h"

namespace melb::algo {

namespace {

using sim::CritKind;
using sim::Pid;
using sim::Step;
using sim::Value;

class StaticRoundRobinProcess final : public CloneableAutomaton<StaticRoundRobinProcess> {
 public:
  StaticRoundRobinProcess(Pid pid, int n) : pid_(pid), n_(n) {}

  Step propose() const override {
    switch (pc_) {
      case Pc::kTry:
        return Step::crit_step(pid_, CritKind::kTry);
      case Pc::kAwaitTurn:
        return Step::read(pid_, 0);
      case Pc::kEnter:
        return Step::crit_step(pid_, CritKind::kEnter);
      case Pc::kExit:
        return Step::crit_step(pid_, CritKind::kExit);
      case Pc::kPassTurn:
        return Step::write(pid_, 0, pid_ + 1);
      case Pc::kRem:
      case Pc::kDone:
        break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value read_value) override {
    switch (pc_) {
      case Pc::kTry:
        pc_ = Pc::kAwaitTurn;
        break;
      case Pc::kAwaitTurn:
        if (read_value == pid_) pc_ = Pc::kEnter;  // otherwise free spin
        break;
      case Pc::kEnter:
        pc_ = Pc::kExit;
        break;
      case Pc::kExit:
        pc_ = Pc::kPassTurn;
        break;
      case Pc::kPassTurn:
        pc_ = Pc::kRem;
        break;
      case Pc::kRem:
        pc_ = Pc::kDone;
        break;
      case Pc::kDone:
        break;
    }
  }

  bool done() const override { return pc_ == Pc::kDone; }

  void hash_into(util::Hasher& hasher) const {
    hasher.add_all({static_cast<std::int64_t>(pc_), pid_, n_});
  }

 private:
  enum class Pc : std::uint8_t { kTry, kAwaitTurn, kEnter, kExit, kPassTurn, kRem, kDone };

  Pid pid_;
  int n_;
  Pc pc_ = Pc::kTry;
};

class NaiveBrokenProcess final : public CloneableAutomaton<NaiveBrokenProcess> {
 public:
  explicit NaiveBrokenProcess(Pid pid) : pid_(pid) {}

  Step propose() const override {
    switch (pc_) {
      case Pc::kTry:
        return Step::crit_step(pid_, CritKind::kTry);
      case Pc::kCheck:
        return Step::read(pid_, 0);
      case Pc::kGrab:
        return Step::write(pid_, 0, 1);
      case Pc::kEnter:
        return Step::crit_step(pid_, CritKind::kEnter);
      case Pc::kExit:
        return Step::crit_step(pid_, CritKind::kExit);
      case Pc::kRelease:
        return Step::write(pid_, 0, 0);
      case Pc::kRem:
      case Pc::kDone:
        break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value read_value) override {
    switch (pc_) {
      case Pc::kTry:
        pc_ = Pc::kCheck;
        break;
      case Pc::kCheck:
        if (read_value == 0) pc_ = Pc::kGrab;  // time-of-check/time-of-use race
        break;
      case Pc::kGrab:
        pc_ = Pc::kEnter;
        break;
      case Pc::kEnter:
        pc_ = Pc::kExit;
        break;
      case Pc::kExit:
        pc_ = Pc::kRelease;
        break;
      case Pc::kRelease:
        pc_ = Pc::kRem;
        break;
      case Pc::kRem:
        pc_ = Pc::kDone;
        break;
      case Pc::kDone:
        break;
    }
  }

  bool done() const override { return pc_ == Pc::kDone; }

  void hash_into(util::Hasher& hasher) const {
    hasher.add_all({static_cast<std::int64_t>(pc_), pid_});
  }

  std::unique_ptr<sim::Automaton> relabeled(const util::Permutation& sigma,
                                            int) const override {
    auto copy = std::make_unique<NaiveBrokenProcess>(sigma.at(pid_));
    copy->pc_ = pc_;
    return copy;
  }

 private:
  enum class Pc : std::uint8_t { kTry, kCheck, kGrab, kEnter, kExit, kRelease, kRem, kDone };

  Pid pid_;
  Pc pc_ = Pc::kTry;
};

}  // namespace

std::unique_ptr<sim::Automaton> StaticRoundRobinAlgorithm::make_process(sim::Pid pid,
                                                                        int n) const {
  return std::make_unique<StaticRoundRobinProcess>(pid, n);
}

std::unique_ptr<sim::Automaton> NaiveBrokenLock::make_process(sim::Pid pid, int) const {
  return std::make_unique<NaiveBrokenProcess>(pid);
}

const sim::PidSymmetry& NaiveBrokenLock::pid_symmetry() const {
  return sim::shared_register_symmetry();
}

}  // namespace melb::algo
