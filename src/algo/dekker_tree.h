// Dekker's algorithm (the first 2-process mutex, 1960s) as a tournament tree.
//
// Interesting SC-cost profile: Dekker's back-off phase ("if it's your turn I
// lower my flag and wait for the turn") spins on the *single* `turn`
// register, which the SC model does not charge — unlike Peterson's
// two-register wait. The initial flag/turn polling alternation is still
// charged, so contended cost sits between Yang–Anderson and Peterson.
//
// Register layout per internal node v: flag[v][side] at 3(v-1)+side,
// turn[v] at 3(v-1)+2 (holds the side whose turn it is to back off last;
// initially side 0).
#pragma once

#include "sim/automaton.h"

namespace melb::algo {

class DekkerTreeAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "dekker-tree"; }
  int num_registers(int n) const override;
  std::unique_ptr<sim::Automaton> make_process(sim::Pid pid, int n) const override;
};

}  // namespace melb::algo
