// Yang & Anderson's arbitration-tree mutual exclusion algorithm [13].
//
// This is the algorithm that makes the paper's Ω(n log n) bound tight: each
// process climbs a binary arbitration tree, winning a 2-process lock at every
// node, and all busy-waits spin on a single per-process register P[p] —
// unit-cost in the state change model. A canonical execution costs
// O(n log n): O(1) state changes per node per traversal, O(log n) nodes per
// process.
//
// Register layout (I = internal nodes, heap-indexed 1..I):
//   C[node][side] at 3(node-1)+side   — side's announce slot (0 = empty,
//                                        pid+1 otherwise)
//   T[node]       at 3(node-1)+2      — tie-breaker (last writer waits)
//   P[lvl][p]     at 3I + lvl·n + p   — process p's spin flag at tree level
//                                        lvl: 0 = armed, 1 = rival noticed p,
//                                        2 = rival exited
//
// The spin flag is per (process, level), not per process: an exit signal can
// be arbitrarily delayed by the scheduler, and with a single P[p] a stale
// signal from a lower node would land after p re-armed at a higher node and
// let p skip both wait stages there (a mutual-exclusion violation our model
// checker found at n = 3). Per-level slots make a stale signal land only on
// a level p has already permanently left within the canonical pass.
//
// Two-process node protocol (entry from side s, me = pid+1):
//   C[v][s] := me; T[v] := me; P[p] := 0
//   rival := C[v][1-s]
//   if rival != 0 and T[v] = me:
//     if P[lvl][rival] = 0: P[lvl][rival] := 1   // help rival past stage one
//     await P[lvl][p] >= 1                       // single-register spin
//     if T[v] = me: await P[lvl][p] = 2          // single-register spin
// Exit (nodes released root-to-leaf):
//   C[v][s] := 0
//   rival := T[v]; if rival != me and rival != 0: P[lvl][rival] := 2
//
// The YA'95 text is not available offline; this reconstruction follows the
// survey presentations and is exhaustively model-checked (tests/check) for
// mutual exclusion and progress at n = 2..4, plus long randomized runs.
#pragma once

#include "sim/automaton.h"

namespace melb::algo {

class YangAndersonAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "yang-anderson"; }
  int num_registers(int n) const override;
  // P[p] lives in p's memory partition (the local-spin structure that makes
  // the algorithm cheap in DSM/SC terms); node registers are remote to all.
  sim::Pid register_owner(sim::Reg reg, int n) const override;
  std::unique_ptr<sim::Automaton> make_process(sim::Pid pid, int n) const override;
  // Tree-automorphism pid symmetries (permutations the arbitration tree can
  // realize); see tree_automorphism in algo/tree.h.
  const sim::PidSymmetry& pid_symmetry() const override;
};

}  // namespace melb::algo
