#include "algo/burns.h"

#include "algo/automaton_base.h"

namespace melb::algo {

namespace {

using sim::CritKind;
using sim::Pid;
using sim::Reg;
using sim::Step;
using sim::Value;

// Structure (for process i):
//   L: flag[i] := 0
//      for j < i: if flag[j] = 1 goto L
//      flag[i] := 1
//      for j < i: if flag[j] = 1 goto L
//      for j > i: await flag[j] = 0
//   CS; flag[i] := 0
class BurnsProcess final : public CloneableAutomaton<BurnsProcess> {
 public:
  BurnsProcess(Pid pid, int n) : pid_(pid), n_(n) {}

  Step propose() const override {
    switch (pc_) {
      case Pc::kTry:
        return Step::crit_step(pid_, CritKind::kTry);
      case Pc::kClearFlag:
        return Step::write(pid_, j_reg(pid_), 0);
      case Pc::kScanLowPre:
      case Pc::kScanLowPost:
        return Step::read(pid_, j_reg(j_));
      case Pc::kSetFlag:
        return Step::write(pid_, j_reg(pid_), 1);
      case Pc::kAwaitHigh:
        return Step::read(pid_, j_reg(j_));
      case Pc::kEnter:
        return Step::crit_step(pid_, CritKind::kEnter);
      case Pc::kExit:
        return Step::crit_step(pid_, CritKind::kExit);
      case Pc::kRelease:
        return Step::write(pid_, j_reg(pid_), 0);
      case Pc::kAfterPostScan:
      case Pc::kRem:
      case Pc::kDone:
        break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value read_value) override {
    switch (pc_) {
      case Pc::kTry:
        pc_ = Pc::kClearFlag;
        break;
      case Pc::kClearFlag:
        start_low_scan(Pc::kScanLowPre, Pc::kSetFlag);
        break;
      case Pc::kScanLowPre:
        if (read_value == 1) {
          pc_ = Pc::kClearFlag;  // conflict with a lower pid: restart
        } else {
          ++j_;
          if (j_ == pid_) pc_ = Pc::kSetFlag;
        }
        break;
      case Pc::kSetFlag:
        start_low_scan(Pc::kScanLowPost, Pc::kAfterPostScan);
        break;
      case Pc::kScanLowPost:
        if (read_value == 1) {
          pc_ = Pc::kClearFlag;  // restart
        } else {
          ++j_;
          if (j_ == pid_) begin_await_high();
        }
        break;
      case Pc::kAwaitHigh:
        if (read_value == 0) {
          ++j_;
          if (j_ == n_) pc_ = Pc::kEnter;
        }
        // else: free single-register spin on flag[j_]
        break;
      case Pc::kEnter:
        pc_ = Pc::kExit;
        break;
      case Pc::kExit:
        pc_ = Pc::kRelease;
        break;
      case Pc::kRelease:
        pc_ = Pc::kRem;
        break;
      case Pc::kRem:
        pc_ = Pc::kDone;
        break;
      case Pc::kDone:
        break;
      case Pc::kAfterPostScan:
        break;  // never a resting state
    }
  }

  bool done() const override { return pc_ == Pc::kDone; }

  void hash_into(util::Hasher& hasher) const {
    hasher.add_all({static_cast<std::int64_t>(pc_), pid_, j_});
  }

 private:
  enum class Pc : std::uint8_t {
    kTry,
    kClearFlag,
    kScanLowPre,
    kScanLowPost,
    kSetFlag,
    kAwaitHigh,
    kAfterPostScan,  // pseudo-target used by start_low_scan for pid 0
    kEnter,
    kExit,
    kRelease,
    kRem,
    kDone,
  };

  Reg j_reg(int j) const { return j; }

  // Begin a scan over j in [0, pid); if the range is empty jump to `on_empty`
  // (resolved immediately so the automaton always has a concrete next step).
  void start_low_scan(Pc scan_state, Pc on_empty) {
    j_ = 0;
    if (pid_ == 0) {
      pc_ = on_empty;
      if (pc_ == Pc::kAfterPostScan) begin_await_high();
    } else {
      pc_ = scan_state;
    }
  }

  void begin_await_high() {
    j_ = pid_ + 1;
    pc_ = (j_ == n_) ? Pc::kEnter : Pc::kAwaitHigh;
  }

  Pid pid_;
  int n_;
  Pc pc_ = Pc::kTry;
  int j_ = 0;
};

}  // namespace

std::unique_ptr<sim::Automaton> BurnsAlgorithm::make_process(sim::Pid pid, int n) const {
  return std::make_unique<BurnsProcess>(pid, n);
}

}  // namespace melb::algo
