#include "algo/peterson.h"

#include "algo/automaton_base.h"
#include "algo/tree.h"

namespace melb::algo {

namespace {

using sim::CritKind;
using sim::Pid;
using sim::Reg;
using sim::Step;
using sim::Value;

class PetersonProcess final : public CloneableAutomaton<PetersonProcess> {
 public:
  PetersonProcess(Pid pid, int n) : pid_(pid), path_(tree_path(pid, n)) {}

  Step propose() const override {
    switch (pc_) {
      case Pc::kTry:
        return Step::crit_step(pid_, CritKind::kTry);
      case Pc::kSetFlag:
        return Step::write(pid_, flag_reg(hop(), side()), 1);
      case Pc::kSetTurn:
        return Step::write(pid_, turn_reg(hop()), side());
      case Pc::kReadFlag:
        return Step::read(pid_, flag_reg(hop(), 1 - side()));
      case Pc::kReadTurn:
        return Step::read(pid_, turn_reg(hop()));
      case Pc::kEnter:
        return Step::crit_step(pid_, CritKind::kEnter);
      case Pc::kExit:
        return Step::crit_step(pid_, CritKind::kExit);
      case Pc::kClearFlag:
        return Step::write(pid_, flag_reg(hop(), side()), 0);
      case Pc::kRem:
      case Pc::kDone:
        break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value read_value) override {
    switch (pc_) {
      case Pc::kTry:
        hop_ = 0;
        pc_ = Pc::kSetFlag;
        break;
      case Pc::kSetFlag:
        pc_ = Pc::kSetTurn;
        break;
      case Pc::kSetTurn:
        pc_ = Pc::kReadFlag;
        break;
      case Pc::kReadFlag:
        if (read_value == 0) {
          node_acquired();
        } else {
          pc_ = Pc::kReadTurn;
        }
        break;
      case Pc::kReadTurn:
        if (read_value != side()) {
          node_acquired();
        } else {
          pc_ = Pc::kReadFlag;  // alternate: every spin cycle costs 2 state changes
        }
        break;
      case Pc::kEnter:
        pc_ = Pc::kExit;
        break;
      case Pc::kExit:
        hop_ = static_cast<int>(path_.size()) - 1;  // release root first
        pc_ = Pc::kClearFlag;
        break;
      case Pc::kClearFlag:
        --hop_;
        pc_ = (hop_ < 0) ? Pc::kRem : Pc::kClearFlag;
        break;
      case Pc::kRem:
        pc_ = Pc::kDone;
        break;
      case Pc::kDone:
        break;
    }
  }

  bool done() const override { return pc_ == Pc::kDone; }

  void hash_into(util::Hasher& hasher) const {
    hasher.add_all({static_cast<std::int64_t>(pc_), pid_, hop_});
  }

 private:
  enum class Pc : std::uint8_t {
    kTry,
    kSetFlag,
    kSetTurn,
    kReadFlag,
    kReadTurn,
    kEnter,
    kExit,
    kClearFlag,
    kRem,
    kDone,
  };

  int hop() const { return path_[static_cast<std::size_t>(hop_)].node; }
  int side() const { return path_[static_cast<std::size_t>(hop_)].side; }

  Reg flag_reg(int node, int s) const { return 3 * (node - 1) + s; }
  Reg turn_reg(int node) const { return 3 * (node - 1) + 2; }

  void node_acquired() {
    ++hop_;
    pc_ = (hop_ == static_cast<int>(path_.size())) ? Pc::kEnter : Pc::kSetFlag;
  }

  Pid pid_;
  std::vector<TreeHop> path_;
  Pc pc_ = Pc::kTry;
  int hop_ = 0;
};

}  // namespace

int PetersonTreeAlgorithm::num_registers(int n) const { return 3 * tree_internal_nodes(n); }

std::unique_ptr<sim::Automaton> PetersonTreeAlgorithm::make_process(sim::Pid pid, int n) const {
  return std::make_unique<PetersonProcess>(pid, n);
}

}  // namespace melb::algo
