#include "algo/dijkstra.h"

#include "algo/automaton_base.h"

namespace melb::algo {

namespace {

using sim::CritKind;
using sim::Pid;
using sim::Reg;
using sim::Step;
using sim::Value;

// Classic structure:
//   Li: flag[i] := 1
//   L1: if turn != i { if flag[turn] = 0 { turn := i } ; goto L1 }
//       flag[i] := 2
//       for j != i: if flag[j] = 2 goto Li
//   CS; flag[i] := 0
class DijkstraProcess final : public CloneableAutomaton<DijkstraProcess> {
 public:
  DijkstraProcess(Pid pid, int n) : pid_(pid), n_(n) {}

  Step propose() const override {
    switch (pc_) {
      case Pc::kTry:
        return Step::crit_step(pid_, CritKind::kTry);
      case Pc::kSetFlag1:
        return Step::write(pid_, flag_reg(pid_), 1);
      case Pc::kReadTurn:
        return Step::read(pid_, turn_reg());
      case Pc::kReadHolderFlag:
        return Step::read(pid_, flag_reg(holder_));
      case Pc::kClaimTurn:
        return Step::write(pid_, turn_reg(), pid_);
      case Pc::kSetFlag2:
        return Step::write(pid_, flag_reg(pid_), 2);
      case Pc::kScan:
        return Step::read(pid_, flag_reg(j_));
      case Pc::kEnter:
        return Step::crit_step(pid_, CritKind::kEnter);
      case Pc::kExit:
        return Step::crit_step(pid_, CritKind::kExit);
      case Pc::kClearFlag:
        return Step::write(pid_, flag_reg(pid_), 0);
      case Pc::kRem:
      case Pc::kDone:
        break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value read_value) override {
    switch (pc_) {
      case Pc::kTry:
        pc_ = Pc::kSetFlag1;
        break;
      case Pc::kSetFlag1:
        pc_ = Pc::kReadTurn;
        break;
      case Pc::kReadTurn:
        if (read_value == pid_) {
          pc_ = Pc::kSetFlag2;
        } else {
          holder_ = static_cast<Pid>(read_value);
          pc_ = Pc::kReadHolderFlag;
        }
        break;
      case Pc::kReadHolderFlag:
        pc_ = (read_value == 0) ? Pc::kClaimTurn : Pc::kReadTurn;
        break;
      case Pc::kClaimTurn:
        pc_ = Pc::kReadTurn;
        break;
      case Pc::kSetFlag2:
        j_ = 0;
        skip_self();
        pc_ = (j_ == n_) ? Pc::kEnter : Pc::kScan;
        break;
      case Pc::kScan:
        if (read_value == 2) {
          pc_ = Pc::kSetFlag1;  // conflict: back off and retry from the top
        } else {
          ++j_;
          skip_self();
          if (j_ == n_) pc_ = Pc::kEnter;
        }
        break;
      case Pc::kEnter:
        pc_ = Pc::kExit;
        break;
      case Pc::kExit:
        pc_ = Pc::kClearFlag;
        break;
      case Pc::kClearFlag:
        pc_ = Pc::kRem;
        break;
      case Pc::kRem:
        pc_ = Pc::kDone;
        break;
      case Pc::kDone:
        break;
    }
  }

  bool done() const override { return pc_ == Pc::kDone; }

  void hash_into(util::Hasher& hasher) const {
    hasher.add_all({static_cast<std::int64_t>(pc_), pid_, holder_, j_});
  }

 private:
  enum class Pc : std::uint8_t {
    kTry,
    kSetFlag1,
    kReadTurn,
    kReadHolderFlag,
    kClaimTurn,
    kSetFlag2,
    kScan,
    kEnter,
    kExit,
    kClearFlag,
    kRem,
    kDone,
  };

  Reg flag_reg(int j) const { return j; }
  Reg turn_reg() const { return n_; }

  void skip_self() {
    if (j_ == pid_) ++j_;
  }

  Pid pid_;
  int n_;
  Pc pc_ = Pc::kTry;
  Pid holder_ = 0;
  int j_ = 0;
};

}  // namespace

std::unique_ptr<sim::Automaton> DijkstraAlgorithm::make_process(sim::Pid pid, int n) const {
  return std::make_unique<DijkstraProcess>(pid, n);
}

}  // namespace melb::algo
