#include "algo/filter.h"

#include "algo/automaton_base.h"

namespace melb::algo {

namespace {

using sim::CritKind;
using sim::Pid;
using sim::Reg;
using sim::Step;
using sim::Value;

class FilterProcess final : public CloneableAutomaton<FilterProcess> {
 public:
  FilterProcess(Pid pid, int n) : pid_(pid), n_(n) {}

  Step propose() const override {
    switch (pc_) {
      case Pc::kTry:
        return Step::crit_step(pid_, CritKind::kTry);
      case Pc::kSetLevel:
        return Step::write(pid_, level_reg(pid_), level_);
      case Pc::kSetVictim:
        return Step::write(pid_, victim_reg(level_), pid_);
      case Pc::kScanLevel:
        return Step::read(pid_, level_reg(j_));
      case Pc::kCheckVictim:
        return Step::read(pid_, victim_reg(level_));
      case Pc::kEnter:
        return Step::crit_step(pid_, CritKind::kEnter);
      case Pc::kExit:
        return Step::crit_step(pid_, CritKind::kExit);
      case Pc::kClearLevel:
        return Step::write(pid_, level_reg(pid_), 0);
      case Pc::kRem:
      case Pc::kDone:
        break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value read_value) override {
    switch (pc_) {
      case Pc::kTry:
        level_ = 1;
        pc_ = (n_ == 1) ? Pc::kEnter : Pc::kSetLevel;
        break;
      case Pc::kSetLevel:
        pc_ = Pc::kSetVictim;
        break;
      case Pc::kSetVictim:
        j_ = 0;
        skip_self();
        pc_ = (j_ == n_) ? Pc::kEnter : Pc::kScanLevel;
        break;
      case Pc::kScanLevel:
        if (read_value < level_) {
          ++j_;
          skip_self();
          if (j_ == n_) level_up();
        } else {
          pc_ = Pc::kCheckVictim;
        }
        break;
      case Pc::kCheckVictim:
        if (read_value != pid_) {
          // No longer the victim: the predicate fails for every k, move up.
          level_up();
        } else {
          pc_ = Pc::kScanLevel;  // still blocked by level[j_]; re-poll
        }
        break;
      case Pc::kEnter:
        pc_ = Pc::kExit;
        break;
      case Pc::kExit:
        pc_ = Pc::kClearLevel;
        break;
      case Pc::kClearLevel:
        pc_ = Pc::kRem;
        break;
      case Pc::kRem:
        pc_ = Pc::kDone;
        break;
      case Pc::kDone:
        break;
    }
  }

  bool done() const override { return pc_ == Pc::kDone; }

  void hash_into(util::Hasher& hasher) const {
    hasher.add_all({static_cast<std::int64_t>(pc_), pid_, level_, j_});
  }

 private:
  enum class Pc : std::uint8_t {
    kTry,
    kSetLevel,
    kSetVictim,
    kScanLevel,
    kCheckVictim,
    kEnter,
    kExit,
    kClearLevel,
    kRem,
    kDone,
  };

  Reg level_reg(int j) const { return j; }
  Reg victim_reg(Value level) const { return n_ + static_cast<int>(level) - 1; }

  void skip_self() {
    if (j_ == pid_) ++j_;
  }

  void level_up() {
    ++level_;
    pc_ = (level_ == n_) ? Pc::kEnter : Pc::kSetLevel;
  }

  Pid pid_;
  int n_;
  Pc pc_ = Pc::kTry;
  Value level_ = 0;
  int j_ = 0;
};

}  // namespace

std::unique_ptr<sim::Automaton> FilterAlgorithm::make_process(sim::Pid pid, int n) const {
  return std::make_unique<FilterProcess>(pid, n);
}

}  // namespace melb::algo
