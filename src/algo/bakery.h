// Lamport's bakery algorithm (1974), one critical-section pass per process.
//
// Registers: choosing[0..n) at indexes [0, n); number[0..n) at [n, 2n).
// SC cost profile: the doorway performs n state-changing reads (a running
// maximum) and each wait phase spins on a single register (free until the
// value changes), so a canonical execution costs Θ(n²) — strictly above the
// Ω(n log n) bound, as expected for an unoptimized classic.
#pragma once

#include "sim/automaton.h"

namespace melb::algo {

class BakeryAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "bakery"; }
  int num_registers(int n) const override { return 2 * n; }
  std::unique_ptr<sim::Automaton> make_process(sim::Pid pid, int n) const override;
};

}  // namespace melb::algo
