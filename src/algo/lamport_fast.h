// Lamport's fast mutual exclusion algorithm (1987).
//
// The classic "splitter" construction: in the absence of contention a
// process enters after O(1) accesses (7 memory operations), independent of
// n — the fast path the paper's Ω(n log n) bound does *not* forbid, because
// the bound is about a canonical execution where all n processes enter, and
// under contention Lamport's slow path scans all n flag registers.
//
// Registers: x at 0, y at 1 (0 = ⊥, else pid+1); b[p] at 2+p.
//
//   start: b[i] := true; x := i
//          if y != ⊥  { b[i] := false; await y = ⊥; goto start }
//          y := i
//          if x != i {
//            b[i] := false
//            for all j: await !b[j]
//            if y != i { await y = ⊥; goto start }
//          }
//          CS
//          y := ⊥; b[i] := false
//
// Deadlock-free (some contender always reaches the CS) but admits
// starvation; livelock-freedom in the paper's sense holds.
#pragma once

#include "sim/automaton.h"

namespace melb::algo {

class LamportFastAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "lamport-fast"; }
  int num_registers(int n) const override { return 2 + n; }
  std::unique_ptr<sim::Automaton> make_process(sim::Pid pid, int n) const override;
};

}  // namespace melb::algo
