#include "algo/yang_anderson.h"

#include "algo/automaton_base.h"
#include "algo/tree.h"
#include "sim/symmetry.h"
#include "util/permutation.h"

namespace melb::algo {

namespace {

using sim::CritKind;
using sim::Pid;
using sim::Reg;
using sim::Step;
using sim::Value;

class YangAndersonProcess final : public CloneableAutomaton<YangAndersonProcess> {
 public:
  YangAndersonProcess(Pid pid, int n)
      : pid_(pid), n_(n), path_(tree_path(pid, n)), internal_(tree_internal_nodes(n)) {}

  Step propose() const override {
    switch (pc_) {
      case Pc::kTry:
        return Step::crit_step(pid_, CritKind::kTry);
      case Pc::kWriteC:
        return Step::write(pid_, c_reg(hop(), side()), me());
      case Pc::kWriteT:
        return Step::write(pid_, t_reg(hop()), me());
      case Pc::kResetP:
        return Step::write(pid_, p_reg(hop_, pid_), 0);
      case Pc::kReadRival:
        return Step::read(pid_, c_reg(hop(), 1 - side()));
      case Pc::kReadT:
      case Pc::kReadT2:
        return Step::read(pid_, t_reg(hop()));
      case Pc::kReadRivalP:
        return Step::read(pid_, p_reg(hop_, rival_ - 1));
      case Pc::kHelpRival:
        return Step::write(pid_, p_reg(hop_, rival_ - 1), 1);
      case Pc::kAwaitStage1:
      case Pc::kAwaitStage2:
        return Step::read(pid_, p_reg(hop_, pid_));
      case Pc::kEnter:
        return Step::crit_step(pid_, CritKind::kEnter);
      case Pc::kExit:
        return Step::crit_step(pid_, CritKind::kExit);
      case Pc::kExitWriteC:
        return Step::write(pid_, c_reg(hop(), side()), 0);
      case Pc::kExitReadT:
        return Step::read(pid_, t_reg(hop()));
      case Pc::kExitSignal:
        return Step::write(pid_, p_reg(hop_, rival_ - 1), 2);
      case Pc::kRem:
      case Pc::kDone:
        break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value read_value) override {
    switch (pc_) {
      case Pc::kTry:
        hop_ = 0;
        pc_ = Pc::kWriteC;
        break;
      case Pc::kWriteC:
        pc_ = Pc::kWriteT;
        break;
      case Pc::kWriteT:
        pc_ = Pc::kResetP;
        break;
      case Pc::kResetP:
        pc_ = Pc::kReadRival;
        break;
      case Pc::kReadRival:
        rival_ = static_cast<int>(read_value);
        if (rival_ == 0) {
          node_acquired();
        } else {
          pc_ = Pc::kReadT;
        }
        break;
      case Pc::kReadT:
        if (read_value != me()) {
          node_acquired();
        } else {
          pc_ = Pc::kReadRivalP;
        }
        break;
      case Pc::kReadRivalP:
        pc_ = (read_value == 0) ? Pc::kHelpRival : Pc::kAwaitStage1;
        break;
      case Pc::kHelpRival:
        pc_ = Pc::kAwaitStage1;
        break;
      case Pc::kAwaitStage1:
        if (read_value >= 1) pc_ = Pc::kReadT2;  // otherwise free spin
        break;
      case Pc::kReadT2:
        if (read_value != me()) {
          node_acquired();
        } else {
          pc_ = Pc::kAwaitStage2;
        }
        break;
      case Pc::kAwaitStage2:
        if (read_value == 2) node_acquired();  // otherwise free spin
        break;
      case Pc::kEnter:
        pc_ = Pc::kExit;
        break;
      case Pc::kExit:
        hop_ = static_cast<int>(path_.size()) - 1;  // release root first
        pc_ = Pc::kExitWriteC;
        break;
      case Pc::kExitWriteC:
        pc_ = Pc::kExitReadT;
        break;
      case Pc::kExitReadT:
        rival_ = static_cast<int>(read_value);
        if (rival_ != 0 && rival_ != me()) {
          pc_ = Pc::kExitSignal;
        } else {
          node_released();
        }
        break;
      case Pc::kExitSignal:
        node_released();
        break;
      case Pc::kRem:
        pc_ = Pc::kDone;
        break;
      case Pc::kDone:
        break;
    }
  }

  bool done() const override { return pc_ == Pc::kDone; }

  void hash_into(util::Hasher& hasher) const {
    hasher.add_all({static_cast<std::int64_t>(pc_), pid_, hop_, rival_});
  }

  // Relabel for pid sigma(pid_): hop_ is a *level* index and tree
  // automorphisms preserve levels, so it copies verbatim (the per-level
  // node and arrival side are recomputed from the new pid's own path);
  // rival_ stores 0-or-pid+1 and renames like the registers it mirrors.
  std::unique_ptr<sim::Automaton> relabeled(const util::Permutation& sigma,
                                            int n) const override {
    if (!tree_automorphism(sigma, n).has_value()) return nullptr;
    auto copy = std::make_unique<YangAndersonProcess>(sigma.at(pid_), n);
    copy->pc_ = pc_;
    copy->hop_ = hop_;
    copy->rival_ = rival_ == 0 ? 0 : sigma.at(rival_ - 1) + 1;
    return copy;
  }

 private:
  enum class Pc : std::uint8_t {
    kTry,
    kWriteC,
    kWriteT,
    kResetP,
    kReadRival,
    kReadT,
    kReadRivalP,
    kHelpRival,
    kAwaitStage1,
    kReadT2,
    kAwaitStage2,
    kEnter,
    kExit,
    kExitWriteC,
    kExitReadT,
    kExitSignal,
    kRem,
    kDone,
  };

  Value me() const { return pid_ + 1; }
  int hop() const { return path_[static_cast<std::size_t>(hop_)].node; }
  int side() const { return path_[static_cast<std::size_t>(hop_)].side; }

  Reg c_reg(int node, int s) const { return 3 * (node - 1) + s; }
  Reg t_reg(int node) const { return 3 * (node - 1) + 2; }
  // Spin flag of process p at tree level `level` (hop index). Per-level
  // slots prevent a delayed signal from one node from poisoning the same
  // process's wait at a higher node (see header).
  Reg p_reg(int level, Pid p) const { return 3 * internal_ + level * n_ + p; }

  void node_acquired() {
    ++hop_;
    pc_ = (hop_ == static_cast<int>(path_.size())) ? Pc::kEnter : Pc::kWriteC;
  }

  void node_released() {
    --hop_;
    pc_ = (hop_ < 0) ? Pc::kRem : Pc::kExitWriteC;
  }

  Pid pid_;
  int n_;
  std::vector<TreeHop> path_;
  int internal_;
  Pc pc_ = Pc::kTry;
  int hop_ = 0;
  int rival_ = 0;
};

// The pid permutations that act on the arbitration tree are exactly those
// realizable as complete-binary-tree automorphisms (|G| = 2^(span-1) pruned
// by leaf occupancy): node registers relocate with their node — a C slot's
// new side is the image child's heap parity — and hold 0-or-pid+1 payloads,
// while the P spin matrix is fixed per level with its pid column permuted.
class YangAndersonSymmetry final : public sim::PidSymmetry {
 public:
  bool valid(const util::Permutation& sigma, int n) const override {
    return tree_automorphism(sigma, n).has_value();
  }

  Reg map_register(const util::Permutation& sigma, Reg r, int n) const override {
    const int internal = tree_internal_nodes(n);
    if (r >= 3 * internal) {
      const int lvl = (r - 3 * internal) / n;
      const int p = (r - 3 * internal) % n;
      return 3 * internal + lvl * n + sigma.at(p);
    }
    const auto map = tree_automorphism(sigma, n);
    const int v = r / 3 + 1;
    const int k = r % 3;
    const int mv = (*map)[static_cast<std::size_t>(v)];
    if (k == 2) return 3 * (mv - 1) + 2;  // T register travels with the node
    // C[v][k] follows the child it announces for; the image side is the
    // mapped child's heap parity.
    const int side = (*map)[static_cast<std::size_t>(2 * v + k)] & 1;
    return 3 * (mv - 1) + side;
  }

  sim::SlotValueKind value_kind(Reg r, int n) const override {
    return r < 3 * tree_internal_nodes(n) ? sim::SlotValueKind::kPidPlusOne
                                          : sim::SlotValueKind::kPlain;
  }
};

}  // namespace

int YangAndersonAlgorithm::num_registers(int n) const {
  const int levels = static_cast<int>(tree_path(0, n).size());
  return 3 * tree_internal_nodes(n) + levels * n;
}

sim::Pid YangAndersonAlgorithm::register_owner(sim::Reg reg, int n) const {
  const int first_spin_reg = 3 * tree_internal_nodes(n);
  return reg >= first_spin_reg ? (reg - first_spin_reg) % n : -1;
}

std::unique_ptr<sim::Automaton> YangAndersonAlgorithm::make_process(sim::Pid pid, int n) const {
  return std::make_unique<YangAndersonProcess>(pid, n);
}

const sim::PidSymmetry& YangAndersonAlgorithm::pid_symmetry() const {
  static const YangAndersonSymmetry instance;
  return instance;
}

}  // namespace melb::algo
