// Arbitration-tree plumbing shared by the tournament algorithms.
//
// Processes are assigned to the leaves of a complete binary tree with
// L = 2^ceil(log2 n) leaf slots; internal nodes are heap-indexed 1..L-1.
// A process entering the critical section acquires the 2-process lock at
// every node on its leaf-to-root path (recording which side it came from);
// it releases them root-to-leaf on exit.
#pragma once

#include <optional>
#include <vector>

#include "sim/types.h"
#include "util/permutation.h"

namespace melb::algo {

struct TreeHop {
  int node = 0;  // heap index of the internal node (1-based; 1 is the root)
  int side = 0;  // 0 if the process arrived from the left child, 1 from right
};

// Smallest power of two >= max(n, 2); the leaf-row width.
int tree_leaf_span(int n);

// Number of internal nodes (= leaf span - 1).
int tree_internal_nodes(int n);

// Leaf-to-root path for process pid among n processes (entry order).
std::vector<TreeHop> tree_path(sim::Pid pid, int n);

// The complete-binary-tree automorphism realizing the pid permutation sigma,
// if one exists: a map m over heap indices [1, 2 * tree_leaf_span(n)) with
// m[1] = 1, each node's children mapping to its image's children (possibly
// swapped), occupied leaf span+i mapping to span+sigma(i), and empty leaves
// mapping among themselves. Deterministic (the unswapped orientation is
// preferred at every node), so the same sigma always yields the same map.
// Returns nullopt when sigma is not realizable on the tree — such sigma are
// not symmetries of the tournament algorithms. m[0] is unused.
std::optional<std::vector<int>> tree_automorphism(const util::Permutation& sigma,
                                                  int n);

}  // namespace melb::algo
