// Small pedagogical algorithms used throughout the tests and experiments.
//
// StaticRoundRobinAlgorithm — a single `turn` register granted in pid order.
//   Mutual exclusion holds and canonical executions cost only Θ(n), *below*
//   the Ω(n log n) bound — which is consistent because the algorithm is not
//   livelock-free: if only process 5 is trying, nobody ever advances `turn`
//   and no process enters. It demonstrates why livelock-freedom is a
//   necessary hypothesis of Theorem 7.5 (the checker catches the violation).
//
// NaiveBrokenLock — read-then-set one-register lock. Violates mutual
//   exclusion under an adversarial interleaving; used to validate that the
//   model checker and execution validators actually detect violations.
#pragma once

#include "sim/automaton.h"

namespace melb::algo {

class StaticRoundRobinAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "static-rr"; }
  int num_registers(int) const override { return 1; }
  std::unique_ptr<sim::Automaton> make_process(sim::Pid pid, int n) const override;
};

class NaiveBrokenLock final : public sim::Algorithm {
 public:
  std::string name() const override { return "naive-broken"; }
  int num_registers(int) const override { return 1; }
  std::unique_ptr<sim::Automaton> make_process(sim::Pid pid, int n) const override;
  // Full S_n: the lock word is a shared 0/1 flag. The violation itself is
  // symmetric, so symmetry-reduced checks still find it (and the replayed
  // counterexample concretizes pids through the witness chain).
  const sim::PidSymmetry& pid_symmetry() const override;
};

}  // namespace melb::algo
