// Burns' one-bit mutual exclusion algorithm.
//
// Uses exactly one bit per process — the memory-optimal deadlock-free mutex
// over registers (cf. Burns & Lynch [6]). Entry: clear own flag, scan lower
// pids (restart on conflict), set own flag, re-scan lower pids, then await
// flag[j] = 0 for every higher pid (single-register spins). Unfair but
// livelock-free; a useful low-memory/high-time point in the cost landscape.
//
// Registers: flag[j] at index j.
#pragma once

#include "sim/automaton.h"

namespace melb::algo {

class BurnsAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "burns"; }
  int num_registers(int n) const override { return n; }
  std::unique_ptr<sim::Automaton> make_process(sim::Pid pid, int n) const override;
};

}  // namespace melb::algo
