// Central registry of the algorithm library.
//
// Tests, benches and examples iterate "all correct mutex algorithms" or look
// one up by name; keeping the list here means a new algorithm is picked up by
// the whole harness by adding one line.
//
// Thread-safety: the registry is a function-local static built once (C++11
// magic-static initialization) and immutable afterwards; Algorithm objects
// are shared const factories. Concurrent lookups and concurrent
// make_process() calls from parallel sweep workers are safe.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/automaton.h"

namespace melb::algo {

struct AlgorithmInfo {
  std::shared_ptr<const sim::Algorithm> algorithm;
  bool livelock_free = true;   // satisfies the paper's livelock-freedom property
  bool mutex_correct = true;   // satisfies mutual exclusion
  bool uses_rmw = false;       // uses comparison primitives (CAS/swap/FAA);
                               // outside the register-only lower bound's scope
  // Expected canonical SC cost growth, for documentation/report labeling.
  std::string cost_note;
  // Is the algorithm invariant under renaming the processes? True for every
  // real mutex algorithm; false for entries whose behavior bakes in concrete
  // pids (static-rr grants the turn in pid order). The checker refuses
  // --symmetry when false — the quotient would merge inequivalent states.
  bool pid_symmetric = true;
};

// Every algorithm in the library, including the deliberately limited ones.
const std::vector<AlgorithmInfo>& all_algorithms();

// The algorithms that solve livelock-free mutual exclusion — correct over
// registers or RMW primitives alike.
std::vector<AlgorithmInfo> correct_algorithms();

// The register-only subset of correct_algorithms(): the class the paper's
// Theorem 7.5 quantifies over, and the only algorithms the lower-bound
// construction accepts.
std::vector<AlgorithmInfo> register_algorithms();

// Lookup by Algorithm::name(); throws std::out_of_range if unknown.
const AlgorithmInfo& algorithm_by_name(const std::string& name);

}  // namespace melb::algo
