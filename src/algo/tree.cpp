#include "algo/tree.h"

namespace melb::algo {

int tree_leaf_span(int n) {
  int span = 2;
  while (span < n) span *= 2;
  return span;
}

int tree_internal_nodes(int n) { return tree_leaf_span(n) - 1; }

std::vector<TreeHop> tree_path(sim::Pid pid, int n) {
  std::vector<TreeHop> path;
  int node = tree_leaf_span(n) + pid;
  while (node > 1) {
    path.push_back(TreeHop{node / 2, node & 1});
    node /= 2;
  }
  return path;
}

}  // namespace melb::algo
