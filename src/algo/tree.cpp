#include "algo/tree.h"

namespace melb::algo {

int tree_leaf_span(int n) {
  int span = 2;
  while (span < n) span *= 2;
  return span;
}

int tree_internal_nodes(int n) { return tree_leaf_span(n) - 1; }

std::vector<TreeHop> tree_path(sim::Pid pid, int n) {
  std::vector<TreeHop> path;
  int node = tree_leaf_span(n) + pid;
  while (node > 1) {
    path.push_back(TreeHop{node / 2, node & 1});
    node /= 2;
  }
  return path;
}

namespace {

// Map the subtree rooted at v onto the subtree rooted at w, preferring the
// unswapped child orientation. Writes the subtree's entries into map; a
// failed orientation is fully overwritten by the other (both assign exactly
// the nodes under v), so no explicit undo is needed.
bool map_subtree(int v, int w, int span, int n, const util::Permutation& sigma,
                 std::vector<int>& map) {
  if (v >= span) {  // leaf row
    const int i = v - span;
    const int j = w - span;
    if (i < n) {
      if (j != sigma.at(i)) return false;  // occupied leaf must follow sigma
    } else if (j < n) {
      return false;  // empty leaf cannot land on an occupied one
    }
    map[static_cast<std::size_t>(v)] = w;
    return true;
  }
  for (int swap : {0, 1}) {
    if (map_subtree(2 * v, 2 * w + swap, span, n, sigma, map) &&
        map_subtree(2 * v + 1, 2 * w + (1 - swap), span, n, sigma, map)) {
      map[static_cast<std::size_t>(v)] = w;
      return true;
    }
  }
  return false;
}

}  // namespace

std::optional<std::vector<int>> tree_automorphism(const util::Permutation& sigma,
                                                  int n) {
  const int span = tree_leaf_span(n);
  std::vector<int> map(static_cast<std::size_t>(2 * span), 0);
  if (!map_subtree(1, 1, span, n, sigma, map)) return std::nullopt;
  return map;
}

}  // namespace melb::algo
