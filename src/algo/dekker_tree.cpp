#include "algo/dekker_tree.h"

#include "algo/automaton_base.h"
#include "algo/tree.h"

namespace melb::algo {

namespace {

using sim::CritKind;
using sim::Pid;
using sim::Reg;
using sim::Step;
using sim::Value;

// Per node, side s:
//   entry: flag[s] := 1
//     L: if flag[1-s] = 0: acquired
//        if turn != s:            // rival has priority
//          flag[s] := 0
//          await turn = s         // free single-register spin
//          flag[s] := 1
//        goto L
//   exit: turn := 1-s; flag[s] := 0
class DekkerProcess final : public CloneableAutomaton<DekkerProcess> {
 public:
  DekkerProcess(Pid pid, int n) : pid_(pid), path_(tree_path(pid, n)) {}

  Step propose() const override {
    switch (pc_) {
      case Pc::kTry:
        return Step::crit_step(pid_, CritKind::kTry);
      case Pc::kSetFlag:
      case Pc::kRaiseFlag:
        return Step::write(pid_, flag_reg(hop(), side()), 1);
      case Pc::kReadRival:
        return Step::read(pid_, flag_reg(hop(), 1 - side()));
      case Pc::kReadTurn:
      case Pc::kAwaitTurn:
        return Step::read(pid_, turn_reg(hop()));
      case Pc::kLowerFlag:
        return Step::write(pid_, flag_reg(hop(), side()), 0);
      case Pc::kEnter:
        return Step::crit_step(pid_, CritKind::kEnter);
      case Pc::kExit:
        return Step::crit_step(pid_, CritKind::kExit);
      case Pc::kExitTurn:
        return Step::write(pid_, turn_reg(hop()), 1 - side());
      case Pc::kExitFlag:
        return Step::write(pid_, flag_reg(hop(), side()), 0);
      case Pc::kRem:
      case Pc::kDone:
        break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value read_value) override {
    switch (pc_) {
      case Pc::kTry:
        hop_ = 0;
        pc_ = Pc::kSetFlag;
        break;
      case Pc::kSetFlag:
      case Pc::kRaiseFlag:
        pc_ = Pc::kReadRival;
        break;
      case Pc::kReadRival:
        if (read_value == 0) {
          node_acquired();
        } else {
          pc_ = Pc::kReadTurn;
        }
        break;
      case Pc::kReadTurn:
        // turn == my side: I keep my flag up and re-poll (charged loop);
        // otherwise I back off and wait for the turn on one register.
        pc_ = (read_value == side()) ? Pc::kReadRival : Pc::kLowerFlag;
        break;
      case Pc::kLowerFlag:
        pc_ = Pc::kAwaitTurn;
        break;
      case Pc::kAwaitTurn:
        if (read_value == side()) pc_ = Pc::kRaiseFlag;  // else free spin
        break;
      case Pc::kEnter:
        pc_ = Pc::kExit;
        break;
      case Pc::kExit:
        hop_ = static_cast<int>(path_.size()) - 1;  // release root first
        pc_ = Pc::kExitTurn;
        break;
      case Pc::kExitTurn:
        pc_ = Pc::kExitFlag;
        break;
      case Pc::kExitFlag:
        --hop_;
        pc_ = (hop_ < 0) ? Pc::kRem : Pc::kExitTurn;
        break;
      case Pc::kRem:
        pc_ = Pc::kDone;
        break;
      case Pc::kDone:
        break;
    }
  }

  bool done() const override { return pc_ == Pc::kDone; }

  void hash_into(util::Hasher& hasher) const {
    hasher.add_all({static_cast<std::int64_t>(pc_), pid_, hop_});
  }

 private:
  enum class Pc : std::uint8_t {
    kTry,
    kSetFlag,
    kReadRival,
    kReadTurn,
    kLowerFlag,
    kAwaitTurn,
    kRaiseFlag,
    kEnter,
    kExit,
    kExitTurn,
    kExitFlag,
    kRem,
    kDone,
  };

  int hop() const { return path_[static_cast<std::size_t>(hop_)].node; }
  int side() const { return path_[static_cast<std::size_t>(hop_)].side; }

  Reg flag_reg(int node, int s) const { return 3 * (node - 1) + s; }
  Reg turn_reg(int node) const { return 3 * (node - 1) + 2; }

  void node_acquired() {
    ++hop_;
    pc_ = (hop_ == static_cast<int>(path_.size())) ? Pc::kEnter : Pc::kSetFlag;
  }

  Pid pid_;
  std::vector<TreeHop> path_;
  Pc pc_ = Pc::kTry;
  int hop_ = 0;
};

}  // namespace

int DekkerTreeAlgorithm::num_registers(int n) const { return 3 * tree_internal_nodes(n); }

std::unique_ptr<sim::Automaton> DekkerTreeAlgorithm::make_process(sim::Pid pid, int n) const {
  return std::make_unique<DekkerProcess>(pid, n);
}

}  // namespace melb::algo
