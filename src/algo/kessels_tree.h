// Kessels' single-writer 2-process mutual exclusion as a tournament tree.
//
// Kessels (1982) splits Peterson's multi-writer `turn` into two
// single-writer bits T0/T1 (side 0 publishes T0 := T1, side 1 publishes
// T1 := 1 − T0; "equal" means side 0 came last). Every register here has
// exactly one writer — the library's data point that the Ω(n log n) bound
// does not rely on multi-writer registers. The wait predicate spans the
// rival's flag and turn bit, so contended spins are SC-charged like
// Peterson's.
//
// Register layout per internal node v (4 registers):
//   B[v][side] at 4(v-1)+side, T[v][side] at 4(v-1)+2+side.
#pragma once

#include "sim/automaton.h"

namespace melb::algo {

class KesselsTreeAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "kessels-tree"; }
  int num_registers(int n) const override;
  std::unique_ptr<sim::Automaton> make_process(sim::Pid pid, int n) const override;
};

}  // namespace melb::algo
