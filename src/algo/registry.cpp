#include "algo/registry.h"

#include <stdexcept>

#include "algo/bakery.h"
#include "algo/burns.h"
#include "algo/dekker_tree.h"
#include "algo/dijkstra.h"
#include "algo/filter.h"
#include "algo/kessels_tree.h"
#include "algo/lamport_fast.h"
#include "algo/peterson.h"
#include "algo/rmw_locks.h"
#include "algo/simple.h"
#include "algo/yang_anderson.h"

namespace melb::algo {

const std::vector<AlgorithmInfo>& all_algorithms() {
  static const std::vector<AlgorithmInfo> algorithms = [] {
    std::vector<AlgorithmInfo> list;
    list.push_back({std::make_shared<YangAndersonAlgorithm>(), true, true, false,
                    "O(n log n) — tight for the SC model (paper §1)"});
    list.push_back({std::make_shared<BakeryAlgorithm>(), true, true, false,
                    "Theta(n^2) — doorway scan dominates"});
    list.push_back({std::make_shared<PetersonTreeAlgorithm>(), true, true, false,
                    "Theta(n log n) uncontended; unbounded spin charges under contention"});
    list.push_back({std::make_shared<FilterAlgorithm>(), true, true, false,
                    "Theta(n^2) and up — multi-register spin predicates"});
    list.push_back({std::make_shared<DijkstraAlgorithm>(), true, true, false,
                    "Theta(n^2) and up — turn-scan spins are charged"});
    list.push_back({std::make_shared<BurnsAlgorithm>(), true, true, false,
                    "one bit per process; restart scans cost Theta(n^2)"});
    list.push_back({std::make_shared<DekkerTreeAlgorithm>(), true, true, false,
                    "Theta(n log n)-ish; back-off waits on one register (free in SC)"});
    list.push_back({std::make_shared<KesselsTreeAlgorithm>(), true, true, false,
                    "single-writer registers only; Peterson-like charged spins"});
    list.push_back({std::make_shared<LamportFastAlgorithm>(), true, true, false,
                    "O(1) uncontended fast path; Theta(n) scan per contended entry"});
    list.push_back({std::make_shared<TtasLockAlgorithm>(), true, true, true,
                    "Theta(n^2) — CAS available but handoffs wake every spinner"});
    list.push_back({std::make_shared<TicketLockAlgorithm>(), true, true, true,
                    "Theta(n), FIFO — FAA ticket + one free spin"});
    list.push_back({std::make_shared<McsLockAlgorithm>(), true, true, true,
                    "Theta(n), FIFO, local spins — the O(1)-RMR queue lock"});
    list.push_back({std::make_shared<StaticRoundRobinAlgorithm>(), false, true, false,
                    "Theta(n) — cheaper than the bound because it is not livelock-free",
                    /*pid_symmetric=*/false});
    list.push_back({std::make_shared<NaiveBrokenLock>(), true, false, false,
                    "violates mutual exclusion (validator/checker test case)"});
    return list;
  }();
  return algorithms;
}

std::vector<AlgorithmInfo> correct_algorithms() {
  std::vector<AlgorithmInfo> result;
  for (const auto& info : all_algorithms()) {
    if (info.livelock_free && info.mutex_correct) result.push_back(info);
  }
  return result;
}

std::vector<AlgorithmInfo> register_algorithms() {
  std::vector<AlgorithmInfo> result;
  for (const auto& info : correct_algorithms()) {
    if (!info.uses_rmw) result.push_back(info);
  }
  return result;
}

const AlgorithmInfo& algorithm_by_name(const std::string& name) {
  for (const auto& info : all_algorithms()) {
    if (info.algorithm->name() == name) return info;
  }
  throw std::out_of_range("unknown algorithm: " + name);
}

}  // namespace melb::algo
