#include "algo/rmw_locks.h"

#include "algo/automaton_base.h"
#include "sim/symmetry.h"
#include "util/permutation.h"

namespace melb::algo {

namespace {

using sim::CritKind;
using sim::Pid;
using sim::Reg;
using sim::Step;
using sim::Value;

// ------------------------------------------------------------------- TTAS

class TtasProcess final : public CloneableAutomaton<TtasProcess> {
 public:
  explicit TtasProcess(Pid pid) : pid_(pid) {}

  Step propose() const override {
    switch (pc_) {
      case Pc::kTry:
        return Step::crit_step(pid_, CritKind::kTry);
      case Pc::kSpin:
        return Step::read(pid_, 0);
      case Pc::kCas:
        return Step::cas(pid_, 0, 0, 1);
      case Pc::kEnter:
        return Step::crit_step(pid_, CritKind::kEnter);
      case Pc::kExit:
        return Step::crit_step(pid_, CritKind::kExit);
      case Pc::kRelease:
        return Step::write(pid_, 0, 0);
      case Pc::kRem:
      case Pc::kDone:
        break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value read_value) override {
    switch (pc_) {
      case Pc::kTry:
        pc_ = Pc::kSpin;
        break;
      case Pc::kSpin:
        if (read_value == 0) pc_ = Pc::kCas;  // else free single-register spin
        break;
      case Pc::kCas:
        pc_ = (read_value == 0) ? Pc::kEnter : Pc::kSpin;  // old value 0 = won
        break;
      case Pc::kEnter:
        pc_ = Pc::kExit;
        break;
      case Pc::kExit:
        pc_ = Pc::kRelease;
        break;
      case Pc::kRelease:
        pc_ = Pc::kRem;
        break;
      case Pc::kRem:
        pc_ = Pc::kDone;
        break;
      case Pc::kDone:
        break;
    }
  }

  bool done() const override { return pc_ == Pc::kDone; }

  void hash_into(util::Hasher& hasher) const {
    hasher.add_all({static_cast<std::int64_t>(pc_), pid_});
  }

  std::unique_ptr<sim::Automaton> relabeled(const util::Permutation& sigma,
                                            int) const override {
    auto copy = std::make_unique<TtasProcess>(sigma.at(pid_));
    copy->pc_ = pc_;
    return copy;
  }

 private:
  enum class Pc : std::uint8_t { kTry, kSpin, kCas, kEnter, kExit, kRelease, kRem, kDone };
  Pid pid_;
  Pc pc_ = Pc::kTry;
};

// ----------------------------------------------------------------- Ticket

class TicketProcess final : public CloneableAutomaton<TicketProcess> {
 public:
  explicit TicketProcess(Pid pid) : pid_(pid) {}

  Step propose() const override {
    switch (pc_) {
      case Pc::kTry:
        return Step::crit_step(pid_, CritKind::kTry);
      case Pc::kTakeTicket:
        return Step::faa(pid_, kNext, 1);
      case Pc::kAwaitTurn:
        return Step::read(pid_, kServing);
      case Pc::kEnter:
        return Step::crit_step(pid_, CritKind::kEnter);
      case Pc::kExit:
        return Step::crit_step(pid_, CritKind::kExit);
      case Pc::kBumpServing:
        return Step::write(pid_, kServing, ticket_ + 1);
      case Pc::kRem:
      case Pc::kDone:
        break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value read_value) override {
    switch (pc_) {
      case Pc::kTry:
        pc_ = Pc::kTakeTicket;
        break;
      case Pc::kTakeTicket:
        ticket_ = read_value;  // FAA observes the old value
        pc_ = Pc::kAwaitTurn;
        break;
      case Pc::kAwaitTurn:
        if (read_value == ticket_) pc_ = Pc::kEnter;  // else free spin
        break;
      case Pc::kEnter:
        pc_ = Pc::kExit;
        break;
      case Pc::kExit:
        pc_ = Pc::kBumpServing;
        break;
      case Pc::kBumpServing:
        pc_ = Pc::kRem;
        break;
      case Pc::kRem:
        pc_ = Pc::kDone;
        break;
      case Pc::kDone:
        break;
    }
  }

  bool done() const override { return pc_ == Pc::kDone; }

  void hash_into(util::Hasher& hasher) const {
    hasher.add_all({static_cast<std::int64_t>(pc_), pid_, ticket_});
  }

  std::unique_ptr<sim::Automaton> relabeled(const util::Permutation& sigma,
                                            int) const override {
    auto copy = std::make_unique<TicketProcess>(sigma.at(pid_));
    copy->pc_ = pc_;
    copy->ticket_ = ticket_;  // tickets are pid-independent counters
    return copy;
  }

 private:
  enum class Pc : std::uint8_t {
    kTry,
    kTakeTicket,
    kAwaitTurn,
    kEnter,
    kExit,
    kBumpServing,
    kRem,
    kDone,
  };
  static constexpr Reg kNext = 0;
  static constexpr Reg kServing = 1;
  Pid pid_;
  Pc pc_ = Pc::kTry;
  Value ticket_ = 0;
};

// -------------------------------------------------------------------- MCS

class McsProcess final : public CloneableAutomaton<McsProcess> {
 public:
  McsProcess(Pid pid, int n) : pid_(pid), n_(n) {}

  Step propose() const override {
    switch (pc_) {
      case Pc::kTry:
        return Step::crit_step(pid_, CritKind::kTry);
      case Pc::kResetNext:
        return Step::write(pid_, next_reg(pid_), 0);
      case Pc::kArm:
        return Step::write(pid_, locked_reg(pid_), 1);
      case Pc::kSwapTail:
        return Step::swap(pid_, tail_reg(), me());
      case Pc::kLinkPred:
        return Step::write(pid_, next_reg(pred_ - 1), me());
      case Pc::kSpin:
        return Step::read(pid_, locked_reg(pid_));
      case Pc::kEnter:
        return Step::crit_step(pid_, CritKind::kEnter);
      case Pc::kExit:
        return Step::crit_step(pid_, CritKind::kExit);
      case Pc::kReadNext:
        return Step::read(pid_, next_reg(pid_));
      case Pc::kCasTail:
        return Step::cas(pid_, tail_reg(), me(), 0);
      case Pc::kAwaitSuccessor:
        return Step::read(pid_, next_reg(pid_));
      case Pc::kGrantNext:
        return Step::write(pid_, locked_reg(succ_ - 1), 0);
      case Pc::kRem:
      case Pc::kDone:
        break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value read_value) override {
    switch (pc_) {
      case Pc::kTry:
        pc_ = Pc::kResetNext;
        break;
      case Pc::kResetNext:
        pc_ = Pc::kArm;
        break;
      case Pc::kArm:
        pc_ = Pc::kSwapTail;
        break;
      case Pc::kSwapTail:
        pred_ = static_cast<int>(read_value);
        pc_ = (pred_ == 0) ? Pc::kEnter : Pc::kLinkPred;
        break;
      case Pc::kLinkPred:
        pc_ = Pc::kSpin;
        break;
      case Pc::kSpin:
        if (read_value == 0) pc_ = Pc::kEnter;  // handed the lock; free spin otherwise
        break;
      case Pc::kEnter:
        pc_ = Pc::kExit;
        break;
      case Pc::kExit:
        pc_ = Pc::kReadNext;
        break;
      case Pc::kReadNext:
        succ_ = static_cast<int>(read_value);
        pc_ = (succ_ == 0) ? Pc::kCasTail : Pc::kGrantNext;
        break;
      case Pc::kCasTail:
        // Old value == me(): queue empty behind us, CAS cleared the tail.
        pc_ = (read_value == me()) ? Pc::kRem : Pc::kAwaitSuccessor;
        break;
      case Pc::kAwaitSuccessor:
        if (read_value != 0) {
          succ_ = static_cast<int>(read_value);
          pc_ = Pc::kGrantNext;
        }
        // else free spin: the late enqueuer will link itself shortly
        break;
      case Pc::kGrantNext:
        pc_ = Pc::kRem;
        break;
      case Pc::kRem:
        pc_ = Pc::kDone;
        break;
      case Pc::kDone:
        break;
    }
  }

  bool done() const override { return pc_ == Pc::kDone; }

  void hash_into(util::Hasher& hasher) const {
    hasher.add_all({static_cast<std::int64_t>(pc_), pid_, pred_, succ_});
  }

  std::unique_ptr<sim::Automaton> relabeled(const util::Permutation& sigma,
                                            int) const override {
    auto copy = std::make_unique<McsProcess>(sigma.at(pid_), n_);
    copy->pc_ = pc_;
    copy->pred_ = pred_ == 0 ? 0 : sigma.at(pred_ - 1) + 1;
    copy->succ_ = succ_ == 0 ? 0 : sigma.at(succ_ - 1) + 1;
    return copy;
  }

 private:
  enum class Pc : std::uint8_t {
    kTry,
    kResetNext,
    kArm,
    kSwapTail,
    kLinkPred,
    kSpin,
    kEnter,
    kExit,
    kReadNext,
    kCasTail,
    kAwaitSuccessor,
    kGrantNext,
    kRem,
    kDone,
  };

  Value me() const { return pid_ + 1; }
  Reg tail_reg() const { return 0; }
  Reg next_reg(int p) const { return 1 + p; }
  Reg locked_reg(int p) const { return 1 + n_ + p; }

  Pid pid_;
  int n_;
  Pc pc_ = Pc::kTry;
  int pred_ = 0;
  int succ_ = 0;
};

// Full S_n on the MCS queue: the tail stays put but stores 0-or-pid+1,
// while the per-process next/locked cells relocate with their owner.
class McsSymmetry final : public sim::PidSymmetry {
 public:
  bool valid(const util::Permutation&, int) const override { return true; }

  Reg map_register(const util::Permutation& sigma, Reg r, int n) const override {
    if (r == 0) return 0;                               // tail
    if (r <= n) return 1 + sigma.at(r - 1);             // next[p]
    return 1 + n + sigma.at(r - 1 - n);                 // locked[p]
  }

  sim::SlotValueKind value_kind(Reg r, int n) const override {
    return r <= n ? sim::SlotValueKind::kPidPlusOne     // tail and next[p]
                  : sim::SlotValueKind::kPlain;         // locked[p] is 0/1
  }
};

}  // namespace

std::unique_ptr<sim::Automaton> TtasLockAlgorithm::make_process(sim::Pid pid, int) const {
  return std::make_unique<TtasProcess>(pid);
}

const sim::PidSymmetry& TtasLockAlgorithm::pid_symmetry() const {
  return sim::shared_register_symmetry();
}

std::unique_ptr<sim::Automaton> TicketLockAlgorithm::make_process(sim::Pid pid, int) const {
  return std::make_unique<TicketProcess>(pid);
}

const sim::PidSymmetry& TicketLockAlgorithm::pid_symmetry() const {
  return sim::shared_register_symmetry();
}

std::unique_ptr<sim::Automaton> McsLockAlgorithm::make_process(sim::Pid pid, int n) const {
  return std::make_unique<McsProcess>(pid, n);
}

const sim::PidSymmetry& McsLockAlgorithm::pid_symmetry() const {
  static const McsSymmetry instance;
  return instance;
}

}  // namespace melb::algo
