// The filter lock (Peterson's n-process generalization).
//
// n-1 levels; at each level a process announces itself, becomes the level's
// victim, and waits until no other process is at this level or higher, or it
// is no longer the victim. The wait predicate spans many registers, so the
// SC model charges nearly every spin read — canonical cost is Θ(n²) with a
// large constant under contention (experiments E4/E6 quantify this).
//
// Registers: level[j] at index j (0 = not competing, else 1..n-1);
// victim[L] at index n + (L-1) for L in 1..n-1 (holds a pid).
#pragma once

#include "sim/automaton.h"

namespace melb::algo {

class FilterAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "filter"; }
  int num_registers(int n) const override { return n + (n > 1 ? n - 1 : 1); }
  std::unique_ptr<sim::Automaton> make_process(sim::Pid pid, int n) const override;
};

}  // namespace melb::algo
