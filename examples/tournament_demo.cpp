// The Yang–Anderson arbitration tree, simulated and threaded.
//
//   $ ./examples/tournament_demo [n]
//
// Shows each process's leaf-to-root path, runs a contended canonical
// execution in the simulator with per-process SC cost, verifies the paper's
// O(n log n) claim, then runs the real threaded lock and reports RMR counts.
#include <cmath>
#include <cstdio>

#include "algo/registry.h"
#include "algo/tree.h"
#include "cost/cost_model.h"
#include "rt/harness.h"
#include "rt/locks.h"
#include "sim/canonical.h"
#include "sim/scheduler.h"
#include "util/table.h"

using namespace melb;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  const auto& algorithm = *algo::algorithm_by_name("yang-anderson").algorithm;

  std::printf("== arbitration tree (n=%d, %d internal nodes) ==\n", n,
              algo::tree_internal_nodes(n));
  for (int p = 0; p < n; ++p) {
    std::printf("p%-2d path:", p);
    for (const auto& hop : algo::tree_path(p, n)) {
      std::printf("  node %d (side %d)", hop.node, hop.side);
    }
    std::printf("\n");
  }

  std::printf("\n== simulated contended canonical run ==\n");
  sim::RandomScheduler scheduler(7);
  const auto run = sim::run_canonical(algorithm, n, scheduler);
  if (!run.completed) {
    std::printf("did not complete!\n");
    return 1;
  }
  cost::StateChangeCost sc;
  const auto per_process = sc.per_process_cost(run.exec, n);
  util::Table table({"process", "SC cost", "per level"});
  const double levels = std::ceil(std::log2(std::max(2, n)));
  for (int p = 0; p < n; ++p) {
    table.add_row({"p" + std::to_string(p),
                   std::to_string(per_process[static_cast<std::size_t>(p)]),
                   util::Table::fmt(per_process[static_cast<std::size_t>(p)] / levels, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("total SC cost %llu vs n log2 n = %.1f (ratio %.2f) — O(n log n), tight\n",
              static_cast<unsigned long long>(run.sc_cost),
              n * std::log2(static_cast<double>(std::max(2, n))),
              run.sc_cost / (n * std::log2(static_cast<double>(std::max(2, n)))));

  std::printf("\n== threaded lock (real atomics, software RMR counting) ==\n");
  rt::YangAndersonLock lock(n);
  rt::HarnessOptions options;
  options.iterations_per_thread = 1;
  const auto hr = rt::run_lock_harness(lock, n, options);
  std::printf("threads=%d passes=%llu mutex=%s total RMR=%llu (%.1f per pass)\n", n,
              static_cast<unsigned long long>(hr.cs_passes), hr.mutex_ok ? "ok" : "VIOLATED",
              static_cast<unsigned long long>(hr.total_rmr),
              static_cast<double>(hr.total_rmr) / std::max<std::uint64_t>(1, hr.cs_passes));
  return hr.mutex_ok ? 0 : 1;
}
