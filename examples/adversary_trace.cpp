// Annotated walk through the lower-bound proof machinery on a tiny instance.
//
//   $ ./examples/adversary_trace [algorithm] [n]
//
// Prints, for one permutation π: the metastep DAG the construction builds
// (with read/write/preread sets), the exact E_π string cell by cell, the
// decoded linearization, and the visibility claim (no lower-π process ever
// reads a value written by a higher-π process).
#include <cstdio>
#include <map>
#include <string>

#include "algo/registry.h"
#include "lb/construct.h"
#include "lb/decode.h"
#include "lb/encode.h"
#include "sim/simulator.h"

using namespace melb;

namespace {

const char* type_name(lb::MetastepType t) {
  switch (t) {
    case lb::MetastepType::kRead:
      return "READ";
    case lb::MetastepType::kWrite:
      return "WRITE";
    case lb::MetastepType::kCrit:
      return "CRIT";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "yang-anderson";
  const int n = argc > 2 ? std::atoi(argv[2]) : 3;
  const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
  const auto pi = util::Permutation::reversed(n);

  std::printf("algorithm %s, n=%d, pi = (", name.c_str(), n);
  for (int k = 0; k < n; ++k) std::printf("%s%d", k ? " " : "", pi.at(k));
  std::printf(")  — process %d must enter first, %d last\n\n", pi.at(0), pi.at(n - 1));

  const auto construction = lb::construct(algorithm, n, pi);

  std::printf("== metasteps (%zu) ==\n", construction.metasteps.size());
  for (const auto& m : construction.metasteps) {
    std::printf("m%-3d %-5s", m.id, type_name(m.type));
    if (m.type != lb::MetastepType::kCrit) std::printf(" r%-3d", m.reg);
    if (m.crit) std::printf(" %s", to_string(*m.crit).c_str());
    if (m.win) std::printf(" win=%s", to_string(*m.win).c_str());
    for (const auto& w : m.writes) std::printf(" hidden=%s", to_string(w).c_str());
    for (const auto& r : m.reads) std::printf(" read=%s", to_string(r).c_str());
    if (!m.pread.empty()) {
      std::printf(" pread={");
      for (std::size_t i = 0; i < m.pread.size(); ++i)
        std::printf("%sm%d", i ? "," : "", m.pread[i]);
      std::printf("}");
    }
    std::printf("\n");
  }

  const auto encoding = lb::encode(construction);
  std::printf("\n== encoding E_pi (%zu bytes) ==\n", encoding.text.size());
  for (int p = 0; p < n; ++p) {
    std::printf("process %d column: ", p);
    for (const auto& cell : encoding.cells[static_cast<std::size_t>(p)]) {
      std::printf("%s ", cell.c_str());
    }
    std::printf("\n");
  }
  std::printf("flat: %s\n", encoding.text.c_str());

  const auto decoded = lb::decode(algorithm, encoding.text);
  std::printf("\n== decoded linearization (%zu steps, SC cost %llu) ==\n",
              decoded.execution.size(),
              static_cast<unsigned long long>(decoded.execution.sc_cost()));
  for (std::size_t i = 0; i < decoded.execution.size(); ++i) {
    const auto& rs = decoded.execution.at(i);
    std::printf("%3zu: %-22s", i, to_string(rs.step).c_str());
    if (rs.step.type == sim::StepType::kRead) std::printf(" -> %lld", (long long)rs.read_value);
    if (rs.step.is_memory_access()) std::printf("  %s", rs.state_changed ? "[sc]" : "[free]");
    std::printf("\n");
  }

  // Visibility check: a process lower in pi must never read a value written
  // by a higher-pi process (that is how the adversary keeps the CS order).
  std::map<sim::Reg, sim::Pid> last_writer;
  bool visibility_ok = true;
  for (std::size_t i = 0; i < decoded.execution.size(); ++i) {
    const auto& step = decoded.execution.at(i).step;
    if (step.type == sim::StepType::kWrite) last_writer[step.reg] = step.pid;
    if (step.type == sim::StepType::kRead) {
      const auto it = last_writer.find(step.reg);
      if (it != last_writer.end() && pi.rank(it->second) > pi.rank(step.pid)) {
        std::printf("VISIBILITY VIOLATION at step %zu: p%d read p%d's value\n", i, step.pid,
                    it->second);
        visibility_ok = false;
      }
    }
  }
  std::printf("\nvisibility invariant (lower-pi never reads higher-pi values): %s\n",
              visibility_ok ? "holds" : "VIOLATED");
  return visibility_ok ? 0 : 1;
}
