// Quickstart: simulate a classic mutex algorithm, measure its state-change
// cost, and run the paper's lower-bound pipeline on it.
//
//   $ ./examples/quickstart [algorithm] [n]
//
// Steps shown:
//   1. run a canonical execution (n processes, one critical section each)
//      under a fair scheduler and validate it;
//   2. report the SC cost (Def. 3.1) next to the n log n yardstick;
//   3. run Construct -> Encode -> Decode for one permutation and confirm the
//      round trip (Theorems 5.5, 6.2, 7.4 in action).
#include <cmath>
#include <cstdio>
#include <string>

#include "algo/registry.h"
#include "lb/construct.h"
#include "lb/decode.h"
#include "lb/encode.h"
#include "sim/canonical.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

using namespace melb;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "yang-anderson";
  const int n = argc > 2 ? std::atoi(argv[2]) : 8;

  const auto& info = algo::algorithm_by_name(name);
  const auto& algorithm = *info.algorithm;
  std::printf("algorithm: %s   (%s)\n", algorithm.name().c_str(), info.cost_note.c_str());
  std::printf("processes: %d, registers: %d\n\n", n, algorithm.num_registers(n));

  // 1. A canonical execution under round-robin scheduling.
  sim::RoundRobinScheduler scheduler;
  const auto run = sim::run_canonical(algorithm, n, scheduler);
  if (!run.completed) {
    std::printf("run did not complete (livelock=%d)\n", run.livelocked);
    return 1;
  }
  const std::string wf = sim::check_well_formed(run.exec, n);
  const std::string me = sim::check_mutual_exclusion(run.exec, n);
  std::printf("canonical run: %llu steps, well-formed: %s, mutex: %s\n",
              static_cast<unsigned long long>(run.steps), wf.empty() ? "ok" : wf.c_str(),
              me.empty() ? "ok" : me.c_str());

  // 2. The state-change cost against the n log n yardstick.
  const double yardstick = n > 1 ? n * std::log2(static_cast<double>(n)) : 1.0;
  std::printf("SC cost: %llu   (n log2 n = %.1f, ratio %.2f)\n\n",
              static_cast<unsigned long long>(run.sc_cost), yardstick,
              static_cast<double>(run.sc_cost) / yardstick);

  // 3. The lower-bound pipeline for one adversarial permutation.
  const auto pi = util::Permutation::reversed(n);
  const auto construction = lb::construct(algorithm, n, pi);
  const auto encoding = lb::encode(construction);
  const auto decoded = lb::decode(algorithm, encoding.text);
  const auto alpha =
      sim::validate_steps(algorithm, n, construction.canonical_linearization());

  std::printf("Construct(reverse pi): %zu metasteps, C(alpha_pi) = %llu\n",
              construction.metasteps.size(),
              static_cast<unsigned long long>(alpha.sc_cost()));
  std::printf("Encode: %zu ASCII bytes (%llu binary bits, %.2f bits per unit cost)\n",
              encoding.text.size(), static_cast<unsigned long long>(encoding.binary_bits),
              static_cast<double>(encoding.binary_bits) /
                  static_cast<double>(alpha.sc_cost()));
  std::printf("Decode: reproduced a linearization with SC cost %llu — %s\n",
              static_cast<unsigned long long>(decoded.execution.sc_cost()),
              decoded.execution.sc_cost() == alpha.sc_cost() ? "round trip OK"
                                                             : "MISMATCH");
  std::printf("\nfirst 60 chars of E_pi: %.60s...\n", encoding.text.c_str());
  return 0;
}
