// Exhaustive model checking of mutex algorithms — and what it catches.
//
//   $ ./examples/model_checking [n]
//
// 1. Verifies every correct algorithm in the registry at n processes
//    (mutual exclusion + progress over all interleavings).
// 2. Shows the naive check-then-set lock failing, with the interleaving
//    that breaks it replayed step by step.
// 3. Shows why livelock-freedom matters: static-rr passes when everyone
//    participates but deadlocks a lone contender — the reason its Θ(n) cost
//    does not contradict the Ω(n log n) bound.
#include <cstdio>

#include "algo/registry.h"
#include "check/model_checker.h"
#include "sim/simulator.h"
#include "util/table.h"

using namespace melb;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 3;

  std::printf("== exhaustive check of the algorithm library (n=%d) ==\n", n);
  util::Table table({"algorithm", "verdict", "states explored", "transitions"});
  for (const auto& info : algo::correct_algorithms()) {
    check::CheckOptions options;
    options.max_states = 4'000'000;
    const auto result = check::check_algorithm(*info.algorithm, n, options);
    table.add_row({info.algorithm->name(),
                   result.ok ? "ok"
                             : (result.exhausted_limit ? "state limit" : result.violation),
                   std::to_string(result.states), std::to_string(result.transitions)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("== the broken lock, caught ==\n");
  const auto& broken = algo::algorithm_by_name("naive-broken");
  const auto bad = check::check_algorithm(*broken.algorithm, 2);
  std::printf("verdict: %s\n", bad.violation.c_str());
  if (bad.counterexample) {
    std::printf("counterexample interleaving:\n");
    for (const auto& step : *bad.counterexample) {
      std::printf("  %s\n", to_string(step).c_str());
    }
    // Replay it through the simulator and confirm the validator agrees.
    const auto exec = sim::validate_steps(*broken.algorithm, 2, *bad.counterexample);
    std::printf("validator: %s\n", sim::check_mutual_exclusion(exec, 2).c_str());
  }

  std::printf("\n== livelock-freedom is the bound's hypothesis ==\n");
  const auto& rr = algo::algorithm_by_name("static-rr");
  const auto full = check::check_algorithm(*rr.algorithm, 2);
  std::printf("static-rr, both processes: %s\n", full.ok ? "ok" : full.violation.c_str());
  check::CheckOptions lone;
  lone.participants = {1};
  const auto subset = check::check_algorithm(*rr.algorithm, 2, lone);
  std::printf("static-rr, only process 1:  %s\n",
              subset.ok ? "ok (?!)" : subset.violation.c_str());
  std::printf(
      "\nThat progress failure is why static-rr's Theta(n) canonical cost does not\n"
      "contradict Theorem 7.5 — the theorem quantifies over livelock-free\n"
      "algorithms only, and the checker certifies membership.\n");
  return bad.ok ? 1 : 0;
}
