// Tour of the four cost models on one recorded execution.
//
//   $ ./examples/cost_model_tour [algorithm] [n]
//
// Runs a faithful canonical execution (busy-wait reads recorded), then
// prints the per-process cost under every model plus a short narrative of
// what each model is charging.
#include <cstdio>
#include <string>

#include "algo/registry.h"
#include "cost/cost_model.h"
#include "sim/canonical.h"
#include "sim/scheduler.h"
#include "util/table.h"

using namespace melb;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "bakery";
  const int n = argc > 2 ? std::atoi(argv[2]) : 6;
  const auto& algorithm = *algo::algorithm_by_name(name).algorithm;

  sim::RoundRobinScheduler scheduler;
  const auto run =
      sim::run_canonical(algorithm, n, scheduler, sim::RunMode::kFaithful, 10'000'000);
  if (!run.completed) {
    std::printf("run did not complete\n");
    return 1;
  }
  std::printf("algorithm %s, n=%d: %llu recorded steps (%llu memory accesses)\n\n",
              name.c_str(), n, static_cast<unsigned long long>(run.steps),
              static_cast<unsigned long long>(run.exec.total_accesses()));

  const auto models = cost::standard_models(algorithm, n);
  util::Table table([&] {
    std::vector<std::string> headers{"process"};
    for (const auto& model : models) headers.push_back(model->name());
    return headers;
  }());
  std::vector<std::vector<std::uint64_t>> per_model;
  for (const auto& model : models) per_model.push_back(model->per_process_cost(run.exec, n));
  for (int p = 0; p < n; ++p) {
    // std::string("p") + … instead of "p" + std::to_string(p): the rvalue
    // operator+(const char*, string&&) overload trips gcc 12's -Wrestrict
    // false positive at -O3 (-Werror Release builds).
    std::vector<std::string> row{std::string("p").append(std::to_string(p))};
    for (const auto& costs : per_model)
      row.push_back(std::to_string(costs[static_cast<std::size_t>(p)]));
    table.add_row(std::move(row));
  }
  std::vector<std::string> totals{"TOTAL"};
  for (const auto& model : models) totals.push_back(std::to_string(model->total_cost(run.exec, n)));
  table.add_row(std::move(totals));
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "total-accesses: every shared-memory step. Unbounded in general for mutex\n"
      "  (Alur–Taubenfeld): busy-waiting must happen somewhere.\n"
      "state-change:   Def. 3.1 — a step is charged only if the process's local\n"
      "  state changed; spinning on one register re-reading the same value is free.\n"
      "cache-coherent: write-invalidate simulation; re-reads of a cached line are\n"
      "  free even when the spin spans several registers.\n"
      "dsm:            accesses outside the process's own memory partition; only\n"
      "  local-spin algorithms (yang-anderson) mark registers local.\n");
  return 0;
}
