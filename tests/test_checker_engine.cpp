// Flyweight state-space engine tests: the flat visited set, worker-count
// determinism of results/traces/statistics, checker conformance on the RMW
// lock algorithms, and a wide-branching fixture that forces the state table
// to reallocate many times mid-exploration (the regression surface for the
// old engine's dangling automaton reference across states.push_back).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "algo/automaton_base.h"
#include "algo/registry.h"
#include "check/model_checker.h"
#include "check/state_set.h"
#include "sim/execution.h"
#include "sim/simulator.h"
#include "util/hash.h"

#include "testing_util.h"

namespace melb {
namespace {

using sim::CritKind;
using sim::Pid;
using sim::Step;
using sim::Value;

// ---------------------------------------------------------------------------
// FlatStateSet / StripedStateSet.
// ---------------------------------------------------------------------------

TEST(FlatStateSet, ReserveCommitLookup) {
  check::FlatStateSet set;
  const auto first = set.find_or_reserve(0xabcdef);
  EXPECT_FALSE(first.found);
  set.commit(0xabcdef, 42);

  const auto again = set.find_or_reserve(0xabcdef);
  EXPECT_TRUE(again.found);
  EXPECT_EQ(again.idx, 42u);
  EXPECT_EQ(set.lookup(0xabcdef), 42u);
  EXPECT_EQ(set.size(), 1u);
}

TEST(FlatStateSet, PendingVisibleBeforeCommit) {
  check::FlatStateSet set;
  ASSERT_FALSE(set.find_or_reserve(7).found);
  const auto dup = set.find_or_reserve(7);
  EXPECT_TRUE(dup.found);
  EXPECT_EQ(dup.idx, check::FlatStateSet::kPending);
  set.commit(7, 3);
  EXPECT_EQ(set.lookup(7), 3u);
}

TEST(FlatStateSet, GrowthPreservesEntries) {
  check::FlatStateSet set(64);
  // Insert far past the initial capacity to force several rehashes, with
  // adversarially similar keys (zobrist gives well-mixed fingerprints; raw
  // sequential keys stress the probe remix).
  constexpr std::uint32_t kCount = 5000;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    const auto probe = set.find_or_reserve(i);
    ASSERT_FALSE(probe.found) << i;
    set.commit(i, i);
  }
  EXPECT_EQ(set.size(), kCount);
  EXPECT_GE(set.capacity(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(set.lookup(i), i);
  }
  EXPECT_GT(set.memory_bytes(), kCount * 12u);
}

TEST(StripedStateSet, RoutesAcrossStripesConsistently) {
  check::StripedStateSet set;
  std::set<std::size_t> stripes_used;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const std::uint64_t fp = util::zobrist(i, i * 31);
    stripes_used.insert(set.stripe_of(fp));
    ASSERT_FALSE(set.find_or_reserve(fp).found);
    set.commit(fp, static_cast<std::uint32_t>(i));
  }
  for (std::uint64_t i = 0; i < 2000; ++i) {
    ASSERT_EQ(set.lookup(util::zobrist(i, i * 31)), i);
  }
  EXPECT_EQ(set.size(), 2000u);
  // Mixed fingerprints must actually spread over the stripes.
  EXPECT_GT(stripes_used.size(), check::StripedStateSet::kStripes / 2);
}

// ---------------------------------------------------------------------------
// Worker-count determinism: results, traces, and statistics byte-identical.
// ---------------------------------------------------------------------------

void expect_identical(const check::CheckResult& a, const check::CheckResult& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.exhausted_limit, b.exhausted_limit);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.dedup_hits, b.dedup_hits);
  EXPECT_EQ(a.interned_automata, b.interned_automata);
  EXPECT_EQ(a.interned_regfiles, b.interned_regfiles);
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes);
  ASSERT_EQ(a.counterexample.has_value(), b.counterexample.has_value());
  if (a.counterexample) {
    EXPECT_EQ(*a.counterexample, *b.counterexample);
  }
}

check::CheckResult run_with_workers(const std::string& algorithm, int n, int workers,
                                    std::uint64_t max_states = 4'000'000) {
  check::CheckOptions options;
  options.workers = workers;
  options.max_states = max_states;
  return check::check_algorithm(*algo::algorithm_by_name(algorithm).algorithm, n, options);
}

TEST(EngineDeterminism, CorrectAlgorithmAcrossWorkerCounts) {
  const auto serial = run_with_workers("yang-anderson", 3, 1);
  ASSERT_TRUE(serial.ok) << serial.violation;
  for (int workers : {2, 4, 8}) {
    expect_identical(serial, run_with_workers("yang-anderson", 3, workers));
  }
}

TEST(EngineDeterminism, CounterexampleTraceOnBrokenAlgorithm) {
  // The deliberately broken fixture: 4-worker exploration must report the
  // same violation with a byte-identical counterexample trace (lowest-index
  // parent wins), and the trace must replay to a real violation.
  const auto serial = run_with_workers("naive-broken", 3, 1);
  const auto parallel = run_with_workers("naive-broken", 3, 4);
  EXPECT_FALSE(serial.ok);
  expect_identical(serial, parallel);
  ASSERT_TRUE(parallel.counterexample.has_value());

  const auto& info = algo::algorithm_by_name("naive-broken");
  const auto exec = sim::validate_steps(*info.algorithm, 3, *parallel.counterexample);
  EXPECT_NE(sim::check_mutual_exclusion(exec, 3), "");
}

TEST(EngineDeterminism, LivelockTraceOnSubset) {
  check::CheckOptions serial_options;
  serial_options.participants = {1};
  auto parallel_options = serial_options;
  parallel_options.workers = 4;
  const auto& info = algo::algorithm_by_name("static-rr");
  const auto serial = check::check_algorithm(*info.algorithm, 2, serial_options);
  const auto parallel = check::check_algorithm(*info.algorithm, 2, parallel_options);
  EXPECT_FALSE(serial.ok);
  EXPECT_NE(serial.violation.find("progress"), std::string::npos);
  expect_identical(serial, parallel);
}

TEST(EngineDeterminism, StateLimitAcrossWorkerCounts) {
  const auto serial = run_with_workers("bakery", 3, 1, 50);
  const auto parallel = run_with_workers("bakery", 3, 4, 50);
  EXPECT_TRUE(serial.exhausted_limit);
  expect_identical(serial, parallel);
}

// ---------------------------------------------------------------------------
// Checker conformance on the RMW lock algorithms.
// ---------------------------------------------------------------------------

class CheckerOnRmw : public ::testing::TestWithParam<const char*> {};

TEST_P(CheckerOnRmw, ExhaustiveN2) {
  const auto& info = algo::algorithm_by_name(GetParam());
  const auto result = check::check_algorithm(*info.algorithm, 2);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.exhausted_limit);
  EXPECT_GT(result.states, 10u);
}

TEST_P(CheckerOnRmw, ExhaustiveN3) {
  const auto& info = algo::algorithm_by_name(GetParam());
  check::CheckOptions options;
  options.max_states = 4'000'000;
  const auto result = check::check_algorithm(*info.algorithm, 3, options);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.exhausted_limit);
}

TEST_P(CheckerOnRmw, AllParticipantSubsetsN3) {
  const auto& info = algo::algorithm_by_name(GetParam());
  check::CheckOptions options;
  options.max_states = 4'000'000;
  const auto result = check::check_all_subsets(*info.algorithm, 3, options);
  EXPECT_TRUE(result.ok) << result.violation;
}

INSTANTIATE_TEST_SUITE_P(RmwLocks, CheckerOnRmw,
                         ::testing::Values("ttas-rmw", "ticket-rmw", "mcs-rmw"),
                         testing_util::AlgorithmNameGenerator());

// ---------------------------------------------------------------------------
// Wide-branching fixture: every expansion yields n fresh states, so the
// packed state table reallocates dozens of times mid-level. The old engine
// held `const auto& automaton = states[idx].automata[pid]` across
// states.push_back — a dangling reference the ASan CI leg would catch here.
// The state space is exactly 6^n (n independent 6-pc processes), which also
// pins down the dedup accounting.
// ---------------------------------------------------------------------------

class WideProcess final : public algo::CloneableAutomaton<WideProcess> {
 public:
  explicit WideProcess(Pid pid) : pid_(pid) {}

  Step propose() const override {
    switch (pc_) {
      case 0: return Step::crit_step(pid_, CritKind::kTry);
      case 1: return Step::write(pid_, pid_, 1);
      case 2: return Step::crit_step(pid_, CritKind::kEnter);
      case 3: return Step::crit_step(pid_, CritKind::kExit);
      default: break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value) override {
    if (pc_ < 5) ++pc_;
  }

  bool done() const override { return pc_ == 5; }

  void hash_into(util::Hasher& hasher) const { hasher.add_all({pc_, pid_}); }

 private:
  Pid pid_;
  int pc_ = 0;
};

class WideBranchAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "wide-branch-fixture"; }
  int num_registers(int n) const override { return n; }
  std::unique_ptr<sim::Automaton> make_process(Pid pid, int) const override {
    return std::make_unique<WideProcess>(pid);
  }
};

TEST(EngineReallocation, WideBranchingSurvivesStateTableGrowth) {
  // Processes are independent, so the checker sees every interleaving of
  // 4 × 5 steps: 6^4 = 1296 states. Mutual exclusion is deliberately not
  // checked (all four can sit in the CS); progress must hold.
  WideBranchAlgorithm algorithm;
  check::CheckOptions options;
  options.check_mutex = false;
  for (int workers : {1, 4}) {
    options.workers = workers;
    const auto result = check::check_algorithm(algorithm, 4, options);
    EXPECT_TRUE(result.ok) << result.violation;
    EXPECT_EQ(result.states, 1296u);
    // 6^4 states, one per pc combination; each non-terminal pc advances.
    EXPECT_EQ(result.interned_automata, 4u * 6u);
    EXPECT_GT(result.dedup_hits, 0u);
  }
}

TEST(EngineStats, SurfacesFlyweightAccounting) {
  const auto result = run_with_workers("bakery", 3, 1);
  ASSERT_TRUE(result.ok) << result.violation;
  EXPECT_GT(result.dedup_hits, 0u);
  EXPECT_GT(result.interned_automata, 0u);
  EXPECT_GT(result.interned_regfiles, 0u);
  EXPECT_GT(result.peak_memory_bytes, 0u);
  // Flyweight premise: distinct local states and register files are both
  // vastly fewer than states (that is why interning pays).
  EXPECT_LT(result.interned_automata, result.states / 4);
  EXPECT_LT(result.interned_regfiles, result.states);
}

}  // namespace
}  // namespace melb
