// Flyweight state-space engine tests: the flat visited set, the closed
// store / compressed edge stream (including disk spill round trips),
// worker-count determinism of results/traces/statistics, counterexample
// reconstruction by parent-chain replay (against a golden PR-3 trace and
// across closed-chunk/spill boundaries), parallel check_all_subsets,
// checker conformance on the RMW lock algorithms, and a wide-branching
// fixture that forces the state table to reallocate many times
// mid-exploration (the regression surface for the old engine's dangling
// automaton reference across states.push_back).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <algorithm>
#include <stdexcept>

#include "algo/automaton_base.h"
#include "algo/registry.h"
#include "check/closed_store.h"
#include "check/model_checker.h"
#include "check/state_set.h"
#include "sim/execution.h"
#include "sim/simulator.h"
#include "sim/symmetry.h"
#include "util/hash.h"
#include "util/permutation.h"

#include "testing_util.h"

namespace melb {
namespace {

using sim::CritKind;
using sim::Pid;
using sim::Step;
using sim::Value;

// ---------------------------------------------------------------------------
// FlatStateSet / StripedStateSet.
// ---------------------------------------------------------------------------

TEST(FlatStateSet, ReserveCommitLookup) {
  check::FlatStateSet set;
  const auto first = set.find_or_reserve(0xabcdef);
  EXPECT_FALSE(first.found);
  set.commit(0xabcdef, 42);

  const auto again = set.find_or_reserve(0xabcdef);
  EXPECT_TRUE(again.found);
  EXPECT_EQ(again.idx, 42u);
  EXPECT_EQ(set.lookup(0xabcdef), 42u);
  EXPECT_EQ(set.size(), 1u);
}

TEST(FlatStateSet, PendingVisibleBeforeCommit) {
  check::FlatStateSet set;
  ASSERT_FALSE(set.find_or_reserve(7).found);
  const auto dup = set.find_or_reserve(7);
  EXPECT_TRUE(dup.found);
  EXPECT_EQ(dup.idx, check::FlatStateSet::kPending);
  set.commit(7, 3);
  EXPECT_EQ(set.lookup(7), 3u);
}

TEST(FlatStateSet, GrowthPreservesEntries) {
  check::FlatStateSet set(64);
  // Insert far past the initial capacity to force several rehashes, with
  // adversarially similar keys (zobrist gives well-mixed fingerprints; raw
  // sequential keys stress the probe remix).
  constexpr std::uint32_t kCount = 5000;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    const auto probe = set.find_or_reserve(i);
    ASSERT_FALSE(probe.found) << i;
    set.commit(i, i);
  }
  EXPECT_EQ(set.size(), kCount);
  EXPECT_GE(set.capacity(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(set.lookup(i), i);
  }
  EXPECT_GT(set.memory_bytes(), kCount * 12u);
}

TEST(StripedStateSet, RoutesAcrossStripesConsistently) {
  check::StripedStateSet set;
  std::set<std::size_t> stripes_used;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const std::uint64_t fp = util::zobrist(i, i * 31);
    stripes_used.insert(set.stripe_of(fp));
    ASSERT_FALSE(set.find_or_reserve(fp).found);
    set.commit(fp, static_cast<std::uint32_t>(i));
  }
  for (std::uint64_t i = 0; i < 2000; ++i) {
    ASSERT_EQ(set.lookup(util::zobrist(i, i * 31)), i);
  }
  EXPECT_EQ(set.size(), 2000u);
  // Mixed fingerprints must actually spread over the stripes.
  EXPECT_GT(stripes_used.size(), check::StripedStateSet::kStripes / 2);
}

// ---------------------------------------------------------------------------
// ClosedStore / EdgeStore / SpillFile.
// ---------------------------------------------------------------------------

TEST(ClosedStore, EntriesSurviveChunkBoundariesAndSpill) {
  check::ClosedStore store;
  constexpr std::uint32_t kCount = 3 * check::ClosedStore::kChunkEntries / 2;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    store.append(i * 7, static_cast<std::uint8_t>(i % 64));
  }
  ASSERT_EQ(store.size(), kCount);
  const std::uint64_t before = store.memory_bytes();

  check::SpillFile spill;
  EXPECT_TRUE(store.has_spillable_chunk());
  const std::uint64_t freed = store.spill_oldest(spill, 1);
  EXPECT_EQ(freed, check::ClosedStore::kChunkEntries * check::ClosedStore::kEntryBytes);
  EXPECT_EQ(spill.bytes_written(), freed);
  EXPECT_LT(store.memory_bytes(), before);
  // The tail chunk is still being appended to and must never spill.
  EXPECT_FALSE(store.has_spillable_chunk());

  // Every entry — spilled chunk 0, resident chunk 1 — reads back intact.
  for (std::uint32_t i = 0; i < kCount; i += 97) {
    const auto e = store.entry(i);
    EXPECT_EQ(e.parent, i * 7u) << i;
    EXPECT_EQ(e.pid, i % 64) << i;
  }
  // Appending after a spill keeps working.
  store.append(42, 7);
  EXPECT_EQ(store.entry(kCount).parent, 42u);
}

TEST(EdgeStore, RoundTripsMixedNewAndDedupEdges) {
  // Mimics the engine's contract: "new" edges target consecutive indices
  // starting at 1; dedup edges revisit arbitrary earlier states; `from` is
  // non-decreasing. Enough edges to cross several 256 KiB chunks.
  check::EdgeStore store;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> expected;
  std::uint32_t next_new = 1;
  std::uint32_t from = 0;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 400000; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    if ((rng >> 33) % 3 != 0) {
      store.append(from, next_new, true);
      expected.emplace_back(from, next_new);
      ++next_new;
    } else {
      const std::uint32_t to = static_cast<std::uint32_t>((rng >> 20) % next_new);
      store.append(from, to, false);
      expected.emplace_back(from, to);
    }
    if ((rng >> 40) % 4 == 0) from += static_cast<std::uint32_t>((rng >> 50) % 3);
  }
  ASSERT_EQ(store.size(), expected.size());
  // Far below the flat 8 bytes/edge (delta varints + implicit new targets).
  EXPECT_LT(store.memory_bytes(), expected.size() * 4);

  const auto verify = [&] {
    std::size_t i = 0;
    store.for_each([&](std::uint32_t f, std::uint32_t t) {
      ASSERT_LT(i, expected.size());
      EXPECT_EQ(f, expected[i].first) << i;
      EXPECT_EQ(t, expected[i].second) << i;
      ++i;
    });
    EXPECT_EQ(i, expected.size());
  };
  verify();

  // Spill everything spillable and decode again — the stream must be
  // byte-identical when read back from disk.
  check::SpillFile spill;
  ASSERT_TRUE(store.has_spillable_chunk());
  const std::uint64_t before = store.memory_bytes();
  EXPECT_GT(store.spill_oldest(spill, 1000), 0u);
  EXPECT_LT(store.memory_bytes(), before);
  verify();
}

// ---------------------------------------------------------------------------
// FingerprintRuns: the sort-merge half of delayed duplicate detection.
// ---------------------------------------------------------------------------

using Query = std::pair<std::uint64_t, std::uint32_t>;

std::vector<Query> merge_hits(const check::FingerprintRuns& runs,
                              const std::vector<Query>& queries) {
  std::vector<Query> hits;  // (payload, idx), sorted by payload — the merge
  runs.merge(queries.data(), queries.size(),  // reports hits grouped per run
             [&](std::uint32_t payload, std::uint32_t idx) {
               hits.emplace_back(payload, idx);
             });
  std::sort(hits.begin(), hits.end());
  return hits;
}

TEST(FingerprintRuns, MergeFindsDuplicatesStraddlingRunAndChunkBoundaries) {
  // Two runs with interleaved fingerprint ranges, each long enough to span
  // multiple chunks: run A holds even fps, run B odd fps, so every chunk of
  // each run overlaps the other run's range and a query batch can contain
  // adjacent duplicates that live in *different* runs.
  constexpr std::size_t kCount = 2 * check::FingerprintRuns::kChunkRecords + 100;
  std::vector<std::uint64_t> even_fps(kCount), odd_fps(kCount);
  std::vector<std::uint32_t> even_idx(kCount), odd_idx(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    even_fps[i] = 2 * i;
    even_idx[i] = static_cast<std::uint32_t>(i);
    odd_fps[i] = 2 * i + 1;
    odd_idx[i] = static_cast<std::uint32_t>(1'000'000 + i);
  }
  check::FingerprintRuns runs;
  runs.append_run(even_fps.data(), even_idx.data(), kCount);
  runs.append_run(odd_fps.data(), odd_idx.data(), kCount);
  EXPECT_EQ(runs.run_count(), 2u);
  EXPECT_EQ(runs.size(), 2 * kCount);

  // Queries: the exact records on both sides of every chunk boundary
  // (positions kChunkRecords-1 / kChunkRecords in each run), an adjacent
  // even/odd pair that straddles the two runs, the global first/last
  // records, and misses (below, between, above).
  const std::size_t cb = check::FingerprintRuns::kChunkRecords;
  std::vector<Query> queries = {
      {0, 0},                        // first record of run A
      {2 * (cb - 1), 1},             // last record of run A chunk 0
      {2 * cb, 2},                   // first record of run A chunk 1
      {2 * cb + 1, 3},               // …and its odd twin in run B chunk 1
      {2 * (kCount - 1), 4},         // last record of run A
      {2 * (kCount - 1) + 1, 5},     // last record of run B
      {2 * kCount + 2, 6},           // miss: above both runs
      {2 * kCount + 9, 7},           // miss
  };
  const auto hits = merge_hits(runs, queries);
  ASSERT_EQ(hits.size(), 6u);
  EXPECT_EQ(hits[0], Query(0, 0u));
  EXPECT_EQ(hits[1], Query(1, static_cast<std::uint32_t>(cb - 1)));
  EXPECT_EQ(hits[2], Query(2, static_cast<std::uint32_t>(cb)));
  EXPECT_EQ(hits[4], Query(4, static_cast<std::uint32_t>(kCount - 1)));
  // Run B hits carry run B's index space.
  EXPECT_EQ(hits[3], Query(3, static_cast<std::uint32_t>(1'000'000 + cb)));
  EXPECT_EQ(hits[5], Query(5, static_cast<std::uint32_t>(1'000'000 + kCount - 1)));
}

TEST(FingerprintRuns, EmptyRunsAreRecordedAndMergeSkipsThem) {
  check::FingerprintRuns runs;
  runs.append_run(nullptr, nullptr, 0);  // a BFS level with no new states
  const std::uint64_t fps[] = {5, 9};
  const std::uint32_t idxs[] = {50, 90};
  runs.append_run(fps, idxs, 2);
  runs.append_run(nullptr, nullptr, 0);
  EXPECT_EQ(runs.run_count(), 3u);
  EXPECT_EQ(runs.size(), 2u);

  const std::vector<Query> queries = {{4, 0}, {5, 1}, {9, 2}, {10, 3}};
  const auto hits = merge_hits(runs, queries);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], Query(1, 50u));
  EXPECT_EQ(hits[1], Query(2, 90u));

  // Merging an empty query batch against empty-run-bearing storage is a
  // no-op, not a crash.
  EXPECT_TRUE(merge_hits(runs, {}).empty());
}

TEST(FingerprintRuns, SpilledChunksMergeIdentically) {
  constexpr std::size_t kCount = 3 * check::FingerprintRuns::kChunkRecords / 2;
  std::vector<std::uint64_t> fps(kCount);
  std::vector<std::uint32_t> idxs(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    fps[i] = 3 * i + 1;
    idxs[i] = static_cast<std::uint32_t>(i * 7);
  }
  check::FingerprintRuns runs;
  runs.append_run(fps.data(), idxs.data(), kCount);

  std::vector<Query> queries;
  for (std::size_t i = 0; i < kCount; i += 53) {
    queries.emplace_back(3 * i + 1, static_cast<std::uint32_t>(i));
  }
  queries.emplace_back(3 * kCount + 5, 0xdeadu);  // miss above the run
  const auto before = merge_hits(runs, queries);
  ASSERT_EQ(before.size(), queries.size() - 1);

  // Unlike ClosedStore/EdgeStore, every run chunk is spillable — runs are
  // immutable — so the resident bytes drop to (near) zero.
  check::SpillFile spill;
  ASSERT_TRUE(runs.has_spillable_chunk());
  const std::uint64_t resident_before = runs.memory_bytes();
  EXPECT_EQ(runs.spill_oldest(spill, 1000),
            kCount * check::FingerprintRuns::kRecordBytes);
  EXPECT_FALSE(runs.has_spillable_chunk());
  EXPECT_LT(runs.memory_bytes(), resident_before / 2);

  EXPECT_EQ(merge_hits(runs, queries), before);
}

// ---------------------------------------------------------------------------
// EdgeStore reverse streaming (the progress pass's access pattern).
// ---------------------------------------------------------------------------

TEST(EdgeStore, ReverseStreamIsExactlyTheForwardStreamReversed) {
  check::EdgeStore store;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> expected;
  std::uint32_t next_new = 1;
  std::uint32_t from = 0;
  std::uint64_t rng = 0x2545f4914f6cdd1dull;
  for (int i = 0; i < 300000; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    if ((rng >> 33) % 3 != 0) {
      store.append(from, next_new, true);
      expected.emplace_back(from, next_new);
      ++next_new;
    } else {
      const std::uint32_t to = static_cast<std::uint32_t>((rng >> 20) % next_new);
      store.append(from, to, false);
      expected.emplace_back(from, to);
    }
    if ((rng >> 40) % 4 == 0) from += static_cast<std::uint32_t>((rng >> 50) % 3);
  }

  const auto verify_reverse = [&] {
    std::size_t i = expected.size();
    const std::uint64_t scratch =
        store.for_each_reverse([&](std::uint32_t f, std::uint32_t t) {
          ASSERT_GT(i, 0u);
          --i;
          EXPECT_EQ(f, expected[i].first) << i;
          EXPECT_EQ(t, expected[i].second) << i;
        });
    EXPECT_EQ(i, 0u);
    // The walk's transient memory is chunk-sized, not edge-list-sized.
    EXPECT_GT(scratch, 0u);
    EXPECT_LT(scratch, expected.size() * sizeof(std::pair<std::uint32_t, std::uint32_t>));
  };
  verify_reverse();

  // Spilled chunks decode standalone from their recorded start state.
  check::SpillFile spill;
  ASSERT_TRUE(store.has_spillable_chunk());
  EXPECT_GT(store.spill_oldest(spill, 1000), 0u);
  verify_reverse();
}

// ---------------------------------------------------------------------------
// Worker-count determinism: results, traces, and statistics byte-identical.
// ---------------------------------------------------------------------------

void expect_identical(const check::CheckResult& a, const check::CheckResult& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.exhausted_limit, b.exhausted_limit);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.dedup_hits, b.dedup_hits);
  EXPECT_EQ(a.interned_automata, b.interned_automata);
  EXPECT_EQ(a.interned_regfiles, b.interned_regfiles);
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes);
  EXPECT_EQ(a.peak_visited_bytes, b.peak_visited_bytes);
  EXPECT_EQ(a.progress_peak_bytes, b.progress_peak_bytes);
  EXPECT_EQ(a.spilled_bytes, b.spilled_bytes);
  EXPECT_EQ(a.ddd_runs, b.ddd_runs);
  EXPECT_EQ(a.symmetry_group, b.symmetry_group);
  ASSERT_EQ(a.counterexample.has_value(), b.counterexample.has_value());
  if (a.counterexample) {
    EXPECT_EQ(*a.counterexample, *b.counterexample);
  }
}

// DDD and hash-table mode differ in where bytes live (peak/visited/spill
// statistics), but the exploration itself — results, traces, and every
// counting statistic — must be identical.
void expect_same_exploration(const check::CheckResult& a, const check::CheckResult& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.exhausted_limit, b.exhausted_limit);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.dedup_hits, b.dedup_hits);
  EXPECT_EQ(a.interned_automata, b.interned_automata);
  EXPECT_EQ(a.interned_regfiles, b.interned_regfiles);
  EXPECT_EQ(a.symmetry_group, b.symmetry_group);
  ASSERT_EQ(a.counterexample.has_value(), b.counterexample.has_value());
  if (a.counterexample) {
    EXPECT_EQ(*a.counterexample, *b.counterexample);
  }
}

check::CheckResult run_with_workers(const std::string& algorithm, int n, int workers,
                                    std::uint64_t max_states = 4'000'000) {
  check::CheckOptions options;
  options.workers = workers;
  options.max_states = max_states;
  return check::check_algorithm(*algo::algorithm_by_name(algorithm).algorithm, n, options);
}

TEST(EngineDeterminism, CorrectAlgorithmAcrossWorkerCounts) {
  const auto serial = run_with_workers("yang-anderson", 3, 1);
  ASSERT_TRUE(serial.ok) << serial.violation;
  for (int workers : {2, 4, 8}) {
    expect_identical(serial, run_with_workers("yang-anderson", 3, workers));
  }
}

TEST(EngineDeterminism, CounterexampleTraceOnBrokenAlgorithm) {
  // The deliberately broken fixture: 4-worker exploration must report the
  // same violation with a byte-identical counterexample trace (lowest-index
  // parent wins), and the trace must replay to a real violation.
  const auto serial = run_with_workers("naive-broken", 3, 1);
  const auto parallel = run_with_workers("naive-broken", 3, 4);
  EXPECT_FALSE(serial.ok);
  expect_identical(serial, parallel);
  ASSERT_TRUE(parallel.counterexample.has_value());

  const auto& info = algo::algorithm_by_name("naive-broken");
  const auto exec = sim::validate_steps(*info.algorithm, 3, *parallel.counterexample);
  EXPECT_NE(sim::check_mutual_exclusion(exec, 3), "");
}

TEST(EngineDeterminism, LivelockTraceOnSubset) {
  check::CheckOptions serial_options;
  serial_options.participants = {1};
  auto parallel_options = serial_options;
  parallel_options.workers = 4;
  const auto& info = algo::algorithm_by_name("static-rr");
  const auto serial = check::check_algorithm(*info.algorithm, 2, serial_options);
  const auto parallel = check::check_algorithm(*info.algorithm, 2, parallel_options);
  EXPECT_FALSE(serial.ok);
  EXPECT_NE(serial.violation.find("progress"), std::string::npos);
  expect_identical(serial, parallel);
}

TEST(EngineDeterminism, StateLimitAcrossWorkerCounts) {
  const auto serial = run_with_workers("bakery", 3, 1, 50);
  const auto parallel = run_with_workers("bakery", 3, 4, 50);
  EXPECT_TRUE(serial.exhausted_limit);
  expect_identical(serial, parallel);
}

// ---------------------------------------------------------------------------
// Trace reconstruction from the closed store. Traces are no longer read out
// of full state records: the engine walks the packed (parent, pid) chain and
// replays it through the memoized δ. These tests pin the replay to the PR-3
// engine's output (golden steps), across worker counts, and across closed-
// chunk and spill boundaries.
// ---------------------------------------------------------------------------

std::string trace_string(const check::CheckResult& result) {
  std::string s;
  if (!result.counterexample) return s;
  for (const auto& step : *result.counterexample) s += to_string(step) + "|";
  return s;
}

TEST(TraceReconstruction, MatchesPr3GoldenTrace) {
  // Captured verbatim from the PR-3 engine (commit e176920):
  // melb_cli check naive-broken 3.
  const std::string kGolden =
      "try_0|read_0(r0)|try_1|read_1(r0)|write_0(r0, 1)|enter_0|write_1(r0, 1)|"
      "enter_1|";
  for (int workers : {1, 2, 8}) {
    const auto result = run_with_workers("naive-broken", 3, workers);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(trace_string(result), kGolden) << workers << " workers";
  }
}

// Two unguarded processes with 300 spin-writes before the critical section:
// the first mutex violation sits ~600 BFS levels deep, behind >80k states —
// past a ClosedStore chunk boundary (65536 entries), so the parent-chain
// walk crosses chunks (and, under a memory limit, reads spilled chunks back
// from disk).
class SlowEntrantProcess final : public algo::CloneableAutomaton<SlowEntrantProcess> {
 public:
  static constexpr int kSpinWrites = 300;

  explicit SlowEntrantProcess(Pid pid) : pid_(pid) {}

  Step propose() const override {
    if (pc_ == 0) return Step::crit_step(pid_, CritKind::kTry);
    if (pc_ <= kSpinWrites) return Step::write(pid_, pid_, pc_);
    switch (pc_ - kSpinWrites) {
      case 1: return Step::crit_step(pid_, CritKind::kEnter);
      case 2: return Step::crit_step(pid_, CritKind::kExit);
      default: break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value) override {
    if (pc_ < kSpinWrites + 4) ++pc_;
  }

  bool done() const override { return pc_ == kSpinWrites + 4; }

  void hash_into(util::Hasher& hasher) const { hasher.add_all({pc_, pid_}); }

 private:
  Pid pid_;
  int pc_ = 0;
};

class SlowEntrantAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "slow-entrant-fixture"; }
  int num_registers(int n) const override { return n; }
  std::unique_ptr<sim::Automaton> make_process(Pid pid, int) const override {
    return std::make_unique<SlowEntrantProcess>(pid);
  }
};

TEST(TraceReconstruction, DeepTraceAcrossChunkAndSpillBoundaries) {
  SlowEntrantAlgorithm algorithm;
  check::CheckOptions options;
  options.max_states = 200'000;

  const auto reference = check::check_algorithm(algorithm, 2, options);
  ASSERT_FALSE(reference.ok);
  EXPECT_NE(reference.violation.find("mutual exclusion"), std::string::npos);
  ASSERT_TRUE(reference.counterexample.has_value());
  // The violation sits past the first closed chunk, and the trace replays
  // the full parent chain: 2 * (kSpinWrites + 2) steps.
  EXPECT_GT(reference.states, check::ClosedStore::kChunkEntries);
  EXPECT_EQ(reference.counterexample->size(),
            2 * (SlowEntrantProcess::kSpinWrites + 2));

  for (int workers : {2, 8}) {
    auto parallel_options = options;
    parallel_options.workers = workers;
    expect_identical(reference, check::check_algorithm(algorithm, 2, parallel_options));
  }

  // A 1 MiB budget forces the early closed chunks out to disk before the
  // violation is found; the reconstructed trace must not change.
  for (int workers : {1, 4}) {
    auto spill_options = options;
    spill_options.memory_limit_mb = 1;
    spill_options.workers = workers;
    const auto spilled = check::check_algorithm(algorithm, 2, spill_options);
    EXPECT_GT(spilled.spilled_bytes, 0u) << workers << " workers";
    EXPECT_EQ(spilled.violation, reference.violation);
    EXPECT_EQ(spilled.states, reference.states);
    EXPECT_EQ(trace_string(spilled), trace_string(reference)) << workers << " workers";
  }
}

// ---------------------------------------------------------------------------
// Memory limit: spilling changes where bytes live, never what is computed.
// ---------------------------------------------------------------------------

TEST(MemoryLimit, SpillPreservesResultsAndShrinksPeak) {
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions unlimited;
  unlimited.max_states = 4'000'000;
  const auto reference = check::check_algorithm(*info.algorithm, 3, unlimited);
  ASSERT_TRUE(reference.ok) << reference.violation;
  ASSERT_EQ(reference.spilled_bytes, 0u);

  auto limited = unlimited;
  limited.memory_limit_mb = 1;
  const auto spilled = check::check_algorithm(*info.algorithm, 3, limited);
  EXPECT_TRUE(spilled.ok) << spilled.violation;
  EXPECT_EQ(spilled.states, reference.states);
  EXPECT_EQ(spilled.transitions, reference.transitions);
  EXPECT_EQ(spilled.dedup_hits, reference.dedup_hits);
  EXPECT_EQ(spilled.interned_automata, reference.interned_automata);
  EXPECT_EQ(spilled.interned_regfiles, reference.interned_regfiles);
  EXPECT_GT(spilled.spilled_bytes, 0u);
  EXPECT_LT(spilled.peak_memory_bytes, reference.peak_memory_bytes);
}

TEST(MemoryLimit, SpillIsDeterministicAcrossWorkerCounts) {
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions options;
  options.max_states = 4'000'000;
  options.memory_limit_mb = 1;
  const auto serial = check::check_algorithm(*info.algorithm, 3, options);
  ASSERT_TRUE(serial.ok) << serial.violation;
  EXPECT_GT(serial.spilled_bytes, 0u);
  for (int workers : {2, 4}) {
    auto parallel_options = options;
    parallel_options.workers = workers;
    expect_identical(serial, check::check_algorithm(*info.algorithm, 3, parallel_options));
  }
}

// ---------------------------------------------------------------------------
// check_all_subsets: the 2^n - 1 independent subset checks run on a shared
// pool when workers > 1; results must match the serial mask-order loop.
// ---------------------------------------------------------------------------

TEST(ParallelSubsets, MatchesSerialOnCorrectAlgorithm) {
  const auto& info = algo::algorithm_by_name("ttas-rmw");
  check::CheckOptions serial_options;
  serial_options.max_states = 4'000'000;
  const auto serial = check::check_all_subsets(*info.algorithm, 3, serial_options);
  ASSERT_TRUE(serial.ok) << serial.violation;
  for (int workers : {2, 8}) {
    auto parallel_options = serial_options;
    parallel_options.workers = workers;
    expect_identical(serial, check::check_all_subsets(*info.algorithm, 3, parallel_options));
  }
}

TEST(ParallelSubsets, ReportsLowestFailingSubsetLikeSerial) {
  // static-rr passes with all participants but livelocks on {1}; the
  // parallel merge must return the same lowest failing subset, violation
  // string, and trace as the serial mask-order scan.
  const auto& info = algo::algorithm_by_name("static-rr");
  const auto serial = check::check_all_subsets(*info.algorithm, 2);
  check::CheckOptions parallel_options;
  parallel_options.workers = 4;
  const auto parallel = check::check_all_subsets(*info.algorithm, 2, parallel_options);
  EXPECT_FALSE(serial.ok);
  EXPECT_NE(serial.violation.find("[participants {1}]"), std::string::npos)
      << serial.violation;
  expect_identical(serial, parallel);
}

// ---------------------------------------------------------------------------
// Delayed duplicate detection: the sort-merge visited set must explore the
// exact same space as the hash table — states, transitions, dedup hits,
// interning, traces — with its RAM-mandatory part bounded by the level
// window instead of total states.
// ---------------------------------------------------------------------------

TEST(DelayedDedup, MatchesHashTableModeAcrossWorkerCounts) {
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions hash_options;
  hash_options.max_states = 4'000'000;
  const auto reference = check::check_algorithm(*info.algorithm, 3, hash_options);
  ASSERT_TRUE(reference.ok) << reference.violation;

  auto ddd_options = hash_options;
  ddd_options.ddd = true;
  const auto ddd_serial = check::check_algorithm(*info.algorithm, 3, ddd_options);
  expect_same_exploration(reference, ddd_serial);
  EXPECT_GT(ddd_serial.ddd_runs, 0u);
  // The point of the mode: the visited structure no longer scales with
  // total states (the hash table held all 59k fingerprints; the DDD hot
  // window holds about a level's worth).
  EXPECT_LT(ddd_serial.peak_visited_bytes, reference.peak_visited_bytes / 4);

  for (int workers : {2, 4, 8}) {
    auto parallel = ddd_options;
    parallel.workers = workers;
    expect_identical(ddd_serial, check::check_algorithm(*info.algorithm, 3, parallel));
  }
}

TEST(DelayedDedup, YangAndersonN4StateCountsAcrossWorkerCounts) {
  // The ISSUE's acceptance fixture at gtest scale: yang-anderson n=4 under a
  // 2M-state cap (the full 5.9M-state run is the cli.check_ddd_determinism
  // ctest entry and the Release CI step). The cap also exercises the
  // exhaustion abort drain through the DDD batch pipeline.
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions hash_options;
  hash_options.max_states = 2'000'000;
  const auto reference = check::check_algorithm(*info.algorithm, 4, hash_options);
  EXPECT_TRUE(reference.exhausted_limit);

  auto ddd_options = hash_options;
  ddd_options.ddd = true;
  check::CheckResult ddd_serial;
  for (int workers : {1, 2, 4, 8}) {
    auto options = ddd_options;
    options.workers = workers;
    const auto result = check::check_algorithm(*info.algorithm, 4, options);
    expect_same_exploration(reference, result);
    if (workers == 1) {
      ddd_serial = result;
    } else {
      expect_identical(ddd_serial, result);  // full stats, not just counts
    }
  }
}

TEST(DelayedDedup, RunFlushMidLevelUnderBudget) {
  // A small batch cap slices every wide level into many batches, and a 1 MiB
  // budget forces the pressure-relief path at those batch checkpoints: hot
  // window levels are evicted into runs (and run chunks spilled) while the
  // level that queries them is still in flight. Exploration must not notice.
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions hash_options;
  hash_options.max_states = 4'000'000;
  const auto reference = check::check_algorithm(*info.algorithm, 3, hash_options);

  auto relaxed = hash_options;
  relaxed.ddd = true;
  const auto unpressured = check::check_algorithm(*info.algorithm, 3, relaxed);

  auto squeezed = relaxed;
  squeezed.batch_candidates = 2048;
  squeezed.memory_limit_mb = 1;
  const auto pressured = check::check_algorithm(*info.algorithm, 3, squeezed);
  expect_same_exploration(reference, pressured);
  EXPECT_GT(pressured.spilled_bytes, 0u);
  // Pressure evicts window levels that would otherwise have stayed hot, so
  // more sorted runs form than the no-budget rotation produces.
  EXPECT_GT(pressured.ddd_runs, unpressured.ddd_runs);

  for (int workers : {2, 4}) {
    auto parallel = squeezed;
    parallel.workers = workers;
    expect_identical(pressured, check::check_algorithm(*info.algorithm, 3, parallel));
  }
}

TEST(DelayedDedup, WindowSizeIsAPurePerformanceKnob) {
  const auto& info = algo::algorithm_by_name("bakery");
  check::CheckOptions options;
  options.max_states = 4'000'000;
  const auto reference = check::check_algorithm(*info.algorithm, 3, options);
  for (int window : {1, 3, 16}) {
    auto ddd_options = options;
    ddd_options.ddd = true;
    ddd_options.ddd_window = window;
    expect_same_exploration(reference,
                            check::check_algorithm(*info.algorithm, 3, ddd_options));
  }
}

TEST(DelayedDedup, ViolationTracesMatchHashTableMode) {
  // Mutex violation: the golden-trace fixture must reconstruct the same
  // counterexample whether the duplicate detection was immediate or delayed.
  const auto hash_result = run_with_workers("naive-broken", 3, 1);
  check::CheckOptions ddd_options;
  ddd_options.max_states = 4'000'000;
  ddd_options.ddd = true;
  for (int workers : {1, 4}) {
    ddd_options.workers = workers;
    const auto result = check::check_algorithm(
        *algo::algorithm_by_name("naive-broken").algorithm, 3, ddd_options);
    expect_same_exploration(hash_result, result);
  }

  // Livelock violation on a participation subset (empty-terminal-set path
  // through the external-memory progress pass).
  check::CheckOptions subset_options;
  subset_options.participants = {1};
  const auto& info = algo::algorithm_by_name("static-rr");
  const auto hash_livelock = check::check_algorithm(*info.algorithm, 2, subset_options);
  subset_options.ddd = true;
  const auto ddd_livelock = check::check_algorithm(*info.algorithm, 2, subset_options);
  EXPECT_FALSE(ddd_livelock.ok);
  expect_same_exploration(hash_livelock, ddd_livelock);
}

TEST(DelayedDedup, DeepTraceWithBudgetMatchesHash) {
  // The SlowEntrant fixture's violation sits ~600 levels deep behind a
  // closed-chunk boundary; with DDD plus a 1 MiB budget the parent-chain
  // replay reads spilled closed chunks while the dedup ran entirely on
  // sort-merged runs.
  SlowEntrantAlgorithm algorithm;
  check::CheckOptions options;
  options.max_states = 200'000;
  const auto reference = check::check_algorithm(algorithm, 2, options);
  ASSERT_FALSE(reference.ok);

  options.ddd = true;
  options.memory_limit_mb = 1;
  for (int workers : {1, 4}) {
    options.workers = workers;
    const auto result = check::check_algorithm(algorithm, 2, options);
    EXPECT_GT(result.spilled_bytes, 0u) << workers << " workers";
    expect_same_exploration(reference, result);
  }
}

TEST(ProgressPass, ExternalMemoryFootprintIsSurfacedAndSmall) {
  const auto& info = algo::algorithm_by_name("bakery");
  check::CheckOptions options;
  options.max_states = 4'000'000;
  const auto result = check::check_algorithm(*info.algorithm, 3, options);
  ASSERT_TRUE(result.ok) << result.violation;
  EXPECT_GT(result.progress_peak_bytes, 0u);
  // The pass keeps one bit per state plus chunk-bounded scratch (one decoded
  // edge chunk at a time): an absolute bound that does not grow with the
  // edge count, unlike the predecessor CSR it replaced (4 B per edge + 4 B
  // per state — the asymptotic comparison at scale is bench_model_checker's
  // E13 report, where the CSR would be ~97 MiB on yang-anderson n=4).
  const std::uint64_t chunk_scratch_bound =
      check::EdgeStore::kChunkBytes * (sizeof(std::uint32_t) * 2 + 1);
  EXPECT_LT(result.progress_peak_bytes, result.states / 8 + chunk_scratch_bound);

  auto no_progress = options;
  no_progress.check_progress = false;
  EXPECT_EQ(check::check_algorithm(*info.algorithm, 3, no_progress).progress_peak_bytes,
            0u);
}

// ---------------------------------------------------------------------------
// Checker conformance on the RMW lock algorithms.
// ---------------------------------------------------------------------------

class CheckerOnRmw : public ::testing::TestWithParam<const char*> {};

TEST_P(CheckerOnRmw, ExhaustiveN2) {
  const auto& info = algo::algorithm_by_name(GetParam());
  const auto result = check::check_algorithm(*info.algorithm, 2);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.exhausted_limit);
  EXPECT_GT(result.states, 10u);
}

TEST_P(CheckerOnRmw, ExhaustiveN3) {
  const auto& info = algo::algorithm_by_name(GetParam());
  check::CheckOptions options;
  options.max_states = 4'000'000;
  const auto result = check::check_algorithm(*info.algorithm, 3, options);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.exhausted_limit);
}

TEST_P(CheckerOnRmw, AllParticipantSubsetsN3) {
  const auto& info = algo::algorithm_by_name(GetParam());
  check::CheckOptions options;
  options.max_states = 4'000'000;
  const auto result = check::check_all_subsets(*info.algorithm, 3, options);
  EXPECT_TRUE(result.ok) << result.violation;
}

INSTANTIATE_TEST_SUITE_P(RmwLocks, CheckerOnRmw,
                         ::testing::Values("ttas-rmw", "ticket-rmw", "mcs-rmw"),
                         testing_util::AlgorithmNameGenerator());

// ---------------------------------------------------------------------------
// Pid-symmetry reduction: the quotient must hold exactly one representative
// per orbit, every statistic must stay worker-invariant, the mode must
// compose with DDD and the memory limit, and witness-chain trace replay must
// reconstruct concrete executions.
// ---------------------------------------------------------------------------

// Fully symmetric fixture with a hand-countable orbit structure: n identical
// processes, each a 6-pc chain (try, read r0, enter, exit, rem, done) that
// never writes, over one shared register. Processes are independent, so the
// plain space is exactly 6^n pc-vectors, the full S_n acts by permuting the
// vector, and the orbits are precisely the pc-multisets — enumerable in the
// test without consulting the engine.
class SymSpinProcess final : public algo::CloneableAutomaton<SymSpinProcess> {
 public:
  explicit SymSpinProcess(Pid pid) : pid_(pid) {}

  Step propose() const override {
    switch (pc_) {
      case 0: return Step::crit_step(pid_, CritKind::kTry);
      case 1: return Step::read(pid_, 0);
      case 2: return Step::crit_step(pid_, CritKind::kEnter);
      case 3: return Step::crit_step(pid_, CritKind::kExit);
      default: break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value) override {
    if (pc_ < 5) ++pc_;
  }

  bool done() const override { return pc_ == 5; }

  std::unique_ptr<sim::Automaton> relabeled(const util::Permutation& sigma,
                                            int) const override {
    auto twin = std::make_unique<SymSpinProcess>(sigma.at(pid_));
    twin->pc_ = pc_;
    return twin;
  }

  void hash_into(util::Hasher& hasher) const { hasher.add_all({pc_, pid_}); }

 private:
  Pid pid_;
  int pc_ = 0;
};

class SymSpinAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "sym-spin-fixture"; }
  int num_registers(int) const override { return 1; }
  std::unique_ptr<sim::Automaton> make_process(Pid pid, int) const override {
    return std::make_unique<SymSpinProcess>(pid);
  }
  const sim::PidSymmetry& pid_symmetry() const override {
    return sim::shared_register_symmetry();
  }
};

TEST(SymmetryReduction, StoresExactlyOneRepresentativePerOrbit) {
  SymSpinAlgorithm algorithm;
  check::CheckOptions options;
  options.check_mutex = false;  // all n may sit in the CS at once

  const auto plain = check::check_algorithm(algorithm, 4, options);
  ASSERT_TRUE(plain.ok) << plain.violation;
  EXPECT_EQ(plain.states, 1296u);  // 6^4 independent pc-vectors
  EXPECT_EQ(plain.symmetry_group, 0u);

  auto sym_options = options;
  sym_options.symmetry = true;
  const auto sym = check::check_algorithm(algorithm, 4, sym_options);
  ASSERT_TRUE(sym.ok) << sym.violation;
  EXPECT_EQ(sym.symmetry_group, 24u);  // full S_4

  // Independent orbit enumeration: two states are equivalent iff their
  // pc-vectors are permutations of each other, so the orbits are the sorted
  // pc-vectors of the 6^4 reachable states.
  std::set<std::vector<int>> orbits;
  for (int code = 0; code < 1296; ++code) {
    std::vector<int> pcs(4);
    int v = code;
    for (int p = 0; p < 4; ++p) {
      pcs[p] = v % 6;
      v /= 6;
    }
    std::sort(pcs.begin(), pcs.end());
    orbits.insert(pcs);
  }
  ASSERT_EQ(orbits.size(), 126u);  // multisets: C(4+5, 5)
  EXPECT_EQ(sym.states, orbits.size());
}

TEST(SymmetryReduction, DeterministicAcrossWorkerCounts) {
  check::CheckOptions options;
  options.max_states = 4'000'000;
  options.symmetry = true;
  const auto& info = algo::algorithm_by_name("yang-anderson");
  const auto serial = check::check_algorithm(*info.algorithm, 3, options);
  ASSERT_TRUE(serial.ok) << serial.violation;
  // Yang–Anderson's group at n=3 is the 2-element tree automorphism swapping
  // the two leaves under the root; the quotient is half the plain space.
  EXPECT_EQ(serial.symmetry_group, 2u);
  const auto plain = run_with_workers("yang-anderson", 3, 1);
  EXPECT_LT(serial.states, plain.states);
  EXPECT_GE(serial.states * 2, plain.states);

  for (int workers : {2, 4, 8}) {
    auto parallel = options;
    parallel.workers = workers;
    expect_identical(serial, check::check_algorithm(*info.algorithm, 3, parallel));
  }
}

TEST(SymmetryReduction, IdentityGroupMatchesPlainStateForState) {
  // bakery declares no symmetry action, so the group degenerates to {id} and
  // exploration must be byte-for-byte the plain one (modulo the witness-mode
  // closed store growing records from 5 to 6 bytes, which shifts memory
  // statistics only).
  const auto& info = algo::algorithm_by_name("bakery");
  check::CheckOptions options;
  options.max_states = 4'000'000;
  const auto plain = check::check_algorithm(*info.algorithm, 3, options);
  options.symmetry = true;
  const auto sym = check::check_algorithm(*info.algorithm, 3, options);
  EXPECT_EQ(sym.symmetry_group, 1u);
  EXPECT_EQ(sym.ok, plain.ok);
  EXPECT_EQ(sym.states, plain.states);
  EXPECT_EQ(sym.transitions, plain.transitions);
  EXPECT_EQ(sym.dedup_hits, plain.dedup_hits);
  EXPECT_EQ(sym.interned_automata, plain.interned_automata);
  EXPECT_EQ(sym.interned_regfiles, plain.interned_regfiles);
  EXPECT_EQ(sym.counterexample.has_value(), plain.counterexample.has_value());
}

TEST(SymmetryReduction, ComposesWithDddAndMemoryLimit) {
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions options;
  options.max_states = 4'000'000;
  options.symmetry = true;
  const auto reference = check::check_algorithm(*info.algorithm, 3, options);
  ASSERT_TRUE(reference.ok) << reference.violation;

  auto squeezed = options;
  squeezed.ddd = true;
  squeezed.memory_limit_mb = 1;
  squeezed.batch_candidates = 2048;
  check::CheckResult first;
  for (int workers : {1, 4}) {
    squeezed.workers = workers;
    const auto result = check::check_algorithm(*info.algorithm, 3, squeezed);
    expect_same_exploration(reference, result);
    EXPECT_GT(result.ddd_runs, 0u) << workers << " workers";
    EXPECT_GT(result.spilled_bytes, 0u) << workers << " workers";
    if (workers == 1) {
      first = result;
    } else {
      expect_identical(first, result);
    }
  }
}

TEST(SymmetryReduction, CounterexampleReplaysAsConcreteExecution) {
  // The stored trace chain runs through orbit representatives; replay must
  // invert the witness permutations back to a concrete execution that the
  // simulator accepts and that really violates mutual exclusion.
  const auto& info = algo::algorithm_by_name("naive-broken");
  check::CheckOptions options;
  options.symmetry = true;
  const auto serial = check::check_algorithm(*info.algorithm, 3, options);
  EXPECT_FALSE(serial.ok);
  EXPECT_NE(serial.violation.find("mutual exclusion"), std::string::npos);
  EXPECT_EQ(serial.symmetry_group, 6u);
  ASSERT_TRUE(serial.counterexample.has_value());

  const auto exec = sim::validate_steps(*info.algorithm, 3, *serial.counterexample);
  EXPECT_NE(sim::check_mutual_exclusion(exec, 3), "");

  for (int workers : {4, 8}) {
    auto parallel = options;
    parallel.workers = workers;
    expect_identical(serial, check::check_algorithm(*info.algorithm, 3, parallel));
  }
}

TEST(SymmetryReduction, SubsetChecksFixNonParticipants) {
  // Under participation subsets only permutations fixing the idle pids
  // survive, so every subset check stays sound; verdicts must match the
  // plain subset sweep and stay identical under the parallel subset pool.
  const auto& info = algo::algorithm_by_name("ttas-rmw");
  check::CheckOptions plain_options;
  plain_options.max_states = 4'000'000;
  const auto plain = check::check_all_subsets(*info.algorithm, 3, plain_options);
  ASSERT_TRUE(plain.ok) << plain.violation;

  auto sym_options = plain_options;
  sym_options.symmetry = true;
  const auto sym = check::check_all_subsets(*info.algorithm, 3, sym_options);
  EXPECT_TRUE(sym.ok) << sym.violation;

  auto parallel_options = sym_options;
  parallel_options.workers = 4;
  expect_identical(sym, check::check_all_subsets(*info.algorithm, 3, parallel_options));
}

TEST(SymmetryReduction, YangAndersonN4FinishesWherePlainExhausts) {
  // The acceptance fixture at gtest scale: under a 1M-state cap the plain
  // exploration exhausts (the full space is 5,892,305 states — pinned by the
  // Release CI step), while the 8-element tree-automorphism quotient
  // completes in 737,175 states: a 7.99x cut, comfortably past the 3x floor
  // bench_model_checker gates on.
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions options;
  options.max_states = 1'000'000;
  const auto plain = check::check_algorithm(*info.algorithm, 4, options);
  EXPECT_TRUE(plain.exhausted_limit);

  options.symmetry = true;
  const auto sym = check::check_algorithm(*info.algorithm, 4, options);
  ASSERT_TRUE(sym.ok) << sym.violation;
  EXPECT_FALSE(sym.exhausted_limit);
  EXPECT_EQ(sym.symmetry_group, 8u);
  EXPECT_EQ(sym.states, 737'175u);
  EXPECT_EQ(sym.transitions, 2'285'030u);
  EXPECT_LE(sym.states * 3, 5'892'305u);
}

TEST(SymmetryReduction, RejectsUnenumerableN) {
  const auto& info = algo::algorithm_by_name("ttas-rmw");
  check::CheckOptions options;
  options.symmetry = true;
  EXPECT_THROW(check::check_algorithm(*info.algorithm, 9, options),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Wide-branching fixture: every expansion yields n fresh states, so the
// packed state table reallocates dozens of times mid-level. The old engine
// held `const auto& automaton = states[idx].automata[pid]` across
// states.push_back — a dangling reference the ASan CI leg would catch here.
// The state space is exactly 6^n (n independent 6-pc processes), which also
// pins down the dedup accounting.
// ---------------------------------------------------------------------------

class WideProcess final : public algo::CloneableAutomaton<WideProcess> {
 public:
  explicit WideProcess(Pid pid) : pid_(pid) {}

  Step propose() const override {
    switch (pc_) {
      case 0: return Step::crit_step(pid_, CritKind::kTry);
      case 1: return Step::write(pid_, pid_, 1);
      case 2: return Step::crit_step(pid_, CritKind::kEnter);
      case 3: return Step::crit_step(pid_, CritKind::kExit);
      default: break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value) override {
    if (pc_ < 5) ++pc_;
  }

  bool done() const override { return pc_ == 5; }

  void hash_into(util::Hasher& hasher) const { hasher.add_all({pc_, pid_}); }

 private:
  Pid pid_;
  int pc_ = 0;
};

class WideBranchAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "wide-branch-fixture"; }
  int num_registers(int n) const override { return n; }
  std::unique_ptr<sim::Automaton> make_process(Pid pid, int) const override {
    return std::make_unique<WideProcess>(pid);
  }
};

TEST(EngineReallocation, WideBranchingSurvivesStateTableGrowth) {
  // Processes are independent, so the checker sees every interleaving of
  // 4 × 5 steps: 6^4 = 1296 states. Mutual exclusion is deliberately not
  // checked (all four can sit in the CS); progress must hold.
  WideBranchAlgorithm algorithm;
  check::CheckOptions options;
  options.check_mutex = false;
  for (int workers : {1, 4}) {
    options.workers = workers;
    const auto result = check::check_algorithm(algorithm, 4, options);
    EXPECT_TRUE(result.ok) << result.violation;
    EXPECT_EQ(result.states, 1296u);
    // 6^4 states, one per pc combination; each non-terminal pc advances.
    EXPECT_EQ(result.interned_automata, 4u * 6u);
    EXPECT_GT(result.dedup_hits, 0u);
  }
}

TEST(EngineStats, SurfacesFlyweightAccounting) {
  const auto result = run_with_workers("bakery", 3, 1);
  ASSERT_TRUE(result.ok) << result.violation;
  EXPECT_GT(result.dedup_hits, 0u);
  EXPECT_GT(result.interned_automata, 0u);
  EXPECT_GT(result.interned_regfiles, 0u);
  EXPECT_GT(result.peak_memory_bytes, 0u);
  // Flyweight premise: distinct local states and register files are both
  // vastly fewer than states (that is why interning pays).
  EXPECT_LT(result.interned_automata, result.states / 4);
  EXPECT_LT(result.interned_regfiles, result.states);
}

}  // namespace
}  // namespace melb
