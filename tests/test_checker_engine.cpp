// Flyweight state-space engine tests: the flat visited set, the closed
// store / compressed edge stream (including disk spill round trips),
// worker-count determinism of results/traces/statistics, counterexample
// reconstruction by parent-chain replay (against a golden PR-3 trace and
// across closed-chunk/spill boundaries), parallel check_all_subsets,
// checker conformance on the RMW lock algorithms, and a wide-branching
// fixture that forces the state table to reallocate many times
// mid-exploration (the regression surface for the old engine's dangling
// automaton reference across states.push_back).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algo/automaton_base.h"
#include "algo/registry.h"
#include "check/closed_store.h"
#include "check/model_checker.h"
#include "check/state_set.h"
#include "sim/execution.h"
#include "sim/simulator.h"
#include "util/hash.h"

#include "testing_util.h"

namespace melb {
namespace {

using sim::CritKind;
using sim::Pid;
using sim::Step;
using sim::Value;

// ---------------------------------------------------------------------------
// FlatStateSet / StripedStateSet.
// ---------------------------------------------------------------------------

TEST(FlatStateSet, ReserveCommitLookup) {
  check::FlatStateSet set;
  const auto first = set.find_or_reserve(0xabcdef);
  EXPECT_FALSE(first.found);
  set.commit(0xabcdef, 42);

  const auto again = set.find_or_reserve(0xabcdef);
  EXPECT_TRUE(again.found);
  EXPECT_EQ(again.idx, 42u);
  EXPECT_EQ(set.lookup(0xabcdef), 42u);
  EXPECT_EQ(set.size(), 1u);
}

TEST(FlatStateSet, PendingVisibleBeforeCommit) {
  check::FlatStateSet set;
  ASSERT_FALSE(set.find_or_reserve(7).found);
  const auto dup = set.find_or_reserve(7);
  EXPECT_TRUE(dup.found);
  EXPECT_EQ(dup.idx, check::FlatStateSet::kPending);
  set.commit(7, 3);
  EXPECT_EQ(set.lookup(7), 3u);
}

TEST(FlatStateSet, GrowthPreservesEntries) {
  check::FlatStateSet set(64);
  // Insert far past the initial capacity to force several rehashes, with
  // adversarially similar keys (zobrist gives well-mixed fingerprints; raw
  // sequential keys stress the probe remix).
  constexpr std::uint32_t kCount = 5000;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    const auto probe = set.find_or_reserve(i);
    ASSERT_FALSE(probe.found) << i;
    set.commit(i, i);
  }
  EXPECT_EQ(set.size(), kCount);
  EXPECT_GE(set.capacity(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(set.lookup(i), i);
  }
  EXPECT_GT(set.memory_bytes(), kCount * 12u);
}

TEST(StripedStateSet, RoutesAcrossStripesConsistently) {
  check::StripedStateSet set;
  std::set<std::size_t> stripes_used;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const std::uint64_t fp = util::zobrist(i, i * 31);
    stripes_used.insert(set.stripe_of(fp));
    ASSERT_FALSE(set.find_or_reserve(fp).found);
    set.commit(fp, static_cast<std::uint32_t>(i));
  }
  for (std::uint64_t i = 0; i < 2000; ++i) {
    ASSERT_EQ(set.lookup(util::zobrist(i, i * 31)), i);
  }
  EXPECT_EQ(set.size(), 2000u);
  // Mixed fingerprints must actually spread over the stripes.
  EXPECT_GT(stripes_used.size(), check::StripedStateSet::kStripes / 2);
}

// ---------------------------------------------------------------------------
// ClosedStore / EdgeStore / SpillFile.
// ---------------------------------------------------------------------------

TEST(ClosedStore, EntriesSurviveChunkBoundariesAndSpill) {
  check::ClosedStore store;
  constexpr std::uint32_t kCount = 3 * check::ClosedStore::kChunkEntries / 2;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    store.append(i * 7, static_cast<std::uint8_t>(i % 64));
  }
  ASSERT_EQ(store.size(), kCount);
  const std::uint64_t before = store.memory_bytes();

  check::SpillFile spill;
  EXPECT_TRUE(store.has_spillable_chunk());
  const std::uint64_t freed = store.spill_oldest(spill, 1);
  EXPECT_EQ(freed, check::ClosedStore::kChunkEntries * check::ClosedStore::kEntryBytes);
  EXPECT_EQ(spill.bytes_written(), freed);
  EXPECT_LT(store.memory_bytes(), before);
  // The tail chunk is still being appended to and must never spill.
  EXPECT_FALSE(store.has_spillable_chunk());

  // Every entry — spilled chunk 0, resident chunk 1 — reads back intact.
  for (std::uint32_t i = 0; i < kCount; i += 97) {
    const auto e = store.entry(i);
    EXPECT_EQ(e.parent, i * 7u) << i;
    EXPECT_EQ(e.pid, i % 64) << i;
  }
  // Appending after a spill keeps working.
  store.append(42, 7);
  EXPECT_EQ(store.entry(kCount).parent, 42u);
}

TEST(EdgeStore, RoundTripsMixedNewAndDedupEdges) {
  // Mimics the engine's contract: "new" edges target consecutive indices
  // starting at 1; dedup edges revisit arbitrary earlier states; `from` is
  // non-decreasing. Enough edges to cross several 256 KiB chunks.
  check::EdgeStore store;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> expected;
  std::uint32_t next_new = 1;
  std::uint32_t from = 0;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 400000; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    if ((rng >> 33) % 3 != 0) {
      store.append(from, next_new, true);
      expected.emplace_back(from, next_new);
      ++next_new;
    } else {
      const std::uint32_t to = static_cast<std::uint32_t>((rng >> 20) % next_new);
      store.append(from, to, false);
      expected.emplace_back(from, to);
    }
    if ((rng >> 40) % 4 == 0) from += static_cast<std::uint32_t>((rng >> 50) % 3);
  }
  ASSERT_EQ(store.size(), expected.size());
  // Far below the flat 8 bytes/edge (delta varints + implicit new targets).
  EXPECT_LT(store.memory_bytes(), expected.size() * 4);

  const auto verify = [&] {
    std::size_t i = 0;
    store.for_each([&](std::uint32_t f, std::uint32_t t) {
      ASSERT_LT(i, expected.size());
      EXPECT_EQ(f, expected[i].first) << i;
      EXPECT_EQ(t, expected[i].second) << i;
      ++i;
    });
    EXPECT_EQ(i, expected.size());
  };
  verify();

  // Spill everything spillable and decode again — the stream must be
  // byte-identical when read back from disk.
  check::SpillFile spill;
  ASSERT_TRUE(store.has_spillable_chunk());
  const std::uint64_t before = store.memory_bytes();
  EXPECT_GT(store.spill_oldest(spill, 1000), 0u);
  EXPECT_LT(store.memory_bytes(), before);
  verify();
}

// ---------------------------------------------------------------------------
// Worker-count determinism: results, traces, and statistics byte-identical.
// ---------------------------------------------------------------------------

void expect_identical(const check::CheckResult& a, const check::CheckResult& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.exhausted_limit, b.exhausted_limit);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.dedup_hits, b.dedup_hits);
  EXPECT_EQ(a.interned_automata, b.interned_automata);
  EXPECT_EQ(a.interned_regfiles, b.interned_regfiles);
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes);
  EXPECT_EQ(a.spilled_bytes, b.spilled_bytes);
  ASSERT_EQ(a.counterexample.has_value(), b.counterexample.has_value());
  if (a.counterexample) {
    EXPECT_EQ(*a.counterexample, *b.counterexample);
  }
}

check::CheckResult run_with_workers(const std::string& algorithm, int n, int workers,
                                    std::uint64_t max_states = 4'000'000) {
  check::CheckOptions options;
  options.workers = workers;
  options.max_states = max_states;
  return check::check_algorithm(*algo::algorithm_by_name(algorithm).algorithm, n, options);
}

TEST(EngineDeterminism, CorrectAlgorithmAcrossWorkerCounts) {
  const auto serial = run_with_workers("yang-anderson", 3, 1);
  ASSERT_TRUE(serial.ok) << serial.violation;
  for (int workers : {2, 4, 8}) {
    expect_identical(serial, run_with_workers("yang-anderson", 3, workers));
  }
}

TEST(EngineDeterminism, CounterexampleTraceOnBrokenAlgorithm) {
  // The deliberately broken fixture: 4-worker exploration must report the
  // same violation with a byte-identical counterexample trace (lowest-index
  // parent wins), and the trace must replay to a real violation.
  const auto serial = run_with_workers("naive-broken", 3, 1);
  const auto parallel = run_with_workers("naive-broken", 3, 4);
  EXPECT_FALSE(serial.ok);
  expect_identical(serial, parallel);
  ASSERT_TRUE(parallel.counterexample.has_value());

  const auto& info = algo::algorithm_by_name("naive-broken");
  const auto exec = sim::validate_steps(*info.algorithm, 3, *parallel.counterexample);
  EXPECT_NE(sim::check_mutual_exclusion(exec, 3), "");
}

TEST(EngineDeterminism, LivelockTraceOnSubset) {
  check::CheckOptions serial_options;
  serial_options.participants = {1};
  auto parallel_options = serial_options;
  parallel_options.workers = 4;
  const auto& info = algo::algorithm_by_name("static-rr");
  const auto serial = check::check_algorithm(*info.algorithm, 2, serial_options);
  const auto parallel = check::check_algorithm(*info.algorithm, 2, parallel_options);
  EXPECT_FALSE(serial.ok);
  EXPECT_NE(serial.violation.find("progress"), std::string::npos);
  expect_identical(serial, parallel);
}

TEST(EngineDeterminism, StateLimitAcrossWorkerCounts) {
  const auto serial = run_with_workers("bakery", 3, 1, 50);
  const auto parallel = run_with_workers("bakery", 3, 4, 50);
  EXPECT_TRUE(serial.exhausted_limit);
  expect_identical(serial, parallel);
}

// ---------------------------------------------------------------------------
// Trace reconstruction from the closed store. Traces are no longer read out
// of full state records: the engine walks the packed (parent, pid) chain and
// replays it through the memoized δ. These tests pin the replay to the PR-3
// engine's output (golden steps), across worker counts, and across closed-
// chunk and spill boundaries.
// ---------------------------------------------------------------------------

std::string trace_string(const check::CheckResult& result) {
  std::string s;
  if (!result.counterexample) return s;
  for (const auto& step : *result.counterexample) s += to_string(step) + "|";
  return s;
}

TEST(TraceReconstruction, MatchesPr3GoldenTrace) {
  // Captured verbatim from the PR-3 engine (commit e176920):
  // melb_cli check naive-broken 3.
  const std::string kGolden =
      "try_0|read_0(r0)|try_1|read_1(r0)|write_0(r0, 1)|enter_0|write_1(r0, 1)|"
      "enter_1|";
  for (int workers : {1, 2, 8}) {
    const auto result = run_with_workers("naive-broken", 3, workers);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(trace_string(result), kGolden) << workers << " workers";
  }
}

// Two unguarded processes with 300 spin-writes before the critical section:
// the first mutex violation sits ~600 BFS levels deep, behind >80k states —
// past a ClosedStore chunk boundary (65536 entries), so the parent-chain
// walk crosses chunks (and, under a memory limit, reads spilled chunks back
// from disk).
class SlowEntrantProcess final : public algo::CloneableAutomaton<SlowEntrantProcess> {
 public:
  static constexpr int kSpinWrites = 300;

  explicit SlowEntrantProcess(Pid pid) : pid_(pid) {}

  Step propose() const override {
    if (pc_ == 0) return Step::crit_step(pid_, CritKind::kTry);
    if (pc_ <= kSpinWrites) return Step::write(pid_, pid_, pc_);
    switch (pc_ - kSpinWrites) {
      case 1: return Step::crit_step(pid_, CritKind::kEnter);
      case 2: return Step::crit_step(pid_, CritKind::kExit);
      default: break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value) override {
    if (pc_ < kSpinWrites + 4) ++pc_;
  }

  bool done() const override { return pc_ == kSpinWrites + 4; }

  void hash_into(util::Hasher& hasher) const { hasher.add_all({pc_, pid_}); }

 private:
  Pid pid_;
  int pc_ = 0;
};

class SlowEntrantAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "slow-entrant-fixture"; }
  int num_registers(int n) const override { return n; }
  std::unique_ptr<sim::Automaton> make_process(Pid pid, int) const override {
    return std::make_unique<SlowEntrantProcess>(pid);
  }
};

TEST(TraceReconstruction, DeepTraceAcrossChunkAndSpillBoundaries) {
  SlowEntrantAlgorithm algorithm;
  check::CheckOptions options;
  options.max_states = 200'000;

  const auto reference = check::check_algorithm(algorithm, 2, options);
  ASSERT_FALSE(reference.ok);
  EXPECT_NE(reference.violation.find("mutual exclusion"), std::string::npos);
  ASSERT_TRUE(reference.counterexample.has_value());
  // The violation sits past the first closed chunk, and the trace replays
  // the full parent chain: 2 * (kSpinWrites + 2) steps.
  EXPECT_GT(reference.states, check::ClosedStore::kChunkEntries);
  EXPECT_EQ(reference.counterexample->size(),
            2 * (SlowEntrantProcess::kSpinWrites + 2));

  for (int workers : {2, 8}) {
    auto parallel_options = options;
    parallel_options.workers = workers;
    expect_identical(reference, check::check_algorithm(algorithm, 2, parallel_options));
  }

  // A 1 MiB budget forces the early closed chunks out to disk before the
  // violation is found; the reconstructed trace must not change.
  for (int workers : {1, 4}) {
    auto spill_options = options;
    spill_options.memory_limit_mb = 1;
    spill_options.workers = workers;
    const auto spilled = check::check_algorithm(algorithm, 2, spill_options);
    EXPECT_GT(spilled.spilled_bytes, 0u) << workers << " workers";
    EXPECT_EQ(spilled.violation, reference.violation);
    EXPECT_EQ(spilled.states, reference.states);
    EXPECT_EQ(trace_string(spilled), trace_string(reference)) << workers << " workers";
  }
}

// ---------------------------------------------------------------------------
// Memory limit: spilling changes where bytes live, never what is computed.
// ---------------------------------------------------------------------------

TEST(MemoryLimit, SpillPreservesResultsAndShrinksPeak) {
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions unlimited;
  unlimited.max_states = 4'000'000;
  const auto reference = check::check_algorithm(*info.algorithm, 3, unlimited);
  ASSERT_TRUE(reference.ok) << reference.violation;
  ASSERT_EQ(reference.spilled_bytes, 0u);

  auto limited = unlimited;
  limited.memory_limit_mb = 1;
  const auto spilled = check::check_algorithm(*info.algorithm, 3, limited);
  EXPECT_TRUE(spilled.ok) << spilled.violation;
  EXPECT_EQ(spilled.states, reference.states);
  EXPECT_EQ(spilled.transitions, reference.transitions);
  EXPECT_EQ(spilled.dedup_hits, reference.dedup_hits);
  EXPECT_EQ(spilled.interned_automata, reference.interned_automata);
  EXPECT_EQ(spilled.interned_regfiles, reference.interned_regfiles);
  EXPECT_GT(spilled.spilled_bytes, 0u);
  EXPECT_LT(spilled.peak_memory_bytes, reference.peak_memory_bytes);
}

TEST(MemoryLimit, SpillIsDeterministicAcrossWorkerCounts) {
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions options;
  options.max_states = 4'000'000;
  options.memory_limit_mb = 1;
  const auto serial = check::check_algorithm(*info.algorithm, 3, options);
  ASSERT_TRUE(serial.ok) << serial.violation;
  EXPECT_GT(serial.spilled_bytes, 0u);
  for (int workers : {2, 4}) {
    auto parallel_options = options;
    parallel_options.workers = workers;
    expect_identical(serial, check::check_algorithm(*info.algorithm, 3, parallel_options));
  }
}

// ---------------------------------------------------------------------------
// check_all_subsets: the 2^n - 1 independent subset checks run on a shared
// pool when workers > 1; results must match the serial mask-order loop.
// ---------------------------------------------------------------------------

TEST(ParallelSubsets, MatchesSerialOnCorrectAlgorithm) {
  const auto& info = algo::algorithm_by_name("ttas-rmw");
  check::CheckOptions serial_options;
  serial_options.max_states = 4'000'000;
  const auto serial = check::check_all_subsets(*info.algorithm, 3, serial_options);
  ASSERT_TRUE(serial.ok) << serial.violation;
  for (int workers : {2, 8}) {
    auto parallel_options = serial_options;
    parallel_options.workers = workers;
    expect_identical(serial, check::check_all_subsets(*info.algorithm, 3, parallel_options));
  }
}

TEST(ParallelSubsets, ReportsLowestFailingSubsetLikeSerial) {
  // static-rr passes with all participants but livelocks on {1}; the
  // parallel merge must return the same lowest failing subset, violation
  // string, and trace as the serial mask-order scan.
  const auto& info = algo::algorithm_by_name("static-rr");
  const auto serial = check::check_all_subsets(*info.algorithm, 2);
  check::CheckOptions parallel_options;
  parallel_options.workers = 4;
  const auto parallel = check::check_all_subsets(*info.algorithm, 2, parallel_options);
  EXPECT_FALSE(serial.ok);
  EXPECT_NE(serial.violation.find("[participants {1}]"), std::string::npos)
      << serial.violation;
  expect_identical(serial, parallel);
}

// ---------------------------------------------------------------------------
// Checker conformance on the RMW lock algorithms.
// ---------------------------------------------------------------------------

class CheckerOnRmw : public ::testing::TestWithParam<const char*> {};

TEST_P(CheckerOnRmw, ExhaustiveN2) {
  const auto& info = algo::algorithm_by_name(GetParam());
  const auto result = check::check_algorithm(*info.algorithm, 2);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.exhausted_limit);
  EXPECT_GT(result.states, 10u);
}

TEST_P(CheckerOnRmw, ExhaustiveN3) {
  const auto& info = algo::algorithm_by_name(GetParam());
  check::CheckOptions options;
  options.max_states = 4'000'000;
  const auto result = check::check_algorithm(*info.algorithm, 3, options);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.exhausted_limit);
}

TEST_P(CheckerOnRmw, AllParticipantSubsetsN3) {
  const auto& info = algo::algorithm_by_name(GetParam());
  check::CheckOptions options;
  options.max_states = 4'000'000;
  const auto result = check::check_all_subsets(*info.algorithm, 3, options);
  EXPECT_TRUE(result.ok) << result.violation;
}

INSTANTIATE_TEST_SUITE_P(RmwLocks, CheckerOnRmw,
                         ::testing::Values("ttas-rmw", "ticket-rmw", "mcs-rmw"),
                         testing_util::AlgorithmNameGenerator());

// ---------------------------------------------------------------------------
// Wide-branching fixture: every expansion yields n fresh states, so the
// packed state table reallocates dozens of times mid-level. The old engine
// held `const auto& automaton = states[idx].automata[pid]` across
// states.push_back — a dangling reference the ASan CI leg would catch here.
// The state space is exactly 6^n (n independent 6-pc processes), which also
// pins down the dedup accounting.
// ---------------------------------------------------------------------------

class WideProcess final : public algo::CloneableAutomaton<WideProcess> {
 public:
  explicit WideProcess(Pid pid) : pid_(pid) {}

  Step propose() const override {
    switch (pc_) {
      case 0: return Step::crit_step(pid_, CritKind::kTry);
      case 1: return Step::write(pid_, pid_, 1);
      case 2: return Step::crit_step(pid_, CritKind::kEnter);
      case 3: return Step::crit_step(pid_, CritKind::kExit);
      default: break;
    }
    return Step::crit_step(pid_, CritKind::kRem);
  }

  void advance(Value) override {
    if (pc_ < 5) ++pc_;
  }

  bool done() const override { return pc_ == 5; }

  void hash_into(util::Hasher& hasher) const { hasher.add_all({pc_, pid_}); }

 private:
  Pid pid_;
  int pc_ = 0;
};

class WideBranchAlgorithm final : public sim::Algorithm {
 public:
  std::string name() const override { return "wide-branch-fixture"; }
  int num_registers(int n) const override { return n; }
  std::unique_ptr<sim::Automaton> make_process(Pid pid, int) const override {
    return std::make_unique<WideProcess>(pid);
  }
};

TEST(EngineReallocation, WideBranchingSurvivesStateTableGrowth) {
  // Processes are independent, so the checker sees every interleaving of
  // 4 × 5 steps: 6^4 = 1296 states. Mutual exclusion is deliberately not
  // checked (all four can sit in the CS); progress must hold.
  WideBranchAlgorithm algorithm;
  check::CheckOptions options;
  options.check_mutex = false;
  for (int workers : {1, 4}) {
    options.workers = workers;
    const auto result = check::check_algorithm(algorithm, 4, options);
    EXPECT_TRUE(result.ok) << result.violation;
    EXPECT_EQ(result.states, 1296u);
    // 6^4 states, one per pc combination; each non-terminal pc advances.
    EXPECT_EQ(result.interned_automata, 4u * 6u);
    EXPECT_GT(result.dedup_hits, 0u);
  }
}

TEST(EngineStats, SurfacesFlyweightAccounting) {
  const auto result = run_with_workers("bakery", 3, 1);
  ASSERT_TRUE(result.ok) << result.violation;
  EXPECT_GT(result.dedup_hits, 0u);
  EXPECT_GT(result.interned_automata, 0u);
  EXPECT_GT(result.interned_regfiles, 0u);
  EXPECT_GT(result.peak_memory_bytes, 0u);
  // Flyweight premise: distinct local states and register files are both
  // vastly fewer than states (that is why interning pays).
  EXPECT_LT(result.interned_automata, result.states / 4);
  EXPECT_LT(result.interned_regfiles, result.states);
}

}  // namespace
}  // namespace melb
