// Crash-safety acceptance tests for the campaign service (exp/journal.h,
// exp/service.h, util/faultpoint.h, util/fileio.h).
//
// The contract under test: for a fixed spec, the report is a pure function
// of (spec, results) — so a fresh run, a resumed run after kill -9 at ANY
// registered fault boundary, a fully-cached re-run, and a k-shard run joined
// by merge_shards must all serialize to the same bytes as the journal-free
// run_campaign golden, at every worker count.
//
// Crash tests fork(): the child arms a fault spec, runs the service, and is
// expected to die with _Exit(137) at the armed boundary; the parent then
// resumes fault-free in the same state directory and compares bytes. The
// fault registry is process-global, so specs for crash actions are only ever
// armed in the child; in-parent injections (enospc, flake) are disarmed by a
// RAII guard even when an assertion fails mid-test.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define MELB_HAVE_FORK 1
#endif

#include "algo/registry.h"
#include "check/model_checker.h"
#include "exp/campaign.h"
#include "exp/journal.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "exp/service.h"
#include "util/faultpoint.h"
#include "util/fileio.h"

namespace melb {
namespace {

namespace fs = std::filesystem;

// Disarm the fault registry on scope exit, so a failing ASSERT inside a test
// that armed an in-process fault cannot leak the spec into later tests.
struct FaultGuard {
  ~FaultGuard() { util::set_fault_spec(""); }
};

// A fresh directory under the system temp root. Tags are unique per test, so
// concurrent ctest invocations of this binary never share a directory.
std::string temp_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("melb_campaign_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// The 8-cell campaign every test runs: small enough that the full suite runs
// hundreds of sweeps in seconds, yet it crosses register and RMW algorithms,
// deterministic and seeded schedulers, and exercises the lb pipeline.
exp::CampaignSpec test_spec() {
  exp::CampaignSpec spec;
  spec.algorithms = {"peterson-tree", "ticket-rmw"};
  spec.schedulers = {"round-robin", "random"};
  spec.sizes = {2, 3};
  spec.seed = 99;
  return spec;
}

std::string golden_json(const exp::CampaignSpec& spec) {
  exp::RunOptions options;
  options.workers = 1;
  return exp::to_json(exp::run_campaign(spec, options));
}

// ---------------------------------------------------------------------------
// Content-address keys and the shard partition.
// ---------------------------------------------------------------------------

TEST(CellKey, SensitiveToEveryCoordinateAndKnob) {
  const exp::CampaignSpec spec = test_spec();
  exp::Cell cell;
  cell.index = 3;
  cell.algorithm = "peterson-tree";
  cell.scheduler = "random";
  cell.n = 3;
  cell.seed = 123;
  const std::uint64_t base = exp::cell_key(spec, cell);

  exp::Cell other = cell;
  other.algorithm = "ticket-rmw";
  EXPECT_NE(base, exp::cell_key(spec, other));
  other = cell;
  other.scheduler = "round-robin";
  EXPECT_NE(base, exp::cell_key(spec, other));
  other = cell;
  other.n = 2;
  EXPECT_NE(base, exp::cell_key(spec, other));
  other = cell;
  other.seed = 124;
  EXPECT_NE(base, exp::cell_key(spec, other));

  // The expansion index is a row id, not part of the experiment's identity.
  other = cell;
  other.index = 7;
  EXPECT_EQ(base, exp::cell_key(spec, other));

  // Result-affecting spec knobs change the key; the dimension lists do not
  // (a cell's result does not depend on which other cells were swept).
  exp::CampaignSpec knob = spec;
  knob.mode = sim::RunMode::kFaithful;
  EXPECT_NE(base, exp::cell_key(knob, cell));
  knob = spec;
  knob.max_steps = 1000;
  EXPECT_NE(base, exp::cell_key(knob, cell));
  knob = spec;
  knob.lb_pipeline = false;
  EXPECT_NE(base, exp::cell_key(knob, cell));
  knob = spec;
  knob.algorithms.push_back("bakery");
  EXPECT_EQ(base, exp::cell_key(knob, cell));
}

TEST(CellKey, FingerprintCoversDimensionLists) {
  const exp::CampaignSpec spec = test_spec();
  const std::uint64_t base = exp::campaign_fingerprint(spec);
  exp::CampaignSpec other = spec;
  other.algorithms.pop_back();
  EXPECT_NE(base, exp::campaign_fingerprint(other));
  other = spec;
  other.sizes = {2};
  EXPECT_NE(base, exp::campaign_fingerprint(other));
  other = spec;
  other.seed = 100;
  EXPECT_NE(base, exp::campaign_fingerprint(other));
  EXPECT_EQ(base, exp::campaign_fingerprint(test_spec()));
}

TEST(ShardOwns, PartitionsEveryIndexExactlyOnce) {
  for (int k = 1; k <= 5; ++k) {
    for (std::size_t index = 0; index < 100; ++index) {
      int owners = 0;
      for (int i = 1; i <= k; ++i) owners += exp::shard_owns(index, i, k) ? 1 : 0;
      EXPECT_EQ(owners, 1) << "index " << index << " of " << k << " shards";
    }
  }
}

// ---------------------------------------------------------------------------
// Journal persistence, resume, and recovery.
// ---------------------------------------------------------------------------

TEST(CampaignService, FreshRunThenFullyCachedResume) {
  const exp::CampaignSpec spec = test_spec();
  const std::string dir = temp_dir("resume");
  const std::string golden = golden_json(spec);

  const exp::ServiceReport fresh = exp::run_campaign_service(spec, dir);
  EXPECT_EQ(fresh.executed, 8u);
  EXPECT_EQ(fresh.cached, 0u);
  EXPECT_EQ(exp::to_json(fresh.report), golden);

  // The unchanged re-run must do zero cell work and produce the same bytes.
  const exp::ServiceReport cached = exp::run_campaign_service(spec, dir);
  EXPECT_EQ(cached.executed, 0u);
  EXPECT_EQ(cached.cached, 8u);
  EXPECT_EQ(cached.journal.records, 8u);
  EXPECT_EQ(exp::to_json(cached.report), golden);
  fs::remove_all(dir);
}

TEST(CampaignService, StatelessRunMatchesJournalled) {
  const exp::CampaignSpec spec = test_spec();
  const exp::ServiceReport pure = exp::run_campaign_service(spec, "");
  EXPECT_EQ(pure.executed, 8u);
  EXPECT_EQ(exp::to_json(pure.report), golden_json(spec));
}

TEST(CampaignService, TornTailIsTruncatedAndRecomputed) {
  const exp::CampaignSpec spec = test_spec();
  const std::string dir = temp_dir("torn");
  const std::string golden = golden_json(spec);
  exp::ServiceOptions options;
  options.journal_batch = 4;  // two segments for the 8 cells
  exp::run_campaign_service(spec, dir, options);

  // Garbage appended past the last valid record — what a torn batch write
  // that got renamed anyway would look like.
  std::string last_segment;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0 && name > last_segment) last_segment = name;
  }
  ASSERT_FALSE(last_segment.empty());
  {
    std::ofstream out(fs::path(dir) / last_segment, std::ios::binary | std::ios::app);
    out << "\x6d\x62garbage tail";
  }
  exp::ServiceReport resumed = exp::run_campaign_service(spec, dir, options);
  EXPECT_EQ(resumed.journal.torn_segments, 1u);
  EXPECT_EQ(resumed.cached, 8u);  // every whole record survives the truncation
  EXPECT_EQ(exp::to_json(resumed.report), golden);

  // Corruption *inside* a record checksums as torn: the valid prefix is
  // served, the rest recomputed, and the report bytes still converge.
  std::fstream seg(fs::path(dir) / last_segment,
                   std::ios::binary | std::ios::in | std::ios::out);
  seg.seekp(40);
  seg.put('\xff');
  seg.close();
  resumed = exp::run_campaign_service(spec, dir, options);
  EXPECT_EQ(resumed.journal.torn_segments, 1u);
  EXPECT_LT(resumed.cached, 8u);
  EXPECT_GT(resumed.executed, 0u);
  EXPECT_EQ(exp::to_json(resumed.report), golden);
  fs::remove_all(dir);
}

TEST(CampaignService, OrphanTempFilesAreRemoved) {
  const exp::CampaignSpec spec = test_spec();
  const std::string dir = temp_dir("orphan");
  exp::run_campaign_service(spec, dir);
  { std::ofstream(fs::path(dir) / "seg-00000099.melbj.tmp") << "half a segment"; }
  const exp::ServiceReport resumed = exp::run_campaign_service(spec, dir);
  EXPECT_EQ(resumed.journal.orphan_tmp, 1u);
  EXPECT_FALSE(fs::exists(fs::path(dir) / "seg-00000099.melbj.tmp"));
  EXPECT_EQ(resumed.cached, 8u);
  fs::remove_all(dir);
}

TEST(CampaignService, StaleCodeVersionDiscardsTheJournal) {
  const exp::CampaignSpec spec = test_spec();
  const std::string dir = temp_dir("stale");
  exp::run_campaign_service(spec, dir);

  // Rewrite the meta as if an older build had produced this directory.
  const fs::path meta = fs::path(dir) / "campaign.meta";
  std::ifstream in(meta);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  const std::string needle = exp::kJournalCodeVersion;
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, needle.size(), "melb-journal-v0");
  { std::ofstream(meta) << text; }

  const exp::ServiceReport resumed = exp::run_campaign_service(spec, dir);
  EXPECT_TRUE(resumed.journal.version_stale);
  EXPECT_EQ(resumed.cached, 0u);
  EXPECT_EQ(resumed.executed, 8u);
  EXPECT_EQ(exp::to_json(resumed.report), golden_json(spec));
  fs::remove_all(dir);
}

TEST(CampaignService, RejectsAStateDirOfADifferentCampaign) {
  const exp::CampaignSpec spec = test_spec();
  const std::string dir = temp_dir("wrong");
  exp::run_campaign_service(spec, dir);
  exp::CampaignSpec other = spec;
  other.seed = 100;
  EXPECT_THROW(exp::run_campaign_service(other, dir), std::runtime_error);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Sharding and merge.
// ---------------------------------------------------------------------------

std::vector<std::string> run_shards(const exp::CampaignSpec& spec, int k,
                                    const std::string& tag) {
  std::vector<std::string> dirs;
  for (int i = 1; i <= k; ++i) {
    const std::string dir = temp_dir(tag + "_s" + std::to_string(i));
    exp::ServiceOptions options;
    options.shard_index = i;
    options.shard_count = k;
    exp::run_campaign_service(spec, dir, options);
    dirs.push_back(dir);
  }
  return dirs;
}

TEST(Merge, ShardedRunsReproduceTheUnshardedBytes) {
  const exp::CampaignSpec spec = test_spec();
  const std::string golden = golden_json(spec);
  for (int k : {2, 4}) {
    const std::vector<std::string> dirs = run_shards(spec, k, "merge" + std::to_string(k));
    // Merge must not depend on the order the shard dirs are listed in.
    std::vector<std::string> reversed(dirs.rbegin(), dirs.rend());
    EXPECT_EQ(exp::to_json(exp::merge_shards(dirs)), golden) << k << " shards";
    EXPECT_EQ(exp::to_json(exp::merge_shards(reversed)), golden) << k << " shards reversed";
    for (const auto& dir : dirs) fs::remove_all(dir);
  }
}

TEST(Merge, RejectsBadShardSets) {
  const exp::CampaignSpec spec = test_spec();
  const std::vector<std::string> dirs = run_shards(spec, 2, "reject");

  EXPECT_THROW(exp::merge_shards({dirs[0], dirs[0]}), std::runtime_error);  // duplicate
  EXPECT_THROW(exp::merge_shards({dirs[0]}), std::runtime_error);           // incomplete

  // A shard of a different campaign: fingerprint mismatch.
  exp::CampaignSpec other = spec;
  other.seed = 100;
  const std::vector<std::string> foreign = run_shards(other, 2, "reject_foreign");
  EXPECT_THROW(exp::merge_shards({dirs[0], foreign[1]}), std::runtime_error);

  // Disagreeing shard counts.
  const std::vector<std::string> quarters = run_shards(spec, 4, "reject_mixed");
  EXPECT_THROW(exp::merge_shards({dirs[0], quarters[1]}), std::runtime_error);

  // A shard written by a different code version.
  const fs::path meta = fs::path(dirs[1]) / "campaign.meta";
  std::ifstream in(meta);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  const std::size_t at = text.find(exp::kJournalCodeVersion);
  ASSERT_NE(at, std::string::npos);
  std::string tampered = text;
  tampered.replace(at, std::string(exp::kJournalCodeVersion).size(), "melb-journal-v0");
  { std::ofstream(meta) << tampered; }
  EXPECT_THROW(exp::merge_shards(dirs), std::runtime_error);
  { std::ofstream(meta) << text; }

  // Overlap: relabel shard 1's meta as shard 2, so its journal holds cells
  // the claimed shard id does not own.
  const fs::path meta0 = fs::path(dirs[0]) / "campaign.meta";
  std::ifstream in0(meta0);
  std::string text0((std::istreambuf_iterator<char>(in0)), std::istreambuf_iterator<char>());
  in0.close();
  const std::size_t shard_at = text0.find("shard=1/2");
  ASSERT_NE(shard_at, std::string::npos);
  text0.replace(shard_at, std::string("shard=1/2").size(), "shard=2/2");
  { std::ofstream(meta0) << text0; }
  EXPECT_THROW(exp::merge_shards({dirs[1], dirs[0]}), std::runtime_error);

  for (const auto& dir : dirs) fs::remove_all(dir);
  for (const auto& dir : foreign) fs::remove_all(dir);
  for (const auto& dir : quarters) fs::remove_all(dir);
}

TEST(Merge, ReportsCellsMissingFromTheirShard) {
  const exp::CampaignSpec spec = test_spec();
  const std::vector<std::string> dirs = run_shards(spec, 2, "missing");
  // Drop shard 2's segments: its meta is fine but its cells are gone.
  for (const auto& entry : fs::directory_iterator(dirs[1])) {
    if (entry.path().filename().string().rfind("seg-", 0) == 0) fs::remove(entry.path());
  }
  try {
    exp::merge_shards(dirs);
    FAIL() << "merge accepted a shard with missing cells";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos) << e.what();
  }
  for (const auto& dir : dirs) fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Kill -9 at every journal boundary, then resume.
// ---------------------------------------------------------------------------

#if defined(MELB_HAVE_FORK)

// Forks a child that arms `fault_spec` and runs the campaign into `dir`.
// Returns the child's wait status exit/signal code: 137 means the fault
// crashed it, 0 means the spec's boundary was never reached (the sweep
// finished first).
int run_in_forked_child(const exp::CampaignSpec& spec, const std::string& dir,
                        const std::string& fault_spec) {
  const pid_t pid = fork();
  if (pid == 0) {
    util::set_fault_spec(fault_spec);
    exp::ServiceOptions options;
    options.journal_batch = 2;  // several commit boundaries per run
    try {
      exp::run_campaign_service(spec, dir, options);
    } catch (...) {
      ::_exit(3);  // a fault surfaced as an exception instead of a crash
    }
    ::_exit(0);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

TEST(CrashHarness, KillAtEveryBoundaryThenResumeConverges) {
  const exp::CampaignSpec spec = test_spec();
  const std::string golden = golden_json(spec);
  for (const std::string site : {"journal.append", "journal.write", "journal.write.rename"}) {
    bool exhausted = false;
    for (int k = 0; k < 40 && !exhausted; ++k) {
      const std::string dir = temp_dir("kill");
      const std::string fault = site + "." + std::to_string(k) + ":crash";
      const int code = run_in_forked_child(spec, dir, fault);
      switch (code) {
        case 137:
          break;  // killed at the armed boundary: the interesting case
        case 0:
          exhausted = true;  // boundary k was never reached: site is covered
          break;
        default:
          FAIL() << fault << " child exited " << code;
      }
      // Whatever the crash left behind, a fault-free resume must converge to
      // the golden bytes (recovery + recompute of the non-durable cells).
      const exp::ServiceReport resumed = exp::run_campaign_service(spec, dir);
      EXPECT_EQ(exp::to_json(resumed.report), golden) << "resume after " << fault;
      fs::remove_all(dir);
    }
    EXPECT_TRUE(exhausted) << site << " still firing after 40 boundaries";
  }
}

TEST(CrashHarness, TornCommitLeavesARecoverableDirectory) {
  const exp::CampaignSpec spec = test_spec();
  const std::string golden = golden_json(spec);
  const std::string dir = temp_dir("tornwrite");
  const int code = run_in_forked_child(spec, dir, "journal.write.0:torn-write");
  ASSERT_EQ(code, 137);
  const exp::ServiceReport resumed = exp::run_campaign_service(spec, dir);
  // The torn temp file was never renamed, so recovery sees it as an orphan.
  EXPECT_EQ(resumed.journal.orphan_tmp, 1u);
  EXPECT_EQ(exp::to_json(resumed.report), golden);
  fs::remove_all(dir);
}

TEST(AtomicWrite, TornWriteNeverClobbersTheTarget) {
  const std::string dir = temp_dir("atomic");
  const std::string path = (fs::path(dir) / "report.json").string();
  ASSERT_EQ(util::write_file_atomic(path, "old contents"), "");
  const pid_t pid = fork();
  if (pid == 0) {
    util::set_fault_spec("file.write.0:torn-write");
    util::write_file_atomic(path, "new contents that must not land");
    ::_exit(0);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 137);
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(text, "old contents");
  fs::remove_all(dir);
}

#endif  // MELB_HAVE_FORK

// ---------------------------------------------------------------------------
// Injected transient errors and the retry loop.
// ---------------------------------------------------------------------------

TEST(Retry, InjectedFlakesRetryDeterministicallyAcrossWorkerCounts) {
  FaultGuard guard;
  const exp::CampaignSpec spec = test_spec();
  // Cell 5 fails twice then recovers, no matter which worker runs it.
  util::set_fault_spec("cell.run.5:flake*2");
  exp::ServiceOptions serial;
  serial.run.workers = 1;
  const exp::ServiceReport one = exp::run_campaign_service(spec, "", serial);
  EXPECT_EQ(one.retries, 2u);
  EXPECT_EQ(one.report.cells[5].retries, 2u);
  EXPECT_EQ(one.report.cells[5].status, "ok");

  util::set_fault_spec("cell.run.5:flake*2");
  exp::ServiceOptions wide;
  wide.run.workers = 4;
  const exp::ServiceReport four = exp::run_campaign_service(spec, "", wide);
  EXPECT_EQ(exp::to_json(one.report), exp::to_json(four.report));
}

TEST(Retry, ExhaustedRetriesAreReportedButNeverJournaled) {
  FaultGuard guard;
  const exp::CampaignSpec spec = test_spec();
  const std::string dir = temp_dir("flaky");
  util::set_fault_spec("cell.run.5:flake*9");  // outlives the 3-retry budget
  const exp::ServiceReport failed = exp::run_campaign_service(spec, dir);
  EXPECT_EQ(failed.report.cells[5].retries, 3u);
  EXPECT_TRUE(exp::is_transient_error(failed.report.cells[5].status))
      << failed.report.cells[5].status;

  // The failure must not be cached: the fault-free resume retries exactly
  // that cell and converges to the golden report.
  util::set_fault_spec("");
  const exp::ServiceReport resumed = exp::run_campaign_service(spec, dir);
  EXPECT_EQ(resumed.cached, 7u);
  EXPECT_EQ(resumed.executed, 1u);
  EXPECT_EQ(exp::to_json(resumed.report), golden_json(spec));
  fs::remove_all(dir);
}

TEST(Retry, RetryCountsAppearInBothReportFormats) {
  FaultGuard guard;
  const exp::CampaignSpec spec = test_spec();
  util::set_fault_spec("cell.run.2:flake*1");
  const exp::ServiceReport report = exp::run_campaign_service(spec, "");
  EXPECT_NE(exp::to_json(report.report).find("\"retries\": 1"), std::string::npos);
  EXPECT_NE(exp::to_csv(report.report).find(",retries,"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault-point registry and the atomic writer's error paths.
// ---------------------------------------------------------------------------

TEST(FaultPoint, MalformedSpecsAreRejected) {
  EXPECT_THROW(util::set_fault_spec("no-colon"), std::invalid_argument);
  EXPECT_THROW(util::set_fault_spec("noindex:crash"), std::invalid_argument);
  EXPECT_THROW(util::set_fault_spec("site.x:crash"), std::invalid_argument);
  EXPECT_THROW(util::set_fault_spec("site.3:explode"), std::invalid_argument);
  EXPECT_THROW(util::set_fault_spec("site.3:crash*zero"), std::invalid_argument);
  EXPECT_THROW(util::set_fault_spec("site.3:crash*0"), std::invalid_argument);
}

TEST(FaultPoint, CountedSitesFireOnTheArmedHitOnly) {
  FaultGuard guard;
  util::set_fault_spec("t.hit.2:enospc");
  EXPECT_EQ(util::fault_hit("t.hit"), util::FaultAction::kNone);   // hit 0
  EXPECT_EQ(util::fault_hit("t.hit"), util::FaultAction::kNone);   // hit 1
  EXPECT_EQ(util::fault_hit("t.hit"), util::FaultAction::kEnospc); // hit 2
  EXPECT_EQ(util::fault_hit("t.hit"), util::FaultAction::kNone);   // count spent
}

TEST(FaultPoint, KeyedSitesMatchIdentityNotOrder) {
  FaultGuard guard;
  util::set_fault_spec("t.key.7:flake*2");
  EXPECT_EQ(util::fault_key("t.key", 3), util::FaultAction::kNone);
  EXPECT_EQ(util::fault_key("t.key", 7), util::FaultAction::kFlake);
  EXPECT_EQ(util::fault_key("t.key", 7), util::FaultAction::kFlake);
  EXPECT_EQ(util::fault_key("t.key", 7), util::FaultAction::kNone);  // count spent
}

TEST(FaultPoint, DisarmingResetsCounters) {
  FaultGuard guard;
  util::set_fault_spec("t.reset.0:enospc");
  EXPECT_EQ(util::fault_hit("t.reset"), util::FaultAction::kEnospc);
  util::set_fault_spec("t.reset.0:enospc");
  EXPECT_EQ(util::fault_hit("t.reset"), util::FaultAction::kEnospc);
  util::set_fault_spec("");
  EXPECT_EQ(util::fault_hit("t.reset"), util::FaultAction::kNone);
}

TEST(AtomicWrite, InjectedEnospcReportsAndPreservesTheTarget) {
  FaultGuard guard;
  const std::string dir = temp_dir("enospc");
  const std::string path = (fs::path(dir) / "report.json").string();
  ASSERT_EQ(util::write_file_atomic(path, "old contents"), "");
  util::set_fault_spec("file.write.0:enospc");
  const std::string err = util::write_file_atomic(path, "doomed");
  EXPECT_NE(err.find("no space left"), std::string::npos) << err;
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(text, "old contents");
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // the failed temp file is cleaned up
  fs::remove_all(dir);
}

TEST(AtomicWrite, JournalCommitSurfacesEnospcAsAnError) {
  FaultGuard guard;
  const exp::CampaignSpec spec = test_spec();
  const std::string dir = temp_dir("commit_enospc");
  util::set_fault_spec("journal.write.0:enospc");
  EXPECT_THROW(exp::run_campaign_service(spec, dir), std::runtime_error);
  // The directory is still a valid (empty) journal: the fault-free rerun
  // recomputes everything and succeeds.
  util::set_fault_spec("");
  const exp::ServiceReport resumed = exp::run_campaign_service(spec, dir);
  EXPECT_EQ(exp::to_json(resumed.report), golden_json(spec));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Spill-path failure surfacing (satellite b): an injected ENOSPC on the
// checker's spill file must keep the verdict and statistics identical to a
// clean run — the chunks stay in RAM — while CheckResult::io_error carries
// the diagnostic the CLI turns into a nonzero exit.
// ---------------------------------------------------------------------------

TEST(SpillFailure, EnospcSurfacesIoErrorWithoutChangingResults) {
  FaultGuard guard;
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions options;
  options.memory_limit_mb = 1;  // forces spilling on this ~3 MiB space

  const check::CheckResult clean = check::check_algorithm(*info.algorithm, 3, options);
  ASSERT_TRUE(clean.ok);
  ASSERT_TRUE(clean.io_error.empty());

  util::set_fault_spec("spill.append.0:enospc");
  const check::CheckResult faulted = check::check_algorithm(*info.algorithm, 3, options);
  EXPECT_TRUE(faulted.ok);
  EXPECT_NE(faulted.io_error.find("no space left"), std::string::npos) << faulted.io_error;
  EXPECT_EQ(faulted.states, clean.states);
  EXPECT_EQ(faulted.transitions, clean.transitions);
}

}  // namespace
}  // namespace melb
