// Cross-algorithm conformance matrix.
//
// Every registered algorithm runs against every scheduler at every small n,
// so a new registry entry is exercised across the whole harness without any
// test edits. Each cell of the matrix checks:
//  * the canonical run terminates (completes, or provably livelocks when the
//    registry says the algorithm is not livelock-free);
//  * the recorded execution is well-formed (§3.2);
//  * mutual exclusion holds whenever the registry claims it (and, for the
//    deliberately broken entry, that the validator agrees with the registry
//    on at least one cell);
//  * costs are self-consistent (sc_cost ≤ total accesses, run accounting
//    matches the execution).
// Register-only correct algorithms additionally go through the lower-bound
// pipeline per n: construct → encode → decode must round-trip to the
// canonical linearization, execution-for-execution.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "check/model_checker.h"
#include "exp/campaign.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "lb/construct.h"
#include "lb/decode.h"
#include "lb/encode.h"
#include "lb/verify.h"
#include "sim/canonical.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "util/permutation.h"

#include "testing_util.h"

namespace melb {
namespace {

const std::vector<int>& matrix_sizes() {
  static const std::vector<int> sizes = {2, 3, 4, 6, 8};
  return sizes;
}

std::vector<std::string> all_algorithm_names() {
  std::vector<std::string> names;
  for (const auto& info : algo::all_algorithms()) {
    names.push_back(info.algorithm->name());
  }
  return names;
}

class ConformanceMatrixTest : public ::testing::TestWithParam<std::string> {
 protected:
  const algo::AlgorithmInfo& info() const {
    return algo::algorithm_by_name(GetParam());
  }
};

// The canonical-run matrix rides the exp/ sweep engine: one campaign per
// algorithm across every scheduler and size, executed on a multi-worker pool,
// with the per-cell assertions applied to the engine's report. This both
// exercises the matrix and pins the engine's measurements to the registry's
// promises on every cell.
TEST_P(ConformanceMatrixTest, CanonicalRunsAcrossSchedulersAndSizes) {
  const auto& info = this->info();

  exp::CampaignSpec spec;
  spec.algorithms = {GetParam()};
  spec.schedulers = sim::scheduler_names();
  spec.sizes = matrix_sizes();
  spec.seed = 0xC0FFEE;
  spec.lb_pipeline = false;  // covered by EncodeDecodeRoundTripsAcrossSizes

  exp::RunOptions options;
  options.workers = 2;
  const auto report = exp::run_campaign(spec, options);
  ASSERT_EQ(report.cells.size(), spec.schedulers.size() * spec.sizes.size());
  ASSERT_FALSE(report.cancelled);

  bool saw_mutex_violation = false;
  for (const auto& cell : report.cells) {
    SCOPED_TRACE(cell.cell.algorithm + " n=" + std::to_string(cell.cell.n) + " under " +
                 cell.cell.scheduler);

    // The engine's verdict must agree with the registry's promises.
    EXPECT_EQ(cell.status, "ok");

    // Termination: a livelock-free algorithm must complete under every
    // scheduler; others must at least be *diagnosed* rather than time out.
    if (info.livelock_free) {
      ASSERT_TRUE(cell.completed) << (cell.livelocked ? "livelocked" : "step cap hit");
    } else {
      ASSERT_TRUE(cell.completed || cell.livelocked) << "step cap hit";
    }

    // Accounting: the cell's reported numbers describe its own execution.
    EXPECT_LE(cell.sc_cost, cell.total_accesses);
    EXPECT_GE(cell.steps, cell.exec_size);
    EXPECT_EQ(cell.reads + cell.writes + cell.rmws + cell.crits, cell.exec_size);
    EXPECT_LE(cell.free_reads, cell.reads + cell.rmws);

    EXPECT_EQ(cell.well_formed, "");
    if (info.mutex_correct) {
      EXPECT_EQ(cell.mutex, "");
    } else if (!cell.mutex.empty()) {
      saw_mutex_violation = true;
    }

    // Every process finished one try/enter/exit/rem cycle.
    if (cell.completed) {
      EXPECT_TRUE(cell.all_in_remainder);
    }
  }
  if (!info.mutex_correct) {
    EXPECT_TRUE(saw_mutex_violation)
        << "registry says " << GetParam()
        << " violates mutual exclusion, but no matrix cell exhibited it";
  }
}

TEST_P(ConformanceMatrixTest, TraceRoundTripsAcrossSizes) {
  const auto& info = this->info();
  const auto& algorithm = *info.algorithm;
  if (!info.livelock_free) GTEST_SKIP() << "no completed run guaranteed";
  for (const int n : matrix_sizes()) {
    SCOPED_TRACE(algorithm.name() + " n=" + std::to_string(n));
    sim::RoundRobinScheduler scheduler;
    const auto run = sim::run_canonical(algorithm, n, scheduler);
    ASSERT_TRUE(run.completed);
    const auto text = trace::to_text({algorithm.name(), n}, run.exec);
    const auto parsed = trace::from_text(text);
    EXPECT_EQ(parsed.header.algorithm, algorithm.name());
    EXPECT_EQ(parsed.header.n, n);
    std::string detail;
    const auto divergence = trace::first_divergence(run.exec, parsed.exec, &detail);
    EXPECT_FALSE(divergence.has_value()) << detail;
    // A parsed trace replays against the algorithm with identical annotations.
    const auto revalidated =
        sim::validate_steps(algorithm, n, parsed.raw_steps());
    EXPECT_FALSE(trace::first_divergence(run.exec, revalidated, &detail).has_value())
        << detail;
  }
}

TEST_P(ConformanceMatrixTest, EncodeDecodeRoundTripsAcrossSizes) {
  const auto& info = this->info();
  const auto& algorithm = *info.algorithm;
  if (!info.livelock_free || !info.mutex_correct || info.uses_rmw) {
    GTEST_SKIP() << "lower-bound pipeline covers register-only correct algorithms";
  }
  for (const int n : matrix_sizes()) {
    for (const bool reversed : {false, true}) {
      const auto pi =
          reversed ? util::Permutation::reversed(n) : util::Permutation(n);
      SCOPED_TRACE(algorithm.name() + " n=" + std::to_string(n) +
                   (reversed ? " pi=reverse" : " pi=identity"));
      const auto construction = lb::construct(algorithm, n, pi);
      const auto steps = construction.canonical_linearization();
      ASSERT_EQ(lb::verify_linearization(construction, steps), "");

      // The linearization is a real execution of the algorithm…
      const auto canonical = sim::validate_steps(algorithm, n, steps);
      EXPECT_EQ(sim::check_well_formed(canonical, n), "");
      EXPECT_EQ(sim::check_mutual_exclusion(canonical, n), "");

      // …and the encoding alone reconstructs a linearization of the same
      // metastep structure: identical per-process views and cost, critical
      // sections entered exactly in π order (interleaving may differ).
      const auto encoding = lb::encode(construction);
      EXPECT_EQ(encoding.n(), n);
      EXPECT_GT(encoding.binary_bits, 0u);
      const auto decoded = lb::decode(algorithm, encoding.text);
      EXPECT_EQ(sim::check_well_formed(decoded.execution, n), "");
      EXPECT_EQ(sim::check_mutual_exclusion(decoded.execution, n), "");
      EXPECT_EQ(decoded.execution.sc_cost(), canonical.sc_cost());
      EXPECT_EQ(testing_util::enter_order(decoded.execution), pi.order());
      for (sim::Pid p = 0; p < n; ++p) {
        const auto ours = decoded.execution.projection(p);
        const auto theirs = canonical.projection(p);
        ASSERT_EQ(ours.size(), theirs.size()) << "projection of pid " << p;
        for (std::size_t k = 0; k < ours.size(); ++k) {
          EXPECT_EQ(ours[k].step, theirs[k].step) << "pid " << p << " step " << k;
          EXPECT_EQ(ours[k].read_value, theirs[k].read_value)
              << "pid " << p << " step " << k;
        }
      }
    }
  }
}

// Symmetry reduction must never change a verdict, only shrink the explored
// quotient. For every pid-symmetric registry entry, a plain exploration and a
// --symmetry exploration at the same n must agree on ok/violation-kind, and
// the orbit count must sit in the Burnside envelope: at least plain/|G|
// (the identity fixes everything) and at most plain (a quotient never grows).
// A group of size 1 must reproduce plain mode state-for-state, and any
// counterexample the symmetry run reports must replay as a concrete
// execution exhibiting the violation.
TEST_P(ConformanceMatrixTest, SymmetryReductionAgreesWithPlain) {
  const auto& info = this->info();
  if (!info.pid_symmetric) {
    GTEST_SKIP() << "algorithm distinguishes concrete pids; --symmetry refuses it";
  }
  for (const int n : {2, 3}) {
    SCOPED_TRACE(info.algorithm->name() + " n=" + std::to_string(n));
    check::CheckOptions plain_options;
    plain_options.max_states = 4'000'000;
    const auto plain = check::check_algorithm(*info.algorithm, n, plain_options);
    ASSERT_FALSE(plain.exhausted_limit);

    auto sym_options = plain_options;
    sym_options.symmetry = true;
    const auto sym = check::check_algorithm(*info.algorithm, n, sym_options);
    ASSERT_FALSE(sym.exhausted_limit);

    EXPECT_EQ(sym.ok, plain.ok);
    EXPECT_EQ(sym.violation.empty(), plain.violation.empty());
    ASSERT_GE(sym.symmetry_group, 1u);
    EXPECT_LE(sym.states, plain.states);
    EXPECT_GE(sym.states * sym.symmetry_group, plain.states);
    if (sym.symmetry_group == 1) {
      EXPECT_EQ(sym.states, plain.states);
      EXPECT_EQ(sym.transitions, plain.transitions);
    }

    ASSERT_EQ(sym.counterexample.has_value(), plain.counterexample.has_value());
    if (sym.counterexample) {
      // The trace was reconstructed through the witness permutation chain; it
      // must be executable with concrete pids and show the same violation
      // kind the plain run reports.
      const auto exec = sim::validate_steps(*info.algorithm, n, *sym.counterexample);
      if (plain.violation.find("mutual exclusion") != std::string::npos) {
        EXPECT_NE(sim::check_mutual_exclusion(exec, n), "");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ConformanceMatrixTest,
                         ::testing::ValuesIn(all_algorithm_names()),
                         testing_util::AlgorithmNameGenerator());

// The matrix quantifies over the registry; guard the registry's shape so a
// refactor that empties it cannot silently pass the suite.
TEST(ConformanceMatrix, RegistryShape) {
  EXPECT_GE(algo::all_algorithms().size(), 14u);
  EXPECT_GE(algo::correct_algorithms().size(), 12u);
  EXPECT_GE(algo::register_algorithms().size(), 9u);
  for (const auto& info : algo::register_algorithms()) {
    EXPECT_FALSE(info.uses_rmw) << info.algorithm->name();
  }
}

}  // namespace
}  // namespace melb
