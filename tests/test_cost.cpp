// Cost model tests: Def. 3.1 semantics, model orderings (total ≥ CC/SC),
// DSM locality, and per-process attribution.
#include <gtest/gtest.h>

#include "algo/registry.h"
#include "cost/cost_model.h"
#include "sim/canonical.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace melb {
namespace {

using sim::CritKind;
using sim::RecordedStep;
using sim::Step;

sim::Execution handmade_execution() {
  sim::Execution e;
  e.append({Step::write(0, 0, 1), 0, true});
  e.append({Step::read(1, 0), 1, false});   // free busy-wait (same value re-read)
  e.append({Step::read(1, 0), 1, false});
  e.append({Step::read(1, 0), 1, true});    // finally observes a change
  e.append({Step::crit_step(0, CritKind::kTry), 0, true});
  e.append({Step::write(0, 1, 5), 0, true});
  return e;
}

TEST(StateChange, ChargesOnlyChangingAccesses) {
  cost::StateChangeCost model;
  const auto costs = model.per_process_cost(handmade_execution(), 2);
  EXPECT_EQ(costs[0], 2u);  // two writes; the critical step is free
  EXPECT_EQ(costs[1], 1u);  // one charged read out of three
  EXPECT_EQ(model.total_cost(handmade_execution(), 2), 3u);
  EXPECT_EQ(model.max_process_cost(handmade_execution(), 2), 2u);
}

TEST(TotalAccess, CountsEverything) {
  cost::TotalAccessCost model;
  EXPECT_EQ(model.total_cost(handmade_execution(), 2), 5u);
}

TEST(CacheCoherent, ReReadsHitCache) {
  cost::CacheCoherentCost model(2);
  const auto costs = model.per_process_cost(handmade_execution(), 2);
  // p1: first read misses; re-reads hit (no intervening write); total 1.
  EXPECT_EQ(costs[1], 1u);
  // p0: write r0 (miss), write r1 (miss).
  EXPECT_EQ(costs[0], 2u);
}

TEST(CacheCoherent, InvalidationChargesNextReader) {
  sim::Execution e;
  e.append({Step::read(1, 0), 0, true});     // p1 caches r0
  e.append({Step::write(0, 0, 7), 0, true}); // p0 invalidates
  e.append({Step::read(1, 0), 7, true});     // p1 misses again
  e.append({Step::read(1, 0), 7, false});    // hit
  cost::CacheCoherentCost model(1);
  const auto costs = model.per_process_cost(e, 2);
  EXPECT_EQ(costs[1], 2u);
  EXPECT_EQ(costs[0], 1u);
}

TEST(CacheCoherent, ExclusiveWriterWritesFree) {
  sim::Execution e;
  e.append({Step::write(0, 0, 1), 0, true});
  e.append({Step::write(0, 0, 2), 0, true});  // still exclusive: free
  e.append({Step::read(1, 0), 2, true});      // p1 shares the line
  e.append({Step::write(0, 0, 3), 0, true});  // must invalidate p1: charged
  cost::CacheCoherentCost model(1);
  const auto costs = model.per_process_cost(e, 2);
  EXPECT_EQ(costs[0], 2u);
}

TEST(Dsm, LocalAccessesFree) {
  // Yang–Anderson declares spin registers local to their process.
  const auto& info = algo::algorithm_by_name("yang-anderson");
  const int n = 4;
  const auto dsm = cost::DsmCost(*info.algorithm, n);
  sim::Execution e;
  const int first_spin = 3 * 3;  // 3 internal nodes at n=4
  e.append({Step::read(0, first_spin + 0), 0, true});   // own spin: local
  e.append({Step::read(0, first_spin + 1), 0, true});   // p1's spin: remote
  e.append({Step::write(0, 0, 1), 0, true});            // node register: remote
  const auto costs = dsm.per_process_cost(e, n);
  EXPECT_EQ(costs[0], 2u);
}

TEST(Dsm, DefaultOwnerIsRemote) {
  const auto& info = algo::algorithm_by_name("bakery");
  EXPECT_EQ(info.algorithm->register_owner(0, 4), -1);
  const auto dsm = cost::DsmCost(*info.algorithm, 4);
  sim::Execution e;
  e.append({Step::read(0, 0), 0, true});
  EXPECT_EQ(dsm.total_cost(e, 4), 1u);
}

TEST(Models, StandardModelsFactory) {
  const auto& info = algo::algorithm_by_name("bakery");
  const auto models = cost::standard_models(*info.algorithm, 4);
  ASSERT_EQ(models.size(), 4u);
  EXPECT_EQ(models[0]->name(), "total-accesses");
  EXPECT_EQ(models[1]->name(), "state-change");
}

TEST(Models, OrderingOnRealRuns) {
  // On any canonical run: total accesses ≥ SC cost, and total ≥ CC cost.
  for (const char* name : {"yang-anderson", "bakery", "burns"}) {
    const auto& info = algo::algorithm_by_name(name);
    const int n = 6;
    sim::RoundRobinScheduler sched;
    const auto run = sim::run_canonical(*info.algorithm, n, sched, sim::RunMode::kFaithful,
                                        1'000'000);
    ASSERT_TRUE(run.completed) << name;
    cost::TotalAccessCost total;
    cost::StateChangeCost sc;
    cost::CacheCoherentCost cc(info.algorithm->num_registers(n));
    EXPECT_GE(total.total_cost(run.exec, n), sc.total_cost(run.exec, n)) << name;
    EXPECT_GE(total.total_cost(run.exec, n), cc.total_cost(run.exec, n)) << name;
    EXPECT_GT(sc.total_cost(run.exec, n), 0u);
  }
}

TEST(Models, ScCostMatchesExecutionHelper) {
  const auto& info = algo::algorithm_by_name("filter");
  sim::RandomScheduler sched(5);
  const auto run = sim::run_canonical(*info.algorithm, 5, sched);
  ASSERT_TRUE(run.completed);
  cost::StateChangeCost sc;
  EXPECT_EQ(sc.total_cost(run.exec, 5), run.exec.sc_cost());
}

}  // namespace
}  // namespace melb
