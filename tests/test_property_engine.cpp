// Property-engine tests: parity of the pluggable mutex/progress properties
// with the legacy hardcoded path (byte-identical verdicts, traces, and
// statistics across worker counts and under --ddd/--symmetry), the lockout
// golden case (static-rr restricted to participant {1}), the certified
// rmr-bound cross-checked against measured canonical-run costs, and the
// cost-model factory.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "check/model_checker.h"
#include "check/property.h"
#include "cost/cost_model.h"
#include "sim/canonical.h"
#include "sim/execution.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

#include "testing_util.h"

namespace melb {
namespace {

// Everything worker-count-independent in a CheckResult, serialized so parity
// tests can compare runs byte-for-byte (the CLI's --check-determinism gate,
// extended with the property reports).
std::string signature(const check::CheckResult& r) {
  std::string s;
  s += "ok=" + std::to_string(r.ok);
  s += ";exhausted=" + std::to_string(r.exhausted_limit);
  s += ";violation=" + r.violation;
  s += ";states=" + std::to_string(r.states);
  s += ";transitions=" + std::to_string(r.transitions);
  s += ";dedup=" + std::to_string(r.dedup_hits);
  s += ";automata=" + std::to_string(r.interned_automata);
  s += ";regfiles=" + std::to_string(r.interned_regfiles);
  s += ";peak=" + std::to_string(r.peak_memory_bytes);
  s += ";visited=" + std::to_string(r.peak_visited_bytes);
  s += ";progress_peak=" + std::to_string(r.progress_peak_bytes);
  s += ";spilled=" + std::to_string(r.spilled_bytes);
  s += ";ddd_runs=" + std::to_string(r.ddd_runs);
  s += ";symmetry=" + std::to_string(r.symmetry_group);
  s += ";reports=";
  for (const auto& pr : r.property_reports) {
    s += pr.property + ":" + std::to_string(pr.holds) + ":" +
         std::to_string(pr.evaluated) + ":" +
         (pr.has_bound ? std::to_string(pr.bound) : "-") + ":" + pr.detail + "|";
  }
  s += ";trace=";
  if (r.counterexample) {
    for (const auto& step : *r.counterexample) s += to_string(step) + "|";
  }
  return s;
}

std::uint64_t rmr_bound_of(const check::CheckResult& r) {
  for (const auto& pr : r.property_reports) {
    if (pr.property.rfind("rmr-bound", 0) == 0) {
      EXPECT_TRUE(pr.evaluated);
      EXPECT_TRUE(pr.has_bound) << pr.detail;
      return pr.bound;
    }
  }
  ADD_FAILURE() << "no rmr-bound report";
  return 0;
}

// ---------------------------------------------------------------------------
// Parity: the explicit property list must reproduce the legacy boolean path
// byte for byte — same verdicts, traces, and every statistic — for correct
// and violating algorithms, across worker counts and engine modes.

TEST(PropertyEngineParity, ExplicitListMatchesLegacyBooleans) {
  for (const char* name : {"yang-anderson", "bakery", "naive-broken", "static-rr"}) {
    const auto& info = algo::algorithm_by_name(name);
    check::CheckOptions legacy;  // check_mutex + check_progress defaults
    const auto expected = check::check_algorithm(*info.algorithm, 2, legacy);

    check::CheckOptions explicit_list = legacy;
    explicit_list.properties = {"mutex", "progress"};
    const auto actual = check::check_algorithm(*info.algorithm, 2, explicit_list);
    EXPECT_EQ(signature(expected), signature(actual)) << name;

    // The instance-based primary entry point agrees too.
    check::PropertyList properties;
    properties.push_back(check::make_property("mutex", *info.algorithm, 2));
    properties.push_back(check::make_property("progress", *info.algorithm, 2));
    const auto direct =
        check::check(*info.algorithm, 2, std::move(properties), legacy);
    EXPECT_EQ(signature(expected), signature(direct)) << name;
  }
}

TEST(PropertyEngineParity, WorkerCountsAndModes) {
  const auto& info = algo::algorithm_by_name("yang-anderson");
  for (const bool ddd : {false, true}) {
    for (const bool symmetry : {false, true}) {
      check::CheckOptions base;
      base.max_states = 4'000'000;
      base.ddd = ddd;
      base.symmetry = symmetry;
      base.properties = {"mutex", "progress", "rmr-bound:state-change"};
      const auto reference = check::check_algorithm(*info.algorithm, 3, base);
      EXPECT_TRUE(reference.ok) << reference.violation;
      for (const int workers : {2, 4, 8}) {
        check::CheckOptions options = base;
        options.workers = workers;
        const auto result = check::check_algorithm(*info.algorithm, 3, options);
        EXPECT_EQ(signature(reference), signature(result))
            << "ddd=" << ddd << " symmetry=" << symmetry << " workers=" << workers;
      }
    }
  }
}

TEST(PropertyEngineParity, ViolationTraceIdenticalAcrossWorkers) {
  const auto& info = algo::algorithm_by_name("naive-broken");
  check::CheckOptions serial;
  serial.properties = {"mutex", "progress"};
  const auto reference = check::check_algorithm(*info.algorithm, 3, serial);
  EXPECT_FALSE(reference.ok);
  for (const int workers : {2, 8}) {
    check::CheckOptions options = serial;
    options.workers = workers;
    const auto result = check::check_algorithm(*info.algorithm, 3, options);
    EXPECT_EQ(signature(reference), signature(result)) << workers;
  }
}

// ---------------------------------------------------------------------------
// Lockout: the golden failing case is static-rr restricted to participant
// {1} — its lone process spins for a turn that can never arrive, which is a
// fair cycle by vacuity (no other participant exists to be scheduled).

TEST(PropertyLockout, StaticRrSubsetGoldenCase) {
  const auto& info = algo::algorithm_by_name("static-rr");
  check::CheckOptions options;
  options.participants = {1};
  options.properties = {"lockout"};
  const auto result = check::check_algorithm(*info.algorithm, 2, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("lockout"), std::string::npos) << result.violation;
  EXPECT_NE(result.violation.find("process 1"), std::string::npos) << result.violation;

  // Concrete counterexample: a real execution prefix ending with the step
  // the starving process repeats forever.
  ASSERT_TRUE(result.counterexample.has_value());
  ASSERT_FALSE(result.counterexample->empty());
  EXPECT_EQ(result.counterexample->back().pid, 1);
  EXPECT_NO_THROW(
      sim::validate_steps(*info.algorithm, 2, *result.counterexample));

  // All-participants static-rr is lockout-free (the turn passes through
  // everyone), exactly like its progress verdict.
  check::CheckOptions full;
  full.properties = {"lockout"};
  const auto ok = check::check_algorithm(*info.algorithm, 2, full);
  EXPECT_TRUE(ok.ok) << ok.violation;

  // And the subset sweep finds the failing subset automatically.
  const auto subsets = check::check_all_subsets(*info.algorithm, 2, full);
  EXPECT_FALSE(subsets.ok);
  EXPECT_NE(subsets.violation.find("participants {1}"), std::string::npos)
      << subsets.violation;
}

TEST(PropertyLockout, HoldsForStarvationFreeAlgorithms) {
  for (const char* name : {"yang-anderson", "bakery", "ticket-rmw"}) {
    const auto& info = algo::algorithm_by_name(name);
    check::CheckOptions options;
    options.properties = {"mutex", "progress", "lockout"};
    const auto result = check::check_algorithm(*info.algorithm, 2, options);
    EXPECT_TRUE(result.ok) << name << ": " << result.violation;
    for (const auto& pr : result.property_reports) {
      EXPECT_TRUE(pr.evaluated) << name << "/" << pr.property;
      EXPECT_TRUE(pr.holds) << name << "/" << pr.property << ": " << pr.detail;
    }
  }
}

TEST(PropertyLockout, WorkerParity) {
  const auto& info = algo::algorithm_by_name("static-rr");
  check::CheckOptions base;
  base.participants = {1};
  base.properties = {"lockout"};
  const auto reference = check::check_algorithm(*info.algorithm, 3, base);
  EXPECT_FALSE(reference.ok);
  for (const int workers : {4, 8}) {
    check::CheckOptions options = base;
    options.workers = workers;
    const auto result = check::check_algorithm(*info.algorithm, 3, options);
    EXPECT_EQ(signature(reference), signature(result)) << workers;
  }
}

TEST(PropertyLockout, RejectsSymmetryReduction) {
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions options;
  options.symmetry = true;
  check::PropertyList properties;
  properties.push_back(check::make_property("lockout", *info.algorithm, 2));
  EXPECT_THROW(check::check(*info.algorithm, 2, std::move(properties), options),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// rmr-bound: certified worst-case cost to enter the CS.

// Max measured state-change cost any process pays before its first CS entry
// on one concrete (canonical round-robin) execution — a lower bound for the
// checker's all-paths certificate.
std::uint64_t measured_entry_cost(const sim::Algorithm& algorithm, int n,
                                  const cost::CostModel& model) {
  sim::RoundRobinScheduler scheduler;
  const auto run =
      sim::run_canonical(algorithm, n, scheduler, sim::RunMode::kFaithful);
  EXPECT_TRUE(run.completed);
  std::vector<std::uint64_t> cost(static_cast<std::size_t>(n), 0);
  std::vector<bool> entered(static_cast<std::size_t>(n), false);
  std::uint64_t best = 0;
  for (const auto& rs : run.exec.steps()) {
    const auto pid = static_cast<std::size_t>(rs.step.pid);
    if (rs.step.type == sim::StepType::kCrit &&
        rs.step.crit == sim::CritKind::kEnter && !entered[pid]) {
      entered[pid] = true;
      best = std::max(best, cost[pid]);
    }
    if (!entered[pid] && rs.step.is_memory_access()) {
      cost[pid] += model.step_cost(rs.step.pid, rs.step.reg, rs.state_changed);
    }
  }
  return best;
}

TEST(PropertyRmrBound, YangAndersonCrossCheckedAgainstCanonicalRuns) {
  const auto& info = algo::algorithm_by_name("yang-anderson");
  const auto model = cost::make_cost_model("state-change", *info.algorithm, 4);
  for (const int n : {2, 3, 4}) {
    check::CheckOptions options;
    options.max_states = 8'000'000;
    options.symmetry = true;  // keeps n=4 cheap; the bound is mode-invariant
    options.properties = {"rmr-bound:state-change"};
    const auto result = check::check_algorithm(*info.algorithm, n, options);
    EXPECT_TRUE(result.ok) << result.violation;
    EXPECT_FALSE(result.exhausted_limit);
    const std::uint64_t bound = rmr_bound_of(result);

    const auto local_model = cost::make_cost_model("state-change", *info.algorithm, n);
    const std::uint64_t measured = measured_entry_cost(*info.algorithm, n, *local_model);
    EXPECT_GT(measured, 0u) << "n=" << n;
    EXPECT_GE(bound, measured) << "n=" << n;
  }
  (void)model;
}

TEST(PropertyRmrBound, DeterministicAcrossModesAndWorkers) {
  // The certified bound is a pure function of (algorithm, n): identical in
  // plain, DDD, symmetry, and multi-worker runs even though the explored
  // quotients differ.
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions plain;
  plain.max_states = 4'000'000;
  plain.properties = {"rmr-bound:state-change"};
  const auto reference = check::check_algorithm(*info.algorithm, 3, plain);
  const std::uint64_t bound = rmr_bound_of(reference);
  EXPECT_GT(bound, 0u);

  for (const bool ddd : {false, true}) {
    for (const bool symmetry : {false, true}) {
      for (const int workers : {1, 4}) {
        check::CheckOptions options = plain;
        options.ddd = ddd;
        options.symmetry = symmetry;
        options.workers = workers;
        const auto result = check::check_algorithm(*info.algorithm, 3, options);
        EXPECT_EQ(rmr_bound_of(result), bound)
            << "ddd=" << ddd << " symmetry=" << symmetry << " workers=" << workers;
      }
    }
  }
}

TEST(PropertyRmrBound, TotalAccessesUnboundedForBusyWaiting) {
  // Alur–Taubenfeld: counting every access, any busy-waiting mutex algorithm
  // has unbounded entry cost — the spin itself is charged.
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions options;
  options.properties = {"rmr-bound:total-accesses"};
  const auto result = check::check_algorithm(*info.algorithm, 2, options);
  EXPECT_TRUE(result.ok) << result.violation;  // a measurement, not a verdict
  ASSERT_EQ(result.property_reports.size(), 1u);
  const auto& pr = result.property_reports.front();
  EXPECT_TRUE(pr.evaluated);
  EXPECT_FALSE(pr.has_bound);
  EXPECT_NE(pr.detail.find("unbounded"), std::string::npos) << pr.detail;
}

TEST(PropertyRmrBound, DsmBoundedForLocalSpinAlgorithm) {
  // yang-anderson spins on locally-owned registers, so its DSM (remote
  // reference) entry cost is bounded — the contrast with total-accesses.
  const auto& info = algo::algorithm_by_name("yang-anderson");
  check::CheckOptions options;
  options.properties = {"rmr-bound:dsm"};
  const auto result = check::check_algorithm(*info.algorithm, 2, options);
  ASSERT_EQ(result.property_reports.size(), 1u);
  EXPECT_TRUE(result.property_reports.front().has_bound)
      << result.property_reports.front().detail;
}

TEST(PropertyRmrBound, RejectsHistoryDependentModel) {
  const auto& info = algo::algorithm_by_name("yang-anderson");
  EXPECT_THROW(check::make_property("rmr-bound:cache-coherent", *info.algorithm, 2),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Factory + misc API surface.

TEST(PropertyFactory, UnknownSpecThrows) {
  const auto& info = algo::algorithm_by_name("bakery");
  EXPECT_THROW(check::make_property("liveness", *info.algorithm, 2),
               std::invalid_argument);
  EXPECT_EQ(check::property_names().size(), 4u);
}

TEST(PropertyFactory, EffectiveSpecsHonorLegacyBooleans) {
  check::CheckOptions options;
  EXPECT_EQ(check::effective_property_specs(options),
            (std::vector<std::string>{"mutex", "progress"}));
  options.check_progress = false;
  EXPECT_EQ(check::effective_property_specs(options),
            (std::vector<std::string>{"mutex"}));
  options.properties = {"lockout"};  // explicit list wins over the booleans
  EXPECT_EQ(check::effective_property_specs(options),
            (std::vector<std::string>{"lockout"}));
}

TEST(CostModelFactory, NamesRoundTripAndUnknownThrows) {
  const auto& info = algo::algorithm_by_name("yang-anderson");
  const auto& names = cost::cost_model_names();
  ASSERT_EQ(names.size(), 4u);
  for (const auto& name : names) {
    const auto model = cost::make_cost_model(name, *info.algorithm, 3);
    EXPECT_EQ(model->name(), name);
  }
  EXPECT_THROW(cost::make_cost_model("zonk", *info.algorithm, 3),
               std::invalid_argument);
  // standard_models is now factory-backed, in canonical order.
  const auto models = cost::standard_models(*info.algorithm, 3);
  ASSERT_EQ(models.size(), names.size());
  for (std::size_t i = 0; i < models.size(); ++i) {
    EXPECT_EQ(models[i]->name(), names[i]);
  }
}

TEST(CostModelFactory, StepCostSumsToPerProcessCost) {
  // For every model that supports per-access costing, summing step_cost over
  // an execution's memory accesses must equal per_process_cost — the
  // property the rmr-bound fixpoint relies on.
  const auto& info = algo::algorithm_by_name("bakery");
  const int n = 3;
  sim::RoundRobinScheduler scheduler;
  const auto run =
      sim::run_canonical(*info.algorithm, n, scheduler, sim::RunMode::kFaithful);
  ASSERT_TRUE(run.completed);
  bool any_supported = false;
  for (const auto& name : cost::cost_model_names()) {
    const auto model = cost::make_cost_model(name, *info.algorithm, n);
    if (!model->supports_step_cost()) {
      EXPECT_EQ(name, "cache-coherent");
      EXPECT_THROW(model->step_cost(0, 0, true), std::logic_error);
      continue;
    }
    any_supported = true;
    std::vector<std::uint64_t> summed(static_cast<std::size_t>(n), 0);
    for (const auto& rs : run.exec.steps()) {
      if (!rs.step.is_memory_access()) continue;
      summed[static_cast<std::size_t>(rs.step.pid)] +=
          model->step_cost(rs.step.pid, rs.step.reg, rs.state_changed);
    }
    EXPECT_EQ(summed, model->per_process_cost(run.exec, n)) << name;
  }
  EXPECT_TRUE(any_supported);
}

}  // namespace
}  // namespace melb
