// Direct tests of the paper's supporting lemmas (§5.2–§5.3), beyond the
// end-to-end theorem tests in test_lb_pipeline.cpp.
#include <gtest/gtest.h>

#include "algo/registry.h"
#include "lb/construct.h"
#include "lb/linearize.h"
#include "sim/simulator.h"
#include "util/permutation.h"
#include "util/prng.h"

#include "testing_util.h"

namespace melb {
namespace {

lb::ConstructOptions with_snapshots() {
  lb::ConstructOptions options;
  options.keep_stage_snapshots = true;
  return options;
}

class LemmaTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LemmaTest, Lemma52_OrderIsAcyclicPartialOrder) {
  const auto& algorithm = *algo::algorithm_by_name(GetParam()).algorithm;
  const int n = 5;
  const auto c = lb::construct(algorithm, n, util::Permutation::reversed(n));
  // Antisymmetry: a ≼ b and b ≼ a only when a = b. (Acyclicity is enforced
  // at insertion; this re-checks the closure.)
  const int size = c.order.size();
  for (int a = 0; a < size; ++a) {
    for (int b = a + 1; b < size; ++b) {
      EXPECT_FALSE(c.order.leq(a, b) && c.order.leq(b, a))
          << "m" << a << " and m" << b << " mutually ordered";
    }
  }
  // A topological order exists (topo_order throws on cycles).
  EXPECT_NO_THROW(lb::topo_order(c.metasteps, c.order, {}));
}

TEST_P(LemmaTest, Lemma53_WriteMetastepsPerRegisterTotallyOrdered) {
  const auto& algorithm = *algo::algorithm_by_name(GetParam()).algorithm;
  const int n = 6;
  util::Xoshiro256StarStar rng(2024);
  const auto c = lb::construct(algorithm, n, util::Permutation::random(n, rng));
  for (const auto& chain : c.writes_by_reg) {
    for (std::size_t i = 0; i < chain.size(); ++i) {
      for (std::size_t j = i + 1; j < chain.size(); ++j) {
        // Creation order must agree with ≼ (the chain invariant the
        // construction's min-write search relies on).
        EXPECT_TRUE(c.order.leq(chain[i], chain[j]))
            << "writes m" << chain[i] << ", m" << chain[j] << " not ordered";
      }
    }
  }
}

TEST_P(LemmaTest, Lemma54_EarlierProcessesCannotDistinguishStages) {
  // For i ≤ j ≤ k: the projection of any stage-j linearization onto process
  // π(i) equals its projection in stage k — later processes are invisible.
  const auto& algorithm = *algo::algorithm_by_name(GetParam()).algorithm;
  const int n = 5;
  const auto pi = util::Permutation::reversed(n);
  const auto c = lb::construct(algorithm, n, pi, with_snapshots());
  ASSERT_EQ(c.stages.size(), static_cast<std::size_t>(n));

  // Annotated projections (including observed read values) per stage.
  std::vector<std::vector<std::vector<sim::RecordedStep>>> proj(c.stages.size());
  for (std::size_t stage = 0; stage < c.stages.size(); ++stage) {
    const auto steps = lb::linearize(c.stages[stage].metasteps, c.stages[stage].order);
    const auto exec = sim::validate_steps(algorithm, n, steps);
    proj[stage].resize(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      proj[stage][static_cast<std::size_t>(p)] = exec.projection(p);
    }
  }
  for (std::size_t j = 0; j < c.stages.size(); ++j) {
    for (std::size_t k = j; k < c.stages.size(); ++k) {
      for (std::size_t i = 0; i <= j; ++i) {
        const auto p = static_cast<std::size_t>(pi.at(static_cast<int>(i)));
        const auto& a = proj[j][p];
        const auto& b = proj[k][p];
        ASSERT_EQ(a.size(), b.size()) << "stage " << j << " vs " << k << " process " << p;
        for (std::size_t s = 0; s < a.size(); ++s) {
          EXPECT_EQ(a[s].step, b[s].step);
          EXPECT_EQ(a[s].read_value, b[s].read_value)
              << "process " << p << " observed a later process (step " << s << ")";
        }
      }
    }
  }
}

TEST_P(LemmaTest, Theorem55_StagePrefixCompletesInOrder) {
  // In every stage i, processes π(0..i) complete their critical sections in
  // π order (the full-execution case is covered by the pipeline tests).
  const auto& algorithm = *algo::algorithm_by_name(GetParam()).algorithm;
  const int n = 4;
  util::Xoshiro256StarStar rng(7);
  const auto pi = util::Permutation::random(n, rng);
  const auto c = lb::construct(algorithm, n, pi, with_snapshots());
  for (std::size_t stage = 0; stage < c.stages.size(); ++stage) {
    const auto steps = lb::linearize(c.stages[stage].metasteps, c.stages[stage].order);
    const auto exec = sim::validate_steps(algorithm, n, steps);
    std::vector<sim::Pid> enters;
    for (const auto& rs : exec.steps()) {
      if (rs.step.type == sim::StepType::kCrit && rs.step.crit == sim::CritKind::kEnter) {
        enters.push_back(rs.step.pid);
      }
    }
    std::vector<sim::Pid> expected;
    for (std::size_t i = 0; i <= stage; ++i) expected.push_back(pi.at(static_cast<int>(i)));
    EXPECT_EQ(enters, expected) << "stage " << stage;
  }
}

TEST_P(LemmaTest, ProcessChainsAreTotallyOrdered) {
  // The encoder's Pc(p, m) numbering requires each process's metasteps to
  // form a ≼-chain in chain order.
  const auto& algorithm = *algo::algorithm_by_name(GetParam()).algorithm;
  const int n = 5;
  const auto c = lb::construct(algorithm, n, util::Permutation(n));
  for (int p = 0; p < n; ++p) {
    const auto& chain = c.process_chain[static_cast<std::size_t>(p)];
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      EXPECT_TRUE(c.order.leq(chain[i], chain[i + 1]))
          << "process " << p << " chain broken at " << i;
      EXPECT_NE(chain[i], chain[i + 1]);
    }
  }
}

TEST_P(LemmaTest, PrereadsOrderedBeforeTheirWriteMetastep) {
  const auto& algorithm = *algo::algorithm_by_name(GetParam()).algorithm;
  const int n = 6;
  const auto c = lb::construct(algorithm, n, util::Permutation::reversed(n));
  int preads = 0;
  for (const auto& m : c.metasteps) {
    for (lb::MetastepId r : m.pread) {
      ++preads;
      EXPECT_TRUE(c.order.leq(r, m.id));
      EXPECT_EQ(c.metasteps[static_cast<std::size_t>(r)].type, lb::MetastepType::kRead);
      EXPECT_EQ(c.metasteps[static_cast<std::size_t>(r)].reg, m.reg);
    }
  }
  // Yang–Anderson constructions do produce prereads (spin resets / rival
  // announcements); make sure the property is not vacuous for at least the
  // tree algorithm.
  if (algorithm.name() == "yang-anderson") {
    EXPECT_GT(preads, 0);
  }
}

TEST_P(LemmaTest, FastPathMatchesLiteralFig1Evaluation) {
  // The incremental-automaton Construct must agree, at every iteration, with
  // the literal δ(Plin(M, ≼, m'), j) computation of Fig. 1 — checked inline
  // by paranoid_replay_check (throws std::logic_error on divergence) — and
  // produce the identical structure.
  const auto& algorithm = *algo::algorithm_by_name(GetParam()).algorithm;
  const int n = 6;
  util::Xoshiro256StarStar rng(31);
  const auto pi = util::Permutation::random(n, rng);

  lb::ConstructOptions paranoid;
  paranoid.paranoid_replay_check = true;
  const auto checked = lb::construct(algorithm, n, pi, paranoid);
  const auto fast = lb::construct(algorithm, n, pi);

  ASSERT_EQ(checked.metasteps.size(), fast.metasteps.size());
  EXPECT_EQ(checked.delta_evaluations, fast.delta_evaluations);
  EXPECT_EQ(checked.insertions, fast.insertions);
  const auto a = checked.canonical_linearization();
  const auto b = fast.canonical_linearization();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, LemmaTest,
                         ::testing::Values("yang-anderson", "bakery", "burns", "dijkstra",
                                           "lamport-fast", "dekker-tree", "kessels-tree"),
                         testing_util::AlgorithmNameGenerator());

}  // namespace
}  // namespace melb
