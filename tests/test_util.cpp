// Unit tests for the utility substrate: PRNG, permutations, bitsets,
// varints, statistics, table formatting.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "util/bitset.h"
#include "util/chart.h"
#include "util/hash.h"
#include "util/permutation.h"
#include "util/prng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/varint.h"

namespace melb {
namespace {

TEST(Prng, DeterministicForSeed) {
  util::Xoshiro256StarStar a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)c;
  }
}

TEST(Prng, DifferentSeedsDiffer) {
  util::Xoshiro256StarStar a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Prng, BelowIsInRange) {
  util::Xoshiro256StarStar rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Prng, BelowRoughlyUniform) {
  util::Xoshiro256StarStar rng(11);
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.below(4)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Prng, UnitInHalfOpenInterval) {
  util::Xoshiro256StarStar rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Permutation, IdentityBasics) {
  util::Permutation pi(5);
  EXPECT_EQ(pi.size(), 5);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(pi.at(k), k);
    EXPECT_EQ(pi.rank(k), k);
  }
  EXPECT_TRUE(pi.leq(0, 4));
  EXPECT_TRUE(pi.leq(2, 2));
  EXPECT_FALSE(pi.leq(4, 0));
}

TEST(Permutation, ExplicitOrderAndRank) {
  // pi = (4 2 1 3) in the paper's notation on elements {1..4} maps here to
  // 0-based (3 1 0 2): element 3 is ordered lowest.
  util::Permutation pi({3, 1, 0, 2});
  EXPECT_EQ(pi.rank(3), 0);
  EXPECT_EQ(pi.rank(2), 3);
  EXPECT_TRUE(pi.leq(3, 0));
  EXPECT_FALSE(pi.leq(2, 1));
}

TEST(Permutation, RejectsNonPermutation) {
  EXPECT_THROW(util::Permutation({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(util::Permutation({0, 3}), std::invalid_argument);
}

TEST(Permutation, RandomIsPermutation) {
  util::Xoshiro256StarStar rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pi = util::Permutation::random(12, rng);
    std::set<int> seen(pi.order().begin(), pi.order().end());
    EXPECT_EQ(seen.size(), 12u);
  }
}

TEST(Permutation, AllEnumeratesFactorial) {
  EXPECT_EQ(util::Permutation::all(1).size(), 1u);
  EXPECT_EQ(util::Permutation::all(3).size(), 6u);
  EXPECT_EQ(util::Permutation::all(4).size(), 24u);
  // All distinct.
  const auto perms = util::Permutation::all(4);
  std::set<std::vector<int>> distinct;
  for (const auto& p : perms) distinct.insert(p.order());
  EXPECT_EQ(distinct.size(), 24u);
}

TEST(Permutation, ReversedOrder) {
  const auto pi = util::Permutation::reversed(4);
  EXPECT_EQ(pi.at(0), 3);
  EXPECT_EQ(pi.at(3), 0);
}

TEST(Permutation, InvertedIsTheRankArray) {
  const util::Permutation pi({3, 1, 0, 2});
  const auto inv = pi.inverted();
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(inv.at(v), pi.rank(v));
    EXPECT_EQ(inv.at(pi.at(v)), v);
    EXPECT_EQ(pi.at(inv.at(v)), v);
  }
  EXPECT_EQ(inv.inverted(), pi);
  EXPECT_EQ(util::Permutation(5).inverted(), util::Permutation(5));
}

TEST(Permutation, ComposeAppliesRightThenLeft) {
  const util::Permutation a({1, 2, 0});
  const util::Permutation b({2, 1, 0});
  const auto c = util::Permutation::compose(a, b);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(c.at(k), a.at(b.at(k)));
  }
  // Composition is not commutative for these two.
  EXPECT_NE(util::Permutation::compose(b, a), c);
  // Composing with the inverse on either side yields the identity — the
  // property the checker's witness-chain replay relies on.
  EXPECT_EQ(util::Permutation::compose(a, a.inverted()), util::Permutation(3));
  EXPECT_EQ(util::Permutation::compose(a.inverted(), a), util::Permutation(3));
  EXPECT_THROW(util::Permutation::compose(a, util::Permutation(4)),
               std::invalid_argument);
}

TEST(Bitset, SetTestReset) {
  util::DynamicBitset bits(130);
  EXPECT_FALSE(bits.test(0));
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(Bitset, OrWithAndFindFirst) {
  util::DynamicBitset a(70), b(70);
  a.set(3);
  b.set(65);
  a.or_with(b);
  EXPECT_TRUE(a.test(3));
  EXPECT_TRUE(a.test(65));
  EXPECT_EQ(a.find_first(), 3u);
  a.reset(3);
  EXPECT_EQ(a.find_first(), 65u);
  a.reset(65);
  EXPECT_EQ(a.find_first(), 70u);
  EXPECT_FALSE(a.any());
}

TEST(Bitset, ResizePreservesBits) {
  util::DynamicBitset bits(10);
  bits.set(9);
  bits.resize(200);
  EXPECT_TRUE(bits.test(9));
  EXPECT_FALSE(bits.test(100));
  bits.set(199);
  EXPECT_EQ(bits.count(), 2u);
}

TEST(Varint, RoundTrip) {
  std::vector<std::uint8_t> buf;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 16383, 16384, 1ULL << 40,
                                  ~0ULL};
  for (auto v : values) util::put_varint(buf, v);
  std::size_t pos = 0;
  for (auto v : values) {
    const auto got = util::get_varint(buf, pos);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, SizeMatchesEncoding) {
  for (std::uint64_t v : {0ULL, 127ULL, 128ULL, 99999ULL, ~0ULL}) {
    std::vector<std::uint8_t> buf;
    util::put_varint(buf, v);
    EXPECT_EQ(buf.size(), util::varint_size(v));
  }
}

TEST(Varint, TruncatedInputFails) {
  std::vector<std::uint8_t> buf;
  util::put_varint(buf, 300);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_FALSE(util::get_varint(buf, pos).has_value());
}

TEST(Stats, RunningStatsBasics) {
  util::RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0);
  }
  const auto fit = util::fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Hash, DistinctInputsDistinctDigests) {
  util::Hasher a, b;
  a.add_all({1, 2, 3});
  b.add_all({1, 2, 4});
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, OrderSensitive) {
  util::Hasher a, b;
  a.add_all({1, 2});
  b.add_all({2, 1});
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, ZobristSlotAndValueSensitive) {
  EXPECT_NE(util::zobrist(0, 7), util::zobrist(1, 7));  // same value, other slot
  EXPECT_NE(util::zobrist(0, 7), util::zobrist(0, 8));  // same slot, other value
  // Swapping values across slots must not cancel under XOR.
  EXPECT_NE(util::zobrist(0, 1) ^ util::zobrist(1, 2),
            util::zobrist(0, 2) ^ util::zobrist(1, 1));
}

TEST(Hash, ZobristIncrementalUpdateMatchesFullRecompute) {
  // digest = XOR over slots; changing slot 2 from 5 to 9 must be a two-XOR
  // update — this is the property the model checker's O(1) state fingerprint
  // maintenance depends on.
  const std::int64_t before[4] = {3, -1, 5, 7};
  const std::int64_t after[4] = {3, -1, 9, 7};
  std::uint64_t full_before = 0, full_after = 0;
  for (std::uint64_t s = 0; s < 4; ++s) {
    full_before ^= util::zobrist_signed(s, before[s]);
    full_after ^= util::zobrist_signed(s, after[s]);
  }
  const std::uint64_t incremental =
      full_before ^ util::zobrist_signed(2, 5) ^ util::zobrist_signed(2, 9);
  EXPECT_EQ(incremental, full_after);
  EXPECT_NE(full_before, full_after);
}

TEST(Table, FormatsAligned) {
  util::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "20"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("20"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
}


TEST(Chart, RendersSeriesAndLegend) {
  util::ChartSeries linear{"linear", 'a', {1, 2, 4, 8}, {1, 2, 4, 8}};
  util::ChartSeries quad{"quadratic", 'q', {1, 2, 4, 8}, {1, 4, 16, 64}};
  const std::string out = util::render_chart({linear, quad});
  EXPECT_NE(out.find("a = linear"), std::string::npos);
  EXPECT_NE(out.find("q = quadratic"), std::string::npos);
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('q'), std::string::npos);
  EXPECT_NE(out.find("log2 scale"), std::string::npos);
}

TEST(Chart, EmptyAndDegenerate) {
  EXPECT_NE(util::render_chart({}).find("empty"), std::string::npos);
  util::ChartSeries single{"one", 'x', {5}, {5}};
  EXPECT_NE(util::render_chart({single}).find("x = one"), std::string::npos);
}

TEST(Chart, OverlapMarkedWithPlus) {
  util::ChartSeries a{"a", 'a', {1, 8}, {1, 8}};
  util::ChartSeries b{"b", 'b', {1, 8}, {1, 8}};  // identical points
  const std::string out = util::render_chart({a, b});
  EXPECT_NE(out.find('+'), std::string::npos);
}

}  // namespace
}  // namespace melb
