// Unit tests for the simulator core: steps, executions, validators, the
// simulator itself (SC accounting, forced replay), and schedulers.
#include <gtest/gtest.h>

#include "algo/simple.h"
#include "sim/canonical.h"
#include "sim/execution.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace melb {
namespace {

using sim::CritKind;
using sim::RecordedStep;
using sim::Step;
using sim::StepType;

TEST(Step, FactoryAndEquality) {
  const Step r = Step::read(1, 3);
  EXPECT_EQ(r.type, StepType::kRead);
  EXPECT_EQ(r.pid, 1);
  EXPECT_EQ(r.reg, 3);
  EXPECT_TRUE(r.is_memory_access());

  const Step w = Step::write(0, 2, 7);
  EXPECT_EQ(w.value, 7);
  EXPECT_NE(r, w);
  EXPECT_EQ(w, Step::write(0, 2, 7));

  const Step c = Step::crit_step(4, CritKind::kEnter);
  EXPECT_FALSE(c.is_memory_access());
}

TEST(Step, ToStringForms) {
  EXPECT_EQ(to_string(Step::read(1, 3)), "read_1(r3)");
  EXPECT_EQ(to_string(Step::write(0, 2, 7)), "write_0(r2, 7)");
  EXPECT_EQ(to_string(Step::crit_step(4, CritKind::kEnter)), "enter_4");
}

Step crit(int pid, CritKind k) { return Step::crit_step(pid, k); }

sim::Execution exec_of(std::initializer_list<Step> steps) {
  sim::Execution e;
  for (const Step& s : steps) e.append(RecordedStep{s, 0, true});
  return e;
}

TEST(Validators, WellFormedAcceptsFullCycle) {
  const auto e = exec_of({crit(0, CritKind::kTry), crit(0, CritKind::kEnter),
                          crit(0, CritKind::kExit), crit(0, CritKind::kRem)});
  EXPECT_EQ(sim::check_well_formed(e, 1), "");
}

TEST(Validators, WellFormedRejectsSkippedStage) {
  const auto e = exec_of({crit(0, CritKind::kTry), crit(0, CritKind::kExit)});
  EXPECT_NE(sim::check_well_formed(e, 1), "");
}

TEST(Validators, WellFormedRejectsEnterWithoutTry) {
  const auto e = exec_of({crit(0, CritKind::kEnter)});
  EXPECT_NE(sim::check_well_formed(e, 1), "");
}

TEST(Validators, MutexDetectsOverlap) {
  const auto bad = exec_of({crit(0, CritKind::kTry), crit(1, CritKind::kTry),
                            crit(0, CritKind::kEnter), crit(1, CritKind::kEnter)});
  EXPECT_NE(sim::check_mutual_exclusion(bad, 2), "");

  const auto good = exec_of({crit(0, CritKind::kTry), crit(1, CritKind::kTry),
                             crit(0, CritKind::kEnter), crit(0, CritKind::kExit),
                             crit(1, CritKind::kEnter)});
  EXPECT_EQ(sim::check_mutual_exclusion(good, 2), "");
}

TEST(Execution, CostsAndProjection) {
  sim::Execution e;
  e.append({Step::write(0, 0, 1), 0, true});
  e.append({Step::read(1, 0), 0, false});  // free busy-wait read
  e.append({Step::read(1, 0), 1, true});
  e.append({crit(0, CritKind::kTry), 0, true});  // critical steps never cost
  EXPECT_EQ(e.sc_cost(), 2u);
  EXPECT_EQ(e.total_accesses(), 3u);
  EXPECT_EQ(e.projection(1).size(), 2u);
  EXPECT_EQ(e.projection(0).size(), 2u);
}

TEST(Execution, SectionsTracksCriticalSteps) {
  sim::Execution e;
  e.append({crit(0, CritKind::kTry), 0, true});
  e.append({crit(1, CritKind::kTry), 0, true});
  e.append({crit(0, CritKind::kEnter), 0, true});
  const auto sections = e.sections(3);
  EXPECT_EQ(sections[0], sim::Section::kCritical);
  EXPECT_EQ(sections[1], sim::Section::kTrying);
  EXPECT_EQ(sections[2], sim::Section::kRemainder);
}

TEST(Simulator, StaticRoundRobinSoloRun) {
  algo::StaticRoundRobinAlgorithm alg;
  sim::Simulator s(alg, 1);
  while (!s.all_done()) s.step(0);
  EXPECT_EQ(sim::check_well_formed(s.execution(), 1), "");
  // try, read turn (sc), enter, exit, write turn (sc), rem.
  EXPECT_EQ(s.sc_cost(), 2u);
}

TEST(Simulator, FreeSpinIsNotCharged) {
  algo::StaticRoundRobinAlgorithm alg;
  sim::Simulator s(alg, 2);
  // Process 1 tries first and spins on turn == 1 while turn is 0.
  s.step(1);  // try_1
  for (int i = 0; i < 10; ++i) s.step(1);  // free reads
  EXPECT_EQ(s.sc_cost(), 0u);
  EXPECT_FALSE(s.next_step_productive(1));
  EXPECT_TRUE(s.next_step_productive(0));
}

TEST(Simulator, ForceStepValidates) {
  algo::StaticRoundRobinAlgorithm alg;
  sim::Simulator s(alg, 1);
  EXPECT_NO_THROW(s.force_step(Step::crit_step(0, CritKind::kTry)));
  EXPECT_THROW(s.force_step(Step::write(0, 0, 9)), sim::InvalidStepError);
  EXPECT_THROW(s.force_step(Step{StepType::kCrit, 7, -1, 0, CritKind::kTry}),
               sim::InvalidStepError);
}

TEST(Simulator, ValidateStepsRoundTrip) {
  algo::StaticRoundRobinAlgorithm alg;
  sim::Simulator s(alg, 2);
  sim::RoundRobinScheduler sched;
  const auto run = sim::run_canonical(alg, 2, sched);
  ASSERT_TRUE(run.completed);
  std::vector<Step> raw;
  for (const auto& rs : run.exec.steps()) raw.push_back(rs.step);
  const auto replayed = sim::validate_steps(alg, 2, raw);
  EXPECT_EQ(replayed.sc_cost(), run.exec.sc_cost());
}

TEST(Simulator, ReplayProcessMatchesLiveState) {
  algo::StaticRoundRobinAlgorithm alg;
  sim::RoundRobinScheduler sched;
  const auto run = sim::run_canonical(alg, 3, sched);
  ASSERT_TRUE(run.completed);
  std::vector<Step> raw;
  for (const auto& rs : run.exec.steps()) raw.push_back(rs.step);
  for (sim::Pid p = 0; p < 3; ++p) {
    const auto automaton = sim::replay_process(alg, 3, raw, p);
    EXPECT_TRUE(automaton->done());
  }
}

TEST(Scheduler, RoundRobinCycles) {
  sim::RoundRobinScheduler s;
  EXPECT_EQ(s.pick({0, 1, 2}), 0);
  EXPECT_EQ(s.pick({0, 1, 2}), 1);
  EXPECT_EQ(s.pick({0, 1, 2}), 2);
  EXPECT_EQ(s.pick({0, 1, 2}), 0);
  EXPECT_EQ(s.pick({1, 2}), 1);
}

TEST(Scheduler, SequentialPicksLowest) {
  sim::SequentialScheduler s;
  EXPECT_EQ(s.pick({2, 3, 5}), 2);
}

TEST(Scheduler, ConvoyFollowsPermutation) {
  sim::ConvoyScheduler s(util::Permutation({2, 0, 1}));
  EXPECT_EQ(s.pick({0, 1, 2}), 2);
  EXPECT_EQ(s.pick({0, 1}), 0);
}

TEST(Scheduler, RandomIsDeterministicPerSeed) {
  sim::RandomScheduler a(5), b(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.pick({0, 1, 2, 3}), b.pick({0, 1, 2, 3}));
}

TEST(Canonical, LivelockDetected) {
  // Only process 1 participates: static-rr spins on turn==1 forever while
  // nobody will ever write turn. The productive-only runner must prove it.
  algo::StaticRoundRobinAlgorithm alg;
  sim::Simulator s(alg, 2);
  s.step(1);  // try_1 — now spinning
  EXPECT_FALSE(s.next_step_productive(1));
  // Full canonical run with both processes completes fine.
  sim::RoundRobinScheduler sched;
  const auto run = sim::run_canonical(alg, 2, sched);
  EXPECT_TRUE(run.completed);
  EXPECT_FALSE(run.livelocked);
}

TEST(Canonical, FaithfulModeRecordsFreeReads) {
  algo::StaticRoundRobinAlgorithm alg;
  sim::RoundRobinScheduler sched;
  const auto run =
      sim::run_canonical(alg, 3, sched, sim::RunMode::kFaithful, 100000);
  ASSERT_TRUE(run.completed);
  EXPECT_GT(run.exec.total_accesses(), run.exec.sc_cost());
}

}  // namespace
}  // namespace melb
