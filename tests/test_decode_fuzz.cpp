// Byte-level fuzzing of the decoder on damaged real encodings.
//
// test_decode_robustness.cpp corrupts at cell granularity; here we damage the
// raw E_π string the way storage or transport would — truncation at arbitrary
// byte offsets, single-bit flips, byte substitutions, and random garbage with
// the right alphabet. The decoder's contract for every such input is: throw a
// std::exception (or decode to *some* valid execution of the algorithm), and
// never crash, hang, or hand back an execution that violates well-formedness.
// Deterministic by construction: all randomness flows from fixed seeds
// through util::Xoshiro256StarStar.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "lb/construct.h"
#include "lb/decode.h"
#include "lb/encode.h"
#include "sim/execution.h"
#include "util/permutation.h"
#include "util/prng.h"

#include "testing_util.h"

namespace melb {
namespace {

struct FuzzOutcome {
  int rejected = 0;   // decoder threw
  int accepted = 0;   // decoder produced an execution
};

// Feed one damaged string through the decoder, asserting the contract: any
// accepted output must still be a well-formed execution (decode validates
// every step against δ internally, so acceptance means "valid execution of
// the algorithm"; we re-check the §3.2 properties on top).
FuzzOutcome feed(const sim::Algorithm& algorithm, const std::string& damaged) {
  FuzzOutcome outcome;
  try {
    // parse_encoding throws on lexical damage, decode on semantic damage —
    // parsing first also yields n without re-parsing an accepted string.
    const int n = static_cast<int>(lb::parse_encoding(damaged).size());
    const auto decoded = lb::decode(algorithm, damaged);
    ++outcome.accepted;
    EXPECT_EQ(sim::check_well_formed(decoded.execution, n), "");
  } catch (const std::exception&) {
    ++outcome.rejected;
  }
  return outcome;
}

std::string real_encoding(const sim::Algorithm& algorithm, int n) {
  return lb::encode(lb::construct(algorithm, n, util::Permutation::reversed(n))).text;
}

class DecodeFuzzTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DecodeFuzzTest, TruncationAtEveryByteNeverCrashes) {
  const auto& algorithm = *algo::algorithm_by_name(GetParam()).algorithm;
  const auto text = real_encoding(algorithm, 4);
  ASSERT_FALSE(text.empty());
  FuzzOutcome total;
  for (std::size_t len = 0; len < text.size(); ++len) {
    SCOPED_TRACE("prefix length " + std::to_string(len));
    const auto outcome = feed(algorithm, text.substr(0, len));
    total.rejected += outcome.rejected;
    total.accepted += outcome.accepted;
  }
  // A dense format leaves little room for valid proper prefixes: the decoder
  // must reject the overwhelming majority (an all-'$' prefix is the main
  // benign case — it encodes fewer processes doing nothing).
  EXPECT_GE(total.rejected * 10, static_cast<int>(text.size()) * 9)
      << "accepted " << total.accepted << " of " << text.size() << " prefixes";
}

TEST_P(DecodeFuzzTest, SingleBitFlipsNeverCrash) {
  const auto& algorithm = *algo::algorithm_by_name(GetParam()).algorithm;
  const auto text = real_encoding(algorithm, 4);
  ASSERT_FALSE(text.empty());
  util::Xoshiro256StarStar rng(0xF1A9ULL);
  FuzzOutcome total;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    std::string damaged = text;
    const auto pos = rng.below(damaged.size());
    const auto bit = rng.below(8);
    damaged[pos] = static_cast<char>(
        static_cast<unsigned char>(damaged[pos]) ^ (1u << bit));
    SCOPED_TRACE("flip bit " + std::to_string(bit) + " at byte " + std::to_string(pos));
    const auto outcome = feed(algorithm, damaged);
    total.rejected += outcome.rejected;
    total.accepted += outcome.accepted;
  }
  EXPECT_GE(total.rejected * 10, trials * 8)
      << "accepted " << total.accepted << "/" << trials << " bit-flipped strings";
}

TEST_P(DecodeFuzzTest, ByteSubstitutionsNeverCrash) {
  const auto& algorithm = *algo::algorithm_by_name(GetParam()).algorithm;
  const auto text = real_encoding(algorithm, 3);
  ASSERT_FALSE(text.empty());
  // Substitute with bytes from the format's own alphabet — harder to reject
  // lexically than arbitrary binary, so this stresses semantic validation.
  const std::string alphabet = "RWPSC#$,0123456789";
  util::Xoshiro256StarStar rng(0xBEEFULL);
  for (int trial = 0; trial < 300; ++trial) {
    std::string damaged = text;
    const auto pos = rng.below(damaged.size());
    damaged[pos] = alphabet[rng.below(alphabet.size())];
    if (damaged == text) continue;
    SCOPED_TRACE("substitute at byte " + std::to_string(pos));
    feed(algorithm, damaged);  // contract assertions live inside feed()
  }
}

TEST_P(DecodeFuzzTest, RandomAlphabetSoupNeverCrashes) {
  const auto& algorithm = *algo::algorithm_by_name(GetParam()).algorithm;
  const std::string alphabet = "RWPSC#$,0123456789";
  util::Xoshiro256StarStar rng(0x50D4ULL);
  for (int trial = 0; trial < 200; ++trial) {
    const auto length = rng.below(64);
    std::string soup;
    for (std::uint64_t i = 0; i < length; ++i) {
      soup += alphabet[rng.below(alphabet.size())];
    }
    SCOPED_TRACE("soup trial " + std::to_string(trial));
    feed(algorithm, soup);
  }
}

TEST_P(DecodeFuzzTest, SplicedColumnsNeverCrash) {
  // Mix columns from two different real encodings of the same algorithm —
  // every fragment is locally plausible, but the cross-process signature
  // bookkeeping should not add up (or must decode to a valid execution).
  const auto& algorithm = *algo::algorithm_by_name(GetParam()).algorithm;
  const auto a = lb::encode(lb::construct(algorithm, 4, util::Permutation(4)));
  const auto b = lb::encode(lb::construct(algorithm, 4, util::Permutation::reversed(4)));
  util::Xoshiro256StarStar rng(0x5EEDULL);
  for (int trial = 0; trial < 20; ++trial) {
    std::string spliced;
    for (int col = 0; col < 4; ++col) {
      const auto& source = (rng.below(2) == 0) ? a.cells : b.cells;
      for (const auto& cell : source[static_cast<std::size_t>(col)]) {
        spliced += cell;
        spliced += '#';
      }
      spliced += '$';
    }
    SCOPED_TRACE("splice trial " + std::to_string(trial));
    feed(algorithm, spliced);
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, DecodeFuzzTest,
                         ::testing::Values("yang-anderson", "bakery", "burns",
                                           "peterson-tree"),
                         testing_util::AlgorithmNameGenerator());

}  // namespace
}  // namespace melb
