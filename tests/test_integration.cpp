// Cross-cutting integration sweeps: the full proof pipeline exhaustively
// over S₄ for every register algorithm, trace round trips through the
// pipeline, and simulator/RMW interactions that the per-module suites touch
// only individually.
#include <gtest/gtest.h>

#include <set>

#include "algo/registry.h"
#include "lb/construct.h"
#include "lb/decode.h"
#include "lb/encode.h"
#include "lb/linearize.h"
#include "sim/canonical.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "util/permutation.h"

namespace melb {
namespace {

TEST(ExhaustiveS4, EveryRegisterAlgorithmEveryPermutation) {
  // 24 permutations × every register algorithm: the complete Theorem 5.5 +
  // 7.4 + 7.5 chain, exhaustively at n = 4.
  for (const auto& info : algo::register_algorithms()) {
    const auto& algorithm = *info.algorithm;
    std::set<std::string> encodings;
    for (const auto& pi : util::Permutation::all(4)) {
      const auto c = lb::construct(algorithm, 4, pi);
      const auto encoding = lb::encode(c);
      encodings.insert(encoding.text);
      const auto decoded = lb::decode(algorithm, encoding.text);
      std::vector<sim::Pid> order;
      for (const auto& rs : decoded.execution.steps()) {
        if (rs.step.type == sim::StepType::kCrit &&
            rs.step.crit == sim::CritKind::kEnter) {
          order.push_back(rs.step.pid);
        }
      }
      EXPECT_EQ(order, pi.order()) << algorithm.name();
    }
    EXPECT_EQ(encodings.size(), 24u) << algorithm.name();
  }
}

TEST(TracePipeline, ConstructedExecutionSurvivesSerialization) {
  // construct -> linearize -> trace text -> parse -> revalidate: annotations
  // must be bit-identical end to end.
  for (const char* name : {"yang-anderson", "bakery", "kessels-tree"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    const int n = 6;
    const auto c = lb::construct(algorithm, n, util::Permutation::reversed(n));
    const auto exec = sim::validate_steps(algorithm, n, c.canonical_linearization());
    const auto parsed = trace::from_text(trace::to_text({name, n}, exec));
    EXPECT_EQ(trace::first_divergence(exec, parsed.exec), std::nullopt) << name;
    const auto revalidated = sim::validate_steps(algorithm, n, parsed.raw_steps());
    EXPECT_EQ(trace::first_divergence(exec, revalidated), std::nullopt) << name;
  }
}

TEST(SchedulerMatrix, RmwLocksUnderConvoy) {
  // Convoy admission order must not break the RMW locks, and ticket must
  // still serve in ticket order (which convoy-reversed makes reversed).
  for (const char* name : {"ttas-rmw", "ticket-rmw", "mcs-rmw"}) {
    const auto& info = algo::algorithm_by_name(name);
    const int n = 6;
    sim::ConvoyScheduler sched(util::Permutation::reversed(n));
    const auto run = sim::run_canonical(*info.algorithm, n, sched);
    ASSERT_TRUE(run.completed) << name;
    EXPECT_EQ(sim::check_mutual_exclusion(run.exec, n), "") << name;
  }
}

TEST(PartialLinearize, PrefixOfFullLinearization) {
  // Plin(M, ≼, m) must itself be a valid execution for any m, and its
  // metastep set must be downward closed.
  const auto& algorithm = *algo::algorithm_by_name("bakery").algorithm;
  const int n = 4;
  const auto c = lb::construct(algorithm, n, util::Permutation::reversed(n));
  for (std::size_t id = 0; id < c.metasteps.size(); id += 7) {
    const auto steps = lb::partial_linearize(c.metasteps, c.order,
                                             static_cast<lb::MetastepId>(id));
    EXPECT_NO_THROW(sim::validate_steps(algorithm, n, steps)) << "m" << id;
  }
}

TEST(CanonicalModes, ProductiveRunIsSubsequenceOfBehaviour) {
  // In productive-only mode every recorded memory step is charged (free
  // steps are skipped by construction, except transient wakeup races).
  const auto& algorithm = *algo::algorithm_by_name("bakery").algorithm;
  sim::SequentialScheduler sched;
  const auto run = sim::run_canonical(algorithm, 8, sched);
  ASSERT_TRUE(run.completed);
  std::uint64_t free_steps = 0;
  for (const auto& rs : run.exec.steps()) {
    if (rs.step.is_memory_access() && !rs.state_changed) ++free_steps;
  }
  EXPECT_EQ(free_steps, 0u);  // sequential: no wakeup races at all
}

TEST(RegistryInvariants, NamesUniqueAndFactoriesDeterministic) {
  std::set<std::string> names;
  for (const auto& info : algo::all_algorithms()) {
    EXPECT_TRUE(names.insert(info.algorithm->name()).second)
        << "duplicate name " << info.algorithm->name();
    // Factory determinism: two fresh automata have identical fingerprints.
    const auto a = info.algorithm->make_process(0, 4);
    const auto b = info.algorithm->make_process(0, 4);
    EXPECT_EQ(a->fingerprint(), b->fingerprint()) << info.algorithm->name();
    EXPECT_FALSE(a->done());
  }
}

TEST(RegistryInvariants, RegisterInitsConsistent) {
  for (const auto& info : algo::all_algorithms()) {
    const int n = 5;
    const int regs = info.algorithm->num_registers(n);
    EXPECT_GT(regs, 0) << info.algorithm->name();
    for (int r = 0; r < regs; ++r) {
      // Owner, if any, must be a valid pid.
      const auto owner = info.algorithm->register_owner(r, n);
      EXPECT_GE(owner, -1);
      EXPECT_LT(owner, n);
    }
  }
}

}  // namespace
}  // namespace melb
