// Shared helpers for the gtest suites.
//
// Keep this header dependency-light (gtest + sim types only): every suite
// includes it, and it must not drag the whole library into small unit tests.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/execution.h"
#include "sim/types.h"

namespace melb::testing_util {

// Registry names use '-', which gtest parameter names do not allow.
inline std::string gtest_safe_name(const std::string& name) {
  std::string safe = name;
  for (auto& c : safe) {
    if (c == '-') c = '_';
  }
  return safe;
}

// Name generator for INSTANTIATE_TEST_SUITE_P over algorithm names (works
// for both const char* and std::string params).
struct AlgorithmNameGenerator {
  template <typename ParamType>
  std::string operator()(const ::testing::TestParamInfo<ParamType>& info) const {
    return gtest_safe_name(std::string(info.param));
  }
};

using sim::enter_order;

}  // namespace melb::testing_util
