// Integration & property tests for the lower-bound pipeline:
//   Theorem 5.5 — Construct(π)'s linearizations enter critical sections in π
//                 order (and are valid executions of the algorithm);
//   Lemma 6.1   — every linearization of (M, ≼) has the same SC cost;
//   Theorem 6.2 — |E_π| = O(C(α_π));
//   Theorem 7.4 — Decode(Encode(M, ≼)) is a linearization of (M, ≼);
//   Theorem 7.5 — α_π ≠ α_π' for π ≠ π' (injectivity / counting argument).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "algo/registry.h"
#include "lb/construct.h"
#include "lb/decode.h"
#include "lb/encode.h"
#include "lb/linearize.h"
#include "sim/execution.h"
#include "sim/simulator.h"
#include "util/permutation.h"
#include "util/prng.h"

#include "testing_util.h"

namespace melb {
namespace {

using util::Permutation;
using testing_util::enter_order;

struct PipelineCase {
  std::string algorithm;
  int n;
};

class PipelineTest : public ::testing::TestWithParam<PipelineCase> {
 protected:
  std::vector<Permutation> sample_permutations(int n) const {
    std::vector<Permutation> pis;
    pis.emplace_back(n);                       // identity
    pis.push_back(Permutation::reversed(n));   // reverse
    util::Xoshiro256StarStar rng(0xABCDEF);
    for (int i = 0; i < 4; ++i) pis.push_back(Permutation::random(n, rng));
    return pis;
  }
};

TEST_P(PipelineTest, ConstructLinearizationIsValidAndOrdered) {
  const auto [name, n] = GetParam();
  const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
  for (const auto& pi : sample_permutations(n)) {
    const auto construction = lb::construct(algorithm, n, pi);
    const auto steps = construction.canonical_linearization();
    // Valid execution of the algorithm (validate_steps throws otherwise).
    const auto exec = sim::validate_steps(algorithm, n, steps);
    EXPECT_EQ(sim::check_well_formed(exec, n), "");
    EXPECT_EQ(sim::check_mutual_exclusion(exec, n), "");
    // Theorem 5.5: critical sections in π order.
    EXPECT_EQ(enter_order(exec), pi.order()) << name << " n=" << n;
  }
}

TEST_P(PipelineTest, AllLinearizationsSameCostAndOrder) {
  const auto [name, n] = GetParam();
  const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
  util::Xoshiro256StarStar rng(7);
  const Permutation pi = Permutation::random(n, rng);
  const auto construction = lb::construct(algorithm, n, pi);

  const auto canonical = sim::validate_steps(algorithm, n, construction.canonical_linearization());
  const auto cost = canonical.sc_cost();
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 42ULL, 99ULL}) {
    lb::LinearizePolicy policy;
    policy.random_seed = seed;
    const auto steps = lb::linearize(construction.metasteps, construction.order, policy);
    const auto exec = sim::validate_steps(algorithm, n, steps);
    EXPECT_EQ(exec.sc_cost(), cost);                    // Lemma 6.1
    EXPECT_EQ(enter_order(exec), pi.order());           // Theorem 5.5
  }
}

TEST_P(PipelineTest, EncodeDecodeRoundTrip) {
  const auto [name, n] = GetParam();
  const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
  for (const auto& pi : sample_permutations(n)) {
    const auto construction = lb::construct(algorithm, n, pi);
    const auto encoding = lb::encode(construction);
    const auto decoded = lb::decode(algorithm, encoding.text);

    // The decoder's output must be a valid execution with the right CS order
    // and the cost of (every) linearization.
    EXPECT_EQ(sim::check_mutual_exclusion(decoded.execution, n), "");
    EXPECT_EQ(enter_order(decoded.execution), pi.order());
    const auto canonical =
        sim::validate_steps(algorithm, n, construction.canonical_linearization());
    EXPECT_EQ(decoded.execution.sc_cost(), canonical.sc_cost());

    // Stronger: the decoded step multiset per process matches the
    // construction (same steps, possibly different interleaving).
    for (sim::Pid p = 0; p < n; ++p) {
      const auto a = decoded.execution.projection(p);
      const auto b = canonical.projection(p);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k].step, b[k].step);
    }
  }
}

TEST_P(PipelineTest, EncodingLengthLinearInCost) {
  const auto [name, n] = GetParam();
  const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
  util::Xoshiro256StarStar rng(13);
  for (int trial = 0; trial < 3; ++trial) {
    const Permutation pi = Permutation::random(n, rng);
    const auto construction = lb::construct(algorithm, n, pi);
    const auto encoding = lb::encode(construction);
    const auto exec =
        sim::validate_steps(algorithm, n, construction.canonical_linearization());
    const double cost = static_cast<double>(exec.sc_cost());
    // Theorem 6.2 with an explicit constant: each unit of SC cost contributes
    // O(1) amortized cells/bits. Crit metasteps add ~4 cells per process.
    const double cells = static_cast<double>(encoding.binary_bits) / 3.0;
    EXPECT_LE(cells, 8.0 * cost + 16.0 * n + 64.0) << name << " n=" << n;
  }
}

std::vector<PipelineCase> pipeline_cases() {
  std::vector<PipelineCase> cases;
  for (const char* a : {"yang-anderson", "bakery", "peterson-tree", "filter", "dijkstra",
                        "burns", "lamport-fast", "dekker-tree", "kessels-tree"}) {
    for (int n : {1, 2, 3, 5, 8}) cases.push_back({a, n});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Algorithms, PipelineTest, ::testing::ValuesIn(pipeline_cases()),
                         [](const ::testing::TestParamInfo<PipelineCase>& param_info) {
                           return testing_util::gtest_safe_name(
                               param_info.param.algorithm + "_n" +
                               std::to_string(param_info.param.n));
                         });

TEST(Injectivity, AllPermutationsDistinctExecutions) {
  // Theorem 7.5's counting step: for every π the pipeline yields a distinct
  // execution — n! distinct decodings at n = 4 (24 permutations).
  const auto& algorithm = *algo::algorithm_by_name("yang-anderson").algorithm;
  const int n = 4;
  std::set<std::string> encodings;
  std::set<std::vector<sim::Pid>> orders;
  for (const auto& pi : Permutation::all(n)) {
    const auto construction = lb::construct(algorithm, n, pi);
    const auto encoding = lb::encode(construction);
    encodings.insert(encoding.text);
    const auto decoded = lb::decode(algorithm, encoding.text);
    orders.insert(enter_order(decoded.execution));
  }
  EXPECT_EQ(encodings.size(), 24u);
  EXPECT_EQ(orders.size(), 24u);
}

TEST(Injectivity, BakeryAllPermutationsN3) {
  const auto& algorithm = *algo::algorithm_by_name("bakery").algorithm;
  std::set<std::string> encodings;
  for (const auto& pi : Permutation::all(3)) {
    encodings.insert(lb::encode(lb::construct(algorithm, 3, pi)).text);
  }
  EXPECT_EQ(encodings.size(), 6u);
}

TEST(Construct, StaticRrFailsLivelockFreedom) {
  // static-rr is not livelock-free; the construction must detect the stall
  // instead of spinning (processes later in π than pid 0 wait on `turn`
  // which nobody will advance... unless π = identity, where it happens to
  // work out). Reverse order stalls immediately.
  const auto& algorithm = *algo::algorithm_by_name("static-rr").algorithm;
  EXPECT_THROW(lb::construct(algorithm, 3, Permutation::reversed(3)), std::runtime_error);
}

TEST(Construct, InstrumentationPopulated) {
  const auto& algorithm = *algo::algorithm_by_name("bakery").algorithm;
  const auto construction = lb::construct(algorithm, 4, Permutation(4));
  EXPECT_GT(construction.delta_evaluations, 0u);
  EXPECT_GT(construction.creations, 0u);
  EXPECT_EQ(construction.metasteps.size(),
            static_cast<std::size_t>(construction.order.size()));
  // Process chains are nonempty and start with the try metastep.
  for (int p = 0; p < 4; ++p) {
    const auto& chain = construction.process_chain[static_cast<std::size_t>(p)];
    ASSERT_FALSE(chain.empty());
    const auto& first = construction.metasteps[static_cast<std::size_t>(chain.front())];
    ASSERT_TRUE(first.crit.has_value());
    EXPECT_EQ(first.crit->crit, sim::CritKind::kTry);
  }
}

TEST(Encoding, CellGrammarParses) {
  lb::Signature sig;
  EXPECT_TRUE(lb::parse_signature_cell("W,PR2R3W4", sig));
  EXPECT_EQ(sig.prereads, 2);
  EXPECT_EQ(sig.readers, 3);
  EXPECT_EQ(sig.writers, 4);
  EXPECT_FALSE(lb::parse_signature_cell("W", sig));
  EXPECT_FALSE(lb::parse_signature_cell("R", sig));
  EXPECT_THROW(lb::parse_signature_cell("W,PRxR1W1", sig), std::invalid_argument);
}

TEST(Encoding, ParseRoundTrip) {
  const std::string text = "C#W,PR0R1W1#C#$C#R#C#$";
  const auto cols = lb::parse_encoding(text);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], (std::vector<std::string>{"C", "W,PR0R1W1", "C"}));
  EXPECT_EQ(cols[1], (std::vector<std::string>{"C", "R", "C"}));
  EXPECT_THROW(lb::parse_encoding("##"), std::invalid_argument);
  EXPECT_THROW(lb::parse_encoding("C#unterminated"), std::invalid_argument);
}

TEST(Decode, RejectsGarbage) {
  const auto& algorithm = *algo::algorithm_by_name("bakery").algorithm;
  EXPECT_THROW(lb::decode(algorithm, "Z#$"), std::runtime_error);
  // A syntactically fine but semantically wrong encoding stalls or
  // mismatches types.
  EXPECT_THROW(lb::decode(algorithm, "R#$"), std::runtime_error);
}

}  // namespace
}  // namespace melb
