// Schedule files: round-trip fidelity, fixture corpus, and byte-level fuzz.
//
// The parser's contract mirrors the decoder's (test_decode_fuzz.cpp): for
// any input bytes it either returns a Schedule whose every field is in range
// or throws ScheduleParseError with a line-numbered diagnostic — never UB,
// never a crash, never a partially-validated result. Accepted schedules must
// additionally be safe to *replay*: the replay scheduler either executes the
// pid sequence or raises ScheduleDivergedError, so a damaged-but-parseable
// file still cannot corrupt a run. The fixture corpus under tests/fixtures/
// pins the on-disk format: recorded runs replay to their original traces,
// the committed adversary witness re-measures to its certified bound, and
// the malformed samples keep producing their diagnostics.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "cost/cost_model.h"
#include "sim/canonical.h"
#include "sim/schedule.h"
#include "sim/scheduler.h"
#include "trace/trace.h"
#include "util/prng.h"

#include "testing_util.h"

namespace melb {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(MELB_FIXTURE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << fixture_path(name);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// A real recorded schedule to damage: random-replay on peterson-tree keeps
// the pid list long enough for interesting corruption while staying fast.
sim::Schedule record_run(const std::string& algorithm_name, int n, std::uint64_t seed) {
  const auto& info = algo::algorithm_by_name(algorithm_name);
  sim::RecordingScheduler recorder(sim::make_scheduler("random", n, seed));
  const auto run = sim::run_canonical(*info.algorithm, n, recorder);
  EXPECT_TRUE(run.completed);
  sim::Schedule schedule;
  schedule.algorithm = algorithm_name;
  schedule.n = n;
  schedule.mode = sim::RunMode::kProductiveOnly;
  schedule.source = "record random seed=" + std::to_string(seed);
  schedule.pids = recorder.picks();
  return schedule;
}

// The fuzz contract: parse either throws ScheduleParseError or yields a
// schedule safe to hand to the replay machinery (which may itself report
// divergence, but must not misbehave).
struct FuzzOutcome {
  int rejected = 0;
  int accepted = 0;
};

FuzzOutcome feed(const std::string& text) {
  FuzzOutcome outcome;
  try {
    const auto schedule = sim::parse_schedule(text);
    ++outcome.accepted;
    EXPECT_GE(schedule.n, 1);
    EXPECT_LE(schedule.n, 64);
    for (const auto pid : schedule.pids) {
      EXPECT_GE(pid, 0);
      EXPECT_LT(pid, schedule.n);
    }
    // An accepted schedule replays or diverges cleanly — corruption that
    // survives parsing must surface as a diagnostic, not as UB downstream.
    try {
      const auto& info = algo::algorithm_by_name(schedule.algorithm);
      sim::ReplayScheduler replayer(schedule.pids);
      (void)sim::run_canonical(*info.algorithm, schedule.n, replayer, schedule.mode,
                               schedule.pids.size());
    } catch (const sim::ScheduleDivergedError&) {
    } catch (const std::out_of_range&) {
      // Damaged algorithm name: the registry rejects it.
    }
  } catch (const sim::ScheduleParseError& e) {
    ++outcome.rejected;
    EXPECT_NE(std::string(e.what()).find("schedule line"), std::string::npos)
        << "diagnostic without a line number: " << e.what();
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Round trip and writer validation.
// ---------------------------------------------------------------------------

TEST(ScheduleFormat, RoundTripsAllFields) {
  sim::Schedule schedule;
  schedule.algorithm = "yang-anderson";
  schedule.n = 4;
  schedule.mode = sim::RunMode::kFaithful;
  schedule.source = "adversary cost=state-change bound=20 victim=1";
  for (int i = 0; i < 47; ++i) schedule.pids.push_back(static_cast<sim::Pid>(i % 4));

  const auto text = sim::schedule_to_text(schedule);
  const auto parsed = sim::parse_schedule(text);
  EXPECT_EQ(parsed.algorithm, schedule.algorithm);
  EXPECT_EQ(parsed.n, schedule.n);
  EXPECT_EQ(parsed.mode, schedule.mode);
  EXPECT_EQ(parsed.source, schedule.source);
  EXPECT_EQ(parsed.pids, schedule.pids);
  // Writer output is canonical: re-serializing the parse is byte-identical.
  EXPECT_EQ(sim::schedule_to_text(parsed), text);
}

TEST(ScheduleFormat, EmptyScheduleRoundTrips) {
  sim::Schedule schedule;
  schedule.algorithm = "bakery";
  schedule.n = 2;
  schedule.source = "empty";
  const auto parsed = sim::parse_schedule(sim::schedule_to_text(schedule));
  EXPECT_TRUE(parsed.pids.empty());
  EXPECT_EQ(parsed.mode, sim::RunMode::kProductiveOnly);
}

TEST(ScheduleFormat, WriterRejectsMultilineSource) {
  sim::Schedule schedule;
  schedule.algorithm = "bakery";
  schedule.n = 2;
  schedule.source = "line one\nline two";
  EXPECT_THROW((void)sim::schedule_to_text(schedule), std::invalid_argument);
}

TEST(ScheduleFormat, MalformedInputsGetLineNumberedDiagnostics) {
  const auto base = sim::schedule_to_text(record_run("peterson-tree", 2, 7));
  struct Case {
    const char* label;
    std::string text;
    const char* expect;  // substring of the diagnostic
  };
  const Case cases[] = {
      {"empty input", "", "unexpected end of file"},
      {"bad magic", "melb-schedule v2\n", "bad magic"},
      {"missing header", "melb-schedule v1\nn 2\n", "expected 'algorithm NAME'"},
      {"bad n", "melb-schedule v1\nalgorithm bakery\nn zero\n", "COUNT in 1..64"},
      {"n too large", "melb-schedule v1\nalgorithm bakery\nn 65\n", "COUNT in 1..64"},
      {"bad mode",
       "melb-schedule v1\nalgorithm bakery\nn 2\nmode eager\n",
       "'mode productive' or 'mode faithful'"},
      {"bad steps",
       "melb-schedule v1\nalgorithm bakery\nn 2\nmode productive\nsource s\nsteps -1\n",
       "expected 'steps COUNT'"},
      {"huge steps",
       "melb-schedule v1\nalgorithm bakery\nn 2\nmode productive\nsource s\n"
       "steps 99999999999\n",
       "implausibly large"},
      {"pid out of range",
       "melb-schedule v1\nalgorithm bakery\nn 2\nmode productive\nsource s\nsteps 2\n"
       "0 2\nend melb-schedule\n",
       "bad pid '2'"},
      {"negative pid",
       "melb-schedule v1\nalgorithm bakery\nn 2\nmode productive\nsource s\nsteps 1\n"
       "-1\nend melb-schedule\n",
       "bad pid '-1'"},
      {"too many pids",
       "melb-schedule v1\nalgorithm bakery\nn 2\nmode productive\nsource s\nsteps 1\n"
       "0 1\nend melb-schedule\n",
       "more pids than the declared step count"},
      {"missing trailer", base.substr(0, base.size() - std::string("end melb-schedule\n").size()),
       "unexpected end of file"},
      {"trailing content", base + "extra\n", "trailing content"},
      {"CRLF line endings",
       "melb-schedule v1\r\nalgorithm bakery\r\nn 2\r\n",
       ""},  // LF-only format: '\r' must make *some* line malformed
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.label);
    try {
      (void)sim::parse_schedule(c.text);
      FAIL() << "expected ScheduleParseError";
    } catch (const sim::ScheduleParseError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("schedule line"), std::string::npos) << what;
      EXPECT_NE(what.find(c.expect), std::string::npos) << what;
    }
  }
}

// ---------------------------------------------------------------------------
// Fixture corpus.
// ---------------------------------------------------------------------------

TEST(ScheduleFixtures, RecordedFixtureReplaysToItsOriginalTrace) {
  const auto schedule = sim::parse_schedule(read_fixture("peterson-tree-n2-random-seed7.sched"));
  EXPECT_EQ(schedule.algorithm, "peterson-tree");
  EXPECT_EQ(schedule.n, 2);

  // The fixture was recorded with random seed 7; re-recording today must
  // agree (scheduler determinism), and replaying the file must reproduce the
  // re-recorded execution byte-for-byte.
  const auto fresh = record_run("peterson-tree", 2, 7);
  EXPECT_EQ(schedule.pids, fresh.pids);

  const auto& info = algo::algorithm_by_name(schedule.algorithm);
  sim::ReplayScheduler replayer(schedule.pids);
  const auto replayed = sim::run_canonical(*info.algorithm, schedule.n, replayer,
                                           schedule.mode, schedule.pids.size());
  EXPECT_EQ(replayer.cursor(), schedule.pids.size());

  sim::RecordingScheduler recorder(sim::make_scheduler("random", 2, 7));
  const auto original = sim::run_canonical(*info.algorithm, 2, recorder);
  EXPECT_EQ(trace::to_text({schedule.algorithm, schedule.n}, replayed.exec),
            trace::to_text({schedule.algorithm, schedule.n}, original.exec));
}

TEST(ScheduleFixtures, AdversaryWitnessReMeasuresToTheCertifiedBound) {
  // The committed yang-anderson n=4 witness replays to a per-process
  // state-change cost of exactly 20 for the victim — the paper-facing pinned
  // constant, checked here without re-running the 5.9M-state exploration.
  const auto schedule = sim::parse_schedule(read_fixture("ya4-adversary-state-change.sched"));
  EXPECT_EQ(schedule.algorithm, "yang-anderson");
  EXPECT_EQ(schedule.n, 4);
  EXPECT_NE(schedule.source.find("bound=20"), std::string::npos) << schedule.source;

  const auto& info = algo::algorithm_by_name(schedule.algorithm);
  sim::ReplayScheduler replayer(schedule.pids);
  const auto run = sim::run_canonical(*info.algorithm, schedule.n, replayer,
                                      schedule.mode, schedule.pids.size());
  EXPECT_EQ(replayer.cursor(), schedule.pids.size());
  EXPECT_EQ(sim::check_well_formed(run.exec, schedule.n), "");
  EXPECT_EQ(sim::check_mutual_exclusion(run.exec, schedule.n), "");
  const auto costs = cost::StateChangeCost().per_process_cost(run.exec, schedule.n);
  std::uint64_t max_cost = 0;
  for (const auto c : costs) max_cost = std::max(max_cost, c);
  EXPECT_EQ(max_cost, 20u);
  EXPECT_EQ(costs[1], 20u) << "victim pid 1 per the adversary's certificate";
}

TEST(ScheduleFixtures, MalformedFixturesKeepTheirDiagnostics) {
  for (const char* name :
       {"malformed-truncated.sched", "malformed-bad-pid.sched"}) {
    SCOPED_TRACE(name);
    EXPECT_THROW((void)sim::parse_schedule(read_fixture(name)), sim::ScheduleParseError);
  }
}

// ---------------------------------------------------------------------------
// Byte-level fuzz (test_decode_fuzz idiom).
// ---------------------------------------------------------------------------

TEST(ScheduleFuzz, TruncationAtEveryByteNeverCrashes) {
  const auto text = sim::schedule_to_text(record_run("peterson-tree", 2, 7));
  ASSERT_FALSE(text.empty());
  FuzzOutcome total;
  for (std::size_t len = 0; len < text.size(); ++len) {
    SCOPED_TRACE("prefix length " + std::to_string(len));
    const auto outcome = feed(text.substr(0, len));
    total.rejected += outcome.rejected;
    total.accepted += outcome.accepted;
  }
  // The trailer line makes every proper prefix invalid — except the one that
  // merely drops the final newline (the last line needs no trailing LF).
  EXPECT_LE(total.accepted, 1) << "a truncated schedule parsed cleanly";
  EXPECT_GE(total.rejected, static_cast<int>(text.size()) - 1);
}

TEST(ScheduleFuzz, SingleBitFlipsNeverCrash) {
  const auto text = sim::schedule_to_text(record_run("yang-anderson", 3, 11));
  ASSERT_FALSE(text.empty());
  util::Xoshiro256StarStar rng(0xF11BULL);
  FuzzOutcome total;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    std::string damaged = text;
    const auto pos = rng.below(damaged.size());
    const auto bit = rng.below(8);
    damaged[pos] =
        static_cast<char>(static_cast<unsigned char>(damaged[pos]) ^ (1u << bit));
    SCOPED_TRACE("flip bit " + std::to_string(bit) + " at byte " + std::to_string(pos));
    const auto outcome = feed(damaged);
    total.rejected += outcome.rejected;
    total.accepted += outcome.accepted;
  }
  // Flips inside pid digits or the free-form source line can stay parseable
  // (and then replay or diverge cleanly); the structured majority must be
  // rejected outright.
  EXPECT_GE(total.rejected * 2, trials)
      << "accepted " << total.accepted << "/" << trials << " bit-flipped files";
}

TEST(ScheduleFuzz, SplicedSchedulesNeverCrash) {
  // Headers from one real schedule, pid lines from another (different n and
  // algorithm): every fragment is locally plausible; the cross-field checks
  // must reject or the replay layer must contain the damage.
  const auto a = sim::schedule_to_text(record_run("peterson-tree", 2, 7));
  const auto b = sim::schedule_to_text(record_run("yang-anderson", 4, 9));
  std::vector<std::string> a_lines, b_lines;
  std::istringstream sa(a), sb(b);
  for (std::string line; std::getline(sa, line);) a_lines.push_back(line);
  for (std::string line; std::getline(sb, line);) b_lines.push_back(line);

  util::Xoshiro256StarStar rng(0x5311CEULL);
  for (int trial = 0; trial < 200; ++trial) {
    std::string spliced;
    const auto rows = std::max(a_lines.size(), b_lines.size());
    for (std::size_t row = 0; row < rows; ++row) {
      const auto& source = (rng.below(2) == 0) ? a_lines : b_lines;
      if (row < source.size()) {
        spliced += source[row];
        spliced += '\n';
      }
    }
    SCOPED_TRACE("splice trial " + std::to_string(trial));
    feed(spliced);  // contract assertions live inside feed()
  }
}

TEST(ScheduleFuzz, RandomLineSoupNeverCrashes) {
  const std::string alphabet = "melb-schdu vproigtfan 0123456789\n";
  util::Xoshiro256StarStar rng(0x50D5ULL);
  for (int trial = 0; trial < 300; ++trial) {
    const auto length = rng.below(160);
    std::string soup;
    for (std::uint64_t i = 0; i < length; ++i) {
      soup += alphabet[rng.below(alphabet.size())];
    }
    SCOPED_TRACE("soup trial " + std::to_string(trial));
    feed(soup);
  }
}

// A schedule that parses but does not describe a legal run of its algorithm
// must surface as ScheduleDivergedError from the replay layer.
TEST(ScheduleFuzz, IllegalButWellFormedScheduleDiverges) {
  auto schedule = record_run("yang-anderson", 2, 3);
  ASSERT_GE(schedule.pids.size(), 4u);
  // Truncating the pid list under-runs the run (benign); scripting a pid
  // that is done/not-eligible at its step diverges. Repeat one pid far past
  // its cycle to guarantee ineligibility.
  schedule.pids.assign(schedule.pids.size(), schedule.pids.front());
  const auto parsed = sim::parse_schedule(sim::schedule_to_text(schedule));
  const auto& info = algo::algorithm_by_name(parsed.algorithm);
  sim::ReplayScheduler replayer(parsed.pids);
  EXPECT_THROW((void)sim::run_canonical(*info.algorithm, parsed.n, replayer,
                                        parsed.mode, parsed.pids.size()),
               sim::ScheduleDivergedError);
}

}  // namespace
}  // namespace melb
