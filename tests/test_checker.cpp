// Model checker tests: exhaustive verification of the algorithm library at
// small n, violation detection for the deliberately broken/limited entries,
// and counterexample replay.
#include <gtest/gtest.h>

#include "algo/registry.h"
#include "check/model_checker.h"
#include "sim/execution.h"
#include "sim/simulator.h"

#include "testing_util.h"

namespace melb {
namespace {

class CheckerOnCorrect : public ::testing::TestWithParam<const char*> {};

TEST_P(CheckerOnCorrect, ExhaustiveN2) {
  const auto& info = algo::algorithm_by_name(GetParam());
  const auto result = check::check_algorithm(*info.algorithm, 2);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.exhausted_limit);
  EXPECT_GT(result.states, 10u);
}

TEST_P(CheckerOnCorrect, ExhaustiveN3) {
  const auto& info = algo::algorithm_by_name(GetParam());
  check::CheckOptions options;
  options.max_states = 4'000'000;
  const auto result = check::check_algorithm(*info.algorithm, 3, options);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.exhausted_limit) << "state space larger than expected";
}

TEST_P(CheckerOnCorrect, AllParticipantSubsetsN3) {
  const auto& info = algo::algorithm_by_name(GetParam());
  check::CheckOptions options;
  options.max_states = 4'000'000;
  const auto result = check::check_all_subsets(*info.algorithm, 3, options);
  EXPECT_TRUE(result.ok) << result.violation;
}

INSTANTIATE_TEST_SUITE_P(Algorithms, CheckerOnCorrect,
                         ::testing::Values("yang-anderson", "bakery", "peterson-tree",
                                           "filter", "dijkstra", "burns", "lamport-fast",
                                           "dekker-tree", "kessels-tree"),
                         testing_util::AlgorithmNameGenerator());

TEST(Checker, BrokenLockCaught) {
  const auto& info = algo::algorithm_by_name("naive-broken");
  const auto result = check::check_algorithm(*info.algorithm, 2);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("mutual exclusion"), std::string::npos);
  ASSERT_TRUE(result.counterexample.has_value());

  // The counterexample replays to a real mutual exclusion violation.
  const auto exec = sim::validate_steps(*info.algorithm, 2, *result.counterexample);
  EXPECT_NE(sim::check_mutual_exclusion(exec, 2), "");
}

TEST(Checker, StaticRrLivelockOnSubset) {
  // All-participants run is fine (turn passes through everyone)…
  const auto& info = algo::algorithm_by_name("static-rr");
  const auto full = check::check_algorithm(*info.algorithm, 2);
  EXPECT_TRUE(full.ok) << full.violation;

  // …but with only process 1 participating, no terminal state is reachable.
  check::CheckOptions options;
  options.participants = {1};
  const auto subset = check::check_algorithm(*info.algorithm, 2, options);
  EXPECT_FALSE(subset.ok);
  EXPECT_NE(subset.violation.find("progress"), std::string::npos);

  // And check_all_subsets finds it automatically.
  const auto all = check::check_all_subsets(*info.algorithm, 2);
  EXPECT_FALSE(all.ok);
}

TEST(Checker, StateLimitReported) {
  const auto& info = algo::algorithm_by_name("bakery");
  check::CheckOptions options;
  options.max_states = 50;
  const auto result = check::check_algorithm(*info.algorithm, 3, options);
  EXPECT_TRUE(result.exhausted_limit);
}

TEST(Checker, SingleProcessTrivial) {
  for (const auto& info : algo::correct_algorithms()) {
    const auto result = check::check_algorithm(*info.algorithm, 1);
    EXPECT_TRUE(result.ok) << info.algorithm->name() << ": " << result.violation;
  }
}

TEST(Checker, YangAndersonN4Subsets) {
  // Two-level tree with partial participation — the regression surface for
  // the per-level spin fix. Pairs that meet only at the root, only at a
  // leaf node, plus a three-of-four subset.
  const auto& info = algo::algorithm_by_name("yang-anderson");
  for (std::vector<sim::Pid> subset :
       {std::vector<sim::Pid>{0, 2}, {0, 1}, {2, 3}, {0, 1, 2}, {1, 2, 3}}) {
    check::CheckOptions options;
    options.participants = subset;
    options.max_states = 4'000'000;
    const auto result = check::check_algorithm(*info.algorithm, 4, options);
    EXPECT_TRUE(result.ok) << result.violation;
    EXPECT_FALSE(result.exhausted_limit);
  }
}

}  // namespace
}  // namespace melb
