// The RMR-maximizing adversary: the certified bound, witnessed executably.
//
// Core cross-check: for every (algorithm, n, model) the adversary analyzes,
// its bound must equal the rmr-bound property's certified bound from an
// independent check() run — the two share the fixpoint but the adversary
// additionally extracts a schedule, and that schedule must re-simulate to
// exactly the bound (AdversaryResult::confirmed, re-verified here from
// scratch with the replay machinery). The paper-facing constant — worst-case
// state-change cost 20 to enter the CS for yang-anderson at n=4 — is pinned,
// and the emitted schedule must be byte-identical for every worker count.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "adv/adversary.h"
#include "algo/registry.h"
#include "check/model_checker.h"
#include "cost/cost_model.h"
#include "sim/canonical.h"
#include "sim/schedule.h"
#include "sim/scheduler.h"

#include "testing_util.h"

namespace melb {
namespace {

const sim::Algorithm& algorithm(const std::string& name) {
  return *algo::algorithm_by_name(name).algorithm;
}

std::uint64_t certified_property_bound(const std::string& name, int n,
                                       const std::string& model) {
  check::CheckOptions options;
  options.properties = {"rmr-bound:" + model};
  options.max_states = 20'000'000;
  const auto result = check::check_algorithm(algorithm(name), n, options);
  EXPECT_FALSE(result.exhausted_limit);
  EXPECT_EQ(result.property_reports.size(), 1u);
  EXPECT_TRUE(result.property_reports[0].evaluated);
  EXPECT_TRUE(result.property_reports[0].has_bound)
      << result.property_reports[0].detail;
  return result.property_reports[0].bound;
}

// Re-simulate a witness from scratch (fresh replay scheduler, fresh cost
// model) — independent of the adversary's own internal confirmation step.
std::uint64_t replay_cost(const adv::AdversaryResult& result,
                          const std::string& name, const std::string& model) {
  const auto& alg = algorithm(name);
  sim::ReplayScheduler replayer(result.schedule.pids);
  const auto run = sim::run_canonical(alg, result.schedule.n, replayer,
                                      result.schedule.mode, result.schedule.pids.size());
  EXPECT_EQ(replayer.cursor(), result.schedule.pids.size());
  EXPECT_EQ(sim::check_well_formed(run.exec, result.schedule.n), "");
  EXPECT_EQ(sim::check_mutual_exclusion(run.exec, result.schedule.n), "");
  const auto costs = cost::make_cost_model(model, alg, result.schedule.n)
                         ->per_process_cost(run.exec, result.schedule.n);
  return costs[static_cast<std::size_t>(result.victim)];
}

TEST(Adversary, MatchesTheCertifiedPropertyBound) {
  // Small cases across the bounded models: the adversary's bound must agree
  // with the rmr-bound property computed by an independent check() run, and
  // the witness must re-simulate to it.
  struct Case {
    const char* algorithm;
    int n;
    const char* model;
  };
  const Case cases[] = {
      {"yang-anderson", 2, "state-change"},
      {"yang-anderson", 3, "state-change"},
      {"yang-anderson", 2, "dsm"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(std::string(c.algorithm) + " n=" + std::to_string(c.n) + " " + c.model);
    const auto result = adv::find_worst_schedule(algorithm(c.algorithm), c.n, c.model);
    ASSERT_TRUE(result.evaluated) << result.detail;
    ASSERT_FALSE(result.unbounded) << result.detail;
    EXPECT_EQ(result.bound, certified_property_bound(c.algorithm, c.n, c.model));
    EXPECT_TRUE(result.confirmed) << result.detail;
    EXPECT_EQ(result.measured_cost, result.bound);
    ASSERT_FALSE(result.schedule.pids.empty());
    // The witness ends with the victim taking its enter step.
    EXPECT_EQ(result.schedule.pids.back(), result.victim);
    EXPECT_EQ(replay_cost(result, c.algorithm, c.model), result.bound);
  }
}

TEST(Adversary, PinsYangAndersonN2) {
  const auto result = adv::find_worst_schedule(algorithm("yang-anderson"), 2, "state-change");
  ASSERT_TRUE(result.evaluated) << result.detail;
  EXPECT_EQ(result.bound, 10u);
  EXPECT_EQ(result.victim, 1);
  EXPECT_EQ(result.states, 515u);
  EXPECT_TRUE(result.confirmed);
}

// The acceptance gate: the certified worst-case state-change cost to enter
// the CS for yang-anderson at n=4 is 20, witnessed by an executable
// 53-step schedule (CI greps the CLI for the same constant; the committed
// fixture replay in test_schedule_replay.cpp pins it a third way).
TEST(Adversary, PinsYangAndersonN4StateChangeBoundOf20) {
  adv::AdversaryOptions options;
  options.workers = 4;
  const auto result =
      adv::find_worst_schedule(algorithm("yang-anderson"), 4, "state-change", options);
  ASSERT_TRUE(result.evaluated) << result.detail;
  ASSERT_FALSE(result.unbounded) << result.detail;
  EXPECT_EQ(result.bound, 20u);
  EXPECT_EQ(result.victim, 1);
  EXPECT_EQ(result.states, 5'892'305u);
  EXPECT_EQ(result.transitions, 18'261'736u);
  EXPECT_TRUE(result.confirmed) << result.detail;
  EXPECT_EQ(result.schedule.pids.size(), 53u);
  EXPECT_EQ(replay_cost(result, "yang-anderson", "state-change"), 20u);
}

TEST(Adversary, WorkerCountsEmitByteIdenticalSchedules) {
  // Determinism contract: exploration, fixpoint, tie-breaks, and witness
  // extraction are worker-invariant, so 1/2/4/8 workers produce the same
  // schedule file bytes.
  std::string baseline;
  for (const int workers : {1, 2, 4, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    adv::AdversaryOptions options;
    options.workers = workers;
    const auto result =
        adv::find_worst_schedule(algorithm("yang-anderson"), 3, "state-change", options);
    ASSERT_TRUE(result.confirmed) << result.detail;
    const auto text = sim::schedule_to_text(result.schedule);
    if (baseline.empty()) {
      baseline = text;
    } else {
      EXPECT_EQ(text, baseline);
    }
  }
  EXPECT_FALSE(baseline.empty());
}

TEST(Adversary, SpinningAlgorithmIsUnboundedUnderTotalAccesses) {
  // Busy-waiting means a positive-cost pre-CS self-loop under
  // total-accesses: no finite witness exists, and the result says so
  // instead of fabricating a schedule.
  const auto result =
      adv::find_worst_schedule(algorithm("yang-anderson"), 2, "total-accesses");
  ASSERT_TRUE(result.evaluated) << result.detail;
  EXPECT_TRUE(result.unbounded);
  EXPECT_TRUE(result.schedule.pids.empty());
  EXPECT_FALSE(result.confirmed);
}

TEST(Adversary, AgreesWithThePropertyOnUnboundedVerdicts) {
  // peterson-tree spins across multiple registers, so even state-change
  // charges its wait loop per iteration: both the property and the
  // adversary must call it unbounded (neither may fabricate a bound).
  check::CheckOptions options;
  options.properties = {"rmr-bound:state-change"};
  const auto property = check::check_algorithm(algorithm("peterson-tree"), 2, options);
  ASSERT_EQ(property.property_reports.size(), 1u);
  ASSERT_TRUE(property.property_reports[0].evaluated);
  ASSERT_FALSE(property.property_reports[0].has_bound);

  const auto result =
      adv::find_worst_schedule(algorithm("peterson-tree"), 2, "state-change");
  ASSERT_TRUE(result.evaluated) << result.detail;
  EXPECT_TRUE(result.unbounded);
}

TEST(Adversary, RejectsHistoryDependentCostModels) {
  // cache-coherent per-access cost depends on who last invalidated the line;
  // a per-edge fixpoint cannot express it.
  EXPECT_THROW(
      (void)adv::find_worst_schedule(algorithm("yang-anderson"), 2, "cache-coherent"),
      std::invalid_argument);
  EXPECT_THROW(
      (void)adv::find_worst_schedule(algorithm("yang-anderson"), 2, "no-such-model"),
      std::invalid_argument);
}

TEST(Adversary, TruncatedExplorationCertifiesNothing) {
  adv::AdversaryOptions options;
  options.max_states = 100;  // yang-anderson n=3 needs far more
  const auto result =
      adv::find_worst_schedule(algorithm("yang-anderson"), 3, "state-change", options);
  EXPECT_FALSE(result.evaluated);
  EXPECT_FALSE(result.confirmed);
  EXPECT_NE(result.detail.find("max-states"), std::string::npos) << result.detail;
}

TEST(Adversary, ScheduleSerializesAndRoundTrips) {
  const auto result =
      adv::find_worst_schedule(algorithm("yang-anderson"), 2, "state-change");
  ASSERT_TRUE(result.confirmed);
  const auto text = sim::schedule_to_text(result.schedule);
  const auto parsed = sim::parse_schedule(text);
  EXPECT_EQ(parsed.algorithm, "yang-anderson");
  EXPECT_EQ(parsed.n, 2);
  EXPECT_EQ(parsed.pids, result.schedule.pids);
  EXPECT_NE(parsed.source.find("bound=10"), std::string::npos) << parsed.source;
}

}  // namespace
}  // namespace melb
