// Trace module tests: serialization round trips, parser error handling,
// divergence detection, and statistics.
#include <gtest/gtest.h>

#include "algo/registry.h"
#include "sim/canonical.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace melb {
namespace {

using sim::CritKind;
using sim::RecordedStep;
using sim::Step;

sim::Execution sample_run(const std::string& algorithm, int n, sim::RunMode mode) {
  const auto& info = algo::algorithm_by_name(algorithm);
  sim::RoundRobinScheduler sched;
  const auto run = sim::run_canonical(*info.algorithm, n, sched, mode, 5'000'000);
  EXPECT_TRUE(run.completed);
  return run.exec;
}

TEST(Trace, RoundTripRegistersOnly) {
  const auto exec = sample_run("bakery", 5, sim::RunMode::kFaithful);
  const auto text = trace::to_text({"bakery", 5}, exec);
  const auto parsed = trace::from_text(text);
  EXPECT_EQ(parsed.header.algorithm, "bakery");
  EXPECT_EQ(parsed.header.n, 5);
  EXPECT_EQ(trace::first_divergence(exec, parsed.exec), std::nullopt);
}

TEST(Trace, RoundTripWithRmwSteps) {
  const auto exec = sample_run("mcs-rmw", 4, sim::RunMode::kProductiveOnly);
  const auto text = trace::to_text({"mcs-rmw", 4}, exec);
  const auto parsed = trace::from_text(text);
  EXPECT_EQ(trace::first_divergence(exec, parsed.exec), std::nullopt);
  // Raw steps revalidate against the algorithm with identical annotations.
  const auto& info = algo::algorithm_by_name("mcs-rmw");
  const auto revalidated = sim::validate_steps(*info.algorithm, 4, parsed.raw_steps());
  EXPECT_EQ(trace::first_divergence(exec, revalidated), std::nullopt);
}

TEST(Trace, ParserRejectsGarbage) {
  EXPECT_THROW(trace::from_text("not a trace"), std::invalid_argument);
  EXPECT_THROW(trace::from_text("# melb-trace v1\nX 0 1\n"), std::invalid_argument);
  EXPECT_THROW(trace::from_text("# melb-trace v1\nR 0\n"), std::invalid_argument);
  EXPECT_THROW(trace::from_text("# melb-trace v1\nR 0 1 = 2 maybe\n"),
               std::invalid_argument);
  EXPECT_THROW(trace::from_text("# melb-trace v1\nC 0 dance\n"), std::invalid_argument);
  EXPECT_THROW(trace::from_text("R 0 1 = 2 sc\n"), std::invalid_argument);  // no magic
}

TEST(Trace, ParserAcceptsEmptyTrace) {
  const auto parsed = trace::from_text("# melb-trace v1\n# algorithm: x\n# n: 3\n");
  EXPECT_EQ(parsed.exec.size(), 0u);
  EXPECT_EQ(parsed.header.n, 3);
}

TEST(Trace, DivergenceDetection) {
  sim::Execution a, b;
  a.append({Step::write(0, 0, 1), 0, true});
  b.append({Step::write(0, 0, 1), 0, true});
  EXPECT_EQ(trace::first_divergence(a, b), std::nullopt);

  b.append({Step::read(1, 0), 1, true});
  std::string detail;
  EXPECT_EQ(trace::first_divergence(a, b, &detail), std::optional<std::size_t>(1));
  EXPECT_NE(detail.find("length mismatch"), std::string::npos);

  a.append({Step::read(1, 0), 2, true});  // same step, different observation
  EXPECT_EQ(trace::first_divergence(a, b, &detail), std::optional<std::size_t>(1));
}

TEST(Trace, StatsCountEverything) {
  sim::Execution e;
  e.append({Step::crit_step(0, CritKind::kTry), 0, true});
  e.append({Step::write(0, 2, 5), 0, true});
  e.append({Step::read(1, 2), 5, false});
  e.append({Step::read(1, 2), 5, true});
  e.append({Step::faa(1, 0, 1), 0, true});
  const auto stats = trace::compute_stats(e, 2, 3);
  EXPECT_EQ(stats.steps, 5u);
  EXPECT_EQ(stats.memory_accesses, 4u);
  EXPECT_EQ(stats.reads, 2u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.rmws, 1u);
  EXPECT_EQ(stats.crits, 1u);
  EXPECT_EQ(stats.free_reads, 1u);
  EXPECT_EQ(stats.sc_cost, 3u);
  EXPECT_EQ(stats.per_process_cost[0], 1u);
  EXPECT_EQ(stats.per_process_cost[1], 2u);
  EXPECT_EQ(stats.hottest_register, 2);
  EXPECT_NE(trace::stats_to_string(stats).find("SC cost 3"), std::string::npos);
}

TEST(Trace, StatsMatchExecutionHelpers) {
  const auto exec = sample_run("yang-anderson", 8, sim::RunMode::kFaithful);
  const auto& info = algo::algorithm_by_name("yang-anderson");
  const auto stats = trace::compute_stats(exec, 8, info.algorithm->num_registers(8));
  EXPECT_EQ(stats.sc_cost, exec.sc_cost());
  EXPECT_EQ(stats.memory_accesses, exec.total_accesses());
}

}  // namespace
}  // namespace melb
