// Threaded runtime tests: every lock preserves mutual exclusion under real
// concurrency, RMR counters behave per the accounting rules, and the
// asymptotic ordering (MCS O(1) < YA O(log n) per pass) shows up uncontended.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "rt/harness.h"
#include "rt/locks.h"

#include "testing_util.h"

namespace melb {
namespace {

class LockTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<rt::Lock> make(int threads) const {
    const std::string name = GetParam();
    for (auto& lock : rt::all_locks(threads)) {
      if (lock->name() == name) return std::move(lock);
    }
    ADD_FAILURE() << "unknown lock " << name;
    return nullptr;
  }
};

TEST_P(LockTest, MutualExclusionUnderContention) {
  const int threads = std::min(8u, std::max(2u, std::thread::hardware_concurrency()));
  auto lock = make(threads);
  rt::HarnessOptions options;
  options.iterations_per_thread = 200;
  options.cs_work = 10;
  const auto result = rt::run_lock_harness(*lock, threads, options);
  EXPECT_TRUE(result.mutex_ok);
  EXPECT_EQ(result.cs_passes, static_cast<std::uint64_t>(threads) * 200u);
  EXPECT_GT(result.total_rmr, 0u);
}

TEST_P(LockTest, SingleThreadCheapAndCorrect) {
  auto lock = make(1);
  const auto result = rt::run_lock_harness(*lock, 1, {});
  EXPECT_TRUE(result.mutex_ok);
  EXPECT_EQ(result.cs_passes, 1u);
  // One uncontended pass costs O(log n) = O(1) at n=1.
  EXPECT_LE(result.total_rmr, 32u);
}

TEST_P(LockTest, SequentialReacquisition) {
  auto lock = make(2);
  for (int i = 0; i < 50; ++i) {
    lock->lock(0);
    lock->unlock(0);
    lock->lock(1);
    lock->unlock(1);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(AllLocks, LockTest,
                         ::testing::Values("yang-anderson", "mcs", "ticket", "ttas"),
                         testing_util::AlgorithmNameGenerator());

TEST(Rmr, CountersPerThreadAndTotal) {
  rt::RmrCounters counters(3);
  counters.add(0);
  counters.add(0);
  counters.add(2, 5);
  EXPECT_EQ(counters.of(0), 2u);
  EXPECT_EQ(counters.of(1), 0u);
  EXPECT_EQ(counters.of(2), 5u);
  EXPECT_EQ(counters.total(), 7u);
  EXPECT_EQ(counters.max(), 5u);
  counters.reset();
  EXPECT_EQ(counters.total(), 0u);
}

TEST(Rmr, SpinUntilChargesPerChangeOnly) {
  rt::RmrCounters counters(1);
  std::atomic<int> var{0};
  std::thread writer([&] {
    for (int v = 1; v <= 3; ++v) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      var.store(v, std::memory_order_release);
    }
  });
  const int got = rt::spin_until(var, [](int v) { return v == 3; }, counters, 0);
  writer.join();
  EXPECT_EQ(got, 3);
  // 1 initial + at most one per observed change (some may be skipped if the
  // spinner misses intermediate values).
  EXPECT_GE(counters.of(0), 2u);
  EXPECT_LE(counters.of(0), 4u);
}

TEST(Rmr, UncontendedMcsCheaperThanYangAndersonAtScale) {
  // Sequential (uncontended) acquisition: MCS is O(1) RMR per pass, the YA
  // tree is Θ(log n) — at 32 threads the tree must cost more per pass.
  const int threads = 32;
  rt::McsLock mcs(threads);
  rt::YangAndersonLock ya(threads);
  for (int t = 0; t < threads; ++t) {
    mcs.lock(t);
    mcs.unlock(t);
    ya.lock(t);
    ya.unlock(t);
  }
  const double mcs_per_pass = static_cast<double>(mcs.counters().total()) / threads;
  const double ya_per_pass = static_cast<double>(ya.counters().total()) / threads;
  EXPECT_LT(mcs_per_pass, ya_per_pass);
  EXPECT_LE(mcs_per_pass, 8.0);
  EXPECT_GE(ya_per_pass, 10.0);  // 5 levels × (entry+exit) × O(1)
}

TEST(Harness, ReportsTiming) {
  rt::TtasLock lock(2);
  rt::HarnessOptions options;
  options.iterations_per_thread = 10;
  const auto result = rt::run_lock_harness(lock, 2, options);
  EXPECT_TRUE(result.mutex_ok);
  EXPECT_GT(result.seconds, 0.0);
}

}  // namespace
}  // namespace melb
