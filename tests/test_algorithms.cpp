// Integration tests for the mutex algorithm library: every correct algorithm
// completes canonical executions under every scheduler with valid traces,
// and cost profiles match the documented growth classes.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algo/registry.h"
#include "algo/tree.h"
#include "sim/canonical.h"
#include "sim/execution.h"
#include "sim/scheduler.h"

#include "testing_util.h"

namespace melb {
namespace {

struct Case {
  std::string algorithm;
  std::string scheduler;
  int n;
};

class CanonicalRunTest : public ::testing::TestWithParam<Case> {};

TEST_P(CanonicalRunTest, CompletesWithValidTrace) {
  const Case c = GetParam();
  const auto& info = algo::algorithm_by_name(c.algorithm);
  auto scheduler = sim::make_scheduler(c.scheduler, c.n, /*seed=*/12345);
  const auto run = sim::run_canonical(*info.algorithm, c.n, *scheduler);
  ASSERT_TRUE(run.completed) << c.algorithm << " n=" << c.n << " under " << c.scheduler;
  EXPECT_FALSE(run.livelocked);
  EXPECT_EQ(sim::check_well_formed(run.exec, c.n), "");
  EXPECT_EQ(sim::check_mutual_exclusion(run.exec, c.n), "");
  // Every process entered exactly once: count enter steps.
  int enters = 0;
  for (const auto& rs : run.exec.steps()) {
    if (rs.step.type == sim::StepType::kCrit && rs.step.crit == sim::CritKind::kEnter) {
      ++enters;
    }
  }
  EXPECT_EQ(enters, c.n);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const char* algorithm :
       {"yang-anderson", "bakery", "peterson-tree", "filter", "dijkstra", "burns",
        "lamport-fast", "dekker-tree", "kessels-tree"}) {
    for (const char* scheduler : {"round-robin", "sequential", "random", "convoy"}) {
      for (int n : {1, 2, 3, 5, 8, 13}) {
        cases.push_back({algorithm, scheduler, n});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CanonicalRunTest, ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<Case>& param_info) {
                           return testing_util::gtest_safe_name(
                               param_info.param.algorithm + "_" +
                               param_info.param.scheduler + "_n" +
                               std::to_string(param_info.param.n));
                         });

TEST(Registry, LookupAndContents) {
  EXPECT_GE(algo::all_algorithms().size(), 9u);
  EXPECT_EQ(algo::algorithm_by_name("bakery").algorithm->name(), "bakery");
  EXPECT_THROW(algo::algorithm_by_name("nope"), std::out_of_range);
  // Correct set excludes the broken and non-livelock-free entries.
  for (const auto& info : algo::correct_algorithms()) {
    EXPECT_TRUE(info.livelock_free);
    EXPECT_TRUE(info.mutex_correct);
  }
}

TEST(Tree, PathShapes) {
  EXPECT_EQ(algo::tree_leaf_span(2), 2);
  EXPECT_EQ(algo::tree_leaf_span(3), 4);
  EXPECT_EQ(algo::tree_leaf_span(8), 8);
  EXPECT_EQ(algo::tree_internal_nodes(8), 7);

  const auto path = algo::tree_path(0, 8);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.back().node, 1);  // root last
  for (const auto& hop : path) {
    EXPECT_GE(hop.node, 1);
    EXPECT_LE(hop.node, 7);
  }
  // Siblings meet at the same node from different sides.
  const auto p0 = algo::tree_path(0, 4);
  const auto p1 = algo::tree_path(1, 4);
  EXPECT_EQ(p0[0].node, p1[0].node);
  EXPECT_NE(p0[0].side, p1[0].side);
}

TEST(Tree, AllPathsReachRoot) {
  for (int n : {2, 3, 5, 8, 11}) {
    for (int p = 0; p < n; ++p) {
      const auto path = algo::tree_path(p, n);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.back().node, 1);
    }
  }
}

TEST(CostProfile, StaticRrIsLinear) {
  // The non-livelock-free turn-passing scheme costs exactly 2n: one
  // state-changing read and one write per process.
  const auto& info = algo::algorithm_by_name("static-rr");
  for (int n : {2, 8, 32}) {
    sim::RoundRobinScheduler sched;
    const auto run = sim::run_canonical(*info.algorithm, n, sched);
    ASSERT_TRUE(run.completed);
    EXPECT_EQ(run.sc_cost, 2u * static_cast<unsigned>(n));
  }
}

TEST(CostProfile, YangAndersonIsNLogN) {
  // Uncontended sequential passes: O(log n) state changes per process.
  const auto& info = algo::algorithm_by_name("yang-anderson");
  for (int n : {4, 8, 16, 32}) {
    sim::SequentialScheduler sched;
    const auto run = sim::run_canonical(*info.algorithm, n, sched);
    ASSERT_TRUE(run.completed);
    const double per_process = static_cast<double>(run.sc_cost) / n;
    // Entry+exit at each of ceil(log2 n) nodes with constant work each.
    const double levels = std::ceil(std::log2(n));
    EXPECT_LE(per_process, 8.0 * levels + 8.0)
        << "n=" << n << " cost=" << run.sc_cost;
  }
}

TEST(CostProfile, BakeryIsQuadratic) {
  const auto& info = algo::algorithm_by_name("bakery");
  std::vector<double> ns, costs;
  for (int n : {4, 8, 16, 32}) {
    sim::SequentialScheduler sched;
    const auto run = sim::run_canonical(*info.algorithm, n, sched);
    ASSERT_TRUE(run.completed);
    ns.push_back(n);
    costs.push_back(static_cast<double>(run.sc_cost));
  }
  // cost(32)/cost(16) should approach 4 for a quadratic.
  EXPECT_GT(costs[3] / costs[2], 3.0);
  EXPECT_LT(costs[3] / costs[2], 5.0);
}

TEST(BrokenLock, ViolatesMutexUnderAdversary) {
  // Interleave the two check-then-grab windows manually.
  const auto& info = algo::algorithm_by_name("naive-broken");
  sim::Simulator s(*info.algorithm, 2);
  s.step(0);  // try_0
  s.step(1);  // try_1
  s.step(0);  // read lock == 0
  s.step(1);  // read lock == 0
  s.step(0);  // write lock = 1
  s.step(1);  // write lock = 1
  s.step(0);  // enter_0
  s.step(1);  // enter_1  — both inside
  EXPECT_NE(sim::check_mutual_exclusion(s.execution(), 2), "");
}

}  // namespace
}  // namespace melb
