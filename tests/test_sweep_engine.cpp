// The parallel sweep engine's contract:
//  * determinism — the serialized report is a pure function of the campaign
//    spec: byte-identical across worker counts and across repeated runs;
//  * splittable seeding — cell seeds depend on cell coordinates, not on
//    enumeration order or worker assignment;
//  * edge cases — empty campaigns are rejected, single-cell campaigns run,
//    cancellation mid-sweep marks exactly the unstarted cells;
//  * fidelity — a cell's measurements equal a hand-rolled canonical run with
//    the same derived seed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "exp/campaign.h"
#include "exp/pool.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "sim/canonical.h"
#include "sim/scheduler.h"
#include "util/prng.h"

#include "testing_util.h"

namespace melb {
namespace {

exp::CampaignSpec small_spec() {
  exp::CampaignSpec spec;
  spec.algorithms = {"yang-anderson", "bakery", "peterson-tree", "ticket-rmw"};
  spec.schedulers = {"round-robin", "random", "convoy"};
  spec.sizes = {2, 3, 4};
  spec.seed = 0xFEEDFACE;
  return spec;
}

TEST(DeriveSeed, SplitsIntoIndependentStreams) {
  const std::uint64_t base = 42;
  // Distinct streams give distinct seeds; same path gives the same seed.
  EXPECT_NE(util::derive_seed(base, 0), util::derive_seed(base, 1));
  EXPECT_NE(util::derive_seed(base, 0), util::derive_seed(base + 1, 0));
  EXPECT_EQ(util::derive_seed(base, 7, 9), util::derive_seed(base, 7, 9));
  // Partial application composes: deriving dimension-by-dimension matches
  // deriving the full coordinate path at once.
  EXPECT_EQ(util::derive_seed(base, 7, 9), util::derive_seed(util::derive_seed(base, 7), 9));
  // Path structure matters: (a, b) and (b, a) are different tasks.
  EXPECT_NE(util::derive_seed(base, 7, 9), util::derive_seed(base, 9, 7));
  // No short low-entropy collisions among a small grid of coordinates.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 16; ++i) {
    for (std::uint64_t j = 0; j < 16; ++j) seeds.push_back(util::derive_seed(base, i, j));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(Campaign, ExpansionIsDeterministicAndSeedsAreCoordinatePure) {
  const auto spec = small_spec();
  const auto cells = exp::expand(spec);
  ASSERT_EQ(cells.size(), 4u * 3u * 3u);
  for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(cells[i].index, i);

  // Same spec expands identically.
  const auto again = exp::expand(spec);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].seed, again[i].seed);
    EXPECT_EQ(cells[i].algorithm, again[i].algorithm);
  }

  // A cell's seed survives reordering of the spec dimensions it is not part
  // of: dropping other algorithms must not change bakery's cells.
  exp::CampaignSpec narrow = spec;
  narrow.algorithms = {"bakery"};
  const auto narrow_cells = exp::expand(narrow);
  for (const auto& cell : narrow_cells) {
    bool found = false;
    for (const auto& full : cells) {
      if (full.algorithm == cell.algorithm && full.scheduler == cell.scheduler &&
          full.n == cell.n) {
        EXPECT_EQ(full.seed, cell.seed);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Campaign, RejectsBadSpecs) {
  exp::CampaignSpec spec = small_spec();
  spec.algorithms.clear();
  EXPECT_THROW(exp::expand(spec), std::invalid_argument);

  spec = small_spec();
  spec.schedulers = {"no-such-scheduler"};
  EXPECT_THROW(exp::expand(spec), std::invalid_argument);

  spec = small_spec();
  spec.algorithms = {"no-such-algorithm"};
  EXPECT_THROW(exp::expand(spec), std::out_of_range);

  spec = small_spec();
  spec.sizes = {0};
  EXPECT_THROW(exp::expand(spec), std::invalid_argument);
}

TEST(Campaign, SelectorHelpers) {
  EXPECT_EQ(exp::resolve_algorithms("all").size(), algo::all_algorithms().size());
  EXPECT_EQ(exp::resolve_algorithms("registers").size(), algo::register_algorithms().size());
  const auto pair = exp::resolve_algorithms("bakery,yang-anderson");
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(pair[0], "bakery");
  EXPECT_THROW(exp::resolve_algorithms("bakery,,bakery"), std::invalid_argument);
  EXPECT_THROW(exp::resolve_algorithms("nope"), std::out_of_range);

  EXPECT_EQ(exp::parse_sizes("2..5"), (std::vector<int>{2, 3, 4, 5}));
  EXPECT_EQ(exp::parse_sizes("2,4,8"), (std::vector<int>{2, 4, 8}));
  EXPECT_EQ(exp::parse_sizes("2..3,8"), (std::vector<int>{2, 3, 8}));
  EXPECT_THROW(exp::parse_sizes("8..2"), std::invalid_argument);
  EXPECT_THROW(exp::parse_sizes("x"), std::invalid_argument);
}

TEST(SweepEngine, ReportIsByteIdenticalAcrossWorkerCounts) {
  const auto spec = small_spec();
  exp::RunOptions serial;
  serial.workers = 1;
  const auto baseline = exp::run_campaign(spec, serial);
  const std::string json = exp::to_json(baseline);
  const std::string csv = exp::to_csv(baseline);
  const std::string hash = exp::report_hash(baseline);
  for (const int workers : {2, 4, 8}) {
    exp::RunOptions options;
    options.workers = workers;
    const auto report = exp::run_campaign(spec, options);
    EXPECT_EQ(exp::to_json(report), json) << workers << " workers";
    EXPECT_EQ(exp::to_csv(report), csv) << workers << " workers";
    EXPECT_EQ(exp::report_hash(report), hash) << workers << " workers";
  }
}

TEST(SweepEngine, CellsMatchDirectCanonicalRuns) {
  const auto spec = small_spec();
  exp::RunOptions options;
  options.workers = 4;
  const auto report = exp::run_campaign(spec, options);
  for (const auto& cell : report.cells) {
    SCOPED_TRACE(cell.cell.algorithm + "/" + cell.cell.scheduler + "/n=" +
                 std::to_string(cell.cell.n));
    EXPECT_EQ(cell.status, "ok");
    const auto& info = algo::algorithm_by_name(cell.cell.algorithm);
    auto scheduler = sim::make_scheduler(cell.cell.scheduler, cell.cell.n, cell.cell.seed);
    const auto run = sim::run_canonical(*info.algorithm, cell.cell.n, *scheduler, spec.mode,
                                        spec.max_steps);
    EXPECT_EQ(cell.completed, run.completed);
    EXPECT_EQ(cell.steps, run.steps);
    EXPECT_EQ(cell.sc_cost, run.exec.sc_cost());
    EXPECT_EQ(cell.exec_size, run.exec.size());
    EXPECT_EQ(cell.total_accesses, run.exec.total_accesses());
  }
}

TEST(SweepEngine, LbPipelineRoundTripsOnRegisterCells) {
  exp::CampaignSpec spec;
  spec.algorithms = {"yang-anderson", "ticket-rmw"};
  spec.schedulers = {"round-robin"};
  spec.sizes = {3, 4};
  const auto report = exp::run_campaign(spec, {});
  for (const auto& cell : report.cells) {
    SCOPED_TRACE(cell.cell.algorithm + "/n=" + std::to_string(cell.cell.n));
    EXPECT_EQ(cell.status, "ok");
    if (cell.cell.algorithm == "yang-anderson") {
      EXPECT_TRUE(cell.lb.attempted);
      EXPECT_TRUE(cell.lb.roundtrip_ok) << cell.lb.error;
      EXPECT_GT(cell.lb.metasteps, 0u);
      EXPECT_GT(cell.lb.encoding_bytes, 0u);
      EXPECT_GT(cell.lb.binary_bits, 0u);
    } else {
      // RMW algorithms sit outside the register-only lower bound's scope.
      EXPECT_FALSE(cell.lb.attempted);
    }
  }
}

TEST(SweepEngine, EmptyCampaignIsRejected) {
  exp::CampaignSpec spec;  // all dimensions empty
  EXPECT_THROW(exp::run_campaign(spec, {}), std::invalid_argument);
}

TEST(SweepEngine, SingleCellCampaign) {
  exp::CampaignSpec spec;
  spec.algorithms = {"peterson-tree"};
  spec.schedulers = {"sequential"};
  spec.sizes = {2};
  exp::RunOptions options;
  options.workers = 8;  // more workers than cells must clamp, not crash
  const auto report = exp::run_campaign(spec, options);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_EQ(report.workers_used, 1);
  EXPECT_EQ(report.cells[0].status, "ok");
  EXPECT_TRUE(report.cells[0].completed);
  EXPECT_FALSE(report.cancelled);
  // The serialized report carries the cell.
  const auto json = exp::to_json(report);
  EXPECT_NE(json.find("\"peterson-tree\""), std::string::npos);
  EXPECT_NE(json.find("\"cancelled\": false"), std::string::npos);
}

TEST(SweepEngine, CancelledMidSweepMarksUnstartedCells) {
  const auto spec = small_spec();
  std::atomic<bool> cancel{false};
  std::size_t completed_before_cancel = 0;
  exp::RunOptions options;
  options.workers = 1;  // deterministic cancellation point
  options.cancel = &cancel;
  options.on_cell = [&](const exp::CellResult&) {
    if (++completed_before_cancel == 5) cancel.store(true);
  };
  const auto report = exp::run_campaign(spec, options);
  EXPECT_TRUE(report.cancelled);

  std::size_t ran = 0, cancelled = 0;
  for (const auto& cell : report.cells) {
    if (cell.status == "cancelled") {
      ++cancelled;
      EXPECT_FALSE(cell.completed);
      EXPECT_EQ(cell.sc_cost, 0u);
    } else {
      ++ran;
      EXPECT_EQ(cell.status, "ok");
    }
  }
  EXPECT_EQ(ran, 5u);
  EXPECT_EQ(ran + cancelled, report.cells.size());
  // A cancelled report still serializes (CI uploads partial sweeps).
  EXPECT_NE(exp::to_json(report).find("\"cancelled\": true"), std::string::npos);

  // Pre-cancelled campaigns run nothing.
  std::atomic<bool> already{true};
  exp::RunOptions preset;
  preset.cancel = &already;
  const auto nothing = exp::run_campaign(spec, preset);
  for (const auto& cell : nothing.cells) EXPECT_EQ(cell.status, "cancelled");
}

TEST(SweepEngine, CompletedCellsOfCancelledSweepMatchFullRun) {
  const auto spec = small_spec();
  std::atomic<bool> cancel{false};
  std::size_t count = 0;
  exp::RunOptions options;
  options.workers = 1;
  options.cancel = &cancel;
  options.on_cell = [&](const exp::CellResult&) {
    if (++count == 3) cancel.store(true);
  };
  const auto partial = exp::run_campaign(spec, options);
  const auto full = exp::run_campaign(spec, {});
  ASSERT_EQ(partial.cells.size(), full.cells.size());
  for (std::size_t i = 0; i < partial.cells.size(); ++i) {
    if (partial.cells[i].status == "cancelled") continue;
    EXPECT_EQ(partial.cells[i].sc_cost, full.cells[i].sc_cost) << i;
    EXPECT_EQ(partial.cells[i].steps, full.cells[i].steps) << i;
    EXPECT_EQ(partial.cells[i].status, full.cells[i].status) << i;
  }
}

// ---------------------------------------------------------------------------
// TaskPool: the persistent barrier-synchronized pool the sweep runner and
// the model checker's per-level dispatch both ride.
// ---------------------------------------------------------------------------

TEST(TaskPool, RunsEveryTaskExactlyOnceAcrossManyReuses) {
  // One pool, many dispatches — the checker wakes its pool twice per BFS
  // level, so reuse (not construction) is the hot path.
  exp::TaskPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  for (int round = 0; round < 200; ++round) {
    const std::size_t count = 1 + static_cast<std::size_t>(round % 97);
    std::vector<std::atomic<int>> hits(count);
    for (auto& h : hits) h.store(0);
    pool.run(count, [&](std::size_t idx, int worker) {
      ASSERT_LT(idx, count);
      ASSERT_GE(worker, 0);
      ASSERT_LT(worker, 4);
      hits[idx].fetch_add(1, std::memory_order_relaxed);
    });
    // The barrier returned, so every task's effect is visible here.
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "round " << round;
    }
  }
}

TEST(TaskPool, SingleWorkerRunsInline) {
  exp::TaskPool pool(1);
  int calls = 0;
  pool.run(17, [&](std::size_t, int worker) {
    EXPECT_EQ(worker, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 17);
}

TEST(TaskPool, CancelSkipsUnstartedTasks) {
  exp::TaskPool pool(4);
  std::atomic<bool> cancel{true};  // pre-set: every task is "not yet started"
  std::atomic<int> executed{0};
  pool.run(
      64, [&](std::size_t, int) { executed.fetch_add(1); }, &cancel);
  EXPECT_EQ(executed.load(), 0);

  // The pool must stay usable after a cancelled epoch.
  std::atomic<int> after{0};
  pool.run(64, [&](std::size_t, int) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 64);
}

TEST(TaskPool, MoreTasksThanWorkersAndBarrierOrdering) {
  exp::TaskPool pool(3);
  std::vector<int> data(1000, 0);
  pool.run(data.size(), [&](std::size_t idx, int) { data[idx] = static_cast<int>(idx); });
  // Sequential consistency with the caller after the barrier:
  for (std::size_t i = 0; i < data.size(); ++i) ASSERT_EQ(data[i], static_cast<int>(i));
}

}  // namespace
}  // namespace melb
