// Unit tests for the lower-bound pipeline's data structures: the partial
// order with incremental transitive closure, metasteps, topological
// linearization, and the independent linearization verifier.
#include <gtest/gtest.h>

#include "algo/registry.h"
#include "lb/construct.h"
#include "lb/decode.h"
#include "lb/encode.h"
#include "lb/linearize.h"
#include "lb/metastep.h"
#include "lb/partial_order.h"
#include "lb/verify.h"
#include "util/permutation.h"
#include "util/prng.h"

namespace melb {
namespace {

TEST(PartialOrder, ReflexiveAndEmpty) {
  lb::PartialOrder po;
  const int a = po.add_node();
  const int b = po.add_node();
  EXPECT_TRUE(po.leq(a, a));
  EXPECT_TRUE(po.leq(b, b));
  EXPECT_FALSE(po.leq(a, b));
  EXPECT_FALSE(po.leq(b, a));
}

TEST(PartialOrder, TransitiveClosureOnInsert) {
  lb::PartialOrder po;
  const int a = po.add_node(), b = po.add_node(), c = po.add_node(), d = po.add_node();
  po.add_edge(a, b);
  po.add_edge(c, d);
  EXPECT_FALSE(po.leq(a, d));
  po.add_edge(b, c);  // a < b < c < d
  EXPECT_TRUE(po.leq(a, c));
  EXPECT_TRUE(po.leq(a, d));
  EXPECT_TRUE(po.leq(b, d));
  EXPECT_FALSE(po.leq(d, a));
}

TEST(PartialOrder, ClosurePropagatesToExistingCones) {
  // Diamond: x < y1, x < y2, y1 < z, y2 < z; then hook w under x.
  lb::PartialOrder po;
  const int x = po.add_node(), y1 = po.add_node(), y2 = po.add_node(), z = po.add_node();
  po.add_edge(x, y1);
  po.add_edge(x, y2);
  po.add_edge(y1, z);
  po.add_edge(y2, z);
  const int w = po.add_node();
  po.add_edge(w, x);
  EXPECT_TRUE(po.leq(w, z));
  EXPECT_TRUE(po.leq(w, y1));
  EXPECT_TRUE(po.leq(w, y2));
}

TEST(PartialOrder, CycleRejected) {
  lb::PartialOrder po;
  const int a = po.add_node(), b = po.add_node(), c = po.add_node();
  po.add_edge(a, b);
  po.add_edge(b, c);
  EXPECT_THROW(po.add_edge(c, a), std::logic_error);
  EXPECT_THROW(po.add_edge(b, a), std::logic_error);
}

TEST(PartialOrder, RedundantEdgeIgnored) {
  lb::PartialOrder po;
  const int a = po.add_node(), b = po.add_node(), c = po.add_node();
  po.add_edge(a, b);
  po.add_edge(b, c);
  po.add_edge(a, c);  // already implied; edge list must stay minimal
  EXPECT_EQ(po.out_edges()[static_cast<std::size_t>(a)].size(), 1u);
}

TEST(PartialOrder, AncestorsSorted) {
  lb::PartialOrder po;
  const int a = po.add_node(), b = po.add_node(), c = po.add_node();
  po.add_edge(a, c);
  po.add_edge(b, c);
  const auto anc = po.ancestors_of(c);
  EXPECT_EQ(anc, (std::vector<int>{a, b, c}));
  EXPECT_EQ(po.ancestors_of(a), (std::vector<int>{a}));
}

TEST(PartialOrder, GrowsPastInitialCapacity) {
  lb::PartialOrder po;
  std::vector<int> nodes;
  for (int i = 0; i < 1000; ++i) nodes.push_back(po.add_node());
  for (int i = 0; i + 1 < 1000; ++i) po.add_edge(nodes[i], nodes[i + 1]);
  EXPECT_TRUE(po.leq(nodes[0], nodes[999]));
  EXPECT_FALSE(po.leq(nodes[999], nodes[0]));
  EXPECT_EQ(po.ancestors_of(nodes[999]).size(), 1000u);
}

TEST(Metastep, OwnersAndSteps) {
  lb::Metastep m;
  m.type = lb::MetastepType::kWrite;
  m.reg = 3;
  m.writes.push_back(sim::Step::write(1, 3, 10));
  m.win = sim::Step::write(0, 3, 20);
  m.reads.push_back(sim::Step::read(2, 3));
  EXPECT_EQ(m.value(), 20);
  EXPECT_EQ(m.participant_count(), 3);
  EXPECT_TRUE(m.contains(0));
  EXPECT_TRUE(m.contains(1));
  EXPECT_TRUE(m.contains(2));
  EXPECT_FALSE(m.contains(3));
  EXPECT_EQ(m.step_of(1), sim::Step::write(1, 3, 10));
  EXPECT_THROW(m.step_of(9), std::out_of_range);

  const auto seq = m.sequence();
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0], *m.writes.begin());  // hidden write first
  EXPECT_EQ(seq[1], *m.win);             // winner overwrites
  EXPECT_EQ(seq[2], m.reads[0]);         // readers see the winner's value
}

TEST(TopoOrder, RespectsOrderAndIncludeSet) {
  std::vector<lb::Metastep> ms(4);
  lb::PartialOrder po;
  for (int i = 0; i < 4; ++i) {
    ms[static_cast<std::size_t>(i)].id = po.add_node();
    ms[static_cast<std::size_t>(i)].type = lb::MetastepType::kCrit;
    ms[static_cast<std::size_t>(i)].crit = sim::Step::crit_step(0, sim::CritKind::kTry);
  }
  po.add_edge(2, 0);  // 2 before 0
  po.add_edge(3, 1);

  const auto full = lb::topo_order(ms, po, {});
  ASSERT_EQ(full.size(), 4u);
  auto pos = [&](int id) {
    return std::find(full.begin(), full.end(), id) - full.begin();
  };
  EXPECT_LT(pos(2), pos(0));
  EXPECT_LT(pos(3), pos(1));

  const auto subset = lb::topo_order(ms, po, {0, 2});
  EXPECT_EQ(subset, (std::vector<lb::MetastepId>{2, 0}));
}

TEST(TopoOrder, RandomPolicyStillTopological) {
  std::vector<lb::Metastep> ms(12);
  lb::PartialOrder po;
  for (auto& m : ms) {
    m.id = po.add_node();
    m.type = lb::MetastepType::kCrit;
    m.crit = sim::Step::crit_step(0, sim::CritKind::kTry);
  }
  util::Xoshiro256StarStar rng(3);
  for (int e = 0; e < 16; ++e) {
    const int a = static_cast<int>(rng.below(12)), b = static_cast<int>(rng.below(12));
    if (a != b && !po.leq(b, a)) po.add_edge(a, b);
  }
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    lb::LinearizePolicy policy;
    policy.random_seed = seed;
    const auto order = lb::topo_order(ms, po, {}, policy);
    ASSERT_EQ(order.size(), 12u);
    std::vector<int> position(12);
    for (int i = 0; i < 12; ++i) position[static_cast<std::size_t>(order[i])] = i;
    for (int a = 0; a < 12; ++a) {
      for (int b = 0; b < 12; ++b) {
        if (a != b && po.leq(a, b)) {
          EXPECT_LT(position[static_cast<std::size_t>(a)],
                    position[static_cast<std::size_t>(b)]);
        }
      }
    }
  }
}

TEST(Verify, AcceptsCanonicalAndRandomLinearizations) {
  for (const char* name : {"yang-anderson", "bakery", "burns"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    const auto c = lb::construct(algorithm, 5, util::Permutation::reversed(5));
    EXPECT_EQ(lb::verify_linearization(c, c.canonical_linearization()), "") << name;
    for (std::uint64_t seed : {4ULL, 11ULL}) {
      lb::LinearizePolicy policy;
      policy.random_seed = seed;
      EXPECT_EQ(lb::verify_linearization(c, lb::linearize(c.metasteps, c.order, policy)), "")
          << name;
    }
  }
}

TEST(Verify, AcceptsDecodedExecution) {
  // The structural half of Theorem 7.4: Decode's output is a linearization
  // of (M, ≼) — checked without reference to the algorithm's semantics.
  const auto& algorithm = *algo::algorithm_by_name("bakery").algorithm;
  const auto c = lb::construct(algorithm, 6, util::Permutation::reversed(6));
  const auto decoded = lb::decode(algorithm, lb::encode(c).text);
  std::vector<sim::Step> steps;
  for (const auto& rs : decoded.execution.steps()) steps.push_back(rs.step);
  EXPECT_EQ(lb::verify_linearization(c, steps), "");
}

TEST(Verify, RejectsReorderings) {
  const auto& algorithm = *algo::algorithm_by_name("bakery").algorithm;
  const auto c = lb::construct(algorithm, 4, util::Permutation(4));
  auto steps = c.canonical_linearization();

  // Dropping the last step leaves a metastep unexecuted.
  auto truncated = steps;
  truncated.pop_back();
  EXPECT_NE(lb::verify_linearization(c, truncated), "");

  // Swapping two adjacent distinct steps of the same process violates its
  // chain order (the steps no longer match their metasteps).
  auto swapped = steps;
  bool found = false;
  for (std::size_t i = 0; i + 1 < swapped.size(); ++i) {
    if (swapped[i].pid == swapped[i + 1].pid && !(swapped[i] == swapped[i + 1])) {
      std::swap(swapped[i], swapped[i + 1]);
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_NE(lb::verify_linearization(c, swapped), "");

  // Reversing the whole thing is certainly not a linear extension.
  auto reversed = steps;
  std::reverse(reversed.begin(), reversed.end());
  EXPECT_NE(lb::verify_linearization(c, reversed), "");
}

TEST(Verify, RejectsForeignSteps) {
  const auto& algorithm = *algo::algorithm_by_name("burns").algorithm;
  const auto c = lb::construct(algorithm, 3, util::Permutation(3));
  auto steps = c.canonical_linearization();
  steps.push_back(sim::Step::write(0, 0, 42));
  EXPECT_NE(lb::verify_linearization(c, steps), "");
}

}  // namespace
}  // namespace melb
