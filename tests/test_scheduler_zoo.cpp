// The scheduler zoo: unit semantics, factory validation, and enrollment.
//
// Three layers:
//  * pick()-level semantics on synthetic enabled sets — rr-quantum:1 is
//    round-robin, a quantum holds the cursor for exactly Q picks, weighted
//    budgets follow ranks[p mod |ranks|], priority always serves the
//    best-ranked enabled pid (starvation by construction);
//  * make_scheduler contract — every scheduler_names() entry constructs,
//    parameterized forms accept '+' and ',' separators, and every malformed
//    parameter is an std::invalid_argument, never a fallback;
//  * enrollment matrix — every registry algorithm runs under every new
//    scheduler (enrolled names plus off-list parameterizations) at
//    n ∈ {2,3,4} with the canonical-run / well-formedness / mutex / trace
//    round-trip checks, and a recorded run replays byte-identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "sim/canonical.h"
#include "sim/schedule.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "trace/trace.h"

#include "testing_util.h"

namespace melb {
namespace {

std::vector<sim::Pid> pids(std::initializer_list<int> values) {
  std::vector<sim::Pid> out;
  for (const int v : values) out.push_back(static_cast<sim::Pid>(v));
  return out;
}

// ---------------------------------------------------------------------------
// pick()-level semantics.
// ---------------------------------------------------------------------------

TEST(SchedulerZoo, QuantumOneIsRoundRobin) {
  // Identical pick sequences on an adversarial enabled-set script, including
  // sets that drop the current pid mid-quantum.
  const std::vector<std::vector<sim::Pid>> script = {
      pids({0, 1, 2}), pids({0, 1, 2}), pids({1, 2}), pids({0, 2}),
      pids({0}),       pids({0, 1, 2}), pids({2}),    pids({0, 1}),
  };
  sim::RoundRobinScheduler rr;
  sim::QuantumRoundRobinScheduler q1(1);
  for (const auto& enabled : script) {
    EXPECT_EQ(q1.pick(enabled), rr.pick(enabled));
  }
}

TEST(SchedulerZoo, QuantumHoldsTheCursorForQPicks) {
  sim::QuantumRoundRobinScheduler sched(3);
  const auto all = pids({0, 1, 2});
  // Three consecutive picks of pid 0, then the cursor advances to pid 1.
  EXPECT_EQ(sched.pick(all), 0);
  EXPECT_EQ(sched.pick(all), 0);
  EXPECT_EQ(sched.pick(all), 0);
  EXPECT_EQ(sched.pick(all), 1);
  EXPECT_EQ(sched.pick(all), 1);
  // The current pid disappearing mid-quantum forfeits the rest of it.
  EXPECT_EQ(sched.pick(pids({0, 2})), 2);
  EXPECT_EQ(sched.pick(all), 2);
}

TEST(SchedulerZoo, SingleWeightMatchesQuantum) {
  const std::vector<std::vector<sim::Pid>> script = {
      pids({0, 1, 2}), pids({0, 1, 2}), pids({0, 1, 2}), pids({1, 2}),
      pids({0, 1, 2}), pids({0, 2}),    pids({0, 1, 2}), pids({0, 1, 2}),
  };
  sim::QuantumRoundRobinScheduler quantum(2);
  sim::WeightedRoundRobinScheduler weighted({2});
  for (const auto& enabled : script) {
    EXPECT_EQ(weighted.pick(enabled), quantum.pick(enabled));
  }
}

TEST(SchedulerZoo, WeightsFollowPidModuloLength) {
  // weights {3, 1} at n = 3: pid 0 gets 3 picks, pid 1 gets 1, pid 2 (2 mod
  // 2 = 0) gets 3 again.
  sim::WeightedRoundRobinScheduler sched({3, 1});
  const auto all = pids({0, 1, 2});
  std::vector<sim::Pid> seen;
  for (int i = 0; i < 7; ++i) seen.push_back(sched.pick(all));
  EXPECT_EQ(seen, pids({0, 0, 0, 1, 2, 2, 2}));
}

TEST(SchedulerZoo, DefaultPriorityServesTheHighestPid) {
  sim::PriorityScheduler sched;
  EXPECT_EQ(sched.pick(pids({0, 1, 2})), 2);
  EXPECT_EQ(sched.pick(pids({0, 1, 2})), 2);  // no rotation: starvation-prone
  EXPECT_EQ(sched.pick(pids({0, 1})), 1);
  EXPECT_EQ(sched.pick(pids({0})), 0);
}

TEST(SchedulerZoo, RankedPriorityPicksLowestRankThenLowestPid) {
  // rank(p) = ranks[p mod 3] with ranks {2, 1, 2}: pid 1 is the favorite,
  // pids 0/2/3 tie at rank 2 (pid 3 -> ranks[0]) and break toward pid 0.
  sim::PriorityScheduler sched({2, 1, 2});
  EXPECT_EQ(sched.pick(pids({0, 1, 2, 3})), 1);
  EXPECT_EQ(sched.pick(pids({0, 2, 3})), 0);
  EXPECT_EQ(sched.pick(pids({2, 3})), 2);
}

TEST(SchedulerZoo, PriorityStarvesTheLowestPidUnderContention) {
  // Live starvation: until pid 1 finishes its whole cycle, pid 0 never moves
  // when both are eligible — so pid 1 always enters the critical section
  // first (the scheduler-level analogue of the checker's lockout findings).
  const auto& info = algo::algorithm_by_name("yang-anderson");
  sim::PriorityScheduler scheduler;
  const auto run = sim::run_canonical(*info.algorithm, 2, scheduler);
  ASSERT_TRUE(run.completed);
  const auto order = testing_util::enter_order(run.exec);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order.front(), 1);
}

TEST(SchedulerZoo, RecordingSchedulerIsTransparentAndComplete) {
  auto inner = std::make_unique<sim::RoundRobinScheduler>();
  sim::RoundRobinScheduler reference;
  sim::RecordingScheduler recorder(std::move(inner));
  EXPECT_EQ(recorder.name(), "round-robin");  // empty display name = transparent
  const std::vector<std::vector<sim::Pid>> script = {
      pids({0, 1}), pids({0, 1}), pids({1}), pids({0, 1})};
  std::vector<sim::Pid> expected;
  for (const auto& enabled : script) {
    const auto pick = recorder.pick(enabled);
    EXPECT_EQ(pick, reference.pick(enabled));
    expected.push_back(pick);
  }
  EXPECT_EQ(recorder.picks(), expected);
}

TEST(SchedulerZoo, ReplayFollowsTheScriptAndDiagnosesDivergence) {
  sim::ReplayScheduler sched(pids({1, 0, 1}));
  EXPECT_EQ(sched.pick(pids({0, 1})), 1);
  EXPECT_EQ(sched.pick(pids({0, 1})), 0);
  EXPECT_EQ(sched.cursor(), 2u);
  // Scripted pid not enabled: diverged, with the step index in the message.
  try {
    (void)sched.pick(pids({0}));
    FAIL() << "expected ScheduleDivergedError";
  } catch (const sim::ScheduleDivergedError& e) {
    EXPECT_NE(std::string(e.what()).find("step 2"), std::string::npos) << e.what();
  }
}

TEST(SchedulerZoo, ReplayPastTheEndIsDivergence) {
  sim::ReplayScheduler sched(pids({0}));
  EXPECT_EQ(sched.pick(pids({0})), 0);
  EXPECT_THROW((void)sched.pick(pids({0})), sim::ScheduleDivergedError);
}

// ---------------------------------------------------------------------------
// Factory contract.
// ---------------------------------------------------------------------------

TEST(SchedulerZoo, EveryEnrolledNameConstructs) {
  const auto& names = sim::scheduler_names();
  for (const auto& name : names) {
    SCOPED_TRACE(name);
    auto sched = sim::make_scheduler(name, 3, 42);
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(sched->name(), name);
    // A fresh instance must be usable immediately.
    const auto pick = sched->pick(pids({0, 1, 2}));
    EXPECT_GE(pick, 0);
    EXPECT_LT(pick, 3);
  }
  // The zoo additions are enrolled (and thus swept by the conformance
  // matrix and `melb_cli sweep` without further registration).
  for (const char* expected :
       {"rr-quantum:2", "rr-weighted:2+1", "priority", "random-replay"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " missing from scheduler_names()";
  }
}

TEST(SchedulerZoo, ParameterSeparatorsPlusAndComma) {
  // '+' is canonical (survives comma-split --scheds lists); ',' is accepted
  // in single-name contexts. Both spell the same scheduler.
  auto plus = sim::make_scheduler("rr-weighted:3+1+2", 3, 0);
  auto comma = sim::make_scheduler("rr-weighted:3,1,2", 3, 0);
  EXPECT_EQ(plus->name(), "rr-weighted:3+1+2");
  EXPECT_EQ(comma->name(), "rr-weighted:3+1+2");  // canonicalized
  const auto all = pids({0, 1, 2});
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(plus->pick(all), comma->pick(all));
  }
}

TEST(SchedulerZoo, MalformedNamesAndParametersAreInvalidArgument) {
  const char* bad[] = {
      "",                      // empty name
      "no-such-scheduler",     // unknown family
      "rr-quantum",            // family without its required parameter
      "rr-quantum:",           // empty parameter
      "rr-quantum:0",          // quantum must be >= 1
      "rr-quantum:x",          // not a number
      "rr-quantum:3x",         // trailing junk
      "rr-quantum:1000001",    // above the documented cap
      "rr-quantum:2+3",        // quantum takes exactly one value
      "rr-weighted",           // family without its list
      "rr-weighted:",          // empty list
      "rr-weighted:2+",        // trailing separator
      "rr-weighted:2+0",       // zero weight
      "rr-weighted:+2",        // leading separator
      "priority:",             // empty rank list
      "priority:0",            // ranks start at 1
      "replay",                // needs a schedule file, not a bare name
  };
  for (const char* name : bad) {
    SCOPED_TRACE(std::string("name='") + name + "'");
    EXPECT_THROW((void)sim::make_scheduler(name, 3, 0), std::invalid_argument);
  }
}

TEST(SchedulerZoo, ParameterListLengthIsCapped) {
  std::string name = "rr-weighted:1";
  for (int i = 0; i < 64; ++i) name += "+1";  // 65 values: one past the cap
  EXPECT_THROW((void)sim::make_scheduler(name, 3, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Enrollment matrix: every registry algorithm under every new scheduler.
// ---------------------------------------------------------------------------

std::vector<std::string> all_algorithm_names() {
  std::vector<std::string> names;
  for (const auto& info : algo::all_algorithms()) {
    names.push_back(info.algorithm->name());
  }
  return names;
}

// The enrolled canonical parameterizations plus off-list variants — the
// matrix must hold for the whole family, not just the enrolled exemplar.
const std::vector<std::string>& zoo_schedulers() {
  static const std::vector<std::string> names = {
      "rr-quantum:2",      "rr-quantum:5",     "rr-weighted:2+1",
      "rr-weighted:3+1+2", "priority",         "priority:1+3+2",
      "random-replay",
  };
  return names;
}

class SchedulerZooMatrixTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulerZooMatrixTest, CanonicalRunsAcrossZooSchedulers) {
  const auto& info = algo::algorithm_by_name(GetParam());
  const auto& algorithm = *info.algorithm;
  for (const auto& sched_name : zoo_schedulers()) {
    for (const int n : {2, 3, 4}) {
      SCOPED_TRACE(GetParam() + " n=" + std::to_string(n) + " under " + sched_name);
      auto scheduler = sim::make_scheduler(sched_name, n, 0xC0FFEE);
      const auto run = sim::run_canonical(algorithm, n, *scheduler);
      if (info.livelock_free) {
        ASSERT_TRUE(run.completed) << (run.livelocked ? "livelocked" : "step cap hit");
      } else {
        ASSERT_TRUE(run.completed || run.livelocked) << "step cap hit";
      }
      EXPECT_EQ(sim::check_well_formed(run.exec, n), "");
      if (info.mutex_correct) {
        EXPECT_EQ(sim::check_mutual_exclusion(run.exec, n), "");
      }
      if (!run.completed) continue;
      // Trace round-trip: the recorded execution survives to_text/from_text.
      const auto text = trace::to_text({algorithm.name(), n}, run.exec);
      const auto parsed = trace::from_text(text);
      std::string detail;
      EXPECT_FALSE(
          trace::first_divergence(run.exec, parsed.exec, &detail).has_value())
          << detail;
    }
  }
}

// Record -> replay round trip: wrap each zoo scheduler in a recorder, export
// the pick sequence through the schedule-file text format, replay it, and
// require the traces to be byte-identical.
TEST_P(SchedulerZooMatrixTest, RecordedRunsReplayByteIdentically) {
  const auto& info = algo::algorithm_by_name(GetParam());
  const auto& algorithm = *info.algorithm;
  if (!info.livelock_free) GTEST_SKIP() << "no completed run guaranteed";
  for (const auto& sched_name : zoo_schedulers()) {
    for (const int n : {2, 3, 4}) {
      SCOPED_TRACE(GetParam() + " n=" + std::to_string(n) + " under " + sched_name);
      sim::RecordingScheduler recorder(sim::make_scheduler(sched_name, n, 7));
      const auto original = sim::run_canonical(algorithm, n, recorder);
      ASSERT_TRUE(original.completed);

      sim::Schedule schedule;
      schedule.algorithm = algorithm.name();
      schedule.n = n;
      schedule.mode = sim::RunMode::kProductiveOnly;
      schedule.source = "record " + sched_name + " seed=7";
      schedule.pids = recorder.picks();
      const auto parsed = sim::parse_schedule(sim::schedule_to_text(schedule));
      ASSERT_EQ(parsed.pids, schedule.pids);

      sim::ReplayScheduler replayer(parsed.pids);
      const auto replayed = sim::run_canonical(algorithm, n, replayer, parsed.mode,
                                               parsed.pids.size());
      EXPECT_EQ(replayer.cursor(), parsed.pids.size());
      EXPECT_EQ(trace::to_text({algorithm.name(), n}, replayed.exec),
                trace::to_text({algorithm.name(), n}, original.exec));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SchedulerZooMatrixTest,
                         ::testing::ValuesIn(all_algorithm_names()),
                         testing_util::AlgorithmNameGenerator());

}  // namespace
}  // namespace melb
