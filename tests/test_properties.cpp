// Randomized property sweeps across the whole library. Each property is a
// cross-module invariant checked over many seeded random configurations —
// cheap fuzzing with deterministic reproducibility (the failing seed is in
// the test name / message).
#include <gtest/gtest.h>

#include "algo/registry.h"
#include "lb/construct.h"
#include "lb/decode.h"
#include "lb/encode.h"
#include "lb/verify.h"
#include "sim/canonical.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "util/permutation.h"
#include "util/prng.h"

namespace melb {
namespace {

// Property: under any seeded random scheduler, every correct algorithm
// completes canonical executions with valid traces, and the productive-only
// and faithful modes agree on SC cost.
class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzz, TraceValidityAcrossAlgorithms) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256StarStar rng(seed);
  for (const auto& info : algo::correct_algorithms()) {
    const int n = 2 + static_cast<int>(rng.below(9));  // 2..10
    sim::RandomScheduler scheduler(seed ^ 0x1234);
    const auto run = sim::run_canonical(*info.algorithm, n, scheduler);
    ASSERT_TRUE(run.completed) << info.algorithm->name() << " n=" << n << " seed=" << seed;
    EXPECT_EQ(sim::check_well_formed(run.exec, n), "") << info.algorithm->name();
    EXPECT_EQ(sim::check_mutual_exclusion(run.exec, n), "") << info.algorithm->name();
  }
}

TEST_P(SchedulerFuzz, ProductiveAndFaithfulModesAgreeOnCost) {
  const std::uint64_t seed = GetParam();
  // Same scheduler decisions are not guaranteed across modes (eligible sets
  // differ), so compare against schedulers that ignore history: sequential.
  for (const char* name : {"yang-anderson", "bakery", "lamport-fast"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    const int n = 2 + static_cast<int>(seed % 7);
    sim::SequentialScheduler s1, s2;
    const auto productive = sim::run_canonical(algorithm, n, s1);
    const auto faithful =
        sim::run_canonical(algorithm, n, s2, sim::RunMode::kFaithful, 10'000'000);
    ASSERT_TRUE(productive.completed && faithful.completed) << name;
    EXPECT_EQ(productive.sc_cost, faithful.sc_cost) << name << " n=" << n;
    EXPECT_LE(productive.steps, faithful.steps) << name;
  }
}

// Property: replaying any execution's raw steps through validate_steps
// reproduces identical annotations (read values, SC marks).
TEST_P(SchedulerFuzz, ReplayReproducesAnnotations) {
  const std::uint64_t seed = GetParam();
  for (const char* name : {"burns", "filter", "dijkstra"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    const int n = 2 + static_cast<int>(seed % 5);
    sim::RandomScheduler scheduler(seed);
    const auto run = sim::run_canonical(algorithm, n, scheduler);
    ASSERT_TRUE(run.completed);
    std::vector<sim::Step> raw;
    for (const auto& rs : run.exec.steps()) raw.push_back(rs.step);
    const auto replayed = sim::validate_steps(algorithm, n, raw);
    ASSERT_EQ(replayed.size(), run.exec.size());
    for (std::size_t i = 0; i < replayed.size(); ++i) {
      EXPECT_EQ(replayed.at(i).read_value, run.exec.at(i).read_value);
      EXPECT_EQ(replayed.at(i).state_changed, run.exec.at(i).state_changed);
    }
  }
}

// Property: the full pipeline round-trips for random permutations, and the
// decoded execution is a structural linearization (verify_linearization).
TEST_P(SchedulerFuzz, PipelineRoundTripRandomPi) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256StarStar rng(seed * 2654435761ULL + 17);
  for (const char* name : {"yang-anderson", "bakery", "burns", "lamport-fast"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    const int n = 2 + static_cast<int>(rng.below(7));  // 2..8
    const auto pi = util::Permutation::random(n, rng);
    const auto c = lb::construct(algorithm, n, pi);
    const auto decoded = lb::decode(algorithm, lb::encode(c).text);
    std::vector<sim::Step> steps;
    for (const auto& rs : decoded.execution.steps()) steps.push_back(rs.step);
    EXPECT_EQ(lb::verify_linearization(c, steps), "")
        << name << " n=" << n << " seed=" << seed;
    // Visibility: no lower-π process ever reads a higher-π process's value.
    std::vector<sim::Pid> last_writer(
        static_cast<std::size_t>(algorithm.num_registers(n)), -1);
    for (const auto& rs : decoded.execution.steps()) {
      if (rs.step.type == sim::StepType::kWrite) {
        last_writer[static_cast<std::size_t>(rs.step.reg)] = rs.step.pid;
      } else if (rs.step.type == sim::StepType::kRead) {
        const sim::Pid w = last_writer[static_cast<std::size_t>(rs.step.reg)];
        if (w >= 0) {
          EXPECT_LE(pi.rank(w), pi.rank(rs.step.pid))
              << name << ": lower-pi process read a higher-pi value";
        }
      }
    }
  }
}

// Property: SC cost is schedule-sensitive but mutual exclusion never is.
TEST_P(SchedulerFuzz, ConvoySchedulesStayValid) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256StarStar rng(seed + 5);
  for (const char* name : {"yang-anderson", "peterson-tree"}) {
    const auto& algorithm = *algo::algorithm_by_name(name).algorithm;
    const int n = 3 + static_cast<int>(rng.below(6));
    sim::ConvoyScheduler scheduler(util::Permutation::random(n, rng));
    const auto run = sim::run_canonical(algorithm, n, scheduler);
    ASSERT_TRUE(run.completed) << name;
    EXPECT_EQ(sim::check_mutual_exclusion(run.exec, n), "") << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

// Fingerprint completeness: advancing an automaton must change its
// fingerprint for every write/critical step, and cloned automata must track
// the original exactly.
TEST(Fingerprints, CloneTracksOriginal) {
  util::Xoshiro256StarStar rng(77);
  for (const auto& info : algo::correct_algorithms()) {
    const int n = 4;
    sim::Simulator sim_a(*info.algorithm, n);
    auto clone = info.algorithm->make_process(1, n);
    // Drive process 1 through the simulator; mirror every advance on the
    // clone and compare fingerprints at every step.
    int guard = 0;
    while (!sim_a.process_done(1) && guard++ < 500) {
      const sim::Step step = sim_a.peek(1);
      const auto rs = sim_a.step(1);
      clone->advance(rs.read_value);
      EXPECT_EQ(clone->fingerprint(), sim_a.automaton(1).fingerprint())
          << info.algorithm->name() << " diverged at " << to_string(step);
      EXPECT_EQ(clone->done(), sim_a.process_done(1));
    }
  }
}

TEST(Fingerprints, WritesAlwaysChangeState) {
  // Footnote 6 of the paper: a process that does not change state after a
  // write would stay put forever. Our automata must advance their pc on
  // every write and critical step.
  for (const auto& info : algo::correct_algorithms()) {
    const int n = 5;
    sim::Simulator sim(*info.algorithm, n);
    sim::RoundRobinScheduler sched;
    int guard = 0;
    while (!sim.all_done() && guard++ < 20000) {
      std::vector<sim::Pid> enabled;
      for (sim::Pid p = 0; p < n; ++p) {
        if (!sim.process_done(p) && sim.next_step_productive(p)) enabled.push_back(p);
      }
      ASSERT_FALSE(enabled.empty()) << info.algorithm->name();
      const sim::Pid p = sched.pick(enabled);
      const auto rs = sim.step(p);
      if (rs.step.type != sim::StepType::kRead) {
        EXPECT_TRUE(rs.state_changed)
            << info.algorithm->name() << ": " << to_string(rs.step);
      }
    }
  }
}

}  // namespace
}  // namespace melb
