// Tests for the read-modify-write extension: primitive semantics, the three
// RMW lock automata (TTAS, ticket, MCS) under simulation and exhaustive
// checking, the Θ(n) SC-cost separation from register algorithms, and the
// register-only construction's rejection of RMW steps.
#include <gtest/gtest.h>

#include "algo/registry.h"
#include "check/model_checker.h"
#include "lb/construct.h"
#include "sim/canonical.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

#include "testing_util.h"

namespace melb {
namespace {

using sim::Step;

TEST(RmwSemantics, CasSwapFaa) {
  EXPECT_EQ(sim::apply_rmw(Step::cas(0, 0, 5, 9), 5), 9);   // expected matches
  EXPECT_EQ(sim::apply_rmw(Step::cas(0, 0, 5, 9), 4), 4);   // expected mismatch
  EXPECT_EQ(sim::apply_rmw(Step::swap(0, 0, 7), 123), 7);
  EXPECT_EQ(sim::apply_rmw(Step::faa(0, 0, 3), 10), 13);
  EXPECT_EQ(sim::apply_rmw(Step::faa(0, 0, -2), 10), 8);
}

TEST(RmwSemantics, StepFactoriesAndToString) {
  const Step c = Step::cas(1, 2, 0, 5);
  EXPECT_EQ(c.type, sim::StepType::kRmw);
  EXPECT_TRUE(c.is_memory_access());
  EXPECT_EQ(to_string(c), "cas_1(r2, 0->5)");
  EXPECT_EQ(to_string(Step::swap(0, 1, 9)), "swap_0(r1, 9)");
  EXPECT_EQ(to_string(Step::faa(2, 0, 1)), "faa_2(r0, 1)");
  EXPECT_NE(Step::cas(0, 0, 0, 1), Step::cas(0, 0, 1, 1));
}

TEST(RmwSemantics, SimulatorAppliesAndObservesOldValue) {
  // Drive a ttas automaton manually: the winning CAS observes 0, writes 1.
  const auto& info = algo::algorithm_by_name("ttas-rmw");
  sim::Simulator s(*info.algorithm, 2);
  s.step(0);  // try
  s.step(0);  // read lock = 0
  const auto rs = s.step(0);  // CAS 0 -> 1
  EXPECT_EQ(rs.step.type, sim::StepType::kRmw);
  EXPECT_EQ(rs.read_value, 0);
  EXPECT_EQ(s.register_value(0), 1);
  EXPECT_TRUE(rs.state_changed);
}

TEST(RmwSemantics, FailingCasSpinIsUnproductive) {
  const auto& info = algo::algorithm_by_name("ttas-rmw");
  sim::Simulator s(*info.algorithm, 2);
  // p0 takes the lock.
  s.step(0);
  s.step(0);
  s.step(0);
  // p1 reaches its read-spin; the lock is held: unproductive (free).
  s.step(1);  // try
  EXPECT_FALSE(s.next_step_productive(1));
  s.step(1);  // free read of 1
  EXPECT_EQ(s.execution().at(s.execution().size() - 1).state_changed, false);
}

class RmwLockTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RmwLockTest, CanonicalRunsAllSchedulers) {
  const auto& info = algo::algorithm_by_name(GetParam());
  for (int n : {1, 2, 3, 6, 12}) {
    sim::RoundRobinScheduler rr;
    sim::RandomScheduler rnd(17);
    sim::SequentialScheduler seq;
    for (sim::Scheduler* sched : {(sim::Scheduler*)&rr, (sim::Scheduler*)&rnd,
                                  (sim::Scheduler*)&seq}) {
      const auto run = sim::run_canonical(*info.algorithm, n, *sched);
      ASSERT_TRUE(run.completed) << GetParam() << " n=" << n << " " << sched->name();
      EXPECT_EQ(sim::check_well_formed(run.exec, n), "");
      EXPECT_EQ(sim::check_mutual_exclusion(run.exec, n), "");
    }
  }
}

TEST_P(RmwLockTest, ExhaustivelyCheckedSmallN) {
  const auto& info = algo::algorithm_by_name(GetParam());
  check::CheckOptions options;
  options.max_states = 4'000'000;
  for (int n : {2, 3}) {
    const auto result = check::check_all_subsets(*info.algorithm, n, options);
    EXPECT_TRUE(result.ok) << GetParam() << " n=" << n << ": " << result.violation;
  }
}

TEST_P(RmwLockTest, ScCostProfile) {
  // The separation from the register bound: the queue-structured RMW locks
  // (ticket, MCS) cost Θ(1) state changes per process — Θ(n) per canonical
  // run, strictly below Ω(n log n). TTAS is the anti-example *within* the
  // RMW class: every handoff wakes all spinners and fails their CASes, so
  // its SC cost is Θ(n²) — the SC model charges the same invalidation storm
  // cache-coherent hardware suffers.
  const auto& info = algo::algorithm_by_name(GetParam());
  const bool queue_structured = info.algorithm->name() != "ttas-rmw";
  for (int n : {8, 32, 128}) {
    sim::RoundRobinScheduler sched;
    const auto run = sim::run_canonical(*info.algorithm, n, sched);
    ASSERT_TRUE(run.completed);
    if (queue_structured) {
      EXPECT_LE(run.sc_cost, 12u * static_cast<unsigned>(n)) << GetParam() << " n=" << n;
    } else {
      const auto quadratic_cap = 4u * static_cast<unsigned>(n) +
                                 2u * static_cast<unsigned>(n) * static_cast<unsigned>(n);
      EXPECT_LE(run.sc_cost, quadratic_cap) << GetParam() << " n=" << n;
      EXPECT_GE(run.sc_cost, static_cast<unsigned>(n * n) / 2u) << "expected the storm";
    }
    EXPECT_GE(run.sc_cost, static_cast<unsigned>(n));
  }
}

TEST_P(RmwLockTest, ConstructionRejectsRmw) {
  // The Fig. 1 hiding argument is register-specific; the pipeline must
  // refuse rather than build an unsound adversary.
  const auto& info = algo::algorithm_by_name(GetParam());
  EXPECT_THROW(lb::construct(*info.algorithm, 3, util::Permutation(3)), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Locks, RmwLockTest,
                         ::testing::Values("ttas-rmw", "ticket-rmw", "mcs-rmw"),
                         testing_util::AlgorithmNameGenerator());

TEST(Registry, RegisterSubsetExcludesRmw) {
  bool saw_rmw_in_correct = false;
  for (const auto& info : algo::correct_algorithms()) {
    if (info.uses_rmw) saw_rmw_in_correct = true;
  }
  EXPECT_TRUE(saw_rmw_in_correct);
  for (const auto& info : algo::register_algorithms()) {
    EXPECT_FALSE(info.uses_rmw) << info.algorithm->name();
  }
  EXPECT_GE(algo::register_algorithms().size(), 7u);
}

TEST(TicketLock, FifoOrderUnderRoundRobin) {
  // Round-robin lets p0..p5 take tickets in pid order; entries must follow.
  const auto& info = algo::algorithm_by_name("ticket-rmw");
  sim::RoundRobinScheduler sched;
  const auto run = sim::run_canonical(*info.algorithm, 6, sched);
  ASSERT_TRUE(run.completed);
  std::vector<sim::Pid> enters;
  for (const auto& rs : run.exec.steps()) {
    if (rs.step.type == sim::StepType::kCrit && rs.step.crit == sim::CritKind::kEnter) {
      enters.push_back(rs.step.pid);
    }
  }
  EXPECT_EQ(enters, (std::vector<sim::Pid>{0, 1, 2, 3, 4, 5}));
}

TEST(McsLock, HandoffChainsUnderContention) {
  // All processes enqueue before anyone exits (convoy by pid); entries must
  // then follow queue order exactly.
  const auto& info = algo::algorithm_by_name("mcs-rmw");
  const int n = 5;
  sim::Simulator s(*info.algorithm, n);
  // Each process: try, reset next, arm, swap tail, [link pred].
  for (sim::Pid p = 0; p < n; ++p) {
    for (int k = 0; k < 4; ++k) s.step(p);
    if (p > 0) s.step(p);  // link behind predecessor
  }
  // Now let everyone run round-robin to completion.
  sim::RoundRobinScheduler sched;
  int guard = 0;
  while (!s.all_done() && guard++ < 10000) {
    std::vector<sim::Pid> enabled;
    for (sim::Pid p = 0; p < n; ++p) {
      if (!s.process_done(p) && s.next_step_productive(p)) enabled.push_back(p);
    }
    ASSERT_FALSE(enabled.empty());
    s.step(sched.pick(enabled));
  }
  ASSERT_TRUE(s.all_done());
  EXPECT_EQ(sim::check_mutual_exclusion(s.execution(), n), "");
  std::vector<sim::Pid> enters;
  for (const auto& rs : s.execution().steps()) {
    if (rs.step.type == sim::StepType::kCrit && rs.step.crit == sim::CritKind::kEnter) {
      enters.push_back(rs.step.pid);
    }
  }
  EXPECT_EQ(enters, (std::vector<sim::Pid>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace melb
